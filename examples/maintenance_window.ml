(* Expedite/postpone what-ifs beyond scheduling (the applications the
   paper mentions in footnote 4): planning a maintenance pause and
   sizing a catch-up after a stall.

   Run with: dune exec examples/maintenance_window.exe *)

let () =
  let mu = 20.0 in
  let rng = Prng.create 99 in
  (* A busy buffer: 40 queries with mixed urgency. *)
  let buffer =
    Array.init 40 (fun id ->
        let size = Prng.exponential rng ~mean:mu in
        let urgency = 2.0 +. (Prng.float rng *. 40.0) in
        let sla =
          Sla.make
            ~levels:
              [
                { bound = urgency *. mu /. 4.0; gain = 2.0 };
                { bound = urgency *. mu; gain = 1.0 };
              ]
            ~penalty:0.5
        in
        Query.make ~id ~arrival:(Float.of_int id *. 2.0) ~size ~sla ())
  in
  let now = 100.0 in
  let tree = Sla_tree.build ~now buffer in

  Fmt.pr "Buffer of %d queries, $%.1f of profit still at stake.@.@."
    (Sla_tree.length tree)
    (Sla_tree.total_profit_at_stake tree);

  (* 1. Planning a 60 ms maintenance pause. *)
  let duration = 60.0 in
  Fmt.pr "Where should a %.0f ms maintenance pause go?@." duration;
  List.iter
    (fun p ->
      let n = Sla_tree.length tree in
      let loss =
        if p >= n then 0.0 else Sla_tree.postpone tree ~m:p ~n:(n - 1) ~tau:duration
      in
      Fmt.pr "  before position %2d -> lose $%.2f@." p loss)
    [ 0; 10; 20; 30; 40 ];
  (match What_if.best_maintenance_slot ~latest_start:(now +. 300.0) tree ~duration with
  | Some (p, loss) ->
    Fmt.pr "=> best slot that starts within 300 ms: position %d (lose $%.2f)@." p loss
  | None -> ());

  (* 2. An unplanned 100 ms stall just happened. *)
  Fmt.pr "@.A %.0f ms stall hits. Damage and catch-up options:@." 100.0;
  List.iter
    (fun catch_up ->
      let lost, recovered = What_if.stall_impact tree ~stall:100.0 ~catch_up in
      Fmt.pr "  catch-up %5.0f ms -> lost $%.2f, recovered $%.2f@." catch_up lost
        recovered)
    [ 0.0; 25.0; 50.0; 100.0 ];

  (* 3. What is borrowed capacity worth right now? *)
  Fmt.pr "@.Marginal value of starting the whole buffer earlier:@.";
  List.iter
    (fun (tau, gain) -> Fmt.pr "  expedite by %5.0f ms -> recover $%.2f@." tau gain)
    (What_if.recovery_curve tree ~taus:[ 10.0; 25.0; 50.0; 100.0; 200.0 ])
