(* Quickstart: build an SLA-tree over a buffer of queries and ask it
   the paper's two key questions, then use the what-if helpers that
   power scheduling and dispatching decisions.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Define SLAs. A buyer's query earns $2 if answered within
     20 ms, $1 within 100 ms, nothing after that. An analyst's query
     earns $1 within 200 ms but costs a $10 penalty when even that
     deadline is missed. *)
  let buyer =
    Sla.make
      ~levels:[ { bound = 20.0; gain = 2.0 }; { bound = 100.0; gain = 1.0 } ]
      ~penalty:0.0
  in
  let analyst = Sla.make ~levels:[ { bound = 200.0; gain = 1.0 } ] ~penalty:10.0 in

  (* 2. A buffer of queries waiting in front of a database server, in
     their planned execution order. Times are in ms. *)
  let buffer =
    [|
      Query.make ~id:0 ~arrival:0.0 ~size:15.0 ~sla:buyer ();
      Query.make ~id:1 ~arrival:2.0 ~size:40.0 ~sla:analyst ();
      Query.make ~id:2 ~arrival:5.0 ~size:10.0 ~sla:buyer ();
      Query.make ~id:3 ~arrival:9.0 ~size:25.0 ~sla:buyer ();
    |]
  in

  (* 3. Build the SLA-tree. [now] is when the server becomes free. *)
  let now = 10.0 in
  let tree = Sla_tree.build ~now buffer in
  let slack_units, tardy_units = Sla_tree.unit_counts tree in
  Fmt.pr "Built an SLA-tree over %d queries (%d slack units, %d tardiness units)@."
    (Sla_tree.length tree) slack_units tardy_units;

  (* 4. The two key questions (Sec 3.1 of the paper). *)
  Fmt.pr "@.What if queries 0..3 were postponed?@.";
  List.iter
    (fun tau ->
      Fmt.pr "  postpone by %5.1f ms -> lose $%.2f@." tau
        (Sla_tree.postpone tree ~m:0 ~n:3 ~tau))
    [ 5.0; 15.0; 40.0; 120.0 ];

  Fmt.pr "@.What if queries 0..3 were expedited?@.";
  List.iter
    (fun tau ->
      Fmt.pr "  expedite by %5.1f ms -> gain $%.2f@." tau
        (Sla_tree.expedite tree ~m:0 ~n:3 ~tau))
    [ 5.0; 15.0; 40.0 ];

  (* 5. Scheduling: which query should run next? *)
  Fmt.pr "@.Net gain of rushing each query to the front:@.";
  Array.iteri
    (fun i q ->
      Fmt.pr "  rush q%d (%4.1f ms of work): $%+.2f@." i q.Query.est_size
        (What_if.rush_net_gain tree i))
    buffer;
  (match What_if.best_rush tree with
  | Some (i, gain) ->
    Fmt.pr "=> the profit-aware scheduler runs q%d next (nets $%+.2f)@." i gain
  | None -> ());

  (* 6. Dispatching: what would it cost to accept one more query? *)
  let newcomer = Query.make ~id:4 ~arrival:now ~size:30.0 ~sla:buyer () in
  Fmt.pr "@.Inserting a new 30 ms buyer query:@.";
  List.iter
    (fun pos ->
      (* [+. 0.0] folds IEEE negative zero into plain zero for display. *)
      Fmt.pr "  at position %d -> net profit change $%+.2f@." pos
        (What_if.insertion_delta tree ~query:newcomer ~pos +. 0.0))
    [ 0; 2; 4 ];
  Fmt.pr "  on an idle server -> $%+.2f@."
    (What_if.idle_server_profit ~now newcomer)
