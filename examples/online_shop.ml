(* The paper's motivating scenario (Sec 1, Fig 1): an online shopping
   site whose database serves impatient buyers (short OLTP queries,
   high profit, tight deadlines) and internal analysts (long OLAP
   queries, tolerant deadlines but a penalty when even those slip).

   One database server, heavy load. We compare plain FCFS with
   FCFS+SLA-tree scheduling and show where the recovered profit comes
   from.

   Run with: dune exec examples/online_shop.exe *)

let n_queries = 8_000
let warmup = 4_000

let run name scheduler queries =
  let metrics = Metrics.create ~warmup_id:warmup () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick scheduler)
    ~dispatch:(Dispatchers.instantiate Dispatchers.round_robin)
    ~metrics ();
  Fmt.pr "  %-16s avg profit $%.3f/query, avg loss $%.3f, %4.1f%% miss their best deadline@."
    name (Metrics.avg_profit metrics) (Metrics.avg_loss metrics)
    (100.0 *. Metrics.late_fraction metrics);
  metrics

let () =
  Fmt.pr "Online shop: buyers (10x more frequent, $2/$1 stepwise SLA) and@.";
  Fmt.pr "analysts ($1 SLA with a $10 penalty), SSBM execution times, load 0.9.@.@.";
  let cfg =
    Trace.config ~kind:Workloads.Ssbm_wl ~profile:Workloads.Sla_b ~load:0.9
      ~servers:1 ~n_queries ~seed:2011 ()
  in
  let queries = Trace.generate cfg in

  Fmt.pr "Scheduling %d queries (measuring the last %d):@." n_queries
    (n_queries - warmup);
  let fcfs = run "FCFS" Schedulers.fcfs queries in
  let tree = run "FCFS+SLA-tree" Schedulers.fcfs_sla_tree queries in

  let per_query =
    Metrics.avg_profit tree -. Metrics.avg_profit fcfs
  in
  Fmt.pr "@.SLA-tree recovers $%.3f per query — $%.0f over the measured window —@."
    per_query
    (per_query *. Float.of_int (Metrics.measured_count tree));
  Fmt.pr "by answering profitable buyer queries before they lose patience@.";
  Fmt.pr "while analysts' long deadlines still clear before the penalty.@.";

  (* A CBS baseline for context. *)
  Fmt.pr "@.For comparison, a cost-based scheduler (CBS) and its SLA-tree variant:@.";
  let rate = 1.0 /. Workloads.nominal_mean_ms Workloads.Ssbm_wl in
  let _ = run "CBS" (Schedulers.cbs ~rate) queries in
  let _ = run "CBS+SLA-tree" (Schedulers.cbs_sla_tree ~rate) queries in
  ()
