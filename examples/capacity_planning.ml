(* Capacity planning with a fictitious server (paper Secs 6.3, 7.4).

   "What is the profit margin of adding one more database server?"
   While the system serves its normal workload, every arriving query
   also asks a fictitious idle server the same what-if question the
   dispatcher asks the real servers; accumulating the difference
   estimates the margin without buying the machine. We then replay the
   identical trace with one extra server to get the ground truth.

   Run with: dune exec examples/capacity_planning.exe *)

let n_queries = 8_000
let warmup = 4_000

let () =
  Fmt.pr
    "Estimating the per-query profit margin of one extra server (Exp workload,@.";
  Fmt.pr "SLA-A, system load 0.9), vs replayed ground truth:@.@.";
  let rate = 1.0 /. Workloads.nominal_mean_ms Workloads.Exp in
  let planner = Planner.cbs ~rate in
  let scheduler = Schedulers.cbs_sla_tree ~rate in
  Fmt.pr "  %8s %20s %20s@." "servers" "SLA-tree estimate" "ground truth";
  List.iter
    (fun m ->
      let cfg =
        Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
          ~servers:m ~n_queries ~seed:31415 ()
      in
      let queries = Trace.generate cfg in
      let _, est =
        Capacity.run_with_estimation ~queries ~n_servers:m ~planner ~scheduler
          ~warmup_id:warmup
      in
      let gt =
        Capacity.ground_truth ~queries ~n_servers:m ~planner ~scheduler
          ~warmup_id:warmup
      in
      Fmt.pr "  %8d %17.4f $/q %17.4f $/q@." m est.Capacity.est_margin_per_query gt)
    [ 2; 3; 4; 5; 6 ];
  Fmt.pr
    "@.Both decay as servers are added: the paper's two extremes (Sec 6.3) —@.";
  Fmt.pr "an over-provisioned system gains nothing from another server, while a@.";
  Fmt.pr "saturated one gains super-linearly — emerge from the same estimator.@."
