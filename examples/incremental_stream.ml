(* The incremental SLA-tree (the paper's future work, Sec 9) on a live
   FCFS stream: queries arrive and execute continuously, the structure
   absorbs pops, appends and schedule drift without rebuilding, and a
   what-if question is answered after every event.

   Run with: dune exec examples/incremental_stream.exe *)

let () =
  let mu = 20.0 in
  let rng = Prng.create 2026 in
  let sla =
    Sla.make
      ~levels:[ { bound = 50.0 *. mu; gain = 2.0 }; { bound = 100.0 *. mu; gain = 1.0 } ]
      ~penalty:0.0
  in
  let fresh_query id arrival =
    Query.make ~id ~arrival ~size:(Prng.exponential rng ~mean:mu) ~sla ()
  in

  (* Start with a modest backlog. *)
  let t0 = 0.0 in
  let backlog = Array.init 50 (fun i -> fresh_query i t0) in
  let tree = Incr_sla_tree.create ~now:t0 backlog in

  let events = 2_000 in
  Fmt.pr "Streaming %d events over an initial backlog of %d queries...@.@."
    events (Array.length backlog);
  let questions = ref 0 in
  let total_risk = ref 0.0 in
  let clock = Sys.time () in
  for i = 0 to events - 1 do
    (* Alternate arrivals and completions, drifting the schedule: real
       executions take 0.5x..1.5x their estimate. *)
    if i mod 2 = 0 then
      Incr_sla_tree.append tree (fresh_query (1000 + i) (Float.of_int i))
    else if Incr_sla_tree.length tree > 1 then begin
      let est =
        (Incr_sla_tree.to_entries tree).(0).Schedule.query.Query.est_size
      in
      Incr_sla_tree.pop_head ~actual:(est *. (0.5 +. Prng.float rng)) tree
    end;
    (* The dispatcher-style question: how much profit is at risk if
       the whole buffer slips by one mean execution time? *)
    let n = Incr_sla_tree.length tree in
    if n > 0 then begin
      incr questions;
      total_risk := !total_risk +. Incr_sla_tree.postpone tree ~m:0 ~n:(n - 1) ~tau:mu
    end
  done;
  let elapsed_ms = (Sys.time () -. clock) *. 1000.0 in

  Fmt.pr "events processed:        %d@." events;
  Fmt.pr "questions answered:      %d@." !questions;
  Fmt.pr "mean profit at risk:     $%.2f per question@."
    (!total_risk /. Float.of_int !questions);
  Fmt.pr "full tree rebuilds:      %d (everything else was incremental)@."
    (Incr_sla_tree.rebuild_count tree);
  Fmt.pr "remaining schedule drift: %+.2f ms@." (Incr_sla_tree.delay tree);
  Fmt.pr "total time:              %.2f ms (%.1f us per event+question)@."
    elapsed_ms
    (1000.0 *. elapsed_ms /. Float.of_int events);
  Fmt.pr
    "@.A static SLA-tree would have rebuilt %d times — see@.`slatree_cli \
     ablation incremental` for the measured speedup.@."
    !questions
