(* Chaos engineering on a simulated farm (beyond the paper): drive
   scripted crashes and brownouts into a live run and watch what they
   cost, in exactly the paper's profit terms.

   A crash kills the running query and orphans the victim's buffer;
   orphans re-enter the dispatcher as retries that keep their original
   arrival time, so their SLA clocks have been bleeding the whole
   time — a crash never resets a deadline. A brownout halves a
   server's service rate; the speed-aware dispatcher routes around it
   while LWL-style backlog counting would keep feeding it raw sizes.

   Run with: dune exec examples/chaos.exe *)

let n_servers = 4
let n_queries = 4_000
let load = 0.9
let seed = 2718

let workload () =
  Trace.generate
    (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load
       ~servers:n_servers ~n_queries ~seed ())

(* One full run of the incremental SLA-tree pipeline under a fault
   plan; the injector rides the simulator's [timers] hook. *)
let run ~plan =
  let queries = workload () in
  let injector = Fault.create ~plan () in
  let metrics = Metrics.create ~warmup_id:(n_queries / 5) () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let on_server_event ~sid ~now ev =
    Fault.on_server_event injector ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  Sim.run
    ~timers:(Fault.timers injector)
    ~on_server_event ~queries ~n_servers ~pick_next
    ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
    ~metrics ();
  Fault.finalize injector metrics;
  (metrics, Fault.stats injector)

let () =
  let mu = Workloads.nominal_mean_ms Workloads.Exp in
  let horizon = Float.of_int n_queries *. mu /. (load *. Float.of_int n_servers) in

  (* Fair weather first: the baseline every storm is scored against. *)
  let base, _ = run ~plan:[] in
  Fmt.pr "Fair weather: profit $%.0f over %d queries on %d servers.@.@."
    (Metrics.total_profit base) n_queries n_servers;

  (* A hand-written storm. Times are fractions of the arrival span:
     server 2 browns out early and is repaired; server 0 crashes at
     mid-run and stays down for 10%% of the horizon. *)
  let storm =
    Fault.scripted
      [
        Fault.Degrade { at = 0.25 *. horizon; sid = 2; factor = 0.5 };
        Fault.Restore { at = 0.45 *. horizon; sid = 2 };
        Fault.Crash { at = 0.5 *. horizon; sid = 0 };
        Fault.Restore { at = 0.6 *. horizon; sid = 0 };
      ]
  in
  Fmt.pr "A scripted storm:@.";
  List.iter (fun e -> Fmt.pr "  %a@." Fault.pp_event e) storm;
  let m, s = run ~plan:storm in
  let drop = Metrics.total_profit base -. Metrics.total_profit m in
  Fmt.pr
    "=> profit $%.0f (the storm cost $%.0f, %.1f%% of fair weather)@.   %a@."
    (Metrics.total_profit m) drop
    (100.0 *. drop /. Metrics.total_profit base)
    Fault.pp_stats s;
  (match s.Fault.recoveries with
  | (at, ttr) :: _ ->
    Fmt.pr
      "   the crash at t=%.0f took %.0f ms of catch-up before the pool's \
       backlog was back to its pre-crash level@."
      at ttr
  | [] -> ());

  (* The same spec the CLI takes: a seeded random storm drawn from the
     MTTF/MTTR model. Workload and storm use independent random
     streams, so the queries are identical to the runs above. *)
  Fmt.pr "@.A random severe storm (--faults severe:7):@.";
  let plan = Fault.plan_of_spec "severe:7" ~horizon ~n_servers in
  let m, s = run ~plan in
  Fmt.pr "=> profit $%.0f (%.1f%% below fair weather), %d lost to crashes@.   %a@."
    (Metrics.total_profit m)
    (100.0 *. (Metrics.total_profit base -. Metrics.total_profit m)
    /. Metrics.total_profit base)
    (Metrics.lost_count m) Fault.pp_stats s
