(* Profit-aware dispatching across a server farm (paper Sec 6.2).

   Five database servers behind one dispatcher, serving a heavy-tailed
   (Pareto) workload at high load — the setting where the paper's
   SLA-tree dispatching shines brightest (Table 3). We compare
   Round-Robin, least-work-left (LWL), and SLA-tree dispatching, all
   over the same trace and the same CBS+SLA-tree per-server scheduler.

   Run with: dune exec examples/dispatch_farm.exe *)

let n_servers = 5
let n_queries = 8_000
let warmup = 4_000

let run name dispatcher scheduler queries =
  let metrics = Metrics.create ~warmup_id:warmup () in
  Sim.run ~queries ~n_servers
    ~pick_next:(Schedulers.pick scheduler)
    ~dispatch:(Dispatchers.instantiate dispatcher)
    ~metrics ();
  Fmt.pr "  %-10s avg loss $%.3f/query   (%.1f%% of queries miss their deadline)@."
    name (Metrics.avg_loss metrics)
    (100.0 *. Metrics.late_fraction metrics);
  Metrics.avg_loss metrics

let () =
  Fmt.pr "Dispatching a Pareto (heavy-tailed) workload to %d servers at load 0.9.@."
    n_servers;
  Fmt.pr "Mixture of a few huge queries among many tiny ones - one bad placement@.";
  Fmt.pr "decision strands cheap queries behind a monster.@.@.";
  let cfg =
    Trace.config ~kind:Workloads.Pareto ~profile:Workloads.Sla_a ~load:0.9
      ~servers:n_servers ~n_queries ~seed:7777 ()
  in
  let queries = Trace.generate cfg in
  let rate = 1.0 /. Workloads.nominal_mean_ms Workloads.Pareto in
  let scheduler = Schedulers.cbs_sla_tree ~rate in
  let planner = Planner.cbs ~rate in

  let rr = run "RR" Dispatchers.round_robin scheduler queries in
  let lwl = run "LWL" Dispatchers.lwl scheduler queries in
  let tree = run "SLA-tree" (Dispatchers.sla_tree planner) scheduler queries in

  Fmt.pr "@.SLA-tree dispatching cuts the loss to %.0f%% of LWL's and %.0f%% of RR's:@."
    (100.0 *. tree /. lwl) (100.0 *. tree /. rr);
  Fmt.pr "instead of balancing *work*, it asks every server the what-if question@.";
  Fmt.pr "\"how much profit do you lose if this query joins your buffer?\" and@.";
  Fmt.pr "routes around servers whose buffered queries have no slack left.@.";

  (* Admission control variant: refuse queries that cost more than
     they bring. *)
  Fmt.pr "@.With admission control (reject queries whose best delta is negative):@.";
  let metrics = Metrics.create ~warmup_id:warmup () in
  Sim.run ~queries ~n_servers
    ~pick_next:(Schedulers.pick scheduler)
    ~dispatch:(Dispatchers.instantiate (Dispatchers.sla_tree ~admission:true planner))
    ~metrics ();
  Fmt.pr "  %d of %d measured queries rejected, avg loss $%.3f/query@."
    (Metrics.rejected_count metrics) n_queries (Metrics.avg_loss metrics)
