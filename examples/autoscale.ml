(* Online autoscaling with SLA-tree what-if probes (beyond the paper).

   A day in the life of an elastic database farm: the arrival rate
   follows a diurnal curve that swings from a deep overnight trough to
   a peak no small static pool can survive. Every few hundred
   milliseconds a controller weighs two SLA-tree questions — "what
   would one more server have earned this window?" (the capacity
   margin g0 - gi) and "what does retiring the cheapest server
   destroy?" (best re-insertion of its buffer elsewhere) — against a
   $/server-ms rent, then grows the pool or drains a server.

   Run with: dune exec examples/autoscale.exe
   Optionally: --trace FILE (Chrome trace-event JSON of the SLA-tree
   policy's run, loadable in Perfetto) and --timeseries FILE (per-tick
   pool/backlog/profit samples, CSV or .json). *)

let n_queries = 6_000
let base_servers = 4
let seed = 31415

(* Minimal flag parsing: --trace FILE / --timeseries FILE. *)
let flag_value name =
  let argv = Sys.argv in
  let r = ref None in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length argv then r := Some argv.(i + 1))
    argv;
  !r

let () =
  let mu = Workloads.nominal_mean_ms Workloads.Exp in
  (* Five simulated "days"; the mean demand is about one pool of
     [base_servers], but the peak wants twice that and the trough
     almost none. *)
  let low, high = (0.1, 2.0) in
  let span =
    Float.of_int n_queries *. mu
    /. ((low +. high) /. 2.0 *. Float.of_int base_servers)
  in
  let period = span /. 5.0 in
  let interval = period /. 24.0 in
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:1.0
      ~servers:base_servers ~n_queries ~seed ()
  in
  let queries = Bursty.generate cfg (Bursty.diurnal ~period ~low ~high ()) in
  let config =
    Elastic.config ~interval ~cost_per_interval:(0.0225 *. interval)
      ~boot_delay:(interval /. 2.0) ~cooldown:(2.0 *. interval) ~min_servers:2
      ~max_servers:8 ()
  in
  Fmt.pr "Diurnal Exp/SLA-B workload: %d queries over ~%.0f ms (%.0f ms days),@."
    n_queries span period;
  Fmt.pr "rent $%.4f per server-ms, decision every %.0f ms.@.@." 0.0225 interval;
  let trace_out = flag_value "--trace" in
  let ts_out = flag_value "--timeseries" in
  (* Trace only the SLA-tree policy's run; the per-tick time series is
     always collected (it also draws the sparkline below). *)
  let obs = if trace_out = None then Obs.noop else Obs.create () in
  let ts = Elastic.timeseries () in
  let run ?(obs = Obs.noop) ?timeseries policy initial =
    let metrics, s =
      Elastic.run ~obs ?timeseries ~policy ~config ~queries ~n_servers:initial
        ~warmup_id:0 ()
    in
    let profit = Metrics.total_profit metrics in
    Fmt.pr "  %-14s start=%d  profit $%7.0f  rent $%6.0f  net $%7.0f  pool %d..%d@."
      (Elastic.policy_name policy)
      initial profit s.Elastic.cost
      (profit -. s.Elastic.cost)
      s.Elastic.min_pool s.Elastic.peak_pool;
    (s, profit)
  in
  let _ = run Elastic.static 4 in
  let _ = run Elastic.static 8 in
  let s, _ = run ~obs ~timeseries:ts Elastic.sla_tree_policy 4 in
  let _ = run (Elastic.queue_threshold ()) 4 in
  Fmt.pr "@.The SLA-tree controller's day (%d ups, %d downs):@." s.Elastic.scale_ups
    s.Elastic.scale_downs;
  (* A sparkline of the pool size over the run, read straight off the
     controller's per-tick time series. *)
  let buckets = 72 in
  let dt = span /. Float.of_int buckets in
  let line = Buffer.create buckets in
  for b = 0 to buckets - 1 do
    let t = Float.of_int b *. dt in
    let v = Obs.Timeseries.value_at ts ~column:"pool" ~now:t in
    let pool = if Float.is_nan v then 4 else Float.to_int v in
    Buffer.add_string line
      (match pool with
      | n when n <= 2 -> "▁"
      | 3 -> "▂"
      | 4 -> "▃"
      | 5 -> "▄"
      | 6 -> "▅"
      | 7 -> "▆"
      | _ -> "█")
  done;
  Fmt.pr "  pool |%s|@." (Buffer.contents line);
  Fmt.pr "       (each cell ~%.0f ms; the five humps are the five days)@." dt;
  (match trace_out with
  | None -> ()
  | Some path ->
    Obs.write_trace obs ~path;
    let tr = Obs.trace obs in
    Fmt.pr "wrote trace (%d events, %d dropped) to %s@." (Obs.Trace.length tr)
      (Obs.Trace.dropped tr) path);
  match ts_out with
  | None -> ()
  | Some path ->
    Obs.Timeseries.write ts ~path;
    Fmt.pr "wrote %d time-series samples to %s@." (Obs.Timeseries.length ts) path
