(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the SLA-tree primitives
   (Fig 17's subject): full build, one postpone question, a whole
   scheduling decision, and the O(N)-per-question naive baseline the
   data structure replaces.

   Part 2 — regeneration of every table and figure of the paper's
   evaluation (Tables 2-7, Figures 15 and 17). Scale is controlled by
   SLATREE_SCALE (see Exp_scale): "smoke" | "default" | "paper". *)

open Bechamel
open Toolkit

let sizes = [ 100; 500; 1000; 2000 ]
let now = 200.0

let buffer_of n = Fig17.make_buffer ~seed:42 n

let build_tests =
  (* Steady-state dispatcher shape: one arena reused across rebuilds,
     so the measured cost is sort+cascade work, not allocation. *)
  Test.make_indexed ~name:"sla_tree.build" ~fmt:"%s:%d" ~args:sizes (fun n ->
      let buffer = buffer_of n in
      let arena = Sla_tree.create_arena () in
      Staged.stage (fun () -> ignore (Sla_tree.build ~arena ~now buffer)))

let boxed_build_tests =
  (* The per-node boxed representation the flat layout replaced; kept
     as the delta row next to sla_tree.build. *)
  Test.make_indexed ~name:"sla_tree.build_boxed" ~fmt:"%s:%d" ~args:sizes
    (fun n ->
      let buffer = buffer_of n in
      Staged.stage (fun () ->
          ignore (Sla_tree.build ~impl:Sla_tree.Boxed ~now buffer)))

let postpone_tests =
  Test.make_indexed ~name:"sla_tree.postpone" ~fmt:"%s:%d" ~args:sizes (fun n ->
      let buffer = buffer_of n in
      let tree = Sla_tree.build ~now buffer in
      let tau = 50.0 in
      Staged.stage (fun () -> ignore (Sla_tree.postpone tree ~m:0 ~n:(n - 1) ~tau)))

let naive_postpone_tests =
  Test.make_indexed ~name:"naive.postpone" ~fmt:"%s:%d" ~args:sizes (fun n ->
      let buffer = buffer_of n in
      let entries = Schedule.of_queries ~now buffer in
      let tau = 50.0 in
      Staged.stage (fun () ->
          ignore (Naive_whatif.postpone_by_units entries ~m:0 ~n:(n - 1) ~tau)))

let decision_tests =
  (* One full scheduling decision: build + N what-if questions
     (the quantity plotted in Fig 17). *)
  Test.make_indexed ~name:"sched.decision" ~fmt:"%s:%d" ~args:sizes (fun n ->
      let buffer = buffer_of n in
      let arena = Sla_tree.create_arena () in
      Staged.stage (fun () ->
          ignore (What_if.best_rush (Sla_tree.build ~arena ~now buffer))))

let incr_question_tests =
  (* One postpone question against a live incremental tree. *)
  Test.make_indexed ~name:"incr.postpone" ~fmt:"%s:%d" ~args:sizes (fun n ->
      let tree = Incr_sla_tree.create ~now (buffer_of n) in
      Staged.stage (fun () ->
          ignore (Incr_sla_tree.postpone tree ~m:0 ~n:(n - 1) ~tau:50.0)))

let incr_cycle_tests =
  (* A full pop+append cycle on the incremental structure (amortized
     rebuilds included) — contrast with sched.decision, which rebuilds
     everything. *)
  Test.make_indexed ~name:"incr.pop_append" ~fmt:"%s:%d" ~args:sizes (fun n ->
      let tree = Incr_sla_tree.create ~now (buffer_of n) in
      let replacement = (buffer_of 1).(0) in
      Staged.stage (fun () ->
          Incr_sla_tree.pop_head tree;
          Incr_sla_tree.append tree replacement))

let run_micro () =
  let grouped =
    Test.make_grouped ~name:"slatree"
      [
        build_tests;
        boxed_build_tests;
        postpone_tests;
        naive_postpone_tests;
        decision_tests;
        incr_question_tests;
        incr_cycle_tests;
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "@.=== Bechamel micro-benchmarks (per call) ===@.";
  Fmt.pr "%-36s %14s@." "benchmark" "time";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "-"
        else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
        else Printf.sprintf "%10.1f ns" ns
      in
      Fmt.pr "%-36s %14s@." name pretty)
    rows;
  Fmt.pr "@.";
  rows

(* Part 1b — sim.throughput: whole simulator runs through the FCFS
   SLA-tree scheduling+dispatching pair, rebuild-per-decision vs the
   incremental fast path. An overloaded single server grows its buffer
   into the hundreds, which is exactly where the per-decision
   [Sla_tree.build] dominates the event loop. *)

let throughput_case ~n_queries =
  Trace.generate
    (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:4.0
       ~servers:1 ~n_queries ~seed:42 ())

let timed_run ~queries ~scheduler ~dispatcher =
  let max_buffer = ref 0 in
  let best = ref infinity in
  Gc.compact ();
  for _ = 1 to 3 do
    let metrics = Metrics.create ~warmup_id:0 () in
    let pick_next, hook = Schedulers.instantiate scheduler in
    let pick ~now buffer =
      if Array.length buffer > !max_buffer then max_buffer := Array.length buffer;
      pick_next ~now buffer
    in
    let t0 = Sys.time () in
    Sim.run ?on_server_event:hook ~queries ~n_servers:1 ~pick_next:pick
      ~dispatch:(Dispatchers.instantiate dispatcher)
      ~metrics ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  (!best *. 1e3, !max_buffer)

let run_sim_throughput scale =
  let sizes =
    if scale.Exp_scale.n_queries <= Exp_scale.smoke.Exp_scale.n_queries then
      [ 700 ]
    else [ 700; 1_400; 2_800 ]
  in
  Fmt.pr "=== sim.throughput: rebuild vs incremental FCFS SLA-tree ===@.";
  Fmt.pr "%-9s %-11s %12s %12s %9s@." "queries" "peak buffer" "rebuild"
    "incremental" "speedup";
  let rows =
    List.map
      (fun n ->
        let queries = throughput_case ~n_queries:n in
        let rebuild_ms, peak =
          timed_run ~queries ~scheduler:Schedulers.fcfs_sla_tree
            ~dispatcher:(Dispatchers.sla_tree Planner.fcfs)
        in
        let incr_ms, _ =
          timed_run ~queries ~scheduler:Schedulers.fcfs_sla_tree_incr
            ~dispatcher:(Dispatchers.fcfs_sla_tree_incr ())
        in
        Fmt.pr "%-9d %-11d %9.1f ms %9.1f ms %8.1fx@." n peak rebuild_ms incr_ms
          (rebuild_ms /. incr_ms);
        (n, peak, rebuild_ms, incr_ms))
      sizes
  in
  Fmt.pr "@.";
  rows

(* Part 1b' — scale: the headline end-to-end run. A 1M-query trace
   spread over 100 servers at steady load (50k over 20 at smoke),
   dispatched by FCFS two ways: the incremental per-server trees, and
   the flat rebuild path with memoized dispatch probes. One wall-clock
   run each — at this size a single run is past measurement noise, and
   single-digit seconds for the million-query run is the bar. *)

type scale_bench = {
  sc_queries : int;
  sc_servers : int;
  sc_runs : (string * float * float) list;  (* label, wall ms, queries/s *)
}

let run_scale scale =
  let n, n_servers =
    if scale.Exp_scale.n_queries <= Exp_scale.smoke.Exp_scale.n_queries then
      (50_000, 20)
    else (1_000_000, 100)
  in
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.9
         ~servers:n_servers ~n_queries:n ~seed:scale.Exp_scale.base_seed ())
  in
  Fmt.pr "=== scale: %d queries over %d servers, FCFS ===@." n n_servers;
  let run1 label ~scheduler ~dispatcher =
    Gc.compact ();
    let metrics = Metrics.create ~warmup_id:0 () in
    let pick_next, hook = Schedulers.instantiate scheduler in
    let t0 = Unix.gettimeofday () in
    Sim.run ?on_server_event:hook ~queries ~n_servers ~pick_next
      ~dispatch:(Dispatchers.instantiate dispatcher)
      ~metrics ();
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    let qps = Float.of_int n /. wall_ms *. 1e3 in
    Fmt.pr "%-12s %10.0f ms %12.0f queries/s@." label wall_ms qps;
    (label, wall_ms, qps)
  in
  let incr =
    run1 "fcfs-incr" ~scheduler:Schedulers.fcfs_sla_tree_incr
      ~dispatcher:(Dispatchers.fcfs_sla_tree_incr ())
  in
  let memo =
    run1 "tree-memo" ~scheduler:Schedulers.fcfs_sla_tree
      ~dispatcher:(Dispatchers.sla_tree Planner.fcfs)
  in
  let runs = [ incr; memo ] in
  Fmt.pr "@.";
  { sc_queries = n; sc_servers = n_servers; sc_runs = runs }

(* Part 1c — observability overhead. After the lib/obs refactor every
   instrumentation site exists in the one binary, so "observability
   off" is the noop-sink path, not a separate build: the guard runs
   the incremental sim.throughput case twice over [Obs.noop] (their
   delta is pure measurement noise — it bounds what the disabled
   instrumentation can possibly cost) and once over an enabled sink,
   whose decision-latency percentiles feed BENCH_sim.json. *)

type obs_bench = {
  off_ms : float;
  off_repeat_ms : float;
  off_delta_pct : float;
  on_ms : float;
  on_overhead_pct : float;
  sched_lat : int * float * float * float;  (* count, p50, p90, p99 ns *)
  dispatch_lat : int * float * float * float;
}

let timed_run_obs ~obs ~queries =
  let best = ref infinity in
  Gc.compact ();
  for _ = 1 to 3 do
    let metrics = Metrics.create ~warmup_id:0 () in
    let pick_next, hook =
      Schedulers.instantiate ~obs Schedulers.fcfs_sla_tree_incr
    in
    let dispatch =
      Dispatchers.instantiate ~obs (Dispatchers.fcfs_sla_tree_incr ())
    in
    let t0 = Sys.time () in
    Sim.run ~obs ?on_server_event:hook ~queries ~n_servers:1 ~pick_next
      ~dispatch ~metrics ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e3

let lat_summary reg name =
  let h = Obs.Registry.histogram reg name in
  ( Obs.Registry.observations h,
    Obs.Registry.histogram_percentile h 50.0,
    Obs.Registry.histogram_percentile h 90.0,
    Obs.Registry.histogram_percentile h 99.0 )

let run_obs_overhead scale =
  let n =
    if scale.Exp_scale.n_queries <= Exp_scale.smoke.Exp_scale.n_queries then 700
    else 2_800
  in
  let queries = throughput_case ~n_queries:n in
  Fmt.pr "=== obs: observability overhead (incremental path, %d queries) ===@."
    n;
  let off_ms = timed_run_obs ~obs:Obs.noop ~queries in
  let off_repeat_ms = timed_run_obs ~obs:Obs.noop ~queries in
  let obs = Obs.create () in
  let on_ms = timed_run_obs ~obs ~queries in
  let off_best = Float.min off_ms off_repeat_ms in
  let off_delta_pct =
    Float.abs (off_ms -. off_repeat_ms) /. off_best *. 100.0
  in
  let on_overhead_pct = (on_ms -. off_best) /. off_best *. 100.0 in
  let reg = Obs.registry obs in
  let sched_lat = lat_summary reg "sched.decision_ns" in
  let dispatch_lat = lat_summary reg "dispatch.decision_ns" in
  Fmt.pr "obs off: %.1f ms, off again: %.1f ms — delta %.2f%% (guard: < 2%%)@."
    off_ms off_repeat_ms off_delta_pct;
  Fmt.pr "obs on:  %.1f ms — overhead %.2f%% over the best disabled run@."
    on_ms on_overhead_pct;
  let pr_lat name (c, p50, p90, p99) =
    Fmt.pr "%s: %d decisions, p50/p90/p99 = %.0f / %.0f / %.0f ns@." name c p50
      p90 p99
  in
  pr_lat "  sched.decision_ns   " sched_lat;
  pr_lat "  dispatch.decision_ns" dispatch_lat;
  if off_delta_pct >= 2.0 then
    Fmt.pr
      "  note: disabled-path delta above the 2%% guard — treat as noisy run@.";
  Fmt.pr "@.";
  {
    off_ms;
    off_repeat_ms;
    off_delta_pct;
    on_ms;
    on_overhead_pct;
    sched_lat;
    dispatch_lat;
  }

(* Part 1c' — fault-injection hook overhead. Three runs of one steady
   multi-server workload on the incremental path: no injector at all
   (the pre-existing fast path), an injector over the empty plan
   (timers wired, on_server_event chained — what `--faults none`
   costs), and an active moderate plan. The off-vs-empty delta is the
   price of merely enabling the hooks; it must stay measurement
   noise. *)

type fault_bench = {
  fault_off_ms : float;
  fault_empty_ms : float;
  fault_active_ms : float;
  fault_empty_delta_pct : float;
}

let timed_run_faults ~make_injector ~queries ~n_servers =
  let best = ref infinity in
  Gc.compact ();
  for _ = 1 to 3 do
    let metrics = Metrics.create ~warmup_id:0 () in
    let pick_next, hook =
      Schedulers.instantiate Schedulers.fcfs_sla_tree_incr
    in
    let dispatch =
      Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ())
    in
    let injector = make_injector () in
    let t0 = Sys.time () in
    (match injector with
    | None ->
      Sim.run ?on_server_event:hook ~queries ~n_servers ~pick_next ~dispatch
        ~metrics ()
    | Some inj ->
      let on_server_event ~sid ~now ev =
        Fault.on_server_event inj ~sid ~now ev;
        match hook with Some h -> h ~sid ~now ev | None -> ()
      in
      Sim.run
        ~timers:(Fault.timers inj)
        ~on_server_event ~queries ~n_servers ~pick_next ~dispatch ~metrics ();
      Fault.finalize inj metrics);
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e3

let run_faults scale =
  let n =
    if scale.Exp_scale.n_queries <= Exp_scale.smoke.Exp_scale.n_queries then
      20_000
    else 80_000
  in
  let n_servers = 4 in
  let load = 0.9 in
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load
         ~servers:n_servers ~n_queries:n ~seed:42 ())
  in
  let horizon =
    Float.of_int n
    *. Workloads.nominal_mean_ms Workloads.Exp
    /. (load *. Float.of_int n_servers)
  in
  Fmt.pr
    "=== faults: injection hook overhead (steady load, %d queries, %d \
     servers) ===@."
    n n_servers;
  let fault_off_ms =
    timed_run_faults ~make_injector:(fun () -> None) ~queries ~n_servers
  in
  let fault_empty_ms =
    timed_run_faults
      ~make_injector:(fun () -> Some (Fault.create ~plan:[] ()))
      ~queries ~n_servers
  in
  let active_plan = Fault.plan_of_spec "moderate" ~horizon ~n_servers in
  let fault_active_ms =
    timed_run_faults
      ~make_injector:(fun () -> Some (Fault.create ~plan:active_plan ()))
      ~queries ~n_servers
  in
  let fault_empty_delta_pct =
    (fault_empty_ms -. fault_off_ms) /. fault_off_ms *. 100.0
  in
  Fmt.pr "hooks absent:    %.1f ms@." fault_off_ms;
  Fmt.pr
    "empty plan:      %.1f ms — delta %+.2f%% (run-to-run noise bounds the \
     hook cost)@."
    fault_empty_ms fault_empty_delta_pct;
  Fmt.pr
    "moderate plan:   %.1f ms (%d events; brownouts grow real backlog, so \
     extra time is the faults, not the hooks)@.@."
    fault_active_ms
    (List.length active_plan);
  { fault_off_ms; fault_empty_ms; fault_active_ms; fault_empty_delta_pct }

(* Part 1d — the elastic scenario: the full four-way autoscaling
   comparison (Exp_elastic), timed end to end. *)
let run_elastic scale =
  Fmt.pr "=== elastic: autoscaling comparison (%d queries) ===@."
    scale.Exp_scale.n_queries;
  Gc.compact ();
  let t0 = Sys.time () in
  let rows =
    Exp_elastic.rows ~scale ~seed:scale.Exp_scale.base_seed ()
  in
  let wall_ms = (Sys.time () -. t0) *. 1e3 in
  List.iter
    (fun (r : Exp_elastic.row) ->
      Fmt.pr "%-20s net $%8.0f (profit %8.0f, cost %8.0f)@."
        r.Exp_elastic.label r.Exp_elastic.net r.Exp_elastic.profit
        r.Exp_elastic.cost)
    rows;
  Fmt.pr "%d runs in %.1f ms@.@." (List.length rows) wall_ms;
  (wall_ms, rows)

(* Part 1d-bis — forecast: the predictive controller's two costs. The
   micro loop prices one forecaster update+predict (the per-tick work
   the predictive policy adds to the hot path); the economics rows come
   from the elastic comparison just run — predictive minus reactive is
   the money the forecast-ahead boots make on the diurnal shape. *)

type forecast_bench = {
  fc_updates : int;
  fc_hw_ns : float;  (* Holt–Winters observe+predict, ns *)
  fc_ewma_ns : float;
  fc_reactive_net : float;
  fc_predictive_net : float;
  fc_oracle_net : float;
  fc_delta : float;  (* predictive net - reactive net *)
}

let run_forecast ~rows () =
  Fmt.pr "=== forecast: per-tick forecaster cost + predictive economics ===@.";
  let updates = 2_000_000 in
  let time_model mk =
    let f = mk () in
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for i = 0 to updates - 1 do
      Forecast.observe f (Float.of_int (i land 31));
      ignore (Sys.opaque_identity (Forecast.predict f ~horizon:2))
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. Float.of_int updates
  in
  let hw_ns = time_model (fun () -> Forecast.holt_winters ~season:24 ()) in
  let ewma_ns = time_model (fun () -> Forecast.ewma ()) in
  let net l =
    match List.find_opt (fun r -> r.Exp_elastic.label = l) rows with
    | Some r -> r.Exp_elastic.net
    | None -> Float.nan
  in
  let reactive = net Exp_elastic.reactive_label in
  let predictive = net Exp_elastic.predictive_label in
  let oracle = net Exp_elastic.oracle_label in
  let delta = predictive -. reactive in
  Fmt.pr "hw(24) observe+predict: %.1f ns;  ewma: %.1f ns  (%d updates)@."
    hw_ns ewma_ns updates;
  Fmt.pr
    "diurnal nets: reactive $%.0f, predictive $%.0f (%+.0f), oracle $%.0f@.@."
    reactive predictive delta oracle;
  {
    fc_updates = updates;
    fc_hw_ns = hw_ns;
    fc_ewma_ns = ewma_ns;
    fc_reactive_net = reactive;
    fc_predictive_net = predictive;
    fc_oracle_net = oracle;
    fc_delta = delta;
  }

(* Part 1e — the domain-parallel experiment runner: the whole Table 2
   grid timed serial and on 2 / 4 worker domains, plus the check that
   underwrites the determinism contract — every cell of every parallel
   run must be [Float.equal] to its serial counterpart. [Sys.time] sums
   CPU time across domains, so this one section times wall clock. *)

type parallel_bench = {
  par_cells : int;
  par_serial_ms : float;
  par_runs : (int * float * bool) list;  (* jobs, wall ms, cells identical *)
  par_identical : bool;
  par_cores : int;
}

let wall_table2 scale =
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let cells = Table2.compute scale in
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (ms, cells)

let run_parallel scale =
  Fmt.pr "=== parallel: Table 2 grid, serial vs worker domains ===@.";
  let serial_ms, serial_cells = wall_table2 scale in
  let runs =
    List.map
      (fun jobs ->
        Parallel.set_jobs jobs;
        let ms, cells = wall_table2 scale in
        Parallel.set_jobs 1;
        let identical =
          List.length cells = List.length serial_cells
          && List.for_all2
               (fun (a : Table2.cell) (b : Table2.cell) ->
                 Float.equal a.Table2.avg_loss b.Table2.avg_loss)
               serial_cells cells
        in
        (jobs, ms, identical))
      [ 2; 4 ]
  in
  let par_identical = List.for_all (fun (_, _, ok) -> ok) runs in
  let par_cores = Domain.recommended_domain_count () in
  Fmt.pr "%d cells on %d core(s); serial: %.1f ms@."
    (List.length serial_cells) par_cores serial_ms;
  List.iter
    (fun (jobs, ms, ok) ->
      Fmt.pr "-j %d: %.1f ms (%.2fx)%s@." jobs ms (serial_ms /. ms)
        (if ok then "" else " — CELLS DIFFER FROM SERIAL"))
    runs;
  Fmt.pr "cells bit-identical across worker counts: %b@.@." par_identical;
  {
    par_cells = List.length serial_cells;
    par_serial_ms = serial_ms;
    par_runs = runs;
    par_identical;
    par_cores;
  }

(* Part 1f — serve: the socket path. The same trace runs twice: once
   in-process through [Sim.run], once through the serving daemon — a
   second domain running the accept loop on a unix socket, fed by the
   replay client unpaced in deterministic mode. The delta is the whole
   cost of serving (framing, syscalls, select loop); the daemon's obs
   registry supplies the per-decision latency percentiles through the
   socket path. *)

type serve_bench = {
  sv_queries : int;
  sv_servers : int;
  sv_wall_ms : float;
  sv_arrivals_per_s : float;
  sv_inproc_ms : float;
  sv_profit_identical : bool;
  sv_sched_lat : int * float * float * float;
  sv_dispatch_lat : int * float * float * float;
}

let run_serve scale =
  let n, n_servers =
    if scale.Exp_scale.n_queries <= Exp_scale.smoke.Exp_scale.n_queries then
      (20_000, 8)
    else (100_000, 20)
  in
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.9
         ~servers:n_servers ~n_queries:n ~seed:scale.Exp_scale.base_seed ())
  in
  Fmt.pr "=== serve: socket path vs in-process, %d queries over %d servers ===@."
    n n_servers;
  (* In-process baseline. *)
  Gc.compact ();
  let inproc_metrics = Metrics.create ~warmup_id:0 () in
  let inproc_ms =
    let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
    let t0 = Unix.gettimeofday () in
    Sim.run ?on_server_event:hook ~queries ~n_servers ~pick_next
      ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
      ~metrics:inproc_metrics ();
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  (* Socket path: daemon in a second domain, unpaced deterministic
     replay over a unix socket. *)
  let sock = Filename.temp_file "slatree-bench" ".sock" in
  Sys.remove sock;
  let obs = Obs.create ~trace_capacity:0 () in
  let engine =
    Daemon.Engine.create ~obs ~clock:(Vclock.manual ())
      ~scheduler:Schedulers.fcfs_sla_tree_incr
      ~dispatcher:(Dispatchers.fcfs_sla_tree_incr ())
      ~n_servers ()
  in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.serve ~exit_on_idle:true
          ~on_ready:(fun () -> Atomic.set ready true)
          ~engine ~listen:(Daemon.Unix_sock sock) ())
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.001
  done;
  let fd = Replay.connect (Daemon.Unix_sock sock) in
  let t0 = Unix.gettimeofday () in
  let report = Replay.run ~speed:0.0 ~client:"bench" ~fd ~queries () in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Domain.join daemon;
  let arrivals_per_s = Float.of_int n /. wall_ms *. 1e3 in
  let profit_identical =
    match report.Replay.summary with
    | Some s ->
      Float.equal s.Wire.total_profit (Metrics.total_profit inproc_metrics)
    | None -> false
  in
  let reg = Obs.registry obs in
  let sched_lat = lat_summary reg "sched.decision_ns" in
  let dispatch_lat = lat_summary reg "dispatch.decision_ns" in
  Fmt.pr "in-process:  %10.0f ms@." inproc_ms;
  Fmt.pr "socket path: %10.0f ms %12.0f arrivals/s (%.1fx in-process)@."
    wall_ms arrivals_per_s (wall_ms /. inproc_ms);
  Fmt.pr "profit identical to in-process run: %b@." profit_identical;
  let pr_lat name (c, p50, p90, p99) =
    Fmt.pr "%s: %d decisions, p50/p90/p99 = %.0f / %.0f / %.0f ns@." name c p50
      p90 p99
  in
  pr_lat "  sched.decision_ns   " sched_lat;
  pr_lat "  dispatch.decision_ns" dispatch_lat;
  Fmt.pr "@.";
  {
    sv_queries = n;
    sv_servers = n_servers;
    sv_wall_ms = wall_ms;
    sv_arrivals_per_s = arrivals_per_s;
    sv_inproc_ms = inproc_ms;
    sv_profit_identical = profit_identical;
    sv_sched_lat = sched_lat;
    sv_dispatch_lat = dispatch_lat;
  }

(* Part 1g — swf: the real-trace path. The committed SWF fixture is
   tiled into a ~1M-job stream (smoke: ~50k): streaming parse
   throughput (MB/s, jobs/s), SLA-synthesis throughput, and the
   end-to-end streamed experiment cell, with the GC's top-of-heap as
   the proxy showing no pass ever materializes the trace. *)

type swf_bench = {
  sw_path : string;
  sw_file_jobs : int;
  sw_tiles : int;
  sw_mb : float;  (** bytes streamed through the parser, MB *)
  sw_parse_ms : float;
  sw_parse_mb_s : float;
  sw_parse_jobs_s : float;
  sw_synth_queries : int;
  sw_synth_ms : float;
  sw_synth_jobs_s : float;
  sw_run_queries : int;
  sw_run_ms : float;
  sw_run_qps : float;
  sw_peak_heap_mb : float;
}

let fixture_swf () =
  let committed =
    List.fold_left Filename.concat "test" [ "data"; "pwa_excerpt.swf" ]
  in
  if Sys.file_exists committed then (committed, false)
  else begin
    (* Bench invoked away from the repo root: generate a stand-in of
       the same shape so the section still measures something real. *)
    let path = Filename.temp_file "slatree-bench" ".swf" in
    let rng = Prng.create 20110322 in
    let t = ref 0.0 in
    let jobs =
      Array.init 2500 (fun i ->
          t := !t +. Prng.exponential rng ~mean:160.0;
          let run_time = Float.round (Prng.exponential rng ~mean:1500.0) +. 1.0 in
          let req_time =
            if Prng.float rng < 0.12 then -1.0
            else Float.round (run_time *. (1.0 +. (3.0 *. Prng.float rng)))
          in
          {
            Swf.job_id = i + 1; submit = Float.round !t; wait = -1.0; run_time;
            procs = 1; cpu_time = -1.0; memory = -1.0; req_procs = 1; req_time;
            req_memory = -1.0; status = 1; user = 1; group = 1; app = 1;
            queue = 1; partition = 1; preceding = -1; think_time = -1.0;
          })
    in
    Swf.save path ~header:[ "Computer: generated bench stand-in" ] jobs;
    (path, true)
  end

let run_swf scale =
  let path, temp = fixture_swf () in
  Fun.protect
    ~finally:(fun () -> if temp then Sys.remove path)
    (fun () ->
      let tiles =
        if scale.Exp_scale.n_queries <= Exp_scale.smoke.Exp_scale.n_queries
        then 20
        else 417 (* 2500 jobs x 417 ~ 1.04M *)
      in
      let file_mb =
        Float.of_int (Unix.stat path).Unix.st_size /. (1024.0 *. 1024.0)
      in
      Fmt.pr "=== swf: real-trace streaming, %s x %d tiles ===@." path tiles;
      (* Parse only. *)
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let file_jobs = ref 0 in
      for _ = 1 to tiles do
        file_jobs := Swf.fold path ~init:0 ~f:(fun n _ -> n + 1)
      done;
      let parse_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      let total_jobs = tiles * !file_jobs in
      let mb = file_mb *. Float.of_int tiles in
      let parse_mb_s = mb /. parse_ms *. 1e3 in
      let parse_jobs_s = Float.of_int total_jobs /. parse_ms *. 1e3 in
      (* Parse + SLA synthesis. *)
      let synth_cfg = Sla_synth.config ~time_scale:10.0 () in
      let stats = Sla_synth.stats_create () in
      let t0 = Unix.gettimeofday () in
      Seq.iter ignore (Sla_synth.stream synth_cfg ~tiles ~stats ~path ());
      let synth_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      let synth_jobs_s = Float.of_int stats.Sla_synth.read /. synth_ms *. 1e3 in
      (* End-to-end: the streamed experiment cell (incremental SLA-tree
         scheduling and dispatching) over the full tiled stream. *)
      let n_servers = 20 in
      let warmup_id = stats.Sla_synth.kept / 10 in
      let metrics = Metrics.create ~response_cap:65_536 ~warmup_id () in
      let pick_next, hook =
        Schedulers.instantiate Schedulers.fcfs_sla_tree_incr
      in
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let sess =
        Sim.session ?on_server_event:hook ~n_servers ~pick_next
          ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
          ~metrics ()
      in
      Seq.iter (Sim.inject sess)
        (Sla_synth.stream synth_cfg ~tiles ~path ());
      Sim.drain sess;
      let run_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      let run_queries = Metrics.completed_count metrics in
      let run_qps = Float.of_int stats.Sla_synth.kept /. run_ms *. 1e3 in
      let peak_heap_mb =
        Float.of_int (Gc.quick_stat ()).Gc.top_heap_words
        *. Float.of_int (Sys.word_size / 8)
        /. (1024.0 *. 1024.0)
      in
      Fmt.pr "parse:     %10.0f ms  %8.1f MB/s %12.0f jobs/s (%d jobs)@."
        parse_ms parse_mb_s parse_jobs_s total_jobs;
      Fmt.pr "synthesis: %10.0f ms %22.0f jobs/s (%d queries)@." synth_ms
        synth_jobs_s stats.Sla_synth.kept;
      Fmt.pr
        "streamed run: %7.0f ms %22.0f queries/s (%d completed, %d servers)@."
        run_ms run_qps run_queries n_servers;
      Fmt.pr "top of heap after streaming %d jobs: %.1f MB@.@." total_jobs
        peak_heap_mb;
      {
        sw_path = path;
        sw_file_jobs = !file_jobs;
        sw_tiles = tiles;
        sw_mb = mb;
        sw_parse_ms = parse_ms;
        sw_parse_mb_s = parse_mb_s;
        sw_parse_jobs_s = parse_jobs_s;
        sw_synth_queries = stats.Sla_synth.kept;
        sw_synth_ms = synth_ms;
        sw_synth_jobs_s = synth_jobs_s;
        sw_run_queries = run_queries;
        sw_run_ms = run_ms;
        sw_run_qps = run_qps;
        sw_peak_heap_mb = peak_heap_mb;
      })

(* ------------------------------------------------------------------ *)
(* Tenancy: what the probe-priced admission controller costs on the
   arrival hot path. One bursty overloaded tenant-tagged workload,
   identical pool and stack, admission off vs on — the on run pays one
   O(servers) append-probe scan plus up to two O(log M) postpone
   probes per arrival. *)

type tenancy_bench = {
  tn_queries : int;
  tn_off_ms : float;
  tn_on_ms : float;
  tn_overhead_pct : float;
  tn_profit_off : float;
  tn_profit_on : float;
  tn_rejected : int;
  tn_degraded : int;
}

let run_tenancy scale =
  let n_queries = max 2_000 (scale.Exp_scale.n_queries / 2) in
  let servers = 4 in
  let warmup_id = n_queries / 10 in
  let reg = Tenancy.default_registry () in
  let tcfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
      ~servers ~n_queries ~seed:42 ()
  in
  let period = Float.of_int n_queries /. Trace.arrival_rate tcfg /. 8.0 in
  let queries =
    Tenancy.assign reg
      (Bursty.generate tcfg (Bursty.square ~period ~duty:0.4 ~low:0.5 ~high:2.5))
  in
  Fmt.pr "=== tenancy: admission-probe cost, %d queries x %d servers ===@."
    n_queries servers;
  let one ~admission_on =
    let acct = Tenancy.Acct.create reg ~warmup_id in
    let admit =
      if admission_on then Tenancy.admit (Tenancy.admission reg ~acct ())
      else fun _sim q ->
        Tenancy.Acct.on_offered acct q;
        Tenancy.Acct.on_admitted acct q;
        Sim.Admit
    in
    let metrics = Metrics.create ~warmup_id () in
    let pick_next, hook =
      Schedulers.instantiate Schedulers.fcfs_sla_tree_incr
    in
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    Sim.run ~admit
      ~on_complete:(Tenancy.Acct.on_complete acct)
      ?on_server_event:hook ~queries ~n_servers:servers ~pick_next
      ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
      ~metrics ();
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    (ms, Tenancy.report acct, metrics)
  in
  let off_ms, rep_off, _ = one ~admission_on:false in
  let on_ms, rep_on, m_on = one ~admission_on:true in
  let overhead_pct = (on_ms -. off_ms) /. off_ms *. 100.0 in
  let rejected = Metrics.rejected_count m_on in
  let degraded =
    List.fold_left (fun a r -> a + r.Tenancy.r_degraded) 0 rep_on.Tenancy.rows
  in
  Fmt.pr "admission off: %8.1f ms  profit $%.1f@." off_ms
    rep_off.Tenancy.rep_profit;
  Fmt.pr
    "admission on:  %8.1f ms  profit $%.1f  (%d rejected, %d degraded, \
     %+.1f%% time)@."
    on_ms rep_on.Tenancy.rep_profit rejected degraded overhead_pct;
  Fmt.pr "@.";
  {
    tn_queries = n_queries;
    tn_off_ms = off_ms;
    tn_on_ms = on_ms;
    tn_overhead_pct = overhead_pct;
    tn_profit_off = rep_off.Tenancy.rep_profit;
    tn_profit_on = rep_on.Tenancy.rep_profit;
    tn_rejected = rejected;
    tn_degraded = degraded;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_sim.json). Hand-rolled writer: the
   schema is flat and the toolchain has no JSON dependency. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let emit_json ~path ~scale ~micro ~throughput ~scale_run ~elastic ~forecast
    ~obs ~faults ~parallel ~serve ~swf ~tenancy =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"schema\": \"slatree-bench/1\",\n");
  add (Printf.sprintf "  \"scale\": \"%s\",\n" (json_escape (Exp_scale.name scale)));
  add (Printf.sprintf "  \"n_queries\": %d,\n" scale.Exp_scale.n_queries);
  add "  \"micro_ns\": [\n";
  List.iteri
    (fun i (name, ns) ->
      add
        (Printf.sprintf "    {\"name\": \"%s\", \"ns\": %s}%s\n"
           (json_escape name) (json_float ns)
           (if i = List.length micro - 1 then "" else ",")))
    micro;
  add "  ],\n";
  add "  \"sim_throughput\": [\n";
  List.iteri
    (fun i (n, peak, rebuild_ms, incr_ms) ->
      add
        (Printf.sprintf
           "    {\"queries\": %d, \"peak_buffer\": %d, \"rebuild_ms\": %s, \
            \"incremental_ms\": %s, \"speedup\": %s}%s\n"
           n peak (json_float rebuild_ms) (json_float incr_ms)
           (json_float (rebuild_ms /. incr_ms))
           (if i = List.length throughput - 1 then "" else ",")))
    throughput;
  add "  ],\n";
  add "  \"scale_run\": {\n";
  add (Printf.sprintf "    \"queries\": %d,\n" scale_run.sc_queries);
  add (Printf.sprintf "    \"servers\": %d,\n" scale_run.sc_servers);
  add "    \"runs\": [\n";
  List.iteri
    (fun i (label, wall_ms, qps) ->
      add
        (Printf.sprintf
           "      {\"label\": \"%s\", \"wall_ms\": %s, \"qps\": %s}%s\n"
           (json_escape label) (json_float wall_ms) (json_float qps)
           (if i = List.length scale_run.sc_runs - 1 then "" else ",")))
    scale_run.sc_runs;
  add "    ]\n  },\n";
  let wall_ms, rows = elastic in
  add "  \"elastic\": {\n";
  add (Printf.sprintf "    \"wall_ms\": %s,\n" (json_float wall_ms));
  add "    \"rows\": [\n";
  List.iteri
    (fun i (r : Exp_elastic.row) ->
      add
        (Printf.sprintf
           "      {\"policy\": \"%s\", \"initial\": %d, \"profit\": %s, \
            \"server_time\": %s, \"cost\": %s, \"net\": %s, \"peak_pool\": %d, \
            \"min_pool\": %d, \"scale_ups\": %d, \"scale_downs\": %d}%s\n"
           (json_escape r.Exp_elastic.label)
           r.Exp_elastic.initial
           (json_float r.Exp_elastic.profit)
           (json_float r.Exp_elastic.server_time)
           (json_float r.Exp_elastic.cost)
           (json_float r.Exp_elastic.net)
           r.Exp_elastic.peak r.Exp_elastic.low r.Exp_elastic.ups
           r.Exp_elastic.downs
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  add "    ]\n  },\n";
  add "  \"forecast\": {\n";
  add (Printf.sprintf "    \"updates\": %d,\n" forecast.fc_updates);
  add (Printf.sprintf "    \"hw_ns\": %s,\n" (json_float forecast.fc_hw_ns));
  add
    (Printf.sprintf "    \"ewma_ns\": %s,\n" (json_float forecast.fc_ewma_ns));
  add
    (Printf.sprintf "    \"reactive_net\": %s,\n"
       (json_float forecast.fc_reactive_net));
  add
    (Printf.sprintf "    \"predictive_net\": %s,\n"
       (json_float forecast.fc_predictive_net));
  add
    (Printf.sprintf "    \"oracle_net\": %s,\n"
       (json_float forecast.fc_oracle_net));
  add
    (Printf.sprintf "    \"predictive_minus_reactive\": %s\n"
       (json_float forecast.fc_delta));
  add "  },\n";
  let lat_json name (c, p50, p90, p99) last =
    add
      (Printf.sprintf
         "    \"%s\": {\"count\": %d, \"p50_ns\": %s, \"p90_ns\": %s, \
          \"p99_ns\": %s}%s\n"
         name c (json_float p50) (json_float p90) (json_float p99)
         (if last then "" else ","))
  in
  add "  \"obs\": {\n";
  add (Printf.sprintf "    \"off_ms\": %s,\n" (json_float obs.off_ms));
  add
    (Printf.sprintf "    \"off_repeat_ms\": %s,\n"
       (json_float obs.off_repeat_ms));
  add
    (Printf.sprintf "    \"off_delta_pct\": %s,\n"
       (json_float obs.off_delta_pct));
  add (Printf.sprintf "    \"on_ms\": %s,\n" (json_float obs.on_ms));
  add
    (Printf.sprintf "    \"on_overhead_pct\": %s,\n"
       (json_float obs.on_overhead_pct));
  lat_json "sched_decision_ns" obs.sched_lat false;
  lat_json "dispatch_decision_ns" obs.dispatch_lat true;
  add "  },\n";
  add "  \"faults\": {\n";
  add (Printf.sprintf "    \"off_ms\": %s,\n" (json_float faults.fault_off_ms));
  add
    (Printf.sprintf "    \"empty_plan_ms\": %s,\n"
       (json_float faults.fault_empty_ms));
  add
    (Printf.sprintf "    \"active_plan_ms\": %s,\n"
       (json_float faults.fault_active_ms));
  add
    (Printf.sprintf "    \"empty_delta_pct\": %s\n"
       (json_float faults.fault_empty_delta_pct));
  add "  },\n";
  add "  \"parallel\": {\n";
  add (Printf.sprintf "    \"cells\": %d,\n" parallel.par_cells);
  add (Printf.sprintf "    \"cores\": %d,\n" parallel.par_cores);
  add
    (Printf.sprintf "    \"serial_ms\": %s,\n"
       (json_float parallel.par_serial_ms));
  add
    (Printf.sprintf "    \"bit_identical\": %b,\n" parallel.par_identical);
  add "    \"runs\": [\n";
  List.iteri
    (fun i (jobs, ms, identical) ->
      add
        (Printf.sprintf
           "      {\"jobs\": %d, \"ms\": %s, \"speedup\": %s, \
            \"identical\": %b}%s\n"
           jobs (json_float ms)
           (json_float (parallel.par_serial_ms /. ms))
           identical
           (if i = List.length parallel.par_runs - 1 then "" else ",")))
    parallel.par_runs;
  add "    ]\n  },\n";
  add "  \"serve\": {\n";
  add (Printf.sprintf "    \"queries\": %d,\n" serve.sv_queries);
  add (Printf.sprintf "    \"servers\": %d,\n" serve.sv_servers);
  add (Printf.sprintf "    \"wall_ms\": %s,\n" (json_float serve.sv_wall_ms));
  add
    (Printf.sprintf "    \"arrivals_per_s\": %s,\n"
       (json_float serve.sv_arrivals_per_s));
  add
    (Printf.sprintf "    \"inproc_ms\": %s,\n" (json_float serve.sv_inproc_ms));
  add
    (Printf.sprintf "    \"socket_overhead_x\": %s,\n"
       (json_float (serve.sv_wall_ms /. serve.sv_inproc_ms)));
  add
    (Printf.sprintf "    \"profit_identical\": %b,\n"
       serve.sv_profit_identical);
  lat_json "sched_decision_ns" serve.sv_sched_lat false;
  lat_json "dispatch_decision_ns" serve.sv_dispatch_lat true;
  add "  },\n";
  add "  \"swf\": {\n";
  add (Printf.sprintf "    \"fixture\": \"%s\",\n" (json_escape swf.sw_path));
  add (Printf.sprintf "    \"file_jobs\": %d,\n" swf.sw_file_jobs);
  add (Printf.sprintf "    \"tiles\": %d,\n" swf.sw_tiles);
  add (Printf.sprintf "    \"jobs\": %d,\n" (swf.sw_file_jobs * swf.sw_tiles));
  add (Printf.sprintf "    \"mb\": %s,\n" (json_float swf.sw_mb));
  add (Printf.sprintf "    \"parse_ms\": %s,\n" (json_float swf.sw_parse_ms));
  add
    (Printf.sprintf "    \"parse_mb_s\": %s,\n" (json_float swf.sw_parse_mb_s));
  add
    (Printf.sprintf "    \"parse_jobs_s\": %s,\n"
       (json_float swf.sw_parse_jobs_s));
  add
    (Printf.sprintf "    \"synth_queries\": %d,\n" swf.sw_synth_queries);
  add (Printf.sprintf "    \"synth_ms\": %s,\n" (json_float swf.sw_synth_ms));
  add
    (Printf.sprintf "    \"synth_jobs_s\": %s,\n"
       (json_float swf.sw_synth_jobs_s));
  add
    (Printf.sprintf "    \"run_queries\": %d,\n" swf.sw_run_queries);
  add (Printf.sprintf "    \"run_ms\": %s,\n" (json_float swf.sw_run_ms));
  add (Printf.sprintf "    \"run_qps\": %s,\n" (json_float swf.sw_run_qps));
  add
    (Printf.sprintf "    \"peak_heap_mb\": %s\n"
       (json_float swf.sw_peak_heap_mb));
  add "  },\n";
  add "  \"tenancy\": {\n";
  add (Printf.sprintf "    \"queries\": %d,\n" tenancy.tn_queries);
  add (Printf.sprintf "    \"off_ms\": %s,\n" (json_float tenancy.tn_off_ms));
  add (Printf.sprintf "    \"on_ms\": %s,\n" (json_float tenancy.tn_on_ms));
  add
    (Printf.sprintf "    \"overhead_pct\": %s,\n"
       (json_float tenancy.tn_overhead_pct));
  add
    (Printf.sprintf "    \"profit_off\": %s,\n"
       (json_float tenancy.tn_profit_off));
  add
    (Printf.sprintf "    \"profit_on\": %s,\n"
       (json_float tenancy.tn_profit_on));
  add (Printf.sprintf "    \"rejected\": %d,\n" tenancy.tn_rejected);
  add (Printf.sprintf "    \"degraded\": %d\n" tenancy.tn_degraded);
  add "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let () =
  let ppf = Format.std_formatter in
  let micro_only = Array.exists (String.equal "--micro-only") Sys.argv in
  let scale = Exp_scale.from_env () in
  Fmt.pr
    "SLA-tree benchmark harness — scale %s (%d queries, %d warm-up, %d repeats)@."
    (Exp_scale.name scale) scale.Exp_scale.n_queries scale.Exp_scale.warmup
    scale.Exp_scale.repeats;
  (* Timed before the bechamel pass: its measurement loops leave the
     process in a state (heap shape, GC tuning) that skews wall-clock
     numbers taken afterwards. *)
  let throughput = run_sim_throughput scale in
  let scale_run = run_scale scale in
  let obs = run_obs_overhead scale in
  let faults = run_faults scale in
  let elastic = run_elastic scale in
  let forecast = run_forecast ~rows:(snd elastic) () in
  let parallel = run_parallel scale in
  let serve = run_serve scale in
  let swf = run_swf scale in
  let tenancy = run_tenancy scale in
  let micro = run_micro () in
  emit_json ~path:"BENCH_sim.json" ~scale ~micro ~throughput ~scale_run
    ~elastic ~forecast ~obs ~faults ~parallel ~serve ~swf ~tenancy;
  if not micro_only then begin
    Fig15.run ppf ~seed:scale.Exp_scale.base_seed ();
    Table2.run ppf scale;
    Table3.run ppf scale;
    Table4.run ppf scale;
    Table5.run ppf scale;
    Table6.run ppf scale;
    Table7.run ppf ();
    Fig17.run ppf ~seed:scale.Exp_scale.base_seed ();
    Validation.run ppf scale;
    Ablations.run_all ppf scale
  end;
  Fmt.pr "@.done.@."
