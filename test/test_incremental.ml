(* Tests for the incremental SLA-tree: every answer must equal a fresh
   static SLA-tree built over the same live schedule, across pops
   (with and without drift), appends, drains and random operation
   sequences. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let sla2 =
  Sla.make
    ~levels:[ { bound = 30.0; gain = 2.0 }; { bound = 80.0; gain = 1.0 } ]
    ~penalty:1.0

let mk ?(sla = sla2) id arrival size = Query.make ~id ~arrival ~size ~sla ()

let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)

(* Oracle: a fresh static tree over the incremental structure's live
   schedule. *)
let static_of t = Sla_tree.of_entries ~now:0.0 (Incr_sla_tree.to_entries t)

let agree t ~msg =
  let n = Incr_sla_tree.length t in
  if n > 0 then begin
    let oracle = static_of t in
    List.iter
      (fun tau ->
        for m = 0 to n - 1 do
          let hi = n - 1 in
          let a = Incr_sla_tree.postpone t ~m ~n:hi ~tau in
          let b = Sla_tree.postpone oracle ~m ~n:hi ~tau in
          if not (close a b) then
            Alcotest.failf "%s: postpone(%d,%d,%g) incr %.9f vs static %.9f" msg m
              hi tau a b;
          let a = Incr_sla_tree.expedite t ~m ~n:hi ~tau in
          let b = Sla_tree.expedite oracle ~m ~n:hi ~tau in
          if not (close a b) then
            Alcotest.failf "%s: expedite(%d,%d,%g) incr %.9f vs static %.9f" msg m
              hi tau a b
        done)
      [ 0.0; 1.0; 7.5; 25.0; 60.0; 200.0 ]
  end

let initial_buffer n =
  Array.init n (fun i -> mk i (Float.of_int i *. 3.0) (5.0 +. Float.of_int (i mod 7)))

let test_fresh_matches_static () =
  let t = Incr_sla_tree.create ~now:50.0 (initial_buffer 12) in
  agree t ~msg:"fresh"

let test_pop_exact () =
  let t = Incr_sla_tree.create ~now:50.0 (initial_buffer 12) in
  Incr_sla_tree.pop_head t;
  agree t ~msg:"after 1 exact pop";
  Incr_sla_tree.pop_head t;
  Incr_sla_tree.pop_head t;
  agree t ~msg:"after 3 exact pops";
  check_float "no drift" 0.0 (Incr_sla_tree.delay t);
  check_int "no rebuild yet" 0 (Incr_sla_tree.rebuild_count t)

let test_pop_with_drift () =
  let t = Incr_sla_tree.create ~now:50.0 (initial_buffer 12) in
  (* First query (est 5) actually takes 9: everything shifts by +4. *)
  Incr_sla_tree.pop_head ~actual:9.0 t;
  check_float "positive drift" 4.0 (Incr_sla_tree.delay t);
  agree t ~msg:"after slow pop";
  (* Next one finishes early: drift partially cancels. *)
  Incr_sla_tree.pop_head ~actual:1.0 t;
  check_float "drift netted" (4.0 -. 5.0) (Incr_sla_tree.delay t);
  agree t ~msg:"after fast pop"

let test_pop_large_negative_drift () =
  (* Strong negative drift un-lates queries that were past their
     deadlines: the S- correction terms must kick in. *)
  let tight = Sla.make ~levels:[ { bound = 4.0; gain = 3.0 } ] ~penalty:0.0 in
  let qs = Array.init 6 (fun i -> mk ~sla:tight i 0.0 5.0) in
  let t = Incr_sla_tree.create ~now:0.0 qs in
  (* All except the head are hopelessly late on the planned schedule. *)
  Incr_sla_tree.pop_head ~actual:0.5 t;
  agree t ~msg:"after very fast pop";
  Incr_sla_tree.pop_head ~actual:0.5 t;
  agree t ~msg:"after two very fast pops"

let test_append_matches () =
  let t = Incr_sla_tree.create ~now:50.0 (initial_buffer 6) in
  Incr_sla_tree.append t (mk 100 60.0 4.0);
  check_int "one pending" 1 (Incr_sla_tree.pending_count t);
  agree t ~msg:"after 1 append";
  Incr_sla_tree.append t (mk 101 61.0 9.0);
  Incr_sla_tree.append t (mk 102 62.0 2.0);
  agree t ~msg:"after 3 appends"

let test_append_after_drift () =
  let t = Incr_sla_tree.create ~now:50.0 (initial_buffer 6) in
  Incr_sla_tree.pop_head ~actual:11.0 t;
  Incr_sla_tree.append t (mk 100 70.0 4.0);
  agree t ~msg:"append on drifted schedule";
  Incr_sla_tree.pop_head ~actual:2.0 t;
  agree t ~msg:"drift after append"

let test_rebuild_triggered_by_appends () =
  let t = Incr_sla_tree.create ~now:0.0 (initial_buffer 4) in
  for i = 0 to 19 do
    Incr_sla_tree.append t (mk (100 + i) (Float.of_int i) 3.0)
  done;
  check_bool "rebuilt at least once" true (Incr_sla_tree.rebuild_count t > 0);
  check_bool "overflow stayed bounded" true (Incr_sla_tree.pending_count t <= 13);
  agree t ~msg:"after many appends"

let test_drain_and_restart () =
  let t = Incr_sla_tree.create ~now:10.0 (initial_buffer 3) in
  Incr_sla_tree.pop_head ~actual:6.0 t;
  Incr_sla_tree.pop_head t;
  Incr_sla_tree.pop_head t;
  check_int "empty" 0 (Incr_sla_tree.length t);
  (* Server idles, then traffic resumes. *)
  Incr_sla_tree.reset_origin t ~now:500.0;
  Incr_sla_tree.append t (mk 50 500.0 10.0);
  agree t ~msg:"restarted after drain";
  (* The restarted query starts at 500: completion 510; unit slacks 20
     (decomposed gain g1 - g2 = 1) and 70 (gain g2 + p = 2). *)
  check_float "first unit lost" 1.0 (Incr_sla_tree.postpone t ~m:0 ~n:0 ~tau:20.5);
  check_float "both units lost" 3.0 (Incr_sla_tree.postpone t ~m:0 ~n:0 ~tau:70.5)

let test_pop_pending_only () =
  (* Popping when only pending queries remain promotes them first. *)
  let t = Incr_sla_tree.create ~now:0.0 (initial_buffer 1) in
  Incr_sla_tree.append t (mk 10 1.0 2.0);
  Incr_sla_tree.append t (mk 11 2.0 2.0);
  Incr_sla_tree.pop_head t;
  (* base drained; next pop must promote pending *)
  Incr_sla_tree.pop_head t;
  check_int "one left" 1 (Incr_sla_tree.length t);
  agree t ~msg:"after pending promotion"

let test_errors () =
  let t = Incr_sla_tree.create ~now:0.0 [||] in
  check_bool "pop empty raises" true
    (match Incr_sla_tree.pop_head t with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Incr_sla_tree.append t (mk 0 0.0 1.0);
  check_bool "reset non-empty raises" true
    (match Incr_sla_tree.reset_origin t ~now:10.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad range raises" true
    (match Incr_sla_tree.postpone t ~m:0 ~n:5 ~tau:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Random operation sequences vs the static oracle. *)

type op = Append of float * float | Pop of float | Check of float

let gen_ops =
  QCheck.Gen.(
    let op =
      frequency
        [
          (3, map2 (fun s b -> Append (s, b)) (float_range 0.5 20.0) (float_range 2.0 120.0));
          (3, map (fun f -> Pop f) (float_range 0.1 2.5));
          (2, map (fun tau -> Check tau) (float_range 0.0 150.0));
        ]
    in
    list_size (5 -- 60) op)

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Append (s, b) -> Printf.sprintf "A(%.2f,%.2f)" s b
             | Pop f -> Printf.sprintf "P(%.2f)" f
             | Check tau -> Printf.sprintf "C(%.2f)" tau)
           ops))
    gen_ops

let prop_random_ops_match_oracle =
  QCheck.Test.make ~name:"random op sequences match static oracle" ~count:200
    arb_ops
    (fun ops ->
      let t = Incr_sla_tree.create ~now:0.0 (initial_buffer 5) in
      let next_id = ref 1000 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Append (size, bound) ->
            let sla = Sla.make ~levels:[ { bound; gain = 1.5 } ] ~penalty:0.5 in
            incr next_id;
            Incr_sla_tree.append t
              (Query.make ~id:!next_id ~arrival:(Float.of_int !next_id) ~size ~sla ())
          | Pop factor ->
            if Incr_sla_tree.length t > 0 then begin
              let entries = Incr_sla_tree.to_entries t in
              let est = entries.(0).Schedule.query.Query.est_size in
              Incr_sla_tree.pop_head ~actual:(est *. factor) t
            end
          | Check tau ->
            let n = Incr_sla_tree.length t in
            if n > 0 then begin
              let oracle = static_of t in
              let m = n / 3 and hi = n - 1 in
              if
                not
                  (close
                     (Incr_sla_tree.postpone t ~m ~n:hi ~tau)
                     (Sla_tree.postpone oracle ~m ~n:hi ~tau))
              then ok := false;
              if
                not
                  (close
                     (Incr_sla_tree.expedite t ~m:0 ~n:hi ~tau)
                     (Sla_tree.expedite oracle ~m:0 ~n:hi ~tau))
              then ok := false
            end)
        ops;
      !ok)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "incremental"
    [
      ( "basic",
        [
          Alcotest.test_case "fresh matches static" `Quick test_fresh_matches_static;
          Alcotest.test_case "pop exact" `Quick test_pop_exact;
          Alcotest.test_case "pop with drift" `Quick test_pop_with_drift;
          Alcotest.test_case "large negative drift" `Quick test_pop_large_negative_drift;
          Alcotest.test_case "append" `Quick test_append_matches;
          Alcotest.test_case "append after drift" `Quick test_append_after_drift;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "rebuild on append overflow" `Quick
            test_rebuild_triggered_by_appends;
          Alcotest.test_case "drain and restart" `Quick test_drain_and_restart;
          Alcotest.test_case "pop promotes pending" `Quick test_pop_pending_only;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ("property", [ qtest prop_random_ops_match_oracle ]);
    ]
