#!/usr/bin/env python3
"""Deterministic generator for test/data/pwa_excerpt.swf.

The CI environment for this repository has no network access, so the
test fixture cannot be a byte-for-byte download from the Parallel
Workloads Archive (https://www.cs.huji.ac.il/labs/parallel/workload/).
Instead this script emits a ~2.5k-job excerpt in the Standard Workload
Format whose shape is modeled on the published characteristics of the
SDSC-SP2 log (diurnal Poisson submissions, log-normally distributed
run times with a heavy tail, power-of-two processor requests, coarse
user-rounded requested times that overestimate the run time, a few
percent of cancelled/failed jobs, and -1 markers for missing fields).

Regeneration is bit-exact: python3 gen_fixture.py > pwa_excerpt.swf
(seed fixed below; stdlib only).
"""

import math
import random

SEED = 20110322
N_JOBS = 2500
START_UNIX = 820454400  # 1 Jan 1996, the SDSC-SP2 era
MAX_NODES = 128

rng = random.Random(SEED)

# Requested times are what users type: coarse queue-ish buckets (s).
REQ_BUCKETS = [300, 900, 1800, 3600, 7200, 14400, 43200, 86400]

def diurnal_rate(t):
    """Submissions per second at time-of-day t (s): quiet nights,
    busy afternoons."""
    day_frac = (t % 86400) / 86400.0
    return (1 / 110.0) * (0.35 + 0.65 * 0.5 *
                          (1 - math.cos(2 * math.pi * (day_frac - 0.10))))

def draw_runtime():
    # Log-normal body (median ~10 min) with a Pareto-ish tail.
    if rng.random() < 0.92:
        rt = rng.lognormvariate(math.log(600), 1.6)
    else:
        rt = 3600 * (rng.paretovariate(1.1))
    return max(1, min(int(rt), 2 * 86400))

def draw_procs():
    r = rng.random()
    if r < 0.35:
        return 1
    powers = [2, 4, 8, 16, 32, 64, 128]
    weights = [0.22, 0.15, 0.12, 0.08, 0.05, 0.02, 0.01]
    x = rng.random() * sum(weights)
    for p, w in zip(powers, weights):
        x -= w
        if x <= 0:
            return p
    return 2

def main():
    lines = []
    lines.append("; Version: 2")
    lines.append("; Computer: synthetic excerpt modeled on SDSC SP2")
    lines.append("; Installation: slatree test fixture (see README.md: no "
                 "network in CI, so this is a generated stand-in, not an "
                 "archive download)")
    lines.append("; Acknowledge: format per the Parallel Workloads Archive, "
                 "D. Feitelson et al.")
    lines.append("; Information: https://www.cs.huji.ac.il/labs/parallel/workload/")
    lines.append("; Conversion: gen_fixture.py seed %d" % SEED)
    lines.append("; MaxJobs: %d" % N_JOBS)
    lines.append("; MaxRecords: %d" % N_JOBS)
    lines.append("; UnixStartTime: %d" % START_UNIX)
    lines.append("; TimeZoneString: US/Pacific")
    lines.append("; StartTime: Mon Jan  1 00:00:00 PST 1996")
    lines.append("; MaxNodes: %d" % MAX_NODES)
    lines.append("; MaxProcs: %d" % MAX_NODES)
    lines.append("; Note: run times are log-normal with a heavy tail; "
                 "requested times are coarse user buckets")

    t = 0.0
    jobs = []
    while len(jobs) < N_JOBS:
        rate = diurnal_rate(t)
        t += rng.expovariate(rate)
        submit = int(t)
        run_time = draw_runtime()
        procs = draw_procs()
        status = 1
        if rng.random() < 0.04:       # cancelled before it ran
            status = 5
            run_time = -1
            wait = rng.randint(0, 1800)
        elif rng.random() < 0.03:     # failed mid-run
            status = 0
        if run_time > 0:
            wait = int(rng.expovariate(1 / 120.0))
        # Users overestimate: snap the true run time up into a bucket,
        # then sometimes pad by a whole extra bucket.
        if rng.random() < 0.12 or run_time <= 0:
            req_time = -1             # missing estimate
        else:
            req_time = next((b for b in REQ_BUCKETS if b >= run_time),
                            REQ_BUCKETS[-1])
            if rng.random() < 0.25:
                idx = REQ_BUCKETS.index(req_time)
                req_time = REQ_BUCKETS[min(idx + 1, len(REQ_BUCKETS) - 1)]
        cpu = int(run_time * rng.uniform(0.55, 0.98)) if run_time > 0 else -1
        mem = rng.choice([-1, 2048, 4096, 8192, 16384])
        user = rng.randint(1, 92)
        group = 1 + user % 11
        app = rng.randint(1, 30)
        queue = 1 if req_time != -1 and req_time <= 3600 else 2
        jobs.append((len(jobs) + 1, submit, wait, run_time, procs, cpu, mem,
                     procs, req_time, -1, status, user, group, app, queue, 1,
                     -1, -1))

    for j in jobs:
        lines.append(" ".join(str(x) for x in j))
    print("\n".join(lines))

if __name__ == "__main__":
    main()
