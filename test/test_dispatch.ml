(* Tests for dispatchers: Round-Robin cycling, LWL choosing the least
   backlog, SLA-tree insertion-profit dispatching, and admission
   control. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let sla ?(bound = 100.0) ?(gain = 1.0) () = Sla.single_step ~bound ~gain

let mk ?(sla = sla ()) id arrival size =
  Query.make ~id ~arrival ~size ~sla ()

let fcfs_pick ~now:_ _buffer = 0

(* Drive a simulation while recording every dispatch target. *)
let run_recording dispatcher queries ~n_servers =
  let targets = ref [] in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run
    ~on_dispatch:(fun ~now:_ _q (d : Sim.decision) ->
      targets := d.target :: !targets)
    ~queries ~n_servers ~pick_next:fcfs_pick
    ~dispatch:(Dispatchers.instantiate dispatcher)
    ~metrics ();
  (List.rev !targets, metrics)

let test_round_robin_cycles () =
  let queries = Array.init 6 (fun i -> mk i (Float.of_int i *. 0.1) 10.0) in
  let targets, _ = run_recording Dispatchers.round_robin queries ~n_servers:3 in
  Alcotest.(check (list (option int)))
    "cycles 0,1,2,0,1,2"
    [ Some 0; Some 1; Some 2; Some 0; Some 1; Some 2 ]
    targets

let test_round_robin_fresh_state_per_instantiation () =
  let queries = Array.init 2 (fun i -> mk i (Float.of_int i *. 0.1) 1.0) in
  let t1, _ = run_recording Dispatchers.round_robin queries ~n_servers:2 in
  let t2, _ = run_recording Dispatchers.round_robin queries ~n_servers:2 in
  Alcotest.(check (list (option int))) "same start each run" t1 t2

let test_lwl_picks_idle_server () =
  (* q0 occupies server 0 (RR-free system starts empty so LWL sends the
     long q0 to server 0); q1 must go to the idle server 1. *)
  let queries = [| mk 0 0.0 100.0; mk 1 1.0 1.0 |] in
  let targets, _ = run_recording Dispatchers.lwl queries ~n_servers:2 in
  Alcotest.(check (list (option int))) "0 then 1" [ Some 0; Some 1 ] targets

let test_lwl_counts_buffered_work () =
  (* Server 0 busy with a 10-unit query plus an 8-unit buffered query;
     server 1 busy with a 12-unit query. Next arrival: server 1 has
     less total backlog. *)
  let queries =
    [| mk 0 0.0 10.0; mk 1 0.1 12.0; mk 2 0.2 8.0; mk 3 0.3 1.0 |]
  in
  let targets, _ = run_recording Dispatchers.lwl queries ~n_servers:2 in
  (* q0 -> 0 (both idle, tie -> 0); q1 -> 1 (0 busy); q2 -> 1? work:
     s0 has ~9.9 left; s1 has ~11.9 -> q2 goes to 0. q3: s0 = 9.7 + 8,
     s1 = 11.7 -> server 1. *)
  Alcotest.(check (list (option int)))
    "backlog-aware"
    [ Some 0; Some 1; Some 0; Some 1 ]
    targets

let test_lwl_uses_estimates_not_actuals () =
  (* Server 0 runs a query that is actually long but estimated tiny;
     LWL (which sees estimates) still prefers server 0. *)
  let q0 = Query.make ~id:0 ~arrival:0.0 ~size:100.0 ~est_size:0.5 ~sla:(sla ()) () in
  let queries = [| q0; mk 1 0.1 10.0; mk 2 0.2 1.0 |] in
  let targets, _ = run_recording Dispatchers.lwl queries ~n_servers:2 in
  (* q1: s0 appears to have ~0.4 left vs s1 idle(0) -> s1. q2 at 0.2:
     s0 appears to have ~0.3 left, s1 has ~9.9 -> s0. *)
  Alcotest.(check (list (option int)))
    "estimate-driven"
    [ Some 0; Some 1; Some 0 ]
    targets

(* ------------------------------------------------------------------ *)
(* SITA *)

let test_sita_cutoffs_equal_work () =
  (* Sizes 1..4 (total 10): two classes split at the size where half
     the work is accumulated -> cutoff 3 (1+2+3 = 6 >= 5). *)
  let cutoffs = Sita.cutoffs_equal_work ~sizes:[| 1.0; 2.0; 3.0; 4.0 |] ~classes:2 in
  Alcotest.(check (array (float 1e-9))) "cutoff" [| 3.0 |] cutoffs

let test_sita_cutoffs_degenerate () =
  (* All-equal sample must still yield ordered cutoffs. *)
  let cutoffs = Sita.cutoffs_equal_work ~sizes:(Array.make 10 5.0) ~classes:3 in
  check_int "two cutoffs" 2 (Array.length cutoffs);
  Array.iter (fun c -> check_float "pinned to max" 5.0 c) cutoffs

let test_sita_class_of () =
  let cutoffs = [| 2.0; 10.0 |] in
  check_int "small" 0 (Sita.class_of ~cutoffs 1.0);
  check_int "boundary inclusive" 0 (Sita.class_of ~cutoffs 2.0);
  check_int "middle" 1 (Sita.class_of ~cutoffs 5.0);
  check_int "large" 2 (Sita.class_of ~cutoffs 100.0)

let test_sita_separates_sizes () =
  (* Two servers, cutoff at 5: small queries go to server 0, large to
     server 1, regardless of backlog. *)
  let d = Sita.dispatcher ~cutoffs:[| 5.0 |] in
  let queries =
    [| mk 0 0.0 1.0; mk 1 0.1 50.0; mk 2 0.2 2.0; mk 3 0.3 60.0 |]
  in
  let targets, _ = run_recording d queries ~n_servers:2 in
  Alcotest.(check (list (option int)))
    "classes own servers"
    [ Some 0; Some 1; Some 0; Some 1 ]
    targets

let test_sita_for_workload_runs () =
  let d = Sita.for_workload ~seed:3 Workloads.Pareto ~classes:3 in
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Pareto ~profile:Workloads.Sla_a ~load:0.8
         ~servers:3 ~n_queries:500 ~seed:4 ())
  in
  let targets, m = run_recording d queries ~n_servers:3 in
  check_int "all completed" 500 (Metrics.completed_count m);
  check_bool "valid servers" true
    (List.for_all (function Some s -> s >= 0 && s < 3 | None -> false) targets)

let test_random_dispatcher () =
  let d = Dispatchers.random ~seed:5 in
  let queries = Array.init 200 (fun i -> mk i (Float.of_int i *. 0.01) 0.5) in
  let targets, m = run_recording d queries ~n_servers:4 in
  check_int "all completed" 200 (Metrics.completed_count m);
  let counts = Array.make 4 0 in
  List.iter
    (function
      | Some s -> counts.(s) <- counts.(s) + 1
      | None -> Alcotest.fail "rejected")
    targets;
  Array.iter (fun c -> check_bool "every server used" true (c > 20)) counts

(* ------------------------------------------------------------------ *)
(* SLA-tree dispatching *)

let test_sla_tree_dispatch_prefers_idle () =
  let d = Dispatchers.sla_tree Planner.fcfs in
  let queries = [| mk 0 0.0 50.0; mk 1 1.0 10.0 |] in
  let targets, _ = run_recording d queries ~n_servers:2 in
  Alcotest.(check (list (option int))) "idle server wins" [ Some 0; Some 1 ] targets

let test_sla_tree_dispatch_reports_delta () =
  let d = Dispatchers.sla_tree Planner.fcfs in
  let deltas = ref [] in
  let metrics = Metrics.create ~warmup_id:0 () in
  let queries = [| mk 0 0.0 10.0 |] in
  Sim.run
    ~on_dispatch:(fun ~now:_ _q (dec : Sim.decision) ->
      deltas := dec.est_delta :: !deltas)
    ~queries ~n_servers:1 ~pick_next:fcfs_pick
    ~dispatch:(Dispatchers.instantiate d)
    ~metrics ();
  match !deltas with
  | [ Some delta ] ->
    (* Lone query on an idle server completes at 10 <= 100: profit 1. *)
    check_float "delta is own profit" 1.0 delta
  | _ -> Alcotest.fail "expected one reported delta"

(* A server state with one running query and one fragile buffered
   query, probed at the arrival of a newcomer. Under the SJF planner
   the (smaller) newcomer would jump the fragile query, postponing it
   past its deadline: the insertion delta must be its own profit minus
   the fragile gain. *)
let fragile_scenario_queries =
  let fragile = sla ~bound:14.7 ~gain:10.0 () in
  (* fragile deadline: 0.5 + 14.7 = 15.2; scheduled completion 15
     (runs after q0 finishes at 10), slack 0.2. *)
  [|
    mk 0 0.0 10.0;
    (* running until t = 10 *)
    mk ~sla:fragile 1 0.5 5.0;
    (* buffered *)
    mk 2 1.0 2.0;
    (* the newcomer: SJF would insert it before the size-5 query *)
  |]

let test_sla_tree_dispatch_avoids_harm () =
  let probe = ref None in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run
    ~queries:fragile_scenario_queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.sjf)
    ~dispatch:(fun sim q ->
      if q.Query.id = 2 then
        probe := Some (Dispatchers.insertion_profit Planner.sjf sim 0 q);
      { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  match !probe with
  | Some delta ->
    (* Own profit 1 (completes at 12, far within bound 100) minus the
       fragile query's 10. *)
    check_float "delta = 1 - 10" (-9.0) delta
  | None -> Alcotest.fail "probe did not run"

let test_admission_control_rejects_harmful () =
  (* Same scenario driven through the real dispatcher with admission
     control: the harmful newcomer must be rejected. *)
  let d = Dispatchers.sla_tree ~admission:true Planner.sjf in
  let metrics = Metrics.create ~warmup_id:0 () in
  let targets = ref [] in
  Sim.run
    ~on_dispatch:(fun ~now:_ _q (dec : Sim.decision) ->
      targets := dec.target :: !targets)
    ~queries:fragile_scenario_queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.sjf)
    ~dispatch:(Dispatchers.instantiate d)
    ~metrics ();
  check_bool "newcomer rejected" true (List.hd !targets = None);
  check_int "one rejection" 1 (Metrics.rejected_count metrics);
  check_int "others complete" 2 (Metrics.completed_count metrics)

let test_insertion_profit_empty_server () =
  (* Direct probe of the what-if on an empty system. *)
  let metrics = Metrics.create ~warmup_id:0 () in
  let probe = ref None in
  let queries = [| mk 0 5.0 10.0 |] in
  Sim.run
    ~queries ~n_servers:1 ~pick_next:fcfs_pick
    ~dispatch:(fun sim q ->
      probe := Some (Dispatchers.insertion_profit Planner.fcfs sim 0 q);
      { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  match !probe with
  | Some v -> check_float "own profit on empty server" 1.0 v
  | None -> Alcotest.fail "probe did not run"

let test_insertion_profit_heterogeneous () =
  (* A query that meets its deadline on a fast server but not on a slow
     one: the what-if must see the difference (Sec 6.2's heterogeneity
     claim). *)
  let q = mk ~sla:(sla ~bound:6.0 ~gain:2.0 ()) 0 0.0 10.0 in
  let probe_fast = ref None and probe_slow = ref None in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~speeds:[| 2.0; 0.5 |]
    ~queries:[| q |] ~n_servers:2
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:(fun sim query ->
      probe_fast := Some (Dispatchers.insertion_profit Planner.fcfs sim 0 query);
      probe_slow := Some (Dispatchers.insertion_profit Planner.fcfs sim 1 query);
      { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  (match !probe_fast with
  | Some v -> check_float "fast server: 10/2 = 5 <= 6, earns 2" 2.0 v
  | None -> Alcotest.fail "no fast probe");
  match !probe_slow with
  | Some v -> check_float "slow server: 10/0.5 = 20 > 6, earns 0" 0.0 v
  | None -> Alcotest.fail "no slow probe"

let test_heterogeneous_end_to_end () =
  (* Mixed farm: the profit-aware dispatcher must not lose to RR. *)
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
         ~servers:4 ~n_queries:3_000 ~seed:808 ())
  in
  let speeds = [| 2.0; 1.0; 1.0; 0.5 |] in
  let loss dispatcher =
    let metrics = Metrics.create ~warmup_id:1_000 () in
    Sim.run ~speeds ~queries ~n_servers:4
      ~pick_next:(Schedulers.pick Schedulers.fcfs_sla_tree)
      ~dispatch:(Dispatchers.instantiate dispatcher)
      ~metrics ();
    Metrics.avg_loss metrics
  in
  let rr = loss Dispatchers.round_robin in
  let tree = loss (Dispatchers.sla_tree Planner.fcfs) in
  check_bool
    (Printf.sprintf "tree %.3f < rr %.3f on mixed farm" tree rr)
    true (tree < rr)

let test_names () =
  Alcotest.(check string) "rr" "RR" (Dispatchers.name Dispatchers.round_robin);
  Alcotest.(check string) "lwl" "LWL" (Dispatchers.name Dispatchers.lwl);
  Alcotest.(check string) "sla" "SLA-tree"
    (Dispatchers.name (Dispatchers.sla_tree Planner.fcfs));
  Alcotest.(check string) "ac" "SLA-tree+AC"
    (Dispatchers.name (Dispatchers.sla_tree ~admission:true Planner.fcfs))

(* End-to-end shape check (Table 3's relation): SLA-tree dispatching
   beats LWL on a congested multi-server system. *)
let avg_loss dispatcher scheduler queries ~n_servers ~warmup =
  let metrics = Metrics.create ~warmup_id:warmup () in
  Sim.run ~queries ~n_servers
    ~pick_next:(Schedulers.pick scheduler)
    ~dispatch:(Dispatchers.instantiate dispatcher)
    ~metrics ();
  Metrics.avg_loss metrics

let test_sla_tree_beats_lwl_end_to_end () =
  let cfg =
    Trace.config ~kind:Workloads.Pareto ~profile:Workloads.Sla_a ~load:0.9
      ~servers:3 ~n_queries:4_000 ~seed:31337 ()
  in
  let queries = Trace.generate cfg in
  let rate = 1.0 /. Workloads.nominal_mean_ms Workloads.Pareto in
  let sched = Schedulers.cbs_sla_tree ~rate in
  let planner = Planner.cbs ~rate in
  let lwl = avg_loss Dispatchers.lwl sched queries ~n_servers:3 ~warmup:1000 in
  let tree =
    avg_loss (Dispatchers.sla_tree planner) sched queries ~n_servers:3
      ~warmup:1000
  in
  check_bool
    (Printf.sprintf "tree %.3f < lwl %.3f" tree lwl)
    true (tree < lwl)

(* ------------------------------------------------------------------ *)
(* Observability under faults: a dispatch that raises (a pool crash
   leaves no server accepting work) still took a decision and still
   spent the time, so the timed wrapper must record the latency and
   the decision count before re-raising — otherwise the telemetry
   silently under-reports exactly the churny intervals it should be
   illuminating. *)

let test_timed_records_raising_dispatch () =
  let obs = Obs.create () in
  let metrics = Metrics.create ~warmup_id:0 () in
  (* q0 occupies the only server; a timer crashes it mid-run, so q1's
     arrival finds no dispatchable server and the dispatch raises. *)
  let queries = [| mk 0 0.0 20.0; mk 1 10.0 1.0 |] in
  let timers =
    [| (5.0, fun sim -> ignore (Sim.crash_server sim 0 : Query.t list)) |]
  in
  let raised =
    match
      Sim.run ~queries ~n_servers:1 ~pick_next:fcfs_pick
        ~dispatch:(Dispatchers.instantiate ~obs (Dispatchers.sla_tree Planner.fcfs))
        ~timers ~metrics ()
    with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "no-server raise propagates" true raised;
  let reg = Obs.registry obs in
  check_int "raising decision still counted" 2
    (Obs.Registry.count (Obs.Registry.counter reg "dispatch.decisions"));
  check_int "raising decision latency still observed" 2
    (Obs.Registry.observations
       (Obs.Registry.histogram reg "dispatch.decision_ns"))

let qtest = QCheck_alcotest.to_alcotest

let prop_dispatch_always_valid_server =
  QCheck.Test.make ~name:"dispatchers return valid servers" ~count:50
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let cfg =
        Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.8
          ~servers:3 ~n_queries:150 ~seed ()
      in
      let queries = Trace.generate cfg in
      List.for_all
        (fun d ->
          let targets, m = run_recording d queries ~n_servers:3 in
          Metrics.completed_count m = 150
          && List.for_all
               (function Some s -> s >= 0 && s < 3 | None -> false)
               targets)
        [
          Dispatchers.round_robin;
          Dispatchers.lwl;
          Dispatchers.sla_tree Planner.fcfs;
          Dispatchers.sla_tree (Planner.cbs ~rate:0.05);
        ])

let () =
  Alcotest.run "dispatch"
    [
      ( "round-robin",
        [
          Alcotest.test_case "cycles" `Quick test_round_robin_cycles;
          Alcotest.test_case "fresh state per run" `Quick
            test_round_robin_fresh_state_per_instantiation;
        ] );
      ( "lwl",
        [
          Alcotest.test_case "picks idle server" `Quick test_lwl_picks_idle_server;
          Alcotest.test_case "counts buffered work" `Quick test_lwl_counts_buffered_work;
          Alcotest.test_case "uses estimates" `Quick test_lwl_uses_estimates_not_actuals;
        ] );
      ( "sita",
        [
          Alcotest.test_case "equal-work cutoffs" `Quick test_sita_cutoffs_equal_work;
          Alcotest.test_case "degenerate sample" `Quick test_sita_cutoffs_degenerate;
          Alcotest.test_case "class_of" `Quick test_sita_class_of;
          Alcotest.test_case "separates sizes" `Quick test_sita_separates_sizes;
          Alcotest.test_case "for_workload" `Quick test_sita_for_workload_runs;
          Alcotest.test_case "random dispatcher" `Quick test_random_dispatcher;
        ] );
      ( "sla-tree",
        [
          Alcotest.test_case "prefers idle" `Quick test_sla_tree_dispatch_prefers_idle;
          Alcotest.test_case "reports delta" `Quick test_sla_tree_dispatch_reports_delta;
          Alcotest.test_case "avoids harming fragile buffers" `Quick
            test_sla_tree_dispatch_avoids_harm;
          Alcotest.test_case "admission control" `Quick
            test_admission_control_rejects_harmful;
          Alcotest.test_case "insertion profit on empty server" `Quick
            test_insertion_profit_empty_server;
          Alcotest.test_case "heterogeneous insertion profit" `Quick
            test_insertion_profit_heterogeneous;
          Alcotest.test_case "heterogeneous end-to-end" `Slow
            test_heterogeneous_end_to_end;
          Alcotest.test_case "names" `Quick test_names;
        ] );
      ( "timed-wrapper",
        [
          Alcotest.test_case "raising dispatch is recorded" `Quick
            test_timed_records_raising_dispatch;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "SLA-tree beats LWL" `Slow test_sla_tree_beats_lwl_end_to_end;
          qtest prop_dispatch_always_valid_server;
        ] );
    ]
