(* Tests for planners and schedulers: FCFS/SJF/EDF orders, CBS
   priorities, insertion ranks, and SLA-tree-enhanced picking. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_perm = Alcotest.(check (array int))

let sla ?(bound = 100.0) ?(gain = 1.0) () = Sla.single_step ~bound ~gain

let mk ?(sla = sla ()) ?est id arrival size =
  Query.make ?est_size:est ~id ~arrival ~size ~sla ()

let buffer3 () = [| mk 0 0.0 5.0; mk 1 1.0 1.0; mk 2 2.0 3.0 |]

(* ------------------------------------------------------------------ *)
(* Planners *)

let test_fcfs_plan () =
  check_perm "identity" [| 0; 1; 2 |] (Planner.plan Planner.fcfs ~now:10.0 (buffer3 ()))

let test_sjf_plan () =
  check_perm "by size" [| 1; 2; 0 |] (Planner.plan Planner.sjf ~now:10.0 (buffer3 ()))

let test_sjf_stability () =
  let b = [| mk 0 0.0 2.0; mk 1 1.0 2.0; mk 2 2.0 2.0 |] in
  check_perm "ties keep arrival order" [| 0; 1; 2 |]
    (Planner.plan Planner.sjf ~now:10.0 b)

let test_edf_plan () =
  let b =
    [|
      mk ~sla:(sla ~bound:50.0 ()) 0 0.0 1.0;
      (* deadline 50 *)
      mk ~sla:(sla ~bound:10.0 ()) 1 1.0 1.0;
      (* deadline 11 *)
      mk ~sla:(sla ~bound:20.0 ()) 2 2.0 1.0;
      (* deadline 22 *)
    |]
  in
  check_perm "by first deadline" [| 1; 2; 0 |] (Planner.plan Planner.edf ~now:5.0 b)

let test_value_edf_plan () =
  (* High-value queries first; deadlines order within a value class. *)
  let b =
    [|
      mk ~sla:(sla ~bound:10.0 ~gain:1.0 ()) 0 0.0 1.0;
      mk ~sla:(sla ~bound:50.0 ~gain:5.0 ()) 1 1.0 1.0;
      mk ~sla:(sla ~bound:20.0 ~gain:5.0 ()) 2 2.0 1.0;
    |]
  in
  (* Values: 1, 5, 5. Class-5 ordered by deadline: q2 (22) before q1 (51). *)
  check_perm "value then deadline" [| 2; 1; 0 |]
    (Planner.plan Planner.value_edf ~now:5.0 b)

let test_value_edf_stability () =
  let b = Array.init 3 (fun i -> mk ~sla:(sla ~bound:10.0 ()) i 0.0 1.0) in
  check_perm "full ties keep arrival order" [| 0; 1; 2 |]
    (Planner.plan Planner.value_edf ~now:0.0 b)

let test_cbs_priority_urgency () =
  (* Two queries, same size and SLA; the one closer to its deadline has
     higher expected loss, hence higher CBS priority. *)
  let rate = 0.05 in
  let a = mk 0 0.0 10.0 in
  let b = mk 1 50.0 10.0 in
  let now = 60.0 in
  let pa = Planner.cbs_priority ~rate ~now a in
  let pb = Planner.cbs_priority ~rate ~now b in
  check_bool "older query more urgent" true (pa > pb)

let test_cbs_priority_cheap_work () =
  (* Same loss at stake, but a shorter query has a higher priority per
     unit of work. *)
  let rate = 0.05 in
  let short = mk ~sla:(sla ~bound:30.0 ()) 0 0.0 2.0 in
  let long = mk ~sla:(sla ~bound:30.0 ()) 1 0.0 20.0 in
  let now = 25.0 in
  check_bool "short beats long" true
    (Planner.cbs_priority ~rate ~now short > Planner.cbs_priority ~rate ~now long)

let test_cbs_plan_orders_by_priority () =
  let rate = 0.05 in
  let planner = Planner.cbs ~rate in
  let b = buffer3 () in
  let now = 10.0 in
  let perm = Planner.plan planner ~now b in
  let prios = Array.map (fun i -> Planner.cbs_priority ~rate ~now b.(i)) perm in
  check_bool "descending priorities" true
    (Arrayx.is_sorted Float.compare (Array.map (fun p -> -.p) prios))

let test_cbs_invalid_rate () =
  check_bool "rate 0 rejected" true
    (match Planner.cbs ~rate:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_insertion_rank_fcfs_appends () =
  let b = buffer3 () in
  let q = mk 99 5.0 1.0 in
  check_int "fcfs appends" 3 (Planner.insertion_rank Planner.fcfs ~now:10.0 b q)

let test_insertion_rank_sjf () =
  let b = buffer3 () in
  (* sizes in plan order: 1, 3, 5. A size-2 newcomer ranks second. *)
  let q = mk 99 5.0 2.0 in
  check_int "sjf slot" 1 (Planner.insertion_rank Planner.sjf ~now:10.0 b q);
  (* A tie (size 3) goes after the incumbent. *)
  let q3 = mk 98 5.0 3.0 in
  check_int "tie loses" 2 (Planner.insertion_rank Planner.sjf ~now:10.0 b q3)

let test_insertion_rank_bounds () =
  let b = buffer3 () in
  let tiny = mk 99 5.0 0.1 in
  let huge = mk 97 5.0 100.0 in
  check_int "front" 0 (Planner.insertion_rank Planner.sjf ~now:10.0 b tiny);
  check_int "back" 3 (Planner.insertion_rank Planner.sjf ~now:10.0 b huge)

let test_planned_queries () =
  let b = buffer3 () in
  let planned = Planner.planned_queries Planner.sjf ~now:10.0 b in
  check_int "first is smallest" 1 planned.(0).Query.id

(* ------------------------------------------------------------------ *)
(* Schedulers *)

let test_of_planner_picks_head () =
  let s = Schedulers.sjf in
  check_int "picks size-1 query" 1 (Schedulers.pick s ~now:10.0 (buffer3 ()))

let test_scheduler_names () =
  Alcotest.(check string) "fcfs" "FCFS" (Schedulers.name Schedulers.fcfs);
  Alcotest.(check string) "fcfs tree" "FCFS+SLA-tree"
    (Schedulers.name Schedulers.fcfs_sla_tree);
  Alcotest.(check string) "cbs tree" "CBS+SLA-tree"
    (Schedulers.name (Schedulers.cbs_sla_tree ~rate:0.05))

let test_sla_tree_scheduler_rushes_urgent () =
  (* Under FCFS order, q1 would miss its tight deadline; the SLA-tree
     wrapper must rush it. *)
  let b =
    [|
      mk ~sla:(sla ~bound:100.0 ()) 0 0.0 10.0;
      mk ~sla:(sla ~bound:5.0 ~gain:5.0 ()) 1 0.0 2.0;
    |]
  in
  check_int "baseline keeps head" 0 (Schedulers.pick Schedulers.fcfs ~now:0.0 b);
  check_int "SLA-tree rushes q1" 1
    (Schedulers.pick Schedulers.fcfs_sla_tree ~now:0.0 b)

let test_sla_tree_scheduler_keeps_order_when_no_gain () =
  let b = Array.init 4 (fun i -> mk i 0.0 1.0) in
  check_int "no improvement -> head" 0
    (Schedulers.pick Schedulers.fcfs_sla_tree ~now:0.0 b)

let test_sla_tree_over_cbs_maps_back () =
  (* The wrapper must return an index into the original (arrival-order)
     buffer even when the underlying planner reorders. *)
  let b = buffer3 () in
  let idx = Schedulers.pick (Schedulers.cbs_sla_tree ~rate:0.05) ~now:10.0 b in
  check_bool "valid index" true (idx >= 0 && idx < 3)

(* A scheduling decision must never pick an out-of-range index on
   random buffers. *)
let prop_pick_in_range =
  QCheck.Test.make ~name:"pick index always in range" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let b =
        Array.init n (fun id ->
            let size = 0.1 +. (Prng.float rng *. 30.0) in
            let bound = 1.0 +. (Prng.float rng *. 100.0) in
            let arrival = Prng.float rng *. 50.0 in
            mk ~sla:(sla ~bound ()) id arrival size)
      in
      List.for_all
        (fun s ->
          let i = Schedulers.pick s ~now:60.0 b in
          i >= 0 && i < n)
        [
          Schedulers.fcfs;
          Schedulers.sjf;
          Schedulers.edf;
          Schedulers.value_edf;
          Schedulers.cbs ~rate:0.05;
          Schedulers.fcfs_sla_tree;
          Schedulers.sjf_sla_tree;
          Schedulers.edf_sla_tree;
          Schedulers.value_edf_sla_tree;
          Schedulers.cbs_sla_tree ~rate:0.05;
        ])

(* ------------------------------------------------------------------ *)
(* Frontend (the paper's Fig 2 interface) *)

let test_frontend_fifo_cycle () =
  let f = Frontend.create ~sla_tree:false Planner.fcfs in
  check_bool "empty at start" true (Frontend.get_next_query f ~now:0.0 = None);
  Frontend.query_arrive f (mk 0 0.0 5.0);
  Frontend.query_arrive f (mk 1 1.0 3.0);
  check_int "two buffered" 2 (Frontend.buffer_length f);
  (match Frontend.get_next_query f ~now:2.0 with
  | Some q -> check_int "fifo head" 0 q.Query.id
  | None -> Alcotest.fail "expected a query");
  (match Frontend.get_next_query f ~now:7.0 with
  | Some q -> check_int "fifo next" 1 q.Query.id
  | None -> Alcotest.fail "expected a query");
  check_bool "drained" true (Frontend.get_next_query f ~now:10.0 = None);
  check_int "arrivals counted" 2 (Frontend.arrivals f);
  check_int "decisions counted" 2 (Frontend.decisions f);
  check_int "no rushes in fifo mode" 0 (Frontend.rushes f)

let test_frontend_rushes_urgent () =
  let f = Frontend.create Planner.fcfs in
  Frontend.query_arrive f (mk ~sla:(sla ~bound:100.0 ()) 0 0.0 10.0);
  Frontend.query_arrive f (mk ~sla:(sla ~bound:5.0 ~gain:5.0 ()) 1 0.0 2.0);
  (match Frontend.get_next_query f ~now:0.0 with
  | Some q -> check_int "urgent query rushed" 1 q.Query.id
  | None -> Alcotest.fail "expected a query");
  check_int "rush counted" 1 (Frontend.rushes f);
  match Frontend.get_next_query f ~now:2.0 with
  | Some q -> check_int "then the other" 0 q.Query.id
  | None -> Alcotest.fail "expected a query"

let test_frontend_what_if_tree () =
  let f = Frontend.create Planner.fcfs in
  Frontend.query_arrive f (mk 0 0.0 5.0);
  Frontend.query_arrive f (mk 1 0.0 5.0);
  let tree = Frontend.what_if_tree f ~now:0.0 in
  check_int "tree over buffer" 2 (Sla_tree.length tree);
  check_bool "profit at stake" true (Sla_tree.total_profit_at_stake tree > 0.0)

let test_frontend_matches_sim_scheduler () =
  (* Replaying a trace through the frontend must realize the same
     profit as the simulator running the equivalent scheduler. *)
  let cfg =
    Trace.config ~kind:Workloads.Ssbm_wl ~profile:Workloads.Sla_b ~load:0.9
      ~servers:1 ~n_queries:1_500 ~seed:606 ()
  in
  let queries = Trace.generate cfg in
  (* Simulator run. *)
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs_sla_tree)
    ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  (* Frontend-driven replay of the same single-server discipline. *)
  let f = Frontend.create Planner.fcfs in
  let profit = ref 0.0 in
  let now = ref 0.0 in
  let next_arrival = ref 0 in
  let running_until = ref None in
  let n = Array.length queries in
  let continue = ref true in
  while !continue do
    let next_arr = if !next_arrival < n then Some queries.(!next_arrival) else None in
    match (!running_until, next_arr) with
    | None, None when Frontend.buffer_length f = 0 -> continue := false
    | None, Some q when Frontend.buffer_length f = 0 ->
      now := Float.max !now q.Query.arrival;
      Frontend.query_arrive f q;
      incr next_arrival
    | None, _ -> begin
      match Frontend.get_next_query f ~now:!now with
      | Some q -> running_until := Some (!now +. q.Query.size, q)
      | None -> continue := false
    end
    | Some (t_done, _), Some q when q.Query.arrival <= t_done ->
      Frontend.query_arrive f q;
      incr next_arrival
    | Some (t_done, q), _ ->
      now := t_done;
      profit := !profit +. Query.profit_at q ~completion:t_done;
      running_until := None
  done;
  check_bool "same realized profit" true
    (Float.abs (!profit -. Metrics.total_profit metrics) < 1e-6)

(* End-to-end: on a congested trace, the SLA-tree wrapper must not do
   worse than its baseline (this is the paper's headline Table 2
   relation, checked here at small scale as a test). *)
let run_loss scheduler queries =
  let metrics = Metrics.create ~warmup_id:(Array.length queries / 4) () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick scheduler)
    ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  Metrics.avg_loss metrics

let test_sla_tree_improves_fcfs_end_to_end () =
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
      ~servers:1 ~n_queries:3_000 ~seed:2024 ()
  in
  let queries = Trace.generate cfg in
  let base = run_loss Schedulers.fcfs queries in
  let tree = run_loss Schedulers.fcfs_sla_tree queries in
  check_bool
    (Printf.sprintf "fcfs %.3f >= fcfs+tree %.3f" base tree)
    true
    (tree <= base +. 0.01)

let test_sla_tree_improves_cbs_end_to_end () =
  let cfg =
    Trace.config ~kind:Workloads.Ssbm_wl ~profile:Workloads.Sla_b ~load:0.9
      ~servers:1 ~n_queries:3_000 ~seed:2025 ()
  in
  let queries = Trace.generate cfg in
  let rate = 1.0 /. Workloads.nominal_mean_ms Workloads.Ssbm_wl in
  let base = run_loss (Schedulers.cbs ~rate) queries in
  let tree = run_loss (Schedulers.cbs_sla_tree ~rate) queries in
  check_bool
    (Printf.sprintf "cbs %.3f >= cbs+tree %.3f (within noise)" base tree)
    true
    (tree <= base +. 0.05)

(* ------------------------------------------------------------------ *)
(* Offline optimal (Sec 8.2's exact reference) *)

let table7 () =
  let mk id size bound gain =
    Query.make ~id ~arrival:0.0 ~size ~sla:(Sla.single_step ~bound ~gain) ()
  in
  [| mk 0 1.0 1.0 1.0; mk 1 0.5 1.0 0.6; mk 2 0.5 1.0 0.6 |]

let test_optimal_on_table7 () =
  let optimal, order = Offline_optimal.solve ~now:0.0 (table7 ()) in
  Alcotest.(check (float 1e-9)) "optimum is 1.2" 1.2 optimal;
  Alcotest.(check (float 1e-9)) "order realizes it" 1.2
    (Offline_optimal.profit_of_order ~now:0.0 (table7 ()) order);
  (* q0 (the long query) must go last in any optimal order here. *)
  check_int "q0 last" 0 order.(2)

let test_optimal_empty_and_single () =
  let opt, order = Offline_optimal.solve ~now:0.0 [||] in
  Alcotest.(check (float 1e-9)) "empty" 0.0 opt;
  check_int "empty order" 0 (Array.length order);
  let q = mk ~sla:(sla ~bound:5.0 ~gain:3.0 ()) 0 0.0 2.0 in
  let opt1, order1 = Offline_optimal.solve ~now:0.0 [| q |] in
  Alcotest.(check (float 1e-9)) "single" 3.0 opt1;
  check_int "single order" 0 order1.(0)

let test_optimal_cap () =
  let qs = Array.init 23 (fun id -> mk id 0.0 1.0) in
  check_bool "cap enforced" true
    (match Offline_optimal.solve ~now:0.0 qs with
    | exception Invalid_argument _ -> true
    | _ -> false)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let gen_micro_instance =
  QCheck.Gen.(
    let* n = 2 -- 6 in
    let* specs =
      list_repeat n
        (triple (float_range 0.5 10.0) (float_range 1.0 40.0) (float_range 0.5 5.0))
    in
    return
      (Array.of_list
         (List.mapi
            (fun id (size, bound, gain) ->
              Query.make ~id ~arrival:0.0 ~size
                ~sla:(Sla.single_step ~bound ~gain) ())
            specs)))

let arb_micro =
  QCheck.make
    ~print:(fun qs -> Fmt.str "%a" Fmt.(array ~sep:sp Query.pp) qs)
    gen_micro_instance

let prop_dp_matches_brute_force =
  QCheck.Test.make ~name:"subset DP == exhaustive permutation max" ~count:100
    arb_micro
    (fun qs ->
      let n = Array.length qs in
      let optimal, _ = Offline_optimal.solve ~now:0.0 qs in
      let brute =
        permutations (List.init n Fun.id)
        |> List.map (fun p ->
               Offline_optimal.profit_of_order ~now:0.0 qs (Array.of_list p))
        |> List.fold_left Float.max neg_infinity
      in
      Float.abs (optimal -. brute) < 1e-9)

let prop_greedy_bounded_by_optimal =
  QCheck.Test.make ~name:"fcfs <= greedy-ish bounds <= optimal" ~count:100
    arb_micro
    (fun qs ->
      let n = Array.length qs in
      let optimal, _ = Offline_optimal.solve ~now:0.0 qs in
      let greedy = Offline_optimal.greedy_profit ~now:0.0 qs in
      let fcfs = Offline_optimal.profit_of_order ~now:0.0 qs (Array.init n Fun.id) in
      greedy <= optimal +. 1e-9 && fcfs <= optimal +. 1e-9
      (* Sec 8.2's induction claim: greedy never loses to the original
         order. *)
      && greedy >= fcfs -. 1e-9)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sched"
    [
      ( "planners",
        [
          Alcotest.test_case "fcfs" `Quick test_fcfs_plan;
          Alcotest.test_case "sjf" `Quick test_sjf_plan;
          Alcotest.test_case "sjf stability" `Quick test_sjf_stability;
          Alcotest.test_case "edf" `Quick test_edf_plan;
          Alcotest.test_case "value-edf" `Quick test_value_edf_plan;
          Alcotest.test_case "value-edf stability" `Quick test_value_edf_stability;
          Alcotest.test_case "planned_queries" `Quick test_planned_queries;
        ] );
      ( "cbs",
        [
          Alcotest.test_case "urgency raises priority" `Quick test_cbs_priority_urgency;
          Alcotest.test_case "cheap work first" `Quick test_cbs_priority_cheap_work;
          Alcotest.test_case "plan sorted by priority" `Quick
            test_cbs_plan_orders_by_priority;
          Alcotest.test_case "invalid rate" `Quick test_cbs_invalid_rate;
        ] );
      ( "insertion-rank",
        [
          Alcotest.test_case "fcfs appends" `Quick test_insertion_rank_fcfs_appends;
          Alcotest.test_case "sjf slots" `Quick test_insertion_rank_sjf;
          Alcotest.test_case "bounds" `Quick test_insertion_rank_bounds;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "of_planner picks head" `Quick test_of_planner_picks_head;
          Alcotest.test_case "names" `Quick test_scheduler_names;
          Alcotest.test_case "rushes urgent query" `Quick
            test_sla_tree_scheduler_rushes_urgent;
          Alcotest.test_case "keeps order when no gain" `Quick
            test_sla_tree_scheduler_keeps_order_when_no_gain;
          Alcotest.test_case "maps back through planner" `Quick
            test_sla_tree_over_cbs_maps_back;
          qtest prop_pick_in_range;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "fifo cycle" `Quick test_frontend_fifo_cycle;
          Alcotest.test_case "rushes urgent" `Quick test_frontend_rushes_urgent;
          Alcotest.test_case "what-if tree" `Quick test_frontend_what_if_tree;
          Alcotest.test_case "matches simulator" `Slow
            test_frontend_matches_sim_scheduler;
        ] );
      ( "offline-optimal",
        [
          Alcotest.test_case "Table 7 optimum" `Quick test_optimal_on_table7;
          Alcotest.test_case "empty and single" `Quick test_optimal_empty_and_single;
          Alcotest.test_case "size cap" `Quick test_optimal_cap;
          qtest prop_dp_matches_brute_force;
          qtest prop_greedy_bounded_by_optimal;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "SLA-tree improves FCFS" `Slow
            test_sla_tree_improves_fcfs_end_to_end;
          Alcotest.test_case "SLA-tree improves CBS" `Slow
            test_sla_tree_improves_cbs_end_to_end;
        ] );
    ]
