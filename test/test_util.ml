(* Tests for the utility substrate: PRNG, heap, stats, histogram and
   array searches. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Prng.float a) (Prng.float b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.float a = Prng.float b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 4)

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  let xs = Array.init 32 (fun _ -> Prng.float parent) in
  let ys = Array.init 32 (fun _ -> Prng.float child) in
  check_bool "split streams differ" true (xs <> ys)

let test_prng_split_key_no_perturbation () =
  (* The whole point of [split_key]: taking a keyed child must not
     shift a single draw of the parent — a component gated behind a
     flag (fault injection) can take its stream without perturbing
     the always-on workload stream. *)
  let a = Prng.create 7 and b = Prng.create 7 in
  let _child = Prng.split_key b ~key:3 in
  for _ = 1 to 64 do
    check_float "parent stream untouched" (Prng.float a) (Prng.float b)
  done

let test_prng_split_key_streams () =
  let parent = Prng.create 7 in
  let draw key = Array.init 16 (fun _ -> Prng.float (Prng.split_key parent ~key)) in
  check_bool "same key reproduces" true (draw 5 = draw 5);
  check_bool "distinct keys diverge" true (draw 1 <> draw 2);
  check_bool "child differs from parent" true
    (draw 0 <> Array.init 16 (fun _ -> Prng.float (Prng.copy parent)))

let test_prng_copy () =
  let a = Prng.create 11 in
  ignore (Prng.float a);
  let b = Prng.copy a in
  check_float "copies continue identically" (Prng.float a) (Prng.float b)

let test_prng_float_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 10_000 do
    let x = Prng.float rng in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_float_pos_range () =
  let rng = Prng.create 4 in
  for _ = 1 to 10_000 do
    let x = Prng.float_pos rng in
    check_bool "in (0,1]" true (x > 0.0 && x <= 1.0)
  done

let test_prng_int_range () =
  let rng = Prng.create 5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Prng.int rng 10 in
    check_bool "in range" true (k >= 0 && k < 10);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300)) counts

let test_prng_int_invalid () =
  let rng = Prng.create 6 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_uniform_mean () =
  let rng = Prng.create 8 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float rng
  done;
  let mean = !acc /. Float.of_int n in
  check_bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_prng_exponential_mean () =
  let rng = Prng.create 9 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential rng ~mean:20.0
  done;
  let mean = !acc /. Float.of_int n in
  check_bool "mean near 20" true (Float.abs (mean -. 20.0) < 0.5)

let test_prng_gaussian_moments () =
  let rng = Prng.create 10 in
  let n = 100_000 in
  let s = Stats.create () in
  for _ = 1 to n do
    Stats.add s (Prng.gaussian rng ~mu:1.0 ~sigma:2.0)
  done;
  check_bool "mean near 1" true (Float.abs (Stats.mean s -. 1.0) < 0.05);
  check_bool "sd near 2" true (Float.abs (Stats.stddev s -. 2.0) < 0.05)

let test_prng_pareto_support () =
  let rng = Prng.create 12 in
  for _ = 1 to 10_000 do
    let x = Prng.pareto rng ~x_min:1.0 ~alpha:1.0 in
    check_bool "x >= x_min" true (x >= 1.0)
  done

let test_prng_pareto_tail () =
  (* P(X > 10) = (x_min/10)^alpha = 0.1 for alpha = 1. *)
  let rng = Prng.create 13 in
  let n = 100_000 in
  let above = ref 0 in
  for _ = 1 to n do
    if Prng.pareto rng ~x_min:1.0 ~alpha:1.0 > 10.0 then incr above
  done;
  let frac = Float.of_int !above /. Float.of_int n in
  check_bool "tail mass near 0.1" true (Float.abs (frac -. 0.1) < 0.01)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 14 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Prng.shuffle_in_place rng b;
  Array.sort Int.compare b;
  Alcotest.(check (array int)) "same multiset" a b

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_empty () =
  let h = Heap.create Int.compare in
  check_bool "empty" true (Heap.is_empty h);
  check_int "length" 0 (Heap.length h);
  check_bool "peek none" true (Heap.peek h = None);
  check_bool "pop none" true (Heap.pop h = None)

let test_heap_singleton () =
  let h = Heap.create Int.compare in
  Heap.push h 42;
  check_int "peek" 42 (Heap.peek_exn h);
  check_int "pop" 42 (Heap.pop_exn h);
  check_bool "empty after" true (Heap.is_empty h)

let test_heap_sorts () =
  let rng = Prng.create 21 in
  let xs = Array.init 1000 (fun _ -> Prng.int rng 10_000) in
  let h = Heap.create Int.compare in
  Array.iter (Heap.push h) xs;
  let out = Array.init 1000 (fun _ -> Heap.pop_exn h) in
  check_bool "ascending" true (Arrayx.is_sorted Int.compare out);
  let sorted = Array.copy xs in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same elements" sorted out

let test_heap_duplicates () =
  let h = Heap.create Int.compare in
  List.iter (Heap.push h) [ 5; 1; 5; 1; 5 ];
  let out = List.init 5 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "dups preserved" [ 1; 1; 5; 5; 5 ] out

let test_heap_interleaved () =
  let h = Heap.create Int.compare in
  Heap.push h 3;
  Heap.push h 1;
  check_int "min" 1 (Heap.pop_exn h);
  Heap.push h 0;
  Heap.push h 2;
  check_int "new min" 0 (Heap.pop_exn h);
  check_int "next" 2 (Heap.pop_exn h);
  check_int "last" 3 (Heap.pop_exn h)

let test_heap_exn_on_empty () =
  let h = Heap.create Int.compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h));
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty heap")
    (fun () -> ignore (Heap.peek_exn h))

let test_heap_clear () =
  let h = Heap.of_list Int.compare [ 3; 1; 2 ] in
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let test_heap_to_list () =
  let h = Heap.of_list Int.compare [ 3; 1; 2 ] in
  let l = List.sort Int.compare (Heap.to_list h) in
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] l

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list Int.compare xs in
      let out = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      out = List.sort Int.compare xs)

(* Regression: [create ~capacity] used to ignore the argument, so a
   heap sized for its workload still regrew through 16, 32, ... *)
let test_heap_capacity_respected () =
  let h = Heap.create ~capacity:100 Int.compare in
  check_int "capacity reported before first push" 100 (Heap.capacity h);
  for i = 1 to 100 do
    Heap.push h i
  done;
  check_int "no grow while filling to capacity" 100 (Heap.capacity h);
  Heap.push h 101;
  check_int "doubles only past capacity" 200 (Heap.capacity h)

(* [of_list ~capacity] sizes the backing array once for the workload,
   like [create ~capacity], instead of tightly to the list. *)
let test_heap_of_list_capacity () =
  let h = Heap.of_list ~capacity:64 Int.compare [ 3; 1; 2 ] in
  check_int "capacity honoured" 64 (Heap.capacity h);
  check_int "length" 3 (Heap.length h);
  check_int "still a heap" 1 (Heap.pop_exn h);
  for i = 4 to 64 do
    Heap.push h i
  done;
  check_int "no regrow up to capacity" 64 (Heap.capacity h)

let test_heap_of_list_empty () =
  let h = Heap.of_list Int.compare [] in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h 9;
  check_int "usable after" 9 (Heap.pop_exn h)

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_fifo () =
  let d = Deque.create () in
  check_bool "empty" true (Deque.is_empty d);
  List.iter (Deque.push_back d) [ 1; 2; 3 ];
  check_int "length" 3 (Deque.length d);
  check_bool "peek" true (Deque.peek_front d = Some 1);
  check_int "pop 1" 1 (Deque.pop_front d);
  check_int "pop 2" 2 (Deque.pop_front d);
  Deque.push_back d 4;
  check_int "pop 3" 3 (Deque.pop_front d);
  check_int "pop 4" 4 (Deque.pop_front d);
  check_bool "drained" true (Deque.is_empty d);
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Deque.pop_front: empty deque") (fun () ->
      ignore (Deque.pop_front d))

let test_deque_wraparound () =
  (* Small capacity so the ring's head passes the physical end many
     times; order must survive the wraps and the mid-life grow. *)
  let d = Deque.create ~capacity:4 () in
  let next = ref 0 and expected = ref 0 in
  for round = 1 to 50 do
    for _ = 1 to 3 do
      Deque.push_back d !next;
      incr next
    done;
    let drain = if round mod 7 = 0 then 1 else 3 in
    for _ = 1 to min drain (Deque.length d) do
      check_int "fifo across wraps" !expected (Deque.pop_front d);
      incr expected
    done
  done;
  Alcotest.(check (list int))
    "suffix intact"
    (List.init (!next - !expected) (fun i -> !expected + i))
    (Deque.to_list d)

let test_deque_remove () =
  let d = Deque.create ~capacity:2 () in
  List.iter (Deque.push_back d) [ 10; 11; 12; 13; 14 ];
  check_int "remove middle" 12 (Deque.remove d 2);
  check_int "remove front" 10 (Deque.remove d 0);
  check_int "remove back" 14 (Deque.remove d 2);
  Alcotest.(check (list int)) "order preserved" [ 11; 13 ] (Deque.to_list d);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Deque.remove: index out of bounds") (fun () ->
      ignore (Deque.remove d 2))

let test_deque_filter_in_place () =
  let d = Deque.create ~capacity:3 () in
  (* Pop twice first so the live region straddles the physical end. *)
  List.iter (Deque.push_back d) [ 90; 91; 1; 2; 3; 4; 5; 6 ];
  check_int "pre-pop" 90 (Deque.pop_front d);
  check_int "pre-pop" 91 (Deque.pop_front d);
  let removed = Deque.filter_in_place d ~f:(fun v -> v mod 2 = 0) in
  Alcotest.(check (list int)) "removed front-to-back" [ 1; 3; 5 ] removed;
  Alcotest.(check (list int)) "survivors in order" [ 2; 4; 6 ] (Deque.to_list d);
  let none = Deque.filter_in_place d ~f:(fun _ -> true) in
  Alcotest.(check (list int)) "keep-all removes nothing" [] none

(* Fuzz the deque against a plain-list oracle while mirroring the
   simulator's use: a running "work left" total maintained
   incrementally on push/pop/remove/filter must always equal the sum
   of the live elements. *)
let prop_deque_matches_list_oracle =
  QCheck.Test.make ~name:"deque agrees with list oracle (incl. work-left)"
    ~count:300
    QCheck.(list (pair (int_bound 5) (int_bound 100)))
    (fun ops ->
      let d = Deque.create ~capacity:2 () in
      let oracle = ref [] in
      let backlog = ref 0 in
      let ok = ref true in
      let expect b = if not b then ok := false in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 | 1 | 2 ->
            Deque.push_back d x;
            oracle := !oracle @ [ x ];
            backlog := !backlog + x
          | 3 -> (
            match !oracle with
            | [] -> expect (Deque.is_empty d)
            | hd :: tl ->
              expect (Deque.pop_front d = hd);
              oracle := tl;
              backlog := !backlog - hd)
          | 4 ->
            if !oracle <> [] then begin
              let i = x mod List.length !oracle in
              let v = List.nth !oracle i in
              expect (Deque.remove d i = v);
              oracle := List.filteri (fun j _ -> j <> i) !oracle;
              backlog := !backlog - v
            end
          | _ ->
            let keep v = v mod 3 <> x mod 3 in
            let removed = Deque.filter_in_place d ~f:keep in
            expect (removed = List.filter (fun v -> not (keep v)) !oracle);
            oracle := List.filter keep !oracle;
            List.iter (fun v -> backlog := !backlog - v) removed)
        ops;
      !ok
      && Deque.to_list d = !oracle
      && Deque.length d = List.length !oracle
      && Deque.fold d ~init:0 ~f:( + ) = !backlog)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  check_bool "mean nan" true (Float.is_nan (Stats.mean s))

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 3.0;
  check_float "mean" 3.0 (Stats.mean s);
  check_bool "variance nan" true (Float.is_nan (Stats.variance s))

let test_stats_known_values () =
  let s = Stats.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean s);
  (* Sample variance with n-1: 32/7. *)
  check_float "variance" (32.0 /. 7.0) (Stats.variance s);
  check_float "min" 2.0 (Stats.min_value s);
  check_float "max" 9.0 (Stats.max_value s);
  check_float "total" 40.0 (Stats.total s)

let test_stats_merge () =
  let a = Stats.of_array [| 1.0; 2.0; 3.0 |] in
  let b = Stats.of_array [| 10.0; 20.0 |] in
  let m = Stats.merge a b in
  let direct = Stats.of_array [| 1.0; 2.0; 3.0; 10.0; 20.0 |] in
  check_float "merged mean" (Stats.mean direct) (Stats.mean m);
  check_float "merged var" (Stats.variance direct) (Stats.variance m);
  check_int "merged count" 5 (Stats.count m)

let test_stats_merge_empty () =
  let a = Stats.create () in
  let b = Stats.of_array [| 1.0; 2.0 |] in
  check_float "empty+b mean" 1.5 (Stats.mean (Stats.merge a b));
  check_float "b+empty mean" 1.5 (Stats.mean (Stats.merge b a))

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let prop_stats_mean_matches_direct =
  QCheck.Test.make ~name:"welford mean equals direct mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let direct = Array.fold_left ( +. ) 0.0 arr /. Float.of_int (Array.length arr) in
      Float.abs (Stats.mean_of_array arr -. direct) < 1e-6 *. (1.0 +. Float.abs direct))

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_linear_binning () =
  let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.0; 0.5; 1.5; 9.99 ];
  let counts = Histogram.counts h in
  check_int "bin0" 2 counts.(0);
  check_int "bin1" 1 counts.(1);
  check_int "bin9" 1 counts.(9);
  check_int "total" 4 (Histogram.total h)

let test_histogram_overflow_underflow () =
  let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:1.0 ~bins:2 in
  List.iter (Histogram.add h) [ -1.0; 0.5; 2.0; 3.0 ];
  check_int "under" 1 (Histogram.underflow h);
  check_int "over" 2 (Histogram.overflow h)

let test_histogram_log_binning () =
  let h = Histogram.create ~scale:Histogram.Log10 ~lo:1.0 ~hi:1000.0 ~bins:3 in
  List.iter (Histogram.add h) [ 1.0; 5.0; 50.0; 500.0 ];
  let counts = Histogram.counts h in
  check_int "decade 1" 2 counts.(0);
  check_int "decade 2" 1 counts.(1);
  check_int "decade 3" 1 counts.(2)

let test_histogram_log_nonpositive () =
  let h = Histogram.create ~scale:Histogram.Log10 ~lo:1.0 ~hi:10.0 ~bins:2 in
  Histogram.add h 0.0;
  Histogram.add h (-5.0);
  check_int "nonpositive to underflow" 2 (Histogram.underflow h)

let test_histogram_bounds () =
  let h = Histogram.create ~scale:Histogram.Log10 ~lo:1.0 ~hi:100.0 ~bins:2 in
  let a, b = Histogram.bin_bounds h 0 in
  check_float "first decade lo" 1.0 a;
  check_float "first decade hi" 10.0 b

let test_histogram_invalid () =
  Alcotest.check_raises "log lo<=0"
    (Invalid_argument "Histogram.create: log scale needs lo > 0") (fun () ->
      ignore (Histogram.create ~scale:Histogram.Log10 ~lo:0.0 ~hi:1.0 ~bins:2))

let test_histogram_merge () =
  let mk () = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:10.0 ~bins:5 in
  let a = mk () and b = mk () in
  List.iter (Histogram.add a) [ 1.0; 3.0; -1.0; 42.0 ];
  List.iter (Histogram.add b) [ 1.5; 9.0; -2.0 ];
  let m = Histogram.merge a b in
  check_int "total" 7 (Histogram.total m);
  check_int "underflow" 2 (Histogram.underflow m);
  check_int "overflow" 1 (Histogram.overflow m);
  let ca = Histogram.counts a and cb = Histogram.counts b in
  let cm = Histogram.counts m in
  Array.iteri (fun i c -> check_int (Fmt.str "bin %d" i) (ca.(i) + cb.(i)) c) cm;
  (* Inputs are untouched. *)
  check_int "a unchanged" 4 (Histogram.total a);
  check_int "b unchanged" 3 (Histogram.total b)

let test_histogram_merge_mismatch () =
  let a = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:10.0 ~bins:5 in
  let wrong_bins = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:10.0 ~bins:4 in
  let wrong_scale = Histogram.create ~scale:Histogram.Log10 ~lo:1.0 ~hi:10.0 ~bins:5 in
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "bins" true (raises (fun () -> ignore (Histogram.merge a wrong_bins)));
  check_bool "scale" true (raises (fun () -> ignore (Histogram.merge a wrong_scale)))

let test_histogram_reset () =
  let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 1.0; -1.0; 42.0 ];
  Histogram.reset h;
  check_int "total" 0 (Histogram.total h);
  check_int "underflow" 0 (Histogram.underflow h);
  check_int "overflow" 0 (Histogram.overflow h);
  check_bool "percentile NaN when empty" true
    (Float.is_nan (Histogram.percentile h 50.0))

let test_histogram_percentile_basic () =
  let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 0 to 99 do
    Histogram.add h (Float.of_int i +. 0.5)
  done;
  (* With one sample per unit-wide bin, any percentile is within one
     bin width of the exact sorted-sample answer. *)
  List.iter
    (fun p ->
      let exact = Stats.percentile (Array.init 100 (fun i -> Float.of_int i +. 0.5)) p in
      let est = Histogram.percentile h p in
      check_bool (Fmt.str "p%.0f within a bin" p) true (Float.abs (est -. exact) <= 1.0))
    [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ]

(* Fuzz: the binned percentile lands in the same bin as the nearest-rank
   order statistic, i.e. within one bin width of it. (A linear-interpolation
   oracle would be wrong here: with sparse samples it interpolates across
   gaps far wider than a bin, which the histogram cannot see.) *)
let prop_histogram_percentile_oracle =
  QCheck.Test.make ~name:"histogram percentile tracks nearest-rank oracle"
    ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let xs = List.map Float.abs xs in
      let p = Float.max p 1e-6 in
      let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:100.0 ~bins:50 in
      List.iter (Histogram.add h) xs;
      let sorted = Array.of_list (List.sort Float.compare xs) in
      let n = Array.length sorted in
      let target = p /. 100.0 *. Float.of_int n in
      let k = Int.min n (Int.max 1 (Float.to_int (Float.ceil target))) in
      let exact = sorted.(k - 1) in
      let est = Histogram.percentile h p in
      let bin_width = 100.0 /. 50.0 in
      Float.abs (est -. exact) <= bin_width)

(* ------------------------------------------------------------------ *)
(* Arrayx *)

let test_find_last_leq () =
  let a = [| 1; 3; 5; 7 |] in
  check_int "below all" (-1) (Arrayx.find_last_leq Int.compare a 0);
  check_int "exact first" 0 (Arrayx.find_last_leq Int.compare a 1);
  check_int "between" 1 (Arrayx.find_last_leq Int.compare a 4);
  check_int "exact mid" 2 (Arrayx.find_last_leq Int.compare a 5);
  check_int "above all" 3 (Arrayx.find_last_leq Int.compare a 100);
  check_int "empty" (-1) (Arrayx.find_last_leq Int.compare [||] 5)

let test_find_first_geq () =
  let a = [| 1; 3; 5; 7 |] in
  check_int "below all" 0 (Arrayx.find_first_geq Int.compare a 0);
  check_int "exact" 1 (Arrayx.find_first_geq Int.compare a 3);
  check_int "between" 2 (Arrayx.find_first_geq Int.compare a 4);
  check_int "above all" 4 (Arrayx.find_first_geq Int.compare a 100)

let test_is_sorted () =
  check_bool "sorted" true (Arrayx.is_sorted Int.compare [| 1; 2; 2; 3 |]);
  check_bool "unsorted" false (Arrayx.is_sorted Int.compare [| 2; 1 |]);
  check_bool "strict rejects dups" false
    (Arrayx.is_strictly_sorted Int.compare [| 1; 2; 2 |]);
  check_bool "strict ok" true (Arrayx.is_strictly_sorted Int.compare [| 1; 2; 3 |]);
  check_bool "empty" true (Arrayx.is_sorted Int.compare [||])

let test_prng_bool_balanced () =
  let rng = Prng.create 15 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool rng then incr trues
  done;
  check_bool "roughly balanced" true (!trues > 4_500 && !trues < 5_500)

let test_histogram_render_smoke () =
  let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 1.0; 2.0; 2.5; -1.0; 99.0 ];
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Histogram.render ppf h;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  check_bool "renders bars and overflow lines" true
    (String.length s > 50
    && (let contains needle =
          let n = String.length needle and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
          go 0
        in
        contains "underflow" && contains "overflow"))

(* Regression: a bin dwarfed by the peak used to round its bar down to
   zero '#', making a non-empty bin indistinguishable from an empty
   one. Counts render in a fixed %8d column, so " <count> " with that
   padding identifies each bin's line. *)
let test_histogram_render_min_bar () =
  let h = Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:3.0 ~bins:3 in
  for _ = 1 to 10_000 do
    Histogram.add h 0.5
  done;
  Histogram.add h 1.5;
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Histogram.render ppf h;
  Format.pp_print_flush ppf ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let line_of count =
    List.find (fun l -> contains l (Printf.sprintf "%8d " count)) lines
  in
  check_bool "peak bin has a bar" true (String.contains (line_of 10_000) '#');
  check_bool "singleton bin still shows a mark" true
    (String.contains (line_of 1) '#');
  check_bool "empty bin shows none" false (String.contains (line_of 0) '#')

let test_stats_pp_smoke () =
  let s = Stats.of_array [| 1.0; 2.0; 3.0 |] in
  let str = Fmt.str "%a" Stats.pp s in
  check_bool "mentions count" true (String.length str > 10)

let prop_find_last_leq_correct =
  QCheck.Test.make ~name:"find_last_leq agrees with linear scan" ~count:500
    QCheck.(pair (list small_int) small_int)
    (fun (xs, key) ->
      let a = Array.of_list (List.sort_uniq Int.compare xs) in
      let expected =
        let best = ref (-1) in
        Array.iteri (fun i x -> if x <= key then best := i) a;
        !best
      in
      Arrayx.find_last_leq Int.compare a key = expected)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "split_key leaves parent untouched" `Quick
            test_prng_split_key_no_perturbation;
          Alcotest.test_case "split_key keyed streams" `Quick
            test_prng_split_key_streams;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float_pos range" `Quick test_prng_float_pos_range;
          Alcotest.test_case "int range and uniformity" `Quick test_prng_int_range;
          Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "uniform mean" `Slow test_prng_uniform_mean;
          Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "pareto support" `Quick test_prng_pareto_support;
          Alcotest.test_case "pareto tail mass" `Slow test_prng_pareto_tail;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "bool balanced" `Quick test_prng_bool_balanced;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "singleton" `Quick test_heap_singleton;
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "exn on empty" `Quick test_heap_exn_on_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "to_list" `Quick test_heap_to_list;
          Alcotest.test_case "capacity respected" `Quick
            test_heap_capacity_respected;
          Alcotest.test_case "of_list capacity" `Quick test_heap_of_list_capacity;
          Alcotest.test_case "of_list empty" `Quick test_heap_of_list_empty;
          qtest prop_heap_sorts;
        ] );
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_deque_fifo;
          Alcotest.test_case "wraparound" `Quick test_deque_wraparound;
          Alcotest.test_case "remove" `Quick test_deque_remove;
          Alcotest.test_case "filter_in_place" `Quick
            test_deque_filter_in_place;
          qtest prop_deque_matches_list_oracle;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "pp smoke" `Quick test_stats_pp_smoke;
          qtest prop_stats_mean_matches_direct;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "linear binning" `Quick test_histogram_linear_binning;
          Alcotest.test_case "over/underflow" `Quick test_histogram_overflow_underflow;
          Alcotest.test_case "log binning" `Quick test_histogram_log_binning;
          Alcotest.test_case "log nonpositive" `Quick test_histogram_log_nonpositive;
          Alcotest.test_case "bin bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "invalid args" `Quick test_histogram_invalid;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge mismatch" `Quick test_histogram_merge_mismatch;
          Alcotest.test_case "reset" `Quick test_histogram_reset;
          Alcotest.test_case "percentile basic" `Quick
            test_histogram_percentile_basic;
          Alcotest.test_case "render smoke" `Quick test_histogram_render_smoke;
          Alcotest.test_case "render min bar" `Quick test_histogram_render_min_bar;
          qtest prop_histogram_percentile_oracle;
        ] );
      ( "arrayx",
        [
          Alcotest.test_case "find_last_leq" `Quick test_find_last_leq;
          Alcotest.test_case "find_first_geq" `Quick test_find_first_geq;
          Alcotest.test_case "is_sorted" `Quick test_is_sorted;
          qtest prop_find_last_leq_correct;
        ] );
    ]
