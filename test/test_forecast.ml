(* Tests for the online arrival/gain forecasters (EWMA, additive
   Holt–Winters) and the offline perfect-foresight oracle schedule. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* One cycle of a raised-cosine "diurnal" signal, [season] samples from
   low to high and back — the shape Bursty.diurnal drives through the
   controller. *)
let diurnal_sample ~season ~low ~high i =
  let pos = Float.of_int (i mod season) /. Float.of_int season in
  let x = 0.5 *. (1.0 -. Float.cos (2.0 *. Float.pi *. pos)) in
  low +. ((high -. low) *. x)

let square_sample ~season ~duty ~low ~high i =
  let pos = Float.of_int (i mod season) /. Float.of_int season in
  if pos < 1.0 -. duty then low else high

(* ------------------------------------------------------------------ *)
(* EWMA *)

let test_ewma_seeds_on_first_sample () =
  let f = Forecast.ewma ~alpha:0.3 () in
  check_float "empty predicts 0" 0.0 (Forecast.predict f ~horizon:1);
  check_bool "not ready before data" false (Forecast.ready f);
  Forecast.observe f 42.0;
  check_bool "ready after one sample" true (Forecast.ready f);
  check_float "first sample seeds the level" 42.0 (Forecast.predict f ~horizon:1);
  check_float "horizon-independent" 42.0 (Forecast.predict f ~horizon:7)

let test_ewma_converges_to_constant () =
  let f = Forecast.ewma ~alpha:0.4 () in
  Forecast.observe f 100.0;
  for _ = 1 to 60 do Forecast.observe f 10.0 done;
  let p = Forecast.predict f ~horizon:1 in
  check_bool (Printf.sprintf "converged (%.4f)" p) true (Float.abs (p -. 10.0) < 0.01)

let test_ewma_update_rule_exact () =
  let f = Forecast.ewma ~alpha:0.25 () in
  Forecast.observe f 8.0;
  Forecast.observe f 16.0;
  (* 8 + 0.25*(16-8) = 10 *)
  check_float "one smoothing step" 10.0 (Forecast.predict f ~horizon:1)

(* ------------------------------------------------------------------ *)
(* Holt–Winters *)

let test_hw_ready_after_one_season () =
  let season = 8 in
  let f = Forecast.holt_winters ~season () in
  for i = 0 to season - 2 do
    Forecast.observe f (Float.of_int i);
    check_bool "not ready mid-warmup" false (Forecast.ready f)
  done;
  Forecast.observe f 0.0;
  check_bool "ready after a full season" true (Forecast.ready f);
  check_int "n_obs" season (Forecast.n_obs f)

let test_hw_tracks_diurnal_signal () =
  (* After a few cycles the seasonal profile must predict the next
     cycle's shape well: mean absolute error across one full cycle of
     one-step-ahead forecasts under 10% of the signal's amplitude. *)
  let season = 24 and low = 5.0 and high = 50.0 in
  let f = Forecast.holt_winters ~season () in
  let n_train = 4 * season in
  for i = 0 to n_train - 1 do
    Forecast.observe f (diurnal_sample ~season ~low ~high i)
  done;
  let err = ref 0.0 in
  for i = n_train to n_train + season - 1 do
    let predicted = Forecast.predict f ~horizon:1 in
    let actual = diurnal_sample ~season ~low ~high i in
    err := !err +. Float.abs (predicted -. actual);
    Forecast.observe f actual
  done;
  let mae = !err /. Float.of_int season in
  check_bool
    (Printf.sprintf "diurnal one-step MAE %.3f below 10%% of amplitude" mae)
    true
    (mae < 0.1 *. (high -. low))

let test_hw_anticipates_square_edge () =
  (* The value of seasonality: standing just before the on-edge of a
     learned square wave, the multi-step forecast into the high phase
     must be near the high level — an EWMA fed the same history
     cannot see the step coming. *)
  let season = 20 and duty = 0.4 and low = 2.0 and high = 40.0 in
  let hw = Forecast.holt_winters ~season () in
  let ew = Forecast.ewma () in
  let edge = 3 * season + (season * 6 / 10) in
  (* stop one sample short of the third cycle's rising edge *)
  for i = 0 to edge - 1 do
    let y = square_sample ~season ~duty ~low ~high i in
    Forecast.observe hw y;
    Forecast.observe ew y
  done;
  let p_hw = Forecast.predict hw ~horizon:1 in
  let p_ew = Forecast.predict ew ~horizon:1 in
  check_bool
    (Printf.sprintf "HW sees the edge (%.2f)" p_hw)
    true
    (p_hw > 0.6 *. high);
  check_bool
    (Printf.sprintf "EWMA blind to the edge (%.2f)" p_ew)
    true
    (p_ew < 0.5 *. high)

let test_hw_converges_on_trend () =
  (* A pure linear ramp (no seasonality in the signal): the trend term
     must push multi-step forecasts ahead of the level. *)
  let season = 6 in
  let f = Forecast.holt_winters ~season () in
  for i = 0 to (8 * season) - 1 do
    Forecast.observe f (Float.of_int i)
  done;
  let p1 = Forecast.predict f ~horizon:1 in
  let p5 = Forecast.predict f ~horizon:5 in
  check_bool "forecast tracks ramp" true (Float.abs (p1 -. Float.of_int (8 * season)) < 4.0);
  check_bool "longer horizon extrapolates further" true (p5 > p1)

let test_forecast_deterministic () =
  let mk () =
    let f = Forecast.holt_winters ~season:12 () in
    for i = 0 to 99 do
      Forecast.observe f (diurnal_sample ~season:12 ~low:1.0 ~high:9.0 i)
    done;
    Forecast.predict f ~horizon:3
  in
  check_float "same feed, same forecast" (mk ()) (mk ())

(* ------------------------------------------------------------------ *)
(* Validation and specs *)

let raises f = match f () with exception Invalid_argument _ -> true | _ -> false

let test_constructor_validation () =
  check_bool "ewma alpha 0" true (raises (fun () -> Forecast.ewma ~alpha:0.0 ()));
  check_bool "ewma alpha > 1" true (raises (fun () -> Forecast.ewma ~alpha:1.5 ()));
  check_bool "hw season 1" true
    (raises (fun () -> Forecast.holt_winters ~season:1 ()));
  check_bool "hw bad beta" true
    (raises (fun () -> Forecast.holt_winters ~beta:0.0 ~season:4 ()));
  check_bool "bad horizon" true
    (raises (fun () -> Forecast.predict (Forecast.ewma ()) ~horizon:0))

let test_of_spec () =
  let ok s = match Forecast.of_spec s with Ok f -> Forecast.name f | Error e -> e in
  check_bool "ewma" true (ok "ewma" = "ewma(0.40)");
  check_bool "ewma:0.2" true (ok "ewma:0.2" = "ewma(0.20)");
  check_bool "hw:24" true (ok "hw:24" = "hw(24)");
  check_bool "hw full" true (ok "hw:12:0.5:0.2:0.1" = "hw(12)");
  let bad s = Result.is_error (Forecast.of_spec s) in
  check_bool "garbage" true (bad "arima");
  check_bool "bad alpha" true (bad "ewma:2.0");
  check_bool "bad season" true (bad "hw:1");
  check_bool "trailing junk" true (bad "hw:24:0.1")

(* ------------------------------------------------------------------ *)
(* Oracle *)

let sla = Sla.single_step ~bound:50.0 ~gain:1.0

let mk_query id arrival size =
  Query.make ~id ~arrival ~size ~sla ()

let test_oracle_targets_follow_work () =
  (* 10 ms windows; window 0 holds 35 ms of work, window 2 holds 5 ms.
     With rho = 1 that needs 4 servers then 1, clamped to [1..8]. *)
  let queries =
    [|
      mk_query 0 1.0 20.0; mk_query 1 2.0 15.0;  (* window 0: 35 ms *)
      mk_query 2 25.0 5.0;  (* window 2: 5 ms *)
    |]
  in
  let s =
    Forecast.Oracle.schedule ~queries ~interval:10.0 ~lead:0.0 ~rho:1.0
      ~min_servers:1 ~max_servers:8 ()
  in
  (* lead 0 still covers [now, now + interval]: at t=0 both windows 0
     and 1 are reachable; window 0 dominates. *)
  check_int "peak window" 4 (Forecast.Oracle.target s ~now:0.0);
  check_int "after the peak" 1 (Forecast.Oracle.target s ~now:30.0)

let test_oracle_lead_pulls_demand_forward () =
  (* One 80 ms burst landing in window 4 ([40,50)). With lead = 20 ms
     the target must rise two windows early. *)
  let queries = [| mk_query 0 45.0 80.0 |] in
  let mk lead =
    Forecast.Oracle.schedule ~queries ~interval:10.0 ~lead ~rho:1.0
      ~min_servers:1 ~max_servers:16 ()
  in
  let s0 = mk 0.0 and s2 = mk 20.0 in
  check_int "no lead: quiet at t=20" 1 (Forecast.Oracle.target s0 ~now:20.0);
  check_int "20ms lead: rises at t=20" 8 (Forecast.Oracle.target s2 ~now:20.0);
  check_int "both high in the window" 8 (Forecast.Oracle.target s0 ~now:40.0)

let test_oracle_clamps_and_decays () =
  let queries = [| mk_query 0 5.0 500.0 |] in
  let s =
    Forecast.Oracle.schedule ~queries ~interval:10.0 ~lead:0.0 ~rho:0.5
      ~min_servers:2 ~max_servers:6 ()
  in
  check_int "clamped to max" 6 (Forecast.Oracle.target s ~now:0.0);
  check_int "decays to min after the trace" 2 (Forecast.Oracle.target s ~now:1000.0)

let test_oracle_validation () =
  let q = [| mk_query 0 0.0 1.0 |] in
  let mk ?(interval = 10.0) ?(lead = 0.0) ?(rho = 1.0) ?(min_servers = 1)
      ?(max_servers = 4) () =
    Forecast.Oracle.schedule ~queries:q ~interval ~lead ~rho ~min_servers
      ~max_servers ()
  in
  check_bool "bad interval" true (raises (fun () -> mk ~interval:0.0 ()));
  check_bool "bad lead" true (raises (fun () -> mk ~lead:(-1.0) ()));
  check_bool "bad rho" true (raises (fun () -> mk ~rho:0.0 ()));
  check_bool "bad bounds" true (raises (fun () -> mk ~min_servers:5 ()));
  check_bool "rho grid sane" true
    (Array.for_all (fun r -> r > 0.0 && r <= 1.5) Forecast.Oracle.rho_candidates)

let () =
  Alcotest.run "forecast"
    [
      ( "ewma",
        [
          Alcotest.test_case "seeds on first sample" `Quick
            test_ewma_seeds_on_first_sample;
          Alcotest.test_case "converges to constant" `Quick
            test_ewma_converges_to_constant;
          Alcotest.test_case "update rule exact" `Quick test_ewma_update_rule_exact;
        ] );
      ( "holt-winters",
        [
          Alcotest.test_case "ready after one season" `Quick
            test_hw_ready_after_one_season;
          Alcotest.test_case "tracks diurnal signal" `Quick
            test_hw_tracks_diurnal_signal;
          Alcotest.test_case "anticipates square edge" `Quick
            test_hw_anticipates_square_edge;
          Alcotest.test_case "converges on trend" `Quick test_hw_converges_on_trend;
          Alcotest.test_case "deterministic" `Quick test_forecast_deterministic;
        ] );
      ( "specs",
        [
          Alcotest.test_case "constructor validation" `Quick
            test_constructor_validation;
          Alcotest.test_case "of_spec" `Quick test_of_spec;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "targets follow work" `Quick
            test_oracle_targets_follow_work;
          Alcotest.test_case "lead pulls demand forward" `Quick
            test_oracle_lead_pulls_demand_forward;
          Alcotest.test_case "clamps and decays" `Quick test_oracle_clamps_and_decays;
          Alcotest.test_case "validation" `Quick test_oracle_validation;
        ] );
    ]
