(* Incremental-vs-rebuild equivalence: the ISSUE's contract is that the
   incremental SLA-tree scheduler and the O(1) FCFS dispatcher make
   exactly the same decisions as the rebuild-per-decision paths they
   replace. Both paths are driven inside one simulation run, so every
   single decision is compared on identical state. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let trace ~kind ~sigma2 ~load ~servers ~n_queries ~seed =
  let error =
    if sigma2 > 0.0 then Estimate_error.gaussian ~sigma2 ()
    else Estimate_error.none
  in
  Trace.generate
    (Trace.config ~error ~kind ~profile:Workloads.Sla_b ~load ~servers
       ~n_queries ~seed ())

(* ------------------------------------------------------------------ *)
(* Scheduler: Incr_sched vs Schedulers.fcfs_sla_tree (rebuild). *)

(* Runs one simulation where each scheduling decision is answered by
   the live incremental tree AND recomputed from scratch; returns
   (decisions, mismatches, state) so callers can also assert on the
   fast/rebuilt counters. *)
let run_scheduler_both ?drop_policy ?ticker ~queries ~servers () =
  let st = Incr_sched.create () in
  let rebuild = Schedulers.pick Schedulers.fcfs_sla_tree in
  let decisions = ref 0 and mismatches = ref 0 in
  let pick ~now buffer =
    let a = Incr_sched.pick st ~now buffer in
    let b = rebuild ~now buffer in
    incr decisions;
    if a <> b then incr mismatches;
    a
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ?drop_policy ?ticker
    ~on_server_event:(Incr_sched.hook st)
    ~queries ~n_servers:servers ~pick_next:pick
    ~dispatch:(Dispatchers.instantiate Dispatchers.lwl)
    ~metrics ();
  (!decisions, !mismatches, st)

let test_scheduler_equiv_exp () =
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:0.95 ~servers:3
      ~n_queries:1_500 ~seed:101
  in
  let decisions, mismatches, st = run_scheduler_both ~queries ~servers:3 () in
  check_bool "made decisions" true (decisions > 500);
  check_int "no pick mismatches" 0 mismatches;
  check_bool
    (Printf.sprintf "fast path dominates (%d fast vs %d rebuilt)"
       (Incr_sched.fast_decisions st)
       (Incr_sched.rebuilt_decisions st))
    true
    (Incr_sched.fast_decisions st > Incr_sched.rebuilt_decisions st)

let test_scheduler_equiv_pareto () =
  (* Heavy-tailed sizes plus estimation error: completions drift far
     from the estimates, exercising pop_head's delay absorption. *)
  let queries =
    trace ~kind:Workloads.Pareto ~sigma2:1.0 ~load:1.05 ~servers:2
      ~n_queries:1_500 ~seed:202
  in
  let decisions, mismatches, _ = run_scheduler_both ~queries ~servers:2 () in
  check_bool "made decisions" true (decisions > 500);
  check_int "no pick mismatches" 0 mismatches

let test_scheduler_equiv_with_drops () =
  (* Overload with the drop policy on: Dropped events dirty the live
     trees and force the reconstruct path; picks must still agree. *)
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.6 ~servers:2
      ~n_queries:1_200 ~seed:303
  in
  let _, mismatches, _ =
    run_scheduler_both ~drop_policy:Sim.drop_past_last_deadline ~queries
      ~servers:2 ()
  in
  check_int "no pick mismatches under drops" 0 mismatches

let prop_scheduler_equiv_random_seeds =
  QCheck.Test.make ~name:"scheduler picks equal over random seeds" ~count:8
    QCheck.(pair (int_bound 100_000) bool)
    (fun (seed, heavy) ->
      let kind = if heavy then Workloads.Pareto else Workloads.Exp in
      let queries =
        trace ~kind ~sigma2:0.2 ~load:1.0 ~servers:2 ~n_queries:1_000 ~seed
      in
      let _, mismatches, _ = run_scheduler_both ~queries ~servers:2 () in
      mismatches = 0)

let test_scheduler_end_to_end_metrics_equal () =
  (* Whole-trajectory check through the public Schedulers API: the
     incremental variant (with its hook installed) must reproduce the
     rebuild variant's metrics bit-for-bit. *)
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:0.95 ~servers:3
      ~n_queries:1_500 ~seed:404
  in
  let run sched =
    let metrics = Metrics.create ~warmup_id:500 () in
    let pick_next, hook = Schedulers.instantiate sched in
    Sim.run ?on_server_event:hook ~queries ~n_servers:3 ~pick_next
      ~dispatch:(Dispatchers.instantiate Dispatchers.lwl)
      ~metrics ();
    metrics
  in
  let a = run Schedulers.fcfs_sla_tree in
  let b = run Schedulers.fcfs_sla_tree_incr in
  Alcotest.(check (float 0.0))
    "identical avg loss" (Metrics.avg_loss a) (Metrics.avg_loss b);
  Alcotest.(check (float 0.0))
    "identical avg response" (Metrics.avg_response a) (Metrics.avg_response b);
  check_int "identical late count" (Metrics.late_count a) (Metrics.late_count b)

(* ------------------------------------------------------------------ *)
(* Dispatcher: fcfs_sla_tree_incr vs sla_tree Planner.fcfs. *)

(* A scripted elasticity scenario for the ?ticker hook: grow the pool
   twice, then drain two servers (redistributing their buffers), so
   the incremental state must survive membership changes. *)
let scale_script () =
  let n = ref 0 in
  fun sim ->
    incr n;
    match !n with
    | 4 | 8 -> ignore (Sim.add_server sim)
    | 12 | 16 ->
      (* Retire the lowest-sid server still accepting work, keeping at
         least one accepting. *)
      if Sim.dispatchable_count sim > 1 then begin
        let sid = ref (-1) in
        for i = Sim.n_servers sim - 1 downto 0 do
          if Sim.dispatchable sim i then sid := i
        done;
        if !sid >= 0 then Sim.retire_server sim !sid
      end
    | _ -> ()

let test_scheduler_equiv_elastic () =
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.1 ~servers:3
      ~n_queries:1_500 ~seed:808
  in
  let decisions, mismatches, _ =
    run_scheduler_both ~ticker:(400.0, scale_script ()) ~queries ~servers:3 ()
  in
  check_bool "made decisions" true (decisions > 500);
  check_int "no pick mismatches across scale events" 0 mismatches

(* Satellite invariant of the rejection accounting: whenever the run
   is quiescent, every offered query was either admitted or rejected —
   refusals never leak into (or out of) the measured flow. *)
let check_balance m =
  check_int "offered = admitted + rejected" (Metrics.offered_count m)
    (Metrics.admitted_count m + Metrics.rejected_count m)

let run_dispatcher_both ?speeds ?ticker ~admission ~queries ~servers () =
  let d_incr = Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ~admission ()) in
  let d_tree = Dispatchers.instantiate (Dispatchers.sla_tree ~admission Planner.fcfs) in
  let decisions = ref 0 and mismatches = ref 0 in
  let dispatch sim q =
    let a = d_incr sim q in
    let b = d_tree sim q in
    incr decisions;
    if a.Sim.target <> b.Sim.target then incr mismatches;
    a
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ?speeds ?ticker ~queries ~n_servers:servers
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch ~metrics ();
  check_balance metrics;
  (!decisions, !mismatches)

let test_dispatcher_equiv_exp () =
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:0.95 ~servers:4
      ~n_queries:1_500 ~seed:505
  in
  let decisions, mismatches =
    run_dispatcher_both ~admission:false ~queries ~servers:4 ()
  in
  check_int "every arrival dispatched through both" 1_500 decisions;
  check_int "no target mismatches" 0 mismatches

let test_dispatcher_equiv_pareto_heterogeneous () =
  (* Heterogeneous speeds: the O(1) profit must keep the paper's
     per-server speed scaling exactly like the tree-based what-if. *)
  let queries =
    trace ~kind:Workloads.Pareto ~sigma2:1.0 ~load:1.0 ~servers:3
      ~n_queries:1_500 ~seed:606
  in
  let _, mismatches =
    run_dispatcher_both ~speeds:[| 1.0; 0.5; 2.0 |] ~admission:false ~queries
      ~servers:3 ()
  in
  check_int "no target mismatches (heterogeneous)" 0 mismatches

let test_dispatcher_equiv_admission () =
  (* Saturated farm with admission control: accept/reject decisions
     (target = None) must also coincide. *)
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.6 ~servers:2
      ~n_queries:1_200 ~seed:707
  in
  let _, mismatches =
    run_dispatcher_both ~admission:true ~queries ~servers:2 ()
  in
  check_int "no accept/reject mismatches" 0 mismatches

let test_dispatcher_equiv_elastic () =
  (* Same scripted scale-up/drain scenario on the dispatcher pair:
     redistributed buffers arrive as ordinary dispatches and both
     paths must choose the same target throughout. *)
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.1 ~servers:3
      ~n_queries:1_500 ~seed:909
  in
  let decisions, mismatches =
    run_dispatcher_both ~ticker:(400.0, scale_script ()) ~admission:false
      ~queries ~servers:3 ()
  in
  check_bool "dispatched (arrivals + redistributions)" true (decisions >= 1_500);
  check_int "no target mismatches across scale events" 0 mismatches

let prop_dispatcher_equiv_random_seeds =
  QCheck.Test.make ~name:"dispatcher targets equal over random seeds" ~count:8
    QCheck.(pair (int_bound 100_000) bool)
    (fun (seed, heavy) ->
      let kind = if heavy then Workloads.Pareto else Workloads.Exp in
      let queries =
        trace ~kind ~sigma2:0.2 ~load:1.0 ~servers:3 ~n_queries:1_000 ~seed
      in
      let _, mismatches =
        run_dispatcher_both ~admission:false ~queries ~servers:3 ()
      in
      mismatches = 0)

(* ------------------------------------------------------------------ *)
(* Flat vs boxed representation, memoized vs rebuild-per-candidate:
   the default dispatcher (memoized probes over the flat arena-backed
   tree) against the historical oracle (no cache, boxed tree, rebuilt
   for every candidate), decision by decision on identical state. *)

let run_dispatcher_flat_boxed ?speeds ?ticker ?timers ?(planner = Planner.fcfs)
    ?(admission = false) ~queries ~servers () =
  let d_flat =
    Dispatchers.instantiate (Dispatchers.sla_tree ~admission planner)
  in
  let d_boxed =
    Dispatchers.instantiate
      (Dispatchers.sla_tree ~admission ~memo:false ~impl:Sla_tree.Boxed planner)
  in
  let decisions = ref 0 and mismatches = ref 0 in
  let dispatch sim q =
    let a = d_flat sim q in
    let b = d_boxed sim q in
    incr decisions;
    if a.Sim.target <> b.Sim.target then incr mismatches;
    a
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ?speeds ?ticker ?timers ~queries ~n_servers:servers
    ~pick_next:(Schedulers.pick (Schedulers.of_planner planner))
    ~dispatch ~metrics ();
  (!decisions, !mismatches)

let test_flat_boxed_dispatch_exp () =
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:0.95 ~servers:4
      ~n_queries:1_500 ~seed:1201
  in
  let decisions, mismatches =
    run_dispatcher_flat_boxed ~queries ~servers:4 ()
  in
  check_int "every arrival through both" 1_500 decisions;
  check_int "no target mismatches" 0 mismatches

let test_flat_boxed_dispatch_sorted_planners () =
  (* Non-FCFS time-invariant planners exercise the O(log n) sorted
     insertion rank against the oracle's append-and-sort rank. *)
  let queries =
    trace ~kind:Workloads.Pareto ~sigma2:0.5 ~load:1.0 ~servers:3
      ~n_queries:1_200 ~seed:1202
  in
  List.iter
    (fun planner ->
      let _, mismatches =
        run_dispatcher_flat_boxed ~planner ~queries ~servers:3 ()
      in
      check_int
        (Printf.sprintf "no mismatches under %s" (Planner.name planner))
        0 mismatches)
    [ Planner.sjf; Planner.edf; Planner.value_edf ]

let test_flat_boxed_dispatch_heterogeneous_admission () =
  let queries =
    trace ~kind:Workloads.Pareto ~sigma2:1.0 ~load:1.4 ~servers:3
      ~n_queries:1_200 ~seed:1203
  in
  let _, mismatches =
    run_dispatcher_flat_boxed ~speeds:[| 1.0; 0.5; 2.0 |] ~admission:true
      ~queries ~servers:3 ()
  in
  check_int "no accept/reject mismatches" 0 mismatches

let test_flat_boxed_dispatch_elastic () =
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.1 ~servers:3
      ~n_queries:1_500 ~seed:1204
  in
  let decisions, mismatches =
    run_dispatcher_flat_boxed ~ticker:(400.0, scale_script ()) ~queries
      ~servers:3 ()
  in
  check_bool "dispatched (arrivals + redistributions)" true (decisions >= 1_500);
  check_int "no mismatches across scale events" 0 mismatches

(* Fault scenario: a brownout, a crash whose orphans retry through the
   dispatcher, and two repairs. Crashes void cached probe state, so
   this is the sharpest test of the generation-keyed memoization. *)
let fault_timers () =
  [|
    (250.0, fun sim -> Sim.degrade_server sim 0 ~factor:0.4);
    ( 400.0,
      fun sim ->
        List.iter
          (fun q -> Sim.reinject sim (Query.retried q))
          (Sim.crash_server sim 1) );
    (650.0, fun sim -> Sim.restore_server sim 0);
    (800.0, fun sim -> Sim.restore_server sim 1);
  |]

let test_flat_boxed_dispatch_faults () =
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.0 ~servers:3
      ~n_queries:1_500 ~seed:1205
  in
  let decisions, mismatches =
    run_dispatcher_flat_boxed ~timers:(fault_timers ()) ~queries ~servers:3 ()
  in
  check_bool "dispatched (arrivals + retries)" true (decisions >= 1_500);
  check_int "no mismatches across crash/brownout/repair" 0 mismatches

let prop_flat_boxed_dispatch_random_seeds =
  QCheck.Test.make ~name:"memoized flat == boxed oracle over random seeds"
    ~count:8
    QCheck.(triple (int_bound 100_000) bool bool)
    (fun (seed, heavy, sorted) ->
      let kind = if heavy then Workloads.Pareto else Workloads.Exp in
      let planner = if sorted then Planner.sjf else Planner.fcfs in
      let queries =
        trace ~kind ~sigma2:0.2 ~load:1.0 ~servers:3 ~n_queries:800 ~seed
      in
      let _, mismatches =
        run_dispatcher_flat_boxed ~planner ~queries ~servers:3 ()
      in
      mismatches = 0)

let test_flat_boxed_dispatch_metrics_equal () =
  (* Whole-trajectory check through the public API: the memoized flat
     default must reproduce the boxed no-cache oracle's end-to-end
     metrics bit-for-bit. *)
  let queries =
    trace ~kind:Workloads.Exp ~sigma2:0.2 ~load:1.0 ~servers:3
      ~n_queries:1_500 ~seed:1206
  in
  let run d =
    let metrics = Metrics.create ~warmup_id:500 () in
    Sim.run ~queries ~n_servers:3
      ~pick_next:(Schedulers.pick Schedulers.fcfs)
      ~dispatch:(Dispatchers.instantiate d)
      ~metrics ();
    metrics
  in
  let a = run (Dispatchers.sla_tree Planner.fcfs) in
  let b = run (Dispatchers.sla_tree ~memo:false ~impl:Sla_tree.Boxed Planner.fcfs) in
  Alcotest.(check (float 0.0))
    "identical avg loss" (Metrics.avg_loss a) (Metrics.avg_loss b);
  Alcotest.(check (float 0.0))
    "identical avg response" (Metrics.avg_response a) (Metrics.avg_response b);
  check_int "identical late count" (Metrics.late_count a) (Metrics.late_count b)

let run_scheduler_flat_boxed ~planner ~queries ~servers () =
  let flat = Schedulers.pick (Schedulers.with_sla_tree planner) in
  let boxed =
    Schedulers.pick (Schedulers.with_sla_tree ~impl:Sla_tree.Boxed planner)
  in
  let decisions = ref 0 and mismatches = ref 0 in
  let pick ~now buffer =
    let a = flat ~now buffer in
    let b = boxed ~now buffer in
    incr decisions;
    if a <> b then incr mismatches;
    a
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~queries ~n_servers:servers ~pick_next:pick
    ~dispatch:(Dispatchers.instantiate Dispatchers.lwl)
    ~metrics ();
  (!decisions, !mismatches)

let test_flat_boxed_scheduler () =
  List.iter
    (fun (planner, seed) ->
      let queries =
        trace ~kind:Workloads.Pareto ~sigma2:0.5 ~load:1.05 ~servers:2
          ~n_queries:1_000 ~seed
      in
      let decisions, mismatches =
        run_scheduler_flat_boxed ~planner ~queries ~servers:2 ()
      in
      check_bool
        (Printf.sprintf "made decisions (%d)" decisions)
        true (decisions > 100);
      check_int
        (Printf.sprintf "no pick mismatches under %s" (Planner.name planner))
        0 mismatches)
    [ (Planner.fcfs, 1301); (Planner.sjf, 1302); (Planner.value_edf, 1303) ]

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "equivalence"
    [
      ( "scheduler",
        [
          Alcotest.test_case "exp workload" `Quick test_scheduler_equiv_exp;
          Alcotest.test_case "pareto + estimate error" `Quick
            test_scheduler_equiv_pareto;
          Alcotest.test_case "drop policy" `Quick
            test_scheduler_equiv_with_drops;
          Alcotest.test_case "end-to-end metrics equal" `Quick
            test_scheduler_end_to_end_metrics_equal;
          Alcotest.test_case "elastic pool" `Quick test_scheduler_equiv_elastic;
          qtest prop_scheduler_equiv_random_seeds;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "exp workload" `Quick test_dispatcher_equiv_exp;
          Alcotest.test_case "pareto heterogeneous" `Quick
            test_dispatcher_equiv_pareto_heterogeneous;
          Alcotest.test_case "admission control" `Quick
            test_dispatcher_equiv_admission;
          Alcotest.test_case "elastic pool" `Quick test_dispatcher_equiv_elastic;
          qtest prop_dispatcher_equiv_random_seeds;
        ] );
      ( "flat-vs-boxed",
        [
          Alcotest.test_case "exp workload" `Quick test_flat_boxed_dispatch_exp;
          Alcotest.test_case "sorted planners" `Quick
            test_flat_boxed_dispatch_sorted_planners;
          Alcotest.test_case "heterogeneous + admission" `Quick
            test_flat_boxed_dispatch_heterogeneous_admission;
          Alcotest.test_case "elastic pool" `Quick test_flat_boxed_dispatch_elastic;
          Alcotest.test_case "faults (crash, brownout, repair)" `Quick
            test_flat_boxed_dispatch_faults;
          Alcotest.test_case "end-to-end metrics equal" `Quick
            test_flat_boxed_dispatch_metrics_equal;
          Alcotest.test_case "scheduler picks equal" `Quick
            test_flat_boxed_scheduler;
          qtest prop_flat_boxed_dispatch_random_seeds;
        ] );
    ]
