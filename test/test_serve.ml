(* The serving daemon: serial-vs-served equivalence (the deterministic
   engine must be bit-identical to [Sim.run] on the same trace), the
   virtual clock, address parsing, and a socket end-to-end run with a
   live scrape. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let feq a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  || (Float.is_nan a && Float.is_nan b)

let trace ?(n = 2000) ?(load = 0.9) ?(seed = 3) ~servers () =
  Trace.generate
    (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load ~servers
       ~n_queries:n ~seed ())

(* ------------------------------------------------------------------ *)
(* Serial vs served equivalence *)

type dec = { d_qid : int; d_now : float; d_target : int option; d_delta : float option }

let run_serial ?drop_policy ~warmup ~dispatcher ~queries ~servers () =
  let decisions = ref [] in
  let metrics = Metrics.create ~warmup_id:warmup () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  Sim.run
    ~on_dispatch:(fun ~now q (d : Sim.decision) ->
      decisions :=
        { d_qid = q.Query.id; d_now = now; d_target = d.target;
          d_delta = d.est_delta }
        :: !decisions)
    ?on_server_event:hook ?drop_policy ~queries ~n_servers:servers ~pick_next
    ~dispatch:(Dispatchers.instantiate dispatcher)
    ~metrics ();
  (List.rev !decisions, metrics)

let run_served ?drop_policy ~warmup ~dispatcher ~queries ~servers () =
  let engine =
    Daemon.Engine.create ~warmup ?drop_policy ~clock:(Vclock.manual ())
      ~scheduler:Schedulers.fcfs_sla_tree_incr ~dispatcher ~n_servers:servers
      ()
  in
  let decisions = ref [] in
  let completions = ref 0 in
  let dropped = ref 0 in
  let summary = ref None in
  Daemon.Engine.on_emit engine (fun ~client:_ msg ->
      match msg with
      | Wire.Decision { qid; vnow; target; est_delta } ->
        decisions :=
          { d_qid = qid; d_now = vnow; d_target = target; d_delta = est_delta }
          :: !decisions
      | Wire.Completion _ -> incr completions
      | Wire.Dropped _ -> incr dropped
      | Wire.Summary s -> summary := Some s
      | _ -> ());
  Array.iter (fun q -> Daemon.Engine.handle engine ~client:7 (Wire.Submit q)) queries;
  Daemon.Engine.handle engine ~client:7 Wire.Eof;
  ( List.rev !decisions,
    Daemon.Engine.metrics engine,
    !completions,
    !dropped,
    Option.get !summary )

let dec_equal a b =
  a.d_qid = b.d_qid && feq a.d_now b.d_now && a.d_target = b.d_target
  && (match (a.d_delta, b.d_delta) with
     | None, None -> true
     | Some x, Some y -> feq x y
     | _ -> false)

let assert_equivalent ?drop_policy ~warmup ~mk_dispatcher ~queries ~servers ()
    =
  let serial_decs, serial_m =
    run_serial ?drop_policy ~warmup ~dispatcher:(mk_dispatcher ()) ~queries
      ~servers ()
  in
  let served_decs, served_m, completions, dropped, summary =
    run_served ?drop_policy ~warmup ~dispatcher:(mk_dispatcher ()) ~queries
      ~servers ()
  in
  check_int "decision count" (List.length serial_decs)
    (List.length served_decs);
  List.iteri
    (fun i (a, b) ->
      if not (dec_equal a b) then
        Alcotest.failf
          "decision %d differs: serial q%d@%h->%s vs served q%d@%h->%s" i
          a.d_qid a.d_now
          (match a.d_target with Some t -> string_of_int t | None -> "reject")
          b.d_qid b.d_now
          (match b.d_target with Some t -> string_of_int t | None -> "reject"))
    (List.combine serial_decs served_decs);
  check_int "completed" (Metrics.completed_count serial_m)
    (Metrics.completed_count served_m);
  check_int "rejected" (Metrics.rejected_count serial_m)
    (Metrics.rejected_count served_m);
  check_int "dropped" (Metrics.dropped_count serial_m)
    (Metrics.dropped_count served_m);
  check_int "measured" (Metrics.measured_count serial_m)
    (Metrics.measured_count served_m);
  check_int "late" (Metrics.late_count serial_m) (Metrics.late_count served_m);
  check_bool "total profit bit-equal" true
    (feq (Metrics.total_profit serial_m) (Metrics.total_profit served_m));
  check_bool "avg loss bit-equal" true
    (feq (Metrics.avg_loss serial_m) (Metrics.avg_loss served_m));
  check_bool "avg response bit-equal" true
    (feq (Metrics.avg_response serial_m) (Metrics.avg_response served_m));
  (* The wire-visible accounting agrees with the internal one. *)
  check_int "wire completions" (Metrics.completed_count serial_m) completions;
  check_int "wire drops" (Metrics.dropped_count serial_m) dropped;
  check_bool "summary profit bit-equal" true
    (feq summary.Wire.total_profit (Metrics.total_profit serial_m))

let test_equivalence_plain () =
  let queries = trace ~servers:4 () in
  assert_equivalent ~warmup:0
    ~mk_dispatcher:(fun () -> Dispatchers.fcfs_sla_tree_incr ())
    ~queries ~servers:4 ()

let test_equivalence_admission_drop () =
  (* Overload + admission control + drop policy: the rejected and
     dropped paths must serve identically too. *)
  let queries = trace ~n:1500 ~load:1.5 ~seed:11 ~servers:3 () in
  assert_equivalent ~warmup:100
    ~drop_policy:Sim.drop_past_last_deadline
    ~mk_dispatcher:(fun () -> Dispatchers.fcfs_sla_tree_incr ~admission:true ())
    ~queries ~servers:3 ()

(* ------------------------------------------------------------------ *)
(* Vclock *)

let test_vclock_manual () =
  let c = Vclock.manual () in
  check_bool "starts at 0" true (Vclock.now c = 0.0);
  Vclock.advance_to c 100.0;
  check_bool "advances" true (Vclock.now c = 100.0);
  Vclock.advance_to c 50.0;
  check_bool "monotone" true (Vclock.now c = 100.0);
  check_bool "manual is immediately due" true
    (Vclock.wall_delay_s c ~until:1e9 = 0.0);
  check_bool "not realtime" true (not (Vclock.is_realtime c))

let test_vclock_realtime () =
  let c = Vclock.realtime ~speed:1000.0 () in
  check_bool "realtime" true (Vclock.is_realtime c);
  let a = Vclock.now c in
  Unix.sleepf 0.01;
  let b = Vclock.now c in
  check_bool "advances with wall time" true (b > a);
  (* 10ms wall at 1000x is ~10_000 virtual ms. *)
  check_bool "speed factor applies" true (b -. a > 1000.0);
  check_bool "delay scales down" true
    (Vclock.wall_delay_s c ~until:(Vclock.now c +. 10_000.0) < 1.0);
  (match Vclock.advance_to c 5.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "advance_to on a realtime clock should raise");
  match Vclock.realtime ~speed:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "speed 0 should raise"

let test_addr_of_string () =
  check_bool "unix" true
    (Daemon.addr_of_string "unix:/tmp/x.sock" = Ok (Daemon.Unix_sock "/tmp/x.sock"));
  check_bool "host:port" true
    (Daemon.addr_of_string "0.0.0.0:9000" = Ok (Daemon.Tcp ("0.0.0.0", 9000)));
  check_bool "bare port" true
    (Daemon.addr_of_string "9000" = Ok (Daemon.Tcp ("127.0.0.1", 9000)));
  check_bool ":port" true
    (Daemon.addr_of_string ":9000" = Ok (Daemon.Tcp ("127.0.0.1", 9000)));
  check_bool "garbage" true
    (match Daemon.addr_of_string "not an address" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "empty unix path" true
    (match Daemon.addr_of_string "unix:" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Socket end-to-end: daemon in a second domain, replay over a unix
   socket in deterministic mode, live scrape, then equivalence of the
   final accounting against Sim.run. *)

let http_get ~addr ~path =
  let fd = Replay.connect addr in
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nConnection: close\r\n\r\n" path in
  let _ = Unix.write_substring fd req 0 (String.length req) in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ();
  Unix.close fd;
  let resp = Buffer.contents buf in
  (* Split the response at the header/body blank line. *)
  let rec find i =
    if i + 3 >= String.length resp then None
    else if String.sub resp i 4 = "\r\n\r\n" then Some (i + 4)
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub resp i (String.length resp - i)
  | None -> Alcotest.failf "no body in response: %S" resp

let test_socket_end_to_end () =
  let dir = Filename.temp_file "slatree-serve" "" in
  Sys.remove dir;
  let sock = dir ^ ".sock" in
  let msock = dir ^ "-metrics.sock" in
  let queries = trace ~n:1200 ~servers:4 ~seed:5 () in
  let obs = Obs.create ~trace_capacity:0 () in
  let engine =
    Daemon.Engine.create ~obs ~clock:(Vclock.manual ())
      ~scheduler:Schedulers.fcfs_sla_tree_incr
      ~dispatcher:(Dispatchers.fcfs_sla_tree_incr ())
      ~n_servers:4 ()
  in
  let stop = ref false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.serve ~stop ~exit_on_idle:true ~engine
          ~listen:(Daemon.Unix_sock sock)
          ~metrics_listen:(Daemon.Unix_sock msock)
          ())
  in
  (* Wait for the listeners. *)
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon did not come up";
    if not (Sys.file_exists sock && Sys.file_exists msock) then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  (* A holder connection keeps the daemon alive after the replay
     client disconnects, so the scrape below hits a live server. *)
  let holder = Replay.connect (Daemon.Unix_sock sock) in
  let r =
    Replay.run ~speed:0.0 ~client:"test" ~fd:(Replay.connect (Daemon.Unix_sock sock))
      ~queries ()
  in
  check_int "all sent" (Array.length queries) r.Replay.sent;
  check_bool "no daemon errors" true (r.Replay.errors = []);
  check_int "every query decided" (Array.length queries) r.Replay.decisions;
  check_int "every query completed" (Array.length queries) r.Replay.completions;
  let summary =
    match r.Replay.summary with
    | Some s -> s
    | None -> Alcotest.fail "no summary"
  in
  (* Scrape while the daemon is still up, and validate the snapshot. *)
  let body = http_get ~addr:(Daemon.Unix_sock msock) ~path:"/metrics" in
  (match Jsonx.parse body with
  | j ->
    check_bool "schema" true
      (Jsonx.member "schema" j |> Option.get |> Jsonx.to_str
      = Some "slatree-obs/1");
    let counter name =
      Jsonx.member "counters" j
      |> Option.get |> Jsonx.member name
      |> Option.map (fun v -> Option.get (Jsonx.to_int v))
    in
    check_bool "sim.arrivals scraped" true
      (counter "sim.arrivals" = Some (Array.length queries));
    check_bool "dispatch decisions scraped" true
      (counter "dispatch.decisions" = Some (Array.length queries))
  | exception Jsonx.Parse_error e -> Alcotest.failf "bad scrape json: %s" e);
  let health = http_get ~addr:(Daemon.Unix_sock msock) ~path:"/healthz" in
  check_bool "healthz" true (health = "ok\n");
  (* Served accounting equals Sim.run on the identical trace. *)
  let _, serial_m =
    run_serial ~warmup:0 ~dispatcher:(Dispatchers.fcfs_sla_tree_incr ())
      ~queries ~servers:4 ()
  in
  check_bool "profit equals Sim.run bit-for-bit" true
    (feq summary.Wire.total_profit (Metrics.total_profit serial_m));
  check_bool "client profit sum matches" true
    (Float.abs (r.Replay.profit -. Metrics.total_profit serial_m) < 1e-6);
  check_int "completed equals Sim.run" (Metrics.completed_count serial_m)
    summary.Wire.completed;
  (* Let the daemon exit via exit-on-idle and join it. *)
  Unix.close holder;
  ignore !stop;
  Domain.join daemon;
  check_bool "socket cleaned up" true (not (Sys.file_exists sock))

let () =
  Alcotest.run "serve"
    [
      ( "equivalence",
        [
          Alcotest.test_case "serial = served (plain)" `Quick
            test_equivalence_plain;
          Alcotest.test_case "serial = served (admission + drop)" `Quick
            test_equivalence_admission_drop;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "manual" `Quick test_vclock_manual;
          Alcotest.test_case "realtime" `Quick test_vclock_realtime;
        ] );
      ( "addr",
        [ Alcotest.test_case "parsing" `Quick test_addr_of_string ] );
      ( "socket",
        [
          Alcotest.test_case "end-to-end with scrape" `Quick
            test_socket_end_to_end;
        ] );
    ]
