(* Tests for the SLA model: stepwise profit, validation, the g/0
   decomposition (paper Sec 4.2), the Fig 16 profiles and the CBS
   expected-loss integral. *)

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let general_sla =
  (* Fig 3a: g1 until t1, g2 until t2, then penalty p. *)
  Sla.make
    ~levels:[ { bound = 10.0; gain = 5.0 }; { bound = 20.0; gain = 2.0 } ]
    ~penalty:3.0

(* ------------------------------------------------------------------ *)
(* Construction and validation *)

let test_make_valid () =
  check_int "levels" 2 (Sla.num_levels general_sla);
  check_float "penalty" 3.0 (Sla.penalty general_sla);
  check_float "max gain" 5.0 (Sla.max_gain general_sla);
  check_float "first deadline" 10.0 (Sla.first_deadline general_sla);
  check_float "last deadline" 20.0 (Sla.last_deadline general_sla)

let expect_invalid f =
  match f () with
  | exception Sla.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Sla.Invalid"

let test_make_empty_levels () = expect_invalid (fun () -> Sla.make ~levels:[] ~penalty:0.0)

let test_make_negative_penalty () =
  expect_invalid (fun () ->
      Sla.make ~levels:[ { bound = 1.0; gain = 1.0 } ] ~penalty:(-1.0))

let test_make_nonincreasing_bounds () =
  expect_invalid (fun () ->
      Sla.make
        ~levels:[ { bound = 2.0; gain = 2.0 }; { bound = 2.0; gain = 1.0 } ]
        ~penalty:0.0)

let test_make_nondecreasing_gains () =
  expect_invalid (fun () ->
      Sla.make
        ~levels:[ { bound = 1.0; gain = 1.0 }; { bound = 2.0; gain = 1.0 } ]
        ~penalty:0.0)

let test_make_gain_below_neg_penalty () =
  expect_invalid (fun () ->
      Sla.make ~levels:[ { bound = 1.0; gain = -2.0 } ] ~penalty:1.0)

let test_make_nonpositive_bound () =
  expect_invalid (fun () -> Sla.make ~levels:[ { bound = 0.0; gain = 1.0 } ] ~penalty:0.0)

let test_make_negative_gain_ok_with_penalty () =
  (* A level gain may be negative as long as it stays >= -penalty. *)
  let sla = Sla.make ~levels:[ { bound = 1.0; gain = -0.5 } ] ~penalty:1.0 in
  check_float "profit on time" (-0.5) (Sla.profit sla ~response:0.5)

(* ------------------------------------------------------------------ *)
(* Profit evaluation *)

let test_profit_steps () =
  check_float "fastest" 5.0 (Sla.profit general_sla ~response:0.0);
  check_float "inside level 1" 5.0 (Sla.profit general_sla ~response:9.99);
  check_float "boundary inclusive t1" 5.0 (Sla.profit general_sla ~response:10.0);
  check_float "inside level 2" 2.0 (Sla.profit general_sla ~response:10.01);
  check_float "boundary inclusive t2" 2.0 (Sla.profit general_sla ~response:20.0);
  check_float "after everything" (-3.0) (Sla.profit general_sla ~response:20.01)

let test_one_zero () =
  let sla = Sla.one_zero ~bound:4.0 in
  check_float "on time" 1.0 (Sla.profit sla ~response:4.0);
  check_float "late" 0.0 (Sla.profit sla ~response:4.5)

let test_single_step () =
  let sla = Sla.single_step ~bound:2.0 ~gain:7.5 in
  check_float "gain" 7.5 (Sla.profit sla ~response:1.0);
  check_float "zero after" 0.0 (Sla.profit sla ~response:3.0)

let test_loss_vs_ideal () =
  check_float "on time no loss" 0.0 (Sla.loss_vs_ideal general_sla ~response:5.0);
  check_float "level 2 loss" 3.0 (Sla.loss_vs_ideal general_sla ~response:15.0);
  check_float "penalty loss" 8.0 (Sla.loss_vs_ideal general_sla ~response:25.0)

(* ------------------------------------------------------------------ *)
(* Decomposition *)

let test_decompose_general () =
  let comps, offset = Sla.decompose general_sla in
  check_float "offset is -penalty" (-3.0) offset;
  check_int "two components" 2 (List.length comps);
  (* Inner component: g1 - g2 = 3 at bound 10; outer: g2 + p = 5 at 20. *)
  match comps with
  | [ c1; c2 ] ->
    check_float "c1 bound" 10.0 c1.Sla.comp_bound;
    check_float "c1 gain" 3.0 c1.comp_gain;
    check_float "c2 bound" 20.0 c2.comp_bound;
    check_float "c2 gain" 5.0 c2.comp_gain
  | _ -> Alcotest.fail "unexpected component count"

let test_decompose_roundtrip_samples () =
  let d = Sla.decompose general_sla in
  List.iter
    (fun r ->
      check_float
        (Printf.sprintf "response %g" r)
        (Sla.profit general_sla ~response:r)
        (Sla.profit_of_decomposition d ~response:r))
    [ 0.0; 5.0; 10.0; 10.5; 15.0; 20.0; 25.0; 1000.0 ]

let test_decompose_drops_zero_steps () =
  (* gain exactly -penalty at the last level: outer component is 0. *)
  let sla =
    Sla.make ~levels:[ { bound = 1.0; gain = 1.0 }; { bound = 2.0; gain = -1.0 } ]
      ~penalty:1.0
  in
  let comps, _ = Sla.decompose sla in
  check_int "only one live component" 1 (List.length comps);
  List.iter (fun c -> check_bool "positive gain" true (c.Sla.comp_gain > 0.0)) comps

let arbitrary_sla =
  (* Random stepwise SLA: up to 4 levels with increasing bounds and
     decreasing gains, random non-negative penalty. *)
  let open QCheck in
  let gen =
    Gen.(
      let* n = 1 -- 4 in
      let* raw_bounds = list_repeat n (float_range 0.1 100.0) in
      let* raw_gains = list_repeat n (float_range 0.1 10.0) in
      let* penalty = float_range 0.0 5.0 in
      let bounds = List.sort_uniq Float.compare raw_bounds in
      let gains =
        List.sort_uniq Float.compare raw_gains |> List.rev
      in
      let k = min (List.length bounds) (List.length gains) in
      let levels =
        List.init k (fun i ->
            { Sla.bound = List.nth bounds i; gain = List.nth gains i })
      in
      Gen.return (Sla.make ~levels ~penalty))
  in
  make ~print:(Fmt.to_to_string Sla.pp) gen

let prop_decompose_roundtrip =
  QCheck.Test.make ~name:"decomposition reproduces profit everywhere" ~count:300
    QCheck.(pair arbitrary_sla (float_range 0.0 200.0))
    (fun (sla, r) ->
      let d = Sla.decompose sla in
      let a = Sla.profit sla ~response:r in
      let b = Sla.profit_of_decomposition d ~response:r in
      Float.abs (a -. b) < 1e-9)

let prop_profit_nonincreasing =
  QCheck.Test.make ~name:"profit is non-increasing in response time" ~count:300
    QCheck.(triple arbitrary_sla (float_range 0.0 200.0) (float_range 0.0 50.0))
    (fun (sla, r, dr) ->
      Sla.profit sla ~response:r >= Sla.profit sla ~response:(r +. dr) -. 1e-12)

let prop_components_positive =
  QCheck.Test.make ~name:"decomposition components have positive gain" ~count:300
    arbitrary_sla
    (fun sla ->
      let comps, _ = Sla.decompose sla in
      List.for_all (fun c -> c.Sla.comp_gain > 0.0) comps)

(* ------------------------------------------------------------------ *)
(* Expected loss under exponential extra wait (CBS integral) *)

let numeric_expected_profit sla ~elapsed ~rate =
  (* Riemann sum over the exponential density. *)
  let dx = 0.001 and xmax = 40.0 /. rate in
  let acc = ref 0.0 in
  let x = ref (dx /. 2.0) in
  while !x < xmax do
    let density = rate *. exp (-.rate *. !x) in
    acc := !acc +. (density *. Sla.profit sla ~response:(elapsed +. !x) *. dx);
    x := !x +. dx
  done;
  !acc

let test_expected_profit_matches_numeric () =
  List.iter
    (fun (elapsed, rate) ->
      let closed = Sla.expected_profit_exp general_sla ~elapsed ~rate in
      let numeric = numeric_expected_profit general_sla ~elapsed ~rate in
      check_bool
        (Printf.sprintf "elapsed=%g rate=%g" elapsed rate)
        true
        (Float.abs (closed -. numeric) < 0.02))
    [ (0.0, 0.1); (5.0, 0.1); (15.0, 0.2); (25.0, 0.05); (0.0, 1.0) ]

let test_expected_profit_limits () =
  (* Already far past the last deadline: expectation is the penalty. *)
  let v = Sla.expected_profit_exp general_sla ~elapsed:100.0 ~rate:0.1 in
  check_float "stuck at penalty" (-3.0) v

let test_expected_loss_positive_when_late_risk () =
  let loss = Sla.expected_loss_exp general_sla ~elapsed:9.0 ~rate:0.1 in
  check_bool "some risk of losing level 1" true (loss > 0.0)

let prop_expected_profit_bounded =
  QCheck.Test.make ~name:"expected profit within [min, max] profit" ~count:300
    QCheck.(triple arbitrary_sla (float_range 0.0 100.0) (float_range 0.01 2.0))
    (fun (sla, elapsed, rate) ->
      let v = Sla.expected_profit_exp sla ~elapsed ~rate in
      v <= Sla.max_gain sla +. 1e-9 && v >= -.Sla.penalty sla -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Profiles (Fig 16) *)

let test_sla_a_shape () =
  let sla = Sla_profiles.sla_a ~mu:20.0 in
  check_float "gain 1 within 2mu" 1.0 (Sla.profit sla ~response:40.0);
  check_float "0 after" 0.0 (Sla.profit sla ~response:40.01);
  check_float "no penalty" 0.0 (Sla.penalty sla)

let test_sla_b_customer_shape () =
  let sla = Sla_profiles.sla_b_customer ~mu:20.0 in
  check_float "2 within mu" 2.0 (Sla.profit sla ~response:20.0);
  check_float "1 within 5mu" 1.0 (Sla.profit sla ~response:100.0);
  check_float "0 after" 0.0 (Sla.profit sla ~response:100.01)

let test_sla_b_employee_shape () =
  let sla = Sla_profiles.sla_b_employee ~mu:20.0 in
  check_float "1 within 10mu" 1.0 (Sla.profit sla ~response:200.0);
  check_float "-10 after" (-10.0) (Sla.profit sla ~response:200.01)

(* ------------------------------------------------------------------ *)
(* Query *)

let test_query_basics () =
  let sla = Sla.one_zero ~bound:10.0 in
  let q = Query.make ~id:3 ~arrival:5.0 ~size:2.0 ~sla () in
  check_float "est defaults to size" 2.0 q.Query.est_size;
  check_float "deadline" 15.0 (Query.first_deadline q);
  check_float "profit on time" 1.0 (Query.profit_at q ~completion:15.0);
  check_float "profit late" 0.0 (Query.profit_at q ~completion:15.5);
  check_float "loss late" 1.0 (Query.loss_at q ~completion:15.5);
  check_float "ideal" 1.0 (Query.ideal_profit q)

let test_query_est_size () =
  let sla = Sla.one_zero ~bound:10.0 in
  let q = Query.make ~est_size:3.0 ~id:0 ~arrival:0.0 ~size:6.0 ~sla () in
  check_float "est kept" 3.0 q.Query.est_size;
  check_float "actual kept" 6.0 q.Query.size

let test_sla_equal_and_pp () =
  let a = Sla.one_zero ~bound:5.0 in
  let b = Sla.one_zero ~bound:5.0 in
  let c = Sla.one_zero ~bound:6.0 in
  let d = Sla.single_step ~bound:5.0 ~gain:2.0 in
  check_bool "equal" true (Sla.equal a b);
  check_bool "different bound" false (Sla.equal a c);
  check_bool "different gain" false (Sla.equal a d);
  check_bool "different penalty" false
    (Sla.equal a (Sla.make ~levels:[ { bound = 5.0; gain = 1.0 } ] ~penalty:1.0));
  check_bool "different arity" false (Sla.equal a general_sla);
  let s = Fmt.str "%a" Sla.pp general_sla in
  check_bool "pp mentions penalty" true (String.length s > 10);
  let qs = Fmt.str "%a" Query.pp (Query.make ~id:1 ~arrival:0.0 ~size:2.0 ~sla:a ()) in
  check_bool "query pp" true (String.length qs > 10)

let test_query_invalid () =
  let sla = Sla.one_zero ~bound:1.0 in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Query.make: size must be non-negative") (fun () ->
      ignore (Query.make ~id:0 ~arrival:0.0 ~size:(-1.0) ~sla ()))

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sla"
    [
      ( "make",
        [
          Alcotest.test_case "valid" `Quick test_make_valid;
          Alcotest.test_case "empty levels" `Quick test_make_empty_levels;
          Alcotest.test_case "negative penalty" `Quick test_make_negative_penalty;
          Alcotest.test_case "non-increasing bounds" `Quick test_make_nonincreasing_bounds;
          Alcotest.test_case "non-decreasing gains" `Quick test_make_nondecreasing_gains;
          Alcotest.test_case "gain below -penalty" `Quick test_make_gain_below_neg_penalty;
          Alcotest.test_case "non-positive bound" `Quick test_make_nonpositive_bound;
          Alcotest.test_case "negative gain with penalty" `Quick
            test_make_negative_gain_ok_with_penalty;
        ] );
      ( "profit",
        [
          Alcotest.test_case "steps" `Quick test_profit_steps;
          Alcotest.test_case "1/0" `Quick test_one_zero;
          Alcotest.test_case "g/0" `Quick test_single_step;
          Alcotest.test_case "loss vs ideal" `Quick test_loss_vs_ideal;
          qtest prop_profit_nonincreasing;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "general example" `Quick test_decompose_general;
          Alcotest.test_case "roundtrip samples" `Quick test_decompose_roundtrip_samples;
          Alcotest.test_case "drops zero steps" `Quick test_decompose_drops_zero_steps;
          qtest prop_decompose_roundtrip;
          qtest prop_components_positive;
        ] );
      ( "expected",
        [
          Alcotest.test_case "matches numeric integral" `Slow
            test_expected_profit_matches_numeric;
          Alcotest.test_case "limit past last deadline" `Quick test_expected_profit_limits;
          Alcotest.test_case "positive loss under risk" `Quick
            test_expected_loss_positive_when_late_risk;
          qtest prop_expected_profit_bounded;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "SLA-A" `Quick test_sla_a_shape;
          Alcotest.test_case "SLA-B customer" `Quick test_sla_b_customer_shape;
          Alcotest.test_case "SLA-B employee" `Quick test_sla_b_employee_shape;
        ] );
      ( "query",
        [
          Alcotest.test_case "basics" `Quick test_query_basics;
          Alcotest.test_case "est size" `Quick test_query_est_size;
          Alcotest.test_case "equal and pp" `Quick test_sla_equal_and_pp;
          Alcotest.test_case "invalid" `Quick test_query_invalid;
        ] );
    ]
