(* Tests for the simulator: metrics accounting, event ordering,
   completion-time correctness on hand-computed schedules, work
   conservation, utilization, and dispatcher plumbing. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sla10 = Sla.one_zero ~bound:10.0

let mk ?(sla = sla10) ?est id arrival size =
  Query.make ?est_size:est ~id ~arrival ~size ~sla ()

(* pick_next helpers *)
let fcfs_pick ~now:_ _buffer = 0

let sjf_pick ~now:_ buffer =
  let best = ref 0 in
  Array.iteri
    (fun i q ->
      if q.Query.est_size < buffer.(!best).Query.est_size then best := i)
    buffer;
  !best

let single_dispatch _sim _q = { Sim.target = Some 0; est_delta = None }

(* Run a trace to completion and return its metrics. Per-query
   completion times are pinned down in each test through aggregate
   statistics computed from hand-derived schedules. *)
let run_collect ?(n_servers = 1) ?(pick = fcfs_pick) ?(dispatch = single_dispatch)
    queries =
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~queries ~n_servers ~pick_next:pick ~dispatch ~metrics ();
  metrics

let test_metrics_warmup () =
  let m = Metrics.create ~warmup_id:2 () in
  Metrics.record m (mk 0 0.0 1.0) ~completion:1.0;
  Metrics.record m (mk 1 0.0 1.0) ~completion:2.0;
  Metrics.record m (mk 2 0.0 1.0) ~completion:3.0;
  Metrics.record m (mk 3 0.0 1.0) ~completion:20.0;
  check_int "completed counts all" 4 (Metrics.completed_count m);
  check_int "measured skips warmup" 2 (Metrics.measured_count m);
  (* measured: q2 on time (loss 0), q3 late (loss 1). *)
  check_float "avg loss" 0.5 (Metrics.avg_loss m);
  check_int "late" 1 (Metrics.late_count m);
  check_float "late fraction" 0.5 (Metrics.late_fraction m)

let test_metrics_rejection () =
  let m = Metrics.create ~warmup_id:0 () in
  Metrics.record_offered m;
  Metrics.record_rejected m (mk 0 0.0 1.0);
  check_int "offered" 1 (Metrics.offered_count m);
  check_int "rejected" 1 (Metrics.rejected_count m);
  check_int "admitted" 0 (Metrics.admitted_count m);
  (* Rejected work never enters the system: it is excluded from the
     measured averages and its turned-away ideal profit accumulates on
     the side. *)
  check_int "not measured" 0 (Metrics.measured_count m);
  check_float "turned-away value" 1.0 (Metrics.rejected_loss m);
  check_bool "avg loss untouched" true (Float.is_nan (Metrics.avg_loss m))

let test_metrics_response () =
  let m = Metrics.create ~warmup_id:0 () in
  Metrics.record m (mk 0 5.0 1.0) ~completion:9.0;
  check_float "response" 4.0 (Metrics.avg_response m)

let test_metrics_percentiles () =
  let m = Metrics.create ~warmup_id:0 () in
  for i = 1 to 100 do
    Metrics.record m (mk i 0.0 1.0) ~completion:(Float.of_int i)
  done;
  check_float "p50" 50.5 (Metrics.response_percentile m 50.0);
  check_float "p100" 100.0 (Metrics.response_percentile m 100.0);
  check_bool "empty is nan" true
    (Float.is_nan (Metrics.response_percentile (Metrics.create ~warmup_id:0 ()) 50.0))

let test_breakdown_classes () =
  let cheap = Sla.one_zero ~bound:10.0 in
  let rich = Sla.single_step ~bound:10.0 ~gain:5.0 in
  let classify q = if Query.ideal_profit q > 1.0 then "rich" else "cheap" in
  let b = Breakdown.create ~classify ~warmup_id:1 in
  (* id 0 is warm-up and must be ignored. *)
  Breakdown.record b (mk ~sla:rich 0 0.0 1.0) ~completion:1.0;
  Breakdown.record b (mk ~sla:cheap 1 0.0 1.0) ~completion:5.0;
  Breakdown.record b (mk ~sla:cheap 2 0.0 1.0) ~completion:15.0;
  Breakdown.record b (mk ~sla:rich 3 0.0 1.0) ~completion:2.0;
  check_int "two classes" 2 (List.length (Breakdown.classes b));
  (match Breakdown.find b "cheap" with
  | Some c ->
    check_int "two cheap measured" 2 (Stats.count c.Breakdown.loss);
    check_float "one missed" 0.5 (Stats.mean c.Breakdown.loss);
    check_int "one late" 1 c.Breakdown.late
  | None -> Alcotest.fail "cheap class missing");
  match Breakdown.find b "rich" with
  | Some c ->
    check_int "one rich measured (warmup skipped)" 1 (Stats.count c.Breakdown.loss);
    check_float "rich on time" 5.0 (Stats.mean c.Breakdown.profit)
  | None -> Alcotest.fail "rich class missing"

let test_on_complete_hook () =
  let seen = ref [] in
  let metrics = Metrics.create ~warmup_id:0 () in
  let queries = [| mk 0 0.0 2.0; mk 1 0.5 1.0 |] in
  Sim.run
    ~on_complete:(fun q ~completion -> seen := (q.Query.id, completion) :: !seen)
    ~queries ~n_servers:1 ~pick_next:fcfs_pick ~dispatch:single_dispatch
    ~metrics ();
  Alcotest.(check (list (pair int (float 1e-9))))
    "completions observed in order" [ (0, 2.0); (1, 3.0) ] (List.rev !seen)

let test_fcfs_completions () =
  (* Arrivals 0,1,2 with sizes 5,3,1: FCFS completes at 5,8,9.
     Deadlines (bound 10): 10,11,12 -> all on time, zero loss;
     responses 5,7,7 -> avg 19/3. *)
  let queries = [| mk 0 0.0 5.0; mk 1 1.0 3.0; mk 2 2.0 1.0 |] in
  let m = run_collect queries in
  check_int "all completed" 3 (Metrics.completed_count m);
  check_float "no loss" 0.0 (Metrics.avg_loss m);
  check_float "avg response" (19.0 /. 3.0) (Metrics.avg_response m)

let test_sjf_reorders () =
  (* Same queries under SJF: at t=5 buffer is {q1(3), q2(1)} -> run q2
     first. Completions 5,9,6; responses 5,8,4 -> avg 17/3. *)
  let queries = [| mk 0 0.0 5.0; mk 1 1.0 3.0; mk 2 2.0 1.0 |] in
  let m = run_collect ~pick:sjf_pick queries in
  check_float "avg response" (17.0 /. 3.0) (Metrics.avg_response m)

let test_deadline_miss_counted () =
  (* One query with a tight deadline misses it. *)
  let tight = Sla.one_zero ~bound:2.0 in
  let queries = [| mk 0 0.0 5.0; Query.make ~id:1 ~arrival:0.0 ~size:1.0 ~sla:tight () |] in
  let m = run_collect queries in
  (* q1 completes at 6, deadline 2 -> loss 1. *)
  check_float "avg loss 0.5" 0.5 (Metrics.avg_loss m);
  check_int "one late" 1 (Metrics.late_count m)

let test_actual_vs_estimated_times () =
  (* The server is busy for the actual size, not the estimate: q0 has
     est 1 but actually runs 10; q1 (size 1, deadline 10, arrival 0)
     completes at 11 and misses. *)
  let queries = [| mk ~est:1.0 0 0.0 10.0; mk 1 0.0 1.0 |] in
  let m = run_collect queries in
  check_float "q1 misses because of q0's real length" 0.5 (Metrics.avg_loss m)

let test_idle_period_respected () =
  (* Server idles between query 0 (0..1) and query 1 (arrives at 50). *)
  let queries = [| mk 0 0.0 1.0; mk 1 50.0 2.0 |] in
  let m = run_collect queries in
  (* Responses: 1 and 2. *)
  check_float "responses" 1.5 (Metrics.avg_response m)

let test_rejection_path () =
  let dispatch _sim q =
    if q.Query.id = 1 then { Sim.target = None; est_delta = None }
    else { Sim.target = Some 0; est_delta = None }
  in
  let queries = [| mk 0 0.0 1.0; mk 1 0.5 1.0; mk 2 1.0 1.0 |] in
  let m = run_collect ~dispatch queries in
  check_int "two completed" 2 (Metrics.completed_count m);
  check_int "one rejected" 1 (Metrics.rejected_count m)

let test_multi_server_parallelism () =
  (* Two servers, two simultaneous long queries: both finish at 10. *)
  let rr = ref (-1) in
  let dispatch _sim _q =
    rr := (!rr + 1) mod 2;
    { Sim.target = Some !rr; est_delta = None }
  in
  let queries = [| mk 0 0.0 10.0; mk 1 0.0 10.0 |] in
  let m = run_collect ~n_servers:2 ~dispatch queries in
  check_float "both at response 10" 10.0 (Metrics.avg_response m);
  check_float "both on time" 0.0 (Metrics.avg_loss m)

let test_invalid_dispatcher_target () =
  let dispatch _sim _q = { Sim.target = Some 7; est_delta = None } in
  let queries = [| mk 0 0.0 1.0 |] in
  check_bool "raises" true
    (match run_collect ~dispatch queries with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_invalid_scheduler_index () =
  let bad_pick ~now:_ _buffer = 99 in
  let queries = [| mk 0 0.0 5.0; mk 1 1.0 1.0 |] in
  check_bool "raises" true
    (match run_collect ~pick:bad_pick queries with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_on_dispatch_observer () =
  let seen = ref [] in
  let metrics = Metrics.create ~warmup_id:0 () in
  let queries = [| mk 0 0.0 1.0; mk 1 0.5 1.0 |] in
  Sim.run
    ~on_dispatch:(fun ~now q _d -> seen := (now, q.Query.id) :: !seen)
    ~queries ~n_servers:1 ~pick_next:fcfs_pick ~dispatch:single_dispatch
    ~metrics ();
  check_int "observer fired per arrival" 2 (List.length !seen);
  check_bool "at arrival times" true
    (List.mem (0.0, 0) !seen && List.mem (0.5, 1) !seen)

let test_est_work_left_exposed () =
  (* Probe server state from within the dispatcher. *)
  let observed = ref [] in
  let dispatch sim _q =
    let s = Sim.server sim 0 in
    observed := Sim.est_work_left sim s :: !observed;
    { Sim.target = Some 0; est_delta = None }
  in
  let queries = [| mk 0 0.0 4.0; mk 1 1.0 2.0; mk 2 2.0 2.0 |] in
  ignore (run_collect ~dispatch queries);
  (* At t=0: idle -> 0. At t=1: q0 has 3 left. At t=2: q0 has 2 left +
     q1 buffered (2) = 4. *)
  Alcotest.(check (list (float 1e-9))) "work left trace" [ 0.0; 3.0; 4.0 ]
    (List.rev !observed)

let test_drop_policy () =
  (* q1 (tight deadline, $10 penalty SLA) is hopeless by the time the
     server frees up: with the drop policy it is abandoned, letting q2
     finish earlier. *)
  let penalized = Sla.make ~levels:[ { bound = 2.0; gain = 1.0 } ] ~penalty:10.0 in
  let queries =
    [|
      mk 0 0.0 10.0;
      Query.make ~id:1 ~arrival:0.0 ~size:5.0 ~sla:penalized ();
      mk 2 0.5 3.0;
    |]
  in
  let run drop =
    let m = Metrics.create ~warmup_id:0 () in
    Sim.run
      ?drop_policy:(if drop then Some Sim.drop_past_last_deadline else None)
      ~queries ~n_servers:1 ~pick_next:fcfs_pick ~dispatch:single_dispatch
      ~metrics:m ();
    m
  in
  let kept = run false and dropped = run true in
  check_int "nothing dropped by default" 0 (Metrics.dropped_count kept);
  check_int "one dropped" 1 (Metrics.dropped_count dropped);
  check_int "two executed" 2 (Metrics.completed_count dropped);
  (* Keeping: q1 completes at 15 (profit -10), q2 at 18 (response 17.5,
     miss). Dropping: q1 pays -10 anyway but q2 completes at 13
     (response 12.5 > 10, still a miss here) — profits tie on q2 but
     the drop run must never be worse. *)
  check_bool "drop not worse" true
    (Metrics.total_profit dropped >= Metrics.total_profit kept -. 1e-9)

let test_drop_policy_frees_capacity () =
  (* Same, but q2's deadline is reachable only if q1 is dropped. *)
  let penalized = Sla.make ~levels:[ { bound = 2.0; gain = 1.0 } ] ~penalty:10.0 in
  let roomy = Sla.one_zero ~bound:14.0 in
  let queries =
    [|
      mk 0 0.0 10.0;
      Query.make ~id:1 ~arrival:0.0 ~size:5.0 ~sla:penalized ();
      Query.make ~id:2 ~arrival:0.5 ~size:3.0 ~sla:roomy ();
    |]
  in
  let run drop =
    let m = Metrics.create ~warmup_id:0 () in
    Sim.run
      ?drop_policy:(if drop then Some Sim.drop_past_last_deadline else None)
      ~queries ~n_servers:1 ~pick_next:fcfs_pick ~dispatch:single_dispatch
      ~metrics:m ();
    m
  in
  (* Kept: q2 completes at 18, response 17.5 > 14 -> 0.
     Dropped: q2 completes at 13, response 12.5 <= 14 -> 1. *)
  check_float "kept profit" (1.0 -. 10.0 +. 0.0) (Metrics.total_profit (run false));
  check_float "dropped profit" (1.0 -. 10.0 +. 1.0) (Metrics.total_profit (run true))

let test_drop_backlog_accounting () =
  (* Regression: a firing drop policy must leave [est_backlog] equal
     to the sum of the est_sizes still buffered — checked from inside
     the dispatcher on every later arrival. *)
  let hopeless = Sla.make ~levels:[ { bound = 1.0; gain = 1.0 } ] ~penalty:2.0 in
  let queries =
    [|
      mk 0 0.0 10.0;
      Query.make ~id:1 ~arrival:0.1 ~size:3.0 ~sla:hopeless ();
      Query.make ~id:2 ~arrival:0.2 ~size:4.0 ~sla:hopeless ();
      mk 3 0.3 2.0;
      mk 4 11.0 1.0;
      mk 5 12.5 1.0;
    |]
  in
  let checks = ref 0 in
  let dispatch sim _q =
    let s = Sim.server sim 0 in
    let sum =
      Array.fold_left
        (fun acc q -> acc +. q.Query.est_size)
        0.0 (Sim.buffer_array s)
    in
    check_float "est_backlog = sum of buffered est_size" sum s.Sim.est_backlog;
    incr checks;
    { Sim.target = Some 0; est_delta = None }
  in
  let m = Metrics.create ~warmup_id:0 () in
  Sim.run ~drop_policy:Sim.drop_past_last_deadline ~queries ~n_servers:1
    ~pick_next:fcfs_pick ~dispatch ~metrics:m ();
  (* q1 and q2 are hopeless once q0 monopolizes the server to t=10. *)
  check_int "both hopeless queries dropped" 2 (Metrics.dropped_count m);
  check_int "the rest executed" 4 (Metrics.completed_count m);
  check_int "invariant checked on every arrival" 6 !checks

let test_drop_penalty_in_metrics () =
  (* Regression: dropped queries still pay their SLA penalty. The
     run's total profit must equal the sum of [profit_at] over actual
     completions plus [-penalty] per dropped query. *)
  let hopeless = Sla.make ~levels:[ { bound = 1.0; gain = 1.0 } ] ~penalty:2.5 in
  let queries =
    [|
      mk 0 0.0 10.0;
      Query.make ~id:1 ~arrival:0.1 ~size:3.0 ~sla:hopeless ();
      Query.make ~id:2 ~arrival:0.2 ~size:4.0 ~sla:hopeless ();
      mk 3 0.3 2.0;
    |]
  in
  let expected = ref 0.0 in
  let m = Metrics.create ~warmup_id:0 () in
  Sim.run ~drop_policy:Sim.drop_past_last_deadline
    ~on_complete:(fun q ~completion ->
      expected := !expected +. Query.profit_at q ~completion)
    ~on_server_event:(fun ~sid:_ ~now:_ -> function
      | Sim.Dropped q -> expected := !expected -. Sla.penalty q.Query.sla
      | _ -> ())
    ~queries ~n_servers:1 ~pick_next:fcfs_pick ~dispatch:single_dispatch
    ~metrics:m ();
  check_int "two dropped" 2 (Metrics.dropped_count m);
  check_float "penalties flow into total profit" !expected
    (Metrics.total_profit m);
  (* And concretely: q0 on time (+1), q3 late (0), two drops (-5). *)
  check_float "hand-computed total" (1.0 -. 5.0) (Metrics.total_profit m)

let test_heterogeneous_speeds () =
  (* Same query on a 2x server finishes in half the time. *)
  let rr = ref (-1) in
  let dispatch _sim _q =
    rr := (!rr + 1) mod 2;
    { Sim.target = Some !rr; est_delta = None }
  in
  let queries = [| mk 0 0.0 10.0; mk 1 0.0 10.0 |] in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~speeds:[| 2.0; 0.5 |] ~queries ~n_servers:2 ~pick_next:fcfs_pick
    ~dispatch ~metrics ();
  (* Responses: 10/2 = 5 on the fast server, 10/0.5 = 20 on the slow
     one -> mean 12.5. *)
  check_float "speed-scaled responses" 12.5 (Metrics.avg_response metrics)

let test_heterogeneous_work_left () =
  let observed = ref [] in
  let dispatch sim _q =
    observed := Sim.est_work_left sim (Sim.server sim 0) :: !observed;
    { Sim.target = Some 0; est_delta = None }
  in
  let queries = [| mk 0 0.0 8.0; mk 1 1.0 4.0; mk 2 2.0 1.0 |] in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~speeds:[| 2.0 |] ~queries ~n_servers:1 ~pick_next:fcfs_pick ~dispatch
    ~metrics ();
  (* Speed 2: q0 takes 4 wall-clock units. At t=1 it has 3 left; at
     t=2 it has 2 left plus q1's 4/2 = 2 buffered. *)
  Alcotest.(check (list (float 1e-9)))
    "speed-aware backlog" [ 0.0; 3.0; 4.0 ] (List.rev !observed)

let test_invalid_speeds () =
  let queries = [| mk 0 0.0 1.0 |] in
  let metrics = Metrics.create ~warmup_id:0 () in
  let run speeds =
    Sim.run ~speeds ~queries ~n_servers:1 ~pick_next:fcfs_pick
      ~dispatch:single_dispatch ~metrics ()
  in
  check_bool "wrong length" true
    (match run [| 1.0; 2.0 |] with exception Invalid_argument _ -> true | _ -> false);
  check_bool "non-positive" true
    (match run [| 0.0 |] with exception Invalid_argument _ -> true | _ -> false)

(* Negative paths: the pool-management and dispatch guards must raise
   Invalid_argument instead of corrupting the run. Mid-run Sim.t state
   is reached through the dispatcher closure (it receives the sim). *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* Run one query; at its arrival the dispatcher evaluates [probe sim]
   and reports whether it raised. *)
let probe_raises probe =
  let result = ref None in
  let dispatch sim _q =
    result := Some (raises_invalid (fun () -> probe sim));
    { Sim.target = Some 0; est_delta = None }
  in
  ignore (run_collect ~dispatch [| mk 0 0.0 1.0 |]);
  match !result with Some b -> b | None -> Alcotest.fail "probe never ran"

let test_add_server_invalid_speed () =
  check_bool "zero speed raises" true
    (probe_raises (fun sim -> ignore (Sim.add_server ~speed:0.0 sim)));
  check_bool "negative speed raises" true
    (probe_raises (fun sim -> ignore (Sim.add_server ~speed:(-2.0) sim)))

let test_add_server_invalid_boot_delay () =
  check_bool "negative boot delay raises" true
    (probe_raises (fun sim -> ignore (Sim.add_server ~boot_delay:(-0.1) sim)))

let test_retire_unknown_server () =
  check_bool "out-of-range id raises" true
    (probe_raises (fun sim -> Sim.retire_server sim 42));
  check_bool "negative id raises" true
    (probe_raises (fun sim -> Sim.retire_server sim (-1)))

let test_retire_would_empty_pool () =
  check_bool "draining the last accepting server raises" true
    (probe_raises (fun sim -> Sim.retire_server sim 0))

(* Satellite guarantee (sim.mli, retire_server): a redistributed query
   the dispatcher declines is recorded as a REJECTION — never silently
   lost. Every arrived query must show up in exactly one metric. *)
let test_retire_redistribute_reject_is_rejection () =
  let metrics = Metrics.create ~warmup_id:0 () in
  let retired = ref false in
  let dispatch sim (q : Query.t) =
    if q.Query.arrival >= 3.0 && not !retired then begin
      retired := true;
      (* Server 0 is mid-query with two buffered victims. *)
      Sim.retire_server sim 0
    end;
    if !retired && q.Query.id <= 2 then
      (* Decline the redistributed buffer of server 0. *)
      { Sim.target = None; est_delta = None }
    else { Sim.target = Some (if !retired then 1 else 0); est_delta = None }
  in
  let queries =
    [| mk 0 0.0 10.0; mk 1 1.0 1.0; mk 2 2.0 1.0; mk 3 3.0 1.0 |]
  in
  Sim.run ~queries ~n_servers:2 ~pick_next:fcfs_pick ~dispatch ~metrics ();
  check_int "q0 and q3 complete" 2 (Metrics.completed_count metrics);
  check_int "the declined redistribution is two rejections" 2
    (Metrics.rejected_count metrics);
  check_int "nothing lost" 0 (Metrics.lost_count metrics)

let test_dispatch_to_non_accepting () =
  (* Target a freshly added server that is still booting. *)
  let first = ref true in
  let dispatch sim _q =
    if !first then begin
      first := false;
      ignore (Sim.add_server ~boot_delay:1_000.0 sim)
    end;
    { Sim.target = Some 1; est_delta = None }
  in
  check_bool "dispatching to a booting server raises" true
    (raises_invalid (fun () ->
         ignore (run_collect ~dispatch [| mk 0 0.0 1.0 |])))

let test_negative_scheduler_index () =
  let bad_pick ~now:_ _buffer = -1 in
  let queries = [| mk 0 0.0 5.0; mk 1 1.0 1.0 |] in
  check_bool "negative index raises" true
    (raises_invalid (fun () -> ignore (run_collect ~pick:bad_pick queries)))

let test_simulation_drains_large_trace () =
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
      ~servers:1 ~n_queries:5_000 ~seed:99 ()
  in
  let queries = Trace.generate cfg in
  let m = run_collect queries in
  check_int "everything completes" 5_000 (Metrics.completed_count m);
  check_int "nothing rejected" 0 (Metrics.rejected_count m)

let test_utilization_matches_load () =
  (* An M/M/1 queue at rho = 0.2 with deadline 2*mu misses with
     probability exp(-(1 - rho) * 2) ~ 0.202; the measured SLA-A loss
     must sit near that analytic value. This pins down both the load
     calibration and the FCFS response-time distribution. *)
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.2
      ~servers:1 ~n_queries:8_000 ~seed:7 ()
  in
  let queries = Trace.generate cfg in
  let m = run_collect queries in
  let analytic = exp (-.(1.0 -. 0.2) *. 2.0) in
  check_bool
    (Printf.sprintf "loss %.3f near M/M/1 prediction %.3f" (Metrics.avg_loss m)
       analytic)
    true
    (Float.abs (Metrics.avg_loss m -. analytic) < 0.03)

let prop_work_conservation =
  (* Whatever the (valid) scheduler decision, every query completes
     exactly once and total measured profit stays within the ideal
     bounds. *)
  QCheck.Test.make ~name:"every query completes exactly once" ~count:50
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let cfg =
        Trace.config ~kind:Workloads.Ssbm_wl ~profile:Workloads.Sla_b ~load:0.9
          ~servers:2 ~n_queries:300 ~seed ()
      in
      let queries = Trace.generate cfg in
      let rr = ref 0 in
      let dispatch _sim _q =
        rr := (!rr + 1) mod 2;
        { Sim.target = Some !rr; est_delta = None }
      in
      let m = run_collect ~n_servers:2 ~dispatch queries in
      Metrics.completed_count m = 300)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "metrics",
        [
          Alcotest.test_case "warmup window" `Quick test_metrics_warmup;
          Alcotest.test_case "rejection" `Quick test_metrics_rejection;
          Alcotest.test_case "response time" `Quick test_metrics_response;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
          Alcotest.test_case "breakdown classes" `Quick test_breakdown_classes;
          Alcotest.test_case "on_complete hook" `Quick test_on_complete_hook;
        ] );
      ( "single-server",
        [
          Alcotest.test_case "FCFS completions" `Quick test_fcfs_completions;
          Alcotest.test_case "SJF reorders" `Quick test_sjf_reorders;
          Alcotest.test_case "deadline miss counted" `Quick test_deadline_miss_counted;
          Alcotest.test_case "actual vs estimated" `Quick test_actual_vs_estimated_times;
          Alcotest.test_case "idle period" `Quick test_idle_period_respected;
          Alcotest.test_case "rejection path" `Quick test_rejection_path;
        ] );
      ( "multi-server",
        [
          Alcotest.test_case "parallelism" `Quick test_multi_server_parallelism;
          Alcotest.test_case "invalid dispatcher target" `Quick
            test_invalid_dispatcher_target;
          Alcotest.test_case "invalid scheduler index" `Quick
            test_invalid_scheduler_index;
          Alcotest.test_case "on_dispatch observer" `Quick test_on_dispatch_observer;
          Alcotest.test_case "est_work_left" `Quick test_est_work_left_exposed;
          Alcotest.test_case "drop policy" `Quick test_drop_policy;
          Alcotest.test_case "drop frees capacity" `Quick
            test_drop_policy_frees_capacity;
          Alcotest.test_case "drop backlog accounting" `Quick
            test_drop_backlog_accounting;
          Alcotest.test_case "drop penalty in metrics" `Quick
            test_drop_penalty_in_metrics;
          Alcotest.test_case "heterogeneous speeds" `Quick test_heterogeneous_speeds;
          Alcotest.test_case "heterogeneous work left" `Quick
            test_heterogeneous_work_left;
          Alcotest.test_case "invalid speeds" `Quick test_invalid_speeds;
        ] );
      ( "negative paths",
        [
          Alcotest.test_case "add_server invalid speed" `Quick
            test_add_server_invalid_speed;
          Alcotest.test_case "add_server invalid boot delay" `Quick
            test_add_server_invalid_boot_delay;
          Alcotest.test_case "retire unknown server" `Quick
            test_retire_unknown_server;
          Alcotest.test_case "retire would empty pool" `Quick
            test_retire_would_empty_pool;
          Alcotest.test_case "redistribute-reject is a rejection" `Quick
            test_retire_redistribute_reject_is_rejection;
          Alcotest.test_case "dispatch to non-accepting server" `Quick
            test_dispatch_to_non_accepting;
          Alcotest.test_case "negative scheduler index" `Quick
            test_negative_scheduler_index;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "drains large trace" `Slow test_simulation_drains_large_trace;
          Alcotest.test_case "M/M/1 miss probability" `Slow test_utilization_matches_load;
          qtest prop_work_conservation;
        ] );
    ]
