(* Flat vs boxed SLA-tree: the flat arena-backed layout must be
   BIT-identical to [Cascade_tree] — same sort permutation, same merge
   float order, same probe accumulation order — so every comparison
   here is on raw float bits, not within a tolerance.

   The generators are adversarial on purpose: quantized keys force
   exact duplicates that straddle subtree boundaries (the split of two
   equal boundary keys IS that key), tau is drawn exactly from the key
   set (the Lt/Le edges), and units optionally share uids so descendant
   lists merge duplicate ids. *)

let check_int = Alcotest.(check int)

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits name a b =
  if not (bits_eq a b) then
    Alcotest.failf "%s: %h <> %h" name a b

(* ------------------------------------------------------------------ *)
(* Cascade-level fuzz over raw unit arrays. *)

(* Adversarial unit arrays. Keys come from a small quantized pool so
   exact duplicates are common; uids are distinct per unit, or shared
   in pairs (then the pair's keys are forced apart so (key, uid) stays
   a strict total order — the invariant real expansions guarantee,
   since a query's unit slacks strictly increase). *)
let gen_units =
  QCheck.Gen.(
    let* m = 1 -- 48 in
    let* k = 2 -- 6 in
    let* raw_pool = array_repeat k (float_range (-50.0) 50.0) in
    let pool = Array.map (fun x -> Float.round (x *. 4.0) /. 4.0) raw_pool in
    let* idxs = array_repeat m (0 -- (k - 1)) in
    let* gains = array_repeat m (float_range 0.25 8.0) in
    let* dup_uids = bool in
    let units =
      Array.init m (fun i ->
          let uid = if dup_uids then i / 2 else i in
          let slack =
            (* Force a shared-uid pair's KEYS apart by value — the pool
               may hold the same quantized value at two indices, and an
               equal (key, uid) pair would make the sort comparator a
               non-total order (boxed Array.sort and the flat heapsort
               could then order the pair's gains differently). *)
            let s = pool.(idxs.(i)) in
            if dup_uids && i land 1 = 1 && s = pool.(idxs.(i - 1)) then
              s +. 0.25
            else s
          in
          { Slack_units.uid; slack; gain = gains.(i) })
    in
    return units)

(* (units, n, tau): n spans the uid range with both edges, tau is an
   exact key or an epsilon/quarter-step perturbation of one. *)
let gen_case =
  QCheck.Gen.(
    let* units = gen_units in
    let m = Array.length units in
    let max_uid =
      Array.fold_left (fun acc u -> max acc u.Slack_units.uid) 0 units
    in
    let* n = -1 -- (max_uid + 1) in
    let* ti = 0 -- (m - 1) in
    let* perturb = oneofl [ 0.0; 0.0; 0.0; 1e-9; -1e-9; 0.25; -0.25 ] in
    return (units, n, units.(ti).Slack_units.slack +. perturb))

let arb_case =
  QCheck.make
    ~print:(fun (units, n, tau) ->
      Fmt.str "n=%d tau=%h@ [@[%a@]]" n tau
        Fmt.(
          array ~sep:semi (fun ppf u ->
              Fmt.pf ppf "(uid %d, slack %h, gain %h)" u.Slack_units.uid
                u.Slack_units.slack u.Slack_units.gain))
        units)
    gen_case

let prop_flat_cascade_matches_boxed =
  QCheck.Test.make ~name:"flat cascade == boxed cascade (bitwise)" ~count:1000
    arb_case
    (fun (units, n, tau) ->
      let boxed = Cascade_tree.build units in
      let arena = Flat_sla_tree.create_arena () in
      let flat = Flat_sla_tree.of_units arena units in
      Flat_sla_tree.unit_count flat = Cascade_tree.unit_count boxed
      && Flat_sla_tree.depth flat = Cascade_tree.depth boxed
      && bits_eq (Cascade_tree.total boxed) (Flat_sla_tree.total flat)
      && bits_eq
           (Cascade_tree.prefix_total boxed ~n)
           (Flat_sla_tree.prefix_total flat ~n)
      && List.for_all
           (fun mode ->
             let b = Cascade_tree.prefix_loss boxed mode ~n ~tau in
             bits_eq b (Flat_sla_tree.prefix_loss flat mode ~n ~tau)
             && bits_eq b
                  (Flat_sla_tree.prefix_loss_binary_search flat mode ~n ~tau))
           [ Cascade_tree.Lt; Cascade_tree.Le ])

let test_flat_cascade_empty () =
  let arena = Flat_sla_tree.create_arena () in
  let flat = Flat_sla_tree.of_units arena [||] in
  check_int "no units" 0 (Flat_sla_tree.unit_count flat);
  check_int "depth 0" 0 (Flat_sla_tree.depth flat);
  check_bits "loss" 0.0
    (Flat_sla_tree.prefix_loss flat Cascade_tree.Lt ~n:5 ~tau:10.0);
  check_bits "total" 0.0 (Flat_sla_tree.total flat)

let test_flat_cascade_paper_example () =
  (* Fig 7's g/0 example: postpone(1, 9, 32) = 300. *)
  let leaves =
    [ (11, 10.0, 100.0); (5, 20.0, 200.0); (3, 30.0, 100.0); (7, 40.0, 300.0);
      (1, 50.0, 100.0); (15, 60.0, 100.0); (13, 70.0, 200.0); (9, 80.0, 100.0) ]
  in
  let units =
    Array.of_list
      (List.map (fun (uid, slack, gain) -> { Slack_units.uid; slack; gain }) leaves)
  in
  let arena = Flat_sla_tree.create_arena () in
  let flat = Flat_sla_tree.of_units arena units in
  check_bits "postpone(1,9,32)" 300.0
    (Flat_sla_tree.prefix_loss flat Cascade_tree.Lt ~n:9 ~tau:32.0);
  check_bits "grand total" 1200.0 (Flat_sla_tree.total flat)

(* ------------------------------------------------------------------ *)
(* Facade-level fuzz: whole SLA-trees (S+ and S-) over random buffers,
   flat vs boxed, including arena reuse across rebuilds. *)

let gen_sla =
  QCheck.Gen.(
    let* n = 1 -- 3 in
    let* raw_bounds = list_repeat (n + 2) (float_range 1.0 150.0) in
    let* raw_gains = list_repeat (n + 2) (float_range 0.5 8.0) in
    let* penalty = float_range 0.0 4.0 in
    let bounds = List.sort_uniq Float.compare raw_bounds in
    let gains = List.rev (List.sort_uniq Float.compare raw_gains) in
    let k = min n (min (List.length bounds) (List.length gains)) in
    let levels =
      List.init k (fun i ->
          { Sla.bound = List.nth bounds i; gain = List.nth gains i })
    in
    return (Sla.make ~levels ~penalty))

let gen_query id =
  QCheck.Gen.(
    let* arrival = float_range 0.0 120.0 in
    let* size = float_range 0.1 40.0 in
    let* sla = gen_sla in
    return (Query.make ~id ~arrival ~size ~sla ()))

let gen_buffer =
  QCheck.Gen.(
    let* n = 0 -- 30 in
    let* queries = flatten_l (List.init n gen_query) in
    return (Array.of_list queries))

let arb_buffer =
  QCheck.make
    ~print:(fun qs -> Fmt.str "@[<v>%a@]" Fmt.(array ~sep:cut Query.pp) qs)
    gen_buffer

let now = 100.0

(* Probe a tree on a fixed battery of questions: full-range and
   split-range postpones/expedites at taus including exact unit slacks
   (tau drawn from the buffer's own schedule), plus the stake/recovery
   accumulators. *)
let probe_battery tree =
  let n = Sla_tree.length tree in
  let qs =
    [
      Sla_tree.total_profit_at_stake tree;
      Sla_tree.total_recoverable_profit tree;
    ]
  in
  if n = 0 then qs
  else begin
    let taus =
      (* exact slack values of the first entry's components land on the
         Lt/Le edges *)
      let e = Sla_tree.entry tree 0 in
      let comps = Sla.components e.Schedule.query.Query.sla in
      Array.to_list
        (Array.map
           (fun c -> Float.abs (Schedule.slack e ~bound:c.Sla.comp_bound))
           comps)
      @ [ 0.0; 1.0; 7.5; 133.25 ]
    in
    let mid = n / 2 in
    List.concat_map
      (fun tau ->
        [
          Sla_tree.postpone tree ~m:0 ~n:(n - 1) ~tau;
          Sla_tree.expedite tree ~m:0 ~n:(n - 1) ~tau;
          Sla_tree.postpone tree ~m:mid ~n:(n - 1) ~tau;
          Sla_tree.expedite tree ~m:0 ~n:mid ~tau;
        ])
      taus
    @ [ Sla_tree.profit_at_stake tree ~n:mid;
        Sla_tree.recoverable_profit tree ~n:mid ]
    @ qs
  end

let batteries_eq a b =
  List.length a = List.length b && List.for_all2 bits_eq a b

let prop_facade_flat_matches_boxed =
  QCheck.Test.make ~name:"Sla_tree flat == boxed (bitwise)" ~count:500
    arb_buffer
    (fun qs ->
      let boxed = Sla_tree.build ~impl:Sla_tree.Boxed ~now qs in
      let flat = Sla_tree.build ~impl:Sla_tree.Flat ~now qs in
      Sla_tree.unit_counts flat = Sla_tree.unit_counts boxed
      && batteries_eq (probe_battery boxed) (probe_battery flat))

let prop_arena_reuse_matches_fresh =
  (* Rebuilding through ONE arena must answer exactly like fresh
     builds, buffer after buffer — growth, cursor resets and stale
     storage reuse included. *)
  QCheck.Test.make ~name:"arena rebuilds == fresh builds (bitwise)" ~count:100
    (QCheck.make
       ~print:(fun bufs ->
         Fmt.str "%d buffers" (List.length bufs))
       QCheck.Gen.(list_size (1 -- 6) gen_buffer))
    (fun bufs ->
      let arena = Sla_tree.create_arena () in
      List.for_all
        (fun qs ->
          let reused = Sla_tree.build ~arena ~now qs in
          let fresh = Sla_tree.build ~impl:Sla_tree.Boxed ~now qs in
          batteries_eq (probe_battery fresh) (probe_battery reused))
        bufs)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "flat"
    [
      ( "cascade",
        [
          Alcotest.test_case "empty" `Quick test_flat_cascade_empty;
          Alcotest.test_case "paper example" `Quick test_flat_cascade_paper_example;
          qtest prop_flat_cascade_matches_boxed;
        ] );
      ( "facade",
        [
          qtest prop_facade_flat_matches_boxed;
          qtest prop_arena_reuse_matches_fresh;
        ] );
    ]
