(* Tests for the domain-parallel runner: the determinism contract
   (submission-ordered results, bit-identical reduction), exception
   propagation, nested-use behaviour, serial-vs-parallel equivalence
   of experiment grids that fan out over it, and the reservoir cap in
   Metrics that keeps long parallel multi-repeat runs bounded. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f] with the ambient pool at [n] workers, restoring the serial
   default whatever happens — a leaked pool would leak domains into
   every later test. *)
let with_jobs n f =
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs 1)
    (fun () ->
      Parallel.set_jobs n;
      f ())

(* ------------------------------------------------------------------ *)
(* Explicit pool *)

let test_pool_run_ordered () =
  let pool = Parallel.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      check_int "width" 3 (Parallel.pool_jobs pool);
      let arr = Array.init 100 Fun.id in
      let out = Parallel.run pool (fun x -> x * x) arr in
      Alcotest.(check (array int))
        "squares in submission order"
        (Array.map (fun x -> x * x) arr)
        out;
      (* The pool is reusable across batches, including empty ones. *)
      Alcotest.(check (array int)) "empty batch" [||] (Parallel.run pool Fun.id [||]);
      Alcotest.(check (array int)) "singleton batch" [| 7 |] (Parallel.run pool Fun.id [| 7 |]))

exception Boom of int

let test_pool_exception_lowest_index () =
  let pool = Parallel.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let raised =
        match
          Parallel.run pool
            (fun i -> if i >= 5 then raise (Boom i) else i)
            (Array.init 32 Fun.id)
        with
        | _ -> None
        | exception Boom i -> Some i
      in
      check_bool "lowest raising index re-raised" true (raised = Some 5);
      (* The batch that raised must leave the pool usable. *)
      Alcotest.(check (array int))
        "pool survives a raising batch" [| 1; 2; 3 |]
        (Parallel.run pool Fun.id [| 1; 2; 3 |]))

let test_pool_nested_run_raises () =
  let outer = Parallel.create ~jobs:2 in
  let inner = Parallel.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () ->
      Parallel.shutdown outer;
      Parallel.shutdown inner)
    (fun () ->
      let out =
        Parallel.run outer
          (fun _ ->
            match Parallel.run inner Fun.id [| 1; 2 |] with
            | _ -> false
            | exception Parallel.Nested_parallelism -> true)
          [| 0; 1 |]
      in
      check_bool "run from any pool's worker is rejected" true
        (Array.for_all Fun.id out))

let test_pool_shutdown () =
  let pool = Parallel.create ~jobs:2 in
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  check_bool "run on a shut-down pool rejected" true
    (match Parallel.run pool Fun.id [| 1; 2 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pool_invalid_width () =
  let rejects jobs =
    match Parallel.create ~jobs with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "jobs = 0" true (rejects 0);
  check_bool "jobs > max" true (rejects (Parallel.max_jobs + 1))

(* ------------------------------------------------------------------ *)
(* Ambient pool *)

let test_ambient_default_serial () =
  check_int "serial by default" 1 (Parallel.jobs ());
  Alcotest.(check (array int))
    "map_ordered works without a pool" [| 0; 1; 4; 9 |]
    (Parallel.map_ordered (fun x -> x * x) [| 0; 1; 2; 3 |])

let test_ambient_set_jobs () =
  with_jobs 3 (fun () ->
      check_int "width reported" 3 (Parallel.jobs ());
      Parallel.set_jobs 2;
      check_int "pool replaced" 2 (Parallel.jobs ()));
  check_int "restored to serial" 1 (Parallel.jobs ())

let test_ambient_validation () =
  let rejects n =
    match Parallel.set_jobs n with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "0 rejected" true (rejects 0);
  check_bool "over max rejected" true (rejects (Parallel.max_jobs + 1));
  check_int "still serial after rejects" 1 (Parallel.jobs ())

let test_ambient_nested_degrades () =
  (* A grid parallelising cells whose cells parallelise repeats: the
     inner fan-out must silently run serially on the worker instead of
     raising or deadlocking. *)
  with_jobs 2 (fun () ->
      let out =
        Parallel.map_ordered
          (fun i ->
            Array.to_list
              (Parallel.map_ordered
                 (fun j -> (10 * i) + j)
                 (Array.init 4 Fun.id)))
          (Array.init 3 Fun.id)
      in
      Alcotest.(check (array (list int)))
        "nested fan-out correct and ordered"
        (Array.init 3 (fun i -> List.init 4 (fun j -> (10 * i) + j)))
        out)

let test_map_list_order () =
  with_jobs 4 (fun () ->
      Alcotest.(check (list int))
        "list order preserved" [ 9; 4; 1; 0 ]
        (Parallel.map_list (fun x -> x * x) [ 3; 2; 1; 0 ]))

(* Fuzz the contract itself: whatever the input, [map_ordered] under a
   pool returns [Float.equal]-identical results to the serial map, so
   any fold the caller does accumulates in the same order with the
   same bits. *)
let prop_map_ordered_bit_identical =
  QCheck.Test.make ~name:"map_ordered bit-identical to serial map" ~count:40
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let f x = Float.sin x +. (x *. 3.0) +. (1.0 /. (1.0 +. Float.abs x)) in
      let serial = Array.map f arr in
      with_jobs 3 (fun () ->
          let par = Parallel.map_ordered f arr in
          Array.length par = Array.length serial
          && Array.for_all2 Float.equal par serial))

let prop_exception_deterministic =
  QCheck.Test.make ~name:"raising index re-raised deterministically" ~count:30
    QCheck.(pair (int_range 2 40) (int_bound 39))
    (fun (n, k) ->
      let k = k mod n in
      with_jobs 4 (fun () ->
          match
            Parallel.map_ordered
              (fun i -> if i >= k then raise (Boom i) else i)
              (Array.init n Fun.id)
          with
          | _ -> false
          | exception Boom i -> i = k))

(* ------------------------------------------------------------------ *)
(* Serial-vs-parallel equivalence of the experiment grids (tiny
   scale). [repeats = 2] exercises the within-cell repeat fan-out of
   Exp_common.avg_loss_over_repeats and Table 4's pair fold. *)

let tiny : Exp_scale.t =
  { Exp_scale.n_queries = 600; warmup = 300; repeats = 2; base_seed = 4242 }

let test_table2_equivalence () =
  let slice scale =
    Table2.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~loads:[ 0.7; 0.9 ] scale
  in
  let serial = slice tiny in
  let par = with_jobs 4 (fun () -> slice tiny) in
  check_int "cell count" (List.length serial) (List.length par);
  List.iter2
    (fun (a : Table2.cell) (b : Table2.cell) ->
      check_bool "cell bit-identical" true
        (a.Table2.profile = b.Table2.profile
        && a.Table2.kind = b.Table2.kind
        && a.Table2.sched = b.Table2.sched
        && Float.equal a.Table2.load b.Table2.load
        && Float.equal a.Table2.avg_loss b.Table2.avg_loss))
    serial par

let test_table4_equivalence () =
  let slice scale = Table4.compute ~kinds:[ Workloads.Exp ] ~servers:[ 2; 3 ] scale in
  let serial = slice tiny in
  let par = with_jobs 4 (fun () -> slice tiny) in
  check_int "cell count" (List.length serial) (List.length par);
  List.iter2
    (fun (a : Table4.cell) (b : Table4.cell) ->
      check_bool "cell bit-identical" true
        (a.Table4.kind = b.Table4.kind
        && a.Table4.servers = b.Table4.servers
        && Float.equal a.Table4.ground_truth b.Table4.ground_truth
        && Float.equal a.Table4.estimate b.Table4.estimate))
    serial par

let test_elastic_equivalence () =
  let rows () = Exp_elastic.rows ~scale:tiny ~seed:tiny.Exp_scale.base_seed () in
  let serial = rows () in
  let par = with_jobs 4 (fun () -> rows ()) in
  check_int "row count" (List.length serial) (List.length par);
  List.iter2
    (fun (a : Exp_elastic.row) (b : Exp_elastic.row) ->
      check_bool "row bit-identical" true
        (a.Exp_elastic.label = b.Exp_elastic.label
        && Float.equal a.Exp_elastic.profit b.Exp_elastic.profit
        && Float.equal a.Exp_elastic.cost b.Exp_elastic.cost
        && Float.equal a.Exp_elastic.net b.Exp_elastic.net))
    serial par

let test_resilience_equivalence () =
  let rows () = Exp_resilience.rows ~scale:tiny () in
  let serial = rows () in
  let par = with_jobs 4 (fun () -> rows ()) in
  check_int "row count" (List.length serial) (List.length par);
  List.iter2
    (fun (a : Exp_resilience.row) (b : Exp_resilience.row) ->
      check_bool "row bit-identical" true
        (a.Exp_resilience.pool = b.Exp_resilience.pool
        && a.Exp_resilience.dispatcher = b.Exp_resilience.dispatcher
        && a.Exp_resilience.plan = b.Exp_resilience.plan
        && Float.equal a.Exp_resilience.profit b.Exp_resilience.profit
        && Float.equal a.Exp_resilience.drop b.Exp_resilience.drop
        && a.Exp_resilience.crashes = b.Exp_resilience.crashes))
    serial par

(* ------------------------------------------------------------------ *)
(* Metrics reservoir sampling *)

let sla10 = Sla.one_zero ~bound:10.0
let mkq id = Query.make ~id ~arrival:0.0 ~size:1.0 ~sla:sla10 ()

let test_reservoir_below_cap_unchanged () =
  (* Runs that fit under the cap must be byte-for-byte what the
     uncapped path produces. *)
  let capped = Metrics.create ~response_cap:100 ~warmup_id:0 () in
  let plain = Metrics.create ~warmup_id:0 () in
  for i = 0 to 99 do
    let completion = Float.of_int ((i * 37 mod 100) + 1) in
    Metrics.record capped (mkq i) ~completion;
    Metrics.record plain (mkq i) ~completion
  done;
  let ps = [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ] in
  List.iter2
    (fun a b -> check_bool "identical percentile" true (Float.equal a b))
    (Metrics.response_percentiles capped ps)
    (Metrics.response_percentiles plain ps)

let test_reservoir_past_cap () =
  let run () =
    let m = Metrics.create ~response_cap:50 ~warmup_id:0 () in
    for i = 0 to 9_999 do
      Metrics.record m (mkq i) ~completion:(Float.of_int (i mod 1000) +. 1.0)
    done;
    (m, Metrics.response_percentiles m [ 0.0; 50.0; 99.0; 100.0 ])
  in
  let m, a = run () in
  let _, b = run () in
  (* Deterministic: identical runs keep identical samples. *)
  List.iter2
    (fun x y -> check_bool "deterministic past cap" true (Float.equal x y))
    a b;
  List.iter (fun x -> check_bool "finite" true (Float.is_finite x)) a;
  (* The reservoir spans the whole run, not its first [cap] responses
     (which were all <= 50 here): the median of 50 uniform draws from
     (0, 1000] sits nowhere near that prefix. *)
  check_bool "sample covers the full run" true (List.nth a 1 > 100.0);
  (* Sampling bounds the retained responses, not the accounting. *)
  check_int "measured count unaffected" 10_000 (Metrics.measured_count m)

let prop_reservoir_cap_invariants =
  QCheck.Test.make ~name:"reservoir: finite percentiles at any cap/length"
    ~count:60
    QCheck.(pair (int_range 1 40) (int_range 1 500))
    (fun (cap, n) ->
      let m = Metrics.create ~response_cap:cap ~warmup_id:0 () in
      for i = 0 to n - 1 do
        Metrics.record m (mkq i) ~completion:(Float.of_int ((i * 13 mod 97) + 1))
      done;
      Metrics.measured_count m = n
      && List.for_all Float.is_finite
           (Metrics.response_percentiles m [ 0.0; 50.0; 100.0 ]))

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered results, reusable" `Quick test_pool_run_ordered;
          Alcotest.test_case "lowest-index exception" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "nested run raises" `Quick test_pool_nested_run_raises;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "invalid width" `Quick test_pool_invalid_width;
        ] );
      ( "ambient",
        [
          Alcotest.test_case "default serial" `Quick test_ambient_default_serial;
          Alcotest.test_case "set_jobs" `Quick test_ambient_set_jobs;
          Alcotest.test_case "validation" `Quick test_ambient_validation;
          Alcotest.test_case "nested degrades to serial" `Quick
            test_ambient_nested_degrades;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          qtest prop_map_ordered_bit_identical;
          qtest prop_exception_deterministic;
        ] );
      ( "grids",
        [
          Alcotest.test_case "table2 serial = parallel" `Slow test_table2_equivalence;
          Alcotest.test_case "table4 serial = parallel" `Slow test_table4_equivalence;
          Alcotest.test_case "elastic serial = parallel" `Slow test_elastic_equivalence;
          Alcotest.test_case "resilience serial = parallel" `Slow
            test_resilience_equivalence;
        ] );
      ( "reservoir",
        [
          Alcotest.test_case "below cap unchanged" `Quick
            test_reservoir_below_cap_unchanged;
          Alcotest.test_case "past cap: deterministic full-run sample" `Quick
            test_reservoir_past_cap;
          qtest prop_reservoir_cap_invariants;
        ] );
    ]
