(* Tests for the execution-time prediction substrate: plan generation,
   the kNN regressor, and the end-to-end trace pipeline. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Query plans *)

let test_plan_features_shape () =
  let rng = Prng.create 1 in
  let p = Query_plan.generate rng in
  check_int "feature vector length" Query_plan.feature_count
    (Array.length (Query_plan.to_features p))

let test_plan_cost_positive_and_monotone () =
  let rng = Prng.create 2 in
  for _ = 1 to 500 do
    let p = Query_plan.generate rng in
    let c = Query_plan.base_cost_ms p in
    check_bool "positive cost" true (c > 0.0);
    (* More joins can only make the plan slower. *)
    let c' = Query_plan.base_cost_ms { p with n_joins = p.n_joins + 2 } in
    check_bool "joins cost" true (c' >= c)
  done

let test_plan_cost_grows_with_rows () =
  let rng = Prng.create 3 in
  let p = Query_plan.generate rng in
  let small = Query_plan.base_cost_ms { p with log_rows = 3.0 } in
  let large = Query_plan.base_cost_ms { p with log_rows = 6.0 } in
  check_bool "rows dominate" true (large > small)

let test_observed_cost_noisy_but_centered () =
  let rng = Prng.create 4 in
  let p = Query_plan.generate rng in
  let base = Query_plan.base_cost_ms p in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Query_plan.observed_cost_ms ~noise_sigma:0.15 p rng)
  done;
  (* Lognormal(0, 0.15): mean factor = exp(0.15^2/2) ~ 1.011. *)
  check_bool "mean near base" true
    (Float.abs ((Stats.mean s /. base) -. 1.011) < 0.03);
  check_bool "actually noisy" true (Stats.stddev s > 0.0)

(* ------------------------------------------------------------------ *)
(* kNN *)

let test_knn_recovers_training_point () =
  (* k = 1 on a clean function: predicting a training input returns its
     label exactly. *)
  let xs = Array.init 50 (fun i -> [| Float.of_int i; Float.of_int (i * i) |]) in
  let ys = Array.init 50 (fun i -> 1.0 +. Float.of_int i) in
  let m = Knn.fit ~k:1 xs ys in
  check_float "exact at training point" 11.0 (Knn.predict m xs.(10))

let test_knn_interpolates () =
  (* y = x on a grid: prediction between grid points lands between the
     neighbours. *)
  let xs = Array.init 21 (fun i -> [| Float.of_int i |]) in
  let ys = Array.init 21 (fun i -> Float.of_int i +. 1.0) in
  let m = Knn.fit ~k:2 xs ys in
  let p = Knn.predict m [| 10.4 |] in
  check_bool "between neighbours" true (p >= 10.9 && p <= 12.1)

let test_knn_k_clamped () =
  let xs = [| [| 0.0 |]; [| 1.0 |] |] in
  let ys = [| 2.0; 8.0 |] in
  let m = Knn.fit ~k:10 xs ys in
  (* k clamps to 2: geometric mean of 2 and 8 = 4. *)
  check_float "geometric mean" 4.0 (Knn.predict m [| 0.5 |])

let test_knn_invalid () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "empty" true (raises (fun () -> Knn.fit ~k:1 [||] [||]));
  check_bool "mismatch" true
    (raises (fun () -> Knn.fit ~k:1 [| [| 1.0 |] |] [| 1.0; 2.0 |]));
  check_bool "nonpositive target" true
    (raises (fun () -> Knn.fit ~k:1 [| [| 1.0 |] |] [| 0.0 |]));
  check_bool "bad k" true (raises (fun () -> Knn.fit ~k:0 [| [| 1.0 |] |] [| 1.0 |]))

let test_knn_constant_feature_no_nan () =
  (* A zero-variance feature must not divide by zero. *)
  let xs = [| [| 5.0; 1.0 |]; [| 5.0; 2.0 |]; [| 5.0; 3.0 |] |] in
  let ys = [| 1.0; 2.0; 3.0 |] in
  let m = Knn.fit ~k:1 xs ys in
  check_bool "finite prediction" true (Float.is_finite (Knn.predict m [| 5.0; 2.1 |]))

let test_knn_tie_break_on_duplicates () =
  (* Regression: equidistant neighbours used to be picked in whatever
     order the unstable sort left them. With duplicated feature rows
     carrying different labels, k = 1 must deterministically pick the
     lowest training index. *)
  let xs = [| [| 1.0 |]; [| 3.0 |]; [| 1.0 |]; [| 1.0 |] |] in
  let ys = [| 2.0; 9.0; 5.0; 7.0 |] in
  let m = Knn.fit ~k:1 xs ys in
  check_float "lowest-index duplicate wins" 2.0 (Knn.predict m [| 1.0 |])

let prop_knn_permutation_invariant =
  (* Under duplicate distances the prediction must not depend on the
     training-set order: reversing a training set whose rows are all
     pairwise duplicates (two distinct feature values only) yields the
     same prediction, because ties break on the ORIGINAL index in each
     set, selecting the same multiset of labels. *)
  QCheck.Test.make ~name:"predict permutation-invariant under duplicate distances"
    ~count:200
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 2 12) (pair bool (int_range 1 50))))
    (fun (k, spec) ->
      QCheck.assume (List.length spec >= 2);
      (* Two feature values, 0 and 10; labels vary. Sorting the labels
         per feature value gives the canonical tie-break outcome. *)
      let mk spec =
        let xs =
          Array.of_list
            (List.map (fun (hi, _) -> [| (if hi then 10.0 else 0.0) |]) spec)
        in
        let ys = Array.of_list (List.map (fun (_, y) -> Float.of_int y) spec) in
        Knn.fit ~k xs ys
      in
      (* A permutation that preserves the relative order within each
         duplicate group selects the same neighbours: interleave the
         groups differently by stable-partitioning. *)
      let lo, hi = List.partition (fun (h, _) -> not h) spec in
      let a = mk spec and b = mk (lo @ hi) in
      let q = [| 4.0 |] in
      Float.equal (Knn.predict a q) (Knn.predict b q))

let test_knn_mape_guards () =
  (* Regression: a zero (or negative) label used to flow into the
     percentage division and poison the mean with inf/nan. *)
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  let m = Knn.fit ~k:1 [| [| 0.0 |]; [| 1.0 |] |] [| 1.0; 2.0 |] in
  check_bool "empty test set" true (raises (fun () -> Knn.mape m [||] [||]));
  check_bool "length mismatch" true
    (raises (fun () -> Knn.mape m [| [| 0.0 |] |] [| 1.0; 2.0 |]));
  check_bool "zero label" true
    (raises (fun () -> Knn.mape m [| [| 0.0 |] |] [| 0.0 |]));
  check_bool "negative label" true
    (raises (fun () -> Knn.mape m [| [| 0.0 |] |] [| -1.0 |]));
  check_bool "valid set still works" true
    (Float.is_finite (Knn.mape m [| [| 0.5 |] |] [| 1.5 |]))

let test_knn_mape_reasonable_on_plans () =
  (* The whole point (Sec 2.3): plan features predict execution time
     well enough to drive decisions. *)
  let predictor = Cost_predictor.train ~training_size:2_000 ~seed:99 () in
  let mape = Cost_predictor.evaluate ~test_size:500 predictor ~seed:100 in
  check_bool (Printf.sprintf "MAPE %.1f%% below 80%%" mape) true (mape < 80.0);
  check_bool "MAPE positive" true (mape > 0.0)

let test_predictor_deterministic () =
  let a = Cost_predictor.train ~training_size:300 ~seed:5 () in
  let b = Cost_predictor.train ~training_size:300 ~seed:5 () in
  let rng = Prng.create 6 in
  let p = Query_plan.generate rng in
  check_float "same model from same seed" (Cost_predictor.predict a p)
    (Cost_predictor.predict b p)

(* ------------------------------------------------------------------ *)
(* End-to-end trace *)

let test_generated_trace_shape () =
  let predictor = Cost_predictor.train ~training_size:500 ~seed:7 () in
  let queries =
    Cost_predictor.generate_trace predictor ~profile:Workloads.Sla_b ~load:0.8
      ~servers:1 ~n_queries:400 ~seed:8
  in
  check_int "count" 400 (Array.length queries);
  Array.iteri
    (fun i q ->
      check_int "ids sequential" i q.Query.id;
      check_bool "positive times" true (q.Query.size > 0.0 && q.Query.est_size > 0.0);
      if i > 0 then
        check_bool "arrivals sorted" true
          (q.Query.arrival >= queries.(i - 1).Query.arrival))
    queries;
  check_bool "estimates differ from actuals" true
    (Array.exists (fun q -> q.Query.size <> q.Query.est_size) queries)

let test_generated_trace_runs_in_sim () =
  let predictor = Cost_predictor.train ~training_size:500 ~seed:9 () in
  let queries =
    Cost_predictor.generate_trace predictor ~profile:Workloads.Sla_a ~load:0.8
      ~servers:1 ~n_queries:600 ~seed:10
  in
  let metrics = Metrics.create ~warmup_id:200 () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs_sla_tree)
    ~dispatch:(Dispatchers.instantiate Dispatchers.round_robin)
    ~metrics ();
  check_int "all complete" 600 (Metrics.completed_count metrics);
  check_bool "loss finite" true (Float.is_finite (Metrics.avg_loss metrics))

let prop_prediction_positive =
  QCheck.Test.make ~name:"predictions are positive and finite" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let predictor = Cost_predictor.train ~training_size:200 ~seed:1 () in
      let rng = Prng.create seed in
      let p = Query_plan.generate rng in
      let v = Cost_predictor.predict predictor p in
      Float.is_finite v && v > 0.0)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "predictor"
    [
      ( "plans",
        [
          Alcotest.test_case "feature shape" `Quick test_plan_features_shape;
          Alcotest.test_case "cost positive/monotone" `Quick
            test_plan_cost_positive_and_monotone;
          Alcotest.test_case "cost grows with rows" `Quick test_plan_cost_grows_with_rows;
          Alcotest.test_case "observed noise centered" `Slow
            test_observed_cost_noisy_but_centered;
        ] );
      ( "knn",
        [
          Alcotest.test_case "recovers training point" `Quick
            test_knn_recovers_training_point;
          Alcotest.test_case "interpolates" `Quick test_knn_interpolates;
          Alcotest.test_case "k clamped" `Quick test_knn_k_clamped;
          Alcotest.test_case "invalid inputs" `Quick test_knn_invalid;
          Alcotest.test_case "constant feature" `Quick test_knn_constant_feature_no_nan;
          Alcotest.test_case "tie-break on duplicates" `Quick
            test_knn_tie_break_on_duplicates;
          qtest prop_knn_permutation_invariant;
          Alcotest.test_case "mape guards" `Quick test_knn_mape_guards;
          Alcotest.test_case "MAPE on plans" `Slow test_knn_mape_reasonable_on_plans;
          Alcotest.test_case "deterministic" `Quick test_predictor_deterministic;
          qtest prop_prediction_positive;
        ] );
      ( "trace",
        [
          Alcotest.test_case "shape" `Quick test_generated_trace_shape;
          Alcotest.test_case "runs in simulator" `Quick test_generated_trace_runs_in_sim;
        ] );
    ]
