(* Tests for the experiment harness: each table/figure runner produces
   structurally complete output at smoke scale, and the headline shape
   relations of the paper hold. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let tiny : Exp_scale.t =
  { n_queries = 600; warmup = 300; repeats = 1; base_seed = 4242 }

(* ------------------------------------------------------------------ *)
(* Scale *)

let test_scale_of_string () =
  check_bool "paper" true (Exp_scale.of_string "paper" = Some Exp_scale.paper);
  check_bool "smoke" true (Exp_scale.of_string "smoke" = Some Exp_scale.smoke);
  check_bool "default" true (Exp_scale.of_string "default" = Some Exp_scale.default);
  (match Exp_scale.of_string "5000" with
  | Some t ->
    check_int "custom n" 5000 t.Exp_scale.n_queries;
    check_int "custom warmup" 2500 t.Exp_scale.warmup
  | None -> Alcotest.fail "integer scale rejected");
  check_bool "garbage rejected" true (Exp_scale.of_string "bogus" = None);
  check_bool "tiny int rejected" true (Exp_scale.of_string "3" = None)

let test_scale_paper_protocol () =
  check_int "20k queries" 20_000 Exp_scale.paper.Exp_scale.n_queries;
  check_int "10k warmup" 10_000 Exp_scale.paper.Exp_scale.warmup;
  check_int "10 repeats" 10 Exp_scale.paper.Exp_scale.repeats

let test_scale_seeds_distinct () =
  let s0 = Exp_scale.seed tiny ~repeat:0 in
  let s1 = Exp_scale.seed tiny ~repeat:1 in
  check_bool "seeds differ" true (s0 <> s1)

(* ------------------------------------------------------------------ *)
(* Report rendering *)

let test_report_renders () =
  let r =
    {
      Report.title = "test";
      col_groups = [ ("G1", [ "a"; "b" ]); ("G2", [ "c" ]) ];
      rows = [ ("row1", [| 1.0; 2.0; 3.0 |]); ("row2", [| 0.5; Float.nan; 99.0 |]) ];
    }
  in
  check_int "3 columns" 3 (Report.n_cols r);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.render ppf r;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  check_bool "title present" true
    (String.length s > 0
    && String.length s > String.length "test"
    &&
    let re_found =
      let rec contains i =
        i + 4 <= String.length s && (String.sub s i 4 = "test" || contains (i + 1))
      in
      contains 0
    in
    re_found)

(* ------------------------------------------------------------------ *)
(* Table runners: structural completeness at tiny scale *)

let test_table2_structure () =
  let cells =
    Table2.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~loads:[ 0.7 ] tiny
  in
  check_int "4 scheduler rows" 4 (List.length cells);
  List.iter
    (fun c ->
      check_bool "loss finite and non-negative" true
        (Float.is_finite c.Table2.avg_loss && c.avg_loss >= 0.0))
    cells

let test_table2_shape_sla_tree_helps_fcfs () =
  let cells =
    Table2.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~loads:[ 0.9 ]
      { tiny with n_queries = 3_000; warmup = 1_500 }
  in
  let find sched =
    (List.find (fun c -> c.Table2.sched = sched) cells).Table2.avg_loss
  in
  check_bool "FCFS+tree <= FCFS" true
    (find Exp_common.Fcfs_tree <= find Exp_common.Fcfs +. 1e-9)

let test_table2_report_dimensions () =
  let cells =
    Table2.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~loads:[ 0.5 ] tiny
  in
  let r = Table2.to_report ~loads:[ 0.5 ] cells in
  check_int "6 col groups (2 SLA x 3 workloads)" 6 (List.length r.Report.col_groups);
  check_int "4 rows" 4 (List.length r.Report.rows)

let test_table3_structure () =
  let cells =
    Table3.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~servers:[ 2 ] tiny
  in
  check_int "3 dispatcher rows" 3 (List.length cells);
  List.iter
    (fun c -> check_bool "finite" true (Float.is_finite c.Table3.avg_loss))
    cells

let test_table3_shape_tree_dispatch_best () =
  let cells =
    Table3.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Pareto ]
      ~servers:[ 3 ]
      { tiny with n_queries = 3_000; warmup = 1_500 }
  in
  let find disp =
    (List.find (fun c -> c.Table3.disp = disp) cells).Table3.avg_loss
  in
  check_bool "SLA-tree dispatch beats LWL/CBS" true
    (find Exp_common.Tree_tree < find Exp_common.Lwl_cbs)

let test_table4_structure () =
  let cells = Table4.compute ~kinds:[ Workloads.Exp ] ~servers:[ 2; 3 ] tiny in
  check_int "two server points" 2 (List.length cells);
  List.iter
    (fun c ->
      check_bool "finite gt" true (Float.is_finite c.Table4.ground_truth);
      check_bool "finite est" true (Float.is_finite c.Table4.estimate))
    cells

let test_table5_structure () =
  let cells =
    Table5.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~sigmas:[ 0.0; 1.0 ] tiny
  in
  check_int "2 scheds x 2 sigmas" 4 (List.length cells)

let test_table5_error_of () =
  check_bool "zero is none" true (Estimate_error.is_none (Table5.error_of 0.0));
  check_float "sigma2 kept" 0.2 (Estimate_error.sigma2 (Table5.error_of 0.2))

let test_table5_shape_error_hurts () =
  let cells =
    Table5.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~sigmas:[ 0.0; 1.0 ]
      { tiny with n_queries = 3_000; warmup = 1_500 }
  in
  let find sched sigma2 =
    (List.find (fun c -> c.Table5.sched = sched && c.sigma2 = sigma2) cells)
      .Table5.avg_loss
  in
  (* Large estimation error cannot help the profit-aware scheduler. *)
  check_bool "sigma 1.0 worse than perfect for CBS+tree" true
    (find Exp_common.Cbs_tree 1.0 >= find Exp_common.Cbs_tree 0.0 -. 0.02)

let test_table6_structure () =
  let cells =
    Table6.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Exp ]
      ~sigmas:[ 0.0 ] tiny
  in
  check_int "3 dispatchers" 3 (List.length cells)

let test_table7_values () =
  let r = Table7.compute () in
  check_float "original 1.0" 1.0 r.Table7.original_profit;
  check_float "greedy 1.0" 1.0 r.Table7.greedy_profit;
  check_float "optimal 1.2" 1.2 r.Table7.optimal_profit;
  check_bool "greedy keeps head" true r.Table7.greedy_keeps_head;
  check_bool "greedy >= original" true (r.greedy_profit >= r.original_profit)

let test_fig15_structure () =
  let r = Fig15.compute ~samples:20_000 ~seed:5 () in
  check_bool "exp mean near 20" true (Float.abs (r.Fig15.exp_mean -. 20.0) < 1.0);
  check_int "exp histogram counted" 20_000 (Histogram.total r.Fig15.exp_hist);
  check_int "pareto histogram counted" 20_000 (Histogram.total r.Fig15.pareto_hist);
  (* Pareto mass concentrates in the lowest decades. *)
  let counts = Histogram.counts r.Fig15.pareto_hist in
  check_bool "mode in first bins" true (counts.(0) > counts.(Array.length counts - 1))

let test_fig17_structure () =
  let pts = Fig17.compute ~buffer_sizes:[ 50; 100 ] ~seed:5 () in
  check_int "two points" 2 (List.length pts);
  List.iter
    (fun p ->
      check_bool "positive time" true (p.Fig17.ms_per_decision > 0.0);
      check_int "two units per query" (2 * p.Fig17.buffer_len) p.Fig17.slack_units)
    pts

let test_fig17_growth_bounded () =
  (* Build+query is O(NK log NK): time may not explode quadratically.
     Allow a wide margin for constant factors and cache effects. *)
  let pts = Fig17.compute ~buffer_sizes:[ 100; 800 ] ~seed:5 () in
  match pts with
  | [ a; b ] ->
    let ratio = b.Fig17.ms_per_decision /. a.Fig17.ms_per_decision in
    check_bool (Printf.sprintf "8x size -> %.1fx time (< 40x)" ratio) true (ratio < 40.0)
  | _ -> Alcotest.fail "expected two points"

(* ------------------------------------------------------------------ *)
(* Validation and ablations *)

let test_validation_m1_matches_analytic () =
  let rows =
    Validation.compute ~loads:[ 0.5 ] ~servers:[ 1 ]
      { tiny with n_queries = 6_000; warmup = 2_000 }
  in
  match rows with
  | [ r ] ->
    check_bool
      (Printf.sprintf "sim %.4f vs analytic %.4f" r.Validation.simulated r.analytic)
      true
      (Float.abs (r.simulated -. r.analytic) < 0.04)
  | _ -> Alcotest.fail "expected one row"

let test_validation_multi_server_bounded_below () =
  (* Per-server buffers cannot beat the shared-queue M/M/m. *)
  let rows =
    Validation.compute ~loads:[ 0.7 ] ~servers:[ 3 ]
      { tiny with n_queries = 8_000; warmup = 3_000; repeats = 2 }
  in
  match rows with
  | [ r ] ->
    (* Queueing autocorrelation makes single-trace losses noisy; the
       bound is statistical, so allow a generous slack. *)
    check_bool
      (Printf.sprintf "sim %.4f >= analytic %.4f - slack" r.Validation.simulated
         r.analytic)
      true
      (r.simulated >= r.analytic -. 0.06)
  | _ -> Alcotest.fail "expected one row"

let test_ablation_sched_tree_never_worse () =
  let cells =
    Ablations.sched_compute ~kinds:[ Workloads.Exp ]
      { tiny with n_queries = 2_000; warmup = 1_000 }
  in
  check_int "five baselines" 5 (List.length cells);
  List.iter
    (fun c ->
      check_bool
        (Printf.sprintf "%s: tree %.3f <= base %.3f + eps" c.Ablations.base_name
           c.tree_loss c.base_loss)
        true
        (c.tree_loss <= c.base_loss +. 0.05))
    cells

let test_ablation_dispatch_ladder () =
  let cells =
    Ablations.disp_compute ~kinds:[ Workloads.Pareto ] ~servers:3
      { tiny with n_queries = 2_000; warmup = 1_000 }
  in
  check_int "five dispatchers" 5 (List.length cells);
  let loss name =
    (List.find (fun c -> c.Ablations.disp_name = name) cells).Ablations.loss
  in
  check_bool "SLA-tree beats Random" true (loss "SLA-tree" < loss "Random")

let test_ablation_admission_structure () =
  let cells = Ablations.admission_compute ~loads:[ 1.2 ] tiny in
  check_int "two cells" 2 (List.length cells);
  let with_ac = List.find (fun c -> c.Ablations.admission) cells in
  let without = List.find (fun c -> not c.Ablations.admission) cells in
  check_int "no rejections without AC" 0 without.Ablations.rejected;
  check_bool "AC rejects at overload" true (with_ac.Ablations.rejected > 0)

let test_ablation_incremental_wins () =
  let rows = Ablations.incr_compute ~buffer_sizes:[ 200 ] ~seed:3 () in
  match rows with
  | [ r ] ->
    check_bool
      (Printf.sprintf "incremental %.4f ms < rebuild %.4f ms"
         r.Ablations.incremental_ms_per_cycle r.rebuild_ms_per_cycle)
      true
      (r.incremental_ms_per_cycle < r.rebuild_ms_per_cycle)
  | _ -> Alcotest.fail "expected one row"

let test_ablation_fairness () =
  let cells =
    Ablations.fairness_compute { tiny with n_queries = 3_000; warmup = 1_000 }
  in
  (* 3 schedulers x 2 classes. *)
  check_int "six cells" 6 (List.length cells);
  let loss sched label =
    (List.find
       (fun c -> c.Ablations.scheduler = sched && c.Ablations.label = label)
       cells)
      .Ablations.class_loss
  in
  (* SLA-tree must not make employees worse than FCFS does (their $10
     penalty dominates the what-if), and buyers must not regress
     either. *)
  check_bool "employees protected" true
    (loss "FCFS+SLA-tree" "employee" <= loss "FCFS" "employee" +. 1e-9);
  check_bool "buyers not sacrificed" true
    (loss "FCFS+SLA-tree" "buyer" <= loss "FCFS" "buyer" +. 0.05)

let test_ablation_predictor_structure () =
  let cells =
    Ablations.predictor_compute { tiny with n_queries = 1_500; warmup = 500 }
  in
  check_int "two estimate regimes" 2 (List.length cells);
  let knn = List.find (fun c -> c.Ablations.estimates = "kNN") cells in
  check_bool "kNN MAPE reported" true (knn.Ablations.mape > 0.0);
  List.iter
    (fun c ->
      check_bool "losses finite" true
        (Float.is_finite c.Ablations.cbs_loss && Float.is_finite c.tree_loss))
    cells

(* Runners should print without raising. *)
let test_runners_print () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Table7.run ppf ();
  Fig15.run ~samples:5_000 ppf ~seed:3 ();
  Format.pp_print_flush ppf ();
  check_bool "output produced" true (Buffer.length buf > 200)

let () =
  Alcotest.run "experiments"
    [
      ( "scale",
        [
          Alcotest.test_case "of_string" `Quick test_scale_of_string;
          Alcotest.test_case "paper protocol" `Quick test_scale_paper_protocol;
          Alcotest.test_case "seeds distinct" `Quick test_scale_seeds_distinct;
        ] );
      ("report", [ Alcotest.test_case "renders" `Quick test_report_renders ]);
      ( "table2",
        [
          Alcotest.test_case "structure" `Slow test_table2_structure;
          Alcotest.test_case "SLA-tree helps FCFS" `Slow
            test_table2_shape_sla_tree_helps_fcfs;
          Alcotest.test_case "report dimensions" `Slow test_table2_report_dimensions;
        ] );
      ( "table3",
        [
          Alcotest.test_case "structure" `Slow test_table3_structure;
          Alcotest.test_case "tree dispatch best" `Slow test_table3_shape_tree_dispatch_best;
        ] );
      ("table4", [ Alcotest.test_case "structure" `Slow test_table4_structure ]);
      ( "table5",
        [
          Alcotest.test_case "structure" `Slow test_table5_structure;
          Alcotest.test_case "error_of" `Quick test_table5_error_of;
          Alcotest.test_case "error hurts" `Slow test_table5_shape_error_hurts;
        ] );
      ("table6", [ Alcotest.test_case "structure" `Slow test_table6_structure ]);
      ("table7", [ Alcotest.test_case "values" `Quick test_table7_values ]);
      ( "validation",
        [
          Alcotest.test_case "m=1 matches analytic" `Slow
            test_validation_m1_matches_analytic;
          Alcotest.test_case "m=3 bounded below" `Slow
            test_validation_multi_server_bounded_below;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "tree never worse across schedulers" `Slow
            test_ablation_sched_tree_never_worse;
          Alcotest.test_case "dispatch ladder" `Slow test_ablation_dispatch_ladder;
          Alcotest.test_case "admission structure" `Slow test_ablation_admission_structure;
          Alcotest.test_case "incremental wins" `Slow test_ablation_incremental_wins;
          Alcotest.test_case "predictor structure" `Slow test_ablation_predictor_structure;
          Alcotest.test_case "fairness per class" `Slow test_ablation_fairness;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig15 structure" `Quick test_fig15_structure;
          Alcotest.test_case "fig17 structure" `Quick test_fig17_structure;
          Alcotest.test_case "fig17 growth bounded" `Slow test_fig17_growth_bounded;
          Alcotest.test_case "runners print" `Quick test_runners_print;
        ] );
    ]
