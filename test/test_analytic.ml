(* Tests for the analytic queueing module: Erlang C against known
   values, tail sanity, and cross-validation of the simulator. *)

let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))

let test_erlang_c_single_server () =
  (* m = 1: the waiting probability is exactly rho. *)
  List.iter
    (fun rho ->
      check_float_eps 1e-12 "C = rho" rho
        (Queueing.erlang_c ~servers:1 ~offered_load:rho))
    [ 0.1; 0.5; 0.9 ]

let test_erlang_c_known_value () =
  (* Textbook value: m = 2, a = 1 -> C = 1/3. *)
  check_float_eps 1e-9 "m=2,a=1" (1.0 /. 3.0)
    (Queueing.erlang_c ~servers:2 ~offered_load:1.0);
  (* m = 3, a = 2: C = (8/6)/( (1-2/3)(1+2+2) + 8/6 ) / ... direct:
     a^3/3! = 8/6; sum_{k<3} a^k/k! = 1 + 2 + 2 = 5; rho = 2/3;
     top = (8/6)/(1/3) = 4; C = 4/(5+4) = 4/9. *)
  check_float_eps 1e-9 "m=3,a=2" (4.0 /. 9.0)
    (Queueing.erlang_c ~servers:3 ~offered_load:2.0)

let test_erlang_c_bounds () =
  check_bool "unstable -> 1" true
    (Queueing.erlang_c ~servers:2 ~offered_load:2.5 = 1.0);
  check_float_eps 1e-12 "no load -> 0" 0.0
    (Queueing.erlang_c ~servers:3 ~offered_load:0.0);
  let c = Queueing.erlang_c ~servers:5 ~offered_load:3.0 in
  check_bool "in (0,1)" true (c > 0.0 && c < 1.0)

let test_mm1_tail_closed_form () =
  (* M/M/1: P(R > t) = exp(-(mu - lambda) t). *)
  let mu = 1.0 /. 20.0 in
  let lambda = 0.7 *. mu in
  List.iter
    (fun t ->
      check_float_eps 1e-9 "textbook tail"
        (exp (-.(mu -. lambda) *. t))
        (Queueing.mm1_response_tail ~arrival_rate:lambda ~service_rate:mu ~t))
    [ 0.0; 10.0; 40.0; 100.0 ]

let test_mmm_tail_properties () =
  let mu = 0.05 and lambda = 0.12 in
  let tail t = Queueing.mmm_response_tail ~servers:3 ~arrival_rate:lambda ~service_rate:mu ~t in
  check_float_eps 1e-9 "starts at 1" 1.0 (tail 0.0);
  check_bool "monotone decreasing" true (tail 10.0 > tail 30.0 && tail 30.0 > tail 100.0);
  check_bool "vanishes" true (tail 2000.0 < 1e-6);
  check_bool "negative t" true (tail (-5.0) = 1.0)

let test_mmm_tail_matches_simulation_m1 () =
  (* Exponential workload, FCFS, single server: simulated miss rate at
     the SLA-A deadline equals the analytic tail. *)
  let load = 0.7 in
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load ~servers:1
         ~n_queries:12_000 ~seed:77 ())
  in
  let metrics = Metrics.create ~warmup_id:4_000 () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(fun ~now:_ _ -> 0)
    ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  let mu = 1.0 /. 20.0 in
  let analytic =
    Queueing.mm1_response_tail ~arrival_rate:(load *. mu) ~service_rate:mu ~t:40.0
  in
  check_bool
    (Printf.sprintf "sim %.4f vs analytic %.4f" (Metrics.avg_loss metrics) analytic)
    true
    (Float.abs (Metrics.avg_loss metrics -. analytic) < 0.03)

let test_mmm_mean_response () =
  (* m = 1: W = 1/(mu - lambda). *)
  let mu = 0.05 in
  let lambda = 0.8 *. mu in
  check_float_eps 1e-9 "m=1 mean" (1.0 /. (mu -. lambda))
    (Queueing.mmm_mean_response ~servers:1 ~arrival_rate:lambda ~service_rate:mu);
  check_bool "unstable -> infinity" true
    (Queueing.mmm_mean_response ~servers:2 ~arrival_rate:0.2 ~service_rate:0.05
    = infinity)

let test_expected_sla_loss () =
  (* 1/0 SLA: expected loss is exactly the tail at the bound. *)
  let mu = 0.05 and lambda = 0.035 in
  let sla = Sla.one_zero ~bound:40.0 in
  let tail =
    Queueing.mm1_response_tail ~arrival_rate:lambda ~service_rate:mu ~t:40.0
  in
  check_float_eps 1e-9 "1/0 loss = tail" tail
    (Queueing.expected_sla_loss sla ~servers:1 ~arrival_rate:lambda
       ~service_rate:mu);
  (* Stepwise with penalty: loss in [0, max_gain + penalty]. *)
  let sla2 =
    Sla.make ~levels:[ { bound = 20.0; gain = 2.0 }; { bound = 100.0; gain = 1.0 } ]
      ~penalty:3.0
  in
  let loss =
    Queueing.expected_sla_loss sla2 ~servers:1 ~arrival_rate:lambda
      ~service_rate:mu
  in
  check_bool "bounded" true (loss > 0.0 && loss <= 5.0)

let test_mg1_reduces_to_mm1 () =
  (* Exponential service: E[S^2] = 2/mu^2, so P-K gives the M/M/1
     mean wait rho/(mu - lambda). *)
  let mu = 0.05 in
  let lambda = 0.7 *. mu in
  let mean_service = 1.0 /. mu in
  let second_moment = 2.0 /. (mu *. mu) in
  let pk = Queueing.mg1_mean_wait ~arrival_rate:lambda ~mean_service ~second_moment in
  (* Textbook M/M/1 mean wait: rho/(mu - lambda). *)
  check_float_eps 1e-9 "matches M/M/1" (0.7 /. (mu -. lambda)) pk

let test_mg1_matches_ssbm_simulation () =
  (* SSBM service moments are exact; the simulated FCFS mean response
     must match Pollaczek-Khinchine. *)
  let load = 0.7 in
  let times = Ssbm.times_ms in
  let n = Float.of_int (Array.length times) in
  let mean_service = Array.fold_left ( +. ) 0.0 times /. n in
  let second_moment =
    Array.fold_left (fun acc t -> acc +. (t *. t)) 0.0 times /. n
  in
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Ssbm_wl ~profile:Workloads.Sla_a ~load
         ~servers:1 ~n_queries:16_000 ~seed:123 ())
  in
  let metrics = Metrics.create ~warmup_id:6_000 () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(fun ~now:_ _ -> 0)
    ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
    ~metrics ();
  let arrival_rate = load /. mean_service in
  let analytic =
    Queueing.mg1_mean_response ~arrival_rate ~mean_service ~second_moment
  in
  let sim = Metrics.avg_response metrics in
  check_bool
    (Printf.sprintf "sim %.2f ms vs P-K %.2f ms" sim analytic)
    true
    (Float.abs (sim -. analytic) /. analytic < 0.1)

let test_mg1_unstable () =
  check_bool "rho >= 1 -> infinity" true
    (Queueing.mg1_mean_wait ~arrival_rate:0.2 ~mean_service:10.0
       ~second_moment:200.0
    = infinity)

let prop_tail_decreasing_in_servers =
  QCheck.Test.make ~name:"more servers, lighter tail (same arrival rate)" ~count:100
    QCheck.(pair (QCheck.float_range 0.01 0.04) (QCheck.float_range 5.0 100.0))
    (fun (lambda, t) ->
      let mu = 0.05 in
      let tail m = Queueing.mmm_response_tail ~servers:m ~arrival_rate:lambda ~service_rate:mu ~t in
      tail 2 >= tail 3 -. 1e-9 && tail 3 >= tail 5 -. 1e-9)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "analytic"
    [
      ( "erlang-c",
        [
          Alcotest.test_case "single server" `Quick test_erlang_c_single_server;
          Alcotest.test_case "known values" `Quick test_erlang_c_known_value;
          Alcotest.test_case "bounds" `Quick test_erlang_c_bounds;
        ] );
      ( "response-tail",
        [
          Alcotest.test_case "M/M/1 closed form" `Quick test_mm1_tail_closed_form;
          Alcotest.test_case "M/M/m properties" `Quick test_mmm_tail_properties;
          Alcotest.test_case "matches simulation (m=1)" `Slow
            test_mmm_tail_matches_simulation_m1;
          Alcotest.test_case "mean response" `Quick test_mmm_mean_response;
          qtest prop_tail_decreasing_in_servers;
        ] );
      ( "sla-loss",
        [ Alcotest.test_case "expected loss" `Quick test_expected_sla_loss ] );
      ( "mg1",
        [
          Alcotest.test_case "reduces to M/M/1" `Quick test_mg1_reduces_to_mm1;
          Alcotest.test_case "matches SSBM simulation" `Slow
            test_mg1_matches_ssbm_simulation;
          Alcotest.test_case "unstable" `Quick test_mg1_unstable;
        ] );
    ]
