(* Tests for the workload substrate: service distributions, SSBM,
   SLA assignment, estimation error and trace generation. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Service distributions *)

let test_deterministic () =
  let d = Service_dist.deterministic 7.0 in
  let rng = Prng.create 1 in
  for _ = 1 to 10 do
    check_float "always 7" 7.0 (Service_dist.sample d rng)
  done;
  check_float "mean" 7.0 (Option.get (Service_dist.theoretical_mean d))

let test_uniform_bounds () =
  let d = Service_dist.uniform ~lo:2.0 ~hi:5.0 in
  let rng = Prng.create 2 in
  for _ = 1 to 1000 do
    let x = Service_dist.sample d rng in
    check_bool "in range" true (x >= 2.0 && x < 5.0)
  done;
  check_float "mean" 3.5 (Option.get (Service_dist.theoretical_mean d))

let test_exponential_mean () =
  let d = Service_dist.exponential ~mean:20.0 in
  let rng = Prng.create 3 in
  let m = Service_dist.empirical_mean d rng ~samples:100_000 in
  check_bool "empirical near 20" true (Float.abs (m -. 20.0) < 0.5);
  check_float "theoretical" 20.0 (Option.get (Service_dist.theoretical_mean d))

let test_pareto_support_and_mean () =
  let d = Service_dist.pareto ~x_min:1.0 ~alpha:1.0 () in
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    check_bool "above x_min" true (Service_dist.sample d rng >= 1.0)
  done;
  check_bool "alpha<=1 has no mean" true (Service_dist.theoretical_mean d = None);
  let d2 = Service_dist.pareto ~x_min:1.0 ~alpha:2.0 () in
  check_float "alpha=2 mean" 2.0 (Option.get (Service_dist.theoretical_mean d2))

let test_pareto_cap () =
  let d = Service_dist.pareto ~cap:100.0 ~x_min:1.0 ~alpha:1.0 () in
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    check_bool "capped" true (Service_dist.sample d rng <= 100.0)
  done

let test_empirical_sampling () =
  let d = Service_dist.empirical [| 1.0; 2.0; 3.0 |] in
  let rng = Prng.create 6 in
  let seen = Array.make 3 0 in
  for _ = 1 to 3000 do
    let x = Service_dist.sample d rng in
    check_bool "a known value" true (x = 1.0 || x = 2.0 || x = 3.0);
    seen.(int_of_float x - 1) <- seen.(int_of_float x - 1) + 1
  done;
  Array.iter (fun c -> check_bool "each value drawn" true (c > 800)) seen;
  check_float "mean" 2.0 (Option.get (Service_dist.theoretical_mean d))

let test_invalid_dists () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "neg deterministic" true (raises (fun () -> Service_dist.deterministic (-1.0)));
  check_bool "bad uniform" true (raises (fun () -> Service_dist.uniform ~lo:5.0 ~hi:2.0));
  check_bool "bad exp" true (raises (fun () -> Service_dist.exponential ~mean:0.0));
  check_bool "bad pareto" true
    (raises (fun () -> Service_dist.pareto ~x_min:0.0 ~alpha:1.0 ()));
  check_bool "cap below x_min" true
    (raises (fun () -> Service_dist.pareto ~cap:0.5 ~x_min:1.0 ~alpha:1.0 ()));
  check_bool "empty empirical" true (raises (fun () -> Service_dist.empirical [||]))

(* ------------------------------------------------------------------ *)
(* SSBM *)

let test_ssbm_table () =
  check_int "13 queries" 13 Ssbm.count;
  check_float "q3 is 0.2ms" 0.2 Ssbm.times_ms.(2);
  check_float "q11 is 29.2ms" 29.2 Ssbm.times_ms.(10);
  (* The paper reports an average of 10.2 ms. *)
  check_bool "average 10.2 ms" true (Float.abs (Ssbm.mean_time_ms -. 10.26) < 0.01)

let test_ssbm_sampling_uniform () =
  let rng = Prng.create 7 in
  let counts = Array.make Ssbm.count 0 in
  let n = 13_000 in
  for _ = 1 to n do
    let e = Ssbm.sample rng in
    let idx =
      match Array.to_list Ssbm.queries |> List.mapi (fun i q -> (i, q)) |> List.find_opt (fun (_, q) -> q == e) with
      | Some (i, _) -> i
      | None -> -1
    in
    check_bool "known entry" true (idx >= 0);
    counts.(idx) <- counts.(idx) + 1
  done;
  Array.iter (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300)) counts

(* ------------------------------------------------------------------ *)
(* Workloads and SLA assignment *)

let test_nominal_means () =
  check_float "Exp" 20.0 (Workloads.nominal_mean_ms Workloads.Exp);
  check_float "Pareto" 25.0 (Workloads.nominal_mean_ms Workloads.Pareto);
  check_bool "SSBM" true
    (Float.abs (Workloads.nominal_mean_ms Workloads.Ssbm_wl -. 10.26) < 0.01)

let test_sla_a_assignment () =
  let rng = Prng.create 8 in
  let sla = Workloads.assign_sla Workloads.Exp Workloads.Sla_a ~mu:20.0 ~size:5.0 rng in
  check_bool "is the 1/0 profile" true (Sla.equal sla (Sla_profiles.sla_a ~mu:20.0))

let test_sla_b_mixture_ratio () =
  let rng = Prng.create 9 in
  let mu = 20.0 in
  let customer = Sla_profiles.sla_b_customer ~mu in
  let n = 22_000 in
  let cust = ref 0 in
  for _ = 1 to n do
    let sla = Workloads.assign_sla Workloads.Exp Workloads.Sla_b ~mu ~size:5.0 rng in
    if Sla.equal sla customer then incr cust
  done;
  let frac = Float.of_int !cust /. Float.of_int n in
  (* 10:1 ratio -> ~0.909. *)
  check_bool "ratio near 10/11" true (Float.abs (frac -. (10.0 /. 11.0)) < 0.01)

let test_sla_b_ssbm_correlated () =
  let rng = Prng.create 10 in
  let mu = 10.26 in
  let short =
    Workloads.assign_sla Workloads.Ssbm_wl Workloads.Sla_b ~mu ~size:6.4 rng
  in
  let long =
    Workloads.assign_sla Workloads.Ssbm_wl Workloads.Sla_b ~mu ~size:29.2 rng
  in
  check_bool "short query -> buyer" true
    (Sla.equal short (Sla_profiles.sla_b_customer ~mu));
  check_bool "long query -> employee" true
    (Sla.equal long (Sla_profiles.sla_b_employee ~mu))

(* ------------------------------------------------------------------ *)
(* Estimation error *)

let test_error_none () =
  let rng = Prng.create 11 in
  check_bool "none" true (Estimate_error.is_none Estimate_error.none);
  check_float "factor 1" 1.0 (Estimate_error.draw_factor Estimate_error.none rng);
  check_float "identity" 3.0
    (Estimate_error.actual_of_estimate Estimate_error.none rng ~estimate:3.0)

let test_error_gaussian_moments () =
  let e = Estimate_error.gaussian ~sigma2:0.2 () in
  let rng = Prng.create 12 in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add s (Estimate_error.draw_factor e rng)
  done;
  (* sigma = sqrt(0.2) ~ 0.447; clamping at 0.05 barely moves the mean. *)
  check_bool "mean near 1" true (Float.abs (Stats.mean s -. 1.0) < 0.02);
  check_bool "sd near sqrt(0.2)" true (Float.abs (Stats.stddev s -. sqrt 0.2) < 0.02)

let test_error_floor () =
  let e = Estimate_error.gaussian ~sigma2:1.0 () in
  let rng = Prng.create 13 in
  for _ = 1 to 10_000 do
    check_bool "factor >= floor" true (Estimate_error.draw_factor e rng >= 0.05)
  done

let test_error_invalid () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "neg sigma2" true
    (raises (fun () -> Estimate_error.gaussian ~sigma2:(-0.1) ()));
  check_bool "bad floor" true
    (raises (fun () -> Estimate_error.gaussian ~floor:0.0 ~sigma2:0.1 ()))

(* ------------------------------------------------------------------ *)
(* Traces *)

let base_cfg ?(error = Estimate_error.none) ?(kind = Workloads.Exp)
    ?(profile = Workloads.Sla_a) ?(load = 0.9) ?(servers = 1) ?(n = 2000)
    ?(seed = 123) () =
  Trace.config ~error ~kind ~profile ~load ~servers ~n_queries:n ~seed ()

let test_trace_deterministic () =
  let a = Trace.generate (base_cfg ()) in
  let b = Trace.generate (base_cfg ()) in
  check_int "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i q ->
      check_float "same arrival" q.Query.arrival b.(i).Query.arrival;
      check_float "same size" q.Query.size b.(i).Query.size)
    a

let test_trace_seed_changes_draws () =
  let a = Trace.generate (base_cfg ~seed:1 ()) in
  let b = Trace.generate (base_cfg ~seed:2 ()) in
  check_bool "different traces" true
    (Array.exists2 (fun x y -> x.Query.size <> y.Query.size) a b)

let test_trace_arrivals_sorted_and_ids () =
  let qs = Trace.generate (base_cfg ()) in
  Array.iteri
    (fun i q ->
      check_int "id is index" i q.Query.id;
      if i > 0 then
        check_bool "arrivals non-decreasing" true
          (q.Query.arrival >= qs.(i - 1).Query.arrival))
    qs

let test_trace_load_calibration () =
  (* Total estimated work ~= load * span of arrivals, for 1 server. *)
  let qs = Trace.generate (base_cfg ~n:20_000 ()) in
  let work = Array.fold_left (fun acc q -> acc +. q.Query.size) 0.0 qs in
  let span = qs.(Array.length qs - 1).Query.arrival in
  let rho = work /. span in
  check_bool "utilization near 0.9" true (Float.abs (rho -. 0.9) < 0.05)

let test_trace_load_calibration_pareto () =
  (* The heavy-tailed workload must also hit the target load: this is
     the empirical-mean calibration at work. *)
  let qs = Trace.generate (base_cfg ~kind:Workloads.Pareto ~n:20_000 ()) in
  let work = Array.fold_left (fun acc q -> acc +. q.Query.size) 0.0 qs in
  let span = qs.(Array.length qs - 1).Query.arrival in
  let rho = work /. span in
  check_bool "utilization near 0.9" true (Float.abs (rho -. 0.9) < 0.1)

let test_trace_error_decouples_est_and_actual () =
  let e = Estimate_error.gaussian ~sigma2:0.2 () in
  let qs = Trace.generate (base_cfg ~error:e ()) in
  let differs = Array.exists (fun q -> q.Query.size <> q.Query.est_size) qs in
  check_bool "sizes differ from estimates" true differs

let test_trace_error_paired_draws () =
  (* Changing only the error model must keep estimates and arrivals
     identical (paired comparison, Sec 7.5). *)
  let a = Trace.generate (base_cfg ()) in
  let b =
    Trace.generate (base_cfg ~error:(Estimate_error.gaussian ~sigma2:1.0 ()) ())
  in
  Array.iteri
    (fun i q ->
      check_float "same estimate" q.Query.est_size b.(i).Query.est_size)
    a

let test_trace_no_error_means_exact () =
  let qs = Trace.generate (base_cfg ()) in
  Array.iter (fun q -> check_float "est = actual" q.Query.size q.Query.est_size) qs

let test_trace_invalid () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "bad load" true (raises (fun () -> base_cfg ~load:0.0 ()));
  check_bool "bad servers" true (raises (fun () -> base_cfg ~servers:0 ()));
  check_bool "bad count" true (raises (fun () -> base_cfg ~n:0 ()))

let test_with_servers () =
  let cfg = base_cfg ~servers:2 () in
  let cfg5 = Trace.with_servers cfg 5 in
  check_int "servers changed" 5 cfg5.Trace.servers;
  check_int "rest unchanged" cfg.Trace.n_queries cfg5.Trace.n_queries

(* ------------------------------------------------------------------ *)
(* Trace IO *)

let test_trace_io_roundtrip_line () =
  let sla =
    Sla.make ~levels:[ { bound = 12.5; gain = 2.0 }; { bound = 60.0; gain = 0.5 } ]
      ~penalty:3.25
  in
  let q = Query.make ~id:7 ~arrival:1.5 ~size:9.75 ~est_size:8.5 ~sla () in
  let q' = Trace_io.query_of_string (Trace_io.string_of_query q) in
  check_int "id" q.Query.id q'.Query.id;
  check_float "arrival" q.Query.arrival q'.Query.arrival;
  check_float "size" q.Query.size q'.Query.size;
  check_float "est" q.Query.est_size q'.Query.est_size;
  check_bool "sla equal" true (Sla.equal q.Query.sla q'.Query.sla)

let test_trace_io_file_roundtrip () =
  let queries = Trace.generate (base_cfg ~n:300 ()) in
  let path = Filename.temp_file "slatree" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path queries;
      let loaded = Trace_io.load path in
      check_int "count" (Array.length queries) (Array.length loaded);
      Array.iteri
        (fun i q ->
          check_float "arrival exact" q.Query.arrival loaded.(i).Query.arrival;
          check_float "size exact" q.Query.size loaded.(i).Query.size;
          check_bool "sla equal" true (Sla.equal q.Query.sla loaded.(i).Query.sla))
        queries)

let test_trace_io_rejects_garbage () =
  let raises_parse f =
    match f () with exception Trace_io.Parse_error _ -> true | _ -> false
  in
  check_bool "bad line" true
    (raises_parse (fun () -> Trace_io.query_of_string "not,a,query"));
  check_bool "bad float" true
    (raises_parse (fun () -> Trace_io.query_of_string "1,x,2,3,0,5:1"));
  check_bool "bad level" true
    (raises_parse (fun () -> Trace_io.query_of_string "1,0,2,3,0,nope"));
  let path = Filename.temp_file "slatree" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "wrong header\n";
      close_out oc;
      check_bool "bad header" true (raises_parse (fun () -> Trace_io.load path)))

(* Hardened loading: NaN, negative times, backwards arrivals and
   malformed records must be rejected with a file:line position, not
   replayed into the simulator. *)
let load_lines lines =
  let path = Filename.temp_file "slatree" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      Trace_io.load path)

let header = "# slatree-trace v1"

let test_trace_io_rejects_invalid_values () =
  let rejected lines =
    match load_lines lines with
    | _ -> false
    | exception Trace_io.Parse_error _ -> true
  in
  check_bool "empty file" true (rejected []);
  (* Query.make's own arrival < 0.0 guard lets NaN through (NaN
     comparisons are all false) — the loader must reject it itself. *)
  check_bool "NaN arrival" true (rejected [ header; "0,nan,5,5,0,5:1" ]);
  check_bool "inf size" true (rejected [ header; "0,0,inf,5,0,5:1" ]);
  check_bool "negative arrival" true (rejected [ header; "0,-1,5,5,0,5:1" ]);
  check_bool "negative size" true (rejected [ header; "0,0,-5,5,0,5:1" ]);
  check_bool "bad SLA level" true (rejected [ header; "0,0,5,5,0,5" ]);
  check_bool "truncated record" true (rejected [ header; "0,0,5" ]);
  check_bool "backwards arrivals" true
    (rejected [ header; "0,10,5,5,0,5:1"; "1,3,5,5,0,5:1" ])

let test_trace_io_error_carries_position () =
  match load_lines [ header; "0,0,5,5,0,5:1"; "1,oops,5,5,0,5:1" ] with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Trace_io.Parse_error msg ->
    check_bool "position is line 3" true
      (let rec find i =
         i + 2 <= String.length msg
         && ((msg.[i] = ':' && msg.[i + 1] = '3' && msg.[i + 2] = ':') || find (i + 1))
       in
       find 0)

let test_trace_io_save_seq () =
  let queries = Trace.generate (base_cfg ~n:120 ()) in
  let path = Filename.temp_file "slatree" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let n = Trace_io.save_seq path (Array.to_seq queries) in
      check_int "count returned" 120 n;
      let eager = Filename.temp_file "slatree" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove eager)
        (fun () ->
          Trace_io.save eager queries;
          let read f =
            let ic = open_in f in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          in
          check_bool "save_seq = save" true (read path = read eager)))

let prop_trace_io_roundtrip =
  QCheck.Test.make ~name:"trace IO roundtrips random traces" ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let queries =
        Trace.generate (base_cfg ~kind:Workloads.Pareto ~profile:Workloads.Sla_b ~n:50 ~seed ())
      in
      let lines = Array.map Trace_io.string_of_query queries in
      let back = Array.map Trace_io.query_of_string lines in
      Array.for_all2
        (fun a b ->
          a.Query.id = b.Query.id
          && a.Query.arrival = b.Query.arrival
          && a.Query.size = b.Query.size
          && a.Query.est_size = b.Query.est_size
          && Sla.equal a.Query.sla b.Query.sla)
        queries back)

(* ------------------------------------------------------------------ *)
(* Bursty/diurnal arrivals *)

let diurnal_phases ?(period = 2_000.0) () =
  Bursty.diurnal ~period ~low:0.2 ~high:2.0 ()

let test_bursty_deterministic () =
  let a = Bursty.generate (base_cfg ()) (diurnal_phases ()) in
  let b = Bursty.generate (base_cfg ()) (diurnal_phases ()) in
  check_int "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i q ->
      check_float "same arrival" q.Query.arrival b.(i).Query.arrival;
      check_float "same size" q.Query.size b.(i).Query.size;
      check_float "same est" q.Query.est_size b.(i).Query.est_size)
    a

let test_bursty_seed_sensitivity () =
  let a = Bursty.generate (base_cfg ~seed:1 ()) (diurnal_phases ()) in
  let b = Bursty.generate (base_cfg ~seed:2 ()) (diurnal_phases ()) in
  check_bool "different traces" true
    (Array.exists2 (fun x y -> x.Query.arrival <> y.Query.arrival) a b)

let test_bursty_well_formed () =
  let qs = Bursty.generate (base_cfg ()) (diurnal_phases ()) in
  Array.iteri
    (fun i q ->
      check_int "id is index" i q.Query.id;
      if i > 0 then
        check_bool "arrivals non-decreasing" true
          (q.Query.arrival >= qs.(i - 1).Query.arrival))
    qs

let test_bursty_schedule_shapes () =
  let d = Bursty.diurnal ~steps:8 ~period:800.0 ~low:0.5 ~high:1.5 () in
  check_int "eight steps" 8 (Array.length d);
  check_float "period preserved" 800.0 (Bursty.period d);
  (* Raised cosine: symmetric about the midpoint, mean (low+high)/2. *)
  Alcotest.(check (float 1e-6)) "mean rho" 1.0 (Bursty.mean_rho d);
  Array.iter
    (fun p ->
      check_bool "within band" true (p.Bursty.rho >= 0.5 && p.Bursty.rho <= 1.5))
    d;
  let s = Bursty.square ~period:100.0 ~duty:0.25 ~low:0.1 ~high:2.0 in
  check_float "square period" 100.0 (Bursty.period s);
  Alcotest.(check (float 1e-9))
    "square mean" ((0.75 *. 0.1) +. (0.25 *. 2.0)) (Bursty.mean_rho s)

let test_bursty_bursts_visible () =
  (* On/off schedule: the on-phase must be far denser in arrivals per
     ms than the off-phase. *)
  let period = 1_000.0 in
  let phases = Bursty.square ~period ~duty:0.5 ~low:0.25 ~high:4.0 in
  let qs = Bursty.generate (base_cfg ~n:4_000 ()) phases in
  let in_low = ref 0 and in_high = ref 0 in
  Array.iter
    (fun q ->
      let pos = Float.rem q.Query.arrival period in
      if pos < 0.5 *. period then incr in_low else incr in_high)
    qs;
  check_bool
    (Printf.sprintf "on-phase dense (%d low vs %d high)" !in_low !in_high)
    true
    (Float.of_int !in_high > 4.0 *. Float.of_int !in_low)

let test_bursty_zero_rho_phase_skipped () =
  (* A silent phase produces no arrivals but generation still
     terminates with the full query count. *)
  let phases =
    [|
      { Bursty.duration = 500.0; rho = 2.0 };
      { Bursty.duration = 500.0; rho = 0.0 };
    |]
  in
  let qs = Bursty.generate (base_cfg ~n:1_000 ()) phases in
  check_int "full count" 1_000 (Array.length qs);
  Array.iter
    (fun q ->
      check_bool "never inside the silent half" true
        (Float.rem q.Query.arrival 1_000.0 < 500.0))
    qs

let test_bursty_invalid () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  let cfg = base_cfg () in
  check_bool "empty schedule" true (raises (fun () -> Bursty.generate cfg [||]));
  check_bool "non-positive duration" true
    (raises (fun () ->
         Bursty.generate cfg [| { Bursty.duration = 0.0; rho = 1.0 } |]));
  check_bool "negative rho" true
    (raises (fun () ->
         Bursty.generate cfg [| { Bursty.duration = 1.0; rho = -0.5 } |]));
  check_bool "all-silent schedule" true
    (raises (fun () ->
         Bursty.generate cfg [| { Bursty.duration = 1.0; rho = 0.0 } |]));
  check_bool "bad duty" true
    (raises (fun () -> Bursty.square ~period:10.0 ~duty:1.5 ~low:0.1 ~high:1.0))

let prop_trace_sizes_positive =
  QCheck.Test.make ~name:"generated sizes are positive" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let qs = Trace.generate (base_cfg ~n:200 ~seed ()) in
      Array.for_all (fun q -> q.Query.size > 0.0 && q.Query.est_size > 0.0) qs)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "workload"
    [
      ( "service-dist",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "uniform" `Quick test_uniform_bounds;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "pareto" `Quick test_pareto_support_and_mean;
          Alcotest.test_case "pareto cap" `Quick test_pareto_cap;
          Alcotest.test_case "empirical" `Quick test_empirical_sampling;
          Alcotest.test_case "invalid" `Quick test_invalid_dists;
        ] );
      ( "ssbm",
        [
          Alcotest.test_case "table values" `Quick test_ssbm_table;
          Alcotest.test_case "uniform sampling" `Quick test_ssbm_sampling_uniform;
        ] );
      ( "sla-assignment",
        [
          Alcotest.test_case "nominal means" `Quick test_nominal_means;
          Alcotest.test_case "SLA-A" `Quick test_sla_a_assignment;
          Alcotest.test_case "SLA-B 10:1 mixture" `Slow test_sla_b_mixture_ratio;
          Alcotest.test_case "SSBM correlation" `Quick test_sla_b_ssbm_correlated;
        ] );
      ( "estimate-error",
        [
          Alcotest.test_case "none" `Quick test_error_none;
          Alcotest.test_case "gaussian moments" `Slow test_error_gaussian_moments;
          Alcotest.test_case "floor" `Quick test_error_floor;
          Alcotest.test_case "invalid" `Quick test_error_invalid;
        ] );
      ( "trace",
        [
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_trace_seed_changes_draws;
          Alcotest.test_case "arrivals sorted, ids sequential" `Quick
            test_trace_arrivals_sorted_and_ids;
          Alcotest.test_case "load calibration (Exp)" `Slow test_trace_load_calibration;
          Alcotest.test_case "load calibration (Pareto)" `Slow
            test_trace_load_calibration_pareto;
          Alcotest.test_case "error decouples sizes" `Quick
            test_trace_error_decouples_est_and_actual;
          Alcotest.test_case "error keeps draws paired" `Quick
            test_trace_error_paired_draws;
          Alcotest.test_case "no error means exact" `Quick test_trace_no_error_means_exact;
          Alcotest.test_case "invalid configs" `Quick test_trace_invalid;
          Alcotest.test_case "with_servers" `Quick test_with_servers;
          qtest prop_trace_sizes_positive;
        ] );
      ( "bursty",
        [
          Alcotest.test_case "deterministic" `Quick test_bursty_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_bursty_seed_sensitivity;
          Alcotest.test_case "well formed" `Quick test_bursty_well_formed;
          Alcotest.test_case "schedule shapes" `Quick test_bursty_schedule_shapes;
          Alcotest.test_case "bursts visible" `Quick test_bursty_bursts_visible;
          Alcotest.test_case "silent phase skipped" `Quick
            test_bursty_zero_rho_phase_skipped;
          Alcotest.test_case "invalid schedules" `Quick test_bursty_invalid;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "line roundtrip" `Quick test_trace_io_roundtrip_line;
          Alcotest.test_case "file roundtrip" `Quick test_trace_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_io_rejects_garbage;
          Alcotest.test_case "rejects invalid values" `Quick
            test_trace_io_rejects_invalid_values;
          Alcotest.test_case "errors carry file:line" `Quick
            test_trace_io_error_carries_position;
          Alcotest.test_case "save_seq" `Quick test_trace_io_save_seq;
          qtest prop_trace_io_roundtrip;
        ] );
    ]
