(* Tests for the SLA-tree core: the paper's running example (Figs 6-7),
   equivalence with two independent naive oracles, the additive
   property, what-if decision helpers and the Table 7 greedy
   counterexample. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The paper's running example (Sec 3.3, Figs 6, 7).

   16 queries q1..q16; odd ids have positive slacks, listed here in
   increasing slack order as they appear as slack-tree leaves:
     slack: 10  20  30  40  50  60  70  80
     id:    11   5   3   7   1  15  13   9
   The 1/0 model gives postpone(1, 9, 32) = 2; the g/0 model with
   gains (id -> gain) 11->100, 5->200, 3->100, 7->300, 1->100, 15->100,
   13->200, 9->100 gives postpone(1, 9, 32) = 300. *)

let paper_units gains =
  let leaves = [ (11, 10.0); (5, 20.0); (3, 30.0); (7, 40.0);
                 (1, 50.0); (15, 60.0); (13, 70.0); (9, 80.0) ] in
  Array.of_list
    (List.map
       (fun (id, slack) ->
         { Slack_units.uid = id; slack; gain = gains id })
       leaves)

let paper_gains_g0 = function
  | 11 -> 100.0 | 5 -> 200.0 | 3 -> 100.0 | 7 -> 300.0
  | 1 -> 100.0 | 15 -> 100.0 | 13 -> 200.0 | 9 -> 100.0
  | _ -> assert false

let test_paper_example_10 () =
  let tree = Cascade_tree.build (paper_units (fun _ -> 1.0)) in
  check_float "postpone(1,9,32) = 2" 2.0
    (Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n:9 ~tau:32.0)

let test_paper_example_g0 () =
  let tree = Cascade_tree.build (paper_units paper_gains_g0) in
  check_float "postpone(1,9,32) = 300" 300.0
    (Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n:9 ~tau:32.0)

let test_paper_example_totals () =
  let tree = Cascade_tree.build (paper_units paper_gains_g0) in
  (* Root cumulative profits from Fig 7: ids 1,3,5,7,9,11,13,15 ->
     100,200,400,700,800,900,1100,1200. *)
  List.iter
    (fun (n, expected) ->
      check_float (Printf.sprintf "cum at id %d" n) expected
        (Cascade_tree.prefix_total tree ~n))
    [ (1, 100.0); (3, 200.0); (5, 400.0); (7, 700.0); (9, 800.0);
      (11, 900.0); (13, 1100.0); (15, 1200.0) ];
  check_float "grand total" 1200.0 (Cascade_tree.total tree)

let test_paper_example_more_questions () =
  let tree = Cascade_tree.build (paper_units paper_gains_g0) in
  let q n tau = Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n ~tau in
  check_float "tau below all slacks" 0.0 (q 15 10.0);
  check_float "tau just above min slack" 100.0 (q 15 10.5);
  check_float "tau above everything" 1200.0 (q 15 1000.0);
  check_float "n excludes large ids" 100.0 (q 3 35.0);
  check_float "n below smallest id" 0.0 (q 0 1000.0)

(* The general-profit-model example (Figs 9-10): the same 8 units as
   Fig 7 but owned by 4 queries with 2-level SLAs, so descendant lists
   merge duplicate ids. Leaves in slack order carry ids
   3,2,1,2,1,4,4,3 with gains 100,200,100,300,100,100,200,100; the
   root's merged list is [1;2;3;4] with cumulative profits
   200,700,900,1200. *)
let fig10_units () =
  let leaves =
    [ (3, 10.0, 100.0); (2, 20.0, 200.0); (1, 30.0, 100.0); (2, 40.0, 300.0);
      (1, 50.0, 100.0); (4, 60.0, 100.0); (4, 70.0, 200.0); (3, 80.0, 100.0) ]
  in
  Array.of_list
    (List.map (fun (uid, slack, gain) -> { Slack_units.uid; slack; gain }) leaves)

let test_paper_example_general_model () =
  let tree = Cascade_tree.build (fig10_units ()) in
  Cascade_tree.check_invariants tree;
  List.iter
    (fun (n, expected) ->
      check_float (Printf.sprintf "root cum at id %d" n) expected
        (Cascade_tree.prefix_total tree ~n))
    [ (1, 200.0); (2, 700.0); (3, 900.0); (4, 1200.0) ];
  (* postpone(1, 2, 45): units with slack < 45 and id <= 2: the
     slack-20 (200), slack-30 (100) and slack-40 (300) units. *)
  check_float "postpone over merged ids" 600.0
    (Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n:2 ~tau:45.0);
  check_float "log2 variant agrees" 600.0
    (Cascade_tree.prefix_loss_binary_search tree Cascade_tree.Lt ~n:2 ~tau:45.0)

let test_paper_example_log2_variant () =
  (* The pointer-free O(log^2) traversal (Sec 3.3.3) gives the same
     answers on the running example. *)
  let tree = Cascade_tree.build (paper_units paper_gains_g0) in
  check_float "postpone(1,9,32) = 300" 300.0
    (Cascade_tree.prefix_loss_binary_search tree Cascade_tree.Lt ~n:9 ~tau:32.0);
  check_float "full sweep" 1200.0
    (Cascade_tree.prefix_loss_binary_search tree Cascade_tree.Lt ~n:15 ~tau:1000.0)

let test_paper_example_invariants () =
  Cascade_tree.check_invariants (Cascade_tree.build (paper_units paper_gains_g0));
  Cascade_tree.check_invariants (Cascade_tree.build (paper_units (fun _ -> 1.0)))

(* ------------------------------------------------------------------ *)
(* Cascade tree unit tests *)

let test_tree_empty () =
  let tree = Cascade_tree.build [||] in
  check_int "no units" 0 (Cascade_tree.unit_count tree);
  check_float "no loss" 0.0 (Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n:5 ~tau:10.0);
  check_float "no total" 0.0 (Cascade_tree.total tree);
  check_int "depth 0" 0 (Cascade_tree.depth tree)

let test_tree_single () =
  let tree = Cascade_tree.build [| { Slack_units.uid = 2; slack = 5.0; gain = 3.0 } |] in
  let q mode n tau = Cascade_tree.prefix_loss tree mode ~n ~tau in
  check_float "lt miss" 0.0 (q Cascade_tree.Lt 2 5.0);
  check_float "lt hit" 3.0 (q Cascade_tree.Lt 2 5.1);
  check_float "le hit at boundary" 3.0 (q Cascade_tree.Le 2 5.0);
  check_float "le miss below" 0.0 (q Cascade_tree.Le 2 4.9);
  check_float "id excluded" 0.0 (q Cascade_tree.Lt 1 100.0)

let test_tree_duplicate_ids_merge () =
  (* Two units of the same query (a 2-level SLA) plus another query. *)
  let units =
    [|
      { Slack_units.uid = 0; slack = 5.0; gain = 100.0 };
      { Slack_units.uid = 0; slack = 10.0; gain = 50.0 };
      { Slack_units.uid = 1; slack = 7.0; gain = 30.0 };
    |]
  in
  let tree = Cascade_tree.build units in
  Cascade_tree.check_invariants tree;
  let q n tau = Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n ~tau in
  check_float "only first unit" 100.0 (q 0 6.0);
  check_float "both units of q0" 150.0 (q 0 11.0);
  check_float "all three" 180.0 (q 1 11.0);
  check_float "q0 partial + q1" 130.0 (q 1 8.0);
  check_float "total by id 0" 150.0 (Cascade_tree.prefix_total tree ~n:0)

let test_tree_equal_slacks () =
  (* Ties in the key must not confuse the split logic. *)
  let units =
    Array.init 8 (fun i ->
        { Slack_units.uid = i; slack = 10.0; gain = 1.0 })
  in
  let tree = Cascade_tree.build units in
  Cascade_tree.check_invariants tree;
  check_float "lt at tie" 0.0
    (Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n:7 ~tau:10.0);
  check_float "le at tie" 8.0
    (Cascade_tree.prefix_loss tree Cascade_tree.Le ~n:7 ~tau:10.0);
  check_float "lt above tie" 8.0
    (Cascade_tree.prefix_loss tree Cascade_tree.Lt ~n:7 ~tau:10.1)

let test_tree_depth_logarithmic () =
  let units =
    Array.init 1024 (fun i ->
        { Slack_units.uid = i; slack = Float.of_int i; gain = 1.0 })
  in
  let tree = Cascade_tree.build units in
  check_bool "depth <= log2 n + 1" true (Cascade_tree.depth tree <= 11)

(* ------------------------------------------------------------------ *)
(* Random instance generators *)

let gen_sla =
  QCheck.Gen.(
    let* n = 1 -- 3 in
    let* raw_bounds = list_repeat (n + 2) (float_range 1.0 150.0) in
    let* raw_gains = list_repeat (n + 2) (float_range 0.5 8.0) in
    let* penalty = float_range 0.0 4.0 in
    let bounds = List.sort_uniq Float.compare raw_bounds in
    let gains = List.rev (List.sort_uniq Float.compare raw_gains) in
    let k = min n (min (List.length bounds) (List.length gains)) in
    let levels =
      List.init k (fun i -> { Sla.bound = List.nth bounds i; gain = List.nth gains i })
    in
    return (Sla.make ~levels ~penalty))

let gen_query id =
  QCheck.Gen.(
    let* arrival = float_range 0.0 120.0 in
    let* size = float_range 0.1 40.0 in
    let* sla = gen_sla in
    return (Query.make ~id ~arrival ~size ~sla ()))

let gen_buffer =
  QCheck.Gen.(
    let* n = 1 -- 30 in
    let* queries = flatten_l (List.init n gen_query) in
    return (Array.of_list queries))

let arb_buffer =
  QCheck.make
    ~print:(fun qs ->
      Fmt.str "@[<v>%a@]" Fmt.(array ~sep:cut Query.pp) qs)
    gen_buffer

let now = 100.0

let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)

(* tau values that stress boundaries: exact slack values land on the
   Lt/Le edges. *)
let gen_range_tau n =
  QCheck.Gen.(
    let* m = 0 -- (n - 1) in
    let* n' = m -- (n - 1) in
    let* tau = float_range 0.0 400.0 in
    return (m, n', tau))

let arb_instance =
  QCheck.make
    ~print:(fun (qs, (m, n, tau)) ->
      Fmt.str "m=%d n=%d tau=%g@ %a" m n tau Fmt.(array ~sep:cut Query.pp) qs)
    QCheck.Gen.(
      let* qs = gen_buffer in
      let* rt = gen_range_tau (Array.length qs) in
      return (qs, rt))

let prop_postpone_matches_unit_oracle =
  QCheck.Test.make ~name:"tree postpone == unit-scan oracle" ~count:500 arb_instance
    (fun (qs, (m, n, tau)) ->
      let entries = Schedule.of_queries ~now qs in
      let tree = Sla_tree.of_entries ~now entries in
      close (Sla_tree.postpone tree ~m ~n ~tau)
        (Naive_whatif.postpone_by_units entries ~m ~n ~tau))

let prop_postpone_matches_recompute_oracle =
  QCheck.Test.make ~name:"tree postpone == profit-recompute oracle" ~count:500
    arb_instance
    (fun (qs, (m, n, tau)) ->
      let entries = Schedule.of_queries ~now qs in
      let tree = Sla_tree.of_entries ~now entries in
      close (Sla_tree.postpone tree ~m ~n ~tau)
        (Naive_whatif.postpone_by_recompute entries ~m ~n ~tau))

let prop_expedite_matches_unit_oracle =
  QCheck.Test.make ~name:"tree expedite == unit-scan oracle" ~count:500 arb_instance
    (fun (qs, (m, n, tau)) ->
      let entries = Schedule.of_queries ~now qs in
      let tree = Sla_tree.of_entries ~now entries in
      close (Sla_tree.expedite tree ~m ~n ~tau)
        (Naive_whatif.expedite_by_units entries ~m ~n ~tau))

let prop_expedite_matches_recompute_oracle =
  QCheck.Test.make ~name:"tree expedite == profit-recompute oracle" ~count:500
    arb_instance
    (fun (qs, (m, n, tau)) ->
      let entries = Schedule.of_queries ~now qs in
      let tree = Sla_tree.of_entries ~now entries in
      close (Sla_tree.expedite tree ~m ~n ~tau)
        (Naive_whatif.expedite_by_recompute entries ~m ~n ~tau))

let prop_additive_property =
  QCheck.Test.make ~name:"postpone(m,n) = postpone(0,n) - postpone(0,m-1)" ~count:300
    arb_instance
    (fun (qs, (m, n, tau)) ->
      let tree = Sla_tree.build ~now qs in
      let range = Sla_tree.postpone tree ~m ~n ~tau in
      let full = Sla_tree.postpone tree ~m:0 ~n ~tau in
      let prefix = if m = 0 then 0.0 else Sla_tree.postpone tree ~m:0 ~n:(m - 1) ~tau in
      close range (full -. prefix))

let prop_postpone_monotone_in_tau =
  QCheck.Test.make ~name:"postpone is monotone in tau" ~count:300
    QCheck.(pair arb_buffer (pair (QCheck.float_range 0.0 200.0) (QCheck.float_range 0.0 200.0)))
    (fun (qs, (t1, t2)) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let tree = Sla_tree.build ~now qs in
      let n = Sla_tree.length tree - 1 in
      Sla_tree.postpone tree ~m:0 ~n ~tau:lo
      <= Sla_tree.postpone tree ~m:0 ~n ~tau:hi +. 1e-9)

let prop_cascading_equals_binary_search =
  (* Fractional cascading is a pure optimization: both traversals must
     agree on every question, in both modes. *)
  QCheck.Test.make ~name:"cascaded == O(log^2) binary-search traversal" ~count:300
    arb_instance
    (fun (qs, (_, n, tau)) ->
      let entries = Schedule.of_queries ~now qs in
      let units = Slack_units.of_schedule entries in
      let pos, neg = Slack_units.partition units in
      let tp = Cascade_tree.build pos and tn = Cascade_tree.build neg in
      List.for_all
        (fun (tree, mode) ->
          close
            (Cascade_tree.prefix_loss tree mode ~n ~tau)
            (Cascade_tree.prefix_loss_binary_search tree mode ~n ~tau))
        [ (tp, Cascade_tree.Lt); (tp, Cascade_tree.Le);
          (tn, Cascade_tree.Lt); (tn, Cascade_tree.Le) ])

let prop_invariants_hold =
  QCheck.Test.make ~name:"tree structural invariants" ~count:200 arb_buffer
    (fun qs ->
      let entries = Schedule.of_queries ~now qs in
      let units = Slack_units.of_schedule entries in
      let pos, neg = Slack_units.partition units in
      Cascade_tree.check_invariants (Cascade_tree.build pos);
      Cascade_tree.check_invariants (Cascade_tree.build neg);
      true)

let prop_unit_partition_signs =
  QCheck.Test.make ~name:"partition splits by slack sign" ~count:200 arb_buffer
    (fun qs ->
      let entries = Schedule.of_queries ~now qs in
      let units = Slack_units.of_schedule entries in
      let pos, neg = Slack_units.partition units in
      Array.for_all (fun u -> u.Slack_units.slack >= 0.0) pos
      && Array.for_all (fun u -> u.Slack_units.slack > 0.0) neg
      && Array.length pos + Array.length neg = Array.length units)

(* ------------------------------------------------------------------ *)
(* Facade unit tests *)

let mk_query ?(est = None) id arrival size bound gain =
  let sla = Sla.single_step ~bound ~gain in
  Query.make ?est_size:est ~id ~arrival ~size ~sla ()

let test_facade_basic_postpone () =
  (* Two queries back to back from t=0: q0 (size 10, deadline 15),
     q1 (size 10, deadline 25). Completions: 10 and 20. Slacks: 5 and 5. *)
  let qs = [| mk_query 0 0.0 10.0 15.0 1.0; mk_query 1 0.0 10.0 25.0 2.0 |] in
  let tree = Sla_tree.build ~now:0.0 qs in
  check_float "tau within both slacks" 0.0 (Sla_tree.postpone tree ~m:0 ~n:1 ~tau:5.0);
  check_float "tau kills both" 3.0 (Sla_tree.postpone tree ~m:0 ~n:1 ~tau:5.1);
  check_float "only q1" 2.0 (Sla_tree.postpone tree ~m:1 ~n:1 ~tau:5.1);
  check_float "zero tau" 0.0 (Sla_tree.postpone tree ~m:0 ~n:1 ~tau:0.0)

let test_facade_basic_expedite () =
  (* q0 already late: deadline 5 but completes at 10 (tardiness 5). *)
  let qs = [| mk_query 0 0.0 10.0 5.0 1.0; mk_query 1 0.0 10.0 50.0 1.0 |] in
  let tree = Sla_tree.build ~now:0.0 qs in
  check_float "not enough expedite" 0.0 (Sla_tree.expedite tree ~m:0 ~n:1 ~tau:4.9);
  check_float "exactly enough" 1.0 (Sla_tree.expedite tree ~m:0 ~n:1 ~tau:5.0);
  check_float "recovers only q0" 1.0 (Sla_tree.expedite tree ~m:0 ~n:1 ~tau:100.0)

let test_facade_bad_args () =
  let qs = [| mk_query 0 0.0 1.0 5.0 1.0 |] in
  let tree = Sla_tree.build ~now:0.0 qs in
  check_bool "bad range raises" true
    (match Sla_tree.postpone tree ~m:0 ~n:1 ~tau:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "negative tau raises" true
    (match Sla_tree.postpone tree ~m:0 ~n:0 ~tau:(-1.0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_facade_unit_counts () =
  (* One on-time 2-level query and one hopelessly late one. *)
  let sla2 =
    Sla.make ~levels:[ { bound = 100.0; gain = 2.0 }; { bound = 200.0; gain = 1.0 } ]
      ~penalty:0.0
  in
  let q0 = Query.make ~id:0 ~arrival:0.0 ~size:1.0 ~sla:sla2 () in
  let q1 = mk_query 1 0.0 1.0 0.5 1.0 in
  let tree = Sla_tree.build ~now:0.0 [| q0; q1 |] in
  let slack_n, tardy_n = Sla_tree.unit_counts tree in
  check_int "slack units" 2 slack_n;
  check_int "tardy units" 1 tardy_n

let test_facade_profit_at_stake () =
  let qs = [| mk_query 0 0.0 10.0 15.0 1.0; mk_query 1 0.0 10.0 25.0 2.0 |] in
  let tree = Sla_tree.build ~now:0.0 qs in
  check_float "stake prefix 0" 1.0 (Sla_tree.profit_at_stake tree ~n:0);
  check_float "stake total" 3.0 (Sla_tree.total_profit_at_stake tree);
  check_float "nothing recoverable" 0.0 (Sla_tree.total_recoverable_profit tree)

(* ------------------------------------------------------------------ *)
(* What-if helpers *)

let reorder_rush qs i =
  let n = Array.length qs in
  Array.init n (fun k ->
      if k = 0 then qs.(i)
      else if k <= i then qs.(k - 1)
      else qs.(k))

let prop_rush_net_gain_matches_brute_force =
  QCheck.Test.make ~name:"rush_net_gain == brute-force reschedule delta" ~count:300
    QCheck.(pair arb_buffer small_int)
    (fun (qs, raw_i) ->
      let n = Array.length qs in
      let i = raw_i mod n in
      let tree = Sla_tree.build ~now qs in
      let before = Naive_whatif.scheduled_profit (Schedule.of_queries ~now qs) in
      let after =
        Naive_whatif.scheduled_profit (Schedule.of_queries ~now (reorder_rush qs i))
      in
      close (What_if.rush_net_gain tree i) (after -. before))

let prop_insertion_delta_matches_brute_force =
  QCheck.Test.make ~name:"insertion_delta == brute-force insert delta" ~count:300
    QCheck.(triple arb_buffer small_int (QCheck.float_range 0.1 30.0))
    (fun (qs, raw_pos, size) ->
      let n = Array.length qs in
      let pos = raw_pos mod (n + 1) in
      let newcomer = mk_query 999 now size 40.0 3.0 in
      let tree = Sla_tree.build ~now qs in
      let inserted =
        Array.init (n + 1) (fun k ->
            if k < pos then qs.(k) else if k = pos then newcomer else qs.(k - 1))
      in
      let before = Naive_whatif.scheduled_profit (Schedule.of_queries ~now qs) in
      let after = Naive_whatif.scheduled_profit (Schedule.of_queries ~now inserted) in
      close (What_if.insertion_delta tree ~query:newcomer ~pos) (after -. before))

let test_best_rush_prefers_earliest_on_ties () =
  (* Identical queries: nothing improves, so position 0 must win. *)
  let qs = Array.init 5 (fun i -> mk_query i 0.0 1.0 100.0 1.0) in
  let tree = Sla_tree.build ~now:0.0 qs in
  match What_if.best_rush tree with
  | Some (0, g) -> check_float "no gain" 0.0 g
  | Some (i, _) -> Alcotest.failf "expected head, got %d" i
  | None -> Alcotest.fail "no answer"

let test_best_rush_picks_urgent () =
  (* q1 misses its deadline unless rushed; rushing it costs q0 nothing. *)
  let q0 = mk_query 0 0.0 10.0 100.0 1.0 in
  let q1 = mk_query 1 0.0 2.0 5.0 5.0 in
  let tree = Sla_tree.build ~now:0.0 [| q0; q1 |] in
  match What_if.best_rush tree with
  | Some (1, g) -> check_float "saves q1's 5" 5.0 g
  | Some (i, g) -> Alcotest.failf "expected 1, got %d (gain %g)" i g
  | None -> Alcotest.fail "no answer"

let test_idle_server_profit () =
  let q = mk_query 0 50.0 10.0 20.0 4.0 in
  check_float "on time on idle server" 4.0 (What_if.idle_server_profit ~now:55.0 q);
  check_float "too late even idle" 0.0 (What_if.idle_server_profit ~now:65.0 q)

(* ------------------------------------------------------------------ *)
(* Expedite applications (footnote 4) *)

let test_recovery_curve () =
  (* One late query (tardiness 5) and one on-time query. *)
  let qs = [| mk_query 0 0.0 10.0 5.0 2.0; mk_query 1 0.0 10.0 50.0 1.0 |] in
  let tree = Sla_tree.build ~now:0.0 qs in
  let curve = What_if.recovery_curve tree ~taus:[ 1.0; 5.0; 100.0 ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "curve" [ (1.0, 0.0); (5.0, 2.0); (100.0, 2.0) ] curve

let prop_recovery_curve_monotone =
  QCheck.Test.make ~name:"recovery curve is non-decreasing" ~count:200 arb_buffer
    (fun qs ->
      let tree = Sla_tree.build ~now qs in
      let curve = What_if.recovery_curve tree ~taus:[ 1.0; 5.0; 20.0; 80.0; 300.0 ] in
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono curve)

let test_best_maintenance_slot () =
  (* Two queries: q0 fragile (slack 2), q1 relaxed (slack 100). A
     10-unit pause before position 0 or 1 kills q0's or nothing:
     - p=0: postpones both -> loses q0's gain 3 (q1 survives);
     - p=1: postpones only q1 -> loses nothing;
     - p=2: after everything -> loses nothing; ties resolve late. *)
  let qs = [| mk_query 0 0.0 10.0 12.0 3.0; mk_query 1 0.0 10.0 120.0 1.0 |] in
  let tree = Sla_tree.build ~now:0.0 qs in
  (match What_if.best_maintenance_slot tree ~duration:10.0 with
  | Some (2, loss) -> check_float "free at the end" 0.0 loss
  | Some (p, l) -> Alcotest.failf "expected slot 2, got %d (loss %g)" p l
  | None -> Alcotest.fail "no slot");
  (* Must start by t=12: position 2 (start 20) is out; position 1
     (start 10) costs 0. *)
  (match What_if.best_maintenance_slot ~latest_start:12.0 tree ~duration:10.0 with
  | Some (1, loss) -> check_float "slot 1 free" 0.0 loss
  | Some (p, l) -> Alcotest.failf "expected slot 1, got %d (loss %g)" p l
  | None -> Alcotest.fail "no slot");
  (* Must start immediately: only position 0, losing q0's 3. *)
  match What_if.best_maintenance_slot ~latest_start:0.0 tree ~duration:10.0 with
  | Some (0, loss) -> check_float "q0 sacrificed" 3.0 loss
  | Some (p, l) -> Alcotest.failf "expected slot 0, got %d (loss %g)" p l
  | None -> Alcotest.fail "no slot"

let test_stall_impact () =
  (* Three queries with slacks 5, 15, 40 (gains 1 each). *)
  let qs =
    [|
      mk_query 0 0.0 10.0 15.0 1.0;
      mk_query 1 0.0 10.0 35.0 1.0;
      mk_query 2 0.0 10.0 70.0 1.0;
    |]
  in
  let tree = Sla_tree.build ~now:0.0 qs in
  let lost, recovered = What_if.stall_impact tree ~stall:20.0 ~catch_up:0.0 in
  check_float "stall 20 kills slacks 5 and 15" 2.0 lost;
  check_float "no catch-up" 0.0 recovered;
  let lost2, recovered2 = What_if.stall_impact tree ~stall:20.0 ~catch_up:10.0 in
  check_float "lost unchanged" 2.0 lost2;
  (* With 10 units of catch-up the net delay is 10: only slack 5 dies,
     so the slack-15 unit is clawed back. *)
  check_float "one unit recovered" 1.0 recovered2;
  let _, recovered3 = What_if.stall_impact tree ~stall:20.0 ~catch_up:50.0 in
  check_float "full catch-up recovers all" 2.0 recovered3

(* ------------------------------------------------------------------ *)
(* Regressions: empty-buffer probes, maintenance-slot tie-breaking and
   the pre-sized unit expansion. *)

let test_empty_tree_probes () =
  let tree = Sla_tree.build ~now:0.0 [||] in
  check_int "length" 0 (Sla_tree.length tree);
  check_float "postpone" 0.0 (Sla_tree.postpone tree ~m:0 ~n:(-1) ~tau:5.0);
  check_float "expedite" 0.0 (Sla_tree.expedite tree ~m:0 ~n:(-1) ~tau:5.0);
  check_float "any range answers 0" 0.0 (Sla_tree.postpone tree ~m:3 ~n:7 ~tau:1.0);
  check_float "insertion into empty = own profit" 2.0
    (What_if.insertion_delta tree ~query:(mk_query 0 0.0 1.0 100.0 2.0) ~pos:0);
  check_bool "negative tau still raises" true
    (match Sla_tree.postpone tree ~m:0 ~n:(-1) ~tau:(-1.0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_empty_tree_whatif () =
  (* The applications need no emptiness guards of their own: every
     question over an empty buffer answers 0 / None through the probe
     layer. *)
  let tree = Sla_tree.build ~now:0.0 [||] in
  check_bool "best_rush none" true (What_if.best_rush tree = None);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "recovery curve all zero"
    [ (1.0, 0.0); (10.0, 0.0) ]
    (What_if.recovery_curve tree ~taus:[ 1.0; 10.0 ]);
  let lost, recovered = What_if.stall_impact tree ~stall:5.0 ~catch_up:2.0 in
  check_float "nothing lost" 0.0 lost;
  check_float "nothing recovered" 0.0 recovered;
  match What_if.best_maintenance_slot tree ~duration:10.0 with
  | Some (0, loss) -> check_float "slot 0 free" 0.0 loss
  | Some (p, l) -> Alcotest.failf "expected slot 0, got %d (loss %g)" p l
  | None -> Alcotest.fail "no slot"

let test_maintenance_slot_latest_on_ties () =
  (* Every query is so relaxed that any pause loses nothing: all n+1
     slots tie at 0.0 and the latest must win (maintenance as late as
     possible). *)
  let qs = Array.init 4 (fun i -> mk_query i 0.0 1.0 1000.0 1.0) in
  let tree = Sla_tree.build ~now:0.0 qs in
  (match What_if.best_maintenance_slot tree ~duration:2.0 with
  | Some (4, loss) -> check_float "latest slot" 0.0 loss
  | Some (p, l) -> Alcotest.failf "expected slot 4, got %d (loss %g)" p l
  | None -> Alcotest.fail "no slot");
  (* With a latest-start cap the latest ALLOWED slot wins the tie:
     unit sizes put slot p's start at p, so 2.5 allows slots 0..2. *)
  match What_if.best_maintenance_slot ~latest_start:2.5 tree ~duration:2.0 with
  | Some (2, loss) -> check_float "latest allowed slot" 0.0 loss
  | Some (p, l) -> Alcotest.failf "expected slot 2, got %d (loss %g)" p l
  | None -> Alcotest.fail "no slot"

let prop_maintenance_slot_matches_reference =
  (* The downto/strict-< scan equals the spec: minimum loss, latest
     slot on ties. Both sides compute losses by the same expression, so
     comparison is exact — no float-equality tie-break is involved. *)
  QCheck.Test.make ~name:"maintenance slot == latest-argmin reference" ~count:300
    QCheck.(pair arb_buffer (QCheck.float_range 0.0 60.0))
    (fun (qs, duration) ->
      let tree = Sla_tree.build ~now qs in
      let n = Sla_tree.length tree in
      let loss p =
        if p >= n then 0.0
        else Sla_tree.postpone tree ~m:p ~n:(n - 1) ~tau:duration
      in
      let best = ref (0, loss 0) in
      for p = 1 to n do
        let l = loss p in
        let _, bl = !best in
        if l <= bl then best := (p, l)
      done;
      What_if.best_maintenance_slot tree ~duration = Some !best)

(* The historical list-based unit expansion, kept as the reference the
   pre-sized two-pass implementation must match byte for byte. *)
let reference_units entries =
  let units = ref [] in
  Array.iteri
    (fun pos e ->
      let comps, _ = Sla.decompose e.Schedule.query.Query.sla in
      List.iter
        (fun { Sla.comp_bound; comp_gain } ->
          units :=
            {
              Slack_units.uid = pos;
              slack = Schedule.slack e ~bound:comp_bound;
              gain = comp_gain;
            }
            :: !units)
        comps)
    entries;
  Array.of_list (List.rev !units)

let unit_eq a b =
  a.Slack_units.uid = b.Slack_units.uid
  && Int64.equal
       (Int64.bits_of_float a.Slack_units.slack)
       (Int64.bits_of_float b.Slack_units.slack)
  && Int64.equal
       (Int64.bits_of_float a.Slack_units.gain)
       (Int64.bits_of_float b.Slack_units.gain)

let units_eq a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i u -> if not (unit_eq u b.(i)) then ok := false) a;
       !ok
     end

let prop_slack_units_presized_identical =
  QCheck.Test.make ~name:"pre-sized expansion == list-based reference" ~count:300
    arb_buffer
    (fun qs ->
      let entries = Schedule.of_queries ~now qs in
      let units = Slack_units.of_schedule entries in
      let refu = reference_units entries in
      let pos, neg = Slack_units.partition units in
      let rpos =
        Array.of_list
          (List.filter
             (fun u -> u.Slack_units.slack >= 0.0)
             (Array.to_list refu))
      in
      let rneg =
        Array.of_list
          (List.filter_map
             (fun u ->
               if u.Slack_units.slack < 0.0 then
                 Some { u with Slack_units.slack = -.u.Slack_units.slack }
               else None)
             (Array.to_list refu))
      in
      units_eq units refu && units_eq pos rpos && units_eq neg rneg)

(* ------------------------------------------------------------------ *)
(* Table 7: the greedy counterexample, and the offline never-worse
   property (Sec 8.2). *)

let table7_queries () =
  [|
    mk_query 0 0.0 1.0 1.0 1.0;
    mk_query 1 0.0 0.5 1.0 0.6;
    mk_query 2 0.0 0.5 1.0 0.6;
  |]

let test_table7_greedy_keeps_q1 () =
  let tree = Sla_tree.build ~now:0.0 (table7_queries ()) in
  (* Rushing q2 or q3 loses q1's 1.0 for a 0.6 gain: net negative. *)
  check_bool "rush q2 negative" true (What_if.rush_net_gain tree 1 < 0.0);
  check_bool "rush q3 negative" true (What_if.rush_net_gain tree 2 < 0.0);
  match What_if.best_rush tree with
  | Some (0, _) -> ()
  | _ -> Alcotest.fail "greedy should keep the original head"

let offline_greedy_profit qs ~now:t0 =
  (* Repeatedly execute the best_rush pick; returns realized profit. *)
  let remaining = ref (Array.to_list qs) in
  let t = ref t0 in
  let profit = ref 0.0 in
  while !remaining <> [] do
    let buf = Array.of_list !remaining in
    let tree = Sla_tree.build ~now:!t buf in
    let i = match What_if.best_rush tree with Some (i, _) -> i | None -> 0 in
    let q = buf.(i) in
    t := !t +. q.Query.size;
    profit := !profit +. Query.profit_at q ~completion:!t;
    remaining := List.filteri (fun k _ -> k <> i) !remaining
  done;
  !profit

let test_table7_greedy_not_optimal () =
  let qs = table7_queries () in
  let greedy = offline_greedy_profit qs ~now:0.0 in
  check_float "greedy realizes 1.0" 1.0 greedy;
  (* The optimal order (q2, q3, q1) realizes 1.2. *)
  let optimal = [| qs.(1); qs.(2); qs.(0) |] in
  let opt_profit = Naive_whatif.scheduled_profit (Schedule.of_queries ~now:0.0 optimal) in
  check_float "optimal realizes 1.2" 1.2 opt_profit;
  check_bool "greedy is suboptimal here" true (greedy < opt_profit)

let prop_offline_greedy_never_worse =
  (* The paper's induction claim: offline, SLA-tree scheduling earns at
     least the original schedule's profit. Requires est = actual, which
     our generator guarantees. *)
  QCheck.Test.make ~name:"offline greedy >= original schedule" ~count:200 arb_buffer
    (fun qs ->
      let original = Naive_whatif.scheduled_profit (Schedule.of_queries ~now qs) in
      offline_greedy_profit qs ~now >= original -. 1e-6)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "paper-example",
        [
          Alcotest.test_case "Fig 6: 1/0 postpone(1,9,32)=2" `Quick test_paper_example_10;
          Alcotest.test_case "Fig 7: g/0 postpone(1,9,32)=300" `Quick test_paper_example_g0;
          Alcotest.test_case "Fig 7: cumulative profits" `Quick test_paper_example_totals;
          Alcotest.test_case "more questions" `Quick test_paper_example_more_questions;
          Alcotest.test_case "Figs 9-10: general profit model" `Quick
            test_paper_example_general_model;
          Alcotest.test_case "O(log^2) variant agrees" `Quick
            test_paper_example_log2_variant;
          Alcotest.test_case "invariants" `Quick test_paper_example_invariants;
        ] );
      ( "cascade-tree",
        [
          Alcotest.test_case "empty" `Quick test_tree_empty;
          Alcotest.test_case "single unit" `Quick test_tree_single;
          Alcotest.test_case "duplicate ids merge" `Quick test_tree_duplicate_ids_merge;
          Alcotest.test_case "equal slacks" `Quick test_tree_equal_slacks;
          Alcotest.test_case "depth logarithmic" `Quick test_tree_depth_logarithmic;
          qtest prop_cascading_equals_binary_search;
          qtest prop_invariants_hold;
          qtest prop_unit_partition_signs;
          qtest prop_slack_units_presized_identical;
        ] );
      ( "oracle-equivalence",
        [
          qtest prop_postpone_matches_unit_oracle;
          qtest prop_postpone_matches_recompute_oracle;
          qtest prop_expedite_matches_unit_oracle;
          qtest prop_expedite_matches_recompute_oracle;
          qtest prop_additive_property;
          qtest prop_postpone_monotone_in_tau;
        ] );
      ( "facade",
        [
          Alcotest.test_case "postpone basics" `Quick test_facade_basic_postpone;
          Alcotest.test_case "expedite basics" `Quick test_facade_basic_expedite;
          Alcotest.test_case "bad arguments" `Quick test_facade_bad_args;
          Alcotest.test_case "unit counts" `Quick test_facade_unit_counts;
          Alcotest.test_case "profit at stake" `Quick test_facade_profit_at_stake;
          Alcotest.test_case "empty buffer probes" `Quick test_empty_tree_probes;
        ] );
      ( "what-if",
        [
          qtest prop_rush_net_gain_matches_brute_force;
          qtest prop_insertion_delta_matches_brute_force;
          Alcotest.test_case "ties keep head" `Quick test_best_rush_prefers_earliest_on_ties;
          Alcotest.test_case "urgent query rushed" `Quick test_best_rush_picks_urgent;
          Alcotest.test_case "idle server profit" `Quick test_idle_server_profit;
        ] );
      ( "expedite-apps",
        [
          Alcotest.test_case "recovery curve" `Quick test_recovery_curve;
          qtest prop_recovery_curve_monotone;
          Alcotest.test_case "maintenance slot" `Quick test_best_maintenance_slot;
          Alcotest.test_case "stall impact" `Quick test_stall_impact;
          Alcotest.test_case "empty buffer what-ifs" `Quick test_empty_tree_whatif;
          Alcotest.test_case "maintenance ties resolve late" `Quick
            test_maintenance_slot_latest_on_ties;
          qtest prop_maintenance_slot_matches_reference;
        ] );
      ( "greedy-limits",
        [
          Alcotest.test_case "Table 7: greedy keeps q1" `Quick test_table7_greedy_keeps_q1;
          Alcotest.test_case "Table 7: greedy not optimal" `Quick
            test_table7_greedy_not_optimal;
          qtest prop_offline_greedy_never_worse;
        ] );
    ]
