(* Tests for the tenancy layer: registry validation, deterministic
   tenant assignment (chunk- and [-j]-independent), tier-scaled SLAs,
   the probe-priced admission controller, Jain fairness, SLO burn-rate
   windows, and the tenant column of the trace format. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let qtest = QCheck_alcotest.to_alcotest

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* A three-tenant registry with 1:3:6 shares, like the default but
   with a controllable seed. *)
let profiles () =
  [|
    Tenancy.profile ~name:"a-gold" ~cls:0 ~tier:1.5 ~share:1 ();
    Tenancy.profile ~name:"b-silver" ~cls:1 ~share:3 ();
    Tenancy.profile ~name:"c-bronze" ~cls:2 ~tier:0.6 ~share:6 ();
  |]

let reg_with seed = Tenancy.registry ~seed (profiles ())

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_profile_validation () =
  let mk ?tier ?share ?slo_late ?(name = "t") ?(cls = 0) () =
    Tenancy.profile ?tier ?share ?slo_late ~name ~cls ()
  in
  check_bool "empty name" true (raises_invalid (fun () -> mk ~name:"" ()));
  check_bool "negative class" true (raises_invalid (fun () -> mk ~cls:(-1) ()));
  check_bool "zero tier" true (raises_invalid (fun () -> mk ~tier:0.0 ()));
  check_bool "zero share" true (raises_invalid (fun () -> mk ~share:0 ()));
  check_bool "zero slo" true (raises_invalid (fun () -> mk ~slo_late:0.0 ()));
  check_bool "slo above one" true
    (raises_invalid (fun () -> mk ~slo_late:1.5 ()))

let test_registry_numbering () =
  let reg = reg_with 1 in
  check_int "three tenants" 3 (Tenancy.n_tenants reg);
  Array.iteri
    (fun i p -> check_int "tenant = index + 1" (i + 1) p.Tenancy.tenant)
    reg.Tenancy.profiles;
  (match Tenancy.find reg ~tenant:2 with
  | Some p -> Alcotest.(check string) "find by id" "b-silver" p.Tenancy.pname
  | None -> Alcotest.fail "tenant 2 missing");
  check_bool "unknown tenant" true (Tenancy.find reg ~tenant:9 = None);
  check_bool "anonymous tenant" true (Tenancy.find reg ~tenant:0 = None);
  check_bool "empty registry" true
    (raises_invalid (fun () -> Tenancy.registry [||]));
  check_bool "class beyond the ladder" true
    (raises_invalid (fun () ->
         Tenancy.registry [| Tenancy.profile ~name:"t" ~cls:99 () |]))

let test_sla_tier_scaling () =
  (* The SLA a tenant buys is its class's ladder entry with gains and
     penalty multiplied by the price tier. *)
  let reg = reg_with 1 in
  let cls0 = reg.Tenancy.synth.Sla_synth.classes.(0) in
  let gold = reg.Tenancy.profiles.(0) in
  let sla = Tenancy.sla_for reg gold ~cls:0 ~est:10.0 in
  check_float "gains scale by tier" (1.5 *. cls0.Sla_synth.gains.(0))
    (Sla.max_gain sla);
  check_float "penalty scales by tier" (1.5 *. cls0.Sla_synth.penalty)
    (Sla.penalty sla);
  let bronze = reg.Tenancy.profiles.(2) in
  let cheap = Tenancy.sla_for reg bronze ~cls:2 ~est:10.0 in
  check_bool "discounted tier prices lower" true
    (Sla.max_gain cheap < Sla.max_gain sla)

(* ------------------------------------------------------------------ *)
(* Assignment *)

let mk_queries n =
  Array.init n (fun i ->
      Query.make ~id:i
        ~arrival:(Float.of_int i *. 10.0)
        ~size:5.0
        ~sla:(Sla.one_zero ~bound:50.0)
        ())

let test_assignment_deterministic () =
  let reg = reg_with 7 and reg' = reg_with 7 in
  let differs = ref false in
  for id = 0 to 499 do
    let t = Tenancy.tenant_of reg ~id in
    check_int "same seed, same tenant" t (Tenancy.tenant_of reg' ~id);
    check_bool "tenant in range" true (t >= 1 && t <= 3);
    if t <> Tenancy.tenant_of (reg_with 8) ~id then differs := true
  done;
  check_bool "different seed moves some queries" true !differs

let test_assign_tags_and_preserves () =
  let reg = reg_with 7 in
  let qs = mk_queries 200 in
  let tagged = Tenancy.assign reg qs in
  check_int "same length" 200 (Array.length tagged);
  Array.iteri
    (fun i q ->
      let orig = qs.(i) in
      check_int "id kept" orig.Query.id q.Query.id;
      check_int "tenant matches the keyed draw"
        (Tenancy.tenant_of reg ~id:orig.Query.id)
        q.Query.tenant;
      check_float "arrival kept" orig.Query.arrival q.Query.arrival;
      check_float "size kept" orig.Query.size q.Query.size;
      check_float "estimate kept" orig.Query.est_size q.Query.est_size;
      let p = reg.Tenancy.profiles.(q.Query.tenant - 1) in
      check_bool "SLA is the tenant's tier-scaled class" true
        (Sla.equal q.Query.sla
           (Tenancy.sla_for reg p ~cls:p.Tenancy.cls ~est:orig.Query.est_size)))
    tagged;
  (* Streaming assignment agrees element-wise. *)
  let streamed =
    Array.of_seq (Tenancy.assign_seq reg (Array.to_seq qs))
  in
  Array.iteri
    (fun i q ->
      check_int "seq tenant" tagged.(i).Query.tenant q.Query.tenant;
      check_bool "seq SLA" true (Sla.equal tagged.(i).Query.sla q.Query.sla))
    streamed

(* Satellite: the tenant mix is a pure function of (seed, id), so any
   chunking of the stream — tiles, [-j] shards — yields the same tags. *)
let prop_assignment_chunk_independent =
  QCheck.Test.make ~name:"assignment is chunk-independent" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 0 300))
    (fun (seed, cut) ->
      let reg = reg_with seed in
      let qs = mk_queries 300 in
      let full = Tenancy.assign reg qs in
      let left = Tenancy.assign reg (Array.sub qs 0 cut) in
      let right = Tenancy.assign reg (Array.sub qs cut (300 - cut)) in
      let chunked = Array.append left right in
      Array.for_all2
        (fun a b ->
          a.Query.tenant = b.Query.tenant && Sla.equal a.Query.sla b.Query.sla)
        full chunked)

(* Satellite: the empirical tenant mix converges to the configured
   share weights (1:3:6 -> 10% / 30% / 60%), whatever the seed. *)
let prop_share_mix_converges =
  QCheck.Test.make ~name:"tenant mix converges to shares" ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let reg = reg_with seed in
      let n = 20_000 in
      let counts = Array.make 4 0 in
      for id = 0 to n - 1 do
        let t = Tenancy.tenant_of reg ~id in
        counts.(t) <- counts.(t) + 1
      done;
      let expected = [| 0.0; 0.1; 0.3; 0.6 |] in
      let ok = ref (counts.(0) = 0) in
      for t = 1 to 3 do
        let frac = Float.of_int counts.(t) /. Float.of_int n in
        if Float.abs (frac -. expected.(t)) > 0.02 then ok := false
      done;
      !ok)

(* The same keyed-draw property for the synthesis class mix itself:
   [Sla_synth.pick_class] at a stream position is independent of the
   order positions are visited in, and the class mix converges to the
   ladder weights (gold 1 / silver 3 / bronze 6). *)
let test_class_mix_converges () =
  let cfg = Sla_synth.config () in
  let master = Prng.create cfg.Sla_synth.seed in
  let n = 20_000 in
  let counts = Hashtbl.create 4 in
  for i = 0 to n - 1 do
    let c = Sla_synth.pick_class cfg master ~index:i in
    let k = c.Sla_synth.cls_name in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let frac name =
    Float.of_int (Option.value ~default:0 (Hashtbl.find_opt counts name))
    /. Float.of_int n
  in
  check_bool "gold ~ 10%" true (Float.abs (frac "gold" -. 0.1) < 0.02);
  check_bool "silver ~ 30%" true (Float.abs (frac "silver" -. 0.3) < 0.02);
  check_bool "bronze ~ 60%" true (Float.abs (frac "bronze" -. 0.6) < 0.02);
  (* Visiting positions backwards reproduces the forward draws. *)
  let forward =
    Array.init 200 (fun i ->
        (Sla_synth.pick_class cfg master ~index:i).Sla_synth.cls_name)
  in
  for i = 199 downto 0 do
    Alcotest.(check string) "order-independent draw" forward.(i)
      (Sla_synth.pick_class cfg master ~index:i).Sla_synth.cls_name
  done

(* ------------------------------------------------------------------ *)
(* Admission *)

let bursty_tagged reg ~n ~seed =
  let tcfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.9
      ~servers:2 ~n_queries:n ~seed ()
  in
  let period = Float.of_int n /. Trace.arrival_rate tcfg /. 8.0 in
  Tenancy.assign reg
    (Bursty.generate tcfg (Bursty.square ~period ~duty:0.4 ~low:0.5 ~high:2.5))

let run_admission ~queries ~servers ~acct ~admit =
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~admit
    ~on_complete:(Tenancy.Acct.on_complete acct)
    ~queries ~n_servers:servers
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
    ~metrics ();
  metrics

let test_admission_overloaded () =
  (* On a saturated bursty farm the controller must refuse part of the
     offered stream, keep the books balanced, and every degraded copy
     must keep its identity while pricing strictly cheaper. *)
  let reg = reg_with 7 in
  let acct = Tenancy.Acct.create reg ~warmup_id:0 in
  let adm = Tenancy.admission ~theta:0.0 reg ~acct () in
  let degrades = ref 0 and bad_degrade = ref 0 in
  let admit sim q =
    let v = Tenancy.admit adm sim q in
    (match v with
    | Sim.Degrade q' ->
      incr degrades;
      if
        q'.Query.id <> q.Query.id
        || q'.Query.tenant <> q.Query.tenant
        || Sla.max_gain q'.Query.sla >= Sla.max_gain q.Query.sla
      then incr bad_degrade
    | Sim.Admit | Sim.Reject -> ());
    v
  in
  let queries = bursty_tagged reg ~n:800 ~seed:11 in
  let m = run_admission ~queries ~servers:2 ~acct ~admit in
  check_int "offered everything" 800 (Metrics.offered_count m);
  check_int "offered = admitted + rejected" 800
    (Metrics.admitted_count m + Metrics.rejected_count m);
  check_bool "overload forces rejections" true (Metrics.rejected_count m > 0);
  check_bool "some queries down-tiered" true (!degrades > 0);
  check_int "degraded copies keep id/tenant and price cheaper" 0 !bad_degrade;
  let rep = Tenancy.report acct in
  check_int "three rows" 3 (List.length rep.Tenancy.rows);
  let sum f = List.fold_left (fun a r -> a + f r) 0 rep.Tenancy.rows in
  check_int "rows partition the offer" 800 (sum (fun r -> r.Tenancy.r_offered));
  List.iter
    (fun r ->
      check_int
        (Printf.sprintf "tenant %d books balance" r.Tenancy.r_tenant)
        r.Tenancy.r_offered
        (r.Tenancy.r_admitted + r.Tenancy.r_rejected))
    rep.Tenancy.rows;
  check_int "rejected rows match metrics" (Metrics.rejected_count m)
    (sum (fun r -> r.Tenancy.r_rejected));
  check_bool "fairness within (0, 1]" true
    (rep.Tenancy.fairness > 0.0 && rep.Tenancy.fairness <= 1.0);
  check_bool "turned-away value recorded" true
    (rep.Tenancy.rep_rejected_value > 0.0)

let test_admission_underloaded_admits_all () =
  let reg = reg_with 7 in
  let acct = Tenancy.Acct.create reg ~warmup_id:0 in
  let adm = Tenancy.admission ~theta:0.0 reg ~acct () in
  let tcfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.3
      ~servers:4 ~n_queries:300 ~seed:5 ()
  in
  let queries = Tenancy.assign reg (Trace.generate tcfg) in
  let m =
    run_admission ~queries ~servers:4 ~acct ~admit:(Tenancy.admit adm)
  in
  check_int "nothing rejected" 0 (Metrics.rejected_count m);
  check_int "everything admitted" 300 (Metrics.admitted_count m);
  let rep = Tenancy.report acct in
  check_bool "profit earned" true (rep.Tenancy.rep_profit > 0.0);
  check_float "nothing turned away" 0.0 rep.Tenancy.rep_rejected_value

(* ------------------------------------------------------------------ *)
(* Fairness and burn rates *)

let test_jain_values () =
  check_float "even split" 1.0 (Tenancy.jain [| 1.0; 1.0; 1.0 |]);
  check_float "one tenant takes all" (1.0 /. 3.0)
    (Tenancy.jain [| 1.0; 0.0; 0.0 |]);
  check_float "empty input" 1.0 (Tenancy.jain [||]);
  check_float "all-zero input" 1.0 (Tenancy.jain [| 0.0; 0.0 |]);
  let j = Tenancy.jain [| 4.0; 1.0 |] in
  check_float "known two-tenant value" (25.0 /. 34.0) j

(* Hand-built timeseries: tenant 1 (gold, 5% budget) completes eight
   measured queries spread over the span. All late -> every window
   burns at 1/0.05 = 20x and all four pairs fire; all on-time -> zero
   burn, nothing fires. *)
let burn_run ~late =
  let reg = Tenancy.default_registry () in
  let acct = Tenancy.Acct.create reg ~warmup_id:0 in
  let ts = Tenancy.Acct.timeseries reg in
  let span = 4320.0 in
  for i = 0 to 7 do
    let arrival = Float.of_int i *. 540.0 in
    let q =
      Query.make ~tenant:1 ~id:i ~arrival ~size:1.0
        ~sla:(Sla.one_zero ~bound:10.0) ()
    in
    Tenancy.Acct.on_complete acct q
      ~completion:(arrival +. if late then 100.0 else 1.0);
    Tenancy.Acct.sample acct ts ~now:(Float.of_int (i + 1) *. 540.0)
  done;
  Tenancy.burn_rates reg ts ~tenant:1 ~span

let test_burn_rates_all_late () =
  let burns = burn_run ~late:true in
  check_int "four canonical windows" 4 (List.length burns);
  List.iter
    (fun b ->
      check_bool
        (Printf.sprintf "%s short burn = 20x" b.Tenancy.window.Tenancy.bw_label)
        true
        (Float.abs (b.Tenancy.short_burn -. 20.0) < 1e-6);
      check_bool "long burn = 20x" true
        (Float.abs (b.Tenancy.long_burn -. 20.0) < 1e-6);
      check_bool "fires" true b.Tenancy.firing)
    burns

let test_burn_rates_all_on_time () =
  let burns = burn_run ~late:false in
  List.iter
    (fun b ->
      check_float "no short burn" 0.0 b.Tenancy.short_burn;
      check_float "no long burn" 0.0 b.Tenancy.long_burn;
      check_bool "quiet" false b.Tenancy.firing)
    burns

(* ------------------------------------------------------------------ *)
(* Trace format: the tenant column *)

let test_trace_roundtrip_tenants () =
  let reg = reg_with 7 in
  let qs = Tenancy.assign reg (mk_queries 100) in
  let path = Filename.temp_file "slatree_tenancy" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path qs;
      let ic = open_in path in
      let first = input_line ic in
      close_in ic;
      Alcotest.(check string) "v2 header" "# slatree-trace v2" first;
      let back = Trace_io.load path in
      check_int "same length" 100 (Array.length back);
      Array.iteri
        (fun i q ->
          check_int "tenant survives" qs.(i).Query.tenant q.Query.tenant;
          check_float "arrival survives" qs.(i).Query.arrival q.Query.arrival;
          check_bool "SLA survives" true (Sla.equal qs.(i).Query.sla q.Query.sla))
        back)

let () =
  Alcotest.run "tenancy"
    [
      ( "registry",
        [
          Alcotest.test_case "profile validation" `Quick
            test_profile_validation;
          Alcotest.test_case "numbering and lookup" `Quick
            test_registry_numbering;
          Alcotest.test_case "tier-scaled SLAs" `Quick test_sla_tier_scaling;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "deterministic" `Quick
            test_assignment_deterministic;
          Alcotest.test_case "tags and preserves" `Quick
            test_assign_tags_and_preserves;
          qtest prop_assignment_chunk_independent;
          qtest prop_share_mix_converges;
          Alcotest.test_case "class mix converges" `Quick
            test_class_mix_converges;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overloaded farm" `Quick test_admission_overloaded;
          Alcotest.test_case "underloaded admits all" `Quick
            test_admission_underloaded_admits_all;
        ] );
      ( "fairness-burn",
        [
          Alcotest.test_case "jain values" `Quick test_jain_values;
          Alcotest.test_case "all late burns 20x" `Quick
            test_burn_rates_all_late;
          Alcotest.test_case "all on-time burns zero" `Quick
            test_burn_rates_all_on_time;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "tenant column roundtrip" `Quick
            test_trace_roundtrip_tenants;
        ] );
    ]
