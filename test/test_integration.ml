(* Integration tests: full pipeline runs that cross every library
   boundary (workload -> sim -> schedulers/dispatchers -> metrics),
   plus determinism of the experiment harness. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let fcfs_dispatch = Dispatchers.round_robin

let run scheduler ~queries ~warmup =
  let metrics = Metrics.create ~warmup_id:warmup () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick scheduler)
    ~dispatch:(Dispatchers.instantiate fcfs_dispatch)
    ~metrics ();
  metrics

let test_full_pipeline_all_schedulers () =
  (* One congested SLA-B trace through all four Table 2 policies: all
     queries complete, losses are finite, and both SLA-tree variants
     beat their baselines. *)
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.9
      ~servers:1 ~n_queries:4_000 ~seed:555 ()
  in
  let queries = Trace.generate cfg in
  let rate = 1.0 /. 20.0 in
  let losses =
    List.map
      (fun s ->
        let m = run s ~queries ~warmup:2_000 in
        check_int "completed" 4_000 (Metrics.completed_count m);
        (Schedulers.name s, Metrics.avg_loss m))
      [
        Schedulers.fcfs;
        Schedulers.fcfs_sla_tree;
        Schedulers.cbs ~rate;
        Schedulers.cbs_sla_tree ~rate;
      ]
  in
  let get n = List.assoc n losses in
  check_bool "FCFS+SLA-tree <= FCFS" true
    (get "FCFS+SLA-tree" <= get "FCFS" +. 1e-9);
  check_bool "CBS+SLA-tree <= CBS + noise" true
    (get "CBS+SLA-tree" <= get "CBS" +. 0.05)

let test_online_shop_scenario () =
  (* The introduction's motivating scenario: a mixed buyer/employee
     workload where employees carry a big penalty. SLA-tree scheduling
     must reduce the number of employee-penalty events versus FCFS. *)
  let cfg =
    Trace.config ~kind:Workloads.Ssbm_wl ~profile:Workloads.Sla_b ~load:0.9
      ~servers:1 ~n_queries:4_000 ~seed:777 ()
  in
  let queries = Trace.generate cfg in
  let m_fcfs = run Schedulers.fcfs ~queries ~warmup:2_000 in
  let m_tree = run Schedulers.fcfs_sla_tree ~queries ~warmup:2_000 in
  check_bool
    (Printf.sprintf "tree profit %.3f >= fcfs profit %.3f"
       (Metrics.avg_profit m_tree) (Metrics.avg_profit m_fcfs))
    true
    (Metrics.avg_profit m_tree >= Metrics.avg_profit m_fcfs -. 1e-9)

let test_harness_determinism () =
  (* Same scale, same seeds, same machine: identical numbers. *)
  let tiny : Exp_scale.t =
    { n_queries = 500; warmup = 250; repeats = 2; base_seed = 99 }
  in
  let once () =
    Table2.compute ~profiles:[ Workloads.Sla_a ] ~kinds:[ Workloads.Ssbm_wl ]
      ~loads:[ 0.9 ] tiny
  in
  let a = once () and b = once () in
  List.iter2
    (fun (x : Table2.cell) (y : Table2.cell) ->
      check_float "identical loss" x.avg_loss y.avg_loss)
    a b

let test_seed_isolation_between_policies () =
  (* Two different policies on the same config see the same trace:
     arrival times and sizes must match exactly (paired comparison). *)
  let cfg ~seed =
    Trace.config ~kind:Workloads.Pareto ~profile:Workloads.Sla_a ~load:0.9
      ~servers:1 ~n_queries:300 ~seed ()
  in
  let a = Trace.generate (cfg ~seed:3) in
  let b = Trace.generate (cfg ~seed:3) in
  Array.iteri
    (fun i q -> check_float "same trace" q.Query.size b.(i).Query.size)
    a

let test_tree_what_if_consistent_with_sim () =
  (* Ask the SLA-tree a postpone question about a fixed buffer, then
     actually delay the buffer's execution by running a blocking query
     first in the simulator; realized profit loss must equal the
     tree's answer. *)
  let sla = Sla.one_zero ~bound:50.0 in
  let buffered =
    Array.init 5 (fun i ->
        Query.make ~id:i ~arrival:0.0 ~size:10.0 ~sla ())
  in
  let tree = Sla_tree.build ~now:0.0 buffered in
  let tau = 10.0 in
  let predicted = Sla_tree.postpone tree ~m:0 ~n:4 ~tau in
  (* Realize both worlds. *)
  let profit_of queries =
    let metrics = Metrics.create ~warmup_id:0 () in
    Sim.run ~queries ~n_servers:1
      ~pick_next:(fun ~now:_ _ -> 0)
      ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
      ~metrics ();
    Metrics.total_profit metrics
  in
  let base = profit_of buffered in
  let blocker =
    (* Arrives with the rest but runs first (id -1 -> placed first),
       worthless itself: bound tiny so it never earns. *)
    Query.make ~id:5 ~arrival:0.0 ~size:tau
      ~sla:(Sla.make ~levels:[ { bound = 1e-9 +. 1.0; gain = 1e-12 } ] ~penalty:0.0)
      ()
  in
  let delayed = Array.append [| blocker |] buffered in
  let with_blocker = profit_of delayed -. 0.0 in
  (* Subtract whatever the blocker itself earned (0 or epsilon). *)
  let realized_loss = base -. (with_blocker -. 0.0) in
  check_bool
    (Printf.sprintf "predicted %.6f ~ realized %.6f" predicted realized_loss)
    true
    (Float.abs (predicted -. realized_loss) < 1e-6)

let test_capacity_pipeline () =
  (* Capacity estimation through the full stack on a short trace. *)
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
         ~servers:2 ~n_queries:1_000 ~seed:12 ())
  in
  let planner = Planner.cbs ~rate:(1.0 /. 20.0) in
  let scheduler = Schedulers.cbs_sla_tree ~rate:(1.0 /. 20.0) in
  let metrics, est =
    Capacity.run_with_estimation ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:500
  in
  check_int "completed" 1_000 (Metrics.completed_count metrics);
  check_bool "estimate finite" true (Float.is_finite est.Capacity.est_margin_per_query)

let test_admission_control_pipeline () =
  (* With admission control on a saturated single server, some queries
     are rejected and the rest still complete. *)
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:1.5
         ~servers:1 ~n_queries:1_000 ~seed:13 ())
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:
      (Dispatchers.instantiate (Dispatchers.sla_tree ~admission:true Planner.fcfs))
    ~metrics ();
  check_int "everything accounted for" 1_000
    (Metrics.completed_count metrics + Metrics.rejected_count metrics);
  check_bool "overload triggers rejections" true (Metrics.rejected_count metrics > 0)

let test_late_fraction_equals_loss_for_sla_a () =
  (* Under the 1/0 SLA the average loss *is* the missed-deadline
     fraction (paper Sec 7.1) — an internal consistency check across
     Metrics and the SLA model. *)
  let queries =
    Trace.generate
      (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load:0.9
         ~servers:1 ~n_queries:2_000 ~seed:14 ())
  in
  let metrics = Metrics.create ~warmup_id:1_000 () in
  Sim.run ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:(Dispatchers.instantiate Dispatchers.round_robin)
    ~metrics ();
  check_bool "avg loss == late fraction" true
    (Float.abs (Metrics.avg_loss metrics -. Metrics.late_fraction metrics) < 1e-9)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "all schedulers end-to-end" `Slow
            test_full_pipeline_all_schedulers;
          Alcotest.test_case "online shop scenario" `Slow test_online_shop_scenario;
          Alcotest.test_case "capacity pipeline" `Slow test_capacity_pipeline;
          Alcotest.test_case "admission control pipeline" `Slow
            test_admission_control_pipeline;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "harness determinism" `Slow test_harness_determinism;
          Alcotest.test_case "seed isolation" `Quick test_seed_isolation_between_policies;
          Alcotest.test_case "what-if matches realized sim" `Quick
            test_tree_what_if_consistent_with_sim;
          Alcotest.test_case "SLA-A loss == late fraction" `Slow
            test_late_fraction_equals_loss_for_sla_a;
        ] );
    ]
