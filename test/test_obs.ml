(* Tests for the observability subsystem (lib/obs): registry handle
   semantics, the bounded trace ring and its balanced Chrome export,
   the per-tick time series, the noop sink's contract, and the
   end-to-end wiring — scheduler decision latency lands in the
   registry, and every elastic scale action in a traced diurnal replay
   carries its probe evidence as a trace instant. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let count_occurrences s needle =
  let n = String.length needle and m = String.length s in
  let rec go i acc =
    if i + n > m then acc
    else if String.sub s i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_counter () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "a" in
  Obs.Registry.incr c;
  Obs.Registry.add c 4;
  check_int "count" 5 (Obs.Registry.count c);
  check_string "name" "a" (Obs.Registry.counter_name c);
  (* Same name returns the same instrument: increments through a second
     handle are visible through the first. *)
  let c' = Obs.Registry.counter reg "a" in
  Obs.Registry.incr c';
  check_int "shared" 6 (Obs.Registry.count c);
  check_int "snapshot" 6 (List.assoc "a" (Obs.Registry.counters reg))

let test_registry_gauge () =
  let reg = Obs.Registry.create () in
  let g = Obs.Registry.gauge reg "pool" in
  check_bool "initial is a float" true (Obs.Registry.value g = 0.0);
  Obs.Registry.set g 7.5;
  check_bool "set" true (Obs.Registry.value g = 7.5);
  let g' = Obs.Registry.gauge reg "pool" in
  check_bool "shared" true (Obs.Registry.value g' = 7.5)

let test_registry_histogram () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "lat" in
  List.iter (Obs.Registry.observe h) [ 10.0; 100.0; 1000.0 ];
  check_int "observations" 3 (Obs.Registry.observations h);
  let p50 = Obs.Registry.histogram_percentile h 50.0 in
  check_bool "p50 finite" true (Float.is_finite p50);
  check_bool "p50 in range" true (p50 >= 10.0 && p50 <= 1000.0);
  (* Shape args are ignored on re-registration: same instrument back. *)
  let h' = Obs.Registry.histogram ~bins:3 reg "lat" in
  Obs.Registry.observe h' 50.0;
  check_int "shared" 4 (Obs.Registry.observations h)

let test_registry_reset () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "a" in
  let g = Obs.Registry.gauge reg "g" in
  let h = Obs.Registry.histogram reg "h" in
  Obs.Registry.incr c;
  Obs.Registry.set g 3.0;
  Obs.Registry.observe h 5.0;
  Obs.Registry.reset reg;
  check_int "counter zero" 0 (Obs.Registry.count c);
  check_bool "gauge zero" true (Obs.Registry.value g = 0.0);
  check_int "histogram empty" 0 (Obs.Registry.observations h);
  (* Handles stay live after reset. *)
  Obs.Registry.incr c;
  check_int "counter live" 1 (Obs.Registry.count c)

let test_registry_to_json () =
  let reg = Obs.Registry.create () in
  Obs.Registry.incr (Obs.Registry.counter reg "sim.arrivals");
  Obs.Registry.set (Obs.Registry.gauge reg "pool") 4.0;
  Obs.Registry.observe (Obs.Registry.histogram reg "sched.decision_ns") 123.0;
  let j = Obs.Registry.to_json reg in
  check_bool "schema" true (contains j "\"slatree-obs/1\"");
  check_bool "counter" true (contains j "\"sim.arrivals\": 1");
  check_bool "gauge" true (contains j "\"pool\"");
  check_bool "histogram keys" true
    (contains j "\"sched.decision_ns\"" && contains j "\"count\""
    && contains j "\"p50\"" && contains j "\"p99\"")

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_events () =
  let tr = Obs.Trace.create () in
  Obs.Trace.begin_span tr ~cat:"sim" ~args:[ ("id", Obs.Trace.I 7) ] "arrive";
  Obs.Trace.instant tr ~cat:"elastic" "elastic.scale_up";
  Obs.Trace.end_span tr ();
  check_int "length" 3 (Obs.Trace.length tr);
  check_int "dropped" 0 (Obs.Trace.dropped tr);
  match Obs.Trace.events tr with
  | [ b; i; e ] ->
    check_bool "begin" true (b.Obs.Trace.phase = Obs.Trace.Begin);
    check_string "begin name" "arrive" b.Obs.Trace.name;
    check_string "begin cat" "sim" b.Obs.Trace.cat;
    check_bool "begin args" true (b.Obs.Trace.args = [ ("id", Obs.Trace.I 7) ]);
    check_bool "instant" true (i.Obs.Trace.phase = Obs.Trace.Instant);
    check_bool "end" true (e.Obs.Trace.phase = Obs.Trace.End);
    check_bool "monotone ts" true
      (b.Obs.Trace.ts <= i.Obs.Trace.ts && i.Obs.Trace.ts <= e.Obs.Trace.ts)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_trace_ring_eviction () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Trace.instant tr (Fmt.str "e%d" i)
  done;
  check_int "length capped" 4 (Obs.Trace.length tr);
  check_int "dropped" 6 (Obs.Trace.dropped tr);
  (* The survivors are the newest four, oldest first. *)
  let names = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events tr) in
  check_bool "newest kept" true (names = [ "e6"; "e7"; "e8"; "e9" ])

let test_trace_zero_capacity () =
  let tr = Obs.Trace.create ~capacity:0 () in
  Obs.Trace.instant tr "x";
  Obs.Trace.begin_span tr "y";
  check_int "length" 0 (Obs.Trace.length tr);
  check_int "dropped" 2 (Obs.Trace.dropped tr)

let test_trace_chrome_json_balanced () =
  (* Evict the Begin halves of early spans; the export must still emit
     a well-nested B/E stream. *)
  let tr = Obs.Trace.create ~capacity:6 () in
  for i = 0 to 7 do
    Obs.Trace.begin_span tr (Fmt.str "span%d" i);
    Obs.Trace.instant tr "mark";
    Obs.Trace.end_span tr ()
  done;
  (* And one span left open at export time. *)
  Obs.Trace.begin_span tr "open";
  let j = Obs.Trace.to_chrome_json tr in
  check_bool "wrapper" true (contains j "\"traceEvents\"");
  let b = count_occurrences j "\"ph\": \"B\"" in
  let e = count_occurrences j "\"ph\": \"E\"" in
  check_bool "has events" true (b + e > 0);
  check_int "balanced" b e

let test_trace_jsonl () =
  let tr = Obs.Trace.create () in
  Obs.Trace.begin_span tr "a";
  Obs.Trace.end_span tr ();
  let l = Obs.Trace.to_jsonl tr in
  let lines = String.split_on_char '\n' (String.trim l) in
  check_int "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      check_bool "line is an object" true
        (String.length line > 2 && line.[0] = '{'))
    lines

(* ------------------------------------------------------------------ *)
(* Timeseries *)

let test_timeseries_basics () =
  let ts = Obs.Timeseries.create ~columns:[| "pool"; "backlog" |] in
  check_int "empty" 0 (Obs.Timeseries.length ts);
  Obs.Timeseries.sample ts ~now:1.0 [| 4.0; 10.0 |];
  Obs.Timeseries.sample ts ~now:2.0 [| 5.0; 7.0 |];
  check_int "length" 2 (Obs.Timeseries.length ts);
  check_bool "time" true (Obs.Timeseries.time ts 1 = 2.0);
  check_bool "row" true (Obs.Timeseries.row ts 0 = [| 4.0; 10.0 |]);
  check_bool "bad width raises" true
    (raises_invalid (fun () -> Obs.Timeseries.sample ts ~now:3.0 [| 1.0 |]))

let test_timeseries_value_at () =
  let ts = Obs.Timeseries.create ~columns:[| "pool" |] in
  check_bool "NaN before first" true
    (Float.is_nan (Obs.Timeseries.value_at ts ~column:"pool" ~now:0.0));
  Obs.Timeseries.sample ts ~now:10.0 [| 4.0 |];
  Obs.Timeseries.sample ts ~now:20.0 [| 6.0 |];
  check_bool "NaN before first sample time" true
    (Float.is_nan (Obs.Timeseries.value_at ts ~column:"pool" ~now:9.9));
  check_bool "at first" true (Obs.Timeseries.value_at ts ~column:"pool" ~now:10.0 = 4.0);
  check_bool "between holds last" true
    (Obs.Timeseries.value_at ts ~column:"pool" ~now:15.0 = 4.0);
  check_bool "after last" true
    (Obs.Timeseries.value_at ts ~column:"pool" ~now:99.0 = 6.0);
  check_bool "unknown column raises" true
    (raises_invalid (fun () -> Obs.Timeseries.value_at ts ~column:"nope" ~now:15.0))

let test_timeseries_export () =
  let ts = Obs.Timeseries.create ~columns:[| "pool"; "backlog" |] in
  Obs.Timeseries.sample ts ~now:1.0 [| 4.0; 10.0 |];
  let csv = Obs.Timeseries.to_csv ts in
  check_bool "csv header" true (contains csv "t,pool,backlog");
  check_bool "csv row" true (contains csv "\n1,4,10");
  let j = Obs.Timeseries.to_json ts in
  check_bool "json columns" true (contains j "\"columns\"" && contains j "\"pool\"");
  check_bool "json rows" true (contains j "\"rows\"")

(* ------------------------------------------------------------------ *)
(* Sink *)

let test_noop_sink () =
  check_bool "disabled" true (not (Obs.enabled Obs.noop));
  (* span still runs the thunk and returns its value... *)
  check_int "span runs f" 41 (Obs.span Obs.noop "x" (fun () -> 41));
  Obs.instant Obs.noop ~args:[ ("k", Obs.Trace.I 1) ] "e";
  (* ...but records nothing. *)
  check_int "no events" 0 (Obs.Trace.length (Obs.trace Obs.noop))

let test_enabled_sink_span () =
  let obs = Obs.create () in
  check_bool "enabled" true (Obs.enabled obs);
  let r = Obs.span obs ~cat:"test" "work" (fun () -> 7) in
  check_int "span value" 7 r;
  (* The span closes even when the body raises. *)
  (try Obs.span obs "boom" (fun () -> failwith "boom") with Failure _ -> ());
  let evs = Obs.Trace.events (Obs.trace obs) in
  let phases = List.map (fun e -> e.Obs.Trace.phase) evs in
  check_bool "B E B E" true
    (phases = Obs.Trace.[ Begin; End; Begin; End ])

(* ------------------------------------------------------------------ *)
(* End-to-end wiring *)

let small_queries ?(n = 400) ?(seed = 1234) () =
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:1.0
      ~servers:2 ~n_queries:n ~seed ()
  in
  Trace.generate cfg

let test_sched_decision_latency_recorded () =
  let obs = Obs.create () in
  let queries = small_queries () in
  let pick_next, hook = Schedulers.instantiate ~obs Schedulers.fcfs_sla_tree_incr in
  let dispatch = Dispatchers.instantiate ~obs (Dispatchers.fcfs_sla_tree_incr ()) in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~obs ?on_server_event:hook ~queries ~n_servers:2 ~pick_next ~dispatch
    ~metrics ();
  let reg = Obs.registry obs in
  let counters = Obs.Registry.counters reg in
  let count name = try List.assoc name counters with Not_found -> 0 in
  check_int "arrivals" 400 (count "sim.arrivals");
  check_int "completions" 400 (count "sim.completions");
  check_bool "sched decisions" true (count "sched.decisions" > 0);
  check_bool "dispatch decisions" true (count "dispatch.decisions" > 0);
  check_bool "tree appends" true (count "sla_tree.appends" > 0);
  let lat = Obs.Registry.histogram reg "sched.decision_ns" in
  check_bool "latency observed" true (Obs.Registry.observations lat > 0);
  let p50 = Obs.Registry.histogram_percentile lat 50.0 in
  check_bool "p50 positive ns" true (Float.is_finite p50 && p50 > 0.0);
  (* Arrive/complete spans made it into the trace. *)
  let tr = Obs.trace obs in
  check_bool "trace non-empty" true (Obs.Trace.length tr > 0)

(* Diurnal replay: every controller scale action shows up as exactly one
   instant trace event carrying the probe evidence it rested on. *)
let test_elastic_decision_events () =
  let obs = Obs.create () in
  let n = 2_000 in
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:1.0
      ~servers:3 ~n_queries:n ~seed:271828 ()
  in
  let span = Float.of_int n *. 20.0 /. (1.05 *. 3.0) in
  let queries =
    Bursty.generate cfg
      (Bursty.diurnal ~period:(span /. 2.0) ~low:0.2 ~high:2.0 ())
  in
  let interval = span /. 60.0 in
  let config =
    Elastic.config ~interval ~cost_per_interval:(0.02 *. interval)
      ~boot_delay:(interval /. 2.0) ~cooldown:(2.0 *. interval) ~min_servers:2
      ~max_servers:8 ()
  in
  let _metrics, s =
    Elastic.run ~obs ~policy:Elastic.sla_tree_policy ~config ~queries
      ~n_servers:3 ~warmup_id:0 ()
  in
  check_bool "controller acted" true (s.Elastic.scale_ups > 0);
  let instants name =
    List.filter
      (fun e ->
        e.Obs.Trace.phase = Obs.Trace.Instant && e.Obs.Trace.name = name)
      (Obs.Trace.events (Obs.trace obs))
  in
  let ups = instants "elastic.scale_up" in
  let downs = instants "elastic.scale_down" in
  (* One instant per applied controller action ([summary.events] has one
     entry per action; [summary.scale_ups] sums servers, i.e. k). *)
  let actions p = List.length (List.filter (fun (_, a) -> p a) s.Elastic.events) in
  check_int "one event per scale-up action"
    (actions (function Elastic.Scale_up _ -> true | _ -> false))
    (List.length ups);
  check_int "one event per scale-down action"
    (actions (function Elastic.Scale_down _ -> true | _ -> false))
    (List.length downs);
  let sum_k evs =
    List.fold_left
      (fun acc e ->
        match List.assoc "k" e.Obs.Trace.args with
        | Obs.Trace.I k -> acc + k
        | _ -> acc)
      0 evs
  in
  check_int "up events' k sums to servers added" s.Elastic.scale_ups (sum_k ups);
  check_int "down events' k sums to servers drained" s.Elastic.scale_downs
    (sum_k downs);
  (* Each decision event carries the evidence the policy weighed. *)
  let has_arg e k = List.mem_assoc k e.Obs.Trace.args in
  List.iter
    (fun e ->
      check_string "category" "elastic" e.Obs.Trace.cat;
      List.iter
        (fun k -> check_bool (Fmt.str "arg %s" k) true (has_arg e k))
        [ "k"; "sim_t"; "pool"; "arrivals"; "margin_per_query"; "rent" ])
    (ups @ downs);
  List.iter
    (fun e ->
      check_bool "down carries removal cost" true (has_arg e "removal_cost"))
    downs;
  (* The counters agree with the summary. *)
  let counters = Obs.Registry.counters (Obs.registry obs) in
  let count name = try List.assoc name counters with Not_found -> 0 in
  check_int "elastic.scale_ups" s.Elastic.scale_ups (count "elastic.scale_ups");
  check_int "elastic.scale_downs" s.Elastic.scale_downs
    (count "elastic.scale_downs");
  check_int "decisions = ticks" s.Elastic.decisions (count "elastic.decisions")

(* ------------------------------------------------------------------ *)
(* Teardown: on_close / flush / close *)

let test_close_runs_flushers_in_order () =
  let obs = Obs.create () in
  let log = ref [] in
  Obs.on_close obs (fun () -> log := "a" :: !log);
  Obs.on_close obs (fun () -> log := "b" :: !log);
  check_bool "not closed before" false (Obs.closed obs);
  Obs.close obs;
  check_bool "closed after" true (Obs.closed obs);
  (* Registration order. *)
  check_bool "flushers ran in order" true (List.rev !log = [ "a"; "b" ])

let test_close_idempotent () =
  let obs = Obs.create () in
  let runs = ref 0 in
  Obs.on_close obs (fun () -> incr runs);
  Obs.close obs;
  Obs.close obs;
  check_int "flusher ran once" 1 !runs;
  (* Registrations after close are dropped. *)
  Obs.on_close obs (fun () -> runs := 100);
  Obs.close obs;
  check_int "post-close registration ignored" 1 !runs

let test_flush_without_close () =
  let obs = Obs.create () in
  let runs = ref 0 in
  Obs.on_close obs (fun () -> incr runs);
  Obs.flush obs;
  Obs.flush obs;
  check_int "flush reruns (periodic checkpointing)" 2 !runs;
  check_bool "flush does not close" false (Obs.closed obs);
  Obs.close obs;
  check_int "close flushes once more" 3 !runs

let test_noop_sink_drops_registrations () =
  let obs = Obs.noop in
  let runs = ref 0 in
  Obs.on_close obs (fun () -> incr runs);
  Obs.flush obs;
  Obs.close obs;
  check_int "noop never runs flushers" 0 !runs

let test_flusher_exception_runs_all () =
  let obs = Obs.create () in
  let log = ref [] in
  Obs.on_close obs (fun () -> log := "a" :: !log);
  Obs.on_close obs (fun () -> failwith "first");
  Obs.on_close obs (fun () -> failwith "second");
  Obs.on_close obs (fun () -> log := "d" :: !log);
  (match Obs.close obs with
  | exception Failure m -> check_string "first exception wins" "first" m
  | () -> Alcotest.fail "close should re-raise the flusher exception");
  (* Every flusher still ran, and the obs still ended up closed. *)
  check_bool "non-raising flushers all ran" true (List.rev !log = [ "a"; "d" ]);
  check_bool "closed despite exception" true (Obs.closed obs);
  Obs.close obs

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_registry_counter;
          Alcotest.test_case "gauge" `Quick test_registry_gauge;
          Alcotest.test_case "histogram" `Quick test_registry_histogram;
          Alcotest.test_case "reset" `Quick test_registry_reset;
          Alcotest.test_case "to_json" `Quick test_registry_to_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records events" `Quick test_trace_records_events;
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "zero capacity" `Quick test_trace_zero_capacity;
          Alcotest.test_case "chrome json balanced" `Quick
            test_trace_chrome_json_balanced;
          Alcotest.test_case "jsonl" `Quick test_trace_jsonl;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "basics" `Quick test_timeseries_basics;
          Alcotest.test_case "value_at" `Quick test_timeseries_value_at;
          Alcotest.test_case "export" `Quick test_timeseries_export;
        ] );
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick test_noop_sink;
          Alcotest.test_case "enabled span" `Quick test_enabled_sink_span;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "sched latency recorded" `Quick
            test_sched_decision_latency_recorded;
          Alcotest.test_case "elastic decision events" `Slow
            test_elastic_decision_events;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "close runs flushers in order" `Quick
            test_close_runs_flushers_in_order;
          Alcotest.test_case "close idempotent" `Quick test_close_idempotent;
          Alcotest.test_case "flush without close" `Quick
            test_flush_without_close;
          Alcotest.test_case "noop drops registrations" `Quick
            test_noop_sink_drops_registrations;
          Alcotest.test_case "flusher exception runs all" `Quick
            test_flusher_exception_runs_all;
        ] );
    ]
