(* Wire codec: round-trip fuzz in both framings, incremental decoding
   under arbitrary chunkings, and rejection of truncated / garbage
   input. Plus the Jsonx parser the Json framing rides on. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Jsonx *)

let test_jsonx_parse () =
  let open Jsonx in
  (match parse {|{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e3}}|} with
  | Obj _ as j ->
    check_bool "a" true (to_int (Option.get (member "a" j)) = Some 1);
    (match member "b" j with
    | Some (Arr [ Bool true; Null; Str s ]) -> check_str "escape" "x\n" s
    | _ -> Alcotest.fail "b mismatch");
    (match member "c" j with
    | Some c -> check_bool "d" true (to_float (Option.get (member "d" c)) = Some (-2500.0))
    | None -> Alcotest.fail "no c")
  | _ -> Alcotest.fail "not an object");
  check_bool "trailing garbage rejected" true (parse_opt "{} x" = None);
  check_bool "empty rejected" true (parse_opt "" = None);
  check_bool "bad escape rejected" true (parse_opt {|"\q"|} = None);
  check_bool "unterminated rejected" true (parse_opt {|{"a": 1|} = None);
  check_bool "inf token" true (parse_opt "inf" = Some (Num Float.infinity));
  check_bool "-inf token" true (parse_opt "-inf" = Some (Num Float.neg_infinity));
  (match parse_opt "nan" with
  | Some (Num f) -> check_bool "nan token" true (Float.is_nan f)
  | _ -> Alcotest.fail "nan not parsed")

let test_jsonx_float_roundtrip () =
  List.iter
    (fun f ->
      let s = Jsonx.float_literal f in
      match Jsonx.parse s with
      | Jsonx.Num g ->
        check_bool
          (Printf.sprintf "float %h survives as %s" f s)
          true
          (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g)
          || (Float.is_nan f && Float.is_nan g))
      | _ -> Alcotest.fail "not a number"
      | exception Jsonx.Parse_error e -> Alcotest.fail e)
    [ 0.0; -0.0; 1.0; 0.1; Float.pi; 1e-300; -1.7976931348623157e308;
      4.9e-324; Float.infinity; Float.neg_infinity; Float.nan; 12345.6789 ]

let test_jsonx_print_parse () =
  let open Jsonx in
  let j =
    Obj
      [ ("s", Str "a\"b\\c\n"); ("n", Num 3.25); ("l", Arr [ Num 1.0; Null ]);
        ("e", Obj []) ]
  in
  check_bool "print/parse identity" true (parse (to_string j) = j)

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_sla =
  QCheck.Gen.(
    let* n = 1 -- 4 in
    let* raw_bounds = list_repeat n (float_range 0.1 1000.0) in
    let* raw_gains = list_repeat n (float_range 0.1 10.0) in
    let* penalty = float_range 0.0 5.0 in
    let bounds = List.sort_uniq Float.compare raw_bounds in
    let gains = List.sort_uniq Float.compare raw_gains |> List.rev in
    let k = min (List.length bounds) (List.length gains) in
    let levels =
      List.init k (fun i ->
          { Sla.bound = List.nth bounds i; gain = List.nth gains i })
    in
    return (Sla.make ~levels ~penalty))

let gen_query =
  QCheck.Gen.(
    let* id = 0 -- 1_000_000 in
    let* arrival = float_range 0.0 1e6 in
    let* size = float_range 0.001 1e4 in
    let* est_size = float_range 0.001 1e4 in
    let* retries = 0 -- 3 in
    let* tenant = 0 -- 8 in
    let* sla = gen_sla in
    return (Query.make ~est_size ~retries ~tenant ~id ~arrival ~size ~sla ()))

let gen_opt g = QCheck.Gen.(oneof [ return None; map Option.some g ])

let gen_msg =
  QCheck.Gen.(
    let f = float_range (-1e6) 1e6 in
    oneof
      [
        ( let* client = string_size ~gen:printable (0 -- 40) in
          let* version = 0 -- 100 in
          return (Wire.Hello { version; client }) );
        map (fun q -> Wire.Submit q) gen_query;
        return Wire.Eof;
        ( let* qid = 0 -- 1_000_000 in
          let* vnow = f in
          let* target = gen_opt (0 -- 64) in
          let* est_delta = gen_opt f in
          return (Wire.Decision { qid; vnow; target; est_delta }) );
        ( let* qid = 0 -- 1_000_000 in
          let* vnow = f in
          let* profit = f in
          return (Wire.Completion { qid; vnow; profit }) );
        ( let* qid = 0 -- 1_000_000 in
          let* vnow = f in
          return (Wire.Dropped { qid; vnow }) );
        ( let* completed = 0 -- 1_000_000 in
          let* rejected = 0 -- 1000 in
          let* dropped = 0 -- 1000 in
          let* measured = 0 -- 1_000_000 in
          let* late = 0 -- 1_000_000 in
          let* total_profit = f in
          let* avg_loss = f in
          let* avg_response = float_range 0.0 1e6 in
          let* vnow = float_range 0.0 1e9 in
          let* tenants =
            list_size (0 -- 4)
              ( let* tr_tenant = 1 -- 8 in
                let* tr_completed = 0 -- 1_000_000 in
                let* tr_rejected = 0 -- 1000 in
                let* tr_profit = f in
                return
                  { Wire.tr_tenant; tr_completed; tr_rejected; tr_profit } )
          in
          return
            (Wire.Summary
               { completed; rejected; dropped; measured; late; total_profit;
                 avg_loss; avg_response; vnow; tenants }) );
        map (fun e -> Wire.Error_msg e) (string_size ~gen:printable (0 -- 60));
      ])

let arbitrary_msg = QCheck.make ~print:(Fmt.to_to_string Wire.pp) gen_msg

let arbitrary_msgs =
  QCheck.make
    ~print:Fmt.(to_to_string (Dump.list Wire.pp))
    QCheck.Gen.(list_size (1 -- 8) gen_msg)

(* ------------------------------------------------------------------ *)
(* Round trips *)

let roundtrips framing m =
  let s = Wire.encode framing m in
  match Wire.decode framing s with
  | Ok (m', n) -> n = String.length s && Wire.equal m m'
  | Error _ -> false

let prop_roundtrip_binary =
  QCheck.Test.make ~name:"binary encode/decode is bit-exact" ~count:500
    arbitrary_msg (roundtrips Wire.Binary)

let prop_roundtrip_json =
  QCheck.Test.make ~name:"json encode/decode is bit-exact" ~count:500
    arbitrary_msg (roundtrips Wire.Json)

(* Streams survive arbitrary chunk boundaries: concatenate several
   frames, feed the decoder in random-sized pieces, get the same
   messages back in order. *)
let prop_decoder_chunked framing =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "decoder reassembles chunked %s stream"
         (match framing with Wire.Binary -> "binary" | Wire.Json -> "json"))
    ~count:200
    QCheck.(pair arbitrary_msgs small_nat)
    (fun (msgs, chunk_seed) ->
      let stream = String.concat "" (List.map (Wire.encode framing) msgs) in
      let dec = Wire.Decoder.create () in
      let out = ref [] in
      let drain () =
        let continue = ref true in
        while !continue do
          match Wire.Decoder.next dec with
          | Ok (Some m) -> out := m :: !out
          | Ok None -> continue := false
          | Error e -> QCheck.Test.fail_reportf "decode error: %s" e
        done
      in
      let chunk = 1 + (chunk_seed mod 7) in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        Wire.Decoder.feed dec (String.sub stream !i n);
        drain ();
        i := !i + n
      done;
      let got = List.rev !out in
      List.length got = List.length msgs
      && List.for_all2 Wire.equal msgs got
      && Wire.Decoder.buffered dec = 0)

(* Every strict prefix of a frame is Truncated, never Malformed and
   never a phantom message. *)
let prop_truncation_binary =
  QCheck.Test.make ~name:"binary frame prefixes decode as Truncated" ~count:200
    arbitrary_msg (fun m ->
      let s = Wire.encode Wire.Binary m in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        match Wire.decode Wire.Binary (String.sub s 0 n) with
        | Error Wire.Truncated -> ()
        | Ok _ | Error (Wire.Malformed _) -> ok := false
      done;
      !ok)

let test_garbage_prefix () =
  (* Binary: wrong magic is rejected immediately. *)
  (match Wire.decode Wire.Binary "\x00\x01\x02\x03\x04\x05\x06\x07" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* Unknown tag. *)
  (match Wire.decode Wire.Binary "\xA7\x01\x63\x00\x00\x00\x00" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "unknown tag accepted");
  (* Wrong version. *)
  (match Wire.decode Wire.Binary "\xA7\x63\x03\x00\x00\x00\x00" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "bad version accepted");
  (* Oversized length field. *)
  (match Wire.decode Wire.Binary "\xA7\x01\x03\x7f\xff\xff\xff" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "oversized frame accepted");
  (* Json: a line of garbage. *)
  (match Wire.decode Wire.Json "not json at all\n" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage json line accepted");
  (* Json: valid json, wrong shape. *)
  (match Wire.decode Wire.Json "{\"t\": \"nonsense\"}\n" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "unknown message type accepted");
  (* Decoder: garbage first byte fails framing detection. *)
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed dec "garbage";
  (match Wire.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage prefix accepted by decoder");
  (* Decoder: a malformed frame after a valid one still errors. *)
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed dec (Wire.encode Wire.Binary Wire.Eof ^ "\xA7\x01\x63");
  (match Wire.Decoder.next dec with
  | Ok (Some Wire.Eof) -> ()
  | _ -> Alcotest.fail "valid frame lost");
  Wire.Decoder.feed dec "\x00\x00\x00\x00";
  match Wire.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed second frame accepted"

let test_framing_autodetect () =
  let dec = Wire.Decoder.create () in
  check_bool "undetected" true (Wire.Decoder.framing dec = None);
  Wire.Decoder.feed dec (Wire.encode Wire.Json Wire.Eof);
  (match Wire.Decoder.next dec with
  | Ok (Some Wire.Eof) -> ()
  | _ -> Alcotest.fail "json frame not decoded");
  check_bool "json detected" true (Wire.Decoder.framing dec = Some Wire.Json);
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed dec (Wire.encode Wire.Binary Wire.Eof);
  (match Wire.Decoder.next dec with
  | Ok (Some Wire.Eof) -> ()
  | _ -> Alcotest.fail "binary frame not decoded");
  check_bool "binary detected" true
    (Wire.Decoder.framing dec = Some Wire.Binary)

let test_submit_roundtrip_example () =
  (* One worked example with exact expectations, so a fuzz regression
     has a readable anchor. *)
  let sla =
    Sla.make
      ~levels:[ { Sla.bound = 100.0; gain = 2.0 }; { bound = 250.0; gain = 0.5 } ]
      ~penalty:1.0
  in
  let q = Query.make ~est_size:19.5 ~id:42 ~arrival:1234.5 ~size:20.25 ~sla () in
  List.iter
    (fun framing ->
      match Wire.decode framing (Wire.encode framing (Wire.Submit q)) with
      | Ok (Wire.Submit q', _) ->
        check_int "id" 42 q'.Query.id;
        check_bool "arrival" true (q'.Query.arrival = 1234.5);
        check_bool "size" true (q'.Query.size = 20.25);
        check_bool "est" true (q'.Query.est_size = 19.5);
        check_bool "sla" true (Sla.equal sla q'.Query.sla)
      | _ -> Alcotest.fail "submit did not round-trip")
    [ Wire.Binary; Wire.Json ]

let () =
  Alcotest.run "wire"
    [
      ( "jsonx",
        [
          Alcotest.test_case "parse" `Quick test_jsonx_parse;
          Alcotest.test_case "float literal roundtrip" `Quick
            test_jsonx_float_roundtrip;
          Alcotest.test_case "print/parse identity" `Quick
            test_jsonx_print_parse;
        ] );
      ( "roundtrip",
        [
          qtest prop_roundtrip_binary;
          qtest prop_roundtrip_json;
          Alcotest.test_case "submit example" `Quick
            test_submit_roundtrip_example;
        ] );
      ( "decoder",
        [
          qtest (prop_decoder_chunked Wire.Binary);
          qtest (prop_decoder_chunked Wire.Json);
          qtest prop_truncation_binary;
          Alcotest.test_case "garbage rejection" `Quick test_garbage_prefix;
          Alcotest.test_case "framing autodetect" `Quick
            test_framing_autodetect;
        ] );
    ]
