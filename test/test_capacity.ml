(* Tests for capacity planning: the fictitious-server margin estimate
   and the replayed ground truth (paper Secs 6.3, 7.4). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_queries ?(n = 3_000) ?(load = 0.9) ?(servers = 2) ?(seed = 42) () =
  Trace.generate
    (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load ~servers
       ~n_queries:n ~seed ())

let planner = Planner.cbs ~rate:(1.0 /. 20.0)
let scheduler = Schedulers.cbs_sla_tree ~rate:(1.0 /. 20.0)

let test_estimation_runs_and_measures () =
  let queries = make_queries () in
  let metrics, est =
    Capacity.run_with_estimation ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:1_000
  in
  check_int "all completed" 3_000 (Metrics.completed_count metrics);
  check_int "measured window" 2_000 est.Capacity.measured;
  check_bool "estimate is finite" true (Float.is_finite est.Capacity.est_margin_per_query)

let test_estimate_nonnegative_under_load () =
  (* g0 (idle server) can never be worse than the best real insertion:
     an idle server both serves the query sooner and displaces
     nothing. *)
  let queries = make_queries ~load:0.95 () in
  let _, est =
    Capacity.run_with_estimation ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:1_000
  in
  check_bool "margin >= 0" true (est.Capacity.est_margin_per_query >= -1e-9)

let test_ground_truth_positive_when_congested () =
  let queries = make_queries ~load:0.95 ~servers:2 () in
  let gt =
    Capacity.ground_truth ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:1_000
  in
  check_bool "extra server helps a congested system" true (gt > 0.0)

let test_ground_truth_near_zero_when_overprovisioned () =
  (* The paper's first extreme case (Sec 6.3): an over-provisioned
     system gains almost nothing from yet another server. *)
  let queries = make_queries ~load:0.1 ~servers:8 () in
  let gt =
    Capacity.ground_truth ~queries ~n_servers:8 ~planner ~scheduler
      ~warmup_id:1_000
  in
  check_bool "no headroom worth buying" true (Float.abs gt < 0.01)

let test_estimate_tracks_ground_truth () =
  (* The estimate should land in the same ballpark as the replayed
     truth (the paper's Table 4 shows agreement within a small absolute
     error). *)
  let queries = make_queries ~n:6_000 ~load:0.9 ~servers:2 ~seed:7 () in
  let _, est =
    Capacity.run_with_estimation ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:3_000
  in
  let gt =
    Capacity.ground_truth ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:3_000
  in
  (* The paper's Table 4 shows the estimate over- or under-shooting
     the truth by up to ~1.8x at small server counts; we require the
     same ballpark (within 3x plus a small absolute slack), same
     sign. *)
  let e = est.Capacity.est_margin_per_query in
  check_bool
    (Printf.sprintf "est %.4f vs gt %.4f" e gt)
    true
    (e >= (gt /. 3.0) -. 0.02 && e <= (gt *. 3.0) +. 0.02)

let test_replay_is_deterministic () =
  (* Regression for the shared [run_sim] helper: replaying the
     identical trace twice (estimation path and once more) must
     produce bit-identical metrics and margin — the simulator holds no
     hidden state across runs. *)
  let queries = make_queries ~n:2_000 () in
  let run () =
    Capacity.run_with_estimation ~queries ~n_servers:2 ~planner ~scheduler
      ~warmup_id:1_000
  in
  let m1, e1 = run () in
  let m2, e2 = run () in
  let exact = Alcotest.(check (float 0.0)) in
  exact "same margin" e1.Capacity.est_margin_per_query
    e2.Capacity.est_margin_per_query;
  check_int "same measured" e1.Capacity.measured e2.Capacity.measured;
  check_int "same completions" (Metrics.completed_count m1)
    (Metrics.completed_count m2);
  exact "same avg loss" (Metrics.avg_loss m1) (Metrics.avg_loss m2);
  exact "same total profit" (Metrics.total_profit m1) (Metrics.total_profit m2);
  exact "same p95"
    (Metrics.response_percentile m1 95.0)
    (Metrics.response_percentile m2 95.0);
  (* And the ground-truth path shares the same helper. *)
  let g1 = Capacity.ground_truth ~queries ~n_servers:2 ~planner ~scheduler ~warmup_id:1_000 in
  let g2 = Capacity.ground_truth ~queries ~n_servers:2 ~planner ~scheduler ~warmup_id:1_000 in
  exact "same ground truth" g1 g2

let test_margin_decreases_with_servers () =
  (* More servers at the same system load -> smaller marginal value
     (the Table 4 trend). *)
  let margin m =
    let queries = make_queries ~n:4_000 ~servers:m ~seed:11 () in
    let _, est =
      Capacity.run_with_estimation ~queries ~n_servers:m ~planner ~scheduler
        ~warmup_id:2_000
    in
    est.Capacity.est_margin_per_query
  in
  let m2 = margin 2 and m8 = margin 8 in
  check_bool (Printf.sprintf "m2 %.4f > m8 %.4f" m2 m8) true (m2 > m8)

let () =
  Alcotest.run "capacity"
    [
      ( "estimation",
        [
          Alcotest.test_case "runs and measures" `Quick test_estimation_runs_and_measures;
          Alcotest.test_case "margin non-negative" `Quick
            test_estimate_nonnegative_under_load;
          Alcotest.test_case "replay is deterministic" `Quick
            test_replay_is_deterministic;
        ] );
      ( "ground-truth",
        [
          Alcotest.test_case "positive when congested" `Quick
            test_ground_truth_positive_when_congested;
          Alcotest.test_case "near zero when over-provisioned" `Quick
            test_ground_truth_near_zero_when_overprovisioned;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "estimate tracks truth" `Slow test_estimate_tracks_ground_truth;
          Alcotest.test_case "margin decreases with servers" `Slow
            test_margin_decreases_with_servers;
        ] );
    ]
