(* Tests for lib/fault: crash/degrade/restore semantics on
   hand-computed schedules, the retry policy and its SLA clock, plan
   construction and parsing, determinism, and a QCheck chaos fuzz that
   checks query conservation under arbitrary fault storms. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(sla = Sla.one_zero ~bound:1e9) ?arrival id size =
  let arrival = match arrival with Some a -> a | None -> 0.0 in
  Query.make ~id ~arrival ~size ~sla ()

let fcfs_pick ~now:_ _buffer = 0

(* Run [queries] on [n_servers] under [plan], dispatching with a fixed
   target function (default: LWL-free "first dispatchable"). *)
let run_fault ?(retry = Fault.default_retry) ?(n_servers = 2) ?dispatch ~plan
    queries =
  let injector = Fault.create ~retry ~plan () in
  let metrics = Metrics.create ~warmup_id:0 () in
  let dispatch =
    match dispatch with
    | Some d -> d
    | None ->
      fun sim (_q : Query.t) ->
        let target = ref None in
        for sid = Sim.n_servers sim - 1 downto 0 do
          if Sim.dispatchable sim sid then target := Some sid
        done;
        { Sim.target = !target; est_delta = None }
  in
  Sim.run
    ~timers:(Fault.timers injector)
    ~on_server_event:(Fault.on_server_event injector)
    ~queries ~n_servers ~pick_next:fcfs_pick ~dispatch ~metrics ();
  Fault.finalize injector metrics;
  (metrics, Fault.stats injector)

(* ------------------------------------------------------------------ *)
(* Hand-computed schedules *)

(* Server 0 runs q0 (10 ms) with q1 buffered behind it; the crash at
   t=3 orphans both. They re-enter the dispatcher and land on the idle
   server 1: q0 reruns 3..13, q1 runs 13..18. *)
let crash_case ~retry =
  let queries = [| mk 0 10.0; mk 1 5.0 ~arrival:1.0 |] in
  let dispatch sim (q : Query.t) =
    let target = if q.Query.retries > 0 then 1 else 0 in
    let target = if Sim.dispatchable sim target then target else 1 in
    { Sim.target = Some target; est_delta = None }
  in
  run_fault ~retry ~dispatch
    ~plan:(Fault.scripted [ Fault.Crash { at = 3.0; sid = 0 } ])
    queries

let test_crash_reruns_orphans () =
  let m, s = crash_case ~retry:Fault.default_retry in
  check_int "crashes" 1 s.Fault.crashes;
  check_int "both orphans retried" 2 s.Fault.retries;
  check_int "nothing lost" 0 s.Fault.lost;
  check_int "both complete" 2 (Metrics.completed_count m);
  check_int "lost metric agrees" 0 (Metrics.lost_count m);
  (* Responses: q0 completes at 13 (arrived 0), q1 at 18 (arrived 1). *)
  check_float "rerun-from-scratch completions" ((13.0 +. 17.0) /. 2.0)
    (Metrics.avg_response m)

let test_retry_keeps_sla_clock () =
  (* Same schedule, deadline 15: q0's retry completes at t=13 —
     on time only against its ORIGINAL t=0 arrival (response 13); q1
     (response 17) is late. A retry that (wrongly) reset its clock
     would make both look on time. *)
  let sla = Sla.one_zero ~bound:15.0 in
  let queries =
    [| mk 0 10.0 ~sla; mk 1 5.0 ~arrival:1.0 ~sla |]
  in
  let dispatch sim (q : Query.t) =
    let target = if q.Query.retries > 0 then 1 else 0 in
    let target = if Sim.dispatchable sim target then target else 1 in
    { Sim.target = Some target; est_delta = None }
  in
  let m, _ =
    run_fault ~dispatch
      ~plan:(Fault.scripted [ Fault.Crash { at = 3.0; sid = 0 } ])
      queries
  in
  check_int "exactly the slow retry is late" 1 (Metrics.late_count m);
  check_float "profit counts one on-time query" 1.0 (Metrics.total_profit m)

let test_retry_cap_loses_orphans () =
  let m, s = crash_case ~retry:{ Fault.max_retries = 0; requeue = true } in
  check_int "no retries under a zero cap" 0 s.Fault.retries;
  check_int "both orphans lost" 2 s.Fault.lost;
  check_int "metrics account the loss" 2 (Metrics.lost_count m);
  check_int "nothing completes" 0 (Metrics.completed_count m)

let test_no_requeue_loses_orphans () =
  let m, s = crash_case ~retry:{ Fault.max_retries = 3; requeue = false } in
  check_int "no retries without requeue" 0 s.Fault.retries;
  check_int "both orphans lost" 2 s.Fault.lost;
  check_int "metrics account the loss" 2 (Metrics.lost_count m)

let test_degrade_stretches_running_query () =
  (* One server, q0 of 10 ms. Brownout to half speed at t=2: 2 ms done,
     8 ms left at half rate -> completes at 2 + 16 = 18. *)
  let m, s =
    run_fault ~n_servers:1
      ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
      ~plan:(Fault.scripted [ Fault.Degrade { at = 2.0; sid = 0; factor = 0.5 } ])
      [| mk 0 10.0 |]
  in
  check_int "degrades" 1 s.Fault.degrades;
  check_float "completion stretched" 18.0 (Metrics.avg_response m)

let test_restore_resumes_nominal_rate () =
  (* Brownout 2..6 (4 ms at half rate = 2 ms of work), then repaired:
     10 - 2 - 2 = 6 ms left at nominal -> completes at 12. *)
  let m, s =
    run_fault ~n_servers:1
      ~dispatch:(fun _ _ -> { Sim.target = Some 0; est_delta = None })
      ~plan:
        (Fault.scripted
           [
             Fault.Degrade { at = 2.0; sid = 0; factor = 0.5 };
             Fault.Restore { at = 6.0; sid = 0 };
           ])
      [| mk 0 10.0 |]
  in
  check_int "restored" 1 s.Fault.restores;
  check_float "nominal rate resumes" 12.0 (Metrics.avg_response m)

let test_restore_rejoins_crashed_server () =
  (* Crash server 0 at t=1, restore it at t=2; a query arriving at t=3
     can be dispatched to it again. *)
  let sent_to_zero = ref false in
  let dispatch sim (q : Query.t) =
    if q.Query.id = 1 && Sim.dispatchable sim 0 then begin
      sent_to_zero := true;
      { Sim.target = Some 0; est_delta = None }
    end
    else { Sim.target = Some 1; est_delta = None }
  in
  let m, s =
    run_fault ~dispatch
      ~plan:
        (Fault.scripted
           [ Fault.Crash { at = 1.0; sid = 0 }; Fault.Restore { at = 2.0; sid = 0 } ])
      [| mk 0 0.5; mk 1 1.0 ~arrival:3.0 |]
  in
  check_int "one crash, one restore" 2 (s.Fault.crashes + s.Fault.restores);
  check_bool "restored server takes work again" true !sent_to_zero;
  check_int "everything completes" 2 (Metrics.completed_count m)

let test_crash_never_strands_workload () =
  (* A plan that tries to kill both servers: the second crash would
     leave nothing dispatchable and must be skipped. *)
  let m, s =
    run_fault
      ~plan:
        (Fault.scripted
           [ Fault.Crash { at = 1.0; sid = 0 }; Fault.Crash { at = 1.5; sid = 1 } ])
      [| mk 0 10.0; mk 1 5.0 ~arrival:0.5 |]
  in
  check_int "one crash lands" 1 s.Fault.crashes;
  check_int "the pool-emptying crash is skipped" 1 s.Fault.skipped;
  check_int "workload still drains" 2
    (Metrics.completed_count m + Metrics.lost_count m)

let test_finalize_twice_raises () =
  let injector = Fault.create ~plan:[] () in
  let metrics = Metrics.create ~warmup_id:0 () in
  Fault.finalize injector metrics;
  check_bool "second finalize raises" true
    (match Fault.finalize injector metrics with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Plans: construction, parsing, determinism *)

let test_scripted_sorts_and_validates () =
  let plan =
    Fault.scripted
      [ Fault.Restore { at = 5.0; sid = 0 }; Fault.Crash { at = 1.0; sid = 0 } ]
  in
  check_float "sorted by time" 1.0 (Fault.event_time (List.hd plan));
  let raises l =
    match Fault.scripted l with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "negative time rejected" true
    (raises [ Fault.Crash { at = -1.0; sid = 0 } ]);
  check_bool "negative sid rejected" true
    (raises [ Fault.Crash { at = 0.0; sid = -1 } ]);
  check_bool "non-positive factor rejected" true
    (raises [ Fault.Degrade { at = 0.0; sid = 0; factor = 0.0 } ])

let test_random_plan_deterministic () =
  let draw () =
    Fault.random_plan ~degrade_prob:0.4 ~seed:11 ~horizon:10_000.0 ~n_servers:4
      ~mttf:2_000.0 ~mttr:300.0 ()
  in
  check_bool "same seed, same plan" true (draw () = draw ());
  let other =
    Fault.random_plan ~degrade_prob:0.4 ~seed:12 ~horizon:10_000.0 ~n_servers:4
      ~mttf:2_000.0 ~mttr:300.0 ()
  in
  check_bool "different seed diverges" true (draw () <> other)

let test_random_plan_every_fault_repaired () =
  let plan =
    Fault.random_plan ~degrade_prob:0.5 ~seed:3 ~horizon:20_000.0 ~n_servers:6
      ~mttf:3_000.0 ~mttr:500.0 ()
  in
  check_bool "non-empty at this mttf" true (plan <> []);
  (* Walk each server's events in time order: faults and repairs must
     alternate, starting with a fault and ending with a Restore. *)
  for sid = 0 to 5 do
    let evs =
      List.filter
        (fun e ->
          match e with
          | Fault.Crash c -> c.sid = sid
          | Fault.Degrade d -> d.sid = sid
          | Fault.Restore r -> r.sid = sid)
        plan
    in
    let rec walk want_fault = function
      | [] -> true
      | Fault.Restore _ :: rest -> (not want_fault) && walk true rest
      | (Fault.Crash _ | Fault.Degrade _) :: rest -> want_fault && walk false rest
    in
    check_bool "faults and repairs alternate" true (walk true evs);
    match List.rev evs with
    | Fault.Restore _ :: _ | [] -> ()
    | _ -> Alcotest.fail "a fault was left permanent"
  done

let test_plan_of_spec () =
  let parse s = Fault.plan_of_spec s ~horizon:10_000.0 ~n_servers:4 in
  check_bool "none is empty" true (parse "none" = []);
  check_bool "empty string is empty" true (parse "" = []);
  check_bool "moderate preset draws" true (parse "moderate" <> []);
  check_bool "seeded preset is deterministic" true
    (parse "severe:5" = parse "severe:5");
  check_bool "model form draws" true (parse "mttf=2000,mttr=300,seed=1" <> []);
  (match parse "crash@5:1;degrade@10:2:0.25;restore@20:1" with
  | [ Fault.Crash { at = 5.0; sid = 1 }; Fault.Degrade d; Fault.Restore r ] ->
    check_float "factor parsed" 0.25 d.factor;
    check_float "restore time parsed" 20.0 r.at;
    check_int "restore sid parsed" 1 r.sid
  | _ -> Alcotest.fail "script parse shape");
  let raises s =
    match parse s with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "garbage rejected" true (raises "meteor-strike");
  check_bool "bad number rejected" true (raises "crash@x:0");
  check_bool "missing mttr rejected" true (raises "mttf=100")

let steady_trace ~n_queries ~seed =
  Trace.generate
    (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:0.9
       ~servers:2 ~n_queries ~seed ())

let snapshot (m, (s : Fault.stats)) =
  ( Metrics.total_profit m,
    Metrics.completed_count m,
    Metrics.lost_count m,
    Metrics.late_count m,
    s.Fault.crashes,
    s.Fault.retries )

let test_same_plan_identical_metrics () =
  let queries = steady_trace ~n_queries:400 ~seed:21 in
  let go () =
    run_fault
      ~plan:(Fault.plan_of_spec "severe:9" ~horizon:4_000.0 ~n_servers:2)
      queries
  in
  check_bool "two runs of one plan agree exactly" true
    (snapshot (go ()) = snapshot (go ()))

let test_empty_plan_is_inert () =
  (* The `--faults none` path: an injector over the empty plan must
     reproduce the uninstrumented run bit for bit. *)
  let queries = steady_trace ~n_queries:400 ~seed:22 in
  let with_injector = snapshot (run_fault ~plan:[] queries) in
  let metrics = Metrics.create ~warmup_id:0 () in
  let dispatch sim (_q : Query.t) =
    let target = ref None in
    for sid = Sim.n_servers sim - 1 downto 0 do
      if Sim.dispatchable sim sid then target := Some sid
    done;
    { Sim.target = !target; est_delta = None }
  in
  Sim.run ~queries ~n_servers:2 ~pick_next:fcfs_pick ~dispatch ~metrics ();
  check_bool "hooks with no plan change nothing" true
    (with_injector
    = ( Metrics.total_profit metrics,
        Metrics.completed_count metrics,
        Metrics.lost_count metrics,
        Metrics.late_count metrics,
        0,
        0 ))

(* ------------------------------------------------------------------ *)
(* Chaos fuzz: conservation under arbitrary storms *)

(* Arbitrary fault storms over a real workload: every arrived query
   must end in exactly one of completed / lost (this harness neither
   rejects nor drops), the pool must keep its size, and the injector's
   crash accounting must agree with the metrics. *)
let prop_chaos_conservation =
  let gen =
    QCheck.Gen.(
      let* n_queries = int_range 10 120 in
      let* wl_seed = int_range 0 10_000 in
      let* n_servers = int_range 2 5 in
      let* plan_kind = int_range 0 2 in
      let* plan_seed = int_range 0 10_000 in
      let* max_retries = int_range 0 3 in
      let* requeue = bool in
      return (n_queries, wl_seed, n_servers, plan_kind, plan_seed, max_retries, requeue))
  in
  let arb =
    QCheck.make gen ~print:(fun (n, ws, s, pk, ps, mr, rq) ->
        Printf.sprintf
          "n=%d wl_seed=%d servers=%d plan_kind=%d plan_seed=%d max_retries=%d \
           requeue=%b"
          n ws s pk ps mr rq)
  in
  QCheck.Test.make ~name:"chaos: every query completed or lost exactly once"
    ~count:150 arb
    (fun (n_queries, wl_seed, n_servers, plan_kind, plan_seed, max_retries, requeue) ->
      let queries =
        Trace.generate
          (Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:1.2
             ~servers:n_servers ~n_queries ~seed:wl_seed ())
      in
      let horizon =
        Array.fold_left (fun acc q -> Float.max acc q.Query.arrival) 1.0 queries
      in
      let plan =
        match plan_kind with
        | 0 -> []
        | 1 ->
          Fault.random_plan ~degrade_prob:0.3 ~seed:plan_seed ~horizon
            ~n_servers ~mttf:(horizon /. 2.0) ~mttr:(horizon /. 10.0) ()
        | _ ->
          (* A dense scripted storm: one event every ~tenth of the run,
             round-robin over the servers. *)
          Fault.scripted
            (List.init 12 (fun i ->
                 let at = horizon *. Float.of_int (i + 1) /. 13.0 in
                 let sid = i mod n_servers in
                 match i mod 3 with
                 | 0 -> Fault.Crash { at; sid }
                 | 1 -> Fault.Degrade { at; sid; factor = 0.25 }
                 | _ -> Fault.Restore { at; sid }))
      in
      let m, s =
        run_fault
          ~retry:{ Fault.max_retries; requeue }
          ~n_servers ~plan queries
      in
      let conserved =
        Metrics.completed_count m + Metrics.lost_count m = n_queries
      in
      let stats_agree =
        (* Timers only fire while workload events remain, so events
           scripted past the last completion never run — fired events
           are bounded by, not equal to, the plan length. *)
        s.Fault.lost = Metrics.lost_count m
        && s.Fault.crashes + s.Fault.degrades + s.Fault.restores + s.Fault.skipped
           <= List.length plan
        && List.length s.Fault.recoveries <= s.Fault.crashes
      in
      if not conserved then
        QCheck.Test.fail_reportf "lost queries: %d completed + %d lost <> %d"
          (Metrics.completed_count m) (Metrics.lost_count m) n_queries;
      if not stats_agree then QCheck.Test.fail_report "stats disagree";
      true)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fault"
    [
      ( "semantics",
        [
          Alcotest.test_case "crash reruns orphans" `Quick
            test_crash_reruns_orphans;
          Alcotest.test_case "retry keeps the SLA clock" `Quick
            test_retry_keeps_sla_clock;
          Alcotest.test_case "retry cap loses orphans" `Quick
            test_retry_cap_loses_orphans;
          Alcotest.test_case "no requeue loses orphans" `Quick
            test_no_requeue_loses_orphans;
          Alcotest.test_case "degrade stretches the running query" `Quick
            test_degrade_stretches_running_query;
          Alcotest.test_case "restore resumes nominal rate" `Quick
            test_restore_resumes_nominal_rate;
          Alcotest.test_case "restore rejoins a crashed server" `Quick
            test_restore_rejoins_crashed_server;
          Alcotest.test_case "crash never strands the workload" `Quick
            test_crash_never_strands_workload;
          Alcotest.test_case "finalize twice raises" `Quick
            test_finalize_twice_raises;
        ] );
      ( "plans",
        [
          Alcotest.test_case "scripted sorts and validates" `Quick
            test_scripted_sorts_and_validates;
          Alcotest.test_case "random plan deterministic" `Quick
            test_random_plan_deterministic;
          Alcotest.test_case "every random fault repaired" `Quick
            test_random_plan_every_fault_repaired;
          Alcotest.test_case "spec grammar" `Quick test_plan_of_spec;
          Alcotest.test_case "same plan, identical metrics" `Quick
            test_same_plan_identical_metrics;
          Alcotest.test_case "empty plan is inert" `Quick
            test_empty_plan_is_inert;
        ] );
      ("chaos", [ qtest prop_chaos_conservation ]);
    ]
