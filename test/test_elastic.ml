(* Tests for the elastic server pool: config validation, the removal
   probe, the drain protocol, pool bounds, the conservation invariant
   across scale events, and the autoscaling experiment's economics. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 0.0))

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let mk_config ?(interval = 200.0) ?(cost = 2.0) ?(boot = 0.0) ?(cooldown = 0.0)
    ?(min_servers = 1) ?(max_servers = 8) () =
  Elastic.config ~interval ~cost_per_interval:cost ~boot_delay:boot ~cooldown
    ~min_servers ~max_servers ()

(* The shared scenario: a square-wave workload whose bursts force
   scale-ups and whose quiet halves force drains. *)
let bursty_queries ?(n = 1_200) ?(seed = 424242) () =
  let cfg =
    Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_b ~load:1.0
      ~servers:3 ~n_queries:n ~seed ()
  in
  let span = Float.of_int n *. 20.0 /. (1.1 *. 3.0) in
  Bursty.generate cfg
    (Bursty.square ~period:(span /. 4.0) ~duty:0.5 ~low:0.2 ~high:2.0)

let test_config_validation () =
  check_bool "zero interval" true
    (raises_invalid (fun () -> mk_config ~interval:0.0 ()));
  check_bool "negative cost" true
    (raises_invalid (fun () -> mk_config ~cost:(-1.0) ()));
  check_bool "min > max" true
    (raises_invalid (fun () -> mk_config ~min_servers:5 ~max_servers:2 ()));
  check_bool "min < 1" true
    (raises_invalid (fun () -> mk_config ~min_servers:0 ()));
  check_bool "negative boot delay" true
    (raises_invalid (fun () -> mk_config ~boot:(-1.0) ()))

(* ------------------------------------------------------------------ *)
(* Probes *)

let test_removal_probe () =
  (* Observed mid-run from the ticker: the probe is finite and
     non-negative on every accepting server, and the cheapest pick is
     among them. *)
  let queries = bursty_queries ~n:600 () in
  let checked = ref 0 in
  let ticker sim =
    for sid = 0 to Sim.n_servers sim - 1 do
      if Sim.dispatchable sim sid then begin
        let c = Elastic.removal_cost sim ~sid in
        check_bool "removal cost >= 0" true (c >= 0.0);
        check_bool "removal cost finite" true (Float.is_finite c);
        incr checked
      end
    done;
    match Elastic.cheapest_removal sim with
    | Some (sid, c) ->
      check_bool "cheapest is accepting" true (Sim.dispatchable sim sid);
      check_bool "cheapest cost >= 0" true (c >= 0.0)
    | None -> check_bool "none only when <2 accept" true (Sim.dispatchable_count sim < 2)
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~ticker:(100.0, ticker) ~queries ~n_servers:3
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:(Dispatchers.instantiate Dispatchers.lwl)
    ~metrics ();
  check_bool "probes exercised" true (!checked > 10)

let test_cheapest_removal_needs_two () =
  let queries = [| Query.make ~id:0 ~arrival:0.0 ~size:5.0 ~sla:(Sla.one_zero ~bound:50.0) () |] in
  let saw = ref None in
  let ticker sim = saw := Some (Elastic.cheapest_removal sim) in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~ticker:(1.0, ticker) ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:(Dispatchers.instantiate Dispatchers.lwl)
    ~metrics ();
  check_bool "single server is never removable" true (!saw = Some None)

(* ------------------------------------------------------------------ *)
(* Drain protocol on the raw simulator *)

let test_boot_delay_respected () =
  (* A server added with a boot delay must refuse dispatches until its
     ready time, then accept. *)
  let sla = Sla.one_zero ~bound:100.0 in
  let queries =
    Array.init 8 (fun i ->
        Query.make ~id:i ~arrival:(Float.of_int i *. 5.0) ~size:4.0 ~sla ())
  in
  let added = ref None in
  let ticker sim =
    if !added = None then added := Some (Sim.add_server ~boot_delay:12.0 sim)
  in
  let observed = ref [] in
  let dispatch sim q =
    (match !added with
    | Some sid ->
      observed := (q.Query.arrival, Sim.dispatchable sim sid) :: !observed
    | None -> ());
    { Sim.target = Some 0; est_delta = None }
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~ticker:(3.0, ticker) ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch ~metrics ();
  (* The ticker fires at t=3 -> ready at 15. Arrivals at 5 and 10 must
     see it unavailable; arrivals from 15 on must see it accepting. *)
  List.iter
    (fun (t, ok) ->
      if t < 15.0 then check_bool "not dispatchable while booting" false ok
      else check_bool "dispatchable once booted" true ok)
    !observed;
  check_bool "observed both phases" true
    (List.exists (fun (t, _) -> t < 15.0) !observed
    && List.exists (fun (t, _) -> t >= 15.0) !observed)

let test_retire_last_server_rejected () =
  let queries = [| Query.make ~id:0 ~arrival:0.0 ~size:5.0 ~sla:(Sla.one_zero ~bound:50.0) () |] in
  let result = ref false in
  let ticker sim =
    result := raises_invalid (fun () -> Sim.retire_server sim 0)
  in
  let metrics = Metrics.create ~warmup_id:0 () in
  Sim.run ~ticker:(1.0, ticker) ~queries ~n_servers:1
    ~pick_next:(Schedulers.pick Schedulers.fcfs)
    ~dispatch:(Dispatchers.instantiate Dispatchers.lwl)
    ~metrics ();
  check_bool "cannot drain the whole pool" true !result

(* ------------------------------------------------------------------ *)
(* The controller end to end: conservation and drain discipline *)

(* Replicates Elastic.run's wiring but inserts observers that track
   (a) per-query fate and (b) per-server life-cycle discipline. *)
let run_instrumented ~queries ~config ~policy ~n_servers =
  let n = Array.length queries in
  let completed = Array.make n 0 in
  let dropped = Array.make n 0 in
  let drained = Hashtbl.create 8 in
  let retired = Hashtbl.create 8 in
  let violations = ref [] in
  let c = Elastic.create config policy ~initial_servers:n_servers in
  let metrics = Metrics.create ~warmup_id:0 () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let dispatch = Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()) in
  let on_server_event ~sid ~now ev =
    (match ev with
    | Sim.Draining -> Hashtbl.replace drained sid ()
    | Sim.Retired -> Hashtbl.replace retired sid ()
    | Sim.Enqueued _ | Sim.Started _ ->
      (* No new work may reach a draining or retired server. A Started
         on a *draining* server is legal only when its own buffer is
         worked off naturally — the controller always redistributes,
         so here both are violations once draining began. *)
      if Hashtbl.mem drained sid || Hashtbl.mem retired sid then
        violations := (sid, now) :: !violations
    | Sim.Dropped q -> dropped.(q.Query.id) <- dropped.(q.Query.id) + 1
    | Sim.Finished _ | Sim.Scaled_up -> ()
    | Sim.Crashed | Sim.Degraded _ | Sim.Restored -> ());
    Elastic.on_server_event c ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  Sim.run
    ~on_dispatch:(fun ~now q d -> Elastic.on_dispatch c ~now q d)
    ~on_complete:(fun q ~completion:_ ->
      completed.(q.Query.id) <- completed.(q.Query.id) + 1)
    ~on_server_event
    ~ticker:(config.Elastic.interval, Elastic.tick c)
    ~queries ~n_servers ~pick_next ~dispatch ~metrics ();
  (completed, dropped, !violations, Elastic.summary c, metrics)

let test_conservation_across_scale_events () =
  let queries = bursty_queries () in
  let config =
    mk_config ~interval:150.0 ~cost:3.0 ~boot:50.0 ~cooldown:300.0
      ~min_servers:2 ~max_servers:8 ()
  in
  let completed, dropped, violations, s, metrics =
    run_instrumented ~queries ~config ~policy:Elastic.sla_tree_policy
      ~n_servers:3
  in
  (* The scenario must actually scale in both directions. *)
  check_bool "scaled up" true (s.Elastic.scale_ups > 0);
  check_bool "scaled down" true (s.Elastic.scale_downs > 0);
  (* Conservation: every arrival is served exactly once (no drop
     policy installed), none lost or duplicated during drains. *)
  Array.iteri
    (fun id k ->
      check_int (Printf.sprintf "query %d served exactly once" id) 1 k;
      check_int (Printf.sprintf "query %d never dropped" id) 0 dropped.(id))
    completed;
  check_int "metrics agree" (Array.length queries)
    (Metrics.completed_count metrics);
  check_int "no dispatches to draining/retired servers" 0
    (List.length violations);
  check_bool "pool stayed in bounds" true
    (s.Elastic.peak_pool <= 8 && s.Elastic.min_pool >= 2)

let test_conservation_with_drop_policy () =
  (* Same invariant with drops allowed: served once XOR dropped once. *)
  let queries = bursty_queries ~seed:98765 () in
  let config =
    mk_config ~interval:150.0 ~cost:3.0 ~cooldown:300.0 ~min_servers:2
      ~max_servers:8 ()
  in
  let n = Array.length queries in
  let completed = Array.make n 0 in
  let dropped = Array.make n 0 in
  let c = Elastic.create config Elastic.sla_tree_policy ~initial_servers:3 in
  let metrics = Metrics.create ~warmup_id:0 () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let dispatch = Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()) in
  let on_server_event ~sid ~now ev =
    (match ev with
    | Sim.Dropped q -> dropped.(q.Query.id) <- dropped.(q.Query.id) + 1
    | _ -> ());
    Elastic.on_server_event c ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  Sim.run ~drop_policy:Sim.drop_past_last_deadline
    ~on_dispatch:(fun ~now q d -> Elastic.on_dispatch c ~now q d)
    ~on_complete:(fun q ~completion:_ ->
      completed.(q.Query.id) <- completed.(q.Query.id) + 1)
    ~on_server_event
    ~ticker:(config.Elastic.interval, Elastic.tick c)
    ~queries ~n_servers:3 ~pick_next ~dispatch ~metrics ();
  Array.iteri
    (fun id k ->
      check_int
        (Printf.sprintf "query %d served or dropped exactly once" id)
        1
        (k + dropped.(id)))
    completed;
  check_int "counts partition the trace" n
    (Metrics.completed_count metrics + Metrics.dropped_count metrics)

let test_pool_bounds_enforced () =
  (* Pathological policies must be clamped by the controller. *)
  let queries = bursty_queries ~n:800 () in
  let config =
    mk_config ~interval:100.0 ~min_servers:2 ~max_servers:5 ()
  in
  let always what = { Elastic.name = "always"; decide = (fun _ -> what) } in
  let _, _, _, up, _ =
    run_instrumented ~queries ~config ~policy:(always (Elastic.Scale_up 3))
      ~n_servers:3
  in
  check_bool "never exceeds max" true (up.Elastic.peak_pool <= 5);
  let _, _, violations, down, m =
    run_instrumented ~queries ~config ~policy:(always (Elastic.Scale_down 3))
      ~n_servers:4
  in
  check_bool "never under min" true (down.Elastic.min_pool >= 2);
  check_int "drain discipline holds" 0 (List.length violations);
  check_int "still conserves queries" 800 (Metrics.completed_count m)

let test_static_policy_holds () =
  let queries = bursty_queries ~n:600 () in
  let config = mk_config ~interval:100.0 () in
  let _, _, _, s, _ =
    run_instrumented ~queries ~config ~policy:Elastic.static ~n_servers:3
  in
  check_int "no ups" 0 s.Elastic.scale_ups;
  check_int "no downs" 0 s.Elastic.scale_downs;
  check_int "peak = initial" 3 s.Elastic.peak_pool;
  check_int "min = initial" 3 s.Elastic.min_pool;
  check_bool "made decisions" true (s.Elastic.decisions > 0);
  check_bool "paid rent" true (s.Elastic.cost > 0.0)

(* ------------------------------------------------------------------ *)
(* Server types: quantum billing and the legacy flat-rate path *)

let test_server_type_validation () =
  let mk ?speed ?(price = 1.0) ?(quantum = 100.0) ?boot_delay name =
    Elastic.server_type ?speed ?boot_delay ~name ~price ~quantum ()
  in
  check_bool "empty name" true (raises_invalid (fun () -> mk ""));
  check_bool "zero speed" true (raises_invalid (fun () -> mk ~speed:0.0 "m"));
  check_bool "negative price" true
    (raises_invalid (fun () -> mk ~price:(-1.0) "m"));
  check_bool "zero quantum" true
    (raises_invalid (fun () -> mk ~quantum:0.0 "m"));
  check_bool "negative boot delay" true
    (raises_invalid (fun () -> mk ~boot_delay:(-1.0) "m"))

let test_quantum_round_up () =
  let ty = Elastic.server_type ~name:"m" ~price:3.0 ~quantum:100.0 () in
  let bill uptime = Elastic.quantum_cost ty ~uptime in
  (* A started quantum is a billed quantum: even zero uptime owes one. *)
  check_float "zero uptime owes a quantum" 3.0 (bill 0.0);
  check_float "partial quantum rounds up" 3.0 (bill 1.0);
  check_float "exact boundary stays at one" 3.0 (bill 100.0);
  check_float "just past the boundary owes two" 6.0 (bill 101.0);
  check_float "two and a half quanta owe three" 9.0 (bill 250.0)

let test_untyped_config_flat_billing () =
  (* With [types] left empty the controller must bill exactly the
     legacy flat integral — the typed path contributes nothing, down
     to the last bit of the cost float. *)
  let queries = bursty_queries () in
  let config =
    mk_config ~interval:150.0 ~cost:3.0 ~boot:50.0 ~cooldown:300.0
      ~min_servers:2 ~max_servers:8 ()
  in
  let _, _, _, s, _ =
    run_instrumented ~queries ~config ~policy:Elastic.sla_tree_policy
      ~n_servers:3
  in
  check_bool "scenario scaled" true (s.Elastic.scale_ups > 0);
  Alcotest.(check int64)
    "cost is the flat integral, bitwise"
    (Int64.bits_of_float (s.Elastic.server_time /. 150.0 *. 3.0))
    (Int64.bits_of_float s.Elastic.cost);
  check_float "typed share is zero" 0.0 s.Elastic.typed_cost;
  check_bool "no typed boots" true (s.Elastic.boots_by_type = [])

let test_typed_pool_billing () =
  (* With server types configured, scale-up boots pick a type, each
     boot is billed at least one quantum, and the total cost splits
     exactly into flat integral + typed quanta. *)
  let small = Elastic.server_type ~name:"small" ~price:2.0 ~quantum:150.0 () in
  let large =
    Elastic.server_type ~speed:2.0 ~boot_delay:40.0 ~name:"large" ~price:4.5
      ~quantum:150.0 ()
  in
  let config =
    Elastic.config ~interval:150.0 ~cost_per_interval:3.0 ~boot_delay:50.0
      ~cooldown:300.0
      ~types:[| small; large |]
      ~min_servers:2 ~max_servers:8 ()
  in
  let queries = bursty_queries () in
  let c = Elastic.create config Elastic.sla_tree_policy ~initial_servers:3 in
  let metrics = Metrics.create ~warmup_id:0 () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let dispatch = Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()) in
  let on_server_event ~sid ~now ev =
    Elastic.on_server_event c ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  let last = ref 0.0 in
  let tick sim =
    last := Sim.now sim;
    Elastic.tick c sim
  in
  Sim.run
    ~on_dispatch:(fun ~now q d -> Elastic.on_dispatch c ~now q d)
    ~on_server_event
    ~ticker:(config.Elastic.interval, tick)
    ~queries ~n_servers:3 ~pick_next ~dispatch ~metrics ();
  Elastic.finalize c ~now:!last;
  let s = Elastic.summary c in
  check_bool "scenario scaled" true (s.Elastic.scale_ups > 0);
  let boots =
    List.fold_left (fun acc (_, k) -> acc + k) 0 s.Elastic.boots_by_type
  in
  check_bool "boots carry a type" true (boots > 0);
  check_bool "typed quanta billed" true (s.Elastic.typed_cost > 0.0);
  check_bool "each boot owes at least the cheapest quantum" true
    (s.Elastic.typed_cost >= Float.of_int boots *. 2.0);
  Alcotest.(check int64)
    "cost = flat integral + typed quanta, bitwise"
    (Int64.bits_of_float
       ((s.Elastic.server_time /. 150.0 *. 3.0) +. s.Elastic.typed_cost))
    (Int64.bits_of_float s.Elastic.cost)

(* ------------------------------------------------------------------ *)
(* Cooldown semantics: shrink-only throttling (regression for the
   audit in the predictive-autoscaling change) *)

let test_cooldown_gates_scale_down_only () =
  let always what = { Elastic.name = "always"; decide = (fun _ -> what) } in
  let queries = bursty_queries ~n:800 () in
  let interval = 100.0 and cooldown = 350.0 in
  let config =
    mk_config ~interval ~cooldown ~min_servers:2 ~max_servers:8 ()
  in
  (* A policy demanding a shrink every tick gets one at most every
     cooldown. *)
  let _, _, _, down, _ =
    run_instrumented ~queries ~config ~policy:(always (Elastic.Scale_down 1))
      ~n_servers:8
  in
  check_bool "shrinks happened" true (down.Elastic.scale_downs >= 2);
  let rec gaps = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      check_bool
        (Printf.sprintf "downs %.0f -> %.0f spaced by cooldown" t1 t2)
        true
        (t2 -. t1 >= cooldown);
      gaps rest
    | _ -> ()
  in
  gaps down.Elastic.events;
  (* The same cooldown must never throttle growth: per the config
     contract, scale-ups stay back-to-back. *)
  let _, _, _, up, _ =
    run_instrumented ~queries ~config ~policy:(always (Elastic.Scale_up 1))
      ~n_servers:2
  in
  check_int "pool filled" 6 up.Elastic.scale_ups;
  let rec has_consecutive = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      t2 -. t1 <= interval +. 1e-9 || has_consecutive rest
    | _ -> false
  in
  check_bool "ups fire on consecutive ticks inside the cooldown" true
    (has_consecutive up.Elastic.events)

(* ------------------------------------------------------------------ *)
(* Predictive policy: the pending-boot guard *)

(* A forecaster already convinced a big square peak is coming: season 8,
   duty 0.5, amplitude far above any rent used below. *)
let trained_square n =
  let f = Forecast.holt_winters ~season:8 () in
  for i = 0 to n - 1 do
    Forecast.observe f (if i mod 8 >= 4 then 100.0 else 0.0)
  done;
  f

let test_predictive_no_double_boot () =
  (* boot_delay spans several intervals; the forecast branch fires
     once, then must hold the identical evidence until those servers
     are online — the controller's cooldown would NOT stop the repeat
     (it gates scale-downs only, proven above). *)
  let cfg = mk_config ~interval:100.0 ~cost:2.0 ~boot:250.0 () in
  let obs_at now =
    {
      Elastic.now;
      pool = 2;
      accepting = 2;
      queue_len = 0;
      backlog = 0.0;
      arrivals = 0;  (* quiet window: the reactive rule sees nothing *)
      margin_per_query = 0.0;
      removal_cost = 0.0;  (* shrinking is free, so only the forecast holds it *)
      cfg;
    }
  in
  let p = Elastic.predictive ~forecast:(trained_square 24) ~horizon:4 () in
  (match p.Elastic.decide (obs_at 0.0) with
  | Elastic.Scale_up _ -> ()
  | a -> Alcotest.failf "expected forecast-driven scale-up, got %a" Elastic.pp_action a);
  (* Same predicted peak one and two ticks later, servers still
     booting: both the re-buy and the scale-down must be suppressed. *)
  check_bool "tick 2 holds" true (p.Elastic.decide (obs_at 100.0) = Elastic.Hold);
  check_bool "tick 3 holds" true (p.Elastic.decide (obs_at 200.0) = Elastic.Hold);
  (* Counterfactual: a fresh policy whose forecaster saw the same
     history but has no boot in flight fires on that same tick-2
     evidence — the pending guard is the only thing holding back. *)
  let p' = Elastic.predictive ~forecast:(trained_square 25) ~horizon:4 () in
  match p'.Elastic.decide (obs_at 100.0) with
  | Elastic.Scale_up _ -> ()
  | a ->
    Alcotest.failf "counterfactual should scale up, got %a" Elastic.pp_action a

(* ------------------------------------------------------------------ *)
(* Economics: the headline acceptance criterion *)

let test_autoscaler_beats_statics () =
  (* On the diurnal experiment workload the SLA-tree autoscaler's net
     (profit - rent) must be at least both static configurations', and
     the queue-threshold baseline must run under the same harness. *)
  let scale = Exp_scale.smoke in
  let rows = Exp_elastic.rows ~scale ~seed:scale.Exp_scale.base_seed () in
  let find l =
    match List.find_opt (fun r -> r.Exp_elastic.label = l) rows with
    | Some r -> r
    | None -> Alcotest.failf "row %s missing" l
  in
  let auto = find "autoscale/SLA-tree" in
  let small = find "static-small" in
  let large = find "static-large" in
  let queue = find "autoscale/queue" in
  check_bool
    (Printf.sprintf "beats static-small (%.0f vs %.0f)" auto.Exp_elastic.net
       small.Exp_elastic.net)
    true
    (auto.Exp_elastic.net >= small.Exp_elastic.net);
  check_bool
    (Printf.sprintf "beats static-large (%.0f vs %.0f)" auto.Exp_elastic.net
       large.Exp_elastic.net)
    true
    (auto.Exp_elastic.net >= large.Exp_elastic.net);
  check_bool "queue baseline actually scaled" true
    (queue.Exp_elastic.ups + queue.Exp_elastic.downs > 0);
  check_bool "autoscaler adapted the pool" true
    (auto.Exp_elastic.peak > auto.Exp_elastic.low)

let three_way shape =
  let scale = Exp_scale.smoke in
  let rows =
    Exp_elastic.rows ~shape ~scale ~seed:scale.Exp_scale.base_seed ()
  in
  let find l =
    match List.find_opt (fun r -> r.Exp_elastic.label = l) rows with
    | Some r -> r.Exp_elastic.net
    | None -> Alcotest.failf "row %s missing" l
  in
  ( find Exp_elastic.reactive_label,
    find Exp_elastic.predictive_label,
    find Exp_elastic.oracle_label )

let test_three_way_ordering_diurnal () =
  (* The tentpole claim: with a real boot delay on a cyclic workload,
     forecast-ahead boots strictly beat reacting after the ramp, and
     the perfect-foresight oracle bounds both from above. *)
  let reactive, predictive, oracle = three_way Exp_elastic.Diurnal in
  check_bool
    (Printf.sprintf "predictive strictly beats reactive (%.0f > %.0f)"
       predictive reactive)
    true (predictive > reactive);
  check_bool
    (Printf.sprintf "oracle bounds predictive (%.0f >= %.0f)" oracle predictive)
    true (oracle >= predictive)

let test_three_way_ordering_square () =
  let reactive, predictive, oracle = three_way Exp_elastic.Square in
  check_bool
    (Printf.sprintf "predictive beats reactive (%.0f >= %.0f)" predictive
       reactive)
    true (predictive >= reactive);
  check_bool
    (Printf.sprintf "oracle bounds predictive (%.0f >= %.0f)" oracle predictive)
    true (oracle >= predictive)

let test_steady_prediction_tax_bounded () =
  (* The no-structure control: Holt–Winters learns cycle-1 noise as
     "seasonality", so a small tax vs the reactive rule is expected —
     but it must stay small, and the oracle still bounds everything. *)
  let reactive, predictive, oracle = three_way Exp_elastic.Steady in
  check_bool
    (Printf.sprintf "tax bounded (%.0f >= 0.85 * %.0f)" predictive reactive)
    true
    (predictive >= 0.85 *. reactive);
  check_bool
    (Printf.sprintf "oracle on top (%.0f >= %.0f)" oracle
       (Float.max reactive predictive))
    true
    (oracle >= Float.max reactive predictive)

let test_elastic_run_harness () =
  (* The one-call harness agrees with the instrumented wiring. *)
  let queries = bursty_queries ~n:600 () in
  let config =
    mk_config ~interval:150.0 ~cost:3.0 ~cooldown:300.0 ~min_servers:2
      ~max_servers:8 ()
  in
  let metrics, s =
    Elastic.run ~policy:Elastic.sla_tree_policy ~config ~queries ~n_servers:3
      ~warmup_id:0 ()
  in
  check_int "all served" 600 (Metrics.completed_count metrics);
  check_bool "cost positive" true (s.Elastic.cost > 0.0);
  let total =
    List.fold_left
      (fun acc (_, a) ->
        match a with
        | Elastic.Scale_up k | Elastic.Scale_down k -> acc + k
        | Elastic.Hold -> acc)
      0 s.Elastic.events
  in
  check_int "events match counters"
    (s.Elastic.scale_ups + s.Elastic.scale_downs)
    total

let () =
  Alcotest.run "elastic"
    [
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] );
      ( "probes",
        [
          Alcotest.test_case "removal cost" `Quick test_removal_probe;
          Alcotest.test_case "cheapest needs two" `Quick
            test_cheapest_removal_needs_two;
        ] );
      ( "drain-protocol",
        [
          Alcotest.test_case "boot delay" `Quick test_boot_delay_respected;
          Alcotest.test_case "last server protected" `Quick
            test_retire_last_server_rejected;
        ] );
      ( "controller",
        [
          Alcotest.test_case "conservation across scale events" `Quick
            test_conservation_across_scale_events;
          Alcotest.test_case "conservation with drops" `Quick
            test_conservation_with_drop_policy;
          Alcotest.test_case "pool bounds" `Quick test_pool_bounds_enforced;
          Alcotest.test_case "static holds" `Quick test_static_policy_holds;
          Alcotest.test_case "run harness" `Quick test_elastic_run_harness;
        ] );
      ( "server-types",
        [
          Alcotest.test_case "type validation" `Quick
            test_server_type_validation;
          Alcotest.test_case "quantum round-up" `Quick test_quantum_round_up;
          Alcotest.test_case "untyped config bills flat, bitwise" `Quick
            test_untyped_config_flat_billing;
          Alcotest.test_case "typed pool billing" `Quick
            test_typed_pool_billing;
        ] );
      ( "cooldown",
        [
          Alcotest.test_case "gates scale-down only" `Quick
            test_cooldown_gates_scale_down_only;
        ] );
      ( "predictive",
        [
          Alcotest.test_case "no double boot while pending" `Quick
            test_predictive_no_double_boot;
        ] );
      ( "economics",
        [
          Alcotest.test_case "autoscaler beats statics" `Slow
            test_autoscaler_beats_statics;
          Alcotest.test_case "three-way ordering (diurnal)" `Slow
            test_three_way_ordering_diurnal;
          Alcotest.test_case "three-way ordering (square)" `Slow
            test_three_way_ordering_square;
          Alcotest.test_case "steady prediction tax bounded" `Slow
            test_steady_prediction_tax_bounded;
        ] );
    ]
