(* Tests for the real-trace workload subsystem: the streaming SWF
   reader/writer and the SLA synthesis layer, against the committed
   fixture (test/data/pwa_excerpt.swf) and generated inputs. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest
let fixture = Filename.concat "data" "pwa_excerpt.swf"

let write_tmp lines =
  let path = Filename.temp_file "slatree" ".swf" in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  path

let with_tmp lines f =
  let path = write_tmp lines in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_all path = List.rev (Swf.fold path ~init:[] ~f:(fun acc j -> j :: acc))

(* ------------------------------------------------------------------ *)
(* SWF reader *)

let test_fixture_parses () =
  let jobs = read_all fixture in
  check_int "job count" 2500 (List.length jobs);
  let first = List.hd jobs in
  check_int "ids start at 1" 1 first.Swf.job_id;
  List.iter
    (fun j ->
      check_bool "submit present" true (Float.is_finite j.Swf.submit);
      check_bool "submit nonneg" true (j.Swf.submit >= 0.0))
    jobs

let test_fixture_metadata () =
  Swf.with_file fixture (fun r ->
      check_bool "header parsed" true (List.length (Swf.metadata r) > 5);
      check_string "MaxJobs" "2500" (Option.get (Swf.find_meta r "MaxJobs"));
      (* case-insensitive *)
      check_string "maxjobs" "2500" (Option.get (Swf.find_meta r "maxjobs"));
      check_bool "absent key" true (Swf.find_meta r "NoSuchKey" = None))

let test_missing_fields_padded () =
  (* Archive tools truncate trailing -1 fields; 4 fields is the legal
     minimum. *)
  with_tmp [ "; Computer: pad test"; "1 10 5 60" ] (fun path ->
      match read_all path with
      | [ j ] ->
        check_int "job id" 1 j.Swf.job_id;
        check_float "submit" 10.0 j.Swf.submit;
        check_float "run time" 60.0 j.Swf.run_time;
        check_int "procs padded" (-1) j.Swf.procs;
        check_float "req_time padded" (-1.0) j.Swf.req_time;
        check_int "think padded" (-1) (Float.to_int j.Swf.think_time)
      | l -> Alcotest.failf "expected 1 job, got %d" (List.length l))

let test_mid_file_comments_and_blanks () =
  with_tmp
    [ "; h: 1"; "1 0 0 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1"; "";
      "; a mid-file comment"; "2 5 0 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1" ]
    (fun path -> check_int "two jobs" 2 (List.length (read_all path)))

let raises_parse f =
  match f () with exception Swf.Parse_error _ -> true | _ -> false

let test_rejects_malformed () =
  check_bool "too few fields" true
    (raises_parse (fun () ->
         with_tmp [ "1 2 3" ] (fun p -> read_all p)));
  check_bool "too many fields" true
    (raises_parse (fun () ->
         with_tmp
           [ "1 0 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 99" ]
           (fun p -> read_all p)));
  check_bool "non-numeric" true
    (raises_parse (fun () ->
         with_tmp [ "1 zero 0 10" ] (fun p -> read_all p)));
  check_bool "NaN rejected" true
    (raises_parse (fun () ->
         with_tmp [ "1 nan 0 10" ] (fun p -> read_all p)))

let test_error_carries_position () =
  with_tmp [ "; header"; "1 0 0 10"; "2 bogus 0 10" ] (fun path ->
      match read_all path with
      | _ -> Alcotest.fail "expected Parse_error"
      | exception Swf.Parse_error msg ->
        check_bool "names file" true
          (String.length msg >= String.length path
          && String.sub msg 0 (String.length path) = path);
        check_bool "names line 3" true
          (String.length msg > String.length path + 2
          && msg.[String.length path + 1] = '3'))

let test_chunked_equals_pull () =
  let pulled = read_all fixture in
  let chunked =
    Swf.with_file fixture (fun r ->
        let rec go acc =
          match Swf.read_chunk r ~max:97 with
          | [||] -> List.concat (List.rev acc)
          | c -> go (Array.to_list c :: acc)
        in
        go [])
  in
  check_int "same count" (List.length pulled) (List.length chunked);
  List.iter2
    (fun a b -> check_bool "same job" true (a = b))
    pulled chunked

let job_gen =
  let open QCheck.Gen in
  (* Times carry millisecond-ish fractions so the %.17g path is
     exercised; -1 marks a missing value, as in the format. *)
  let time =
    oneof
      [
        return (-1.0);
        map (fun f -> Float.round (f *. 1000.0) /. 1000.0)
          (float_bound_exclusive 100000.0);
      ]
  in
  let count = oneof [ return (-1); int_range 1 4096 ] in
  map
    (fun (((job_id, submit, wait, run_time),
           (procs, cpu_time, memory, req_procs),
           (req_time, req_memory, status, user)),
          ((group, app, queue, partition), (preceding, think_time))) ->
      {
        Swf.job_id; submit; wait; run_time; procs; cpu_time; memory;
        req_procs; req_time; req_memory; status; user; group; app; queue;
        partition; preceding; think_time;
      })
    (pair
       (triple
          (quad (int_range 1 1_000_000) time time time)
          (quad count time time count)
          (quad time time (int_range (-1) 5) count))
       (pair (quad count count count count) (pair count time)))

let prop_line_roundtrip =
  QCheck.Test.make ~name:"SWF line round-trips through print/parse" ~count:200
    (QCheck.make job_gen) (fun j ->
      with_tmp [ Swf.line_of_job j ] (fun path ->
          match read_all path with [ j' ] -> j = j' | _ -> false))

let test_save_roundtrip () =
  let jobs = Array.of_list (read_all fixture) in
  let path = Filename.temp_file "slatree" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.save path ~header:[ "Computer: copy"; "MaxJobs: 2500" ] jobs;
      let back = Array.of_list (read_all path) in
      check_int "count" (Array.length jobs) (Array.length back);
      check_bool "all equal" true (jobs = back);
      Swf.with_file path (fun r ->
          check_string "header written" "copy"
            (Option.get (Swf.find_meta r "Computer"))))

(* ------------------------------------------------------------------ *)
(* SLA synthesis *)

let default_cfg ?(time_scale = 10.0) ?(load_factor = 1.0) ?(seed = 1) () =
  Sla_synth.config ~time_scale ~load_factor ~seed ()

let queries ?cfg ?tiles ?max_jobs ?stats () =
  Sla_synth.to_queries
    (match cfg with Some c -> c | None -> default_cfg ())
    ?tiles ?max_jobs ?stats ~path:fixture ()

let test_streaming_equals_eager () =
  let cfg = default_cfg () in
  let eager =
    Sla_synth.queries_of_jobs cfg (Array.of_list (read_all fixture))
  in
  let streamed = queries ~cfg () in
  check_int "count" (Array.length eager) (Array.length streamed);
  Array.iteri
    (fun i q ->
      let s = streamed.(i) in
      check_int "id" q.Query.id s.Query.id;
      check_float "arrival" q.Query.arrival s.Query.arrival;
      check_float "size" q.Query.size s.Query.size;
      check_float "est" q.Query.est_size s.Query.est_size;
      check_bool "sla" true (Sla.equal q.Query.sla s.Query.sla))
    eager

let test_synthesis_deterministic () =
  let a = queries () and b = queries () in
  check_bool "bit-identical" true (a = b)

let test_well_formed () =
  let stats = Sla_synth.stats_create () in
  let qs = queries ~stats () in
  check_int "kept matches stats" stats.Sla_synth.kept (Array.length qs);
  check_int "read all" 2500 stats.Sla_synth.read;
  check_int "read = kept + dropped" stats.Sla_synth.read
    (stats.Sla_synth.kept + stats.Sla_synth.dropped);
  check_bool "some jobs lack estimates" true (stats.Sla_synth.no_estimate > 0);
  let last = ref (-1.0) in
  Array.iteri
    (fun i q ->
      check_int "sequential ids" i q.Query.id;
      check_bool "monotone arrivals" true (q.Query.arrival >= !last);
      last := q.Query.arrival;
      check_bool "positive size" true (q.Query.size > 0.0);
      check_bool "positive est" true (q.Query.est_size > 0.0))
    qs

let test_missing_estimate_means_perfect () =
  (* A job without a requested time gets est_size = size; one with a
     request gets est = req_time * time_scale. *)
  with_tmp
    [ "1 0 0 60 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1";
      "2 10 0 60 1 -1 -1 1 300 -1 1 1 1 1 1 1 -1 -1" ]
    (fun path ->
      let cfg = default_cfg () in
      let qs = Sla_synth.to_queries cfg ~path () in
      check_int "both kept" 2 (Array.length qs);
      check_float "no estimate -> perfect" qs.(0).Query.size
        qs.(0).Query.est_size;
      check_float "estimate scaled" 3000.0 qs.(1).Query.est_size;
      check_float "size scaled" 600.0 qs.(1).Query.size)

let test_drops_and_clamps () =
  with_tmp
    [ "1 10 0 60 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1";
      "2 20 0 -1 1 -1 -1 1 -1 -1 5 1 1 1 1 1 -1 -1";  (* cancelled *)
      "3 5 0 60 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1";   (* submit earlier *)
      "4 -3 0 60 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1" ] (* negative submit *)
    (fun path ->
      let stats = Sla_synth.stats_create () in
      let qs = Sla_synth.to_queries (default_cfg ()) ~stats ~path () in
      check_int "kept" 2 (Array.length qs);
      check_int "dropped" 2 stats.Sla_synth.dropped;
      check_int "clamped" 1 stats.Sla_synth.clamped;
      check_float "clamped to previous arrival" qs.(0).Query.arrival
        qs.(1).Query.arrival)

let test_time_scale_is_unit_change () =
  let base = queries ~cfg:(default_cfg ~time_scale:1.0 ()) () in
  let scaled = queries ~cfg:(default_cfg ~time_scale:3.0 ()) () in
  check_int "same count" (Array.length base) (Array.length scaled);
  Array.iteri
    (fun i q ->
      check_float "arrival x3" (3.0 *. q.Query.arrival)
        scaled.(i).Query.arrival;
      check_float "size x3" (3.0 *. q.Query.size) scaled.(i).Query.size;
      check_float "est x3" (3.0 *. q.Query.est_size) scaled.(i).Query.est_size)
    base

let test_load_factor_compresses_arrivals_only () =
  let base = queries ~cfg:(default_cfg ~load_factor:1.0 ()) () in
  let heavy = queries ~cfg:(default_cfg ~load_factor:2.0 ()) () in
  check_int "same count" (Array.length base) (Array.length heavy);
  Array.iteri
    (fun i q ->
      check_float "arrival halved" (q.Query.arrival /. 2.0)
        heavy.(i).Query.arrival;
      check_float "size unchanged" q.Query.size heavy.(i).Query.size;
      check_bool "sla unchanged" true
        (Sla.equal q.Query.sla heavy.(i).Query.sla))
    base

let test_class_draw_independent_of_seed_only () =
  (* Different seeds permute classes; same seed never does. *)
  let a = queries ~cfg:(default_cfg ~seed:1 ()) () in
  let b = queries ~cfg:(default_cfg ~seed:2 ()) () in
  check_bool "seed changes some SLA" true
    (Array.exists2 (fun x y -> not (Sla.equal x.Query.sla y.Query.sla)) a b);
  check_bool "arrivals unchanged by seed" true
    (Array.for_all2 (fun x y -> x.Query.arrival = y.Query.arrival) a b)

let test_tiling () =
  let stats = Sla_synth.stats_create () in
  let one = queries () in
  let two = queries ~tiles:2 ~stats () in
  let n = Array.length one in
  check_int "twice the queries" (2 * n) (Array.length two);
  check_int "stats cover both passes" (2 * 2500) stats.Sla_synth.read;
  (* First pass is bit-identical to the untiled stream. *)
  for i = 0 to n - 1 do
    check_float "first pass arrival" one.(i).Query.arrival
      two.(i).Query.arrival;
    check_float "first pass size" one.(i).Query.size two.(i).Query.size
  done;
  (* The seam stays monotone and the second pass repeats the shape. *)
  check_bool "seam monotone" true
    (two.(n).Query.arrival >= two.(n - 1).Query.arrival);
  check_float "second pass size repeats" one.(5).Query.size
    two.(n + 5).Query.size

let test_max_jobs_truncates () =
  let qs = queries ~max_jobs:100 () in
  check_int "truncated" 100 (Array.length qs);
  let full = queries () in
  for i = 0 to 99 do
    check_float "prefix identical" full.(i).Query.arrival qs.(i).Query.arrival
  done

let test_classes_of_string () =
  (match Sla_synth.classes_of_string "gold:1:5,2:5;silver:3:2,1:1" with
  | Error e -> Alcotest.fail e
  | Ok cs ->
    check_int "two classes" 2 (Array.length cs);
    check_string "name" "gold" cs.(0).Sla_synth.cls_name;
    check_int "weight" 3 cs.(1).Sla_synth.weight;
    check_float "gain" 2.0 cs.(0).Sla_synth.gains.(1);
    check_float "penalty" 1.0 cs.(1).Sla_synth.penalty);
  let bad s =
    match Sla_synth.classes_of_string s with Error _ -> true | Ok _ -> false
  in
  check_bool "empty" true (bad "");
  check_bool "missing parts" true (bad "gold:1:5");
  check_bool "bad weight" true (bad "gold:x:5,2:5");
  check_bool "bad gain" true (bad "gold:1:5,huh:5")

let test_invalid_configs () =
  let invalid f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "stretches must increase" true
    (invalid (fun () -> Sla_synth.config ~stretches:[| 3.0; 1.0 |] ()));
  check_bool "gains per tier" true
    (invalid (fun () ->
         Sla_synth.config
           ~classes:
             [|
               { Sla_synth.cls_name = "x"; weight = 1; gains = [| 1.0 |];
                 penalty = 0.0 };
             |]
           ()));
  check_bool "positive time scale" true
    (invalid (fun () -> Sla_synth.config ~time_scale:0.0 ()));
  check_bool "positive load factor" true
    (invalid (fun () -> Sla_synth.config ~load_factor:(-1.0) ()))

(* ------------------------------------------------------------------ *)
(* The trace-driven experiment *)

let smoke_cfg () =
  Exp_trace.cfg ~synth:(default_cfg ()) ~max_jobs:400 ~servers:4
    ~warmup_frac:0.1 ~path:fixture ()

let test_exp_trace_grid_smoke () =
  let cells = Exp_trace.grid (smoke_cfg ()) in
  check_int "12 cells" 12 (List.length cells);
  List.iter
    (fun c ->
      check_bool "finite loss" true (Float.is_finite c.Exp_trace.avg_loss);
      check_bool "late fraction sane" true
        (c.Exp_trace.late >= 0.0 && c.Exp_trace.late <= 1.0))
    cells;
  let loss sched disp =
    (List.find
       (fun c -> c.Exp_trace.sched = sched && c.Exp_trace.disp = disp)
       cells)
      .Exp_trace.avg_loss
  in
  check_bool "tree scheduling no worse than FCFS under LWL" true
    (loss "FCFS+tree" "LWL" <= loss "FCFS" "LWL" +. 1e-9)

let test_exp_trace_parallel_identical () =
  let serial = Exp_trace.grid (smoke_cfg ()) in
  Parallel.set_jobs 2;
  let parallel =
    Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) (fun () ->
        Exp_trace.grid (smoke_cfg ()))
  in
  check_bool "grids bit-identical" true (serial = parallel)

let test_exp_trace_inspect () =
  let stats = Exp_trace.inspect (smoke_cfg ()) in
  check_int "respects max_jobs" 400 stats.Sla_synth.kept

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "swf"
    [
      ( "reader",
        [
          Alcotest.test_case "fixture parses" `Quick test_fixture_parses;
          Alcotest.test_case "fixture metadata" `Quick test_fixture_metadata;
          Alcotest.test_case "short lines padded" `Quick
            test_missing_fields_padded;
          Alcotest.test_case "comments and blanks skipped" `Quick
            test_mid_file_comments_and_blanks;
          Alcotest.test_case "rejects malformed" `Quick test_rejects_malformed;
          Alcotest.test_case "errors carry file:line" `Quick
            test_error_carries_position;
          Alcotest.test_case "chunked = pulled" `Quick test_chunked_equals_pull;
          Alcotest.test_case "save round-trips" `Quick test_save_roundtrip;
          qtest prop_line_roundtrip;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "streaming = eager" `Quick
            test_streaming_equals_eager;
          Alcotest.test_case "deterministic" `Quick test_synthesis_deterministic;
          Alcotest.test_case "well formed" `Quick test_well_formed;
          Alcotest.test_case "missing estimate = perfect" `Quick
            test_missing_estimate_means_perfect;
          Alcotest.test_case "drops and clamps" `Quick test_drops_and_clamps;
          Alcotest.test_case "time-scale is a unit change" `Quick
            test_time_scale_is_unit_change;
          Alcotest.test_case "load-factor compresses arrivals" `Quick
            test_load_factor_compresses_arrivals_only;
          Alcotest.test_case "seed only permutes classes" `Quick
            test_class_draw_independent_of_seed_only;
          Alcotest.test_case "tiling" `Quick test_tiling;
          Alcotest.test_case "max-jobs" `Quick test_max_jobs_truncates;
          Alcotest.test_case "classes_of_string" `Quick test_classes_of_string;
          Alcotest.test_case "invalid configs" `Quick test_invalid_configs;
        ] );
      ( "exp-trace",
        [
          Alcotest.test_case "grid smoke" `Quick test_exp_trace_grid_smoke;
          Alcotest.test_case "serial = parallel" `Quick
            test_exp_trace_parallel_identical;
          Alcotest.test_case "inspect" `Quick test_exp_trace_inspect;
        ] );
    ]
