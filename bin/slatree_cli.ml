(* Command line driver: regenerate any of the paper's tables and
   figures, or run a small interactive demo of the SLA-tree API. *)

open Cmdliner

let ppf = Format.std_formatter

let scale_arg =
  let doc =
    "Experiment scale: 'paper' (20k queries, 10 repeats), 'default', 'smoke', \
     or a query count. Overrides SLATREE_SCALE."
  in
  Arg.(value & opt (some string) None & info [ "scale" ] ~docv:"SCALE" ~doc)

let resolve_scale = function
  | None -> Exp_scale.from_env ()
  | Some s -> begin
    match Exp_scale.of_string s with
    | Some t -> t
    | None -> `Error |> ignore; Exp_scale.default
  end

(* -j / SLATREE_JOBS. Deliberately prints nothing: report output must
   be byte-identical whatever the worker count (the determinism
   contract, see EXPERIMENTS.md). *)
let jobs_arg =
  let doc =
    "Run independent experiment cells on $(docv) worker domains (default 1 = \
     serial; overrides $(b,SLATREE_JOBS)). Reported numbers are bit-identical \
     to the serial run whatever $(docv) is."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let setup_jobs jobs =
  match Parallel.setup ?jobs () with
  | () -> Ok ()
  | exception Invalid_argument e -> Error e

let print_scale scale =
  Fmt.pf ppf "scale: %s (%d queries, %d warm-up, %d repeats)@."
    (Exp_scale.name scale) scale.Exp_scale.n_queries scale.Exp_scale.warmup
    scale.Exp_scale.repeats

let run_table n scale_opt jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  let scale = resolve_scale scale_opt in
  print_scale scale;
  match n with
  | 2 -> `Ok (Table2.run ppf scale)
  | 3 -> `Ok (Table3.run ppf scale)
  | 4 -> `Ok (Table4.run ppf scale)
  | 5 -> `Ok (Table5.run ppf scale)
  | 6 -> `Ok (Table6.run ppf scale)
  | 7 -> `Ok (Table7.run ppf ())
  | _ -> `Error (false, "table number must be in 2..7")

let run_fig n scale_opt data_dir jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  let scale = resolve_scale scale_opt in
  let seed = scale.Exp_scale.base_seed in
  let maybe_export f =
    match data_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter (Fmt.pf ppf "wrote %s@.") (f dir)
  in
  match n with
  | 15 ->
    Fig15.run ppf ~seed ();
    maybe_export (fun dir -> Fig15.export ~dir ~seed ());
    `Ok ()
  | 17 ->
    Fig17.run ppf ~seed ();
    maybe_export (fun dir -> [ Fig17.export ~dir ~seed () ]);
    `Ok ()
  | _ -> `Error (false, "figure number must be 15 or 17")

let run_all scale_opt jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  let scale = resolve_scale scale_opt in
  print_scale scale;
  Fig15.run ppf ~seed:scale.Exp_scale.base_seed ();
  Table2.run ppf scale;
  Table3.run ppf scale;
  Table4.run ppf scale;
  Table5.run ppf scale;
  Table6.run ppf scale;
  Table7.run ppf ();
  Fig17.run ppf ~seed:scale.Exp_scale.base_seed ();
  `Ok ()

let run_ablation which scale_opt jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  let scale = resolve_scale scale_opt in
  print_scale scale;
  match which with
  | "sched" -> `Ok (Ablations.sched_run ppf scale)
  | "dispatch" -> `Ok (Ablations.disp_run ppf scale)
  | "admission" -> `Ok (Ablations.admission_run ppf scale)
  | "incremental" -> `Ok (Ablations.incr_run ppf ~seed:scale.Exp_scale.base_seed ())
  | "predictor" -> `Ok (Ablations.predictor_run ppf scale)
  | "fairness" -> `Ok (Ablations.fairness_run ppf scale)
  | "hetero" -> `Ok (Ablations.hetero_run ppf scale)
  | "drop" -> `Ok (Ablations.drop_run ppf scale)
  | "optimality" ->
    `Ok (Ablations.optimality_run ppf ~seed:scale.Exp_scale.base_seed ())
  | "all" -> `Ok (Ablations.run_all ppf scale)
  | s ->
    `Error
      ( false,
        Printf.sprintf
          "unknown ablation %S (expected \
           sched|dispatch|admission|incremental|predictor|fairness|hetero|drop|optimality|all)"
          s )

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by the sim and elastic subcommands:
   an enabled sink only when some output file was asked for, and the
   post-run writers. *)

let obs_of_outputs ~trace ~metrics =
  if trace = None && metrics = None then Obs.noop else Obs.create ()

let write_obs_outputs obs ~trace ~metrics =
  (match metrics with
  | None -> ()
  | Some path ->
    Obs.write_metrics obs ~path;
    Fmt.pf ppf "wrote metrics snapshot to %s@." path);
  match trace with
  | None -> ()
  | Some path ->
    Obs.write_trace obs ~path;
    let tr = Obs.trace obs in
    Fmt.pf ppf "wrote trace (%d events, %d dropped) to %s@."
      (Obs.Trace.length tr) (Obs.Trace.dropped tr) path

let write_timeseries_output ts ~path =
  Obs.Timeseries.write ts ~path;
  Fmt.pf ppf "wrote %d time-series samples to %s@." (Obs.Timeseries.length ts)
    path

let run_elastic compare policy shape servers scale_opt forecast horizon
    oracle_rho trace metrics timeseries faults jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  let scale = resolve_scale scale_opt in
  print_scale scale;
  if compare then `Ok (Exp_elastic.run ppf scale)
  else
    match Exp_elastic.shape_of_string shape with
    | Error e -> `Error (false, e)
    | Ok shape ->
    match
      Exp_elastic.policy_spec_of_string ?forecast ?horizon ?rho:oracle_rho
        policy
    with
    | Error e -> `Error (false, e)
    | Ok policy ->
      let obs = obs_of_outputs ~trace ~metrics in
      let ts = Option.map (fun _ -> Elastic.timeseries ()) timeseries in
      (try
         Exp_elastic.run_policy ~obs ?timeseries:ts ?faults ~shape ppf ~policy
           ~initial:servers scale;
         write_obs_outputs obs ~trace ~metrics;
         (match (ts, timeseries) with
         | Some ts, Some path -> write_timeseries_output ts ~path
         | _ -> ());
         `Ok ()
       with Invalid_argument e -> `Error (false, e))

let run_validate scale_opt jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
    let scale = resolve_scale scale_opt in
    print_scale scale;
    `Ok (Validation.run ppf scale)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* A small narrative walk through the public API. *)
let run_demo verbose =
  setup_logs verbose;
  let mu = 20.0 in
  let buyer = Sla_profiles.sla_b_customer ~mu in
  let employee = Sla_profiles.sla_b_employee ~mu in
  let mk id arrival size sla = Query.make ~id ~arrival ~size ~sla () in
  let buffer =
    [|
      mk 0 0.0 15.0 buyer;
      mk 1 2.0 30.0 employee;
      mk 2 4.0 10.0 buyer;
      mk 3 5.0 25.0 buyer;
    |]
  in
  let now = 10.0 in
  let tree = Sla_tree.build ~now buffer in
  Fmt.pf ppf "SLA-tree over %d buffered queries (%d slack units, %d tardy units)@."
    (Sla_tree.length tree)
    (fst (Sla_tree.unit_counts tree))
    (snd (Sla_tree.unit_counts tree));
  Fmt.pf ppf "postpone(0, 3, 10ms) loses $%.2f@."
    (Sla_tree.postpone tree ~m:0 ~n:3 ~tau:10.0);
  Fmt.pf ppf "postpone(0, 3, 60ms) loses $%.2f@."
    (Sla_tree.postpone tree ~m:0 ~n:3 ~tau:60.0);
  Array.iteri
    (fun i _ ->
      Fmt.pf ppf "rushing query %d nets $%.2f@." i (What_if.rush_net_gain tree i))
    buffer;
  (match What_if.best_rush tree with
  | Some (i, g) -> Fmt.pf ppf "scheduler decision: run query %d next (nets $%.2f)@." i g
  | None -> ());
  (* The same decisions through the Fig 2 frontend (use --verbose to
     see its decision trace). *)
  let frontend = Frontend.create Planner.fcfs in
  Array.iter (Frontend.query_arrive frontend) buffer;
  let rec drain t =
    match Frontend.get_next_query frontend ~now:t with
    | None -> ()
    | Some q -> drain (t +. q.Query.est_size)
  in
  drain now;
  Fmt.pf ppf "frontend drained the buffer: %d decisions, %d profit-driven rushes@."
    (Frontend.decisions frontend) (Frontend.rushes frontend);
  `Ok ()

(* ------------------------------------------------------------------ *)
(* Trace tooling: generate a workload to a file; replay a file under a
   chosen policy. *)

let kind_of_string = function
  | "exp" -> Ok Workloads.Exp
  | "pareto" -> Ok Workloads.Pareto
  | "ssbm" -> Ok Workloads.Ssbm_wl
  | s -> Error (Printf.sprintf "unknown workload %S (exp|pareto|ssbm)" s)

let profile_of_string = function
  | "a" | "sla-a" -> Ok Workloads.Sla_a
  | "b" | "sla-b" -> Ok Workloads.Sla_b
  | s -> Error (Printf.sprintf "unknown SLA profile %S (a|b)" s)

let scheduler_of_string ~rate = function
  | "fcfs" -> Ok Schedulers.fcfs
  | "sjf" -> Ok Schedulers.sjf
  | "edf" -> Ok Schedulers.edf
  | "value-edf" -> Ok Schedulers.value_edf
  | "cbs" -> Ok (Schedulers.cbs ~rate)
  | "fcfs+tree" -> Ok Schedulers.fcfs_sla_tree
  | "fcfs+tree-incr" -> Ok Schedulers.fcfs_sla_tree_incr
  | "sjf+tree" -> Ok Schedulers.sjf_sla_tree
  | "edf+tree" -> Ok Schedulers.edf_sla_tree
  | "value-edf+tree" -> Ok Schedulers.value_edf_sla_tree
  | "cbs+tree" -> Ok (Schedulers.cbs_sla_tree ~rate)
  | s -> Error (Printf.sprintf "unknown scheduler %S" s)

let dispatcher_of_string ~rate = function
  | "rr" -> Ok Dispatchers.round_robin
  | "lwl" -> Ok Dispatchers.lwl
  | "random" -> Ok (Dispatchers.random ~seed:1)
  | "tree" -> Ok (Dispatchers.sla_tree (Planner.cbs ~rate))
  | "tree+ac" -> Ok (Dispatchers.sla_tree ~admission:true (Planner.cbs ~rate))
  | "tree-fcfs" -> Ok (Dispatchers.fcfs_sla_tree_incr ())
  | "tree-fcfs+ac" -> Ok (Dispatchers.fcfs_sla_tree_incr ~admission:true ())
  | s -> Error (Printf.sprintf "unknown dispatcher %S" s)

let run_trace_generate out kind profile load servers n seed sigma2 tenants =
  match (kind_of_string kind, profile_of_string profile) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok kind, Ok profile ->
    let error =
      if sigma2 = 0.0 then Estimate_error.none
      else Estimate_error.gaussian ~sigma2 ()
    in
    let cfg =
      Trace.config ~error ~kind ~profile ~load ~servers ~n_queries:n ~seed ()
    in
    let queries = Trace.generate cfg in
    let queries =
      if tenants then Tenancy.assign (Tenancy.default_registry ()) queries
      else queries
    in
    Trace_io.save out queries;
    Fmt.pf ppf "wrote %d queries to %s (%s, %s, load %.2f, %d server(s)%s)@." n
      out
      (Workloads.kind_name kind)
      (Workloads.profile_name profile)
      load servers
      (if tenants then ", tenant-tagged" else "");
    `Ok ()

let run_trace_replay file scheduler_name dispatcher_name servers warmup =
  match Trace_io.load file with
  | exception Trace_io.Parse_error e -> `Error (false, "parse error: " ^ e)
  | exception Sys_error e -> `Error (false, e)
  | queries ->
    let mean =
      Array.fold_left (fun acc q -> acc +. q.Query.est_size) 0.0 queries
      /. Float.of_int (max 1 (Array.length queries))
    in
    let rate = 1.0 /. mean in
    (match (scheduler_of_string ~rate scheduler_name, dispatcher_of_string ~rate dispatcher_name) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok scheduler, Ok dispatcher ->
      let metrics = Metrics.create ~warmup_id:warmup () in
      let pick_next, hook = Schedulers.instantiate scheduler in
      Sim.run ?on_server_event:hook ~queries ~n_servers:servers ~pick_next
        ~dispatch:(Dispatchers.instantiate dispatcher)
        ~metrics ();
      Fmt.pf ppf "replayed %d queries (%s / %s, %d server(s), warm-up %d)@."
        (Array.length queries) (Schedulers.name scheduler)
        (Dispatchers.name dispatcher) servers warmup;
      Fmt.pf ppf "  avg profit loss : $%.4f per query@." (Metrics.avg_loss metrics);
      Fmt.pf ppf "  avg profit      : $%.4f per query@." (Metrics.avg_profit metrics);
      Fmt.pf ppf "  deadline misses : %.2f%%@."
        (100.0 *. Metrics.late_fraction metrics);
      (match Metrics.response_percentiles metrics [ 50.0; 95.0; 99.0 ] with
      | [ p50; p95; p99 ] ->
        Fmt.pf ppf "  response p50/p95/p99: %.2f / %.2f / %.2f ms@." p50 p95 p99
      | _ -> assert false);
      if Metrics.rejected_count metrics > 0 then
        Fmt.pf ppf "  rejected        : %d@." (Metrics.rejected_count metrics);
      `Ok ())

(* ------------------------------------------------------------------ *)
(* One-shot simulation with observability outputs: generate a
   workload, run it under a chosen scheduler/dispatcher, and write the
   trace / metrics snapshot / time series that were asked for. *)

let sim_timeseries_columns =
  [| "pool"; "accepting"; "queue_len"; "backlog"; "cum_profit" |]

let sample_sim ts metrics sim =
  let m = Sim.n_servers sim in
  let live = ref 0
  and queue = ref 0
  and backlog = ref 0.0
  and accepting = ref 0 in
  for sid = 0 to m - 1 do
    let s = Sim.server sim sid in
    if Sim.server_state sim sid <> Sim.Retired then begin
      incr live;
      queue := !queue + Sim.buffer_length s;
      backlog := !backlog +. Sim.est_work_left sim s
    end;
    if Sim.dispatchable sim sid then incr accepting
  done;
  Obs.Timeseries.sample ts ~now:(Sim.now sim)
    [|
      Float.of_int !live;
      Float.of_int !accepting;
      Float.of_int !queue;
      !backlog;
      Metrics.total_profit metrics;
    |]

let run_sim kind profile load servers n seed sigma2 scheduler_name
    dispatcher_name warmup trace metrics_out timeseries_out faults =
  match (kind_of_string kind, profile_of_string profile) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok kind, Ok profile ->
    let error =
      if sigma2 = 0.0 then Estimate_error.none
      else Estimate_error.gaussian ~sigma2 ()
    in
    let cfg =
      Trace.config ~error ~kind ~profile ~load ~servers ~n_queries:n ~seed ()
    in
    let queries = Trace.generate cfg in
    let mean =
      Array.fold_left (fun acc q -> acc +. q.Query.est_size) 0.0 queries
      /. Float.of_int (max 1 (Array.length queries))
    in
    let rate = 1.0 /. mean in
    (match
       ( scheduler_of_string ~rate scheduler_name,
         dispatcher_of_string ~rate dispatcher_name )
     with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok scheduler, Ok dispatcher ->
      let obs = obs_of_outputs ~trace ~metrics:metrics_out in
      let metrics = Metrics.create ~warmup_id:warmup () in
      let pick_next, hook = Schedulers.instantiate ~obs scheduler in
      let dispatch = Dispatchers.instantiate ~obs dispatcher in
      let injector =
        match faults with
        | None -> Ok None
        | Some spec -> (
          let horizon =
            if n > 0 then queries.(Array.length queries - 1).Query.arrival
            else 0.0
          in
          match Fault.plan_of_spec spec ~horizon ~n_servers:servers with
          | exception Invalid_argument e -> Error e
          | plan -> Ok (Some (Fault.create ~obs ~plan ())))
      in
      (match injector with
      | Error e -> `Error (false, e)
      | Ok injector ->
        let on_server_event ~sid ~now ev =
          Option.iter (fun i -> Fault.on_server_event i ~sid ~now ev) injector;
          match hook with Some h -> h ~sid ~now ev | None -> ()
        in
        (* Sample roughly 200 rows over the arrival span (at least one
           mean execution time apart, so a degenerate span cannot make
           the ticker spin). *)
        let ts_ticker =
          match timeseries_out with
          | None -> None
          | Some _ ->
            let ts = Obs.Timeseries.create ~columns:sim_timeseries_columns in
            let span =
              if n > 0 then queries.(Array.length queries - 1).Query.arrival
              else 0.0
            in
            let interval = Float.max mean (span /. 200.0) in
            Some (ts, (interval, fun sim -> sample_sim ts metrics sim))
        in
        Sim.run ~obs ~on_server_event
          ?ticker:(Option.map snd ts_ticker)
          ?timers:(Option.map Fault.timers injector)
          ~queries ~n_servers:servers ~pick_next ~dispatch ~metrics ();
        Option.iter (fun i -> Fault.finalize i metrics) injector;
        Fmt.pf ppf
          "simulated %d queries (%s/%s, load %.2f; %s / %s, %d server(s), \
           warm-up %d)@."
          (Array.length queries)
          (Workloads.kind_name kind)
          (Workloads.profile_name profile)
          load (Schedulers.name scheduler)
          (Dispatchers.name dispatcher)
          servers warmup;
        Fmt.pf ppf "  avg profit loss : $%.4f per query@."
          (Metrics.avg_loss metrics);
        Fmt.pf ppf "  avg profit      : $%.4f per query@."
          (Metrics.avg_profit metrics);
        Fmt.pf ppf "  deadline misses : %.2f%%@."
          (100.0 *. Metrics.late_fraction metrics);
        if Metrics.rejected_count metrics > 0 then
          Fmt.pf ppf "  rejected        : %d@."
            (Metrics.rejected_count metrics);
        if Metrics.lost_count metrics > 0 then
          Fmt.pf ppf "  lost to crashes : %d@." (Metrics.lost_count metrics);
        Option.iter
          (fun i -> Fmt.pf ppf "  faults          : %a@." Fault.pp_stats
              (Fault.stats i))
          injector;
        write_obs_outputs obs ~trace ~metrics:metrics_out;
        (match (ts_ticker, timeseries_out) with
        | Some (ts, _), Some path -> write_timeseries_output ts ~path
        | _ -> ());
        `Ok ()))

(* The three observability output flags, shared by sim and elastic. *)
let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a trace of the run to FILE: Chrome trace-event JSON \
           (loadable in Perfetto / chrome://tracing), or JSON lines when \
           FILE ends in .jsonl")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics snapshot (counters, gauges, latency \
           histogram percentiles) as JSON to FILE")

let timeseries_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Write per-tick pool/backlog/profit samples to FILE (JSON when \
           FILE ends in .json, CSV otherwise)")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          ("Inject infrastructure faults (crashes, brownouts, repairs) from \
            SPEC: " ^ Fault.spec_doc))

let table_cmd =
  let n =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Table number (2-7)")
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate a table from the paper's evaluation")
    Term.(ret (const run_table $ n $ scale_arg $ jobs_arg))

let fig_cmd =
  let n =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure number (15 or 17)")
  in
  let data_dir =
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Also write gnuplot-ready .dat files into DIR")
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate a figure from the paper's evaluation")
    Term.(ret (const run_fig $ n $ scale_arg $ data_dir $ jobs_arg))

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(ret (const run_all $ scale_arg $ jobs_arg))

let demo_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show decision traces")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Walk through the SLA-tree what-if API on a tiny buffer")
    Term.(ret (const run_demo $ verbose))

let ablation_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WHICH"
          ~doc:
            "sched | dispatch | admission | incremental | predictor | fairness \
             | hetero | all")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run an ablation study beyond the paper's tables")
    Term.(ret (const run_ablation $ which $ scale_arg $ jobs_arg))

let elastic_cmd =
  let compare =
    Arg.(value & flag & info [ "compare" ]
           ~doc:"Run the full comparison (statics / reactive SLA-tree / \
                 queue-threshold / predictive / oracle) on every shape")
  in
  let policy =
    Arg.(value & opt string "sla-tree" & info [ "policy" ] ~docv:"P"
           ~doc:"Autoscaling policy: sla-tree | queue | static | predictive | \
                 oracle")
  in
  let shape =
    Arg.(value & opt string "diurnal" & info [ "shape" ] ~docv:"S"
           ~doc:"Arrival shape: diurnal | square | steady")
  in
  let servers =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"M" ~doc:"Initial pool size")
  in
  let forecast =
    Arg.(value & opt (some string) None & info [ "forecast" ] ~docv:"SPEC"
           ~doc:("Forecaster for --policy predictive: " ^ Forecast.spec_doc
                 ^ " (default hw:24, matching the 24 decisions per cycle)"))
  in
  let horizon =
    Arg.(value & opt (some int) None & info [ "horizon" ] ~docv:"TICKS"
           ~doc:"Forecast horizon override in controller ticks for --policy \
                 predictive (default: ceil(boot_delay / interval))")
  in
  let oracle_rho =
    Arg.(value & opt (some float) None & info [ "oracle-rho" ] ~docv:"RHO"
           ~doc:"Target utilization of the perfect-foresight schedule for \
                 --policy oracle (default 0.8)")
  in
  Cmd.v
    (Cmd.info "elastic"
       ~doc:
         "Autoscale the server pool on a cyclic workload using SLA-tree \
          what-if probes, optionally scaling ahead of an arrival forecast")
    Term.(
      ret
        (const run_elastic $ compare $ policy $ shape $ servers $ scale_arg
       $ forecast $ horizon $ oracle_rho $ trace_file_arg $ metrics_file_arg
       $ timeseries_file_arg $ faults_arg $ jobs_arg))

let sim_cmd =
  let kind =
    Arg.(value & opt string "exp" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Workload: exp | pareto | ssbm")
  in
  let profile =
    Arg.(value & opt string "b" & info [ "profile" ] ~docv:"P"
           ~doc:"SLA profile: a | b")
  in
  let load =
    Arg.(value & opt float 0.9 & info [ "load" ] ~docv:"RHO" ~doc:"System load")
  in
  let servers =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"M" ~doc:"Server count")
  in
  let n =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Query count")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")
  in
  let sigma2 =
    Arg.(value & opt float 0.0 & info [ "sigma2" ] ~docv:"S2"
           ~doc:"Estimation error variance (Sec 7.5); 0 = perfect estimates")
  in
  let scheduler =
    Arg.(value & opt string "fcfs+tree-incr" & info [ "scheduler" ] ~docv:"SCHED"
           ~doc:
             "fcfs | sjf | edf | value-edf | cbs, each optionally +tree; \
              fcfs+tree-incr for the incremental SLA-tree fast path")
  in
  let dispatcher =
    Arg.(value & opt string "tree-fcfs" & info [ "dispatcher" ] ~docv:"DISP"
           ~doc:"rr | lwl | random | tree | tree+ac | tree-fcfs | tree-fcfs+ac")
  in
  let warmup =
    Arg.(value & opt int 0 & info [ "warmup" ] ~docv:"W"
           ~doc:"Exclude queries with id below this from measurement")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Simulate a generated workload once, with observability outputs \
          (--trace, --metrics, --timeseries)")
    Term.(
      ret
        (const run_sim $ kind $ profile $ load $ servers $ n $ seed $ sigma2
       $ scheduler $ dispatcher $ warmup $ trace_file_arg $ metrics_file_arg
       $ timeseries_file_arg $ faults_arg))

let run_resilience scale_opt jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
    let scale = resolve_scale scale_opt in
    print_scale scale;
    `Ok (Exp_resilience.run ppf scale)

let resilience_cmd =
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Chaos experiment: RR / LWL / SLA-tree dispatch and static vs \
          autoscaled pools under fault-free, moderate and severe fault plans")
    Term.(ret (const run_resilience $ scale_arg $ jobs_arg))

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check the simulator against closed-form M/M/m results")
    Term.(ret (const run_validate $ scale_arg $ jobs_arg))

let trace_generate_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Output trace file")
  in
  let kind =
    Arg.(value & opt string "exp" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Workload: exp | pareto | ssbm")
  in
  let profile =
    Arg.(value & opt string "a" & info [ "profile" ] ~docv:"P" ~doc:"SLA profile: a | b")
  in
  let load =
    Arg.(value & opt float 0.9 & info [ "load" ] ~docv:"RHO" ~doc:"System load")
  in
  let servers =
    Arg.(value & opt int 1 & info [ "servers" ] ~docv:"M" ~doc:"Server count")
  in
  let n =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Query count")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed") in
  let sigma2 =
    Arg.(value & opt float 0.0 & info [ "sigma2" ] ~docv:"S2"
           ~doc:"Estimation error variance (Sec 7.5); 0 = perfect estimates")
  in
  let tenants =
    Arg.(value & flag & info [ "tenants" ]
           ~doc:
             "Tag every query with a tenant from the default three-tenant \
              registry (gold/silver/bronze), replacing its SLA with the \
              tenant's tier-scaled class")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a workload trace file")
    Term.(
      ret
        (const run_trace_generate $ out $ kind $ profile $ load $ servers $ n
       $ seed $ sigma2 $ tenants))

let trace_replay_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file")
  in
  let scheduler =
    Arg.(value & opt string "cbs+tree" & info [ "scheduler" ] ~docv:"SCHED"
           ~doc:
             "fcfs | sjf | edf | value-edf | cbs, each optionally +tree; \
              fcfs+tree-incr for the incremental SLA-tree fast path")
  in
  let dispatcher =
    Arg.(value & opt string "lwl" & info [ "dispatcher" ] ~docv:"DISP"
           ~doc:"rr | lwl | random | tree | tree+ac | tree-fcfs | tree-fcfs+ac")
  in
  let servers =
    Arg.(value & opt int 1 & info [ "servers" ] ~docv:"M" ~doc:"Server count")
  in
  let warmup =
    Arg.(value & opt int 0 & info [ "warmup" ] ~docv:"W"
           ~doc:"Exclude queries with id below this from measurement")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a trace file under a chosen policy")
    Term.(
      ret (const run_trace_replay $ file $ scheduler $ dispatcher $ servers $ warmup))

let trace_cmd =
  Cmd.group (Cmd.info "trace" ~doc:"Generate and replay workload trace files")
    [ trace_generate_cmd; trace_replay_cmd ]

(* ------------------------------------------------------------------ *)
(* Real traces: SWF logs from the Parallel Workloads Archive through
   the SLA synthesis layer. See EXPERIMENTS.md "Real traces". *)

let time_scale_arg =
  Arg.(value & opt float 1.0
       & info [ "time-scale" ] ~docv:"F"
           ~doc:
             "Virtual milliseconds per SWF second. A pure unit change: \
              inter-arrivals and sizes scale together, so utilization is \
              invariant")

let load_factor_arg =
  Arg.(value & opt float 1.0
       & info [ "load-factor" ] ~docv:"F"
           ~doc:
             "Compress arrivals by this factor (>1 = heavier load; sizes \
              untouched) — one log yields a whole load sweep")

let classes_spec_arg =
  Arg.(value & opt (some string) None
       & info [ "classes" ] ~docv:"SPEC" ~doc:Sla_synth.classes_doc)

let stretch_arg =
  Arg.(value & opt string "1,3"
       & info [ "stretch" ] ~docv:"K1,K2,..."
           ~doc:
             "Deadline stretch tiers: response bound k is K_k times the \
              requested time. Strictly increasing; every class needs one \
              gain per tier")

let synth_seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Class-draw seed (the only randomness in the synthesis)")

let tile_arg =
  Arg.(value & opt int 1
       & info [ "tile" ] ~docv:"N"
           ~doc:
             "Stream the log N times end-to-end, each pass offset past the \
              previous one's span — scales a small fixture up to millions \
              of jobs")

let max_jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "max-jobs" ] ~docv:"N" ~doc:"Stop after synthesizing N queries")

let synth_config ~time_scale ~load_factor ~classes ~stretch ~seed =
  let ( let* ) = Result.bind in
  let* classes =
    match classes with
    | None -> Ok Sla_synth.default_classes
    | Some s -> Sla_synth.classes_of_string s
  in
  let* stretches =
    match
      String.split_on_char ',' stretch
      |> List.map (fun s -> float_of_string (String.trim s))
    with
    | l -> Ok (Array.of_list l)
    | exception Failure _ -> Error (Printf.sprintf "bad --stretch %S" stretch)
  in
  match Sla_synth.config ~classes ~stretches ~time_scale ~load_factor ~seed () with
  | cfg -> Ok cfg
  | exception Invalid_argument e -> Error e

let with_trace_cfg ~file ~time_scale ~load_factor ~classes ~stretch ~seed ~tile
    ~max_jobs ~servers f =
  match synth_config ~time_scale ~load_factor ~classes ~stretch ~seed with
  | Error e -> `Error (false, e)
  | Ok synth -> (
    match Exp_trace.cfg ~synth ~tiles:tile ?max_jobs ~servers ~path:file () with
    | exception Invalid_argument e -> `Error (false, e)
    | c -> (
      match f c with
      | r -> r
      | exception Swf.Parse_error e -> `Error (false, e)
      | exception Sys_error e -> `Error (false, e)))

let run_workload_inspect file time_scale load_factor classes stretch seed tile
    max_jobs servers =
  with_trace_cfg ~file ~time_scale ~load_factor ~classes ~stretch ~seed ~tile
    ~max_jobs ~servers (fun c ->
      Swf.with_file file (fun r ->
          List.iter
            (fun (k, v) ->
              if k <> "" then Fmt.pf ppf "  %s: %s@." k v)
            (Swf.metadata r));
      let stats = Exp_trace.inspect c in
      Fmt.pf ppf "%a@." Sla_synth.pp_stats stats;
      Fmt.pf ppf "implied load at %d server(s): %.3f@." servers
        (Sla_synth.implied_load stats ~servers);
      `Ok ())

let run_workload_convert file out time_scale load_factor classes stretch seed
    tile max_jobs =
  with_trace_cfg ~file ~time_scale ~load_factor ~classes ~stretch ~seed ~tile
    ~max_jobs ~servers:1 (fun c ->
      let stats = Sla_synth.stats_create () in
      let n =
        Trace_io.save_seq out
          (Sla_synth.stream c.Exp_trace.synth ~tiles:tile ?max_jobs ~stats
             ~path:file ())
      in
      Fmt.pf ppf "%a@." Sla_synth.pp_stats stats;
      Fmt.pf ppf "wrote %d queries to %s@." n out;
      `Ok ())

let run_workload_exp file time_scale load_factor classes stretch seed tile
    max_jobs servers warmup_frac no_variants jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
    with_trace_cfg ~file ~time_scale ~load_factor ~classes ~stretch ~seed ~tile
      ~max_jobs ~servers (fun c ->
        match
          Exp_trace.cfg ~synth:c.Exp_trace.synth ~tiles:tile ?max_jobs ~servers
            ~warmup_frac ~path:file ()
        with
        | exception Invalid_argument e -> `Error (false, e)
        | c ->
          Exp_trace.run ~variants:(not no_variants) ppf c;
          `Ok ())

let swf_file_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"SWF workload log")

let trace_servers_arg =
  Arg.(value & opt int 8 & info [ "servers" ] ~docv:"M" ~doc:"Server count")

let workload_inspect_cmd =
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Stream an SWF log through the SLA synthesis and report what it \
          yields (header metadata, kept/dropped counts, span, implied load) \
          without retaining it")
    Term.(
      ret
        (const run_workload_inspect $ swf_file_arg $ time_scale_arg
       $ load_factor_arg $ classes_spec_arg $ stretch_arg $ synth_seed_arg
       $ tile_arg $ max_jobs_arg $ trace_servers_arg))

let workload_convert_cmd =
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Synthesize SLA queries from an SWF log and write them as a native \
          trace file (slatree trace replay / replay --file), streaming both \
          sides")
    Term.(
      ret
        (const run_workload_convert $ swf_file_arg $ out $ time_scale_arg
       $ load_factor_arg $ classes_spec_arg $ stretch_arg $ synth_seed_arg
       $ tile_arg $ max_jobs_arg))

let workload_exp_cmd =
  let warmup_frac =
    Arg.(value & opt float 0.1
         & info [ "warmup-frac" ] ~docv:"F"
             ~doc:"Leading fraction of kept queries excluded from measurement")
  in
  let no_variants =
    Arg.(value & flag
         & info [ "no-variants" ]
             ~doc:"Skip the elastic and fault-storm variant rows")
  in
  Cmd.v
    (Cmd.info "exp"
       ~doc:
         "The trace-driven experiment grid: schedulers x dispatchers over \
          the log, plus autoscaled and fault-injected variants. Output is \
          bit-identical at any -j")
    Term.(
      ret
        (const run_workload_exp $ swf_file_arg $ time_scale_arg
       $ load_factor_arg $ classes_spec_arg $ stretch_arg $ synth_seed_arg
       $ tile_arg $ max_jobs_arg $ trace_servers_arg $ warmup_frac
       $ no_variants $ jobs_arg))

let workload_cmd =
  Cmd.group
    (Cmd.info "workload"
       ~doc:
         "Real cluster logs (Standard Workload Format) as SLA workloads: \
          inspect, convert, run experiment grids")
    [ workload_inspect_cmd; workload_convert_cmd; workload_exp_cmd ]

(* ------------------------------------------------------------------ *)
(* Serving: the decision stack as a persistent process, plus the
   open-loop replay client that stresses it. See docs/SERVING.md. *)

let run_serve listen_s metrics_listen_s scheduler_name dispatcher_name servers
    speed deterministic warmup tick rate exit_on_idle trace_out metrics_out
    timeseries_out =
  let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
  let* listen = Daemon.addr_of_string listen_s in
  let* metrics_listen =
    match metrics_listen_s with
    | None -> Ok None
    | Some s -> Result.map Option.some (Daemon.addr_of_string s)
  in
  let* scheduler = scheduler_of_string ~rate scheduler_name in
  let* dispatcher = dispatcher_of_string ~rate dispatcher_name in
  let* () =
    if servers < 1 then Error "need at least one server"
    else if speed <= 0.0 then Error "--speed must be positive"
    else if tick <= 0.0 then Error "--tick must be positive"
    else Ok ()
  in
  (* The scrape endpoint serves the live registry, so it forces an
     enabled sink even without file outputs. *)
  let obs =
    if trace_out = None && metrics_out = None && metrics_listen = None then
      Obs.noop
    else Obs.create ()
  in
  let metrics = Metrics.create ~warmup_id:warmup () in
  let want_ts = timeseries_out <> None || metrics_listen <> None in
  let ts =
    if want_ts then Some (Obs.Timeseries.create ~columns:sim_timeseries_columns)
    else None
  in
  let ticker =
    Option.map (fun ts -> (tick, fun sim -> sample_sim ts metrics sim)) ts
  in
  let clock =
    if deterministic then Vclock.manual () else Vclock.realtime ~speed ()
  in
  let engine =
    Daemon.Engine.create ~obs ~warmup ?ticker ~clock ~scheduler ~dispatcher
      ~n_servers:servers ()
  in
  ignore (Daemon.Engine.metrics engine);
  (* Final flushes ride Obs teardown, so the SIGINT path and the
     normal exit path share one close. *)
  Obs.on_close obs (fun () -> write_obs_outputs obs ~trace:trace_out ~metrics:metrics_out);
  (match (ts, timeseries_out) with
  | Some ts, Some path ->
    Obs.on_close obs (fun () -> write_timeseries_output ts ~path)
  | _ -> ());
  let stop = ref false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  Fmt.pf ppf "serving on %a (%s / %s, %d server(s), %s clock%s)@."
    Daemon.pp_addr listen (Schedulers.name scheduler)
    (Dispatchers.name dispatcher) servers
    (if deterministic then "deterministic" else Printf.sprintf "realtime %gx" speed)
    (match metrics_listen with
    | Some a -> Fmt.str ", metrics on %a" Daemon.pp_addr a
    | None -> "");
  (try
     Daemon.serve ~stop ~exit_on_idle ?metrics_listen ?timeseries:ts ~engine
       ~listen ();
     let s = Daemon.Engine.summary engine in
     Fmt.pf ppf
       "served %d queries: %d completed, %d rejected, %d dropped, profit \
        $%.2f (vtime %.0f ms)@."
       (Daemon.Engine.submitted engine)
       s.Wire.completed s.Wire.rejected s.Wire.dropped s.Wire.total_profit
       s.Wire.vnow;
     Obs.close obs;
     `Ok ()
   with Unix.Unix_error (err, fn, arg) ->
     Obs.close obs;
     `Error (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)))

let run_replay_client connect_s file swf time_scale load_factor classes stretch
    tile max_jobs kind profile load gen_servers n seed sigma2 speed json =
  let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
  let* addr = Daemon.addr_of_string connect_s in
  let* source =
    match (swf, file) with
    | Some _, Some _ -> Error "--swf and --file are mutually exclusive"
    | Some swf_path, None -> (
      match synth_config ~time_scale ~load_factor ~classes ~stretch ~seed with
      | Error e -> Error e
      | Ok synth ->
        if tile < 1 then Error "--tile must be >= 1"
        else
          Ok
            (`Stream
               (fun () ->
                 Sla_synth.stream synth ~tiles:tile ?max_jobs ~path:swf_path ())))
    | None, Some f -> (
      match Trace_io.load f with
      | qs -> Ok (`Array qs)
      | exception Trace_io.Parse_error e -> Error ("parse error: " ^ e)
      | exception Sys_error e -> Error e)
    | None, None -> (
      match (kind_of_string kind, profile_of_string profile) with
      | Error e, _ | _, Error e -> Error e
      | Ok kind, Ok profile ->
        let error =
          if sigma2 = 0.0 then Estimate_error.none
          else Estimate_error.gaussian ~sigma2 ()
        in
        Ok
          (`Array
             (Trace.generate
                (Trace.config ~error ~kind ~profile ~load ~servers:gen_servers
                   ~n_queries:n ~seed ()))))
  in
  let* () = if speed < 0.0 then Error "--speed must be >= 0" else Ok () in
  let framing = if json then Wire.Json else Wire.Binary in
  (try
     let fd = Replay.connect addr in
     let pace =
       if speed = 0.0 then "full speed (unpaced)"
       else Printf.sprintf "%gx" speed
     in
     let on_progress ~sent ~completions =
       Fmt.pf ppf "  ... %d sent, %d completed@." sent completions
     in
     let r =
       match source with
       | `Array queries ->
         Fmt.pf ppf "replaying %d queries to %a at %s@." (Array.length queries)
           Daemon.pp_addr addr pace;
         Replay.run ~framing ~speed ~client:"slatree-replay" ~on_progress ~fd
           ~queries ()
       | `Stream mk ->
         Fmt.pf ppf "streaming SWF synthesis to %a at %s@." Daemon.pp_addr addr
           pace;
         Replay.run_stream ~framing ~speed ~client:"slatree-replay" ~on_progress
           ~fd ~queries:(mk ()) ()
     in
     List.iter (fun e -> Fmt.pf ppf "  daemon error: %s@." e) r.Replay.errors;
     Fmt.pf ppf
       "sent %d in %.2fs (%.0f arrivals/s): %d decisions (%d rejected), %d \
        completions, %d dropped, client-side profit $%.2f@."
       r.Replay.sent r.Replay.wall_s
       (Float.of_int r.Replay.sent /. Float.max 1e-9 r.Replay.wall_s)
       r.Replay.decisions r.Replay.rejected r.Replay.completions
       r.Replay.dropped r.Replay.profit;
     (match r.Replay.summary with
     | Some s ->
       Fmt.pf ppf
         "daemon summary: %d completed, %d rejected, %d dropped, %d measured \
          (%d late), profit $%.2f, avg loss $%.4f, avg response %.2f ms@."
         s.Wire.completed s.Wire.rejected s.Wire.dropped s.Wire.measured
         s.Wire.late s.Wire.total_profit s.Wire.avg_loss s.Wire.avg_response;
       List.iter
         (fun tr ->
           Fmt.pf ppf
             "  tenant %d: %d completed, %d rejected, profit $%.2f@."
             tr.Wire.tr_tenant tr.Wire.tr_completed tr.Wire.tr_rejected
             tr.Wire.tr_profit)
         s.Wire.tenants;
       `Ok ()
     | None -> `Error (false, "connection closed before the daemon's summary"))
   with
   | Unix.Unix_error (err, fn, arg) ->
     `Error (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
   | Swf.Parse_error e | Sys_error e -> `Error (false, e))

let serve_cmd =
  let listen =
    Arg.(value & opt string "unix:/tmp/slatree.sock"
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Listen address: unix:PATH, HOST:PORT or PORT")
  in
  let metrics_listen =
    Arg.(value & opt (some string) None
         & info [ "metrics-listen" ] ~docv:"ADDR"
             ~doc:
               "Serve /metrics, /metrics.txt, /timeseries and /healthz over \
                HTTP on ADDR")
  in
  let scheduler =
    Arg.(value & opt string "fcfs+tree-incr" & info [ "scheduler" ] ~docv:"SCHED"
           ~doc:
             "fcfs | sjf | edf | value-edf | cbs, each optionally +tree; \
              fcfs+tree-incr for the incremental SLA-tree fast path")
  in
  let dispatcher =
    Arg.(value & opt string "tree-fcfs" & info [ "dispatcher" ] ~docv:"DISP"
           ~doc:"rr | lwl | random | tree | tree+ac | tree-fcfs | tree-fcfs+ac")
  in
  let servers =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"M" ~doc:"Server count")
  in
  let speed =
    Arg.(value & opt float 1.0 & info [ "speed" ] ~docv:"X"
           ~doc:"Virtual milliseconds per wall millisecond (realtime mode)")
  in
  let deterministic =
    Arg.(value & flag & info [ "deterministic" ]
           ~doc:
             "Manual virtual clock driven purely by submission timestamps — \
              bit-identical to the in-process simulator on the same trace")
  in
  let warmup =
    Arg.(value & opt int 0 & info [ "warmup" ] ~docv:"W"
           ~doc:"Exclude queries with id below this from measurement")
  in
  let tick =
    Arg.(value & opt float 1000.0 & info [ "tick" ] ~docv:"MS"
           ~doc:"Virtual time between timeseries samples")
  in
  let rate =
    Arg.(value & opt float 0.05 & info [ "rate" ] ~docv:"MU"
           ~doc:
             "Expected service rate (1/mean-execution, per ms) for the cbs \
              scheduler and tree planners")
  in
  let exit_on_idle =
    Arg.(value & flag & info [ "exit-on-idle" ]
           ~doc:
             "Shut down once a client that sent eof has disconnected and no \
              clients remain (CI smoke mode)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the SLA-tree decision stack as a daemon: framed query arrivals \
          in, dispatch decisions and completions out, metrics scrape on the \
          side")
    Term.(
      ret
        (const run_serve $ listen $ metrics_listen $ scheduler $ dispatcher
       $ servers $ speed $ deterministic $ warmup $ tick $ rate $ exit_on_idle
       $ trace_file_arg $ metrics_file_arg $ timeseries_file_arg))

let replay_cmd =
  let connect =
    Arg.(value & opt string "unix:/tmp/slatree.sock"
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Daemon address: unix:PATH, HOST:PORT or PORT")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Replay this trace file (otherwise generate one)")
  in
  let swf =
    Arg.(value & opt (some string) None & info [ "swf" ] ~docv:"FILE"
           ~doc:
             "Stream an SWF cluster log through the SLA synthesis instead of \
              a trace file — constant memory, so archive-scale logs replay \
              directly (--time-scale/--load-factor/--classes/--stretch/\
              --tile/--max-jobs/--seed shape the synthesis, as in slatree \
              workload)")
  in
  let kind =
    Arg.(value & opt string "exp" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Generated workload: exp | pareto | ssbm")
  in
  let profile =
    Arg.(value & opt string "b" & info [ "profile" ] ~docv:"P"
           ~doc:"Generated SLA profile: a | b")
  in
  let load =
    Arg.(value & opt float 0.9 & info [ "load" ] ~docv:"RHO"
           ~doc:"Generated system load")
  in
  let gen_servers =
    Arg.(value & opt int 4 & info [ "gen-servers" ] ~docv:"M"
           ~doc:"Server count the generated load targets (match the daemon's)")
  in
  let n =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N"
           ~doc:"Generated query count")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")
  in
  let sigma2 =
    Arg.(value & opt float 0.0 & info [ "sigma2" ] ~docv:"S2"
           ~doc:"Estimation error variance; 0 = perfect estimates")
  in
  let speed =
    Arg.(value & opt float 1.0 & info [ "speed" ] ~docv:"X"
           ~doc:
             "Replay speed factor (matches the daemon's --speed); 0 = \
              unpaced, as fast as the socket accepts")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Use the newline-JSON debug framing instead of binary")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Pump a workload trace into a running daemon at a wall-clock speed \
          factor, open-loop")
    Term.(
      ret
        (const run_replay_client $ connect $ file $ swf $ time_scale_arg
       $ load_factor_arg $ classes_spec_arg $ stretch_arg $ tile_arg
       $ max_jobs_arg $ kind $ profile $ load $ gen_servers $ n $ seed
       $ sigma2 $ speed $ json))

(* ------------------------------------------------------------------ *)
(* Multi-tenant economics *)

let run_exp_tenancy kind load burst n servers theta warmup_frac seed jobs =
  match setup_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () -> (
    match kind_of_string kind with
    | Error e -> `Error (false, e)
    | Ok kind -> (
      match
        Exp_tenancy.cfg ~kind ~load ~burst_high:burst ~n_queries:n ~servers
          ~theta ~warmup_frac ~seed ()
      with
      | exception Invalid_argument e -> `Error (false, e)
      | c ->
        Exp_tenancy.run ppf c;
        `Ok ()))

let exp_tenancy_cmd =
  let kind =
    Arg.(value & opt string "exp" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Workload generator: exp | pareto | ssbm")
  in
  let load =
    Arg.(value & opt float 0.9 & info [ "load" ] ~docv:"RHO"
           ~doc:"Steady-state utilization of the uniform pool")
  in
  let burst =
    Arg.(value & opt float 2.5 & info [ "burst" ] ~docv:"X"
           ~doc:"Bursty cells: peak load multiplier (duty 40%)")
  in
  let n =
    Arg.(value & opt int 4000 & info [ "n" ] ~docv:"N" ~doc:"Query count")
  in
  let servers =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"M" ~doc:"Server count")
  in
  let theta =
    Arg.(value & opt float 0.0 & info [ "theta" ] ~docv:"T"
           ~doc:"Admission margin in dollars: admit only when the postpone \
                 probe prices the arrival's net at T or better")
  in
  let warmup_frac =
    Arg.(value & opt float 0.1 & info [ "warmup-frac" ] ~docv:"F"
           ~doc:"Leading fraction of queries excluded from measurement")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")
  in
  Cmd.v
    (Cmd.info "tenancy"
       ~doc:
         "Multi-tenant economics grid: tenant-tagged workloads (SLA class x \
          price tier) over uniform and mixed-speed pools, probe-priced \
          admission control off and on, with per-tenant profit, Jain \
          fairness and SLO burn-rate windows, plus an autoscaler choosing \
          among server types under quantum billing. Output is bit-identical \
          at any -j")
    Term.(
      ret
        (const run_exp_tenancy $ kind $ load $ burst $ n $ servers $ theta
       $ warmup_frac $ seed $ jobs_arg))

let exp_cmd =
  Cmd.group
    (Cmd.info "exp"
       ~doc:"Experiment grids beyond the paper's tables and figures")
    [ exp_tenancy_cmd ]

let main =
  Cmd.group
    (Cmd.info "slatree" ~version:"1.0.0"
       ~doc:"SLA-tree: profit-oriented decision support (EDBT 2011 reproduction)")
    [
      table_cmd; fig_cmd; all_cmd; demo_cmd; ablation_cmd; elastic_cmd;
      validate_cmd; trace_cmd; workload_cmd; sim_cmd; resilience_cmd;
      serve_cmd; replay_cmd; exp_cmd;
    ]

let () = exit (Cmd.eval main)
