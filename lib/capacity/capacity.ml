(* Capacity planning (paper Secs 6.3, 7.4): estimate the per-query
   profit margin of adding one server, without actually adding it.

   While the system runs with SLA-tree dispatching, every arrival
   reports g_i, the best insertion profit among real servers. We also
   compute g_0, the profit the query would earn on a fictitious idle
   server. Accumulating (g_0 - g_i) over the measured window
   approximates the profit a new server would add. The ground truth
   replays the identical trace with n and n+1 servers. *)

type estimate = {
  est_margin_per_query : float;  (** mean (g0 - gi) over measured queries *)
  avg_loss : float;  (** avg profit loss of the n-server run *)
  measured : int;
}

(* The probe both the estimator and the elastic controller accumulate:
   what the arriving query would have earned on a fictitious idle
   server beyond what the chosen real server offers. [None] when the
   dispatcher did not report its insertion profit. *)
let margin ~now q (d : Sim.decision) =
  match d.Sim.est_delta with
  | None -> None
  | Some gi -> Some (What_if.idle_server_profit ~now q -. gi)

(* The one shared run configuration: SLA-tree dispatching over
   [planner]-ordered buffers, [scheduler] picking next, fresh metrics.
   Both the estimation pass and the ground-truth replays go through
   here, so they cannot drift apart (and stateful schedulers get their
   per-run server-event hook installed exactly once). *)
let run_sim ?on_dispatch ~queries ~n_servers ~planner ~scheduler ~warmup_id () =
  let metrics = Metrics.create ~warmup_id () in
  let pick_next, hook = Schedulers.instantiate scheduler in
  Sim.run ?on_dispatch ?on_server_event:hook ~queries ~n_servers ~pick_next
    ~dispatch:(Dispatchers.instantiate (Dispatchers.sla_tree planner))
    ~metrics ();
  metrics

(* One run with [n_servers], returning the run metrics and the margin
   accumulator. [warmup_id] bounds the measured window. *)
let run_with_estimation ~queries ~n_servers ~planner ~scheduler ~warmup_id =
  let acc = Stats.create () in
  let on_dispatch ~now q (d : Sim.decision) =
    if q.Query.id >= warmup_id then
      match margin ~now q d with Some m -> Stats.add acc m | None -> ()
  in
  let metrics =
    run_sim ~on_dispatch ~queries ~n_servers ~planner ~scheduler ~warmup_id ()
  in
  ( metrics,
    {
      est_margin_per_query = Stats.mean acc;
      avg_loss = Metrics.avg_loss metrics;
      measured = Stats.count acc;
    } )

(* Ground truth (Sec 7.4): same trace, n vs n+1 servers; the margin is
   the gain in average per-query profit, i.e. the drop in average
   per-query loss. *)
let ground_truth ~queries ~n_servers ~planner ~scheduler ~warmup_id =
  let run m =
    Metrics.avg_profit
      (run_sim ~queries ~n_servers:m ~planner ~scheduler ~warmup_id ())
  in
  run (n_servers + 1) -. run n_servers
