(* Capacity planning (paper Secs 6.3, 7.4): estimate the per-query
   profit margin of adding one server, without actually adding it.

   While the system runs with SLA-tree dispatching, every arrival
   reports g_i, the best insertion profit among real servers. We also
   compute g_0, the profit the query would earn on a fictitious idle
   server. Accumulating (g_0 - g_i) over the measured window
   approximates the profit a new server would add. The ground truth
   replays the identical trace with n and n+1 servers. *)

type estimate = {
  est_margin_per_query : float;  (** mean (g0 - gi) over measured queries *)
  avg_loss : float;  (** avg profit loss of the n-server run *)
  measured : int;
}

(* One run with [n_servers] and SLA-tree dispatching over [planner]-
   ordered buffers, returning the run metrics and the margin
   accumulator. [warmup_id] bounds the measured window. *)
let run_with_estimation ~queries ~n_servers ~planner ~scheduler ~warmup_id =
  let metrics = Metrics.create ~warmup_id in
  let margin = Stats.create () in
  let dispatch = Dispatchers.instantiate (Dispatchers.sla_tree planner) in
  let on_dispatch ~now q (d : Sim.decision) =
    match d.est_delta with
    | Some gi when q.Query.id >= warmup_id ->
      let g0 = What_if.idle_server_profit ~now q in
      Stats.add margin (g0 -. gi)
    | Some _ | None -> ()
  in
  Sim.run ~on_dispatch ~queries ~n_servers ~pick_next:(Schedulers.pick scheduler)
    ~dispatch ~metrics ();
  ( metrics,
    {
      est_margin_per_query = Stats.mean margin;
      avg_loss = Metrics.avg_loss metrics;
      measured = Stats.count margin;
    } )

(* Ground truth (Sec 7.4): same trace, n vs n+1 servers; the margin is
   the gain in average per-query profit, i.e. the drop in average
   per-query loss. *)
let ground_truth ~queries ~n_servers ~planner ~scheduler ~warmup_id =
  let run m =
    let metrics = Metrics.create ~warmup_id in
    let dispatch = Dispatchers.instantiate (Dispatchers.sla_tree planner) in
    Sim.run ~queries ~n_servers:m ~pick_next:(Schedulers.pick scheduler)
      ~dispatch ~metrics ();
    Metrics.avg_profit metrics
  in
  run (n_servers + 1) -. run n_servers
