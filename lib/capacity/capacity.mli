(** Capacity planning (paper Secs 6.3, 7.4): per-query profit margin of
    one additional server, estimated online from the fictitious-idle-
    server what-if, and its replay-based ground truth. *)

type estimate = {
  est_margin_per_query : float;
      (** mean (g0 - gi) over the measured window *)
  avg_loss : float;  (** avg per-query loss of the n-server run *)
  measured : int;
}

(** [margin ~now q d] is [g0 - gi] for one dispatch decision: the
    profit the query would earn starting immediately on a fictitious
    idle server, minus the insertion profit the dispatcher reported
    for its chosen server. [None] when the dispatcher reports no
    [est_delta]. The elastic controller accumulates the same probe. *)
val margin : now:float -> Query.t -> Sim.decision -> float option

(** One simulation run with SLA-tree dispatching over [planner]-ordered
    buffers — the shared substrate of {!run_with_estimation} and
    {!ground_truth} (exposed for reuse and tests). *)
val run_sim :
  ?on_dispatch:(now:float -> Query.t -> Sim.decision -> unit) ->
  queries:Query.t array ->
  n_servers:int ->
  planner:Planner.t ->
  scheduler:Schedulers.t ->
  warmup_id:int ->
  unit ->
  Metrics.t

(** Run the system with SLA-tree dispatching and accumulate the margin
    estimate alongside normal metrics. *)
val run_with_estimation :
  queries:Query.t array ->
  n_servers:int ->
  planner:Planner.t ->
  scheduler:Schedulers.t ->
  warmup_id:int ->
  Metrics.t * estimate

(** Replay the identical trace with [n_servers] and [n_servers + 1]
    servers; returns the difference in average per-query profit. *)
val ground_truth :
  queries:Query.t array ->
  n_servers:int ->
  planner:Planner.t ->
  scheduler:Schedulers.t ->
  warmup_id:int ->
  float
