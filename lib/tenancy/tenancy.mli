(** Multi-tenant economics: tenant profiles and SLA classes, a
    probe-priced admission controller for {!Sim}'s [?admit] hook, and
    per-tenant accounting (profit, Jain fairness, SLO burn-rate
    windows).

    Tenant assignment and the SLA a tenant's query carries are pure
    functions of (registry seed, query id) — the {!Sla_synth} keyed
    draw discipline — so tagging a workload is deterministic under any
    chunking, tiling or [-j].

    The admission controller prices an arriving query with the
    SLA-tree {e postpone} probe ({!What_if.insertion_delta} through
    {!Dispatchers.insertion_profit}): the query's own attainable
    profit at its planned slot on the best server minus the postpone
    loss it inflicts on everything already buffered behind that slot.
    Nets below the margin are re-priced one SLA class down (degrade)
    and rejected only when even the cheaper copy prices negative. *)

(** {2 Profiles and the registry} *)

type profile = private {
  tenant : int;  (** assigned by {!registry}: index + 1; 0 = anonymous *)
  pname : string;
  cls : int;  (** index into the synthesis config's class ladder *)
  tier : float;  (** price multiplier on the class's gains and penalty *)
  share : int;  (** relative arrival weight for assignment *)
  slo_late : float;  (** error budget: tolerated late fraction *)
}

(** Validating constructor; defaults [tier = 1.0], [share = 1],
    [slo_late = 0.1]. The [tenant] field is assigned by {!registry}. *)
val profile :
  ?tier:float ->
  ?share:int ->
  ?slo_late:float ->
  name:string ->
  cls:int ->
  unit ->
  profile

type registry = private {
  profiles : profile array;
  synth : Sla_synth.config;  (** class ladder + stretches behind the SLAs *)
  seed : int;
}

(** [registry profiles] numbers the profiles 1..n and validates every
    class index against [synth]'s ladder. *)
val registry :
  ?seed:int -> ?synth:Sla_synth.config -> profile array -> registry

(** Three tenants over the default gold/silver/bronze ladder: a small
    1.5x-paying gold tenant (5% error budget), a mid-size silver
    tenant, and a large discounted bronze batch tenant (25%). *)
val default_registry : unit -> registry

val n_tenants : registry -> int
val find : registry -> tenant:int -> profile option

(** The stepwise SLA tenant [p] buys for an estimate: class ladder
    [cls] with gains and penalty scaled by [p.tier]. *)
val sla_for : registry -> profile -> cls:int -> est:float -> Sla.t

(** {2 Tenant assignment} *)

(** The tenant the query with [id] is assigned to — a pure function of
    (registry seed, id). *)
val tenant_of : registry -> id:int -> int

(** Tag every query with its tenant and that tenant's tier-scaled SLA
    (sizes, estimates and arrivals are untouched). *)
val assign : registry -> Query.t array -> Query.t array

(** Streaming {!assign}. *)
val assign_seq : registry -> Query.t Seq.t -> Query.t Seq.t

(** {2 Per-tenant accounting} *)

module Acct : sig
  type t

  val create : registry -> warmup_id:int -> t

  (** Admission-side counters (the admission controller drives these;
      drive them directly on admission-off runs). *)
  val on_offered : t -> Query.t -> unit

  val on_admitted : t -> Query.t -> unit
  val on_degraded : t -> Query.t -> unit
  val on_rejected : t -> Query.t -> unit

  (** Wire as [Sim]'s [on_complete]; queries with [id < warmup_id]
      count as completed but are not measured. *)
  val on_complete : t -> Query.t -> completion:float -> unit

  val total_profit : t -> float
  val total_rejected_value : t -> float

  (** Cumulative per-tenant sampler ([t<i>.measured] / [t<i>.late])
      feeding the burn-rate windows; call {!sample} from a ticker. *)
  val timeseries_columns : registry -> string array

  val timeseries : registry -> Obs.Timeseries.t
  val sample : t -> Obs.Timeseries.t -> now:float -> unit
end

(** {2 Admission} *)

type admission

(** [admission reg ~acct ()] builds the controller. [theta] (default
    0) is the required net margin in dollars; [degrade] (default true)
    allows down-tiering before rejection; [planner] (default
    {!Planner.edf}) is the rank model the postpone probe prices
    insertion under. *)
val admission :
  ?theta:float ->
  ?degrade:bool ->
  ?planner:Planner.t ->
  registry ->
  acct:Acct.t ->
  unit ->
  admission

(** Wire as [Sim]'s [?admit]. *)
val admit : admission -> Sim.t -> Query.t -> Sim.verdict

(** {2 Fairness and SLO burn rate} *)

(** Jain's index [(sum x)^2 / (n * sum x^2)] — 1.0 means perfectly
    even, 1/n means one tenant takes everything; 1.0 on empty or
    all-zero input. *)
val jain : float array -> float

type burn_window = {
  bw_label : string;
  bw_short_min : float;  (** confirmation window, canonical minutes *)
  bw_long_min : float;  (** budget window, canonical minutes *)
  bw_threshold : float;  (** page when both burns reach this *)
}

(** The four canonical pairs: 5m/1h @ 14.4x, 30m/6h @ 6x, 2h/1d @ 3x,
    6h/3d @ 1x. Mapped to virtual ms by anchoring 3 days to the run
    span. *)
val burn_windows : burn_window list

type burn = {
  window : burn_window;
  short_burn : float;  (** late fraction over the short window / budget *)
  long_burn : float;
  firing : bool;
}

(** Burn rates for [tenant] at end of run, read off an {!Acct}
    timeseries whose last sample is at [span]. *)
val burn_rates :
  registry -> Obs.Timeseries.t -> tenant:int -> span:float -> burn list

(** {2 Report} *)

type tenant_row = {
  r_tenant : int;
  r_name : string;
  r_offered : int;
  r_admitted : int;
  r_degraded : int;
  r_rejected : int;
  r_completed : int;
  r_measured : int;
  r_late : int;
  r_profit : float;
  r_ideal : float;
  r_attainment : float;  (** profit / ideal over measured work *)
  r_burns : burn list;
}

type report = {
  rows : tenant_row list;
  rep_profit : float;  (** summed measured per-tenant profit *)
  rep_rejected_value : float;  (** ideal profit turned away *)
  fairness : float;  (** Jain over per-tenant attainment *)
}

(** Burn columns are filled only when a timeseries and a positive
    [span] are supplied. *)
val report : ?timeseries:Obs.Timeseries.t -> ?span:float -> Acct.t -> report

val pp_burn : Format.formatter -> burn -> unit
val pp_row : Format.formatter -> tenant_row -> unit
val pp_report : Format.formatter -> report -> unit
