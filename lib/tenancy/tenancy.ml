(* Multi-tenant economics: who is paying for each query, what class of
   service they bought, and whether accepting their next query is
   worth it.

   Three pieces:

   - a {e registry} of tenant profiles (SLA class + price tier +
     arrival share + error budget). Tenant assignment and the SLA a
     tenant's query carries are pure functions of (seed, query id), so
     tagging a workload is deterministic under any chunking, tiling or
     [-j] — the same keyed-draw discipline as [Sla_synth.pick_class];

   - an {e admission controller} for [Sim]'s [?admit] hook. It prices
     the arriving query with the SLA-tree postpone probe: the best
     servers's insertion delta is the newcomer's own attainable profit
     at its planned slot {e minus} the postpone loss it inflicts on
     every query already buffered behind that slot
     ([What_if.insertion_delta], via [Dispatchers.insertion_profit]).
     A query whose net is below the margin is first re-priced one SLA
     class down (the tenant still gets served, later and cheaper) and
     only rejected when even the degraded copy prices negative;

   - per-tenant {e accounting}: admission verdicts, completions,
     profit/ideal, lateness — plus a cumulative timeseries feeding the
     multi-window SLO burn-rate report, and a Jain fairness index over
     per-tenant profit attainment. *)

(* ------------------------------------------------------------------ *)
(* Profiles and the registry *)

type profile = {
  tenant : int;  (* registry index + 1; 0 stays the anonymous default *)
  pname : string;
  cls : int;  (* index into the synthesis config's classes, 0 = best *)
  tier : float;  (* price multiplier on the class's gains and penalty *)
  share : int;  (* relative arrival weight for assignment *)
  slo_late : float;  (* error budget: tolerated late fraction *)
}

let profile ?(tier = 1.0) ?(share = 1) ?(slo_late = 0.1) ~name ~cls () =
  if name = "" then invalid_arg "Tenancy.profile: name must be non-empty";
  if cls < 0 then invalid_arg "Tenancy.profile: cls must be non-negative";
  if tier <= 0.0 then invalid_arg "Tenancy.profile: tier must be positive";
  if share < 1 then invalid_arg "Tenancy.profile: share must be >= 1";
  if slo_late <= 0.0 || slo_late > 1.0 then
    invalid_arg "Tenancy.profile: slo_late must be in (0, 1]";
  { tenant = 0; pname = name; cls; tier; share; slo_late }

type registry = {
  profiles : profile array;  (* profiles.(i).tenant = i + 1 *)
  synth : Sla_synth.config;  (* class ladder + stretches the SLAs use *)
  seed : int;
}

let registry ?(seed = 0x7e4a47) ?(synth = Sla_synth.config ()) profiles =
  if Array.length profiles = 0 then
    invalid_arg "Tenancy.registry: need at least one profile";
  let n_classes = Array.length synth.Sla_synth.classes in
  Array.iter
    (fun p ->
      if p.cls >= n_classes then
        invalid_arg "Tenancy.registry: profile class out of range")
    profiles;
  { profiles = Array.mapi (fun i p -> { p with tenant = i + 1 }) profiles;
    synth; seed }

(* Three-tenant default mirroring the gold/silver/bronze synthesis
   ladder: a small premium tenant paying 1.5x for gold service, a
   mid-size tenant on silver, and a big batch tenant on discounted
   bronze with a loose error budget. *)
let default_registry () =
  registry
    [|
      profile ~name:"gold-api" ~cls:0 ~tier:1.5 ~share:1 ~slo_late:0.05 ();
      profile ~name:"silver-app" ~cls:1 ~tier:1.0 ~share:3 ~slo_late:0.10 ();
      profile ~name:"bronze-batch" ~cls:2 ~tier:0.6 ~share:6 ~slo_late:0.25 ();
    |]

let n_tenants reg = Array.length reg.profiles

let find reg ~tenant =
  if tenant >= 1 && tenant <= Array.length reg.profiles then
    Some reg.profiles.(tenant - 1)
  else None

(* The SLA tenant [p] buys for a query with estimate [est]: the class's
   stepwise ladder with every gain and the penalty scaled by the price
   tier — a tenant paying 1.5x earns (and forfeits) 1.5x the dollars,
   so the probes price its queries accordingly. *)
let sla_for reg p ~cls ~est =
  let base = Sla_synth.sla_of reg.synth reg.synth.Sla_synth.classes.(cls) ~est in
  let levels =
    List.map
      (fun { Sla.bound; gain } -> { Sla.bound; gain = gain *. p.tier })
      (Sla.levels base)
  in
  Sla.make ~levels ~penalty:(Sla.penalty base *. p.tier)

(* ------------------------------------------------------------------ *)
(* Tenant assignment *)

(* Share-weighted draw keyed on the query id: a pure function of
   (registry seed, id), so assignment is identical however the trace
   is chunked, tiled or parallelised. *)
let pick_tenant reg ~master ~id =
  let total = Array.fold_left (fun a p -> a + p.share) 0 reg.profiles in
  let d = Prng.int (Prng.split_key master ~key:id) total in
  let rec go i acc =
    let acc = acc + reg.profiles.(i).share in
    if d < acc then reg.profiles.(i) else go (i + 1) acc
  in
  go 0 0

let tenant_of reg ~id =
  (pick_tenant reg ~master:(Prng.create reg.seed) ~id).tenant

let assign_query reg ~master q =
  let p = pick_tenant reg ~master ~id:q.Query.id in
  Query.make ~id:q.Query.id ~arrival:q.Query.arrival ~size:q.Query.size
    ~est_size:q.Query.est_size ~retries:q.Query.retries ~tenant:p.tenant
    ~sla:(sla_for reg p ~cls:p.cls ~est:q.Query.est_size)
    ()

let assign reg queries =
  let master = Prng.create reg.seed in
  Array.map (assign_query reg ~master) queries

let assign_seq reg queries =
  let master = Prng.create reg.seed in
  Seq.map (assign_query reg ~master) queries

(* ------------------------------------------------------------------ *)
(* Per-tenant accounting *)

module Acct = struct
  (* Index 0 is the anonymous tenant; 1..n the registry. All arrays
     are cumulative counters — O(1) per event, no per-query state. *)
  type t = {
    reg : registry;
    warmup_id : int;
    offered : int array;
    admitted : int array;
    degraded : int array;
    rejected : int array;
    completed : int array;
    measured : int array;
    late : int array;
    profit : float array;
    ideal : float array;
    response : float array;
    rejected_value : float array;
  }

  let create reg ~warmup_id =
    let n = n_tenants reg + 1 in
    {
      reg;
      warmup_id;
      offered = Array.make n 0;
      admitted = Array.make n 0;
      degraded = Array.make n 0;
      rejected = Array.make n 0;
      completed = Array.make n 0;
      measured = Array.make n 0;
      late = Array.make n 0;
      profit = Array.make n 0.0;
      ideal = Array.make n 0.0;
      response = Array.make n 0.0;
      rejected_value = Array.make n 0.0;
    }

  let slot t q =
    let i = q.Query.tenant in
    if i >= 0 && i <= n_tenants t.reg then i else 0

  let measured_q t q = q.Query.id >= t.warmup_id

  let on_offered t q =
    let i = slot t q in
    t.offered.(i) <- t.offered.(i) + 1

  let on_admitted t q =
    let i = slot t q in
    t.admitted.(i) <- t.admitted.(i) + 1

  let on_degraded t q =
    let i = slot t q in
    t.degraded.(i) <- t.degraded.(i) + 1

  let on_rejected t q =
    let i = slot t q in
    t.rejected.(i) <- t.rejected.(i) + 1;
    if measured_q t q then
      t.rejected_value.(i) <- t.rejected_value.(i) +. Query.ideal_profit q

  (* Wire as [Sim]'s [on_complete]. Without a drop policy every
     admitted query eventually completes (late ones at their penalty),
     so completions account for all served work. *)
  let on_complete t q ~completion =
    let i = slot t q in
    t.completed.(i) <- t.completed.(i) + 1;
    if measured_q t q then begin
      t.measured.(i) <- t.measured.(i) + 1;
      t.profit.(i) <- t.profit.(i) +. Query.profit_at q ~completion;
      t.ideal.(i) <- t.ideal.(i) +. Query.ideal_profit q;
      t.response.(i) <- t.response.(i) +. (completion -. q.Query.arrival);
      if completion > Query.first_deadline q then t.late.(i) <- t.late.(i) + 1
    end

  let total_profit t = Array.fold_left ( +. ) 0.0 t.profit
  let total_rejected_value t = Array.fold_left ( +. ) 0.0 t.rejected_value

  (* -------------------------------------------------------------- *)
  (* The cumulative per-tenant timeseries the burn-rate windows read:
     columns t<i>.measured / t<i>.late, one row per sample. *)

  let timeseries_columns reg =
    Array.concat
      (List.map
         (fun p ->
           [| Printf.sprintf "t%d.measured" p.tenant;
              Printf.sprintf "t%d.late" p.tenant |])
         (Array.to_list reg.profiles))

  let timeseries reg = Obs.Timeseries.create ~columns:(timeseries_columns reg)

  let sample t ts ~now =
    let n = n_tenants t.reg in
    let row = Array.make (2 * n) 0.0 in
    for i = 1 to n do
      row.((2 * (i - 1)) + 0) <- Float.of_int t.measured.(i);
      row.((2 * (i - 1)) + 1) <- Float.of_int t.late.(i)
    done;
    Obs.Timeseries.sample ts ~now row
end

(* ------------------------------------------------------------------ *)
(* The admission controller *)

type admission = {
  a_reg : registry;
  acct : Acct.t;
  theta : float;  (* required net margin, $ *)
  allow_degrade : bool;
  planner : Planner.t;  (* rank model for the postpone probe *)
}

let admission ?(theta = 0.0) ?(degrade = true) ?(planner = Planner.edf) reg
    ~acct () =
  if not (Float.is_finite theta) then
    invalid_arg "Tenancy.admission: theta must be finite";
  { a_reg = reg; acct; theta; allow_degrade = degrade; planner }

(* The server an append-only dispatcher would pick: argmax of the O(1)
   appended-profit probe over dispatchable servers (ties to the lowest
   sid, matching the dispatcher's own scan order). *)
let best_server sim q =
  let m = Sim.n_servers sim in
  let best = ref (-1) and best_p = ref neg_infinity in
  for sid = 0 to m - 1 do
    if Sim.dispatchable sim sid then begin
      let p = Dispatchers.insertion_profit_fcfs sim sid q in
      if p > !best_p then begin
        best := sid;
        best_p := p
      end
    end
  done;
  if !best < 0 then None else Some !best

(* Net worth of admitting [q] on [sid]: the SLA-tree postpone probe at
   the query's planned slot — its own attainable profit there minus
   the postpone loss inflicted on everything already buffered behind
   it. Gains are tier-scaled at assignment, so this is in dollars. *)
let net_of admission sim sid q =
  Dispatchers.insertion_profit admission.planner sim sid q

let degraded_copy admission q =
  match find admission.a_reg ~tenant:q.Query.tenant with
  | None -> None
  | Some p ->
    let cls = p.cls + 1 in
    if cls >= Array.length admission.a_reg.synth.Sla_synth.classes then None
    else
      Some
        (Query.make ~id:q.Query.id ~arrival:q.Query.arrival ~size:q.Query.size
           ~est_size:q.Query.est_size ~retries:q.Query.retries
           ~tenant:q.Query.tenant
           ~sla:(sla_for admission.a_reg p ~cls ~est:q.Query.est_size)
           ())

(* Wire as [Sim]'s [?admit]. *)
let admit admission sim q =
  let acct = admission.acct in
  Acct.on_offered acct q;
  match best_server sim q with
  | None ->
    (* nothing accepts work: let the dispatcher deal with it *)
    Acct.on_admitted acct q;
    Sim.Admit
  | Some sid ->
    if net_of admission sim sid q >= admission.theta then begin
      Acct.on_admitted acct q;
      Sim.Admit
    end
    else begin
      match
        if admission.allow_degrade then degraded_copy admission q else None
      with
      | Some q' when net_of admission sim sid q' >= admission.theta ->
        Acct.on_admitted acct q;
        Acct.on_degraded acct q;
        Sim.Degrade q'
      | _ ->
        Acct.on_rejected acct q;
        Sim.Reject
    end

(* ------------------------------------------------------------------ *)
(* Fairness *)

(* Jain's index over per-tenant profit attainment x_i = profit_i /
   ideal_i: (sum x)^2 / (n * sum x^2); 1.0 = perfectly even service,
   1/n = one tenant gets everything. 1.0 for an empty or all-zero
   vector (nobody is being treated unequally). *)
let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (Float.of_int n *. s2)
  end

(* ------------------------------------------------------------------ *)
(* SLO burn rate *)

(* Multi-window multi-burn-rate alerting: a window's burn rate is the
   late fraction over that window divided by the tenant's error
   budget; a page fires when both the long window and its short
   confirmation window burn above the threshold. The four canonical
   pairs (5m/1h @ 14.4x ... 6h/3d @ 1x) are mapped onto virtual time
   by anchoring the longest window (3 days) to the run's span. *)
type burn_window = {
  bw_label : string;
  bw_short_min : float;
  bw_long_min : float;
  bw_threshold : float;
}

let burn_windows =
  [
    { bw_label = "5m/1h"; bw_short_min = 5.0; bw_long_min = 60.0;
      bw_threshold = 14.4 };
    { bw_label = "30m/6h"; bw_short_min = 30.0; bw_long_min = 360.0;
      bw_threshold = 6.0 };
    { bw_label = "2h/1d"; bw_short_min = 120.0; bw_long_min = 1440.0;
      bw_threshold = 3.0 };
    { bw_label = "6h/3d"; bw_short_min = 360.0; bw_long_min = 4320.0;
      bw_threshold = 1.0 };
  ]

type burn = {
  window : burn_window;
  short_burn : float;
  long_burn : float;
  firing : bool;
}

(* Late fraction over (from_, to_] read off the cumulative columns; a
   window with no measured traffic burns 0 (an empty window can't
   spend budget). *)
let late_frac_over ts ~tenant ~from_ ~to_ =
  let v column now =
    let x = Obs.Timeseries.value_at ts ~column ~now in
    if Float.is_nan x then 0.0 else x
  in
  let col_n = Printf.sprintf "t%d.measured" tenant in
  let col_l = Printf.sprintf "t%d.late" tenant in
  let dn = v col_n to_ -. v col_n (Float.max 0.0 from_) in
  let dl = v col_l to_ -. v col_l (Float.max 0.0 from_) in
  if dn <= 0.0 then 0.0 else dl /. dn

let burn_rates reg ts ~tenant ~span =
  match find reg ~tenant with
  | None -> []
  | Some p ->
    let ms_per_min = span /. 4320.0 in
    List.map
      (fun w ->
        let frac m =
          late_frac_over ts ~tenant ~from_:(span -. (m *. ms_per_min))
            ~to_:span
        in
        let short_burn = frac w.bw_short_min /. p.slo_late in
        let long_burn = frac w.bw_long_min /. p.slo_late in
        {
          window = w;
          short_burn;
          long_burn;
          firing =
            short_burn >= w.bw_threshold && long_burn >= w.bw_threshold;
        })
      burn_windows

(* ------------------------------------------------------------------ *)
(* The per-tenant report *)

type tenant_row = {
  r_tenant : int;
  r_name : string;
  r_offered : int;
  r_admitted : int;
  r_degraded : int;
  r_rejected : int;
  r_completed : int;
  r_measured : int;
  r_late : int;
  r_profit : float;
  r_ideal : float;
  r_attainment : float;  (* profit / ideal over measured work; 0 if none *)
  r_burns : burn list;
}

type report = {
  rows : tenant_row list;
  rep_profit : float;  (* summed measured per-tenant profit *)
  rep_rejected_value : float;
  fairness : float;  (* Jain over per-tenant attainment *)
}

let report ?timeseries:ts ?(span = 0.0) (acct : Acct.t) =
  let reg = acct.Acct.reg in
  let rows =
    Array.to_list
      (Array.map
         (fun p ->
           let i = p.tenant in
           let ideal = acct.Acct.ideal.(i) in
           {
             r_tenant = i;
             r_name = p.pname;
             r_offered = acct.Acct.offered.(i);
             r_admitted = acct.Acct.admitted.(i);
             r_degraded = acct.Acct.degraded.(i);
             r_rejected = acct.Acct.rejected.(i);
             r_completed = acct.Acct.completed.(i);
             r_measured = acct.Acct.measured.(i);
             r_late = acct.Acct.late.(i);
             r_profit = acct.Acct.profit.(i);
             r_ideal = ideal;
             r_attainment =
               (if ideal = 0.0 then 0.0 else acct.Acct.profit.(i) /. ideal);
             r_burns =
               (match ts with
               | Some ts when span > 0.0 ->
                 burn_rates reg ts ~tenant:i ~span
               | _ -> []);
           })
         reg.profiles)
  in
  {
    rows;
    rep_profit = Acct.total_profit acct;
    rep_rejected_value = Acct.total_rejected_value acct;
    fairness =
      jain (Array.of_list (List.map (fun r -> r.r_attainment) rows));
  }

let pp_burn ppf b =
  Fmt.pf ppf "%s %.2fx/%.2fx%s" b.window.bw_label b.short_burn b.long_burn
    (if b.firing then "!" else "")

let pp_row ppf r =
  Fmt.pf ppf
    "t%d %-12s off %6d adm %6d deg %5d rej %5d late %5d profit %10.1f \
     attain %.3f"
    r.r_tenant r.r_name r.r_offered r.r_admitted r.r_degraded r.r_rejected
    r.r_late r.r_profit r.r_attainment;
  if r.r_burns <> [] then begin
    Fmt.pf ppf "  burn[";
    List.iteri
      (fun i b -> Fmt.pf ppf "%s%a" (if i > 0 then " " else "") pp_burn b)
      r.r_burns;
    Fmt.pf ppf "]"
  end

let pp_report ppf rep =
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rep.rows;
  Fmt.pf ppf "total profit %.1f  turned-away ideal %.1f  Jain fairness %.3f"
    rep.rep_profit rep.rep_rejected_value rep.fairness
