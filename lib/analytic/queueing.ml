(* Closed-form M/M/1 and M/M/m (Erlang C) queueing formulas.

   These are not part of the paper's contribution; they validate the
   simulation substrate. For exponential workloads under FCFS the
   simulator's SLA-A loss must match the analytic response-time tail —
   that cross-check lives in the test suite and in the Validation
   experiment runner. *)

(* Probability an arriving job waits in an M/M/m queue with offered
   load a = lambda/mu (Erlang C formula). Requires a < m for
   stability. *)
let erlang_c ~servers ~offered_load =
  if servers <= 0 then invalid_arg "Queueing.erlang_c: servers <= 0";
  let a = offered_load in
  if a < 0.0 then invalid_arg "Queueing.erlang_c: offered_load < 0";
  let m = servers in
  if a >= Float.of_int m then 1.0
  else begin
    (* Sum a^k/k! iteratively to avoid overflow. *)
    let term = ref 1.0 in
    let sum = ref 1.0 in
    for k = 1 to m - 1 do
      term := !term *. a /. Float.of_int k;
      sum := !sum +. !term
    done;
    let top = !term *. a /. Float.of_int m in
    (* top = a^m/m! *)
    let rho = a /. Float.of_int m in
    let top = top /. (1.0 -. rho) in
    top /. (!sum +. top)
  end

(* P(response > t) for an M/M/m FCFS queue: the job's own service
   S ~ Exp(mu) plus a wait that is 0 with probability 1 - C and
   Exp(m*mu - lambda) otherwise. *)
let mmm_response_tail ~servers ~arrival_rate ~service_rate ~t =
  if t < 0.0 then 1.0
  else begin
    let m = Float.of_int servers in
    let mu = service_rate in
    let lambda = arrival_rate in
    if lambda >= m *. mu then 1.0
    else begin
      let c = erlang_c ~servers ~offered_load:(lambda /. mu) in
      let beta = (m *. mu) -. lambda in
      if Float.abs (beta -. mu) < 1e-12 *. mu then
        (* Degenerate case beta = mu: R has an Erlang-flavoured tail. *)
        exp (-.mu *. t) *. (1.0 +. (c *. mu *. t))
      else
        exp (-.mu *. t)
        +. (c *. mu /. (mu -. beta) *. (exp (-.beta *. t) -. exp (-.mu *. t)))
    end
  end

(* Special case m = 1: the textbook exponential response time with
   rate mu*(1 - rho). *)
let mm1_response_tail ~arrival_rate ~service_rate ~t =
  mmm_response_tail ~servers:1 ~arrival_rate ~service_rate ~t

(* Mean response time of an M/M/m FCFS queue. *)
let mmm_mean_response ~servers ~arrival_rate ~service_rate =
  let m = Float.of_int servers in
  let mu = service_rate in
  let lambda = arrival_rate in
  if lambda >= m *. mu then infinity
  else begin
    let c = erlang_c ~servers ~offered_load:(lambda /. mu) in
    (1.0 /. mu) +. (c /. ((m *. mu) -. lambda))
  end

(* Pollaczek-Khinchine: mean waiting time of an M/G/1 FCFS queue with
   general service times, from the first two moments of the service
   distribution. Validates the simulator on the SSBM workload, whose
   moments are exact (13 known values). *)
let mg1_mean_wait ~arrival_rate ~mean_service ~second_moment =
  if mean_service <= 0.0 || second_moment < mean_service *. mean_service then
    invalid_arg "Queueing.mg1_mean_wait: inconsistent moments";
  let rho = arrival_rate *. mean_service in
  if rho >= 1.0 then infinity
  else arrival_rate *. second_moment /. (2.0 *. (1.0 -. rho))

let mg1_mean_response ~arrival_rate ~mean_service ~second_moment =
  mean_service +. mg1_mean_wait ~arrival_rate ~mean_service ~second_moment

(* Expected per-query loss of a stepwise SLA under the M/M/m response
   distribution: loss = max_gain - sum_k gain_k * P(level k reached). *)
let expected_sla_loss sla ~servers ~arrival_rate ~service_rate =
  let tail t = mmm_response_tail ~servers ~arrival_rate ~service_rate ~t in
  let levels = Sla.levels sla in
  let expected_profit =
    List.fold_left
      (fun (acc, prev_tail) { Sla.bound; gain } ->
        let cur_tail = tail bound in
        (acc +. (gain *. (prev_tail -. cur_tail)), cur_tail))
      (0.0, 1.0) levels
    |> fun (acc, last_tail) -> acc -. (Sla.penalty sla *. last_tail)
  in
  Sla.max_gain sla -. expected_profit
