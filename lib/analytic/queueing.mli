(** Closed-form M/M/1 and M/M/m queueing formulas, used to validate
    the simulation substrate (exponential workload, FCFS). *)

(** Erlang C: probability an arrival waits, given [offered_load]
    (lambda/mu) and [servers]. Returns 1 when unstable. *)
val erlang_c : servers:int -> offered_load:float -> float

(** [P(response > t)] for M/M/m FCFS. *)
val mmm_response_tail :
  servers:int -> arrival_rate:float -> service_rate:float -> t:float -> float

val mm1_response_tail : arrival_rate:float -> service_rate:float -> t:float -> float

(** Mean response time (infinity when unstable). *)
val mmm_mean_response :
  servers:int -> arrival_rate:float -> service_rate:float -> float

(** Pollaczek-Khinchine mean waiting time for M/G/1 FCFS, from the
    first two service moments. Infinity when unstable; raises on
    inconsistent moments. *)
val mg1_mean_wait :
  arrival_rate:float -> mean_service:float -> second_moment:float -> float

val mg1_mean_response :
  arrival_rate:float -> mean_service:float -> second_moment:float -> float

(** Expected per-query loss (vs ideal) of a stepwise SLA under the
    M/M/m FCFS response distribution. *)
val expected_sla_loss :
  Sla.t -> servers:int -> arrival_rate:float -> service_rate:float -> float
