(* Exact offline scheduling for small instances (paper Sec 8.2).

   Maximizing total stepwise-SLA profit over all orderings is
   NP-complete, but a Held-Karp style dynamic program over subsets is
   exact in O(2^n * n^2) time: the completion time of the next query
   depends only on the *set* of queries already executed (the sum of
   their actual sizes), not their order, so

     best(S) = max over q not in S of
                 profit(q completes at t0 + size(S) + size_q) + best(S + {q})

   This bounds n at ~20 in practice; it exists to *measure* how far
   the SLA-tree greedy policy sits from the true optimum, not to run
   in production. *)

let max_queries = 22

(* Optimal total profit and one ordering achieving it, executing all
   queries back-to-back from [now] with their actual sizes. *)
let solve ~now queries =
  let n = Array.length queries in
  if n > max_queries then
    invalid_arg
      (Printf.sprintf "Offline_optimal.solve: %d queries exceeds the %d cap" n
         max_queries);
  if n = 0 then (0.0, [||])
  else begin
    let sizes = Array.map (fun q -> q.Query.size) queries in
    let full = (1 lsl n) - 1 in
    (* size_of.(s) = total size of the queries in subset s; filled
       incrementally from s with one bit removed. *)
    let size_of = Array.make (full + 1) 0.0 in
    for s = 1 to full do
      let b = s land -s in
      let i =
        (* index of the lowest set bit *)
        let rec go k = if b lsr k = 1 then k else go (k + 1) in
        go 0
      in
      size_of.(s) <- size_of.(s lxor b) +. sizes.(i)
    done;
    (* best.(s) = max profit obtainable from the queries NOT in s,
       given that the ones in s already executed. Iterate subsets in
       decreasing popcount order by plain downward index order:
       s lor bit > s, so best.(s lor bit) is already final when we
       compute best.(s). choice.(s) records the argmax. *)
    let best = Array.make (full + 1) 0.0 in
    let choice = Array.make (full + 1) (-1) in
    for s = full - 1 downto 0 do
      let t_base = now +. size_of.(s) in
      let best_v = ref neg_infinity and best_q = ref (-1) in
      for q = 0 to n - 1 do
        if s land (1 lsl q) = 0 then begin
          let completion = t_base +. sizes.(q) in
          let v =
            Query.profit_at queries.(q) ~completion +. best.(s lor (1 lsl q))
          in
          if v > !best_v then begin
            best_v := v;
            best_q := q
          end
        end
      done;
      best.(s) <- !best_v;
      choice.(s) <- !best_q
    done;
    (* Reconstruct one optimal order. *)
    let order = Array.make n 0 in
    let s = ref 0 in
    for k = 0 to n - 1 do
      let q = choice.(!s) in
      order.(k) <- q;
      s := !s lor (1 lsl q)
    done;
    (best.(0), order)
  end

(* Profit of executing [queries] in the given index order from
   [now]. *)
let profit_of_order ~now queries order =
  let t = ref now in
  Array.fold_left
    (fun acc i ->
      let q = queries.(i) in
      t := !t +. q.Query.size;
      acc +. Query.profit_at q ~completion:!t)
    0.0 order

(* Profit realized by the SLA-tree greedy policy offline (est = actual
   assumed, as in Sec 8.2's discussion). *)
let greedy_profit ~now queries =
  let remaining = ref (Array.to_list queries) in
  let t = ref now in
  let profit = ref 0.0 in
  while !remaining <> [] do
    let buf = Array.of_list !remaining in
    let tree = Sla_tree.build ~now:!t buf in
    let i = match What_if.best_rush tree with Some (i, _) -> i | None -> 0 in
    let q = buf.(i) in
    t := !t +. q.Query.size;
    profit := !profit +. Query.profit_at q ~completion:!t;
    remaining := List.filteri (fun k _ -> k <> i) !remaining
  done;
  !profit
