(* Planners: the "existing execution order" the SLA-tree framework
   requires (paper Sec 8.1). A planner maps the arrival-ordered buffer
   to a permutation giving the planned execution order.

   All planners are stable: queries that compare equal keep their
   arrival order. Stability also guarantees the "very minor condition"
   of Sec 6.2 — inserting a query never reorders the others — which the
   SLA-tree dispatcher relies on. *)

type t = {
  name : string;
  permutation : now:float -> Query.t array -> int array;
  time_invariant : bool;
      (* whether the permutation is independent of [now]; probe caches
         may only reuse a planned order across arrivals when true *)
  keys : (now:float -> Query.t -> float * float) option;
      (* for planners that are a stable sort on a lexicographic float
         pair: the sort key. Enables O(log n) insertion ranking over an
         already-planned buffer. *)
}

let name t = t.name
let time_invariant t = t.time_invariant

let plan t ~now buffer =
  let perm = t.permutation ~now buffer in
  assert (Array.length perm = Array.length buffer);
  perm

let planned_queries t ~now buffer =
  let perm = plan t ~now buffer in
  Array.map (fun i -> buffer.(i)) perm

(* Stable sort of indices by a key function; ties keep arrival order. *)
let by_key key =
 fun ~now buffer ->
  let n = Array.length buffer in
  let idx = Array.init n (fun i -> i) in
  let keys = Array.map (key ~now) buffer in
  Array.sort
    (fun a b ->
      let c = Float.compare keys.(a) keys.(b) in
      if c <> 0 then c else Int.compare a b)
    idx;
  idx

let fcfs =
  {
    name = "FCFS";
    permutation = (fun ~now:_ b -> Array.init (Array.length b) Fun.id);
    time_invariant = true;
    (* identity order = a stable sort on a constant key: everything
       ties, and the newcomer (latest arrival) loses every tie, so the
       sorted insertion rank correctly lands at the end. *)
    keys = Some (fun ~now:_ _ -> (0.0, 0.0));
  }

let sjf =
  {
    name = "SJF";
    permutation = by_key (fun ~now:_ q -> q.Query.est_size);
    time_invariant = true;
    keys = Some (fun ~now:_ q -> (q.Query.est_size, 0.0));
  }

let edf =
  {
    name = "EDF";
    permutation = by_key (fun ~now:_ q -> Query.first_deadline q);
    time_invariant = true;
    keys = Some (fun ~now:_ q -> (Query.first_deadline q, 0.0));
  }

(* Stable sort on a lexicographic pair of keys. *)
let by_key_pair key =
 fun ~now buffer ->
  let n = Array.length buffer in
  let idx = Array.init n (fun i -> i) in
  let keys = Array.map (key ~now) buffer in
  Array.sort
    (fun a b ->
      let ka1, ka2 = keys.(a) and kb1, kb2 = keys.(b) in
      let c = Float.compare ka1 kb1 in
      if c <> 0 then c
      else begin
        let c = Float.compare ka2 kb2 in
        if c <> 0 then c else Int.compare a b
      end)
    idx;
  idx

(* Value-based scheduling in the style of Haritsa et al. [10] (cited
   in Sec 2.3): queries carry a value (their best-case SLA gain) and a
   hard deadline; higher-value queries run first, earliest deadline
   breaks value ties. *)
let value_edf_key ~now:_ q =
  (-.Sla.max_gain q.Query.sla, Query.first_deadline q)

let value_edf =
  {
    name = "Value-EDF";
    permutation = by_key_pair value_edf_key;
    time_invariant = true;
    keys = Some value_edf_key;
  }

(* Cost-based scheduling (Peha-Tobagi [15], as used in Sec 7.2): order
   by descending expected loss per unit of work, where the loss
   expectation assumes a memoryless additional wait X ~ Exp(rate)
   beyond the query's own execution time. [rate] defaults to the
   inverse of the workload's mean execution time. *)
let cbs_priority ~rate ~now q =
  let elapsed = now -. q.Query.arrival +. q.Query.est_size in
  let work = Float.max q.Query.est_size 1e-9 in
  Sla.expected_loss_exp q.Query.sla ~elapsed ~rate /. work

let cbs ~rate =
  if rate <= 0.0 then invalid_arg "Planner.cbs: rate must be positive";
  {
    name = "CBS";
    permutation = by_key (fun ~now q -> -.cbs_priority ~rate ~now q);
    (* The priority depends on elapsed waiting time, so the planned
       order can change between arrivals with no server event at all:
       never cache a CBS plan. *)
    time_invariant = false;
    keys = Some (fun ~now q -> (-.cbs_priority ~rate ~now q, 0.0));
  }

(* Rank a new query within a planned buffer: the position it would take
   if inserted, assuming the same (stable) planner. Because planners
   are stable, existing queries keep their relative order. The new
   query loses all ties (it has the latest arrival). *)
let insertion_rank t ~now buffer query =
  let n = Array.length buffer in
  let extended = Array.append buffer [| query |] in
  let perm = t.permutation ~now extended in
  let rec find k = if perm.(k) = n then k else find (k + 1) in
  find 0

(* O(log n) insertion rank over a buffer ALREADY in planned order (the
   output of [planned_queries]). Because planners are stable sorts and
   the newcomer carries the latest arrival, it loses every key tie: its
   rank is the number of planned entries whose key pair is <= its own.
   Equals [insertion_rank] on a planned buffer; falls back to it when
   the planner has no key form. *)
let insertion_rank_sorted t ~now buffer query =
  match t.keys with
  | None -> insertion_rank t ~now buffer query
  | Some key ->
    let k1, k2 = key ~now query in
    let gt q =
      let e1, e2 = key ~now q in
      let c = Float.compare e1 k1 in
      if c <> 0 then c > 0 else Float.compare e2 k2 > 0
    in
    (* First index whose key pair exceeds the newcomer's. *)
    let lo = ref 0 and hi = ref (Array.length buffer) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if gt buffer.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
