(** Planners: the fixed execution order the SLA-tree requires.

    A planner maps the arrival-ordered buffer to a stable permutation
    (the planned execution order). Stability gives the paper's
    "very minor condition" (Sec 6.2): inserting a query never reorders
    the existing ones. *)

type t

val name : t -> string

(** Whether the planned order is independent of the decision time
    [now]. Probe caches may only reuse a plan across arrivals when
    true (CBS is the time-dependent exception). *)
val time_invariant : t -> bool

(** [plan t ~now buffer] is the permutation: [perm.(k)] is the buffer
    index of the k-th query to execute. *)
val plan : t -> now:float -> Query.t array -> int array

(** Buffer reordered into planned execution order. *)
val planned_queries : t -> now:float -> Query.t array -> Query.t array

(** First-come-first-serve: identity order. *)
val fcfs : t

(** Shortest-job-first on estimated sizes. *)
val sjf : t

(** Earliest (first) deadline first. *)
val edf : t

(** Value-based scheduling (Haritsa et al., cited in Sec 2.3): highest
    best-case SLA gain first, EDF within a value class. *)
val value_edf : t

(** Cost-based scheduling (Peha-Tobagi): descending expected loss per
    unit work under a memoryless extra wait [X ~ Exp(rate)]. *)
val cbs : rate:float -> t

(** CBS priority of a single query (exposed for tests). *)
val cbs_priority : rate:float -> now:float -> Query.t -> float

(** Position the query would take if inserted into the planned order
    of [buffer]; in [0 .. length buffer]. *)
val insertion_rank : t -> now:float -> Query.t array -> Query.t -> int

(** Same answer as {!insertion_rank} when [buffer] is already in
    planned order (the output of {!planned_queries}), but O(log n) for
    the built-in key-sort planners: the newcomer loses every tie, so
    its rank is the count of entries with key [<=] its own. *)
val insertion_rank_sorted : t -> now:float -> Query.t array -> Query.t -> int
