(** The paper's Fig 2 component: owns the buffer between a dispatcher
    and an executor, answering [queryArrive()] / [getNextQuery()] with
    optional SLA-tree re-ranking, and exposing the tree for external
    what-if questions. Decision traces go to the "slatree.frontend"
    log source at debug level. *)

type t

(** [create planner] uses the planner's order as the baseline;
    [sla_tree] (default true) enables the profit-aware re-ranking of
    Sec 6.1. *)
val create : ?sla_tree:bool -> Planner.t -> t

val buffer_length : t -> int

(** Total arrivals seen. *)
val arrivals : t -> int

(** Total [get_next_query] decisions made on a non-empty buffer. *)
val decisions : t -> int

(** Decisions that deviated from the planned head. *)
val rushes : t -> int

(** Fig 2's queryArrive(). *)
val query_arrive : t -> Query.t -> unit

(** SLA-tree over the current buffer in planned order, anchored at
    [now] (for dispatch/capacity what-ifs). *)
val what_if_tree : t -> now:float -> Sla_tree.t

(** Fig 2's getNextQuery(): remove and return the next query to
    execute, or [None] when the buffer is empty. *)
val get_next_query : t -> now:float -> Query.t option
