(** Schedulers: named [Sim.pick_next] policies.

    Baselines execute the head of their planner's order; SLA-tree
    variants re-rank the whole buffer through the what-if analysis of
    paper Sec 6.1 on every decision. *)

type t

val name : t -> string
val pick : t -> Sim.pick_next

(** Run the head of the planner's order. *)
val of_planner : Planner.t -> t

(** Rush [argmax_i (own_gain_i - postpone(0, i-1, est_size_i))] over
    the planner's order. *)
val with_sla_tree : Planner.t -> t

val fcfs : t
val sjf : t
val edf : t
val value_edf : t
val cbs : rate:float -> t
val fcfs_sla_tree : t
val sjf_sla_tree : t
val edf_sla_tree : t
val value_edf_sla_tree : t
val cbs_sla_tree : rate:float -> t
