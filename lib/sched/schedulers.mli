(** Schedulers: named [Sim.pick_next] policies.

    Baselines execute the head of their planner's order; SLA-tree
    variants re-rank the whole buffer through the what-if analysis of
    paper Sec 6.1 on every decision.

    Stateless policies can be used through {!pick} directly. Stateful
    ones (the incremental SLA-tree variant) must go through
    {!instantiate}, which returns a fresh pick function per run plus
    the server-event hook to pass as [Sim.run]'s [on_server_event]. *)

type hook = sid:int -> now:float -> Sim.server_event -> unit

type t

val name : t -> string

(** Fresh per-run pick function, plus the event hook the run must
    install when present ([None] for stateless schedulers). When [obs]
    is an enabled sink, the pick is wrapped to record per-decision
    latency ([sched.decision_ns] histogram, [sched.decisions] counter)
    and the incremental variant reports its SLA-tree and what-if probe
    counters; over the default {!Obs.noop} the unwrapped pick is
    returned. *)
val instantiate : ?obs:Obs.t -> t -> Sim.pick_next * hook option

(** Convenience for stateless schedulers: [fst (instantiate t)].
    For {!fcfs_sla_tree_incr} this still makes correct decisions —
    without its hook every decision reconstructs the tree, i.e. it
    degrades to the rebuild-per-decision path. *)
val pick : t -> Sim.pick_next

(** Run the head of the planner's order. *)
val of_planner : Planner.t -> t

(** Rush [argmax_i (own_gain_i - postpone(0, i-1, est_size_i))] over
    the planner's order. [?impl] picks the tree representation
    (equivalence suites pit flat against boxed here). *)
val with_sla_tree : ?impl:Sla_tree.impl -> Planner.t -> t

(** [with_sla_tree Planner.fcfs] without the per-decision rebuild: one
    live [Incr_sla_tree] per server follows the buffer across
    decisions ([pop_head] on completion, [append] on dispatch,
    [reset_origin] on idle gaps). Identical picks, amortized cost. *)
val fcfs_sla_tree_incr : t

val fcfs : t
val sjf : t
val edf : t
val value_edf : t
val cbs : rate:float -> t
val fcfs_sla_tree : t
val sjf_sla_tree : t
val edf_sla_tree : t
val value_edf_sla_tree : t
val cbs_sla_tree : rate:float -> t
