(* The paper's Fig 2 interface: a component that sits between an
   existing system's dispatcher and its query executor, owning the
   buffer and answering queryArrive() / getNextQuery(). The SLA-tree
   framework plugs in underneath: every getNextQuery() decision can be
   profit-aware, and the current tree is exposed so dispatchers and
   capacity planners can ask their own what-if questions.

   Decision traces are emitted on the "slatree.frontend" log source at
   debug level. *)

let log_src = Logs.Src.create "slatree.frontend" ~doc:"SLA-tree server frontend"

module Log = (val Logs.src_log log_src)

type t = {
  planner : Planner.t;
  use_sla_tree : bool;
  mutable buffer : Query.t list;  (** arrival order, oldest first *)
  mutable arrivals : int;
  mutable decisions : int;
  mutable rushes : int;  (** decisions that deviated from the planned head *)
}

let create ?(sla_tree = true) planner =
  { planner; use_sla_tree = sla_tree; buffer = []; arrivals = 0; decisions = 0; rushes = 0 }

let buffer_length t = List.length t.buffer
let arrivals t = t.arrivals
let decisions t = t.decisions
let rushes t = t.rushes

(* Fig 2: queryArrive(). *)
let query_arrive t q =
  t.arrivals <- t.arrivals + 1;
  t.buffer <- t.buffer @ [ q ];
  Log.debug (fun m ->
      m "queryArrive q%d (est %.2f ms, buffer %d)" q.Query.id q.Query.est_size
        (List.length t.buffer))

(* The SLA-tree over the current buffer in planned order, anchored at
   [now] — for external what-if questions (dispatching, capacity). *)
let what_if_tree t ~now =
  let planned =
    Planner.planned_queries t.planner ~now (Array.of_list t.buffer)
  in
  Sla_tree.build ~now planned

(* Fig 2: getNextQuery(). Picks per the planner, optionally re-ranked
   by the SLA-tree what-if (Sec 6.1), removes the query from the
   buffer and returns it. *)
let get_next_query t ~now =
  match t.buffer with
  | [] -> None
  | buffer ->
    t.decisions <- t.decisions + 1;
    let arr = Array.of_list buffer in
    let perm = Planner.plan t.planner ~now arr in
    let chosen =
      if not t.use_sla_tree then perm.(0)
      else begin
        let planned = Array.map (fun i -> arr.(i)) perm in
        let tree = Sla_tree.build ~now planned in
        match What_if.best_rush tree with
        | Some (i, gain) when i > 0 ->
          t.rushes <- t.rushes + 1;
          Log.debug (fun m ->
              m "getNextQuery rushes q%d ahead of %d queries (nets $%.3f)"
                planned.(i).Query.id i gain);
          perm.(i)
        | Some _ | None -> perm.(0)
      end
    in
    let q = arr.(chosen) in
    t.buffer <- List.filteri (fun k _ -> k <> chosen) buffer;
    Log.debug (fun m ->
        m "getNextQuery -> q%d (buffer %d left)" q.Query.id (List.length t.buffer));
    Some q
