(** Incremental FCFS+SLA-tree scheduling state (paper Sec 9's future
    work, wired into the simulator's scheduling loop).

    One live {!Incr_sla_tree} per server mirrors [running + buffer] in
    FCFS order: [pop_head ?actual] on completion, [append] on
    enqueue, [reset_origin] when an idle gap ends. At each scheduling
    point the tree already holds the buffer scheduled back-to-back
    from the decision time, so the rush decision runs without a
    per-decision [Sla_tree.build]; a rebuild happens only when the
    cheap update cannot represent the change (a rush out of FCFS
    order, or drop-policy removals).

    Picks are identical to {!Schedulers.with_sla_tree} over
    {!Planner.fcfs} — the equivalence property tests drive both paths
    over randomized workloads and assert pick equality.

    [hook] must be passed as [Sim.run]'s [on_server_event]; [pick] is
    the matching [pick_next]. Driven without the hook, [pick] degrades
    to rebuild-per-decision (every decision finds a stale tree and
    reconstructs it). *)

type t

(** When [obs] is enabled, every live tree reports its rebuild/append/
    pop and what-if probe counts into the sink's registry. *)
val create : ?obs:Obs.t -> unit -> t

(** Feed one simulator event into the per-server state. *)
val hook : t -> sid:int -> now:float -> Sim.server_event -> unit

(** The FCFS+SLA-tree decision over the live tree of the server whose
    completion is being handled. *)
val pick : t -> Sim.pick_next

(** Diagnostics: decisions answered from the live tree vs decisions
    that needed a full reconstruction. *)
val fast_decisions : t -> int

val rebuilt_decisions : t -> int
