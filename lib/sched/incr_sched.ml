(* Incremental FCFS+SLA-tree scheduling state.

   Invariant (per server, between events): the live tree holds the
   running query (head) followed by the buffered queries in FCFS
   order, on the true timeline. The Sim event stream maintains it:

     Started q    idle gap ended: reset_origin to now, append q
                  (after a pick the started query is already the
                  head — nothing to do)
     Enqueued q   append at the schedule tail
     Finished     pop_head ~actual (drift folds into the tree's
                  delay offset); remember the deciding server — the
                  simulator calls pick_next for that server next
     Dropped q    the tree cannot remove interior queries: mark the
                  server dirty, reconstruct lazily at the next pick

   At a pick, the tree therefore equals Sla_tree.build ~now buffer of
   the rebuild-per-decision path, and What_if.best_rush_incr makes the
   identical decision. A rush (pick <> 0) reorders the buffer out of
   FCFS, so the tree is reconstructed in post-rush order — exactly the
   cost the static path pays on *every* decision. *)

type sstate = {
  mutable tree : Incr_sla_tree.t;
  mutable dirty : bool;
}

type t = {
  mutable servers : sstate array;
  mutable deciding : int;  (* sid whose completion is being handled *)
  mutable fast : int;
  mutable rebuilt : int;
  obs : Obs.t;
}

let create ?(obs = Obs.noop) () =
  { servers = [||]; deciding = 0; fast = 0; rebuilt = 0; obs }

let fast_decisions t = t.fast
let rebuilt_decisions t = t.rebuilt

let state t sid ~now =
  let n = Array.length t.servers in
  if sid >= n then begin
    let grown =
      Array.init (sid + 1) (fun i ->
          if i < n then t.servers.(i)
          else
            { tree = Incr_sla_tree.create ~obs:t.obs ~now [||]; dirty = false })
    in
    t.servers <- grown
  end;
  t.servers.(sid)

let head_is st q =
  match Incr_sla_tree.peek st.tree with
  | Some h -> h.Query.id = q.Query.id
  | None -> false

let hook t ~sid ~now ev =
  let st = state t sid ~now in
  match ev with
  | Sim.Started q ->
    if st.dirty then begin
      st.tree <- Incr_sla_tree.create ~obs:t.obs ~now [| q |];
      st.dirty <- false
    end
    else if Incr_sla_tree.length st.tree = 0 then begin
      Incr_sla_tree.reset_origin st.tree ~now;
      Incr_sla_tree.append st.tree q
    end
    else if not (head_is st q) then begin
      (* Defensive: events were not delivered in full — fall back. *)
      st.tree <- Incr_sla_tree.create ~obs:t.obs ~now [| q |];
      st.dirty <- true
    end
  | Sim.Enqueued q -> if not st.dirty then Incr_sla_tree.append st.tree q
  | Sim.Finished { query; actual } ->
    t.deciding <- sid;
    if (not st.dirty) && head_is st query then
      Incr_sla_tree.pop_head ~actual st.tree
    else st.dirty <- true
  | Sim.Dropped _ -> st.dirty <- true
  (* Pool membership changes. A fresh server's state was just created
     by [state] above; a draining server may have had its whole buffer
     redistributed away without per-query events, so its tree can only
     be trusted again after a rebuild. *)
  | Sim.Scaled_up -> ()
  | Sim.Draining | Sim.Retired -> st.dirty <- true
  (* Fault transitions. A crash voids the buffer wholesale (orphans
     leave without per-query events), so the tree is garbage until
     rebuilt. A speed change or repair invalidates nothing the tree
     tracks — it orders queries by profit over est sizes, which are
     raw (not speed-scaled) — but a [Restored] server coming back from
     [Down] gets a rebuild anyway via the [Crashed] mark. *)
  | Sim.Crashed -> st.dirty <- true
  | Sim.Degraded _ | Sim.Restored -> ()

(* Reconstruct the tree in the order [buffer.(i); buffer \ i]. *)
let rush t st ~now buffer i =
  let n = Array.length buffer in
  let arr = Array.make n buffer.(i) in
  let k = ref 1 in
  Array.iteri
    (fun j q ->
      if j <> i then begin
        arr.(!k) <- q;
        incr k
      end)
    buffer;
  st.tree <- Incr_sla_tree.create ~obs:t.obs ~now arr

let pick t ~now buffer =
  let st = state t t.deciding ~now in
  if st.dirty || Incr_sla_tree.length st.tree <> Array.length buffer then begin
    st.tree <- Incr_sla_tree.create ~obs:t.obs ~now buffer;
    st.dirty <- false;
    t.rebuilt <- t.rebuilt + 1
  end
  else t.fast <- t.fast + 1;
  match What_if.best_rush_incr st.tree with
  | None -> invalid_arg "Incr_sched.pick: empty buffer"
  | Some (i, _gain) ->
    if i <> 0 then rush t st ~now buffer i;
    i
