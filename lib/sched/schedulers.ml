(* Schedulers: concrete [Sim.pick_next] values.

   A baseline scheduler simply runs the head of its planner's order.
   The SLA-tree enhancement (paper Sec 6.1) builds an SLA-tree over the
   planned order and rushes the query with the best net profit gain:
     argmax_i  own_gain(q_i) - postpone(0, i-1, est_size_i).

   Stateless schedulers share one closure; the incremental FCFS
   variant carries per-run state (one live Incr_sla_tree per server)
   and must be wired to [Sim.run]'s [on_server_event] — hence the
   [instantiate] pattern below. *)

type hook = sid:int -> now:float -> Sim.server_event -> unit

type t = { name : string; make : Obs.t -> Sim.pick_next * hook option }

let name t = t.name

(* Decision-latency wrapper. Handles are resolved here, once per
   instantiation; the disabled path returns the raw pick so runs over
   [Obs.noop] pay nothing at all on this layer. *)
let timed obs pick =
  if not (Obs.enabled obs) then pick
  else begin
    let reg = Obs.registry obs in
    let lat = Obs.Registry.histogram reg "sched.decision_ns" in
    let n = Obs.Registry.counter reg "sched.decisions" in
    fun ~now buffer ->
      let t0 = Obs.now_ns () in
      let i = pick ~now buffer in
      Obs.Registry.observe lat (Int64.to_float (Int64.sub (Obs.now_ns ()) t0));
      Obs.Registry.incr n;
      i
  end

let instantiate ?(obs = Obs.noop) t =
  let pick, hook = t.make obs in
  (timed obs pick, hook)

let pick t = fst (t.make Obs.noop)

let stateless name pick = { name; make = (fun _obs -> (pick, None)) }

let of_planner planner =
  stateless (Planner.name planner) (fun ~now buffer ->
      let perm = Planner.plan planner ~now buffer in
      perm.(0))

let with_sla_tree ?impl planner =
  stateless
    (Planner.name planner ^ "+SLA-tree")
    (fun ~now buffer ->
      let perm = Planner.plan planner ~now buffer in
      let planned = Array.map (fun i -> buffer.(i)) perm in
      let tree = Sla_tree.build ?impl ~now planned in
      match What_if.best_rush tree with
      | None -> invalid_arg "Schedulers.with_sla_tree: empty buffer"
      | Some (i, _gain) -> perm.(i))

(* The incremental fast path: FCFS keeps the planned order equal to
   the buffer order, so a per-server Incr_sla_tree tracks the schedule
   across decisions (pop on completion, append on dispatch) and the
   rush decision skips the per-decision rebuild. Picks are identical
   to [with_sla_tree Planner.fcfs]. *)
let fcfs_sla_tree_incr =
  {
    name = "FCFS+SLA-tree(incr)";
    make =
      (fun obs ->
        let st = Incr_sched.create ~obs () in
        (Incr_sched.pick st, Some (Incr_sched.hook st)));
  }

let fcfs = of_planner Planner.fcfs
let sjf = of_planner Planner.sjf
let edf = of_planner Planner.edf
let value_edf = of_planner Planner.value_edf
let cbs ~rate = of_planner (Planner.cbs ~rate)
let fcfs_sla_tree = with_sla_tree Planner.fcfs
let sjf_sla_tree = with_sla_tree Planner.sjf
let edf_sla_tree = with_sla_tree Planner.edf
let value_edf_sla_tree = with_sla_tree Planner.value_edf
let cbs_sla_tree ~rate = with_sla_tree (Planner.cbs ~rate)
