(* Schedulers: concrete [Sim.pick_next] values.

   A baseline scheduler simply runs the head of its planner's order.
   The SLA-tree enhancement (paper Sec 6.1) builds an SLA-tree over the
   planned order and rushes the query with the best net profit gain:
     argmax_i  own_gain(q_i) - postpone(0, i-1, est_size_i). *)

type t = { name : string; pick : Sim.pick_next }

let name t = t.name
let pick t = t.pick

let of_planner planner =
  {
    name = Planner.name planner;
    pick =
      (fun ~now buffer ->
        let perm = Planner.plan planner ~now buffer in
        perm.(0));
  }

let with_sla_tree planner =
  {
    name = Planner.name planner ^ "+SLA-tree";
    pick =
      (fun ~now buffer ->
        let perm = Planner.plan planner ~now buffer in
        let planned = Array.map (fun i -> buffer.(i)) perm in
        let tree = Sla_tree.build ~now planned in
        match What_if.best_rush tree with
        | None -> invalid_arg "Schedulers.with_sla_tree: empty buffer"
        | Some (i, _gain) -> perm.(i));
  }

let fcfs = of_planner Planner.fcfs
let sjf = of_planner Planner.sjf
let edf = of_planner Planner.edf
let value_edf = of_planner Planner.value_edf
let cbs ~rate = of_planner (Planner.cbs ~rate)
let fcfs_sla_tree = with_sla_tree Planner.fcfs
let sjf_sla_tree = with_sla_tree Planner.sjf
let edf_sla_tree = with_sla_tree Planner.edf
let value_edf_sla_tree = with_sla_tree Planner.value_edf
let cbs_sla_tree ~rate = with_sla_tree (Planner.cbs ~rate)
