(** Exact offline scheduling for small instances (paper Sec 8.2):
    Held-Karp subset DP maximizing total stepwise-SLA profit. Used to
    measure the SLA-tree greedy policy's optimality gap. *)

(** Hard instance-size cap (memory is O(2^n)). *)
val max_queries : int

(** [solve ~now queries] returns the optimal total profit and one
    ordering (as indices into [queries]) achieving it. Raises
    [Invalid_argument] beyond {!max_queries}. *)
val solve : now:float -> Query.t array -> float * int array

(** Profit of a specific execution order. *)
val profit_of_order : now:float -> Query.t array -> int array -> float

(** Profit realized by the SLA-tree greedy policy (rush the best
    what-if at every step), assuming perfect size estimates. *)
val greedy_profit : now:float -> Query.t array -> float
