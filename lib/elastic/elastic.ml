(* Elastic server pool: SLA-tree-driven online autoscaling.

   The paper's capacity-planning question — "what would one more
   server earn?" (Secs 6.3, 7.4) — answered *online* and closed into a
   control loop: a controller wakes every [interval] ms, weighs the
   window's evidence against a $/server-interval price, and grows or
   shrinks the simulator's pool (Sim.add_server / Sim.retire_server).

   Two SLA-tree what-if probes feed the decision:

   - scale-up: the fictitious-idle-server margin (g0 - gi), the same
     per-arrival probe Capacity accumulates — summed over a decision
     window it estimates the profit an (n+1)-th server would have
     added during that window;

   - scale-down: the removal probe "what if server s were gone?" —
     every query buffered on s loses the profit of its slot on s and
     earns its best insertion profit on the remaining pool instead.
     The server minimizing that loss is the cheapest to retire.

   Policies are pluggable (the SLA-tree policy above, a queue-length
   threshold baseline, and a static no-op); the controller owns the
   shared machinery: cost accounting (integral of pool size over
   time), hysteresis factors, cooldown, min/max pool bounds, and the
   boot delay on new servers. *)

(* A bootable hardware tier. Billing is per-server: uptime is rounded
   UP to a whole number of [st_quantum]s (clouds bill the started
   hour), at [st_price] $ per quantum — unlike the legacy flat-rate
   pool, which integrates pool-size over time with no rounding. *)
type server_type = {
  st_name : string;
  st_speed : float;  (** execution rate relative to a stock server *)
  st_price : float;  (** $ per started billing quantum *)
  st_quantum : float;  (** billing quantum, ms *)
  st_boot_delay : float;  (** ms before the server accepts work *)
}

let server_type ?(speed = 1.0) ?(boot_delay = 0.0) ~name ~price ~quantum () =
  if name = "" then invalid_arg "Elastic.server_type: name must be non-empty";
  if speed <= 0.0 then invalid_arg "Elastic.server_type: speed must be positive";
  if price < 0.0 then invalid_arg "Elastic.server_type: price must be non-negative";
  if quantum <= 0.0 then
    invalid_arg "Elastic.server_type: quantum must be positive";
  if boot_delay < 0.0 then
    invalid_arg "Elastic.server_type: boot_delay must be non-negative";
  { st_name = name; st_speed = speed; st_price = price; st_quantum = quantum;
    st_boot_delay = boot_delay }

(* A started quantum is a billed quantum; even a server retired within
   its first instant owes one. *)
let quantum_cost ty ~uptime =
  Float.max 1.0 (Float.ceil (uptime /. ty.st_quantum)) *. ty.st_price

type config = {
  interval : float;  (** decision interval, ms *)
  cost_per_interval : float;  (** $ per server per interval *)
  boot_delay : float;  (** ms before a new server accepts work *)
  min_servers : int;
  max_servers : int;
  cooldown : float;  (** ms after any scale action before a scale-down *)
  up_factor : float;  (** scale up when window gain > cost * up_factor *)
  down_factor : float;
      (** consider scale-down when window gain < cost * down_factor *)
  types : server_type array;
      (** bootable tiers; empty = every scale-up boots a stock server
          billed by the legacy flat-rate integral *)
}

let config ?(boot_delay = 0.0) ?(cooldown = 0.0) ?(up_factor = 1.0)
    ?(down_factor = 0.5) ?(types = [||]) ~interval ~cost_per_interval
    ~min_servers ~max_servers () =
  if interval <= 0.0 then invalid_arg "Elastic.config: interval must be positive";
  if cost_per_interval < 0.0 then
    invalid_arg "Elastic.config: cost must be non-negative";
  if boot_delay < 0.0 then
    invalid_arg "Elastic.config: boot_delay must be non-negative";
  if cooldown < 0.0 then invalid_arg "Elastic.config: cooldown must be non-negative";
  if min_servers < 1 then invalid_arg "Elastic.config: min_servers must be >= 1";
  if max_servers < min_servers then
    invalid_arg "Elastic.config: max_servers must be >= min_servers";
  if up_factor <= 0.0 || down_factor < 0.0 || down_factor > up_factor then
    invalid_arg "Elastic.config: need 0 <= down_factor <= up_factor, up_factor > 0";
  {
    interval;
    cost_per_interval;
    boot_delay;
    min_servers;
    max_servers;
    cooldown;
    up_factor;
    down_factor;
    types;
  }

(* What a policy sees at each decision point: one window's worth of
   evidence plus instantaneous pool state. *)
type observation = {
  now : float;
  pool : int;  (** live servers (booting and draining included) *)
  accepting : int;  (** servers currently accepting dispatches *)
  queue_len : int;  (** buffered queries across the pool *)
  backlog : float;  (** sum of estimated work left, ms *)
  arrivals : int;  (** dispatches since the last decision *)
  margin_per_query : float;
      (** mean (g0 - gi) over the window; 0 when no arrival reported *)
  removal_cost : float;
      (** cheapest-server removal probe; [infinity] when shrinking is
          not an option (pool at minimum, or probes unavailable) *)
  cfg : config;
}

type action = Scale_up of int | Scale_down of int | Hold

type policy = { name : string; decide : observation -> action }

let policy_name p = p.name

(* ------------------------------------------------------------------ *)
(* The removal probe. *)

(* Cost of retiring server [sid] right now: each query buffered on it
   would lose its current slot (its estimated profit in the server's
   FCFS schedule) and earn its best O(1) insertion profit on the rest
   of the pool instead. Queries that migrate at a profit contribute
   zero, not a negative cost: the probe asks what removal destroys,
   and independent per-query relocation estimates already err on the
   optimistic side (each ignores the others landing on the same
   target). The running query finishes on [sid] either way. *)
let removal_cost sim ~sid =
  let srv = Sim.server sim sid in
  let buffer = Sim.buffer_array srv in
  if Array.length buffer = 0 then 0.0
  else begin
    let m = Sim.n_servers sim in
    let slot_end = ref (Sim.est_free_at sim srv) in
    let cost = ref 0.0 in
    Array.iter
      (fun q ->
        slot_end := !slot_end +. (q.Query.est_size /. srv.Sim.speed);
        let here = Query.profit_at q ~completion:!slot_end in
        let best = ref neg_infinity in
        for j = 0 to m - 1 do
          if j <> sid && Sim.dispatchable sim j then begin
            let p = Dispatchers.insertion_profit_fcfs sim j q in
            if p > !best then best := p
          end
        done;
        if !best > neg_infinity then
          cost := !cost +. Float.max 0.0 (here -. !best))
      buffer;
    !cost
  end

(* The server cheapest to remove, among those accepting work (a drain
   must leave at least one accepting server, so [None] unless two or
   more accept). *)
let cheapest_removal sim =
  let m = Sim.n_servers sim in
  let accepting = ref 0 in
  for sid = 0 to m - 1 do
    if Sim.dispatchable sim sid then incr accepting
  done;
  if !accepting < 2 then None
  else begin
    let best = ref None in
    for sid = 0 to m - 1 do
      if Sim.dispatchable sim sid then begin
        let c = removal_cost sim ~sid in
        match !best with
        | Some (_, bc) when bc <= c -> ()
        | _ -> best := Some (sid, c)
      end
    done;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Policies. *)

(* The SLA-tree policy. Scale up when the window's accumulated idle-
   server margin — what an extra server would have earned — beats its
   price; scale down when the margin is far below the price AND the
   removal probe says the cheapest server's buffer migrates for less
   than one interval's rent. *)
let sla_tree_policy =
  {
    name = "SLA-tree";
    decide =
      (fun o ->
        let cfg = o.cfg in
        let gain = o.margin_per_query *. Float.of_int o.arrivals in
        let rent = cfg.cost_per_interval *. cfg.up_factor in
        if gain > rent then
          (* Evidence several rents deep means the pool lags a steep
             ramp; adding servers two at a time halves the chase.
             (Each margin sample priced one extra server, so k is
             capped well below gain / rent.) *)
          Scale_up (if gain > 4.0 *. rent then 2 else 1)
        else if
          gain < cfg.cost_per_interval *. cfg.down_factor
          && o.removal_cost < cfg.cost_per_interval
        then Scale_down 1
        else Hold);
  }

(* Predictive policy: the reactive SLA-tree rule, plus a forecast
   branch that prices the window a booting server would actually
   serve. An online forecaster is fed one sample per tick: the
   window's margin-priced gain (mean idle-server margin g0 - gi times
   the window's arrivals — exactly the evidence the reactive rule
   thresholds). Forecasting that series rather than raw arrivals is
   deliberate: the margin probe reads ~0 at a trough even when a peak
   is one boot-delay away, so predicted arrivals priced at the
   *current* margin can never fire before the reactive rule does.
   The gain series itself carries the cycle (the Holt–Winters
   seasonal slot remembers what this window earned last cycle), so
   its forecast clears the rent while the margin evidence is still
   flat — and the scale-up lands before the demand does.

   The forecast is read at [h = ceil(boot_delay / interval)] ticks
   ahead and at [h + 1] (a server requested now serves both windows),
   taking the max: predicted demand anywhere in the reachable span
   justifies booting now.

   State lives in the closure: the forecaster, plus a pending-boot
   list guarding the forecast branch against double-booting — a
   predicted peak must not be paid for again while the servers bought
   for it are still booting (the controller's cooldown gates
   scale-downs only, so nothing else would stop the repeat). The
   reactive branch is untouched: present evidence always justifies
   present capacity. Policies hold run-local state, so build a fresh
   one per run. *)
let predictive ?(obs = Obs.noop) ?forecast ?horizon () =
  let f =
    match forecast with
    | Some f -> f
    | None -> Forecast.holt_winters ~season:24 ()
  in
  let pending = ref [] in
  let gauges =
    if not (Obs.enabled obs) then None
    else
      let reg = Obs.registry obs in
      Some
        ( Obs.Registry.gauge reg "elastic.forecast.predicted_gain",
          Obs.Registry.gauge reg "elastic.forecast.window_gain" )
  in
  {
    name = "predictive/" ^ Forecast.name f;
    decide =
      (fun o ->
        let cfg = o.cfg in
        let gain = o.margin_per_query *. Float.of_int o.arrivals in
        Forecast.observe f gain;
        let h =
          match horizon with
          | Some h -> max 1 h
          | None ->
            max 1 (int_of_float (Float.ceil (cfg.boot_delay /. cfg.interval)))
        in
        (* Before the model has seen a full cycle its forecast is a
           smoothed level: it can only exceed the rent when current
           evidence dips below it, which is exactly when booting is
           wrong. No forecast until the shape is learned. *)
        (* Min over the two reachable windows: a real cycle edge
           clears the bar in adjacent windows too, while uncorrelated
           seasonal noise rarely does twice in a row. *)
        let gain_pred =
          if not (Forecast.ready f) then 0.0
          else
            Float.max 0.0
              (Float.min
                 (Forecast.predict f ~horizon:h)
                 (Forecast.predict f ~horizon:(h + 1)))
        in
        let rent = cfg.cost_per_interval *. cfg.up_factor in
        pending := List.filter (fun ready -> ready > o.now) !pending;
        (match gauges with
        | Some (g_pred, g_gain) ->
          Obs.Registry.set g_pred gain_pred;
          Obs.Registry.set g_gain gain;
          Obs.instant obs ~cat:"elastic"
            ~args:
              [
                ("sim_t", Obs.Trace.F o.now);
                ("horizon", Obs.Trace.I h);
                ("predicted_gain", Obs.Trace.F gain_pred);
                ("window_gain", Obs.Trace.F gain);
                ("rent", Obs.Trace.F rent);
                ("pending_boots", Obs.Trace.I (List.length !pending));
              ]
            "elastic.forecast"
        | None -> ());
        (* The forecast branch clears a higher bar than the reactive
           one: on a structureless signal the learned "seasonality" is
           noise around the level, and a bare rent threshold would buy
           capacity on every positive wiggle. A real cycle edge
           forecasts several rents deep, so the 1.5x bar costs it at
           most one tick. *)
        let bar = 1.5 *. rent in
        if gain > rent then begin
          let k = if gain > 4.0 *. rent then 2 else 1 in
          for _ = 1 to k do
            pending := (o.now +. cfg.boot_delay) :: !pending
          done;
          Scale_up k
        end
        else if !pending = [] && gain_pred > bar then begin
          let k = if gain_pred > 4.0 *. rent then 2 else 1 in
          for _ = 1 to k do
            pending := (o.now +. cfg.boot_delay) :: !pending
          done;
          Scale_up k
        end
        else if
          gain < cfg.cost_per_interval *. cfg.down_factor
          (* hold capacity only when a rent-clearing peak is within
             reach of the forecast, not on any mid-range prediction *)
          && gain_pred <= bar
          && o.removal_cost < cfg.cost_per_interval
        then Scale_down 1
        else Hold);
  }

(* Track an externally computed pool schedule (the offline oracle):
   each tick moves the pool toward the target for [now]. [pool]
   already counts booting servers, so the tracking converges without
   double-booting. *)
let scheduled ?(name = "oracle") ~target () =
  {
    name;
    decide =
      (fun o ->
        let tgt =
          max o.cfg.min_servers (min o.cfg.max_servers (target ~now:o.now))
        in
        if tgt > o.pool then Scale_up (tgt - o.pool)
        else if tgt < o.pool then Scale_down (o.pool - tgt)
        else Hold);
  }

(* Profit-blind baseline: react to the average queue length per
   accepting server. *)
let queue_threshold ?(up = 3.0) ?(down = 0.5) () =
  if down >= up then invalid_arg "Elastic.queue_threshold: need down < up";
  {
    name = "queue-threshold";
    decide =
      (fun o ->
        let per =
          Float.of_int o.queue_len /. Float.of_int (max 1 o.accepting)
        in
        if per > up then Scale_up 1
        else if per < down && o.removal_cost < infinity then Scale_down 1
        else Hold);
  }

let static = { name = "static"; decide = (fun _ -> Hold) }

(* ------------------------------------------------------------------ *)
(* Controller. *)

type summary = {
  server_time : float;
      (** integral of flat-rate pool size over the run, ms*servers
          (typed servers are excluded — they bill per quantum) *)
  cost : float;
      (** total rent: flat-rate integral cost plus quantum-billed typed
          server cost *)
  typed_cost : float;  (** the quantum-billed share of [cost] *)
  boots_by_type : (string * int) list;
      (** scale-up boots per configured type, in [config.types] order *)
  scale_ups : int;
  scale_downs : int;
  peak_pool : int;
  min_pool : int;
  decisions : int;
  events : (float * action) list;  (** chronological scale actions *)
}

(* Pre-resolved observability handles (see Obs's cost discipline). *)
type ostats = {
  o_ups : Obs.Registry.counter;
  o_downs : Obs.Registry.counter;
  o_decisions : Obs.Registry.counter;
  o_holds : Obs.Registry.counter;
}

type t = {
  cfg : config;
  policy : policy;
  obs : Obs.t;
  ostats : ostats option;
  mutable pool : int;
  mutable acct_t : float;  (* last cost-accounting instant *)
  mutable acc : float;  (* integral of pool over time *)
  mutable last_action : float;
  (* evidence window, reset at each decision *)
  mutable win_margin_sum : float;
  mutable win_margin_n : int;
  mutable win_arrivals : int;
  (* lifetime counters *)
  mutable ups : int;
  mutable downs : int;
  mutable peak : int;
  mutable low : int;
  mutable decisions : int;
  mutable events_rev : (float * action) list;
  (* typed (quantum-billed) servers: sid -> (type, boot instant), kept
     sorted by sid so cost sums fold in a deterministic order *)
  mutable typed : (int * (server_type * float)) list;
  mutable typed_cost : float;  (* quanta already billed (retired servers) *)
  boot_counts : int array;  (* boots per cfg.types index *)
}

let create ?(obs = Obs.noop) cfg policy ~initial_servers =
  if initial_servers < 1 then
    invalid_arg "Elastic.create: initial_servers must be >= 1";
  let ostats =
    if not (Obs.enabled obs) then None
    else begin
      let reg = Obs.registry obs in
      Some
        {
          o_ups = Obs.Registry.counter reg "elastic.scale_ups";
          o_downs = Obs.Registry.counter reg "elastic.scale_downs";
          o_decisions = Obs.Registry.counter reg "elastic.decisions";
          o_holds = Obs.Registry.counter reg "elastic.holds";
        }
    end
  in
  {
    cfg;
    policy;
    obs;
    ostats;
    pool = initial_servers;
    acct_t = 0.0;
    acc = 0.0;
    last_action = neg_infinity;
    win_margin_sum = 0.0;
    win_margin_n = 0;
    win_arrivals = 0;
    ups = 0;
    downs = 0;
    peak = initial_servers;
    low = initial_servers;
    decisions = 0;
    events_rev = [];
    typed = [];
    typed_cost = 0.0;
    boot_counts = Array.make (Array.length cfg.types) 0;
  }

(* The flat-rate integral covers only servers without an explicit
   type; typed servers are billed per started quantum instead (and so
   never enter [acc] — with [cfg.types] empty this is exactly the
   historical pool integral, bit for bit). *)
let account c ~now =
  if now > c.acct_t then begin
    let flat = c.pool - List.length c.typed in
    c.acc <- c.acc +. ((now -. c.acct_t) *. Float.of_int flat);
    c.acct_t <- now
  end

(* Wire as [Sim.run]'s [on_dispatch]: accumulates the window's
   idle-server margin evidence. *)
let on_dispatch c ~now q d =
  c.win_arrivals <- c.win_arrivals + 1;
  match Capacity.margin ~now q d with
  | Some m ->
    c.win_margin_sum <- c.win_margin_sum +. m;
    c.win_margin_n <- c.win_margin_n + 1
  | None -> ()

(* Wire as (part of) [Sim.run]'s [on_server_event]: tracks pool
   membership for the cost integral. Scale-ups are charged from the
   moment the server is requested (boot time is paid for), drains
   until the server actually leaves. *)
let on_server_event c ~sid ~now ev =
  match ev with
  | Sim.Scaled_up ->
    account c ~now;
    c.pool <- c.pool + 1;
    if c.pool > c.peak then c.peak <- c.pool
  | Sim.Retired ->
    (match List.assoc_opt sid c.typed with
    | Some (ty, since) ->
      (* bill before shrinking the pool: the typed server is excluded
         from the flat integral either way *)
      account c ~now;
      c.typed_cost <- c.typed_cost +. quantum_cost ty ~uptime:(now -. since);
      c.typed <- List.remove_assoc sid c.typed
    | None -> account c ~now);
    c.pool <- c.pool - 1;
    if c.pool < c.low then c.low <- c.pool
  | Sim.Started _ | Sim.Enqueued _ | Sim.Finished _ | Sim.Dropped _
  | Sim.Draining ->
    ()
  (* A crashed ([Down]) server still occupies a machine — the provider
     keeps paying for it until it is repaired or retired — so fault
     transitions do not move the cost integral. *)
  | Sim.Crashed | Sim.Degraded _ | Sim.Restored -> ()

let observe c sim =
  let now = Sim.now sim in
  let m = Sim.n_servers sim in
  let queue = ref 0 and backlog = ref 0.0 and accepting = ref 0 in
  for sid = 0 to m - 1 do
    let s = Sim.server sim sid in
    if Sim.server_state sim sid <> Sim.Retired then begin
      queue := !queue + Sim.buffer_length s;
      backlog := !backlog +. Sim.est_work_left sim s
    end;
    if Sim.dispatchable sim sid then incr accepting
  done;
  let margin =
    if c.win_margin_n = 0 then 0.0
    else c.win_margin_sum /. Float.of_int c.win_margin_n
  in
  let removal =
    if c.pool <= c.cfg.min_servers then infinity
    else match cheapest_removal sim with Some (_, cost) -> cost | None -> infinity
  in
  {
    now;
    pool = c.pool;
    accepting = !accepting;
    queue_len = !queue;
    backlog = !backlog;
    arrivals = c.win_arrivals;
    margin_per_query = margin;
    removal_cost = removal;
    cfg = c.cfg;
  }

(* One instant trace event per applied scale action, carrying the
   probe evidence the decision rested on: the window's idle-server
   margin (g0 - gi) and the cheapest-removal what-if. Only called when
   the sink is enabled. *)
let decision_event c o ~name ~k ~pool_after =
  Obs.instant c.obs ~cat:"elastic"
    ~args:
      [
        ("k", Obs.Trace.I k);
        ("sim_t", Obs.Trace.F o.now);
        ("pool", Obs.Trace.I pool_after);
        ("arrivals", Obs.Trace.I o.arrivals);
        ("margin_per_query", Obs.Trace.F o.margin_per_query);
        ( "window_gain",
          Obs.Trace.F (o.margin_per_query *. Float.of_int o.arrivals) );
        ("removal_cost", Obs.Trace.F o.removal_cost);
        ("rent", Obs.Trace.F c.cfg.cost_per_interval);
      ]
    name

(* Which tier should the next boot be? Score each type's expected net
   over one interval: the window's idle-server margin evidence scaled
   by the type's speed (a 2x server captures roughly twice what the
   stock-speed probe priced), discounted by the fraction of the
   interval lost to booting, minus the type's steady-state rent for
   one interval. Deterministic argmax, first-listed type on ties. *)
let choose_type cfg o =
  let gain = o.margin_per_query *. Float.of_int o.arrivals in
  let best = ref 0 and best_score = ref neg_infinity in
  Array.iteri
    (fun i ty ->
      let ready = Float.max 0.0 (1.0 -. (ty.st_boot_delay /. cfg.interval)) in
      let rent = ty.st_price *. cfg.interval /. ty.st_quantum in
      let score = (gain *. ty.st_speed *. ready) -. rent in
      if score > !best_score then begin
        best := i;
        best_score := score
      end)
    cfg.types;
  !best

(* One decision: build the observation, ask the policy, clamp to the
   configured bounds and cooldown, apply through the Sim pool API.
   Wire as [Sim.run]'s ticker body. *)
let tick c sim =
  let now = Sim.now sim in
  account c ~now;
  c.decisions <- c.decisions + 1;
  let cfg = c.cfg in
  let obs = observe c sim in
  (* The cooldown throttles shrinking only: a scale-up must stay
     reactive (a diurnal ramp adds a server's worth of demand every
     couple of intervals), while a scale-down right after any action
     is the flapping the cooldown exists to damp. *)
  let proposed =
    match c.policy.decide obs with
    | Scale_down _ when now -. c.last_action < cfg.cooldown -> Hold
    | a -> a
  in
  let action =
    match proposed with
    | Hold -> Hold
    | Scale_up k ->
      let k = min k (cfg.max_servers - c.pool) in
      if k > 0 then Scale_up k else Hold
    | Scale_down k ->
      let k = min k (c.pool - cfg.min_servers) in
      (* never drain the last accepting server *)
      let k = min k (obs.accepting - 1) in
      if k > 0 then Scale_down k else Hold
  in
  (match c.ostats with
  | Some s -> Obs.Registry.incr s.o_decisions
  | None -> ());
  (match action with
  | Hold -> (
    match c.ostats with
    | Some s -> Obs.Registry.incr s.o_holds
    | None -> ())
  | Scale_up k ->
    let boot () =
      if Array.length cfg.types = 0 then
        ignore (Sim.add_server ~boot_delay:cfg.boot_delay sim)
      else begin
        let ti = choose_type cfg obs in
        let ty = cfg.types.(ti) in
        let sid =
          Sim.add_server ~speed:ty.st_speed ~boot_delay:ty.st_boot_delay sim
        in
        c.typed <-
          List.merge
            (fun (a, _) (b, _) -> Int.compare a b)
            c.typed
            [ (sid, (ty, now)) ];
        c.boot_counts.(ti) <- c.boot_counts.(ti) + 1
      end
    in
    for _ = 1 to k do boot () done;
    c.ups <- c.ups + k;
    c.last_action <- now;
    c.events_rev <- (now, action) :: c.events_rev;
    (match c.ostats with
    | Some s ->
      Obs.Registry.add s.o_ups k;
      decision_event c obs ~name:"elastic.scale_up" ~k ~pool_after:c.pool
    | None -> ())
  | Scale_down k ->
    let retired = ref 0 in
    for _ = 1 to k do
      match cheapest_removal sim with
      | Some (sid, _) ->
        Sim.retire_server sim sid;
        incr retired
      | None -> ()
    done;
    if !retired > 0 then begin
      c.downs <- c.downs + !retired;
      c.last_action <- now;
      c.events_rev <- (now, Scale_down !retired) :: c.events_rev;
      match c.ostats with
      | Some s ->
        Obs.Registry.add s.o_downs !retired;
        decision_event c obs ~name:"elastic.scale_down" ~k:!retired
          ~pool_after:c.pool
      | None -> ()
    end);
  (* fresh evidence window *)
  c.win_margin_sum <- 0.0;
  c.win_margin_n <- 0;
  c.win_arrivals <- 0

(* Close the cost integral at the simulation's last event and bill
   every still-running typed server up to it. *)
let finalize c ~now =
  account c ~now;
  List.iter
    (fun (_, (ty, since)) ->
      c.typed_cost <- c.typed_cost +. quantum_cost ty ~uptime:(now -. since))
    c.typed;
  c.typed <- []

let summary c =
  {
    server_time = c.acc;
    cost = (c.acc /. c.cfg.interval *. c.cfg.cost_per_interval) +. c.typed_cost;
    typed_cost = c.typed_cost;
    boots_by_type =
      Array.to_list
        (Array.mapi (fun i ty -> (ty.st_name, c.boot_counts.(i))) c.cfg.types);
    scale_ups = c.ups;
    scale_downs = c.downs;
    peak_pool = c.peak;
    min_pool = c.low;
    decisions = c.decisions;
    events = List.rev c.events_rev;
  }

(* ------------------------------------------------------------------ *)
(* One-call harness: incremental FCFS SLA-tree scheduling and
   dispatching (the O(1) fast path, whose [est_delta] feeds the margin
   probe), the controller on the ticker, the drop policy of footnote 2
   unless overridden. *)

let timeseries_columns =
  [|
    "pool"; "accepting"; "queue_len"; "backlog"; "booting"; "draining";
    "cum_profit";
  |]

let timeseries () = Obs.Timeseries.create ~columns:timeseries_columns

(* One timeseries row per controller tick, sampled before the decision
   so the row reflects the state the policy saw. *)
let sample_timeseries c ts metrics sim =
  let m = Sim.n_servers sim in
  let queue = ref 0
  and backlog = ref 0.0
  and accepting = ref 0
  and booting = ref 0
  and draining = ref 0 in
  for sid = 0 to m - 1 do
    let s = Sim.server sim sid in
    (match Sim.server_state sim sid with
    | Sim.Retired -> ()
    | st ->
      queue := !queue + Sim.buffer_length s;
      backlog := !backlog +. Sim.est_work_left sim s;
      (match st with
      | Sim.Booting _ -> incr booting
      | Sim.Draining -> incr draining
      (* [Down] servers hold no work (crash cleared the buffer); their
         zero contribution falls out of the sums above. *)
      | Sim.Active | Sim.Down | Sim.Retired -> ()));
    if Sim.dispatchable sim sid then incr accepting
  done;
  Obs.Timeseries.sample ts ~now:(Sim.now sim)
    [|
      Float.of_int c.pool;
      Float.of_int !accepting;
      Float.of_int !queue;
      !backlog;
      Float.of_int !booting;
      Float.of_int !draining;
      Metrics.total_profit metrics;
    |]

let run ?(obs = Obs.noop) ?timeseries ?(policy = sla_tree_policy) ?drop_policy
    ?timers ?on_server_event:(extra_hook = fun ~sid:_ ~now:_ _ -> ())
    ~config:cfg ~queries ~n_servers ~warmup_id () =
  let c = create ~obs cfg policy ~initial_servers:n_servers in
  let metrics = Metrics.create ~warmup_id () in
  let pick_next, hook =
    Schedulers.instantiate ~obs Schedulers.fcfs_sla_tree_incr
  in
  let dispatch =
    Dispatchers.instantiate ~obs (Dispatchers.fcfs_sla_tree_incr ())
  in
  let last_event = ref 0.0 in
  let on_server_event ~sid ~now ev =
    if now > !last_event then last_event := now;
    on_server_event c ~sid ~now ev;
    extra_hook ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  let ticker_body =
    match timeseries with
    | None -> tick c
    | Some ts ->
      fun sim ->
        sample_timeseries c ts metrics sim;
        tick c sim
  in
  Sim.run ~obs ?drop_policy ?timers
    ~on_dispatch:(fun ~now q d -> on_dispatch c ~now q d)
    ~on_server_event
    ~ticker:(cfg.interval, ticker_body)
    ~queries ~n_servers ~pick_next ~dispatch ~metrics ();
  finalize c ~now:!last_event;
  (metrics, summary c)

let pp_action ppf = function
  | Scale_up k -> Fmt.pf ppf "+%d" k
  | Scale_down k -> Fmt.pf ppf "-%d" k
  | Hold -> Fmt.pf ppf "hold"

let pp_summary ppf s =
  Fmt.pf ppf
    "server_time=%.0f cost=%.2f ups=%d downs=%d pool=[%d..%d] decisions=%d"
    s.server_time s.cost s.scale_ups s.scale_downs s.min_pool s.peak_pool
    s.decisions;
  if s.boots_by_type <> [] then begin
    Fmt.pf ppf " boots=[";
    List.iteri
      (fun i (n, k) -> Fmt.pf ppf "%s%s:%d" (if i > 0 then " " else "") n k)
      s.boots_by_type;
    Fmt.pf ppf "] typed_cost=%.2f" s.typed_cost
  end
