(** Elastic server pool: SLA-tree-driven online autoscaling.

    A controller wakes every [interval] ms of simulated time, weighs
    the decision window's evidence against a $/server-interval price,
    and grows or shrinks the simulator's pool through
    {!Sim.add_server} / {!Sim.retire_server} (drain protocol).

    Two SLA-tree what-if probes feed the decisions: the fictitious
    idle-server margin [g0 - gi] (the {!Capacity.margin} probe,
    accumulated per window) answers "what would one more server have
    earned?", and the removal probe {!removal_cost} answers "what does
    retiring server s destroy?". Policies are pluggable; the
    controller owns cost accounting, hysteresis, cooldown, pool bounds
    and boot delay. *)

(** A bootable hardware tier. Typed servers bill {e per server}:
    uptime rounds UP to whole [st_quantum]s (clouds bill the started
    hour) at [st_price] per quantum — unlike the legacy flat-rate
    pool, whose cost is the un-rounded pool-size integral. *)
type server_type = {
  st_name : string;
  st_speed : float;  (** execution rate relative to a stock server *)
  st_price : float;  (** $ per started billing quantum *)
  st_quantum : float;  (** billing quantum, ms *)
  st_boot_delay : float;  (** ms before the server accepts work *)
}

(** Validating constructor. Defaults: [speed = 1.0], [boot_delay = 0]. *)
val server_type :
  ?speed:float ->
  ?boot_delay:float ->
  name:string ->
  price:float ->
  quantum:float ->
  unit ->
  server_type

(** [quantum_cost ty ~uptime] — the round-up bill: at least one
    quantum, then one per started [st_quantum] of uptime. *)
val quantum_cost : server_type -> uptime:float -> float

type config = {
  interval : float;  (** decision interval, ms *)
  cost_per_interval : float;  (** $ per server per interval *)
  boot_delay : float;  (** ms before a new server accepts work *)
  min_servers : int;
  max_servers : int;
  cooldown : float;
      (** minimum ms after any scale action before a scale-down is
          allowed; scale-ups are never throttled (demand ramps must be
          chased, flapping only ever shrinks too early) *)
  up_factor : float;  (** scale up when window gain > cost * up_factor *)
  down_factor : float;
      (** consider scale-down when window gain < cost * down_factor *)
  types : server_type array;
      (** bootable tiers the controller may choose among at each
          scale-up (picked by expected net: margin evidence scaled by
          the tier's speed and boot-readiness, minus its rent); empty
          = every boot is a stock server on the flat-rate integral,
          bit-identical to the pre-typed controller *)
}

(** Validating constructor. Defaults: no boot delay, no cooldown,
    [up_factor = 1.0], [down_factor = 0.5], no server types. *)
val config :
  ?boot_delay:float ->
  ?cooldown:float ->
  ?up_factor:float ->
  ?down_factor:float ->
  ?types:server_type array ->
  interval:float ->
  cost_per_interval:float ->
  min_servers:int ->
  max_servers:int ->
  unit ->
  config

(** One decision window's evidence plus instantaneous pool state. *)
type observation = {
  now : float;
  pool : int;  (** live servers (booting and draining included) *)
  accepting : int;  (** servers currently accepting dispatches *)
  queue_len : int;
  backlog : float;  (** summed estimated work left, ms *)
  arrivals : int;  (** dispatches since the last decision *)
  margin_per_query : float;  (** mean (g0 - gi) over the window *)
  removal_cost : float;
      (** cheapest-server removal probe; [infinity] when shrinking is
          not currently an option *)
  cfg : config;
}

type action = Scale_up of int | Scale_down of int | Hold

type policy = { name : string; decide : observation -> action }

val policy_name : policy -> string

(** The SLA-tree policy: scale up when the window's accumulated
    idle-server margin beats one interval's rent; scale down when the
    margin is far below the rent and the cheapest server's buffer
    migrates for less than one interval's rent. *)
val sla_tree_policy : policy

(** The predictive policy: the reactive rule of {!sla_tree_policy},
    plus a forecast branch that scales {e ahead} of predicted demand.
    [forecast] (default [Forecast.holt_winters ~season:24 ()]) is fed
    one sample per tick: the window's margin-priced gain (the same
    SLA-tree probe evidence the reactive rule thresholds). When the
    forecast of that series at [t + boot_delay] clears the rent, the
    policy boots now, so the server is online when the predicted
    demand lands. [horizon] overrides the forecast distance (default
    [ceil(boot_delay / interval)] ticks, min 1; the forecast is also
    read one tick further and the max taken — a server requested now
    serves both windows). A pending-boot guard keeps the forecast
    branch from re-buying the same predicted peak while its servers
    are still booting (the cooldown would not stop it: cooldown gates
    scale-downs only). Scale-down additionally requires the
    {e predicted} gain below the threshold, so capacity is held
    through a forecast trough-to-peak edge.

    When [obs] is enabled the policy sets the
    [elastic.forecast.predicted_gain] / [elastic.forecast.window_gain]
    gauges and emits one [elastic.forecast] instant per tick (category
    ["elastic"]) carrying the prediction every scale decision rested
    on.

    The policy holds run-local state (the forecaster and the pending
    guard): build a fresh one per run. *)
val predictive :
  ?obs:Obs.t -> ?forecast:Forecast.t -> ?horizon:int -> unit -> policy

(** [scheduled ~target ()] tracks an externally computed pool
    schedule: each tick moves the pool toward [target ~now] (clamped
    to the config bounds). Used with [Forecast.Oracle] schedules as
    the offline-optimal upper bound. Default [name] is ["oracle"]. *)
val scheduled : ?name:string -> target:(now:float -> int) -> unit -> policy

(** Profit-blind baseline on the average queue length per accepting
    server. Defaults: [up = 3.0], [down = 0.5]. *)
val queue_threshold : ?up:float -> ?down:float -> unit -> policy

(** Never scales (fixed pool under the same cost model). *)
val static : policy

(** "What if server [sid] were removed?": summed profit its buffered
    queries lose by migrating from their current slots to their best
    insertion on the remaining pool (clamped at zero per query — the
    probe measures destruction, and per-query relocations are already
    optimistic). 0 for an empty buffer. *)
val removal_cost : Sim.t -> sid:int -> float

(** Cheapest server to retire among those accepting work; [None]
    unless at least two accept (a drain must leave one). *)
val cheapest_removal : Sim.t -> (int * float) option

type summary = {
  server_time : float;
      (** integral of flat-rate pool size over time, ms*servers (typed
          servers bill per quantum and never enter this integral) *)
  cost : float;
      (** total rent: [server_time / interval * cost_per_interval]
          plus [typed_cost] *)
  typed_cost : float;  (** the quantum-billed share of [cost] *)
  boots_by_type : (string * int) list;
      (** boots per configured type, in [config.types] order *)
  scale_ups : int;
  scale_downs : int;
  peak_pool : int;
  min_pool : int;
  decisions : int;
  events : (float * action) list;  (** chronological scale actions *)
}

(** Controller state; wire {!on_dispatch}, {!on_server_event} and
    {!tick} into [Sim.run] (or use {!run}). *)
type t

(** When [obs] is an enabled sink, the controller counts its decisions
    ([elastic.decisions] / [elastic.holds] / [elastic.scale_ups] /
    [elastic.scale_downs]) and emits one instant trace event per
    applied scale action ([elastic.scale_up] / [elastic.scale_down],
    category ["elastic"]) whose args carry the probe evidence the
    decision rested on: window margin per query and gain, arrival
    count, removal-probe cost, the rent, and the pool size. *)
val create : ?obs:Obs.t -> config -> policy -> initial_servers:int -> t

(** Accumulates the window's idle-server margin evidence — wire as
    [Sim.run]'s [on_dispatch]. *)
val on_dispatch : t -> now:float -> Query.t -> Sim.decision -> unit

(** Tracks pool membership for the cost integral (boot and drain time
    are paid for) — compose into [Sim.run]'s [on_server_event]. *)
val on_server_event : t -> sid:int -> now:float -> Sim.server_event -> unit

(** One decision — wire as [Sim.run]'s ticker body. *)
val tick : t -> Sim.t -> unit

(** Close the cost integral at the run's last event time. *)
val finalize : t -> now:float -> unit

val summary : t -> summary

(** Column names of the controller's per-tick time series. *)
val timeseries_columns : string array

(** A fresh sampler over {!timeseries_columns}. *)
val timeseries : unit -> Obs.Timeseries.t

(** One-call harness: incremental FCFS SLA-tree scheduling and
    dispatching, the controller on the ticker. [n_servers] is the
    initial pool. Returns the run metrics and the controller summary
    (net value = [Metrics.total_profit] − [summary.cost]).

    [obs] (default {!Obs.noop}) threads one sink through the whole
    run: the simulator core, the scheduler/dispatcher decision timers
    and the controller (see {!create}). [timeseries] — a sampler from
    {!timeseries} — receives one row per controller tick (pool,
    accepting, queue length, backlog, booting/draining counts,
    cumulative profit), sampled before the decision.

    [timers] and [on_server_event] pass through to {!Sim.run} (the
    latter runs {e in addition to} the controller's own accounting
    hook, before the scheduler hook) — fault injectors wire in here
    without the controller depending on them. *)
val run :
  ?obs:Obs.t ->
  ?timeseries:Obs.Timeseries.t ->
  ?policy:policy ->
  ?drop_policy:(now:float -> Query.t -> bool) ->
  ?timers:(float * (Sim.t -> unit)) array ->
  ?on_server_event:(sid:int -> now:float -> Sim.server_event -> unit) ->
  config:config ->
  queries:Query.t array ->
  n_servers:int ->
  warmup_id:int ->
  unit ->
  Metrics.t * summary

val pp_action : Format.formatter -> action -> unit
val pp_summary : Format.formatter -> summary -> unit
