(** Synthetic query plans with a latent cost model — the substrate
    behind execution-time prediction (paper Sec 2.3). *)

type t = {
  n_scans : int;
  n_joins : int;
  n_sorts : int;
  n_aggregates : int;
  log_rows : float;
  selectivity : float;
}

val feature_count : int

(** Feature vector a predictor is allowed to see. *)
val to_features : t -> float array

(** Random OLTP/OLAP mixture plan. *)
val generate : Prng.t -> t

(** The latent cost model (ms) — hidden from predictors. *)
val base_cost_ms : t -> float

(** One observed execution: latent cost with lognormal run-to-run
    noise. *)
val observed_cost_ms : ?noise_sigma:float -> t -> Prng.t -> float

val pp : Format.formatter -> t -> unit
