(* Synthetic query plans and their ground-truth execution cost.

   The SLA-tree framework assumes execution-time estimates exist
   (paper Sec 2.3 cites Ganapathi et al.'s ML predictors and Sec 7.5
   measures robustness to their errors). This module provides the
   substrate those papers assume: a population of query plans with
   observable features and a latent cost model the predictor does not
   see. *)

type t = {
  n_scans : int;  (** base table accesses *)
  n_joins : int;
  n_sorts : int;
  n_aggregates : int;
  log_rows : float;  (** log10 of the driving input cardinality *)
  selectivity : float;  (** fraction of rows surviving predicates, (0, 1] *)
}

let feature_count = 6

let to_features p =
  [|
    Float.of_int p.n_scans;
    Float.of_int p.n_joins;
    Float.of_int p.n_sorts;
    Float.of_int p.n_aggregates;
    p.log_rows;
    p.selectivity;
  |]

(* Random plan: OLTP-ish (small, few operators) or OLAP-ish (large,
   join/sort heavy), mirroring the paper's mixed workloads. *)
let generate rng =
  let olap = Prng.float rng < 0.3 in
  if olap then
    {
      n_scans = 1 + Prng.int rng 4;
      n_joins = 1 + Prng.int rng 4;
      n_sorts = Prng.int rng 3;
      n_aggregates = Prng.int rng 3;
      log_rows = 4.0 +. (Prng.float rng *. 3.0);
      selectivity = 0.05 +. (Prng.float rng *. 0.95);
    }
  else
    {
      n_scans = 1 + Prng.int rng 2;
      n_joins = Prng.int rng 2;
      n_sorts = 0;
      n_aggregates = Prng.int rng 2;
      log_rows = 2.0 +. (Prng.float rng *. 2.5);
      selectivity = 0.01 +. (Prng.float rng *. 0.3);
    }

(* Latent cost model (ms). Scans stream rows; joins pay a
   near-linearithmic factor; sorts pay n log n on surviving rows;
   aggregates are cheap. The predictor never sees this formula — it
   only sees (features, observed cost) pairs. *)
let base_cost_ms p =
  let rows = 10.0 ** p.log_rows in
  let surviving = rows *. p.selectivity in
  let scan = 0.00002 *. rows *. Float.of_int p.n_scans in
  let join =
    0.00004 *. surviving *. log (1.0 +. surviving) *. Float.of_int p.n_joins
  in
  let sort =
    0.00003 *. surviving *. log (1.0 +. surviving) *. Float.of_int p.n_sorts
  in
  let agg = 0.00001 *. surviving *. Float.of_int p.n_aggregates in
  0.15 +. scan +. join +. sort +. agg

(* Observed cost: the latent model perturbed by run-to-run variance
   (buffer-pool state, concurrent activity), lognormal with the given
   sigma. *)
let observed_cost_ms ?(noise_sigma = 0.15) p rng =
  let noise = exp (Prng.gaussian rng ~mu:0.0 ~sigma:noise_sigma) in
  base_cost_ms p *. noise

let pp ppf p =
  Fmt.pf ppf "plan{scans=%d joins=%d sorts=%d aggs=%d rows=10^%.1f sel=%.2f}"
    p.n_scans p.n_joins p.n_sorts p.n_aggregates p.log_rows p.selectivity
