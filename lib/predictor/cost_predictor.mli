(** End-to-end execution-time prediction (Sec 2.3's assumed substrate):
    train a kNN model on observed plan executions, evaluate it, and
    generate simulator traces whose estimates come from the model. *)

type t

(** Train on [training_size] random plans with lognormal run-to-run
    noise of the given sigma. Deterministic in [seed]. *)
val train :
  ?k:int -> ?training_size:int -> ?noise_sigma:float -> seed:int -> unit -> t

(** Predicted execution time (ms) for a plan. *)
val predict : t -> Query_plan.t -> float

(** MAPE (%) on fresh plans and fresh executions. *)
val evaluate : ?test_size:int -> t -> seed:int -> float

(** Poisson trace whose [est_size] is the model's prediction and whose
    [size] is a fresh noisy execution; SLA bounds scale with the
    trace's own mean, as in Fig 16. *)
val generate_trace :
  t ->
  profile:Workloads.sla_profile ->
  load:float ->
  servers:int ->
  n_queries:int ->
  seed:int ->
  Query.t array
