(* k-nearest-neighbour regression on standardized features — the
   approach of Ganapathi et al. (cited in paper Sec 2.3) reduced to
   its core. Targets are learned in log space because execution times
   span orders of magnitude and their noise is multiplicative. *)

type t = {
  k : int;
  xs : float array array;  (** standardized training features *)
  log_ys : float array;
  means : float array;
  stds : float array;
}

let standardize ~means ~stds x =
  Array.mapi (fun j v -> (v -. means.(j)) /. stds.(j)) x

let fit ~k xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Knn.fit: empty training set";
  if Array.length ys <> n then invalid_arg "Knn.fit: |xs| <> |ys|";
  if k <= 0 then invalid_arg "Knn.fit: k <= 0";
  Array.iter (fun y -> if y <= 0.0 then invalid_arg "Knn.fit: targets must be positive") ys;
  let d = Array.length xs.(0) in
  let means = Array.make d 0.0 in
  let stds = Array.make d 0.0 in
  for j = 0 to d - 1 do
    let s = Stats.create () in
    Array.iter (fun x -> Stats.add s x.(j)) xs;
    means.(j) <- Stats.mean s;
    let sd = Stats.stddev s in
    stds.(j) <- (if Float.is_nan sd || sd < 1e-9 then 1.0 else sd)
  done;
  {
    k = min k n;
    xs = Array.map (standardize ~means ~stds) xs;
    log_ys = Array.map log ys;
    means;
    stds;
  }

let distance2 a b =
  let acc = ref 0.0 in
  for j = 0 to Array.length a - 1 do
    let d = a.(j) -. b.(j) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Predict by averaging the k nearest neighbours in log space (i.e. a
   geometric mean of their observed times). A full sort is O(n log n);
   training sets here are small enough that this dominates nothing.
   Ties on distance break on training index: Array.sort is not stable,
   so a distance-only comparator leaves equidistant neighbours in
   unspecified order and the prediction would depend on training-set
   permutation. *)
let predict t x =
  let q = standardize ~means:t.means ~stds:t.stds x in
  let dists = Array.mapi (fun i xi -> (distance2 q xi, i)) t.xs in
  Array.sort
    (fun (da, ia) (db, ib) ->
      match Float.compare da db with 0 -> Int.compare ia ib | c -> c)
    dists;
  let acc = ref 0.0 in
  for r = 0 to t.k - 1 do
    let _, i = dists.(r) in
    acc := !acc +. t.log_ys.(i)
  done;
  exp (!acc /. Float.of_int t.k)

(* Mean absolute percentage error over a labeled test set. *)
let mape t xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Knn.mape: empty test set";
  if Array.length ys <> n then invalid_arg "Knn.mape: |xs| <> |ys|";
  Array.iter
    (fun y -> if y <= 0.0 then invalid_arg "Knn.mape: labels must be positive")
    ys;
  let acc = ref 0.0 in
  Array.iteri
    (fun i x -> acc := !acc +. Float.abs ((predict t x -. ys.(i)) /. ys.(i)))
    xs;
  100.0 *. !acc /. Float.of_int n
