(* End-to-end execution-time prediction pipeline: generate a plan
   population, observe training executions, fit kNN, and emit
   simulator-ready traces whose estimates come from the model while
   the actual times come from fresh (noisy) executions — the realistic
   version of the paper's parametric robustness model (Sec 7.5). *)

type t = { model : Knn.t; noise_sigma : float }

let train ?(k = 7) ?(training_size = 2_000) ?(noise_sigma = 0.15) ~seed () =
  let rng = Prng.create seed in
  let plans = Array.init training_size (fun _ -> Query_plan.generate rng) in
  let xs = Array.map Query_plan.to_features plans in
  let ys = Array.map (fun p -> Query_plan.observed_cost_ms ~noise_sigma p rng) plans in
  { model = Knn.fit ~k xs ys; noise_sigma }

let predict t plan = Knn.predict t.model (Query_plan.to_features plan)

(* Test-set MAPE on fresh plans and fresh executions. *)
let evaluate ?(test_size = 1_000) t ~seed =
  let rng = Prng.create seed in
  let plans = Array.init test_size (fun _ -> Query_plan.generate rng) in
  let xs = Array.map Query_plan.to_features plans in
  let ys =
    Array.map
      (fun p -> Query_plan.observed_cost_ms ~noise_sigma:t.noise_sigma p rng)
      plans
  in
  Knn.mape t.model xs ys

(* A trace whose estimated sizes are model predictions and whose
   actual sizes are fresh noisy executions of the same plans; arrivals
   are Poisson at the requested load (calibrated on the actual
   sizes). *)
let generate_trace t ~profile ~load ~servers ~n_queries ~seed =
  if load <= 0.0 || servers <= 0 || n_queries <= 0 then
    invalid_arg "Cost_predictor.generate_trace: bad parameters";
  let master = Prng.create seed in
  let rng_plan = Prng.split master in
  let rng_exec = Prng.split master in
  let rng_arrival = Prng.split master in
  let rng_sla = Prng.split master in
  let plans = Array.init n_queries (fun _ -> Query_plan.generate rng_plan) in
  let est = Array.map (predict t) plans in
  let actual =
    Array.map
      (fun p -> Query_plan.observed_cost_ms ~noise_sigma:t.noise_sigma p rng_exec)
      plans
  in
  let mean_actual = Arrayx.sum_float actual /. Float.of_int n_queries in
  let mean_interarrival = mean_actual /. (load *. Float.of_int servers) in
  (* SLA bounds scale with the workload's own mean, like Fig 16. *)
  let mu = mean_actual in
  let time = ref 0.0 in
  Array.init n_queries (fun id ->
      time := !time +. Prng.exponential rng_arrival ~mean:mean_interarrival;
      let sla =
        match profile with
        | Workloads.Sla_a -> Sla_profiles.sla_a ~mu
        | Workloads.Sla_b ->
          if
            Prng.int rng_sla
              (Sla_profiles.sla_b_customer_weight + Sla_profiles.sla_b_employee_weight)
            < Sla_profiles.sla_b_customer_weight
          then Sla_profiles.sla_b_customer ~mu
          else Sla_profiles.sla_b_employee ~mu
      in
      Query.make ~id ~arrival:!time ~size:actual.(id) ~est_size:est.(id) ~sla ())
