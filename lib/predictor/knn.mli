(** k-nearest-neighbour regression on standardized features, learning
    positive targets in log space (execution times). *)

type t

(** [fit ~k xs ys] standardizes the features and stores the training
    set. Raises on empty data, mismatched lengths, non-positive
    targets or [k <= 0]; [k] is clamped to the training-set size. *)
val fit : k:int -> float array array -> float array -> t

(** Geometric mean of the [k] nearest training targets. *)
val predict : t -> float array -> float

(** Mean absolute percentage error on a labeled test set. *)
val mape : t -> float array array -> float array -> float
