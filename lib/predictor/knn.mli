(** k-nearest-neighbour regression on standardized features, learning
    positive targets in log space (execution times). *)

type t

(** [fit ~k xs ys] standardizes the features and stores the training
    set. Raises on empty data, mismatched lengths, non-positive
    targets or [k <= 0]; [k] is clamped to the training-set size. *)
val fit : k:int -> float array array -> float array -> t

(** Geometric mean of the [k] nearest training targets. Equidistant
    neighbours break ties on training index, so the prediction is
    invariant under permutation of the training set. *)
val predict : t -> float array -> float

(** Mean absolute percentage error on a labeled test set. Raises
    [Invalid_argument] on an empty test set, mismatched lengths, or
    non-positive labels (the same contract [fit] enforces — a zero
    label would otherwise yield a silent [inf]/[nan]). *)
val mape : t -> float array array -> float array -> float
