(** The other half of the loop: an open-loop replay client that pumps
    a trace into the daemon at a wall-clock speed factor and accounts
    the answers.

    Open-loop means timestamp-faithful: query [i] is written at wall
    time [t0 + arrival_i / speed] regardless of how the daemon is
    keeping up — the trace's arrival process is reproduced, not a
    closed feedback loop. [speed = 0.] disables pacing entirely
    (bench mode: submissions go as fast as the socket accepts, with
    reads interleaved so neither direction can deadlock). *)

type report = {
  sent : int;
  decisions : int;
  rejected : int;  (** decisions with [target = None] *)
  completions : int;
  dropped : int;
  profit : float;  (** sum of reported completion profits *)
  wall_s : float;  (** connect-to-summary wall time *)
  summary : Wire.summary option;
      (** the daemon's final accounting ([None] if the connection
          died before the summary arrived) *)
  errors : string list;  (** daemon [Error_msg]s received *)
}

val connect : Daemon.addr -> Unix.file_descr

(** [run ~fd ~queries ()] submits every query (arrival order assumed),
    sends [Eof], and reads until the daemon's [Summary] (or EOF).
    [speed] is the virtual-per-wall time factor (default [1.]; [0.] =
    unpaced). [on_progress] is called roughly once a second with
    counts so long replays can narrate. Closes [fd]. *)
val run :
  ?framing:Wire.framing ->
  ?speed:float ->
  ?client:string ->
  ?on_progress:(sent:int -> completions:int -> unit) ->
  fd:Unix.file_descr ->
  queries:Query.t array ->
  unit ->
  report

(** {!run} over a pull sequence: queries are produced as they are
    submitted (arrival order still assumed), so a streaming source —
    e.g. SLA synthesis over a large SWF log — replays in constant
    memory. The sequence is consumed exactly once. *)
val run_stream :
  ?framing:Wire.framing ->
  ?speed:float ->
  ?client:string ->
  ?on_progress:(sent:int -> completions:int -> unit) ->
  fd:Unix.file_descr ->
  queries:Query.t Seq.t ->
  unit ->
  report
