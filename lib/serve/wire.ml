(* Wire codec: one message catalogue, two framings.

   The binary framing is the fast path: fixed 7-byte header
   [A7 ver tag len32be] and a payload of i64be scalars (floats as
   their IEEE bits), so round-trips are bit-exact with no parsing
   ambiguity. The Json framing is the debuggable twin — one compact
   object per line, floats via Jsonx.float_literal — handy with
   netcat and for eyeballing captures; finite floats still round-trip
   exactly ([%.17g]).

   Frames are size-capped (1 MiB) so a garbage length field cannot
   make a decoder buffer unboundedly. *)

let protocol_version = 2
let magic = '\xA7'
let max_payload = 1 lsl 20

(* One per-tenant accounting line in the end-of-run summary. *)
type tenant_row = {
  tr_tenant : int;
  tr_completed : int;
  tr_rejected : int;
  tr_profit : float;
}

type summary = {
  completed : int;
  rejected : int;
  dropped : int;
  measured : int;
  late : int;
  total_profit : float;
  avg_loss : float;
  avg_response : float;
  vnow : float;
  tenants : tenant_row list;  (* sorted by tenant id; [] = untagged run *)
}

type msg =
  | Hello of { version : int; client : string }
  | Submit of Query.t
  | Eof
  | Decision of {
      qid : int;
      vnow : float;
      target : int option;
      est_delta : float option;
    }
  | Completion of { qid : int; vnow : float; profit : float }
  | Dropped of { qid : int; vnow : float }
  | Summary of summary
  | Error_msg of string

type framing = Binary | Json

type decode_error = Truncated | Malformed of string

(* ------------------------------------------------------------------ *)
(* Equality (bit-exact on floats: NaN = NaN, 0. <> -0.) *)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
let foeq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> feq a b
  | _ -> false

let query_equal (a : Query.t) (b : Query.t) =
  a.id = b.id && feq a.arrival b.arrival && feq a.size b.size
  && feq a.est_size b.est_size && a.retries = b.retries
  && a.tenant = b.tenant
  && Sla.penalty a.sla = Sla.penalty b.sla
  && List.length (Sla.levels a.sla) = List.length (Sla.levels b.sla)
  && List.for_all2
       (fun (la : Sla.level) (lb : Sla.level) ->
         feq la.bound lb.bound && feq la.gain lb.gain)
       (Sla.levels a.sla) (Sla.levels b.sla)

let equal m1 m2 =
  match (m1, m2) with
  | Hello a, Hello b -> a.version = b.version && a.client = b.client
  | Submit a, Submit b -> query_equal a b
  | Eof, Eof -> true
  | Decision a, Decision b ->
    a.qid = b.qid && feq a.vnow b.vnow && a.target = b.target
    && foeq a.est_delta b.est_delta
  | Completion a, Completion b ->
    a.qid = b.qid && feq a.vnow b.vnow && feq a.profit b.profit
  | Dropped a, Dropped b -> a.qid = b.qid && feq a.vnow b.vnow
  | Summary a, Summary b ->
    a.completed = b.completed && a.rejected = b.rejected
    && a.dropped = b.dropped && a.measured = b.measured && a.late = b.late
    && feq a.total_profit b.total_profit && feq a.avg_loss b.avg_loss
    && feq a.avg_response b.avg_response && feq a.vnow b.vnow
    && List.length a.tenants = List.length b.tenants
    && List.for_all2
         (fun ta tb ->
           ta.tr_tenant = tb.tr_tenant && ta.tr_completed = tb.tr_completed
           && ta.tr_rejected = tb.tr_rejected && feq ta.tr_profit tb.tr_profit)
         a.tenants b.tenants
  | Error_msg a, Error_msg b -> a = b
  | _ -> false

let pp ppf = function
  | Hello { version; client } -> Fmt.pf ppf "hello[v%d %s]" version client
  | Submit q -> Fmt.pf ppf "submit[%a]" Query.pp q
  | Eof -> Fmt.pf ppf "eof"
  | Decision { qid; vnow; target; est_delta } ->
    Fmt.pf ppf "decision[q%d @%g -> %a delta=%a]" qid vnow
      Fmt.(option ~none:(any "reject") int)
      target
      Fmt.(option ~none:(any "-") float)
      est_delta
  | Completion { qid; vnow; profit } ->
    Fmt.pf ppf "completion[q%d @%g profit=%g]" qid vnow profit
  | Dropped { qid; vnow } -> Fmt.pf ppf "dropped[q%d @%g]" qid vnow
  | Summary s ->
    Fmt.pf ppf "summary[completed=%d profit=%g @%g]" s.completed
      s.total_profit s.vnow
  | Error_msg e -> Fmt.pf ppf "error[%s]" e

(* ------------------------------------------------------------------ *)
(* Binary framing *)

let tag_of_msg = function
  | Hello _ -> 1
  | Submit _ -> 2
  | Eof -> 3
  | Decision _ -> 4
  | Completion _ -> 5
  | Dropped _ -> 6
  | Summary _ -> 7
  | Error_msg _ -> 8

let add_i64 b n = Buffer.add_int64_be b (Int64.of_int n)
let add_f b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let add_str b s =
  add_i64 b (String.length s);
  Buffer.add_string b s

let add_opt b add = function
  | None -> Buffer.add_uint8 b 0
  | Some v ->
    Buffer.add_uint8 b 1;
    add b v

let add_query b (q : Query.t) =
  add_i64 b q.id;
  add_f b q.arrival;
  add_f b q.size;
  add_f b q.est_size;
  add_i64 b q.retries;
  add_i64 b q.tenant;
  let levels = Sla.levels q.sla in
  add_i64 b (List.length levels);
  List.iter
    (fun (l : Sla.level) ->
      add_f b l.bound;
      add_f b l.gain)
    levels;
  add_f b (Sla.penalty q.sla)

let payload_of_msg m =
  let b = Buffer.create 64 in
  (match m with
  | Hello { version; client } ->
    add_i64 b version;
    add_str b client
  | Submit q -> add_query b q
  | Eof -> ()
  | Decision { qid; vnow; target; est_delta } ->
    add_i64 b qid;
    add_f b vnow;
    add_opt b add_i64 target;
    add_opt b add_f est_delta
  | Completion { qid; vnow; profit } ->
    add_i64 b qid;
    add_f b vnow;
    add_f b profit
  | Dropped { qid; vnow } ->
    add_i64 b qid;
    add_f b vnow
  | Summary s ->
    add_i64 b s.completed;
    add_i64 b s.rejected;
    add_i64 b s.dropped;
    add_i64 b s.measured;
    add_i64 b s.late;
    add_f b s.total_profit;
    add_f b s.avg_loss;
    add_f b s.avg_response;
    add_f b s.vnow;
    add_i64 b (List.length s.tenants);
    List.iter
      (fun tr ->
        add_i64 b tr.tr_tenant;
        add_i64 b tr.tr_completed;
        add_i64 b tr.tr_rejected;
        add_f b tr.tr_profit)
      s.tenants
  | Error_msg e -> add_str b e);
  Buffer.contents b

let encode_binary m =
  let payload = payload_of_msg m in
  let b = Buffer.create (7 + String.length payload) in
  Buffer.add_char b magic;
  Buffer.add_uint8 b protocol_version;
  Buffer.add_uint8 b (tag_of_msg m);
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.contents b

(* Payload reader: a cursor over the payload slice. A malformed
   payload (underrun, bad option flag, absurd list length, invalid
   query) raises [Bad]. *)
exception Bad of string

type reader = { s : string; mutable pos : int; stop : int }

let need r n = if r.pos + n > r.stop then raise (Bad "payload underrun")

let rd_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let rd_f r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let rd_str r =
  let n = rd_i64 r in
  if n < 0 || n > max_payload then raise (Bad "bad string length");
  need r n;
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let rd_opt r rd =
  need r 1;
  let flag = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  match flag with
  | 0 -> None
  | 1 -> Some (rd r)
  | _ -> raise (Bad "bad option flag")

let rd_query r =
  let id = rd_i64 r in
  let arrival = rd_f r in
  let size = rd_f r in
  let est_size = rd_f r in
  let retries = rd_i64 r in
  let tenant = rd_i64 r in
  let n_levels = rd_i64 r in
  if n_levels < 0 || n_levels > 4096 then raise (Bad "bad level count");
  let levels =
    List.init n_levels (fun _ ->
        let bound = rd_f r in
        let gain = rd_f r in
        { Sla.bound; gain })
  in
  let penalty = rd_f r in
  match Sla.make ~levels ~penalty with
  | sla -> (
    try Query.make ~est_size ~retries ~tenant ~id ~arrival ~size ~sla ()
    with Invalid_argument e -> raise (Bad ("invalid query: " ^ e)))
  | exception Sla.Invalid e -> raise (Bad ("invalid sla: " ^ e))

let msg_of_payload tag r =
  let m =
    match tag with
    | 1 ->
      let version = rd_i64 r in
      let client = rd_str r in
      Hello { version; client }
    | 2 -> Submit (rd_query r)
    | 3 -> Eof
    | 4 ->
      let qid = rd_i64 r in
      let vnow = rd_f r in
      let target = rd_opt r rd_i64 in
      let est_delta = rd_opt r rd_f in
      Decision { qid; vnow; target; est_delta }
    | 5 ->
      let qid = rd_i64 r in
      let vnow = rd_f r in
      let profit = rd_f r in
      Completion { qid; vnow; profit }
    | 6 ->
      let qid = rd_i64 r in
      let vnow = rd_f r in
      Dropped { qid; vnow }
    | 7 ->
      let completed = rd_i64 r in
      let rejected = rd_i64 r in
      let dropped = rd_i64 r in
      let measured = rd_i64 r in
      let late = rd_i64 r in
      let total_profit = rd_f r in
      let avg_loss = rd_f r in
      let avg_response = rd_f r in
      let vnow = rd_f r in
      let n_tenants = rd_i64 r in
      if n_tenants < 0 || n_tenants > 65536 then
        raise (Bad "bad tenant row count");
      let tenants =
        List.init n_tenants (fun _ ->
            let tr_tenant = rd_i64 r in
            let tr_completed = rd_i64 r in
            let tr_rejected = rd_i64 r in
            let tr_profit = rd_f r in
            { tr_tenant; tr_completed; tr_rejected; tr_profit })
      in
      Summary
        {
          completed;
          rejected;
          dropped;
          measured;
          late;
          total_profit;
          avg_loss;
          avg_response;
          vnow;
          tenants;
        }
    | 8 -> Error_msg (rd_str r)
    | t -> raise (Bad (Printf.sprintf "unknown tag %d" t))
  in
  if r.pos <> r.stop then raise (Bad "trailing payload bytes");
  m

let decode_binary s =
  let len = String.length s in
  if len < 1 then Error Truncated
  else if s.[0] <> magic then Error (Malformed "bad magic")
  else if len < 7 then Error Truncated
  else
    let version = Char.code s.[1] in
    let tag = Char.code s.[2] in
    let plen = Int32.to_int (String.get_int32_be s 3) in
    if version <> protocol_version then
      Error (Malformed (Printf.sprintf "unsupported version %d" version))
    else if plen < 0 || plen > max_payload then
      Error (Malformed "payload too large")
    else if len < 7 + plen then Error Truncated
    else
      let r = { s; pos = 7; stop = 7 + plen } in
      match msg_of_payload tag r with
      | m -> Ok (m, 7 + plen)
      | exception Bad e -> Error (Malformed e)

(* ------------------------------------------------------------------ *)
(* Json framing *)

let jf f = Jsonx.Num f
let ji i = Jsonx.Num (float_of_int i)
let jopt f = function None -> Jsonx.Null | Some v -> f v

let json_of_query (q : Query.t) =
  Jsonx.Obj
    [
      ("id", ji q.id);
      ("arrival", jf q.arrival);
      ("size", jf q.size);
      ("est_size", jf q.est_size);
      ("retries", ji q.retries);
      ("tenant", ji q.tenant);
      ( "sla",
        Jsonx.Obj
          [
            ( "levels",
              Jsonx.Arr
                (List.map
                   (fun (l : Sla.level) -> Jsonx.Arr [ jf l.bound; jf l.gain ])
                   (Sla.levels q.sla)) );
            ("penalty", jf (Sla.penalty q.sla));
          ] );
    ]

let json_of_msg m =
  let obj t fields = Jsonx.Obj (("t", Jsonx.Str t) :: fields) in
  match m with
  | Hello { version; client } ->
    obj "hello" [ ("version", ji version); ("client", Jsonx.Str client) ]
  | Submit q -> obj "submit" [ ("q", json_of_query q) ]
  | Eof -> obj "eof" []
  | Decision { qid; vnow; target; est_delta } ->
    obj "decision"
      [
        ("qid", ji qid);
        ("vnow", jf vnow);
        ("target", jopt ji target);
        ("est_delta", jopt jf est_delta);
      ]
  | Completion { qid; vnow; profit } ->
    obj "completion" [ ("qid", ji qid); ("vnow", jf vnow); ("profit", jf profit) ]
  | Dropped { qid; vnow } -> obj "dropped" [ ("qid", ji qid); ("vnow", jf vnow) ]
  | Summary s ->
    obj "summary"
      [
        ("completed", ji s.completed);
        ("rejected", ji s.rejected);
        ("dropped", ji s.dropped);
        ("measured", ji s.measured);
        ("late", ji s.late);
        ("total_profit", jf s.total_profit);
        ("avg_loss", jf s.avg_loss);
        ("avg_response", jf s.avg_response);
        ("vnow", jf s.vnow);
        ( "tenants",
          Jsonx.Arr
            (List.map
               (fun tr ->
                 Jsonx.Obj
                   [
                     ("tenant", ji tr.tr_tenant);
                     ("completed", ji tr.tr_completed);
                     ("rejected", ji tr.tr_rejected);
                     ("profit", jf tr.tr_profit);
                   ])
               s.tenants) );
      ]
  | Error_msg e -> obj "error" [ ("msg", Jsonx.Str e) ]

let encode_json m = Jsonx.to_string (json_of_msg m) ^ "\n"

(* Field accessors that raise [Bad] — decoding shares the binary
   path's error channel. *)
let jget j k = match Jsonx.member k j with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))

let jint j k =
  match Jsonx.to_int (jget j k) with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "field %S: not an int" k))

let jfloat j k =
  match Jsonx.to_float (jget j k) with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "field %S: not a number" k))

let jstr j k =
  match Jsonx.to_str (jget j k) with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "field %S: not a string" k))

let jopt_of j k conv =
  match jget j k with Jsonx.Null -> None | v -> (
    match conv v with
    | Some x -> Some x
    | None -> raise (Bad (Printf.sprintf "field %S: bad value" k)))

let query_of_json j =
  let levels =
    match Jsonx.to_list (jget (jget j "sla") "levels") with
    | None -> raise (Bad "sla.levels: not a list")
    | Some ls ->
      List.map
        (fun l ->
          match Jsonx.to_list l with
          | Some [ b; g ] -> (
            match (Jsonx.to_float b, Jsonx.to_float g) with
            | Some bound, Some gain -> { Sla.bound; gain }
            | _ -> raise (Bad "sla level: not numbers"))
          | _ -> raise (Bad "sla level: not a pair"))
        ls
  in
  let penalty = jfloat (jget j "sla") "penalty" in
  match Sla.make ~levels ~penalty with
  | sla -> (
    try
      (* [tenant] is optional on the wire: hand-written Json (netcat)
         predating tenancy still parses, defaulting to the anonymous
         tenant. *)
      let tenant =
        match Jsonx.member "tenant" j with
        | None | Some Jsonx.Null -> 0
        | Some v -> (
          match Jsonx.to_int v with
          | Some t -> t
          | None -> raise (Bad "field \"tenant\": not an int"))
      in
      Query.make ~est_size:(jfloat j "est_size") ~retries:(jint j "retries")
        ~tenant ~id:(jint j "id") ~arrival:(jfloat j "arrival")
        ~size:(jfloat j "size") ~sla ()
    with Invalid_argument e -> raise (Bad ("invalid query: " ^ e)))
  | exception Sla.Invalid e -> raise (Bad ("invalid sla: " ^ e))

let msg_of_json j =
  match jstr j "t" with
  | "hello" -> Hello { version = jint j "version"; client = jstr j "client" }
  | "submit" -> Submit (query_of_json (jget j "q"))
  | "eof" -> Eof
  | "decision" ->
    Decision
      {
        qid = jint j "qid";
        vnow = jfloat j "vnow";
        target = jopt_of j "target" Jsonx.to_int;
        est_delta = jopt_of j "est_delta" Jsonx.to_float;
      }
  | "completion" ->
    Completion
      { qid = jint j "qid"; vnow = jfloat j "vnow"; profit = jfloat j "profit" }
  | "dropped" -> Dropped { qid = jint j "qid"; vnow = jfloat j "vnow" }
  | "summary" ->
    Summary
      {
        completed = jint j "completed";
        rejected = jint j "rejected";
        dropped = jint j "dropped";
        measured = jint j "measured";
        late = jint j "late";
        total_profit = jfloat j "total_profit";
        avg_loss = jfloat j "avg_loss";
        avg_response = jfloat j "avg_response";
        vnow = jfloat j "vnow";
        tenants =
          (match Jsonx.member "tenants" j with
          | None | Some Jsonx.Null -> []
          | Some v -> (
            match Jsonx.to_list v with
            | None -> raise (Bad "field \"tenants\": not a list")
            | Some rows ->
              List.map
                (fun row ->
                  {
                    tr_tenant = jint row "tenant";
                    tr_completed = jint row "completed";
                    tr_rejected = jint row "rejected";
                    tr_profit = jfloat row "profit";
                  })
                rows));
      }
  | "error" -> Error_msg (jstr j "msg")
  | t -> raise (Bad (Printf.sprintf "unknown message type %S" t))

let decode_json s =
  match String.index_opt s '\n' with
  | None ->
    if String.length s > max_payload then Error (Malformed "line too long")
    else Error Truncated
  | Some nl -> (
    let line =
      if nl > 0 && s.[nl - 1] = '\r' then String.sub s 0 (nl - 1)
      else String.sub s 0 nl
    in
    match Jsonx.parse line with
    | j -> (
      match msg_of_json j with
      | m -> Ok (m, nl + 1)
      | exception Bad e -> Error (Malformed e))
    | exception Jsonx.Parse_error e -> Error (Malformed ("bad json: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Public codec *)

let encode = function Binary -> encode_binary | Json -> encode_json
let decode = function Binary -> decode_binary | Json -> decode_json

module Decoder = struct
  type t = { mutable fr : framing option; mutable acc : string }

  let create ?framing () = { fr = framing; acc = "" }
  let framing t = t.fr
  let feed t s = if s <> "" then t.acc <- (if t.acc = "" then s else t.acc ^ s)
  let buffered t = String.length t.acc

  let next t =
    if t.acc = "" then Ok None
    else begin
      (match t.fr with
      | Some _ -> ()
      | None ->
        t.fr <-
          (match t.acc.[0] with
          | '{' -> Some Json
          | c when c = magic -> Some Binary
          | _ -> None));
      match t.fr with
      | None -> Error "unknown framing (bad first byte)"
      | Some fr -> (
        match decode fr t.acc with
        | Ok (m, n) ->
          t.acc <- String.sub t.acc n (String.length t.acc - n);
          Ok (Some m)
        | Error Truncated ->
          if String.length t.acc > 7 + max_payload then
            Error "frame exceeds size cap"
          else Ok None
        | Error (Malformed e) -> Error e)
    end
end
