(** The serving daemon: the SLA-tree decision stack as a persistent
    process.

    Split in two layers so the decision machinery is testable without
    sockets:

    - {!Engine} owns a live {!Sim.session} (the exact event loop
      behind [Sim.run]) plus the scheduler/dispatcher instances, maps
      wire messages to session operations, and emits wire messages
      (decisions, completions, drops, summaries) through a pluggable
      callback. In manual-clock mode its behaviour is bit-identical
      to [Sim.run] on the same queries — the serial-vs-served
      equivalence test holds it to that.
    - {!serve} is the [Unix.select] accept loop: framed client
      connections on one address, an HTTP scrape endpoint for the
      [Obs] registry/timeseries on another, graceful drain on stop.

    See docs/SERVING.md. *)

(** {1 Addresses} *)

type addr =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

(** ["unix:PATH"], ["HOST:PORT"] or bare ["PORT"] (localhost). *)
val addr_of_string : string -> (addr, string) result

val pp_addr : Format.formatter -> addr -> unit

(** {1 Engine} *)

module Engine : sig
  type t

  (** [create ~clock ~scheduler ~dispatcher ~n_servers ()] builds the
      decision stack: a {!Sim.session} with [scheduler]/[dispatcher]
      instantiated against [obs] (their per-decision latency
      histograms keep working under serving), [warmup] unmeasured
      query ids, and optional [admit]/[speeds]/[drop_policy]/[ticker]
      passthrough with [Sim.run]'s semantics (an admission controller
      prices live submissions exactly as simulated ones; its
      rejections reach the submitting client as [Decision] with no
      target).

      With a manual [clock], submissions advance virtual time exactly
      as [Sim.run] does (deterministic mode). With a realtime clock,
      a submission stamped in the future is held and injected when
      its arrival comes due in {!poll}. *)
  val create :
    ?obs:Obs.t ->
    ?warmup:int ->
    ?admit:Sim.admit ->
    ?speeds:float array ->
    ?drop_policy:(now:float -> Query.t -> bool) ->
    ?ticker:float * (Sim.t -> unit) ->
    clock:Vclock.t ->
    scheduler:Schedulers.t ->
    dispatcher:Dispatchers.t ->
    n_servers:int ->
    unit ->
    t

  (** Install the outbound-message callback ([client] is the opaque
      id the inbound message carried). Replaces the previous one;
      initially messages are dropped. *)
  val on_emit : t -> (client:int -> Wire.msg -> unit) -> unit

  (** Process one inbound message. [Submit] runs the full arrival
      path (dispatch decision emitted to the submitting client, which
      later receives the matching completion/drop); [Eof] drains the
      session and answers with [Summary]; [Hello] is answered in
      kind; daemon-to-client messages are protocol errors (answered
      with [Error_msg]). *)
  val handle : t -> client:int -> Wire.msg -> unit

  (** Realtime mode: inject the held submissions that came due and
      advance the session to the clock. Manual mode: no-op. *)
  val poll : t -> unit

  (** Wall seconds until {!poll} has something to do — [None] when
      nothing is pending (sleep until socket activity). *)
  val next_wakeup_s : t -> float option

  (** Run the session to quiescence (held submissions included) —
      the shutdown drain. *)
  val drain : t -> unit

  (** Forget a disconnected client: its pending emissions are
      dropped. *)
  val client_gone : t -> client:int -> unit

  val summary : t -> Wire.summary
  val metrics : t -> Metrics.t
  val sim : t -> Sim.t
  val obs : t -> Obs.t

  (** Queries submitted / completions emitted so far. *)
  val submitted : t -> int

  val completed : t -> int
end

(** {1 Serving} *)

(** Run the accept loop until [stop] becomes true (install a SIGINT
    handler that sets it) or, with [exit_on_idle], until a drained
    [Eof] leaves no connected clients. Shutdown is graceful: stop
    accepting, drain the engine, send each client the final
    [Summary] and [Eof], flush outbound buffers, close.

    [metrics_listen] adds an HTTP scrape endpoint: [/metrics]
    (registry JSON, schema [slatree-obs/1]), [/metrics.txt] (pretty),
    [/timeseries] (when [timeseries] is given), [/healthz].

    [on_ready] runs once both listeners are bound — tests
    synchronize on it. SIGPIPE is ignored for the process. *)
val serve :
  ?stop:bool ref ->
  ?exit_on_idle:bool ->
  ?on_ready:(unit -> unit) ->
  ?metrics_listen:addr ->
  ?timeseries:Obs.Timeseries.t ->
  engine:Engine.t ->
  listen:addr ->
  unit ->
  unit
