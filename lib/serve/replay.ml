type report = {
  sent : int;
  decisions : int;
  rejected : int;
  completions : int;
  dropped : int;
  profit : float;
  wall_s : float;
  summary : Wire.summary option;
  errors : string list;
}

let connect addr =
  match addr with
  | Daemon.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Daemon.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (ip, port));
    fd

(* Mutable accounting threaded through the read path. *)
type acc = {
  mutable decisions : int;
  mutable rejected : int;
  mutable completions : int;
  mutable dropped : int;
  mutable profit : float;
  mutable summary : Wire.summary option;
  mutable errors : string list;
  mutable closed : bool;  (** daemon hung up *)
}

let run_stream ?(framing = Wire.Binary) ?(speed = 1.0) ?client ?on_progress ~fd
    ~queries () =
  if not (Float.is_finite speed && speed >= 0.0) then
    invalid_arg "Replay.run: speed must be >= 0";
  Unix.set_nonblock fd;
  let dec = Wire.Decoder.create ~framing () in
  let a =
    {
      decisions = 0;
      rejected = 0;
      completions = 0;
      dropped = 0;
      profit = 0.0;
      summary = None;
      errors = [];
      closed = false;
    }
  in
  let rbuf = Bytes.create 65536 in
  let on_msg = function
    | Wire.Decision { target; _ } ->
      a.decisions <- a.decisions + 1;
      if target = None then a.rejected <- a.rejected + 1
    | Wire.Completion { profit; _ } ->
      a.completions <- a.completions + 1;
      a.profit <- a.profit +. profit
    | Wire.Dropped _ -> a.dropped <- a.dropped + 1
    | Wire.Summary s -> a.summary <- Some s
    | Wire.Error_msg e -> a.errors <- e :: a.errors
    | Wire.Hello _ -> ()
    | Wire.Submit _ | Wire.Eof -> ()  (* daemon shutdown notice *)
  in
  let pump_reads () =
    let again = ref true in
    while !again && not a.closed do
      (match Unix.read fd rbuf 0 (Bytes.length rbuf) with
      | 0 ->
        a.closed <- true;
        again := false
      | n -> Wire.Decoder.feed dec (Bytes.sub_string rbuf 0 n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        again := false
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        a.closed <- true;
        again := false);
      let drain = ref true in
      while !drain do
        match Wire.Decoder.next dec with
        | Ok (Some m) -> on_msg m
        | Ok None -> drain := false
        | Error e ->
          a.errors <- ("decode: " ^ e) :: a.errors;
          a.closed <- true;
          drain := false
      done
    done
  in
  (* Blocking send that keeps reading: a daemon pushing decisions
     while we push submissions must not deadlock on two full kernel
     buffers. *)
  let send s =
    let off = ref 0 in
    let len = String.length s in
    while !off < len && not a.closed do
      (match Unix.write_substring fd s !off (len - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (match Unix.select [ fd ] [ fd ] [] 1.0 with
        | r, _, _ -> if r <> [] then pump_reads ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        a.closed <- true);
      pump_reads ()
    done
  in
  let t0 = Obs.now_ns () in
  let wall_s () = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
  Option.iter
    (fun client ->
      send (Wire.encode framing (Wire.Hello { version = Wire.protocol_version; client })))
    client;
  let sent = ref 0 in
  let last_progress = ref 0.0 in
  let progress () =
    match on_progress with
    | Some f when wall_s () -. !last_progress >= 1.0 ->
      last_progress := wall_s ();
      f ~sent:!sent ~completions:a.completions
    | _ -> ()
  in
  Seq.iter
    (fun q ->
      if not a.closed then begin
        (* Open loop: wait out the trace's inter-arrival gap at the
           speed factor, servicing reads meanwhile. *)
        if speed > 0.0 then begin
          let due = q.Query.arrival /. speed /. 1e3 in
          let rec wait () =
            let dt = due -. wall_s () in
            if dt > 0.0 && not a.closed then begin
              (match Unix.select [ fd ] [] [] (Float.min dt 0.25) with
              | r, _, _ -> if r <> [] then pump_reads ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              wait ()
            end
          in
          wait ()
        end;
        send (Wire.encode framing (Wire.Submit q));
        incr sent;
        progress ()
      end)
    queries;
  if not a.closed then send (Wire.encode framing Wire.Eof);
  (* Read until the summary (the daemon sends it after draining) or
     the connection closes under us. *)
  while a.summary = None && not a.closed do
    (match Unix.select [ fd ] [] [] 1.0 with
    | r, _, _ -> if r <> [] then pump_reads ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    progress ()
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  {
    sent = !sent;
    decisions = a.decisions;
    rejected = a.rejected;
    completions = a.completions;
    dropped = a.dropped;
    profit = a.profit;
    wall_s = wall_s ();
    summary = a.summary;
    errors = List.rev a.errors;
  }

let run ?framing ?speed ?client ?on_progress ~fd ~queries () =
  run_stream ?framing ?speed ?client ?on_progress ~fd
    ~queries:(Array.to_seq queries) ()
