(** The serving daemon's wire protocol: one message catalogue, two
    framings sharing the codec.

    {b Binary} frames are [magic 0xA7, version, tag, payload-len
    (u32be), payload] with all integers as i64be and floats as their
    IEEE-754 bits in i64be — encode→decode is bit-exact by
    construction. {b Json} frames are one compact object per
    [\n]-terminated line ([{"t": "submit", ...}]), floats printed via
    {!Jsonx.float_literal} ([%.17g]) so finite doubles round-trip
    exactly too.

    A connection speaks one framing; the daemon auto-detects it from
    the first byte ([{] → Json, [0xA7] → Binary). See docs/SERVING.md
    for the full frame layout and message catalogue. *)

(** Bumped on any incompatible change; carried in both the binary
    frame header and {!Hello}. *)
val protocol_version : int

(** One per-tenant accounting line in the end-of-run summary. *)
type tenant_row = {
  tr_tenant : int;
  tr_completed : int;
  tr_rejected : int;
  tr_profit : float;
}

type summary = {
  completed : int;
  rejected : int;
  dropped : int;
  measured : int;
  late : int;
  total_profit : float;
  avg_loss : float;
  avg_response : float;
  vnow : float;  (** virtual clock at summary time (ms) *)
  tenants : tenant_row list;
      (** per-tenant lines, sorted by tenant id; empty on an untagged
          run *)
}

type msg =
  | Hello of { version : int; client : string }
      (** optional client greeting; the daemon replies in kind *)
  | Submit of Query.t  (** a query arrival (client → daemon) *)
  | Eof
      (** no more submissions: the daemon drains and answers with
          {!Summary} (client → daemon); also the daemon's shutdown
          notice to clients (daemon → client) *)
  | Decision of {
      qid : int;
      vnow : float;
      target : int option;  (** [None] = rejected by admission *)
      est_delta : float option;
    }
  | Completion of { qid : int; vnow : float; profit : float }
  | Dropped of { qid : int; vnow : float }
  | Summary of summary
  | Error_msg of string
      (** daemon → client just before closing a misbehaving
          connection *)

type framing = Binary | Json

(** Structural equality with bit-exact float comparison (NaN equals
    NaN; [0.] and [-0.] differ) — what the round-trip fuzz asserts. *)
val equal : msg -> msg -> bool

val pp : Format.formatter -> msg -> unit

(** One complete frame, newline included in the Json framing. *)
val encode : framing -> msg -> string

type decode_error =
  | Truncated  (** a frame prefix — feed more bytes *)
  | Malformed of string  (** unrecoverable; close the connection *)

(** Decode one message from the head of [s]; on success also returns
    the number of bytes consumed. *)
val decode : framing -> string -> (msg * int, decode_error) result

(** Incremental decoder over an arbitrary chunking of the byte
    stream. *)
module Decoder : sig
  type t

  (** Without [framing], the first fed byte picks it. *)
  val create : ?framing:framing -> unit -> t

  (** [None] until auto-detection has seen a byte. *)
  val framing : t -> framing option

  val feed : t -> string -> unit

  (** Next complete message, if any: [Ok None] means feed more bytes;
      [Error _] means the stream is malformed (bad magic, unknown
      framing or tag, oversized or unparseable frame) and the
      connection should be closed. *)
  val next : t -> (msg option, string) result

  (** Unconsumed bytes held. *)
  val buffered : t -> int
end
