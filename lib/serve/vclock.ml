type mode = Realtime of { origin_ns : int64; speed : float } | Manual

type t = { mode : mode; mutable vnow : float }
(* [vnow] is the high-water mark: in realtime mode it only caches the
   last reading so [now] stays monotone even if the host clock
   misbehaves; in manual mode it IS the clock. *)

let realtime ?(speed = 1.0) () =
  if not (Float.is_finite speed && speed > 0.0) then
    invalid_arg "Vclock.realtime: speed must be positive";
  { mode = Realtime { origin_ns = Obs.now_ns (); speed }; vnow = 0.0 }

let manual () = { mode = Manual; vnow = 0.0 }

let is_realtime t = match t.mode with Realtime _ -> true | Manual -> false

let now t =
  (match t.mode with
  | Manual -> ()
  | Realtime { origin_ns; speed } ->
    let wall_ms =
      Int64.to_float (Int64.sub (Obs.now_ns ()) origin_ns) /. 1e6
    in
    t.vnow <- Float.max t.vnow (wall_ms *. speed));
  t.vnow

let advance_to t v =
  match t.mode with
  | Manual -> t.vnow <- Float.max t.vnow v
  | Realtime _ -> invalid_arg "Vclock.advance_to: realtime clock"

let wall_delay_s t ~until =
  match t.mode with
  | Manual -> 0.0
  | Realtime { speed; _ } -> Float.max 0.0 ((until -. now t) /. speed /. 1e3)
