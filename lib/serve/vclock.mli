(** The daemon's virtual clock: simulated milliseconds slaved to the
    host monotonic clock (realtime mode) or advanced explicitly
    (manual mode, the deterministic-equivalence harness).

    Realtime maps wall time to virtual time linearly: [speed] virtual
    milliseconds elapse per wall millisecond, from virtual 0 at
    {!realtime} call time. Traces stamp arrivals from 0, so replaying
    one at [speed] compresses it by that factor while keeping every
    deadline and boot delay meaningful. *)

type t

(** [speed] must be positive (default 1: virtual = wall). *)
val realtime : ?speed:float -> unit -> t

(** Starts at virtual 0; only {!advance_to} moves it. *)
val manual : unit -> t

val is_realtime : t -> bool

(** Current virtual time (ms). Monotone. *)
val now : t -> float

(** Manual mode: move the clock forward (earlier instants are
    ignored — time is monotone). Raises [Invalid_argument] in
    realtime mode. *)
val advance_to : t -> float -> unit

(** Wall-clock seconds until virtual instant [until] (0 when already
    past). Manual mode: 0 — everything is immediately due. A serving
    loop turns {!Sim.next_event_time} into its poll timeout with
    this. *)
val wall_delay_s : t -> until:float -> float
