(* The serving daemon. [Engine] is the sockets-free decision core —
   wire messages in, wire messages out, a live [Sim.session] in the
   middle — and [serve] is the single-threaded [Unix.select] loop
   that feeds it. Keeping the core free of file descriptors is what
   lets the serial-vs-served equivalence suite drive it directly. *)

(* ------------------------------------------------------------------ *)
(* Addresses *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | Some 4 when String.length s > 5 && String.sub s 0 5 = "unix:" ->
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "empty unix socket path" else Ok (Unix_sock path)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "bad port %S" port))
  | None -> (
    match int_of_string_opt s with
    | Some p when p > 0 && p < 65536 -> Ok (Tcp ("127.0.0.1", p))
    | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH, HOST:PORT or PORT)" s))

let pp_addr ppf = function
  | Unix_sock p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Engine *)

module Engine = struct
  type t = {
    clock : Vclock.t;
    sess : Sim.session;
    metrics : Metrics.t;
    o : Obs.t;
    owners : (int, int) Hashtbl.t;  (** qid -> client *)
    tally : (int, int * int * float) Hashtbl.t;
        (** tenant -> (completed, rejected, profit); tenant 0
            (untagged) is not tallied *)
    pending : Query.t Heap.t;
        (** realtime mode: submissions stamped in the future, held
            until due *)
    mutable emit : client:int -> Wire.msg -> unit;
    mutable submitted : int;
    mutable completed : int;
    mutable base : float;
        (** realtime mode: offset added to submitted arrival stamps so
            a trace stamped from 0 lines up with the running virtual
            clock *)
    mutable rebase : bool;
        (** realign [base] at the next submission (daemon start, and
            after every Eof drain — each replay session gets a fresh
            timebase) *)
    (* obs handles, resolved once *)
    c_submitted : Obs.Registry.counter;
    c_eofs : Obs.Registry.counter;
    c_proto_errors : Obs.Registry.counter;
  }

  let obs t = t.o
  let metrics t = t.metrics
  let sim t = Sim.sim t.sess
  let submitted t = t.submitted
  let completed t = t.completed
  let on_emit t f = t.emit <- f

  let create ?(obs = Obs.noop) ?(warmup = 0) ?admit ?speeds ?drop_policy
      ?ticker ~clock ~scheduler ~dispatcher ~n_servers () =
    let pick_next, hook = Schedulers.instantiate ~obs scheduler in
    let dispatch = Dispatchers.instantiate ~obs dispatcher in
    let metrics = Metrics.create ~warmup_id:warmup () in
    let owners = Hashtbl.create 1024 in
    (* The engine record is needed inside the session callbacks;
       tie the knot through a forward ref. *)
    let self = ref None in
    let the () = Option.get !self in
    let tally_on t q ~rejected ~profit =
      let tn = q.Query.tenant in
      if tn > 0 then begin
        let c, r, p =
          Option.value (Hashtbl.find_opt t.tally tn) ~default:(0, 0, 0.0)
        in
        if rejected then Hashtbl.replace t.tally tn (c, r + 1, p)
        else Hashtbl.replace t.tally tn (c + 1, r, p +. profit)
      end
    in
    let on_dispatch ~now q (d : Sim.decision) =
      let t = the () in
      if d.target = None then tally_on t q ~rejected:true ~profit:0.0;
      match Hashtbl.find_opt t.owners q.Query.id with
      | None -> ()
      | Some client ->
        if d.target = None then Hashtbl.remove t.owners q.Query.id;
        t.emit ~client
          (Wire.Decision
             { qid = q.Query.id; vnow = now; target = d.target;
               est_delta = d.est_delta })
    in
    let on_complete q ~completion =
      let t = the () in
      t.completed <- t.completed + 1;
      tally_on t q ~rejected:false ~profit:(Query.profit_at q ~completion);
      match Hashtbl.find_opt t.owners q.Query.id with
      | None -> ()
      | Some client ->
        Hashtbl.remove t.owners q.Query.id;
        t.emit ~client
          (Wire.Completion
             { qid = q.Query.id; vnow = completion;
               profit = Query.profit_at q ~completion })
    in
    let on_server_event ~sid ~now ev =
      (match hook with Some h -> h ~sid ~now ev | None -> ());
      match ev with
      | Sim.Dropped q -> (
        let t = the () in
        match Hashtbl.find_opt t.owners q.Query.id with
        | None -> ()
        | Some client ->
          Hashtbl.remove t.owners q.Query.id;
          t.emit ~client (Wire.Dropped { qid = q.Query.id; vnow = now }))
      | _ -> ()
    in
    let sess =
      Sim.session ~obs ?admit ~on_dispatch ~on_complete ~on_server_event
        ?speeds ?drop_policy ?ticker ~n_servers ~pick_next ~dispatch ~metrics
        ()
    in
    let reg = Obs.registry obs in
    let t =
      {
        clock;
        sess;
        metrics;
        o = obs;
        owners;
        tally = Hashtbl.create 16;
        pending =
          Heap.create (fun a b ->
              Float.compare a.Query.arrival b.Query.arrival);
        emit = (fun ~client:_ _ -> ());
        submitted = 0;
        completed = 0;
        base = 0.0;
        rebase = true;
        c_submitted = Obs.Registry.counter reg "serve.submitted";
        c_eofs = Obs.Registry.counter reg "serve.eofs";
        c_proto_errors = Obs.Registry.counter reg "serve.protocol_errors";
      }
    in
    self := Some t;
    t

  let summary t =
    let m = t.metrics in
    {
      Wire.completed = Metrics.completed_count m;
      rejected = Metrics.rejected_count m;
      dropped = Metrics.dropped_count m;
      measured = Metrics.measured_count m;
      late = Metrics.late_count m;
      total_profit = Metrics.total_profit m;
      avg_loss = Metrics.avg_loss m;
      avg_response = Metrics.avg_response m;
      vnow = Sim.now (Sim.sim t.sess);
      tenants =
        Hashtbl.fold
          (fun tn (c, r, p) acc ->
            { Wire.tr_tenant = tn; tr_completed = c; tr_rejected = r;
              tr_profit = p }
            :: acc)
          t.tally []
        |> List.sort (fun a b ->
               Int.compare a.Wire.tr_tenant b.Wire.tr_tenant);
    }

  let inject_due t ~vnow =
    let rec go () =
      match Heap.peek t.pending with
      | Some q when q.Query.arrival <= vnow ->
        Sim.inject t.sess (Heap.pop_exn t.pending);
        go ()
      | _ -> ()
    in
    go ()

  let flush_pending t =
    while not (Heap.is_empty t.pending) do
      Sim.inject t.sess (Heap.pop_exn t.pending)
    done

  let drain t =
    flush_pending t;
    Sim.drain t.sess

  let poll t =
    if Vclock.is_realtime t.clock then begin
      let vnow = Vclock.now t.clock in
      inject_due t ~vnow;
      Sim.advance t.sess ~until:vnow
    end

  let next_wakeup_s t =
    if not (Vclock.is_realtime t.clock) then None
    else
      let cand =
        match (Heap.peek t.pending, Sim.next_event_time t.sess) with
        | None, None -> None
        | Some q, None -> Some q.Query.arrival
        | None, Some e -> Some e
        | Some q, Some e -> Some (Float.min q.Query.arrival e)
      in
      Option.map (fun until -> Vclock.wall_delay_s t.clock ~until) cand

  let handle t ~client msg =
    match msg with
    | Wire.Hello _ ->
      t.emit ~client
        (Wire.Hello { version = Wire.protocol_version; client = "slatree-serve" })
    | Wire.Submit q ->
      t.submitted <- t.submitted + 1;
      if Obs.enabled t.o then Obs.Registry.incr t.c_submitted;
      Hashtbl.replace t.owners q.Query.id client;
      if Vclock.is_realtime t.clock then begin
        let vnow = Vclock.now t.clock in
        (* Traces stamp arrivals from 0 but the virtual clock has
           been running since daemon start: align the session's
           timebase on its first submission so the first query
           arrives "now" and the rest keep their relative spacing
           (and their SLA clocks start at the shifted arrival, not in
           the deep past). *)
        if t.rebase then begin
          t.base <- vnow -. q.Query.arrival;
          t.rebase <- false
        end;
        let q =
          if t.base = 0.0 then q
          else
            Query.make ~est_size:q.Query.est_size ~retries:q.Query.retries
              ~tenant:q.Query.tenant ~id:q.Query.id
              ~arrival:(Float.max 0.0 (q.Query.arrival +. t.base))
              ~size:q.Query.size ~sla:q.Query.sla ()
        in
        if q.Query.arrival <= vnow then Sim.inject t.sess q
        else Heap.push t.pending q
      end
      else Sim.inject t.sess q
    | Wire.Eof ->
      if Obs.enabled t.o then Obs.Registry.incr t.c_eofs;
      drain t;
      t.rebase <- true;
      t.emit ~client (Wire.Summary (summary t))
    | Wire.Decision _ | Wire.Completion _ | Wire.Dropped _ | Wire.Summary _
    | Wire.Error_msg _ ->
      if Obs.enabled t.o then Obs.Registry.incr t.c_proto_errors;
      t.emit ~client (Wire.Error_msg "unexpected daemon-to-client message")

  let client_gone t ~client =
    let stale =
      Hashtbl.fold
        (fun qid c acc -> if c = client then qid :: acc else acc)
        t.owners []
    in
    List.iter (Hashtbl.remove t.owners) stale
end

(* ------------------------------------------------------------------ *)
(* The select loop *)

type conn = {
  fd : Unix.file_descr;
  id : int;
  dec : Wire.Decoder.t;
  outq : string Queue.t;
  mutable out_off : int;  (** bytes of the queue head already written *)
  mutable saw_eof : bool;
  mutable closing : bool;  (** close once the out queue flushes *)
}

type scrape_conn = {
  sfd : Unix.file_descr;
  req : Buffer.t;
  mutable resp : string;  (** "" until the request is parsed *)
  mutable resp_off : int;
}

let conn_framing c =
  Option.value ~default:Wire.Binary (Wire.Decoder.framing c.dec)

let enqueue c s =
  if not c.closing then Queue.push s c.outq

let has_output c = not (Queue.is_empty c.outq)

let listen_on addr =
  match addr with
  | Unix_sock path ->
    (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let scrape_response ~engine ~timeseries path =
  let reg = Obs.registry (Engine.obs engine) in
  match path with
  | "/metrics" ->
    http_response ~status:"200 OK" ~content_type:"application/json"
      (Obs.Registry.to_json reg)
  | "/metrics.txt" ->
    http_response ~status:"200 OK" ~content_type:"text/plain"
      (Fmt.str "%a" Obs.Registry.pp reg)
  | "/timeseries" -> (
    match timeseries with
    | Some ts ->
      http_response ~status:"200 OK" ~content_type:"application/json"
        (Obs.Timeseries.to_json ts)
    | None ->
      http_response ~status:"404 Not Found" ~content_type:"text/plain"
        "no timeseries configured\n")
  | "/healthz" ->
    http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | _ ->
    http_response ~status:"404 Not Found" ~content_type:"text/plain"
      "unknown path\n"

let serve ?(stop = ref false) ?(exit_on_idle = false) ?on_ready
    ?metrics_listen ?timeseries ~engine ~listen () =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let lsock = listen_on listen in
  let msock = Option.map listen_on metrics_listen in
  let clients : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let scrapes : scrape_conn list ref = ref [] in
  let next_id = ref 0 in
  let served_eof = ref false in
  let rbuf = Bytes.create 65536 in
  Engine.on_emit engine (fun ~client msg ->
      match Hashtbl.find_opt clients client with
      | None -> ()
      | Some c -> enqueue c (Wire.encode (conn_framing c) msg));
  let close_conn c =
    Hashtbl.remove clients c.id;
    Engine.client_gone engine ~client:c.id;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  in
  let close_scrape sc =
    scrapes := List.filter (fun s -> s != sc) !scrapes;
    try Unix.close sc.sfd with Unix.Unix_error _ -> ()
  in
  (* Returns [false] when the connection died. *)
  let write_some_conn c =
    try
      let progressed = ref true in
      while !progressed && not (Queue.is_empty c.outq) do
        let head = Queue.peek c.outq in
        let len = String.length head - c.out_off in
        let n = Unix.write_substring c.fd head c.out_off len in
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0
        end
        else begin
          c.out_off <- c.out_off + n;
          progressed := false
        end
      done;
      true
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      close_conn c;
      false
  in
  let read_conn c =
    let died = ref false in
    (try
       let n = Unix.read c.fd rbuf 0 (Bytes.length rbuf) in
       if n = 0 then died := true
       else Wire.Decoder.feed c.dec (Bytes.sub_string rbuf 0 n)
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error (Unix.ECONNRESET, _, _) -> died := true);
    if !died then close_conn c
    else begin
      let continue = ref (not c.closing) in
      while !continue do
        match Wire.Decoder.next c.dec with
        | Ok None -> continue := false
        | Ok (Some m) ->
          if m = Wire.Eof then c.saw_eof <- true;
          Engine.handle engine ~client:c.id m
        | Error e ->
          enqueue c (Wire.encode (conn_framing c) (Wire.Error_msg e));
          c.closing <- true;
          continue := false
      done
    end
  in
  let read_scrape sc =
    let died = ref false in
    (try
       let n = Unix.read sc.sfd rbuf 0 (Bytes.length rbuf) in
       if n = 0 then died := true
       else Buffer.add_subbytes sc.req rbuf 0 n
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error (Unix.ECONNRESET, _, _) -> died := true);
    if !died then close_scrape sc
    else if sc.resp = "" then begin
      let req = Buffer.contents sc.req in
      let complete =
        (* Headers are irrelevant; the request line is enough. *)
        String.length req > 4
        && (Option.is_some (String.index_opt req '\n'))
      in
      if complete then
        let line =
          match String.index_opt req '\r' with
          | Some i -> String.sub req 0 i
          | None -> String.sub req 0 (String.index req '\n')
        in
        match String.split_on_char ' ' line with
        | "GET" :: path :: _ ->
          sc.resp <- scrape_response ~engine ~timeseries path
        | _ ->
          sc.resp <-
            http_response ~status:"400 Bad Request" ~content_type:"text/plain"
              "only GET is supported\n"
      else if Buffer.length sc.req > 8192 then close_scrape sc
    end
  in
  let write_scrape sc =
    try
      let len = String.length sc.resp - sc.resp_off in
      let n = Unix.write_substring sc.sfd sc.resp sc.resp_off len in
      sc.resp_off <- sc.resp_off + n;
      if sc.resp_off = String.length sc.resp then close_scrape sc
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      close_scrape sc
  in
  let accept_client () =
    match Unix.accept lsock with
    | fd, _ ->
      Unix.set_nonblock fd;
      incr next_id;
      Hashtbl.replace clients !next_id
        {
          fd;
          id = !next_id;
          dec = Wire.Decoder.create ();
          outq = Queue.create ();
          out_off = 0;
          saw_eof = false;
          closing = false;
        }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let accept_scrape sock =
    match Unix.accept sock with
    | fd, _ ->
      Unix.set_nonblock fd;
      scrapes :=
        { sfd = fd; req = Buffer.create 256; resp = ""; resp_off = 0 }
        :: !scrapes
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  Option.iter (fun f -> f ()) on_ready;
  let running = ref true in
  while !running do
    let timeout =
      match Engine.next_wakeup_s engine with
      | Some s -> Float.min 0.25 (Float.max 0.0 s)
      | None -> 0.25
    in
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) clients [] in
    let rfds =
      lsock
      :: (match msock with Some s -> [ s ] | None -> [])
      @ List.map (fun c -> c.fd) (List.filter (fun c -> not c.closing) conns)
      @ List.filter_map
          (fun sc -> if sc.resp = "" then Some sc.sfd else None)
          !scrapes
    in
    let wfds =
      List.map (fun c -> c.fd) (List.filter has_output conns)
      @ List.filter_map
          (fun sc -> if sc.resp <> "" then Some sc.sfd else None)
          !scrapes
    in
    (match Unix.select rfds wfds [] timeout with
    | r, w, _ ->
      Engine.poll engine;
      if List.mem lsock r then accept_client ();
      (match msock with
      | Some s when List.mem s r -> accept_scrape s
      | _ -> ());
      List.iter
        (fun c ->
          if Hashtbl.mem clients c.id && List.mem c.fd r then read_conn c)
        conns;
      List.iter
        (fun sc ->
          if List.memq sc !scrapes && List.mem sc.sfd r then read_scrape sc)
        !scrapes;
      List.iter
        (fun sc ->
          if List.memq sc !scrapes && List.mem sc.sfd w then write_scrape sc)
        !scrapes;
      List.iter
        (fun c ->
          if Hashtbl.mem clients c.id && (List.mem c.fd w || has_output c)
          then
            if write_some_conn c then begin
              if c.closing && not (has_output c) then close_conn c
            end)
        conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Engine.poll engine);
    (* A client that announced Eof and hung up means the replay is
       over; with [exit_on_idle] an empty house then shuts the daemon
       down (CI smoke uses this). *)
    Hashtbl.iter (fun _ c -> if c.saw_eof then served_eof := true) clients;
    if exit_on_idle && !served_eof && Hashtbl.length clients = 0 then
      running := false;
    if !stop then running := false
  done;
  (* Graceful shutdown: no new connections, drain the engine (held
     and buffered queries run to completion, emitting through the
     normal path), tell every client, flush, close. *)
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  Option.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) msock;
  (match listen with
  | Unix_sock path ->
    (try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  (match metrics_listen with
  | Some (Unix_sock path) -> (try Sys.remove path with Sys_error _ -> ())
  | _ -> ());
  Engine.drain engine;
  Hashtbl.iter
    (fun _ c ->
      enqueue c (Wire.encode (conn_framing c) (Wire.Summary (Engine.summary engine)));
      enqueue c (Wire.encode (conn_framing c) Wire.Eof))
    clients;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let flush_pending () =
    Hashtbl.fold (fun _ c acc -> acc || has_output c) clients false
  in
  while flush_pending () && Unix.gettimeofday () < deadline do
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) clients [] in
    let wfds = List.map (fun c -> c.fd) (List.filter has_output conns) in
    match Unix.select [] wfds [] 0.1 with
    | _, w, _ ->
      List.iter
        (fun c ->
          if Hashtbl.mem clients c.id && List.mem c.fd w then
            ignore (write_some_conn c))
        conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) clients [] in
  List.iter close_conn remaining;
  List.iter close_scrape !scrapes
