(* Online arrival-rate forecasting (EWMA and additive Holt–Winters)
   plus the offline perfect-foresight oracle schedule. See the .mli
   for the model and determinism contract.

   Both online models are O(1) per update with all state in a handful
   of floats, so the controller can afford one update per tick even at
   the 1M-query bench scale (the bench's forecast section measures
   ns/update to keep this honest). *)

type model =
  | Ewma of { alpha : float }
  | Holt_winters of {
      alpha : float;
      beta : float;
      gamma : float;
      season : int;
      seasonal : float array;  (* one additive offset per tick-in-cycle *)
      warmup : float array;  (* first cycle's raw samples *)
    }

type t = {
  model : model;
  mutable n : int;  (* samples observed *)
  mutable level : float;
  mutable trend : float;
  (* EWMA of the raw signal, kept by both models: it seeds EWMA
     prediction directly and covers Holt–Winters' first cycle, before
     the seasonal profile exists. *)
  mutable warm_level : float;
}

let check_weight name w =
  if not (w > 0.0 && w <= 1.0) then
    invalid_arg (Printf.sprintf "Forecast.%s: weight must be in (0, 1]" name)

let ewma ?(alpha = 0.4) () =
  check_weight "ewma" alpha;
  { model = Ewma { alpha }; n = 0; level = 0.0; trend = 0.0; warm_level = 0.0 }

let holt_winters ?(alpha = 0.35) ?(beta = 0.1) ?(gamma = 0.3) ~season () =
  check_weight "holt_winters" alpha;
  check_weight "holt_winters" beta;
  check_weight "holt_winters" gamma;
  if season < 2 then invalid_arg "Forecast.holt_winters: season must be >= 2";
  {
    model =
      Holt_winters
        {
          alpha;
          beta;
          gamma;
          season;
          seasonal = Array.make season 0.0;
          warmup = Array.make season 0.0;
        };
    n = 0;
    level = 0.0;
    trend = 0.0;
    warm_level = 0.0;
  }

let name t =
  match t.model with
  | Ewma { alpha } -> Printf.sprintf "ewma(%.2f)" alpha
  | Holt_winters { season; _ } -> Printf.sprintf "hw(%d)" season

let n_obs t = t.n

let ready t =
  match t.model with
  | Ewma _ -> t.n >= 1
  | Holt_winters h -> t.n >= h.season

let observe_warm t y =
  let alpha = match t.model with Ewma { alpha } -> alpha | Holt_winters h -> h.alpha in
  if t.n = 0 then t.warm_level <- y
  else t.warm_level <- t.warm_level +. (alpha *. (y -. t.warm_level))

let observe t y =
  observe_warm t y;
  (match t.model with
  | Ewma _ -> t.level <- t.warm_level
  | Holt_winters h ->
    let p = t.n mod h.season in
    if t.n < h.season then begin
      h.warmup.(p) <- y;
      (* One full cycle seen: level = cycle mean, trend flat, seasonal
         profile = per-slot deviation from the mean. A slope estimate
         from a single cycle would alias the seasonality, so the trend
         starts at zero and is learned by the beta updates. *)
      if t.n = h.season - 1 then begin
        let mean = Array.fold_left ( +. ) 0.0 h.warmup /. Float.of_int h.season in
        t.level <- mean;
        t.trend <- 0.0;
        Array.iteri (fun i v -> h.seasonal.(i) <- v -. mean) h.warmup
      end
    end
    else begin
      let l' = (h.alpha *. (y -. h.seasonal.(p))) +. ((1.0 -. h.alpha) *. (t.level +. t.trend)) in
      t.trend <- (h.beta *. (l' -. t.level)) +. ((1.0 -. h.beta) *. t.trend);
      h.seasonal.(p) <- (h.gamma *. (y -. l')) +. ((1.0 -. h.gamma) *. h.seasonal.(p));
      t.level <- l'
    end);
  t.n <- t.n + 1

let predict t ~horizon =
  if horizon < 1 then invalid_arg "Forecast.predict: horizon must be >= 1";
  if t.n = 0 then 0.0
  else
    match t.model with
    | Ewma _ -> t.level
    | Holt_winters h ->
      if t.n < h.season then t.warm_level
      else
        t.level
        +. (Float.of_int horizon *. t.trend)
        +. h.seasonal.((t.n + horizon - 1) mod h.season)

let spec_doc = "ewma | ewma:ALPHA | hw:SEASON | hw:SEASON:ALPHA:BETA:GAMMA"

let of_spec s =
  let fail () = Error (Printf.sprintf "bad forecaster spec %S (%s)" s spec_doc) in
  let num x = float_of_string_opt x in
  match String.split_on_char ':' s with
  | [ "ewma" ] -> Ok (ewma ())
  | [ "ewma"; a ] -> (
    match num a with
    | Some alpha when alpha > 0.0 && alpha <= 1.0 -> Ok (ewma ~alpha ())
    | _ -> fail ())
  | [ "hw"; p ] -> (
    match int_of_string_opt p with
    | Some season when season >= 2 -> Ok (holt_winters ~season ())
    | _ -> fail ())
  | [ "hw"; p; a; b; g ] -> (
    match (int_of_string_opt p, num a, num b, num g) with
    | Some season, Some alpha, Some beta, Some gamma
      when season >= 2
           && List.for_all (fun w -> w > 0.0 && w <= 1.0) [ alpha; beta; gamma ]
      -> Ok (holt_winters ~alpha ~beta ~gamma ~season ())
    | _ -> fail ())
  | _ -> fail ()

(* ------------------------------------------------------------------ *)
(* The offline oracle. *)

module Oracle = struct
  type schedule = {
    targets : int array;  (* per-window pool target, window w = [w*iv, (w+1)*iv) *)
    interval : float;
    lead : float;
    min_servers : int;
  }

  let schedule ~queries ~interval ~lead ~rho ~min_servers ~max_servers () =
    if interval <= 0.0 then
      invalid_arg "Forecast.Oracle.schedule: interval must be positive";
    if lead < 0.0 then
      invalid_arg "Forecast.Oracle.schedule: lead must be non-negative";
    if rho <= 0.0 then invalid_arg "Forecast.Oracle.schedule: rho must be positive";
    if min_servers < 1 || max_servers < min_servers then
      invalid_arg "Forecast.Oracle.schedule: bad pool bounds";
    let horizon =
      Array.fold_left (fun acc q -> Float.max acc q.Query.arrival) 0.0 queries
    in
    let n_windows = 1 + int_of_float (horizon /. interval) in
    let work = Array.make n_windows 0.0 in
    Array.iter
      (fun q ->
        let w = int_of_float (q.Query.arrival /. interval) in
        let w = min w (n_windows - 1) in
        (* the oracle prices true demand: actual service time, not the
           estimate the online decision makers see *)
        work.(w) <- work.(w) +. q.Query.size)
      queries;
    let targets =
      Array.map
        (fun wk ->
          let needed = int_of_float (Float.ceil (wk /. interval /. rho)) in
          max min_servers (min max_servers needed))
        work
    in
    { targets; interval; lead; min_servers }

  let target s ~now =
    let n = Array.length s.targets in
    if n = 0 then s.min_servers
    else begin
      (* max need over the windows covered by [now, now + lead +
         interval]: capacity requested now must already be there for
         everything landing before a later request could boot. *)
      let first = max 0 (int_of_float (now /. s.interval)) in
      if first >= n then s.min_servers  (* past the trace: drain to the floor *)
      else begin
        let last = int_of_float ((now +. s.lead +. s.interval) /. s.interval) in
        let last = min (max last first) (n - 1) in
        let t = ref s.min_servers in
        for w = first to last do
          if s.targets.(w) > !t then t := s.targets.(w)
        done;
        !t
      end
    end

  let rho_candidates = [| 0.55; 0.7; 0.8; 0.9; 1.0 |]
end
