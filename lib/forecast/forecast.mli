(** Online arrival-rate forecasting for the elastic controller.

    A forecaster is fed one sample per controller tick — any
    per-window rate: an arrival count, or (what the predictive policy
    actually feeds it) the window's margin-priced gain — and asked
    for the expected sample [h] ticks ahead, the window that starts
    once a server booted {e now} would come online. Two models:

    - {!ewma}: exponentially weighted moving average — a level-only
      model, horizon-independent. Robust default when the signal has
      no usable shape.
    - {!holt_winters}: additive Holt–Winters (level + trend +
      seasonal), with the seasonal period in ticks matched to the
      workload's cycle (the elasticity experiment's diurnal schedule
      gives the controller 24 decisions per period, so [season = 24]).
      Until one full season has been observed it falls back to an
      EWMA level; from then on every update is O(1).

    All state is explicit and every update deterministic, so a run
    that feeds the forecaster from a deterministic tick sequence stays
    byte-identical at any [-j].

    {!Oracle} is the offline counterpart: a perfect-foresight pool
    schedule computed from the full query trace, used as the upper
    bound in the reactive-vs-predictive-vs-oracle comparison. *)

type t

(** [ewma ~alpha ()] — level [l <- alpha*y + (1-alpha)*l], seeded by
    the first sample. Default [alpha = 0.4] (heavier than the classic
    0.1–0.3 because the controller takes only 24 samples per diurnal
    period). Raises [Invalid_argument] unless [0 < alpha <= 1]. *)
val ewma : ?alpha:float -> unit -> t

(** [holt_winters ~season ()] — additive Holt–Winters with [season]
    ticks per cycle. Defaults: [alpha = 0.35], [beta = 0.1],
    [gamma = 0.3]. Raises [Invalid_argument] unless [season >= 2] and
    each smoothing weight is in (0, 1]. *)
val holt_winters :
  ?alpha:float -> ?beta:float -> ?gamma:float -> season:int -> unit -> t

(** ["ewma(0.40)"] or ["hw(24)"] — for labels and trace args. *)
val name : t -> string

(** Feed one sample (any non-negative per-tick level). *)
val observe : t -> float -> unit

(** Samples observed so far. *)
val n_obs : t -> int

(** The model has enough history to forecast shape: one sample for
    EWMA, one full season for Holt–Winters (before that its forecast
    is a smoothed level that can never anticipate a rise). *)
val ready : t -> bool

(** Expected sample [horizon >= 1] ticks ahead. 0 before the first
    observation; may go negative once a Holt–Winters trend points
    down — callers forecasting a rate should clamp at 0. Raises
    [Invalid_argument] on [horizon < 1]. *)
val predict : t -> horizon:int -> float

(** Parse a forecaster spec: ["ewma"], ["ewma:ALPHA"], ["hw:SEASON"],
    or ["hw:SEASON:ALPHA:BETA:GAMMA"]. *)
val of_spec : string -> (t, string) result

(** Grammar accepted by {!of_spec}, for [--help] texts. *)
val spec_doc : string

(** Offline perfect-foresight pool schedules — the oracle the online
    policies are compared against. *)
module Oracle : sig
  type schedule

  (** [schedule ~queries ~interval ~lead ~rho ~min_servers
      ~max_servers ()] buckets the trace's {e true} offered work
      (actual service demand, not estimates) into [interval]-wide
      windows and sizes the pool so each window runs at utilization
      [rho]: [needed(w) = ceil(work(w) / interval / rho)], clamped to
      the pool bounds. [lead] is the boot delay the schedule must
      hide: the target at decision time [t] is the maximum need over
      the windows covered by [t .. t + lead + interval], so capacity
      requested now is ready when that demand lands. Raises
      [Invalid_argument] on a non-positive [interval] or [rho], a
      negative [lead], or bad pool bounds. *)
  val schedule :
    queries:Query.t array ->
    interval:float ->
    lead:float ->
    rho:float ->
    min_servers:int ->
    max_servers:int ->
    unit ->
    schedule

  (** Pool target at decision instant [now]. After the last arrival
      the target decays to [min_servers]. *)
  val target : schedule -> now:float -> int

  (** The utilization grid {!val:schedule} is swept over when the
      caller wants the best offline candidate, densest around the
      0.7–0.9 band where queueing delay starts to eat profit. *)
  val rho_candidates : float array
end
