(** The augmented, pointer-cascaded balanced search tree of paper Sec 5.

    One tree instance serves either as the slack tree [S+] or the
    tardiness tree [S-]; the only difference is the comparison {!mode}
    used when querying. Building over [M] units costs [O(M log M)]
    time and space; each prefix question costs [O(log M)]. *)

type t

(** [Lt] counts units with [key < tau] (slack tree: postponing by [tau]
    misses deadlines with slack strictly below [tau]); [Le] counts
    [key <= tau] (tardiness tree: expediting by [tau] rescues tardiness
    up to and including [tau]). *)
type mode = Lt | Le

(** [build units] sorts the units by [slack] (interpreted as the tree
    key, so pass tardiness values for [S-]) and builds the tree. *)
val build : Slack_units.t array -> t

val unit_count : t -> int

(** [prefix_loss t mode ~n ~tau] is the total gain of units whose
    buffer position is [<= n] and whose key satisfies the mode's
    comparison against [tau]. This is the paper's [postpone(1, n, tau)]
    (resp. [expedite]) primitive. O(log M). *)
val prefix_loss : t -> mode -> n:int -> tau:float -> float

(** The paper's pointer-free first implementation (Sec 3.3.3): same
    answer as {!prefix_loss} but with one binary search per visited
    level — [O(log^2 M)]. Ablation baseline for the fractional
    cascading of Sec 5. *)
val prefix_loss_binary_search : t -> mode -> n:int -> tau:float -> float

(** Total gain of units with buffer position [<= n], regardless of
    key. O(log M). *)
val prefix_total : t -> n:int -> float

(** Total gain of all units in the tree. *)
val total : t -> float

(** Assert every structural invariant (splits separate keys, id lists
    sorted, cumulative gains consistent, cascading pointers correct).
    O(M^2); for tests only. *)
val check_invariants : t -> unit

(** Height of the tree (0 when empty). *)
val depth : t -> int
