(** Expansion of an ordered, scheduled buffer into g/0 units.

    The general-SLA handling of the paper (Sec 4) reduces every query to
    at most [K] units, each a (buffer position, slack, gain) triple. *)

type t = {
  uid : int;  (** position of the owning query in the buffer order *)
  slack : float;  (** deadline minus scheduled completion; may be < 0 *)
  gain : float;  (** profit at stake; > 0 by construction *)
}

(** One unit per positive-gain SLA component of every scheduled query,
    in buffer order then level order. *)
val of_schedule : Schedule.entry array -> t array

(** [partition units] splits into (slack units, tardiness units); the
    second component has the sign of [slack] flipped so both arrays
    carry non-negative keys. *)
val partition : t array -> t array * t array
