(** Scheduled start times for an ordered query buffer.

    The SLA-tree requires a known execution order (paper Sec 8.1); this
    module turns that order plus the server-free time into per-query
    scheduled starts, using estimated execution times. *)

type entry = { query : Query.t; start : float }

(** [of_queries ~now queries] schedules the array back-to-back starting
    at [now], in array order. *)
val of_queries : now:float -> Query.t array -> entry array

(** Scheduled completion ([start + est_size]). *)
val completion : entry -> float

(** [slack e ~bound] is the level deadline minus scheduled completion;
    negative values are tardiness. *)
val slack : entry -> bound:float -> float

val total_estimated_work : Query.t array -> float
