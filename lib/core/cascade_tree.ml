(* The augmented balanced search tree of paper Sec 5 (Figs 11-14).

   Leaves are g/0 units sorted by key (slack in S+, tardiness in S-).
   Every internal node stores:
     - [split]: a value separating left-subtree keys from right-subtree
       keys (the paper's node slack value d_tau);
     - [ids]: the buffer positions of its descendant units, sorted,
       with duplicates (several units of the same query) merged;
     - [cum]: cum.(j) = total gain of descendants with id <= ids.(j);
     - [lp]/[rp]: for each entry, the index in the left/right child's
       id list of the largest id <= ids.(j), or -1 (the fractional-
       cascading pointers that replace per-level binary searches).

   One binary search at the root then O(1) work per level answers the
   prefix question "total gain of units with id <= n and key </<= tau"
   in O(log M) for M units. *)

type node =
  | Leaf of { key : float; uid : int; gain : float }
  | Node of {
      split : float;
      left : node;
      right : node;
      ids : int array;
      cum : float array;
      lp : int array;
      rp : int array;
    }

type t = { root : node option; unit_count : int }

(* Which comparison "key vs tau" selects a unit. The slack tree uses
   [Lt] (postponing by tau kills slack < tau; slack = tau still meets
   the deadline); the tardiness tree uses [Le] (expediting by tau
   rescues tardiness <= tau). *)
type mode = Lt | Le

let node_ids = function
  | Leaf { uid; _ } -> [| uid |]
  | Node { ids; _ } -> ids

let node_gains = function
  | Leaf { gain; _ } -> [| gain |]
  | Node { cum; _ } ->
    Array.mapi (fun j c -> if j = 0 then c else c -. cum.(j - 1)) cum

(* Cumulative gain of entries 0..j of a node's id list. *)
let cum_at node j =
  match node with
  | Leaf { gain; _ } ->
    assert (j = 0);
    gain
  | Node { cum; _ } -> cum.(j)

(* Merge the id lists of two children into the parent's annotated list
   (paper Fig 13). Gains of equal ids are summed; [lp]/[rp] record, for
   each merged entry, the last index of the respective child whose id
   is <= the entry's id. *)
let merge_ids (lids, lgains) (rids, rgains) =
  let nl = Array.length lids and nr = Array.length rids in
  let n_est = nl + nr in
  let ids = Array.make n_est 0 in
  let gains = Array.make n_est 0.0 in
  let lp = Array.make n_est (-1) in
  let rp = Array.make n_est (-1) in
  let li = ref 0 and ri = ref 0 and k = ref 0 in
  while !li < nl || !ri < nr do
    let take_left = !ri >= nr || (!li < nl && lids.(!li) <= rids.(!ri)) in
    let take_right = !li >= nl || (!ri < nr && rids.(!ri) <= lids.(!li)) in
    let id, gain =
      if take_left && take_right then begin
        let id = lids.(!li) in
        let g = lgains.(!li) +. rgains.(!ri) in
        incr li;
        incr ri;
        (id, g)
      end
      else if take_left then begin
        let id = lids.(!li) in
        let g = lgains.(!li) in
        incr li;
        (id, g)
      end
      else begin
        let id = rids.(!ri) in
        let g = rgains.(!ri) in
        incr ri;
        (id, g)
      end
    in
    ids.(!k) <- id;
    gains.(!k) <- gain;
    lp.(!k) <- !li - 1;
    rp.(!k) <- !ri - 1;
    incr k
  done;
  let n = !k in
  ( Array.sub ids 0 n,
    Array.sub gains 0 n,
    Array.sub lp 0 n,
    Array.sub rp 0 n )

let build units =
  let m = Array.length units in
  if m = 0 then { root = None; unit_count = 0 }
  else begin
    let sorted = Array.copy units in
    (* Sort by key; tie-break by uid for determinism. *)
    Array.sort
      (fun a b ->
        let c = Float.compare a.Slack_units.slack b.Slack_units.slack in
        if c <> 0 then c else Int.compare a.Slack_units.uid b.Slack_units.uid)
      sorted;
    (* Recursive halving of the sorted slice: equivalent to the paper's
       bottom-up pairwise merge, O(M log M) total. Returns the node and
       its (ids, gains) lists so the parent can merge without
       re-deriving raw gains from cumulative ones. *)
    let rec go lo hi =
      if hi - lo = 1 then begin
        let u = sorted.(lo) in
        ( Leaf { key = u.Slack_units.slack; uid = u.uid; gain = u.gain },
          [| u.uid |],
          [| u.gain |] )
      end
      else begin
        let mid = (lo + hi) / 2 in
        let left, lids, lgains = go lo mid in
        let right, rids, rgains = go mid hi in
        let split =
          (sorted.(mid - 1).Slack_units.slack +. sorted.(mid).Slack_units.slack)
          /. 2.0
        in
        let ids, gains, lp, rp = merge_ids (lids, lgains) (rids, rgains) in
        let cum = Array.make (Array.length gains) 0.0 in
        let acc = ref 0.0 in
        Array.iteri
          (fun j g ->
            acc := !acc +. g;
            cum.(j) <- !acc)
          gains;
        (Node { split; left; right; ids; cum; lp; rp }, ids, gains)
      end
    in
    let root, _, _ = go 0 m in
    { root = Some root; unit_count = m }
  end

let unit_count t = t.unit_count

(* Total gain of units with id <= n and key < tau (mode Lt) or
   key <= tau (mode Le). O(log M). *)
let prefix_loss t mode ~n ~tau =
  match t.root with
  | None -> 0.0
  | Some root ->
    let rec go node i acc =
      if i < 0 then acc
      else begin
        match node with
        | Leaf { key; gain; _ } ->
          let hit = match mode with Lt -> key < tau | Le -> key <= tau in
          if hit then acc +. gain else acc
        | Node { split; left; right; lp; rp; _ } ->
          let descend_left_only =
            match mode with Lt -> tau <= split | Le -> tau < split
          in
          if descend_left_only then go left lp.(i) acc
          else begin
            let from_left = if lp.(i) < 0 then 0.0 else cum_at left lp.(i) in
            go right rp.(i) (acc +. from_left)
          end
      end
    in
    let i = Arrayx.find_last_leq Int.compare (node_ids root) n in
    go root i 0.0

(* The paper's first, pointer-free implementation (Sec 3.3.3): walk
   the same tree but re-run a binary search over the descendant list
   of every left child that gets counted, O(log^2 M) per question.
   Kept as the ablation baseline for the fractional-cascading claim
   (Sec 5.1) and as an independent oracle in the tests. *)
let prefix_loss_binary_search t mode ~n ~tau =
  match t.root with
  | None -> 0.0
  | Some root ->
    let count_left left =
      let ids = node_ids left in
      let j = Arrayx.find_last_leq Int.compare ids n in
      if j < 0 then 0.0 else cum_at left j
    in
    let rec go node acc =
      match node with
      | Leaf { key; gain; uid } ->
        let hit = match mode with Lt -> key < tau | Le -> key <= tau in
        if hit && uid <= n then acc +. gain else acc
      | Node { split; left; right; _ } ->
        let descend_left_only =
          match mode with Lt -> tau <= split | Le -> tau < split
        in
        if descend_left_only then go left acc
        else go right (acc +. count_left left)
    in
    go root 0.0

(* Total gain of units with id <= n, regardless of key. O(log M) for
   the root search only. *)
let prefix_total t ~n =
  match t.root with
  | None -> 0.0
  | Some root ->
    let i = Arrayx.find_last_leq Int.compare (node_ids root) n in
    if i < 0 then 0.0 else cum_at root i

let total t =
  match t.root with
  | None -> 0.0
  | Some root ->
    let ids = node_ids root in
    cum_at root (Array.length ids - 1)

(* Structural invariants, used by the test suite:
   - a node's split separates its subtrees' keys;
   - id lists are strictly increasing;
   - cumulative gains are consistent with children;
   - pointers index the largest child id <= the entry id. *)
let check_invariants t =
  (* Accumulator-based collection: [keys left @ keys right] is
     quadratic on the left-spine-heavy trees the builder produces. *)
  let keys node =
    let rec go acc = function
      | Leaf { key; _ } -> key :: acc
      | Node { left; right; _ } -> go (go acc right) left
    in
    go [] node
  in
  let rec go = function
    | Leaf _ -> ()
    | Node { split; left; right; ids; cum; lp; rp } as node ->
      let lkeys = keys left and rkeys = keys right in
      List.iter (fun k -> assert (k <= split)) lkeys;
      List.iter (fun k -> assert (k >= split)) rkeys;
      assert (Arrayx.is_strictly_sorted Int.compare ids);
      let lids = node_ids left and rids = node_ids right in
      let lgains = node_gains left and rgains = node_gains right in
      let gain_of ids gains id =
        let j = Arrayx.find_last_leq Int.compare ids id in
        if j >= 0 && ids.(j) = id then gains.(j) else 0.0
      in
      let acc = ref 0.0 in
      Array.iteri
        (fun j id ->
          acc := !acc +. gain_of lids lgains id +. gain_of rids rgains id;
          assert (Float.abs (cum.(j) -. !acc) <= 1e-9 *. (1.0 +. Float.abs !acc));
          assert (lp.(j) = Arrayx.find_last_leq Int.compare lids id);
          assert (rp.(j) = Arrayx.find_last_leq Int.compare rids id))
        ids;
      ignore node;
      go left;
      go right
  in
  Option.iter go t.root

let rec depth_of = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + max (depth_of left) (depth_of right)

let depth t = match t.root with None -> 0 | Some n -> depth_of n
