(** The SLA-tree (paper Secs 3-5): slack tree [S+] plus tardiness tree
    [S-] over a buffer of queries with a known execution order.

    Build cost is [O(NK log NK)] for [N] queries with at most [K] SLA
    levels each; every question below is [O(log NK)]. Positions are
    0-based buffer indices; ranges are inclusive. *)

type t

(** Which representation backs the tree: [Flat] (default) is the
    arena-backed structure-of-arrays layout; [Boxed] is the original
    per-node representation, kept as the bit-identical oracle. *)
type impl = Flat | Boxed

(** Reusable backing store for [Flat] builds. An arena holds one live
    tree: building into it again invalidates the previous tree. Do not
    share across domains. *)
type arena = Flat_sla_tree.arena

val create_arena : unit -> arena

(** [build ~now queries] schedules [queries] back-to-back from [now]
    (the order of the array is the execution order) and builds both
    trees. [?impl] selects the representation (default [Flat]);
    [?arena] reuses backing storage for [Flat] builds (ignored for
    [Boxed]). *)
val build : ?impl:impl -> ?arena:arena -> now:float -> Query.t array -> t

(** Build over custom scheduled starts. *)
val of_entries :
  ?impl:impl -> ?arena:arena -> now:float -> Schedule.entry array -> t

(** The representation backing this tree. *)
val impl : t -> impl

val length : t -> int
val now : t -> float
val entries : t -> Schedule.entry array
val entry : t -> int -> Schedule.entry

(** (slack units, tardiness units). *)
val unit_counts : t -> int * int

(** [postpone t ~m ~n ~tau]: profit lost if queries [m..n] start [tau]
    later than scheduled. On an empty buffer every probe answers [0.0];
    otherwise raises [Invalid_argument] on a bad range. Negative [tau]
    always raises. *)
val postpone : t -> m:int -> n:int -> tau:float -> float

(** [expedite t ~m ~n ~tau]: profit gained if queries [m..n] start
    [tau] earlier than scheduled. Empty-buffer probes answer [0.0]. *)
val expedite : t -> m:int -> n:int -> tau:float -> float

(** Gains of on-time units among queries [0..n] (still earnable). *)
val profit_at_stake : t -> n:int -> float

val total_profit_at_stake : t -> float

(** Gains of late units among queries [0..n] (recoverable by
    expediting). *)
val recoverable_profit : t -> n:int -> float

val total_recoverable_profit : t -> float
