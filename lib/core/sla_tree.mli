(** The SLA-tree (paper Secs 3-5): slack tree [S+] plus tardiness tree
    [S-] over a buffer of queries with a known execution order.

    Build cost is [O(NK log NK)] for [N] queries with at most [K] SLA
    levels each; every question below is [O(log NK)]. Positions are
    0-based buffer indices; ranges are inclusive. *)

type t

(** [build ~now queries] schedules [queries] back-to-back from [now]
    (the order of the array is the execution order) and builds both
    trees. *)
val build : now:float -> Query.t array -> t

(** Build over custom scheduled starts. *)
val of_entries : now:float -> Schedule.entry array -> t

val length : t -> int
val now : t -> float
val entries : t -> Schedule.entry array
val entry : t -> int -> Schedule.entry

(** (slack units, tardiness units). *)
val unit_counts : t -> int * int

(** [postpone t ~m ~n ~tau]: profit lost if queries [m..n] start [tau]
    later than scheduled. Raises [Invalid_argument] on a bad range or
    negative [tau]. *)
val postpone : t -> m:int -> n:int -> tau:float -> float

(** [expedite t ~m ~n ~tau]: profit gained if queries [m..n] start
    [tau] earlier than scheduled. *)
val expedite : t -> m:int -> n:int -> tau:float -> float

(** Gains of on-time units among queries [0..n] (still earnable). *)
val profit_at_stake : t -> n:int -> float

val total_profit_at_stake : t -> float

(** Gains of late units among queries [0..n] (recoverable by
    expediting). *)
val recoverable_profit : t -> n:int -> float

val total_recoverable_profit : t -> float
