(* Incremental SLA-tree — the paper's stated future work (Sec 9).

   The static SLA-tree must be rebuilt from scratch whenever the buffer
   or the schedule changes. Three observations make the common FCFS
   life cycle (head executes; new queries append at the tail)
   incremental:

   1. POP IS FREE. Executing the head leaves every other query's
      scheduled start unchanged (when the execution takes exactly its
      estimate), so the stored slacks stay valid; we only narrow the
      live id range, which the prefix questions support natively.

   2. DRIFT IS A QUERY SHIFT, NOT AN UPDATE. When an execution takes
      [actual] instead of [estimated], every remaining start shifts by
      the same [actual - estimated]. The whole live buffer therefore
      sits on a fixed *planned* timeline plus one scalar [delay]; a
      unit with stored (planned) slack [s] has true slack [s - delay],
      and the uniform shift moves into the *question* instead of the
      tree:

        postpone counts  0 <= s - delay < tau
          -> S+ gives  Lt(tau + delay) - Lt(delay)
             S- gives  Le(-delay) - Le(-delay - tau)   (units whose
             lateness the drift erased, when delay < 0)
        expedite counts  0 < t + delay <= tau  for S- tardiness t,
          plus S+ units the drift made late:
          -> S- gives  Le(tau - delay) - Le(-delay)
             S+ gives  Lt(delay) - Lt(delay - tau)

   3. APPENDS ARE LOCAL. A query appended at the tail postpones nobody;
      its units go to a small pending overflow on the same planned
      timeline, scanned naively, and a full rebuild happens only when
      the overflow outgrows a fraction of the live buffer — classic
      lazy-rebuild amortization.

   Amortized costs: pop O(1); append O(K) amortized (rebuild cost
   spread over the appends that caused it); each question
   O(log NK + BK) where B is the bounded overflow size. *)

type pending_unit = { p_slack : float; p_gain : float }
(* Planned-timeline slack of one unit of a pending query; negative
   means tardiness. True slack = p_slack - delay, like the trees. *)

(* Observability handles, resolved once per [create] against the run's
   registry (absent on the noop sink, so the hot paths pay a single
   option match). Counter names are shared across instances: every
   tree of a run aggregates into the same series. *)
type stats = {
  s_rebuilds : Obs.Registry.counter;
  s_appends : Obs.Registry.counter;
  s_pops : Obs.Registry.counter;
  s_postpones : Obs.Registry.counter;
  s_expedites : Obs.Registry.counter;
}

type t = {
  mutable slack_tree : Cascade_tree.t;
  mutable tardy_tree : Cascade_tree.t;
  mutable base_entries : Schedule.entry array;  (** planned starts *)
  mutable head : int;  (** base entries [0 .. head-1] already executed *)
  mutable delay : float;  (** true time = planned time + delay *)
  mutable pending : (Query.t * float * pending_unit list) list;
      (** newest first; the [float] is the query's planned start *)
  mutable pending_cache : (Query.t * float * pending_unit list) array option;
      (** [pending] reversed into arrival order, memoized between
          appends so questions do not re-allocate it *)
  mutable pending_n : int;
  mutable tail_time : float;  (** planned end of the current schedule *)
  mutable rebuilds : int;
  stats : stats option;
}

let bump stats f =
  match stats with None -> () | Some s -> Obs.Registry.incr (f s)

let live_base t = Array.length t.base_entries - t.head
let length t = live_base t + t.pending_n
let rebuild_count t = t.rebuilds
let pending_count t = t.pending_n
let delay t = t.delay

let units_of_query query ~start =
  let entry = { Schedule.query; start } in
  let comps, _ = Sla.decompose query.Query.sla in
  List.map
    (fun { Sla.comp_bound; comp_gain } ->
      { p_slack = Schedule.slack entry ~bound:comp_bound; p_gain = comp_gain })
    comps

(* The current live schedule with true starts — also the oracle the
   test suite compares against. *)
let to_entries t =
  let base =
    Array.sub t.base_entries t.head (live_base t)
    |> Array.map (fun e -> { e with Schedule.start = e.Schedule.start +. t.delay })
  in
  (* Pending queries carry their own planned starts: [t.tail_time]
     already includes them, so deriving their positions from it would
     shift the block by its own total size once the base drains. *)
  let pending =
    List.rev_map
      (fun (q, start, _) -> { Schedule.query = q; start = start +. t.delay })
      t.pending
  in
  Array.append base (Array.of_list pending)

(* Rebuild both trees over the true-start live schedule; the planned
   timeline is re-anchored to the true one (delay returns to 0). *)
let rebuild t =
  let entries = to_entries t in
  let units = Slack_units.of_schedule entries in
  let pos, neg = Slack_units.partition units in
  (* Compute the new (true) tail before resetting [delay], which the
     empty-buffer case still needs. *)
  let tail_time =
    if Array.length entries > 0 then
      Schedule.completion entries.(Array.length entries - 1)
    else t.tail_time +. t.delay
  in
  t.slack_tree <- Cascade_tree.build pos;
  t.tardy_tree <- Cascade_tree.build neg;
  t.base_entries <- entries;
  t.head <- 0;
  t.delay <- 0.0;
  t.pending <- [];
  t.pending_cache <- Some [||];
  t.pending_n <- 0;
  t.tail_time <- tail_time;
  t.rebuilds <- t.rebuilds + 1;
  bump t.stats (fun s -> s.s_rebuilds)

let create ?(obs = Obs.noop) ~now queries =
  let entries = Schedule.of_queries ~now queries in
  let units = Slack_units.of_schedule entries in
  let pos, neg = Slack_units.partition units in
  let stats =
    if not (Obs.enabled obs) then None
    else begin
      let reg = Obs.registry obs in
      Some
        {
          s_rebuilds = Obs.Registry.counter reg "sla_tree.rebuilds";
          s_appends = Obs.Registry.counter reg "sla_tree.appends";
          s_pops = Obs.Registry.counter reg "sla_tree.pops";
          s_postpones = Obs.Registry.counter reg "whatif.postpone_calls";
          s_expedites = Obs.Registry.counter reg "whatif.expedite_calls";
        }
    end
  in
  {
    slack_tree = Cascade_tree.build pos;
    tardy_tree = Cascade_tree.build neg;
    base_entries = entries;
    head = 0;
    delay = 0.0;
    pending = [];
    pending_cache = Some [||];
    pending_n = 0;
    tail_time =
      (if Array.length entries > 0 then
         Schedule.completion entries.(Array.length entries - 1)
       else now);
    rebuilds = 0;
    stats;
  }

let maybe_rebuild t =
  let live = length t in
  if
    t.pending_n > max 8 (live / 2)
    || t.head > max 16 (Array.length t.base_entries / 2)
  then rebuild t

(* FCFS arrival: the query starts when the current schedule ends. *)
let append t query =
  bump t.stats (fun s -> s.s_appends);
  let start = t.tail_time in
  t.pending <- (query, start, units_of_query query ~start) :: t.pending;
  t.pending_cache <- None;
  t.pending_n <- t.pending_n + 1;
  t.tail_time <- start +. query.Query.est_size;
  maybe_rebuild t

(* The head of the buffer was executed, taking [actual] time (defaults
   to its estimate). Everything downstream shifts by the difference. *)
let rec pop_head ?actual t =
  if length t = 0 then invalid_arg "Incr_sla_tree.pop_head: empty buffer";
  if live_base t = 0 then begin
    (* Only pending queries left: promote them, then pop for real. *)
    rebuild t;
    pop_head ?actual t
  end
  else begin
    bump t.stats (fun s -> s.s_pops);
    let e = t.base_entries.(t.head) in
    let est = e.Schedule.query.Query.est_size in
    let actual = Option.value actual ~default:est in
    t.head <- t.head + 1;
    t.delay <- t.delay +. (actual -. est);
    if length t = 0 then begin
      (* Drained: re-anchor the planned timeline at the true instant
         the server became free. *)
      t.base_entries <- [||];
      t.head <- 0;
      t.tail_time <- e.Schedule.start +. est +. t.delay;
      t.delay <- 0.0
    end
    else maybe_rebuild t
  end

(* Next query to execute: head of the live base, or the oldest pending
   query when the base is exhausted. *)
let peek t =
  if live_base t > 0 then Some t.base_entries.(t.head).Schedule.query
  else
    match t.pending with
    | [] -> None
    | (newest, _, _) :: rest ->
      (* [pending] is newest-first; the oldest is the list's last. *)
      Some (List.fold_left (fun _ (q, _, _) -> q) newest rest)

(* The server idled past the schedule's end (a gap in arrivals): the
   next query starts at [now] instead. Only meaningful when empty.
   [now] may sit an ulp *before* the drained anchor — the caller's
   clock and the planned timeline accumulate rounding differently —
   so no monotonicity check. *)
let reset_origin t ~now =
  if length t > 0 then
    invalid_arg "Incr_sla_tree.reset_origin: buffer must be empty";
  t.tail_time <- now

let check_range t ~m ~n =
  let len = length t in
  if m < 0 || n >= len || m > n then
    invalid_arg
      (Printf.sprintf "Incr_sla_tree: bad range [%d, %d] for %d queries" m n len)

(* Delay-shifted prefix questions over base ids <= [abs_id]. Popped
   ids (< head) are excluded by subtracting their prefix. *)
let base_prefix mode_sum t ~abs_id =
  if abs_id < t.head then 0.0
  else begin
    let at id = if id < 0 then 0.0 else mode_sum id in
    at abs_id -. at (t.head - 1)
  end

let base_prefix_postpone t ~abs_id ~tau =
  let d = t.delay in
  base_prefix
    (fun id ->
      let lt x = Cascade_tree.prefix_loss t.slack_tree Cascade_tree.Lt ~n:id ~tau:x in
      let le x = Cascade_tree.prefix_loss t.tardy_tree Cascade_tree.Le ~n:id ~tau:x in
      lt (tau +. d) -. lt d +. (le (-.d) -. le (-.d -. tau)))
    t ~abs_id

let base_prefix_expedite t ~abs_id ~tau =
  let d = t.delay in
  base_prefix
    (fun id ->
      let lt x = Cascade_tree.prefix_loss t.slack_tree Cascade_tree.Lt ~n:id ~tau:x in
      let le x = Cascade_tree.prefix_loss t.tardy_tree Cascade_tree.Le ~n:id ~tau:x in
      le (tau -. d) -. le (-.d) +. (lt d -. lt (d -. tau)))
    t ~abs_id

(* Scan the pending overflow for pending positions [lo .. hi] (arrival
   order). *)
let pending_array t =
  match t.pending_cache with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev t.pending) in
    t.pending_cache <- Some a;
    a

let pending_scan t ~lo ~hi ~f =
  let arr = pending_array t in
  let acc = ref 0.0 in
  for i = lo to hi do
    let _, _, units = arr.(i) in
    List.iter (fun u -> acc := !acc +. f u) units
  done;
  !acc

let postpone t ~m ~n ~tau =
  bump t.stats (fun s -> s.s_postpones);
  check_range t ~m ~n;
  if tau < 0.0 then invalid_arg "Incr_sla_tree.postpone: negative tau";
  if tau = 0.0 then 0.0
  else begin
    let lb = live_base t in
    let d = t.delay in
    let base_part =
      if m >= lb then 0.0
      else begin
        let hi = min n (lb - 1) in
        base_prefix_postpone t ~abs_id:(t.head + hi) ~tau
        -.
        (if m = 0 then 0.0
         else base_prefix_postpone t ~abs_id:(t.head + m - 1) ~tau)
      end
    in
    let pend_part =
      if n < lb then 0.0
      else
        pending_scan t ~lo:(max 0 (m - lb)) ~hi:(n - lb) ~f:(fun u ->
            let s = u.p_slack -. d in
            if s >= 0.0 && s < tau then u.p_gain else 0.0)
    in
    base_part +. pend_part
  end

let expedite t ~m ~n ~tau =
  bump t.stats (fun s -> s.s_expedites);
  check_range t ~m ~n;
  if tau < 0.0 then invalid_arg "Incr_sla_tree.expedite: negative tau";
  if tau = 0.0 then 0.0
  else begin
    let lb = live_base t in
    let d = t.delay in
    let base_part =
      if m >= lb then 0.0
      else begin
        let hi = min n (lb - 1) in
        base_prefix_expedite t ~abs_id:(t.head + hi) ~tau
        -.
        (if m = 0 then 0.0
         else base_prefix_expedite t ~abs_id:(t.head + m - 1) ~tau)
      end
    in
    let pend_part =
      if n < lb then 0.0
      else
        pending_scan t ~lo:(max 0 (m - lb)) ~hi:(n - lb) ~f:(fun u ->
            let s = u.p_slack -. d in
            if s < 0.0 && -.s <= tau then u.p_gain else 0.0)
    in
    base_part +. pend_part
  end
