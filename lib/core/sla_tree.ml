(* The SLA-tree facade: a slack tree S+ and a tardiness tree S- over an
   ordered, scheduled query buffer, answering the paper's two key
   questions (Sec 3.1):

     postpone(m, n, tau): profit lost if queries m..n (0-based,
       inclusive) are postponed by tau;
     expedite(m, n, tau): profit gained if queries m..n are expedited
       by tau.

   Both use the additive property postpone(m,n,t) = postpone(0,n,t) -
   postpone(0,m-1,t) and cost O(log NK) after the O(NK log NK) build. *)

type t = {
  entries : Schedule.entry array;
  slack_tree : Cascade_tree.t;
  tardy_tree : Cascade_tree.t;
  now : float;
}

let of_entries ~now entries =
  let units = Slack_units.of_schedule entries in
  let slack_units, tardy_units = Slack_units.partition units in
  {
    entries;
    slack_tree = Cascade_tree.build slack_units;
    tardy_tree = Cascade_tree.build tardy_units;
    now;
  }

let build ~now queries = of_entries ~now (Schedule.of_queries ~now queries)

let length t = Array.length t.entries
let now t = t.now
let entries t = t.entries

let entry t i =
  if i < 0 || i >= Array.length t.entries then
    invalid_arg "Sla_tree.entry: index out of bounds";
  t.entries.(i)

let unit_counts t =
  (Cascade_tree.unit_count t.slack_tree, Cascade_tree.unit_count t.tardy_tree)

let check_range t ~m ~n =
  let len = Array.length t.entries in
  if m < 0 || n >= len || m > n then
    invalid_arg
      (Printf.sprintf "Sla_tree: bad range [%d, %d] for %d queries" m n len)

let prefix tree mode ~n ~tau =
  if n < 0 then 0.0 else Cascade_tree.prefix_loss tree mode ~n ~tau

let postpone t ~m ~n ~tau =
  check_range t ~m ~n;
  if tau < 0.0 then invalid_arg "Sla_tree.postpone: tau must be non-negative";
  if tau = 0.0 then 0.0
  else
    prefix t.slack_tree Cascade_tree.Lt ~n ~tau
    -. prefix t.slack_tree Cascade_tree.Lt ~n:(m - 1) ~tau

let expedite t ~m ~n ~tau =
  check_range t ~m ~n;
  if tau < 0.0 then invalid_arg "Sla_tree.expedite: tau must be non-negative";
  if tau = 0.0 then 0.0
  else
    prefix t.tardy_tree Cascade_tree.Le ~n ~tau
    -. prefix t.tardy_tree Cascade_tree.Le ~n:(m - 1) ~tau

(* Profit currently at stake (still earnable) among queries 0..n: the
   gains of all their on-time units. *)
let profit_at_stake t ~n =
  if n < 0 then 0.0 else Cascade_tree.prefix_total t.slack_tree ~n

let total_profit_at_stake t = Cascade_tree.total t.slack_tree

(* Profit already forfeited (late units) among queries 0..n that could
   in principle be recovered by expediting. *)
let recoverable_profit t ~n =
  if n < 0 then 0.0 else Cascade_tree.prefix_total t.tardy_tree ~n

let total_recoverable_profit t = Cascade_tree.total t.tardy_tree
