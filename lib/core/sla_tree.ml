(* The SLA-tree facade: a slack tree S+ and a tardiness tree S- over an
   ordered, scheduled query buffer, answering the paper's two key
   questions (Sec 3.1):

     postpone(m, n, tau): profit lost if queries m..n (0-based,
       inclusive) are postponed by tau;
     expedite(m, n, tau): profit gained if queries m..n are expedited
       by tau.

   Both use the additive property postpone(m,n,t) = postpone(0,n,t) -
   postpone(0,m-1,t) and cost O(log NK) after the O(NK log NK) build.

   Two interchangeable representations sit behind the facade: the flat
   arena-backed structure-of-arrays tree (the default) and the original
   boxed node tree, kept as the bit-identical oracle the equivalence
   suite compares against. *)

type impl = Flat | Boxed

type repr =
  | Flat_repr of Flat_sla_tree.t
  | Boxed_repr of { slack_tree : Cascade_tree.t; tardy_tree : Cascade_tree.t }

type t = { entries : Schedule.entry array; repr : repr; now : float }

type arena = Flat_sla_tree.arena

let create_arena = Flat_sla_tree.create_arena

let of_entries ?(impl = Flat) ?arena ~now entries =
  let repr =
    match impl with
    | Flat ->
      let arena =
        match arena with Some a -> a | None -> Flat_sla_tree.create_arena ()
      in
      Flat_repr (Flat_sla_tree.build arena entries)
    | Boxed ->
      let units = Slack_units.of_schedule entries in
      let slack_units, tardy_units = Slack_units.partition units in
      Boxed_repr
        {
          slack_tree = Cascade_tree.build slack_units;
          tardy_tree = Cascade_tree.build tardy_units;
        }
  in
  { entries; repr; now }

let build ?impl ?arena ~now queries =
  of_entries ?impl ?arena ~now (Schedule.of_queries ~now queries)

let length t = Array.length t.entries
let now t = t.now
let entries t = t.entries

let impl t = match t.repr with Flat_repr _ -> Flat | Boxed_repr _ -> Boxed

let entry t i =
  if i < 0 || i >= Array.length t.entries then
    invalid_arg "Sla_tree.entry: index out of bounds";
  t.entries.(i)

let unit_counts t =
  match t.repr with
  | Flat_repr f ->
    ( Flat_sla_tree.unit_count (Flat_sla_tree.slack f),
      Flat_sla_tree.unit_count (Flat_sla_tree.tardy f) )
  | Boxed_repr { slack_tree; tardy_tree } ->
    (Cascade_tree.unit_count slack_tree, Cascade_tree.unit_count tardy_tree)

let check_range t ~m ~n =
  let len = Array.length t.entries in
  if m < 0 || n >= len || m > n then
    invalid_arg
      (Printf.sprintf "Sla_tree: bad range [%d, %d] for %d queries" m n len)

(* Prefix questions against S+ (mode Lt) and S- (mode Le). [n < 0]
   denotes the empty prefix. *)
let prefix_slack t ~n ~tau =
  if n < 0 then 0.0
  else begin
    match t.repr with
    | Flat_repr f ->
      Flat_sla_tree.prefix_loss (Flat_sla_tree.slack f) Cascade_tree.Lt ~n ~tau
    | Boxed_repr { slack_tree; _ } ->
      Cascade_tree.prefix_loss slack_tree Cascade_tree.Lt ~n ~tau
  end

let prefix_tardy t ~n ~tau =
  if n < 0 then 0.0
  else begin
    match t.repr with
    | Flat_repr f ->
      Flat_sla_tree.prefix_loss (Flat_sla_tree.tardy f) Cascade_tree.Le ~n ~tau
    | Boxed_repr { tardy_tree; _ } ->
      Cascade_tree.prefix_loss tardy_tree Cascade_tree.Le ~n ~tau
  end

(* Probes over an empty buffer are defined and answer 0.0: no queries,
   nothing to lose or recover. Ranges are only validated against a
   non-empty buffer (callers need no [if n = 0] guards). *)

let postpone t ~m ~n ~tau =
  if tau < 0.0 then invalid_arg "Sla_tree.postpone: tau must be non-negative";
  if Array.length t.entries = 0 then 0.0
  else begin
    check_range t ~m ~n;
    if tau = 0.0 then 0.0
    else prefix_slack t ~n ~tau -. prefix_slack t ~n:(m - 1) ~tau
  end

let expedite t ~m ~n ~tau =
  if tau < 0.0 then invalid_arg "Sla_tree.expedite: tau must be non-negative";
  if Array.length t.entries = 0 then 0.0
  else begin
    check_range t ~m ~n;
    if tau = 0.0 then 0.0
    else prefix_tardy t ~n ~tau -. prefix_tardy t ~n:(m - 1) ~tau
  end

(* Profit currently at stake (still earnable) among queries 0..n: the
   gains of all their on-time units. *)
let profit_at_stake t ~n =
  if n < 0 then 0.0
  else begin
    match t.repr with
    | Flat_repr f -> Flat_sla_tree.prefix_total (Flat_sla_tree.slack f) ~n
    | Boxed_repr { slack_tree; _ } -> Cascade_tree.prefix_total slack_tree ~n
  end

let total_profit_at_stake t =
  match t.repr with
  | Flat_repr f -> Flat_sla_tree.total (Flat_sla_tree.slack f)
  | Boxed_repr { slack_tree; _ } -> Cascade_tree.total slack_tree

(* Profit already forfeited (late units) among queries 0..n that could
   in principle be recovered by expediting. *)
let recoverable_profit t ~n =
  if n < 0 then 0.0
  else begin
    match t.repr with
    | Flat_repr f -> Flat_sla_tree.prefix_total (Flat_sla_tree.tardy f) ~n
    | Boxed_repr { tardy_tree; _ } -> Cascade_tree.prefix_total tardy_tree ~n
  end

let total_recoverable_profit t =
  match t.repr with
  | Flat_repr f -> Flat_sla_tree.total (Flat_sla_tree.tardy f)
  | Boxed_repr { tardy_tree; _ } -> Cascade_tree.total tardy_tree
