(* Expansion of buffered queries into g/0 units (paper Sec 4.2).

   Each SLA level contributes one unit: the unit's gain is lost exactly
   when its level deadline is missed. Units with non-negative slack
   feed the slack tree S+; units with negative slack feed the tardiness
   tree S- (with the sign reversed). *)

type t = {
  uid : int;  (** position of the owning query in the buffer order *)
  slack : float;  (** deadline minus scheduled completion; may be < 0 *)
  gain : float;  (** profit at stake for this unit; > 0 *)
}

let of_schedule entries =
  let units = ref [] in
  Array.iteri
    (fun pos entry ->
      let comps, _offset = Sla.decompose entry.Schedule.query.Query.sla in
      List.iter
        (fun { Sla.comp_bound; comp_gain } ->
          let slack = Schedule.slack entry ~bound:comp_bound in
          units := { uid = pos; slack; gain = comp_gain } :: !units)
        comps)
    entries;
  Array.of_list (List.rev !units)

let partition units =
  let pos = ref [] and neg = ref [] in
  (* Iterate right-to-left so the accumulated lists preserve order. *)
  for i = Array.length units - 1 downto 0 do
    let u = units.(i) in
    if u.slack >= 0.0 then pos := u :: !pos
    else neg := { u with slack = -.u.slack } :: !neg
  done;
  (Array.of_list !pos, Array.of_list !neg)
