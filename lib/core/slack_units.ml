(* Expansion of buffered queries into g/0 units (paper Sec 4.2).

   Each SLA level contributes one unit: the unit's gain is lost exactly
   when its level deadline is missed. Units with non-negative slack
   feed the slack tree S+; units with negative slack feed the tardiness
   tree S- (with the sign reversed).

   This runs once per tree rebuild, i.e. per candidate probe on the
   dispatch hot path, so both passes count first and fill pre-sized
   arrays — no intermediate lists. *)

type t = {
  uid : int;  (** position of the owning query in the buffer order *)
  slack : float;  (** deadline minus scheduled completion; may be < 0 *)
  gain : float;  (** profit at stake for this unit; > 0 *)
}

let count_of_entries entries =
  let total = ref 0 in
  Array.iter
    (fun entry ->
      total := !total + Sla.num_components entry.Schedule.query.Query.sla)
    entries;
  !total

let dummy = { uid = 0; slack = 0.0; gain = 0.0 }

(* Fill [units] starting at [k0] with the expansion of [entries]; the
   unit order is entries in buffer order, components by ascending
   bound — identical to the historical list-based construction. *)
let fill_of_schedule units k0 entries =
  let k = ref k0 in
  Array.iteri
    (fun pos entry ->
      let comps = Sla.components entry.Schedule.query.Query.sla in
      for c = 0 to Array.length comps - 1 do
        let { Sla.comp_bound; comp_gain } = comps.(c) in
        let slack = Schedule.slack entry ~bound:comp_bound in
        units.(!k) <- { uid = pos; slack; gain = comp_gain };
        incr k
      done)
    entries;
  !k

let of_schedule entries =
  let units = Array.make (count_of_entries entries) dummy in
  ignore (fill_of_schedule units 0 entries : int);
  units

let partition units =
  let n = Array.length units in
  let n_pos = ref 0 in
  for i = 0 to n - 1 do
    if units.(i).slack >= 0.0 then incr n_pos
  done;
  let pos = Array.make !n_pos dummy in
  let neg = Array.make (n - !n_pos) dummy in
  let p = ref 0 and q = ref 0 in
  for i = 0 to n - 1 do
    let u = units.(i) in
    if u.slack >= 0.0 then begin
      pos.(!p) <- u;
      incr p
    end
    else begin
      neg.(!q) <- { u with slack = -.u.slack };
      incr q
    end
  done;
  (pos, neg)
