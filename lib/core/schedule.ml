(* Scheduled start times for an ordered buffer (paper Sec 3.3.1).

   Given queries in their (fixed) execution order and the time [now] at
   which the server becomes free, query 0 starts at [now] and each
   subsequent query starts when its predecessor's *estimated* execution
   finishes. All slack computations are based on estimates because that
   is all the decision maker can see. *)

type entry = { query : Query.t; start : float }

let of_queries ~now queries =
  let t = ref now in
  Array.map
    (fun q ->
      let e = { query = q; start = !t } in
      t := !t +. q.Query.est_size;
      e)
    queries

let completion e = e.start +. e.query.Query.est_size

(* Slack of an SLA-level deadline [bound] for entry [e]: how much the
   entry can be postponed and still meet that deadline (negative slack
   is tardiness). *)
let slack e ~bound = Query.deadline e.query ~bound -. completion e

let total_estimated_work queries =
  Array.fold_left (fun acc q -> acc +. q.Query.est_size) 0.0 queries
