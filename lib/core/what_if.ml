(* The "what if" questions the applications ask (paper Sec 6).

   All deltas use estimated execution times; positive means more
   profit. *)

(* Profit change for the query itself if it is rushed from its
   scheduled slot to execute immediately at [now]. *)
let own_rush_gain tree i =
  let e = Sla_tree.entry tree i in
  let q = e.Schedule.query in
  let rushed_completion = Sla_tree.now tree +. q.Query.est_size in
  Query.profit_at q ~completion:rushed_completion
  -. Query.profit_at q ~completion:(Schedule.completion e)

(* Net profit change of rushing query [i] to the front (Sec 6.1):
   the query's own gain minus the loss from postponing its
   predecessors by its execution time. Rushing query 0 changes
   nothing. *)
let rush_net_gain tree i =
  if i = 0 then 0.0
  else begin
    let e = Sla_tree.entry tree i in
    let tau = e.Schedule.query.Query.est_size in
    let loss =
      if tau = 0.0 then 0.0 else Sla_tree.postpone tree ~m:0 ~n:(i - 1) ~tau
    in
    own_rush_gain tree i -. loss
  end

(* Index of the query whose rush maximizes net gain, with its gain.
   Ties resolve to the earliest buffer position, so an all-zero buffer
   keeps the original order. Returns [None] on an empty buffer. *)
let best_rush tree =
  let n = Sla_tree.length tree in
  let best = ref None in
  for i = 0 to n - 1 do
    (* rush_net_gain is 0.0 at i = 0, so the first iteration seeds the
       running best; an empty buffer never seeds and yields None. *)
    let g = rush_net_gain tree i in
    match !best with
    | Some (_, bg) when g <= bg -> ()
    | Some _ | None -> best := Some (i, g)
  done;
  !best

(* [best_rush] against a live incremental tree: same argmax, same
   tie-breaking, but the postpone questions run over the maintained
   structure instead of a freshly built one. The rush origin is the
   head's true start, which at a scheduling point equals the decision
   time (the head was just popped there). *)
let best_rush_incr tree =
  let n = Incr_sla_tree.length tree in
  if n = 0 then None
  else begin
    let entries = Incr_sla_tree.to_entries tree in
    let origin = entries.(0).Schedule.start in
    let best_i = ref 0 and best_gain = ref 0.0 in
    for i = 1 to n - 1 do
      let e = entries.(i) in
      let q = e.Schedule.query in
      let own =
        Query.profit_at q ~completion:(origin +. q.Query.est_size)
        -. Query.profit_at q ~completion:(Schedule.completion e)
      in
      let tau = q.Query.est_size in
      let loss =
        if tau = 0.0 then 0.0
        else Incr_sla_tree.postpone tree ~m:0 ~n:(i - 1) ~tau
      in
      let g = own -. loss in
      if g > !best_gain then begin
        best_i := i;
        best_gain := g
      end
    done;
    Some (!best_i, !best_gain)
  end

(* Net profit change of inserting [query] at buffer position [pos]
   (Sec 6.2): the newcomer's own profit at its would-be completion,
   minus the loss from postponing every query at positions [pos..N-1]
   by the newcomer's execution time. [pos = N] appends. *)
let insertion_delta tree ~query ~pos =
  let n = Sla_tree.length tree in
  if pos < 0 || pos > n then invalid_arg "What_if.insertion_delta: bad position";
  let start =
    if pos = n then
      if n = 0 then Sla_tree.now tree
      else Schedule.completion (Sla_tree.entry tree (n - 1))
    else (Sla_tree.entry tree pos).Schedule.start
  in
  let own = Query.profit_at query ~completion:(start +. query.Query.est_size) in
  let tau = query.Query.est_size in
  let displaced =
    if pos >= n || tau = 0.0 then 0.0
    else Sla_tree.postpone tree ~m:pos ~n:(n - 1) ~tau
  in
  own -. displaced

(* Profit the query would earn on a fictitious idle server (Sec 6.3):
   it starts immediately at [now]. *)
let idle_server_profit ~now query =
  Query.profit_at query ~completion:(now +. query.Query.est_size)

(* ------------------------------------------------------------------ *)
(* Applications of expedite() — the family the paper mentions but cut
   for space (footnote 4). *)

(* Profit recovered if a helper (e.g. a borrowed server or a faster
   replica) lets the whole buffer start [tau] earlier, for each tau in
   [taus]: the marginal-recovery curve a capacity borrower would
   inspect. *)
let recovery_curve tree ~taus =
  let n = Sla_tree.length tree in
  List.map
    (fun tau -> (tau, Sla_tree.expedite tree ~m:0 ~n:(n - 1) ~tau))
    taus

(* Maintenance-window planning: a pause of [duration] inserted before
   buffer position [p] postpones queries [p .. N-1] by [duration].
   Returns the position minimizing the profit loss, with that loss
   (ties resolve to the latest position, i.e. maintenance as late as
   possible). [N] (after everything) is always a candidate and loses
   nothing by definition of the current buffer — but the returned
   comparison across interior slots is the interesting part when the
   window must start before a hard deadline. *)
let best_maintenance_slot ?latest_start tree ~duration =
  if duration < 0.0 then
    invalid_arg "What_if.best_maintenance_slot: negative duration";
  let n = Sla_tree.length tree in
  let slot_start p =
    if p = 0 then Sla_tree.now tree
    else Schedule.completion (Sla_tree.entry tree (p - 1))
  in
  let allowed p =
    match latest_start with None -> true | Some t -> slot_start p <= t
  in
  let loss p =
    if p >= n then 0.0 else Sla_tree.postpone tree ~m:p ~n:(n - 1) ~tau:duration
  in
  (* Scan from the latest slot down and only ever replace the running
     best on a STRICT improvement: the first slot seen at the minimum
     loss is the latest one, so the documented tie-break holds without
     any float-equality test. *)
  let best = ref None in
  for p = n downto 0 do
    if allowed p then begin
      let l = loss p in
      match !best with
      | Some (_, bl) when l >= bl -> ()
      | Some _ | None -> best := Some (p, l)
    end
  done;
  !best

(* Loss already incurred by an unplanned stall: if the server has been
   frozen for [stall] time units beyond the schedule the tree was
   built on, this is the profit that slipped away — and the second
   component is how much of it a catch-up speedup of [catch_up] would
   claw back. *)
let stall_impact tree ~stall ~catch_up =
  let n = Sla_tree.length tree in
  let lost = Sla_tree.postpone tree ~m:0 ~n:(n - 1) ~tau:stall in
  let recovered =
    if catch_up <= 0.0 then 0.0
    else begin
      (* After the stall, expediting by catch_up recovers units whose
         post-stall tardiness is within catch_up: those with original
         slack in [stall - catch_up, stall). *)
      let tree_loss tau =
        if tau <= 0.0 then 0.0 else Sla_tree.postpone tree ~m:0 ~n:(n - 1) ~tau
      in
      lost -. tree_loss (stall -. catch_up)
    end
  in
  (lost, recovered)
