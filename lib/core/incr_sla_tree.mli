(** Incremental SLA-tree (the paper's stated future work, Sec 9).

    Supports the FCFS buffer life cycle without rebuilding on every
    change: popping the executed head is O(1) (schedule drift is
    absorbed into a single delay offset applied to the questions, not
    the tree), and appended queries go to a bounded overflow that is
    folded in by an amortized lazy rebuild.

    Questions use positions into the *current* live buffer (0 = next
    to execute), not the original build order. Answers are identical
    to a fresh {!Sla_tree} built over {!to_entries} — the test suite
    checks this equivalence on random operation sequences. *)

type t

(** [create ~now queries] builds the structure over the initial buffer
    (possibly empty), scheduled back-to-back from [now]. When [obs] is
    an enabled sink, counts rebuilds/appends/pops and what-if probe
    calls into it ([sla_tree.*], [whatif.*]). *)
val create : ?obs:Obs.t -> now:float -> Query.t array -> t

(** Live queries currently buffered. *)
val length : t -> int

(** Next query to execute (the buffer head), without removing it.
    O(1) unless only pending queries remain. *)
val peek : t -> Query.t option

(** FCFS arrival: schedule the query at the current tail. Amortized
    O(K) (may trigger a rebuild). *)
val append : t -> Query.t -> unit

(** The buffer head was executed, taking [actual] time (default: its
    estimate); everything downstream shifts by the difference. O(1)
    except for occasional amortized rebuilds. Raises on an empty
    buffer. *)
val pop_head : ?actual:float -> t -> unit

(** After the buffer drained, restart the schedule at [now] (the
    server sat idle). Raises if the buffer is non-empty. *)
val reset_origin : t -> now:float -> unit

(** Profit lost if live queries [m..n] are postponed by [tau];
    O(log NK + BK) for overflow size B. *)
val postpone : t -> m:int -> n:int -> tau:float -> float

(** Profit gained if live queries [m..n] are expedited by [tau]. *)
val expedite : t -> m:int -> n:int -> tau:float -> float

(** The live schedule with true start times (for oracles/debugging). *)
val to_entries : t -> Schedule.entry array

(** Introspection for tests and benchmarks. *)
val rebuild_count : t -> int

val pending_count : t -> int
val delay : t -> float
