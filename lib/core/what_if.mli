(** The "what if" questions behind profit-oriented decisions
    (paper Sec 6). All profits use estimated execution times. *)

(** Profit change for query [i] itself if rushed to run at [now]
    instead of its scheduled slot. *)
val own_rush_gain : Sla_tree.t -> int -> float

(** Net profit change of rushing query [i] to the front: own gain minus
    [postpone(0, i-1, est_size_i)] (Sec 6.1). Zero for [i = 0]. *)
val rush_net_gain : Sla_tree.t -> int -> float

(** Best query to execute next and its net gain; ties keep the earliest
    position (so the original order wins when nothing improves).
    [None] on an empty buffer. *)
val best_rush : Sla_tree.t -> (int * float) option

(** {!best_rush} over a live {!Incr_sla_tree} — identical answers and
    tie-breaking, without the per-decision rebuild. *)
val best_rush_incr : Incr_sla_tree.t -> (int * float) option

(** Net profit change of inserting [query] at buffer position [pos]:
    the newcomer's own profit minus the displaced queries' postpone
    loss (Sec 6.2). [pos] may equal the buffer length (append). *)
val insertion_delta : Sla_tree.t -> query:Query.t -> pos:int -> float

(** Profit the query would earn starting immediately on an idle server
    (the capacity-planning fiction of Sec 6.3). *)
val idle_server_profit : now:float -> Query.t -> float

(** Applications of [expedite] (the family the paper mentions in
    footnote 4 but cut for space). *)

(** [(tau, profit recovered if the whole buffer starts tau earlier)]
    for each requested [tau] — the marginal value of borrowed
    capacity. *)
val recovery_curve : Sla_tree.t -> taus:float list -> (float * float) list

(** Cheapest place to insert a maintenance pause: position [p] delays
    queries [p..N-1] by [duration]; returns the loss-minimizing
    position and its loss (ties resolve to the latest position;
    [latest_start] optionally bounds how late the pause may begin).
    [None] only when no position satisfies [latest_start]. *)
val best_maintenance_slot :
  ?latest_start:float -> Sla_tree.t -> duration:float -> (int * float) option

(** [(profit lost to an unplanned stall, portion clawed back by a
    catch-up speedup of the given magnitude)]. *)
val stall_impact : Sla_tree.t -> stall:float -> catch_up:float -> float * float
