(** O(N)-per-question reference answers to the two key questions
    (paper Sec 3.2) — oracles for the test suite.

    Ranges are 0-based and inclusive: [m..n] over the buffer order. *)

(** Profit lost when queries [m..n] are postponed by [tau], computed by
    scanning the g/0 unit expansion. *)
val postpone_by_units :
  Schedule.entry array -> m:int -> n:int -> tau:float -> float

(** Profit gained when queries [m..n] are expedited by [tau] (unit
    scan). *)
val expedite_by_units :
  Schedule.entry array -> m:int -> n:int -> tau:float -> float

(** Same questions answered by re-evaluating each stepwise SLA at the
    shifted completion time — independent of the decomposition. *)
val postpone_by_recompute :
  Schedule.entry array -> m:int -> n:int -> tau:float -> float

val expedite_by_recompute :
  Schedule.entry array -> m:int -> n:int -> tau:float -> float

(** Total profit of the schedule if executed exactly as planned. *)
val scheduled_profit : Schedule.entry array -> float
