(* Flat, arena-backed SLA-tree: the same augmented cascaded search tree
   as [Cascade_tree] (paper Sec 5), stored as structure-of-arrays with
   an implicit preorder layout instead of boxed nodes.

   Layout. A cascade over [m] sorted units has exactly [2m - 1] nodes.
   Nodes are numbered in preorder: the node covering the sorted slice
   [lo, hi) sits at index [k]; if [hi - lo > 1] its left child (over
   [lo, mid), mid = (lo + hi) / 2) is at [k + 1] and its right child at
   [k + 2 * (mid - lo)]. We record the right-child index explicitly in
   [n_rchild] ([-1] marks a leaf) so probes never re-derive ranges.
   Per-node data lives in parallel arrays indexed by node:
     n_split   internal: the separating key (the paper's d_tau);
               leaf: the unit's key
     n_off/n_len  the node's merged id list as a slice of the list pool
   and the list pool itself is five parallel arrays indexed by
   [off + j]:
     l_ids  descendant buffer positions, sorted, duplicates merged
     l_raw  the merged gain of entry j (kept so a parent's merge adds
            the SAME raw floats as the boxed build — deriving them from
            cumulative differences would change the bits)
     l_cum  running sum of l_raw over the node's slice
     l_lp/l_rp  fractional-cascading pointers into the child slices

   Arena. All arrays come from a growable arena; [build] resets its
   cursors and fills both cascades, so repeated rebuilds through the
   same arena allocate nothing once the arrays have grown to the
   working-set size. Building into an arena invalidates every tree
   previously built from it — callers that cache trees (the dispatcher
   probe cache) must pair one arena with one live tree.

   Equivalence. The sort comparator (key, then uid) is a strict total
   order over the unit multiset — units of one query have strictly
   increasing slacks because SLA bounds strictly increase — so any
   comparison sort produces the permutation [Cascade_tree.build] gets
   from [Array.sort]. Construction fills children before parents
   (post-order over the same recursion tree), merges with the same
   tie-handling, and accumulates [l_cum] in the same left-to-right
   order, so every float in the structure is bit-identical to the boxed
   tree's, and probes replay the boxed probe's additions exactly. *)

type arena = {
  (* Unit scratch: the expanded (key, uid, gain) triples, partitioned
     into the S+ region then the S- region, each sorted in place. *)
  mutable u_key : float array;
  mutable u_uid : int array;
  mutable u_gain : float array;
  (* Node pool, shared by both cascades of one tree. *)
  mutable n_split : float array;
  mutable n_rchild : int array;
  mutable n_off : int array;
  mutable n_len : int array;
  (* List pool. *)
  mutable l_ids : int array;
  mutable l_cum : float array;
  mutable l_raw : float array;
  mutable l_lp : int array;
  mutable l_rp : int array;
  mutable node_top : int;
  mutable list_top : int;
}

let create_arena () =
  {
    u_key = [||];
    u_uid = [||];
    u_gain = [||];
    n_split = [||];
    n_rchild = [||];
    n_off = [||];
    n_len = [||];
    l_ids = [||];
    l_cum = [||];
    l_raw = [||];
    l_lp = [||];
    l_rp = [||];
    node_top = 0;
    list_top = 0;
  }

(* A built cascade. The array fields capture the arena's arrays at
   build time: if a later build grows the arena, the grown copies
   replace the arena's fields but these references keep the old
   storage (and thus this cascade's data) alive and readable. *)
type cascade = {
  root : int;  (* node index, -1 when empty *)
  m : int;
  c_split : float array;
  c_rchild : int array;
  c_off : int array;
  c_len : int array;
  c_ids : int array;
  c_cum : float array;
  c_raw : float array;
  c_lp : int array;
  c_rp : int array;
}

type t = { slack : cascade; tardy : cascade }

let slack t = t.slack
let tardy t = t.tardy
let unit_count c = c.m

(* ------------------------------------------------------------------ *)
(* Growth. Doubling with a floor of the requested size; blit preserves
   live prefixes so growing mid-build never disturbs finished nodes. *)

let grow_float a used need =
  let cap = max need (max 8 (2 * Array.length a)) in
  let b = Array.make cap 0.0 in
  Array.blit a 0 b 0 used;
  b

let grow_int a used need =
  let cap = max need (max 8 (2 * Array.length a)) in
  let b = Array.make cap 0 in
  Array.blit a 0 b 0 used;
  b

let ensure_units a n =
  if Array.length a.u_key < n then begin
    a.u_key <- grow_float a.u_key 0 n;
    a.u_uid <- grow_int a.u_uid 0 n;
    a.u_gain <- grow_float a.u_gain 0 n
  end

let ensure_nodes a extra =
  let need = a.node_top + extra in
  if Array.length a.n_split < need then begin
    a.n_split <- grow_float a.n_split a.node_top need;
    a.n_rchild <- grow_int a.n_rchild a.node_top need;
    a.n_off <- grow_int a.n_off a.node_top need;
    a.n_len <- grow_int a.n_len a.node_top need
  end

let ensure_list a extra =
  let need = a.list_top + extra in
  if Array.length a.l_ids < need then begin
    a.l_ids <- grow_int a.l_ids a.list_top need;
    a.l_cum <- grow_float a.l_cum a.list_top need;
    a.l_raw <- grow_float a.l_raw a.list_top need;
    a.l_lp <- grow_int a.l_lp a.list_top need;
    a.l_rp <- grow_int a.l_rp a.list_top need
  end

(* ------------------------------------------------------------------ *)
(* In-place heapsort of the unit region [base, base + m) by (key, uid).
   The comparator is a strict total order, so the result equals what
   any other comparison sort — in particular the boxed build's
   [Array.sort] — produces. Heapsort keeps the build allocation-free. *)

let unit_less a i j =
  let c = Float.compare a.u_key.(i) a.u_key.(j) in
  if c <> 0 then c < 0 else a.u_uid.(i) < a.u_uid.(j)

let unit_swap a i j =
  let k = a.u_key.(i) in
  a.u_key.(i) <- a.u_key.(j);
  a.u_key.(j) <- k;
  let u = a.u_uid.(i) in
  a.u_uid.(i) <- a.u_uid.(j);
  a.u_uid.(j) <- u;
  let g = a.u_gain.(i) in
  a.u_gain.(i) <- a.u_gain.(j);
  a.u_gain.(j) <- g

let sort_units a base m =
  let sift root last =
    let i = ref root in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l > last then continue := false
      else begin
        let c =
          if l < last && unit_less a (base + l) (base + l + 1) then l + 1
          else l
        in
        if unit_less a (base + !i) (base + c) then begin
          unit_swap a (base + !i) (base + c);
          i := c
        end
        else continue := false
      end
    done
  in
  for i = (m / 2) - 1 downto 0 do
    sift i (m - 1)
  done;
  for last = m - 1 downto 1 do
    unit_swap a base (base + last);
    sift 0 (last - 1)
  done

(* ------------------------------------------------------------------ *)
(* Construction. *)

(* Merge the id lists of children [left]/[right] into a new list at
   [a.list_top], mirroring [Cascade_tree.merge_ids] plus the cumulative
   pass, and return its (offset, length). Gains of equal ids are summed
   left + right, and [l_cum] accumulates in merge order — the same
   float operations, in the same order, as the boxed build. *)
let merge_lists a left right =
  let loff = a.n_off.(left) and llen = a.n_len.(left) in
  let roff = a.n_off.(right) and rlen = a.n_len.(right) in
  ensure_list a (llen + rlen);
  let ids = a.l_ids and raw = a.l_raw and cum = a.l_cum in
  let lp = a.l_lp and rp = a.l_rp in
  let off = a.list_top in
  let li = ref 0 and ri = ref 0 and k = ref off in
  let acc = ref 0.0 in
  while !li < llen || !ri < rlen do
    let take_left =
      !ri >= rlen || (!li < llen && ids.(loff + !li) <= ids.(roff + !ri))
    in
    let take_right =
      !li >= llen || (!ri < rlen && ids.(roff + !ri) <= ids.(loff + !li))
    in
    let id, gain =
      if take_left && take_right then begin
        let id = ids.(loff + !li) in
        let g = raw.(loff + !li) +. raw.(roff + !ri) in
        incr li;
        incr ri;
        (id, g)
      end
      else if take_left then begin
        let id = ids.(loff + !li) in
        let g = raw.(loff + !li) in
        incr li;
        (id, g)
      end
      else begin
        let id = ids.(roff + !ri) in
        let g = raw.(roff + !ri) in
        incr ri;
        (id, g)
      end
    in
    ids.(!k) <- id;
    raw.(!k) <- gain;
    acc := !acc +. gain;
    cum.(!k) <- !acc;
    lp.(!k) <- !li - 1;
    rp.(!k) <- !ri - 1;
    incr k
  done;
  a.list_top <- !k;
  (off, !k - off)

(* Fill the cascade over sorted units [base + lo, base + hi) into the
   node pool. Nodes are allocated in preorder (self, then left subtree,
   then right subtree) but their lists are written post-order, so
   children's lists exist when the parent merges them. Returns the
   node's index. *)
let rec fill_node a base lo hi =
  let k = a.node_top in
  a.node_top <- k + 1;
  if hi - lo = 1 then begin
    a.n_split.(k) <- a.u_key.(base + lo);
    a.n_rchild.(k) <- -1;
    ensure_list a 1;
    let off = a.list_top in
    a.list_top <- off + 1;
    a.l_ids.(off) <- a.u_uid.(base + lo);
    a.l_raw.(off) <- a.u_gain.(base + lo);
    a.l_cum.(off) <- a.u_gain.(base + lo);
    a.l_lp.(off) <- -1;
    a.l_rp.(off) <- -1;
    a.n_off.(k) <- off;
    a.n_len.(k) <- 1;
    k
  end
  else begin
    let mid = (lo + hi) / 2 in
    let left = fill_node a base lo mid in
    let right = fill_node a base mid hi in
    a.n_split.(k) <-
      (a.u_key.(base + (mid - 1)) +. a.u_key.(base + mid)) /. 2.0;
    a.n_rchild.(k) <- right;
    let off, len = merge_lists a left right in
    a.n_off.(k) <- off;
    a.n_len.(k) <- len;
    k
  end

let build_cascade a base m =
  if m = 0 then
    {
      root = -1;
      m = 0;
      c_split = [||];
      c_rchild = [||];
      c_off = [||];
      c_len = [||];
      c_ids = [||];
      c_cum = [||];
      c_raw = [||];
      c_lp = [||];
      c_rp = [||];
    }
  else begin
    sort_units a base m;
    ensure_nodes a ((2 * m) - 1);
    let root = fill_node a base 0 m in
    {
      root;
      m;
      c_split = a.n_split;
      c_rchild = a.n_rchild;
      c_off = a.n_off;
      c_len = a.n_len;
      c_ids = a.l_ids;
      c_cum = a.l_cum;
      c_raw = a.l_raw;
      c_lp = a.l_lp;
      c_rp = a.l_rp;
    }
  end

(* Expand the scheduled entries straight into the unit scratch (one
   pre-sized pass — no [Slack_units] arrays, no intermediate lists),
   then partition in place: S+ units (slack >= 0) first, S- units
   after, with the S- keys sign-flipped to tardiness. The partition is
   unstable, which is fine: each region is about to be sorted by a
   strict total order. Returns (total, n_pos). *)
let expand_units a entries =
  let total = ref 0 in
  Array.iter
    (fun e -> total := !total + Sla.num_components e.Schedule.query.Query.sla)
    entries;
  let total = !total in
  ensure_units a total;
  let k = ref 0 in
  Array.iteri
    (fun pos e ->
      let comps = Sla.components e.Schedule.query.Query.sla in
      for c = 0 to Array.length comps - 1 do
        a.u_key.(!k) <- Schedule.slack e ~bound:comps.(c).Sla.comp_bound;
        a.u_uid.(!k) <- pos;
        a.u_gain.(!k) <- comps.(c).Sla.comp_gain;
        incr k
      done)
    entries;
  let p = ref 0 in
  for i = 0 to total - 1 do
    if a.u_key.(i) >= 0.0 then begin
      if i <> !p then unit_swap a !p i;
      incr p
    end
  done;
  for i = !p to total - 1 do
    a.u_key.(i) <- -.a.u_key.(i)
  done;
  (total, !p)

let build a entries =
  a.node_top <- 0;
  a.list_top <- 0;
  let total, n_pos = expand_units a entries in
  let slack = build_cascade a 0 n_pos in
  let tardy = build_cascade a n_pos (total - n_pos) in
  { slack; tardy }

(* One cascade straight from raw units — the same input contract as
   [Cascade_tree.build], so fuzz suites can feed both implementations
   identical adversarial unit arrays. Resets the arena like [build]. *)
let of_units a units =
  a.node_top <- 0;
  a.list_top <- 0;
  let m = Array.length units in
  ensure_units a m;
  for i = 0 to m - 1 do
    let u = units.(i) in
    a.u_key.(i) <- u.Slack_units.slack;
    a.u_uid.(i) <- u.Slack_units.uid;
    a.u_gain.(i) <- u.Slack_units.gain
  done;
  build_cascade a 0 m

(* ------------------------------------------------------------------ *)
(* Probes — structurally identical to [Cascade_tree.prefix_loss] and
   friends, with node/list indirection replaced by array indexing. *)

let prefix_loss c (mode : Cascade_tree.mode) ~n ~tau =
  if c.root < 0 then 0.0
  else begin
    let rec go k i acc =
      if i < 0 then acc
      else begin
        let off = c.c_off.(k) in
        let right = c.c_rchild.(k) in
        if right < 0 then begin
          let key = c.c_split.(k) in
          let hit =
            match mode with Lt -> key < tau | Le -> key <= tau
          in
          if hit then acc +. c.c_raw.(off) else acc
        end
        else begin
          let split = c.c_split.(k) in
          let descend_left_only =
            match mode with Lt -> tau <= split | Le -> tau < split
          in
          if descend_left_only then go (k + 1) c.c_lp.(off + i) acc
          else begin
            let lpv = c.c_lp.(off + i) in
            let from_left =
              if lpv < 0 then 0.0 else c.c_cum.(c.c_off.(k + 1) + lpv)
            in
            go right c.c_rp.(off + i) (acc +. from_left)
          end
        end
      end
    in
    let i =
      Arrayx.find_last_leq_int_range c.c_ids ~off:(c.c_off.(c.root))
        ~len:(c.c_len.(c.root)) n
    in
    go c.root i 0.0
  end

(* The paper's pointer-free O(log^2 M) walk over the flat layout; the
   ablation baseline and an extra oracle for the fuzz tests. *)
let prefix_loss_binary_search c (mode : Cascade_tree.mode) ~n ~tau =
  if c.root < 0 then 0.0
  else begin
    let count_left left =
      let j =
        Arrayx.find_last_leq_int_range c.c_ids ~off:(c.c_off.(left))
          ~len:(c.c_len.(left)) n
      in
      if j < 0 then 0.0 else c.c_cum.(c.c_off.(left) + j)
    in
    let rec go k acc =
      let right = c.c_rchild.(k) in
      if right < 0 then begin
        let key = c.c_split.(k) in
        let hit = match mode with Lt -> key < tau | Le -> key <= tau in
        if hit && c.c_ids.(c.c_off.(k)) <= n then acc +. c.c_raw.(c.c_off.(k))
        else acc
      end
      else begin
        let split = c.c_split.(k) in
        let descend_left_only =
          match mode with Lt -> tau <= split | Le -> tau < split
        in
        if descend_left_only then go (k + 1) acc
        else go right (acc +. count_left (k + 1))
      end
    in
    go c.root 0.0
  end

let prefix_total c ~n =
  if c.root < 0 then 0.0
  else begin
    let off = c.c_off.(c.root) in
    let i =
      Arrayx.find_last_leq_int_range c.c_ids ~off ~len:(c.c_len.(c.root)) n
    in
    if i < 0 then 0.0 else c.c_cum.(off + i)
  end

let total c =
  if c.root < 0 then 0.0
  else c.c_cum.(c.c_off.(c.root) + c.c_len.(c.root) - 1)

let depth c =
  if c.root < 0 then 0
  else begin
    let rec go k =
      if c.c_rchild.(k) < 0 then 1
      else 1 + max (go (k + 1)) (go c.c_rchild.(k))
    in
    go c.root
  end
