(** Flat, arena-backed SLA-tree: {!Cascade_tree} re-laid-out as
    structure-of-arrays with an implicit preorder node layout.

    Construction expands a scheduled buffer straight into pooled
    key/uid/gain arrays (one pre-sized pass), partitions into the S+
    and S- regions, sorts each in place, and fills both cascades
    bottom-up into a reusable {!arena} — no per-node boxing and, once
    the arena has grown to the working-set size, no allocation at all.

    Every float stored or returned is bit-identical to the boxed
    {!Cascade_tree} over the same schedule: same sort permutation (the
    (key, uid) comparator is a strict total order), same merge order,
    same cumulative-sum order, same probe accumulation order. The
    equivalence suite gates on this. *)

(** Growable backing store for trees. One arena holds ONE live tree:
    {!build} resets the arena's cursors, so it invalidates any tree
    previously built from the same arena. Never share an arena across
    domains. *)
type arena

val create_arena : unit -> arena

(** One cascade (S+ or S-); compare {!Cascade_tree.t}. *)
type cascade

type t

(** [build arena entries] expands, partitions, sorts and builds both
    cascades inside [arena]. O(NK log NK). *)
val build : arena -> Schedule.entry array -> t

(** One cascade from raw units — the input contract of
    {!Cascade_tree.build}, for suites that compare both implementations
    over the same unit array. Resets the arena like {!build}. *)
val of_units : arena -> Slack_units.t array -> cascade

val slack : t -> cascade
val tardy : t -> cascade
val unit_count : cascade -> int

(** Same contract as {!Cascade_tree.prefix_loss}: total gain of units
    with buffer position [<= n] whose key satisfies the mode's
    comparison against [tau]. O(log M). *)
val prefix_loss : cascade -> Cascade_tree.mode -> n:int -> tau:float -> float

(** The pointer-free O(log^2 M) walk (ablation baseline / test
    oracle); same answer as {!prefix_loss}. *)
val prefix_loss_binary_search :
  cascade -> Cascade_tree.mode -> n:int -> tau:float -> float

(** Total gain of units with buffer position [<= n]. O(log M). *)
val prefix_total : cascade -> n:int -> float

val total : cascade -> float

(** Height of the cascade (0 when empty). *)
val depth : cascade -> int
