(* Reference implementations of postpone/expedite (paper Sec 3.2).

   Two independent oracles:
   - [*_by_units]: scan the g/0 unit expansion, O(NK) per question;
   - [*_by_recompute]: re-evaluate every affected query's stepwise SLA
     at its shifted completion time, bypassing the decomposition
     entirely.
   The test suite checks tree == units == recompute; the experiments
   never use this module. *)

let check_range entries ~m ~n =
  let len = Array.length entries in
  if m < 0 || n >= len || m > n then
    invalid_arg
      (Printf.sprintf "naive what-if: bad range [%d, %d] for %d queries" m n len)

let postpone_by_units entries ~m ~n ~tau =
  check_range entries ~m ~n;
  if tau < 0.0 then invalid_arg "postpone: tau must be non-negative";
  let units = Slack_units.of_schedule entries in
  Array.fold_left
    (fun acc u ->
      if
        u.Slack_units.uid >= m && u.uid <= n && u.slack >= 0.0
        && u.slack < tau
      then acc +. u.gain
      else acc)
    0.0 units

let expedite_by_units entries ~m ~n ~tau =
  check_range entries ~m ~n;
  if tau < 0.0 then invalid_arg "expedite: tau must be non-negative";
  let units = Slack_units.of_schedule entries in
  Array.fold_left
    (fun acc u ->
      if
        u.Slack_units.uid >= m && u.uid <= n && u.slack < 0.0
        && -.u.slack <= tau
      then acc +. u.gain
      else acc)
    0.0 units

let profit_delta entries ~m ~n ~shift =
  check_range entries ~m ~n;
  let acc = ref 0.0 in
  for i = m to n do
    let e = entries.(i) in
    let completion = Schedule.completion e in
    let before = Query.profit_at e.Schedule.query ~completion in
    let after = Query.profit_at e.Schedule.query ~completion:(completion +. shift) in
    acc := !acc +. (after -. before)
  done;
  !acc

(* Profit lost by postponing: original minus shifted. *)
let postpone_by_recompute entries ~m ~n ~tau =
  if tau < 0.0 then invalid_arg "postpone: tau must be non-negative";
  -.profit_delta entries ~m ~n ~shift:tau

(* Profit gained by expediting: shifted minus original. *)
let expedite_by_recompute entries ~m ~n ~tau =
  if tau < 0.0 then invalid_arg "expedite: tau must be non-negative";
  profit_delta entries ~m ~n ~shift:(-.tau)

(* Total profit of the whole schedule as currently planned. *)
let scheduled_profit entries =
  Array.fold_left
    (fun acc e ->
      acc
      +. Query.profit_at e.Schedule.query ~completion:(Schedule.completion e))
    0.0 entries
