(* A query as the framework sees it: arrival time, (estimated and
   actual) execution time, and its SLA. All decision making uses the
   estimate [est_size]; the simulator charges the actual [size]
   (Sec 7.5 robustness experiments make the two differ).

   [retries] counts how many times the query has been re-injected
   after a server crash killed it. The retry copy keeps the original
   [arrival]: the SLA clock never resets, so stepwise profit keeps
   bleeding while the query waits for another slot (the paper's
   response time is always measured from first arrival).

   [tenant] names the paying customer the query belongs to (0 = the
   anonymous single-tenant default every pre-tenancy code path uses);
   profiles, price tiers and per-tenant accounting live in
   [Slatree_tenancy]. *)

type t = {
  id : int;
  arrival : float;
  size : float;
  est_size : float;
  sla : Sla.t;
  retries : int;
  tenant : int;
}

let make ?est_size ?(retries = 0) ?(tenant = 0) ~id ~arrival ~size ~sla () =
  if size < 0.0 then invalid_arg "Query.make: size must be non-negative";
  if arrival < 0.0 then invalid_arg "Query.make: arrival must be non-negative";
  if retries < 0 then invalid_arg "Query.make: retries must be non-negative";
  if tenant < 0 then invalid_arg "Query.make: tenant must be non-negative";
  let est_size = Option.value est_size ~default:size in
  if est_size < 0.0 then invalid_arg "Query.make: est_size must be non-negative";
  { id; arrival; size; est_size; sla; retries; tenant }

let retried t = { t with retries = t.retries + 1 }

(* Absolute deadline of level [k] of [t.sla]. *)
let deadline t ~bound = t.arrival +. bound

let first_deadline t = t.arrival +. Sla.first_deadline t.sla

let profit_at t ~completion = Sla.profit t.sla ~response:(completion -. t.arrival)

let loss_at t ~completion =
  Sla.loss_vs_ideal t.sla ~response:(completion -. t.arrival)

let ideal_profit t = Sla.max_gain t.sla

let compare_by_id a b = Int.compare a.id b.id

let pp ppf t =
  Fmt.pf ppf "q%d(arr=%g size=%g est=%g %a%t)" t.id t.arrival t.size t.est_size
    Sla.pp t.sla (fun ppf ->
      if t.tenant > 0 then Fmt.pf ppf " t%d" t.tenant;
      if t.retries > 0 then Fmt.pf ppf " retry=%d" t.retries)
