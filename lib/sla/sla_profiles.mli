(** The SLA shapes of the paper's evaluation (Fig 16), parameterized by
    the workload's mean execution time [mu]. *)

(** SLA-A: 1/0 profit, deadline [2 mu]. *)
val sla_a : mu:float -> Sla.t

(** SLA-B buyer: gain 2 within [mu], 1 within [5 mu], 0 after. *)
val sla_b_customer : mu:float -> Sla.t

(** SLA-B internal employee: gain 1 within [10 mu], penalty 10 after. *)
val sla_b_employee : mu:float -> Sla.t

(** Buyer:employee frequency ratio in SLA-B is 10:1. *)
val sla_b_customer_weight : int

val sla_b_employee_weight : int

(** SSBM rule: execution time above this many ms means employee SLA. *)
val ssbm_employee_threshold_ms : float
