(* The SLA profiles used in the paper's evaluation (Sec 7.1, Fig 16),
   parameterized by the mean query execution time [mu] of the workload. *)

let sla_a ~mu = Sla.one_zero ~bound:(2.0 *. mu)

let sla_b_customer ~mu =
  Sla.make
    ~levels:[ { bound = mu; gain = 2.0 }; { bound = 5.0 *. mu; gain = 1.0 } ]
    ~penalty:0.0

let sla_b_employee ~mu =
  Sla.make ~levels:[ { bound = 10.0 *. mu; gain = 1.0 } ] ~penalty:10.0

(* In SLA-B, buyer queries are 10x more frequent than employee queries
   (Sec 7.1). *)
let sla_b_customer_weight = 10
let sla_b_employee_weight = 1

(* SSBM correlation rule (Sec 7.1): queries longer than 20 ms come from
   internal employees, the rest from regular buyers. *)
let ssbm_employee_threshold_ms = 20.0
