(* Stepwise service level agreements (paper Sec 2.1, Fig 3).

   An SLA maps query response time to provider profit:
     response <= bound_1 -> gain_1
     bound_1 < response <= bound_2 -> gain_2
     ...
     response > bound_K -> -penalty
   with bounds strictly increasing and gains strictly decreasing down to
   -penalty. *)

type level = { bound : float; gain : float }

type component = { comp_bound : float; comp_gain : float }

type t = { levels : level array; penalty : float; comps : component array }

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(* Decomposition into g/0 components (Sec 4.2, Fig 8): profit(r) =
   offset + sum over components of (gain_k if r <= bound_k else 0),
   where offset = -penalty. Component gains are non-negative by the
   validation in [make]. Components with zero gain are dropped; they
   would create leaves that can never change any answer. Precomputed
   once here — the SLA-tree build expands every buffered query into
   units on each rebuild, and must not re-derive the decomposition. *)
let components_of levels penalty =
  let n = Array.length levels in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let next_gain = if i = n - 1 then -.penalty else levels.(i + 1).gain in
    if levels.(i).gain -. next_gain > 0.0 then incr count
  done;
  let comps =
    Array.make !count { comp_bound = 0.0; comp_gain = 0.0 }
  in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let next_gain = if i = n - 1 then -.penalty else levels.(i + 1).gain in
    let g = levels.(i).gain -. next_gain in
    if g > 0.0 then begin
      comps.(!k) <- { comp_bound = levels.(i).bound; comp_gain = g };
      incr k
    end
  done;
  comps

let make ~levels ~penalty =
  let levels = Array.of_list levels in
  if Array.length levels = 0 then invalid "SLA needs at least one level";
  if penalty < 0.0 then invalid "penalty must be non-negative";
  Array.iteri
    (fun i { bound; gain } ->
      if not (Float.is_finite bound && Float.is_finite gain) then
        invalid "level %d is not finite" i;
      if bound <= 0.0 then invalid "level %d bound must be positive" i;
      if i > 0 then begin
        if bound <= levels.(i - 1).bound then
          invalid "bounds must be strictly increasing at level %d" i;
        if gain >= levels.(i - 1).gain then
          invalid "gains must be strictly decreasing at level %d" i
      end)
    levels;
  if levels.(Array.length levels - 1).gain < -.penalty then
    invalid "last gain must be >= -penalty (profit is non-increasing)";
  { levels; penalty; comps = components_of levels penalty }

let single_step ~bound ~gain = make ~levels:[ { bound; gain } ] ~penalty:0.0
let one_zero ~bound = single_step ~bound ~gain:1.0

let levels t = Array.to_list t.levels
let num_levels t = Array.length t.levels
let penalty t = t.penalty
let max_gain t = t.levels.(0).gain
let first_deadline t = t.levels.(0).bound
let last_deadline t = t.levels.(Array.length t.levels - 1).bound

(* Profit for a query answered [response] after it arrived. On-time is
   inclusive: response = bound still earns the level's gain. *)
let profit t ~response =
  let n = Array.length t.levels in
  let rec loop i =
    if i >= n then -.t.penalty
    else if response <= t.levels.(i).bound then t.levels.(i).gain
    else loop (i + 1)
  in
  loop 0

(* Loss relative to the ideal world in which the first deadline is met
   (the paper's reported metric, Sec 7.1). *)
let loss_vs_ideal t ~response = max_gain t -. profit t ~response

(* The precomputed component array, bounds ascending. Hot-path callers
   (slack-unit expansion) index this directly instead of walking the
   list from [decompose]. *)
let components t = t.comps
let num_components t = Array.length t.comps

let decompose t = (Array.to_list t.comps, -.t.penalty)

(* Reconstruct the profit from a decomposition — used by tests and by
   the naive reference implementation. *)
let profit_of_decomposition (comps, offset) ~response =
  List.fold_left
    (fun acc { comp_bound; comp_gain } ->
      if response <= comp_bound then acc +. comp_gain else acc)
    offset comps

(* Expected profit when the response time is [elapsed + X] with
   X ~ Exp(rate): closed form over the SLA steps. This is the integral
   CBS needs (Sec 6.1 footnote; Peha-Tobagi's memoryless waiting-time
   assumption). *)
let expected_profit_exp t ~elapsed ~rate =
  if rate <= 0.0 then invalid_arg "Sla.expected_profit_exp: rate must be > 0";
  let surv bound =
    (* P(elapsed + X > bound) *)
    let d = bound -. elapsed in
    if d <= 0.0 then 1.0 else exp (-.rate *. d)
  in
  let n = Array.length t.levels in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let p_above_prev = if i = 0 then 1.0 else surv t.levels.(i - 1).bound in
    let p_above_cur = surv t.levels.(i).bound in
    acc := !acc +. (t.levels.(i).gain *. (p_above_prev -. p_above_cur))
  done;
  !acc +. (-.t.penalty *. surv t.levels.(n - 1).bound)

let expected_loss_exp t ~elapsed ~rate =
  max_gain t -. expected_profit_exp t ~elapsed ~rate

let equal a b =
  a.penalty = b.penalty
  && Array.length a.levels = Array.length b.levels
  && Array.for_all2
       (fun x y -> x.bound = y.bound && x.gain = y.gain)
       a.levels b.levels

let pp ppf t =
  let pp_level ppf { bound; gain } = Fmt.pf ppf "%g@%g" gain bound in
  Fmt.pf ppf "@[<h>SLA[%a; penalty=%g]@]"
    Fmt.(array ~sep:(any ", ") pp_level)
    t.levels t.penalty
