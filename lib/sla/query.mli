(** Queries: arrival time, execution time (actual and estimated) and an
    SLA.

    All profit-oriented decisions (scheduling, dispatching, the SLA-tree
    itself) see only [est_size]; the simulator charges [size]. The two
    coincide unless an estimation-error model is applied (Sec 7.5). *)

type t = private {
  id : int;  (** position in arrival order; unique per trace *)
  arrival : float;  (** absolute arrival time *)
  size : float;  (** actual execution time *)
  est_size : float;  (** execution time visible to decision makers *)
  sla : Sla.t;
  retries : int;
      (** crash re-injections so far; the SLA clock still runs from
          [arrival] (see {!retried}) *)
  tenant : int;
      (** owning tenant id; [0] is the anonymous single-tenant
          default, so pre-tenancy call sites behave unchanged *)
}

(** [make ~id ~arrival ~size ~sla ()] builds a query; [est_size]
    defaults to [size], [retries] and [tenant] to [0]. Raises
    [Invalid_argument] on negative times or a negative tenant. *)
val make :
  ?est_size:float -> ?retries:int -> ?tenant:int -> id:int -> arrival:float ->
  size:float -> sla:Sla.t -> unit -> t

(** The retry copy a crashed query re-enters the dispatcher as:
    identical except [retries] is incremented. Crucially the original
    [arrival] is kept, so deadlines, profit and response time keep
    being measured from the first arrival — a crash never resets the
    SLA clock. *)
val retried : t -> t

(** Absolute deadline for an SLA level bound. *)
val deadline : t -> bound:float -> float

(** Absolute deadline of the first (best) SLA level. *)
val first_deadline : t -> float

(** Profit if the query completes at absolute time [completion]. *)
val profit_at : t -> completion:float -> float

(** Loss vs the ideal world at absolute time [completion]. *)
val loss_at : t -> completion:float -> float

(** Profit when the first deadline is met. *)
val ideal_profit : t -> float

val compare_by_id : t -> t -> int
val pp : Format.formatter -> t -> unit
