(** Stepwise service level agreements (paper Sec 2.1, Fig 3).

    An SLA maps a query's response time (completion minus arrival) to
    the provider's profit: a decreasing staircase of gains followed by a
    penalty once the last deadline is missed. *)

(** One step: finishing within [bound] of arrival earns [gain]. *)
type level = { bound : float; gain : float }

type t

exception Invalid of string

(** [make ~levels ~penalty] validates and builds an SLA. Bounds must be
    positive and strictly increasing, gains strictly decreasing, and the
    last gain at least [-penalty]; [penalty >= 0]. Raises {!Invalid}
    otherwise. *)
val make : levels:level list -> penalty:float -> t

(** g/0 profit model (Fig 3b). *)
val single_step : bound:float -> gain:float -> t

(** 1/0 profit model (Fig 3c). *)
val one_zero : bound:float -> t

val levels : t -> level list
val num_levels : t -> int
val penalty : t -> float

(** Gain of the first (best) level — the "ideal world" profit. *)
val max_gain : t -> float

(** Bound of the first level. *)
val first_deadline : t -> float

(** Bound of the last level, after which the penalty applies. *)
val last_deadline : t -> float

(** [profit t ~response] is the provider's profit when the query is
    answered [response] time units after arrival (on-time inclusive). *)
val profit : t -> response:float -> float

(** [max_gain t - profit t ~response]: the paper's reported metric. *)
val loss_vs_ideal : t -> response:float -> float

(** A g/0 component of the decomposition: earns [comp_gain] iff the
    response is within [comp_bound]. *)
type component = { comp_bound : float; comp_gain : float }

(** [decompose t] rewrites the SLA as a constant offset ([-penalty])
    plus a sum of non-negative g/0 components (Sec 4.2, Fig 8).
    Components are ordered by increasing bound. *)
val decompose : t -> component list * float

(** The decomposition's components as an array, bounds ascending,
    precomputed at {!make} time. Callers must not mutate it. *)
val components : t -> component array

(** [Array.length (components t)]. *)
val num_components : t -> int

(** Inverse of {!decompose}; equals [profit] for every response time. *)
val profit_of_decomposition : component list * float -> response:float -> float

(** [expected_profit_exp t ~elapsed ~rate] is [E(profit (elapsed + X))]
    for [X ~ Exp(rate)] — the closed-form integral behind the CBS
    baseline's priority. *)
val expected_profit_exp : t -> elapsed:float -> rate:float -> float

val expected_loss_exp : t -> elapsed:float -> rate:float -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
