(** Array helpers (binary searches over sorted arrays).

    The SLA-tree descendant lists are id-sorted arrays; these searches
    implement the single root-level lookup of the paper's question
    answering (Sec 5.1). *)

val is_sorted : ('a -> 'a -> int) -> 'a array -> bool
val is_strictly_sorted : ('a -> 'a -> int) -> 'a array -> bool

(** [find_last_leq cmp a key] is the index of the largest element of the
    sorted array [a] that is [<= key], or [-1] when every element is
    greater. O(log n). *)
val find_last_leq : ('a -> 'a -> int) -> 'a array -> 'a -> int

(** [find_last_leq_int_range a ~off ~len key] is {!find_last_leq}
    restricted to the int slice [a.(off) .. a.(off + len - 1)],
    returning a slice-relative index (or [-1]). Used by the flat
    SLA-tree, whose id lists live inside one pooled array. *)
val find_last_leq_int_range : int array -> off:int -> len:int -> int -> int

(** [find_first_geq cmp a key] is the index of the first element
    [>= key], or [Array.length a] when none. O(log n). *)
val find_first_geq : ('a -> 'a -> int) -> 'a array -> 'a -> int

val sum_float : float array -> float
val init_matrix : int -> int -> (int -> int -> 'a) -> 'a array array
