(** Online summary statistics (Welford's algorithm).

    Numerically stable single-pass mean/variance, used to aggregate
    per-query profit losses and repeat-level results in the experiment
    harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

(** NaN when empty. *)
val mean : t -> float

(** Sum of all observations ([mean * count]). *)
val total : t -> float

(** Unbiased sample variance; NaN when fewer than two observations. *)
val variance : t -> float

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

(** Combine two summaries as if their observations were concatenated. *)
val merge : t -> t -> t

val of_array : float array -> t
val mean_of_array : float array -> float

(** Linear-interpolation percentile, [p] in [0, 100]. Copies and sorts
    the array on every call; for repeated queries over the same data,
    sort once and use {!percentile_of_sorted}. *)
val percentile : float array -> float -> float

(** {!percentile} over an array the caller has already sorted
    ascending; no copy, no sort. *)
val percentile_of_sorted : float array -> float -> float

val pp : Format.formatter -> t -> unit
