(* Online summary statistics (Welford) plus small helpers used by the
   experiment reports. *)

type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let mean t = if t.count = 0 then Float.nan else t.mean
let total t = t.mean *. Float.of_int t.count

let variance t =
  if t.count < 2 then Float.nan else t.m2 /. Float.of_int (t.count - 1)

let stddev t = sqrt (variance t)
let min_value t = if t.count = 0 then Float.nan else t.min
let max_value t = if t.count = 0 then Float.nan else t.max

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let nf = Float.of_int n in
    let mean = a.mean +. (delta *. Float.of_int b.count /. nf) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. Float.of_int a.count *. Float.of_int b.count /. nf)
    in
    {
      count = n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let mean_of_array xs = mean (of_array xs)

let percentile_of_sorted sorted p =
  if Array.length sorted = 0 then
    invalid_arg "Stats.percentile_of_sorted: empty array";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile_of_sorted: p out of range";
  let n = Array.length sorted in
  let rank = p /. 100.0 *. Float.of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. Float.of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_of_sorted sorted p

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.count (mean t)
    (stddev t) (min_value t) (max_value t)
