(* Growable ring buffer. The simulator's per-server buffers live here,
   so push/pop must not allocate and indexing must be O(1).

   [data] is allocated at the first push (there is no way to conjure an
   'a out of thin air before that); [filler] keeps one element around
   to overwrite freed slots with, so popped values are not retained. *)

type 'a t = {
  mutable data : 'a array;
  mutable head : int;  (* index of the front element *)
  mutable size : int;
  mutable want : int;  (* requested initial capacity *)
  mutable filler : 'a array;  (* length 0 until first push, then 1 *)
}

let create ?(capacity = 16) () =
  if capacity < 0 then invalid_arg "Deque.create: negative capacity";
  { data = [||]; head = 0; size = 0; want = max capacity 1; filler = [||] }

let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.data

let slot t i = (t.head + i) mod Array.length t.data

let clear_slot t i = t.data.(i) <- t.filler.(0)

(* Grow (or lazily allocate) so one more element fits; unwraps the ring
   so [head] returns to 0. *)
let ensure_room t x =
  let cap = Array.length t.data in
  if cap = 0 then begin
    t.data <- Array.make t.want x;
    t.filler <- [| x |];
    t.head <- 0
  end
  else if t.size = cap then begin
    let ndata = Array.make (cap * 2) x in
    for i = 0 to t.size - 1 do
      ndata.(i) <- t.data.(slot t i)
    done;
    t.data <- ndata;
    t.head <- 0
  end

let push_back t x =
  ensure_room t x;
  t.data.(slot t t.size) <- x;
  t.size <- t.size + 1

let pop_front t =
  if t.size = 0 then invalid_arg "Deque.pop_front: empty deque";
  let x = t.data.(t.head) in
  clear_slot t t.head;
  t.head <- slot t 1;
  t.size <- t.size - 1;
  if t.size = 0 then t.head <- 0;
  x

let peek_front t = if t.size = 0 then None else Some t.data.(t.head)

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Deque.get: index out of bounds";
  t.data.(slot t i)

let remove t i =
  if i < 0 || i >= t.size then invalid_arg "Deque.remove: index out of bounds";
  let x = t.data.(slot t i) in
  if i <= t.size - 1 - i then begin
    (* Shift the front part towards the back by one. *)
    for j = i downto 1 do
      t.data.(slot t j) <- t.data.(slot t (j - 1))
    done;
    clear_slot t t.head;
    t.head <- slot t 1
  end
  else begin
    (* Shift the back part towards the front by one. *)
    for j = i to t.size - 2 do
      t.data.(slot t j) <- t.data.(slot t (j + 1))
    done;
    clear_slot t (slot t (t.size - 1))
  end;
  t.size <- t.size - 1;
  if t.size = 0 then t.head <- 0;
  x

let filter_in_place t ~f =
  let removed = ref [] in
  let w = ref 0 in
  for r = 0 to t.size - 1 do
    let x = t.data.(slot t r) in
    if f x then begin
      if !w <> r then t.data.(slot t !w) <- x;
      incr w
    end
    else removed := x :: !removed
  done;
  for i = !w to t.size - 1 do
    clear_slot t (slot t i)
  done;
  t.size <- !w;
  if t.size = 0 then t.head <- 0;
  List.rev !removed

let clear t =
  for i = 0 to t.size - 1 do
    clear_slot t (slot t i)
  done;
  t.size <- 0;
  t.head <- 0

let iter t ~f =
  for i = 0 to t.size - 1 do
    f t.data.(slot t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(slot t i)
  done;
  !acc

let to_array t = Array.init t.size (fun i -> t.data.(slot t i))

let to_list t =
  let rec go acc i = if i < 0 then acc else go (t.data.(slot t i) :: acc) (i - 1) in
  go [] (t.size - 1)
