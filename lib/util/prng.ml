(* SplitMix64: fast, high-quality 64-bit PRNG with O(1) stream splitting.
   Used instead of [Random] so that every experiment is reproducible and
   independent sub-streams can be handed to independent components
   (arrival process, service times, SLA assignment, estimation noise)
   without correlation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  (* Derive an independent stream: one draw seeds the child. *)
  { state = next_int64 t }

(* Same avalanche as [next_int64]'s finalizer, as a pure function. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split_key t ~key =
  (* Keyed sub-seeding: the child state is a hash of (parent state,
     key). Unlike [split], the parent is NOT advanced, so handing out a
     keyed stream cannot perturb any draw the parent makes later —
     components gated behind a flag (fault injection) can take their
     stream without shifting the workload stream. [key + 1] keeps
     key 0 from collapsing into the parent's own next state. *)
  let salt = Int64.mul golden_gamma (Int64.of_int (key + 1)) in
  { state = mix64 (Int64.add (Int64.logxor t.state salt) golden_gamma) }

let bits53 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

(* Uniform float in [0, 1). *)
let float t = Float.of_int (bits53 t) *. 0x1p-53

(* Uniform float in (0, 1]: safe as an argument to [log]. *)
let float_pos t = 1.0 -. float t

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller (polar form avoided for simplicity;
   the trig form has no rejection loop and is deterministic per draw pair). *)
let gaussian t ~mu ~sigma =
  let u1 = float_pos t in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  -.mean *. log (float_pos t)

let pareto t ~x_min ~alpha =
  if x_min <= 0.0 || alpha <= 0.0 then
    invalid_arg "Prng.pareto: parameters must be positive";
  x_min /. (float_pos t ** (1.0 /. alpha))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
