(* Small array helpers shared by the SLA-tree (binary searches over
   id-sorted descendant lists) and the test suites. *)

let is_sorted cmp a =
  let n = Array.length a in
  let rec loop i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && loop (i + 1)) in
  loop 1

let is_strictly_sorted cmp a =
  let n = Array.length a in
  let rec loop i = i >= n || (cmp a.(i - 1) a.(i) < 0 && loop (i + 1)) in
  loop 1

(* Index of the largest element <= key in a sorted array, or -1 when all
   elements exceed key. This is exactly the lookup the SLA-tree performs
   once at the root of a descendant list. *)
let find_last_leq cmp a key =
  let lo = ref (-1) in
  let hi = ref (Array.length a - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if cmp a.(mid) key <= 0 then lo := mid else hi := mid - 1
  done;
  !lo

(* [find_last_leq] over the int slice [a.(off) .. a.(off + len - 1)]:
   the slice-relative index of the largest element <= key, or -1. The
   flat SLA-tree stores every node's id list inside one pooled array,
   so its root search works on (offset, length) slices. *)
let find_last_leq_int_range (a : int array) ~off ~len key =
  let lo = ref (-1) in
  let hi = ref (len - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if a.(off + mid) <= key then lo := mid else hi := mid - 1
  done;
  !lo

(* Index of the first element >= key, or [length a] when none. *)
let find_first_geq cmp a key =
  let n = Array.length a in
  let lo = ref 0 in
  let hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let sum_float a = Array.fold_left ( +. ) 0.0 a

let init_matrix rows cols f = Array.init rows (fun r -> Array.init cols (f r))
