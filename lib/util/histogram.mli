(** Fixed-bin histograms with linear or log10 binning.

    Reproduces the paper's Figure 15 (execution-time histograms for the
    exponential and Pareto workloads; the Pareto panel is log-scaled). *)

type scale = Linear | Log10

type t

(** [create ~scale ~lo ~hi ~bins] covers [lo, hi) with [bins] equal-width
    bins in the (possibly log-transformed) domain. *)
val create : scale:scale -> lo:float -> hi:float -> bins:int -> t

val add : t -> float -> unit

(** Per-bin counts (copy). *)
val counts : t -> int array

(** Total observations, including under/overflow. *)
val total : t -> int

val underflow : t -> int
val overflow : t -> int

(** Bounds of bin [i] in the original (untransformed) domain. *)
val bin_bounds : t -> int -> float * float

(** Sum of two histograms with identical scale, range and bin count
    (used by the observability registry to aggregate per-server
    histograms). Raises [Invalid_argument] on a shape mismatch. *)
val merge : t -> t -> t

(** Clear all counts in place, keeping the binning. *)
val reset : t -> unit

(** Percentile estimate from the binned counts ([p] in [0, 100]; NaN
    when empty). Linear interpolation inside the bin containing the
    target rank — within one bin width of the exact sorted-sample
    percentile. Underflow mass reports [lo], overflow mass [hi]. *)
val percentile : t -> float -> float

(** ASCII bar rendering. *)
val render : ?width:int -> Format.formatter -> t -> unit
