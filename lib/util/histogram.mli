(** Fixed-bin histograms with linear or log10 binning.

    Reproduces the paper's Figure 15 (execution-time histograms for the
    exponential and Pareto workloads; the Pareto panel is log-scaled). *)

type scale = Linear | Log10

type t

(** [create ~scale ~lo ~hi ~bins] covers [lo, hi) with [bins] equal-width
    bins in the (possibly log-transformed) domain. *)
val create : scale:scale -> lo:float -> hi:float -> bins:int -> t

val add : t -> float -> unit

(** Per-bin counts (copy). *)
val counts : t -> int array

(** Total observations, including under/overflow. *)
val total : t -> int

val underflow : t -> int
val overflow : t -> int

(** Bounds of bin [i] in the original (untransformed) domain. *)
val bin_bounds : t -> int -> float * float

(** ASCII bar rendering. *)
val render : ?width:int -> Format.formatter -> t -> unit
