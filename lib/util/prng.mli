(** Deterministic pseudo-random number generation (SplitMix64).

    Every randomized component of the reproduction takes an explicit
    generator so that experiments are replayable from a single seed and
    independent components consume independent streams. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] duplicates the generator state (the copy then evolves
    independently). *)
val copy : t -> t

(** [split t] advances [t] once and returns a statistically independent
    child stream. *)
val split : t -> t

(** [split_key t ~key] returns an independent child stream derived
    from [t]'s current state and [key], WITHOUT advancing [t]: the
    parent's subsequent draws are identical whether or not the child
    was taken. Distinct keys give distinct streams; equal (state, key)
    pairs give equal streams. Use this when an optional component
    (e.g. fault injection) must not perturb the streams of the
    components that are always on. *)
val split_key : t -> key:int -> t

(** Raw 64-bit draw. *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in (0, 1]; safe for [log]. *)
val float_pos : t -> float

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Normal draw with the given mean and standard deviation. *)
val gaussian : t -> mu:float -> sigma:float -> float

(** Exponential draw with the given mean (raises if [mean <= 0]). *)
val exponential : t -> mean:float -> float

(** Pareto draw: support [x_min, infinity), shape [alpha]. *)
val pareto : t -> x_min:float -> alpha:float -> float

(** Fisher-Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit
