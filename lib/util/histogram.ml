(* Fixed-bin histograms, linear or base-10 logarithmic, with an ASCII
   rendering used to reproduce the paper's Figure 15. *)

type scale = Linear | Log10

type t = {
  scale : scale;
  lo : float;
  hi : float;
  bins : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable count : int;
}

let create ~scale ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  (match scale with
  | Log10 when lo <= 0.0 ->
    invalid_arg "Histogram.create: log scale needs lo > 0"
  | Log10 | Linear -> ());
  { scale; lo; hi; bins = Array.make bins 0; underflow = 0; overflow = 0; count = 0 }

let transform scale x = match scale with Linear -> x | Log10 -> log10 x

let bin_index t x =
  let nbins = Array.length t.bins in
  match t.scale with
  | Log10 when x <= 0.0 -> -1
  | Linear | Log10 ->
    let lo = transform t.scale t.lo in
    let hi = transform t.scale t.hi in
    let v = transform t.scale x in
    if v < lo then -1
    else if v >= hi then nbins
    else int_of_float ((v -. lo) /. (hi -. lo) *. Float.of_int nbins)

let add t x =
  t.count <- t.count + 1;
  let i = bin_index t x in
  if i < 0 then t.underflow <- t.underflow + 1
  else if i >= Array.length t.bins then t.overflow <- t.overflow + 1
  else t.bins.(i) <- t.bins.(i) + 1

let counts t = Array.copy t.bins
let total t = t.count
let underflow t = t.underflow
let overflow t = t.overflow

let same_shape a b =
  a.scale = b.scale && a.lo = b.lo && a.hi = b.hi
  && Array.length a.bins = Array.length b.bins

(* Sum two histograms over the same binning — the observability
   registry uses this to aggregate per-server latency histograms into
   one farm-wide distribution. *)
let merge a b =
  if not (same_shape a b) then
    invalid_arg "Histogram.merge: histograms have different shapes";
  {
    scale = a.scale;
    lo = a.lo;
    hi = a.hi;
    bins = Array.init (Array.length a.bins) (fun i -> a.bins.(i) + b.bins.(i));
    underflow = a.underflow + b.underflow;
    overflow = a.overflow + b.overflow;
    count = a.count + b.count;
  }

let reset t =
  Array.fill t.bins 0 (Array.length t.bins) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.count <- 0

(* Percentile estimate from the binned counts, linear interpolation in
   the (possibly log-transformed) domain within the bin that contains
   the target rank. Exact to within one bin width of the sorted-sample
   percentile (the fuzz tests in test_util.ml pin this bound down).
   Underflow mass is attributed to [lo], overflow mass to [hi]. *)
let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p in [0,100]";
  if t.count = 0 then Float.nan
  else begin
    let target = p /. 100.0 *. Float.of_int t.count in
    if target <= Float.of_int t.underflow then t.lo
    else begin
      let nbins = Array.length t.bins in
      let lo' = transform t.scale t.lo in
      let hi' = transform t.scale t.hi in
      let w = (hi' -. lo') /. Float.of_int nbins in
      let untransform v =
        match t.scale with Linear -> v | Log10 -> 10.0 ** v
      in
      let rec walk i cum =
        if i >= nbins then t.hi
        else begin
          let k = t.bins.(i) in
          let cum' = cum +. Float.of_int k in
          if k > 0 && target <= cum' then begin
            let frac = (target -. cum) /. Float.of_int k in
            untransform (lo' +. ((Float.of_int i +. frac) *. w))
          end
          else walk (i + 1) cum'
        end
      in
      walk 0 (Float.of_int t.underflow)
    end
  end

let bin_bounds t i =
  let nbins = Array.length t.bins in
  if i < 0 || i >= nbins then invalid_arg "Histogram.bin_bounds: index";
  let lo = transform t.scale t.lo in
  let hi = transform t.scale t.hi in
  let w = (hi -. lo) /. Float.of_int nbins in
  let a = lo +. (Float.of_int i *. w) in
  let b = a +. w in
  match t.scale with
  | Linear -> (a, b)
  | Log10 -> (10.0 ** a, 10.0 ** b)

let render ?(width = 50) ppf t =
  let peak = Array.fold_left max 1 t.bins in
  Array.iteri
    (fun i n ->
      let a, b = bin_bounds t i in
      (* Non-empty bins always show at least one mark: rounding down to
         zero would make a small bin indistinguishable from an empty
         one. *)
      let bar = String.make (if n > 0 then max 1 (n * width / peak) else 0) '#' in
      Fmt.pf ppf "[%10.4g, %10.4g) %8d %s@." a b n bar)
    t.bins;
  if t.underflow > 0 then Fmt.pf ppf "underflow %d@." t.underflow;
  if t.overflow > 0 then Fmt.pf ppf "overflow  %d@." t.overflow
