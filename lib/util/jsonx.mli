(** Minimal JSON: a parser and printer for the toolchain's hand-rolled
    JSON surfaces (the wire protocol's newline-JSON framing, scrape
    snapshots, test-side validation). No external dependency.

    Two deliberate deviations from strict JSON, both for exact float
    round-trips: numbers are printed with [%.17g] (so every finite
    IEEE double survives print→parse bit-exactly), and the bare tokens
    [inf], [-inf] and [nan] are accepted and printed for non-finite
    floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Raises {!Parse_error} on malformed input (position included).
    Rejects trailing garbage after the top-level value. *)
val parse : string -> t

val parse_opt : string -> t option

(** Compact single-line rendering. *)
val to_string : t -> string

(** Object field lookup (first match); [None] on non-objects. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

(** Exact float literal, [%.17g] ([inf]/[-inf]/[nan] when
    non-finite) — shared by every hand-rolled writer that needs
    round-trip-exact floats. *)
val float_literal : float -> string
