(* Minimal JSON parser/printer. The repo has no JSON dependency and
   its schemas are small, so a ~150-line recursive descent keeps the
   wire protocol's debug framing and the scrape endpoint parseable
   from OCaml tests without adding one.

   Floats print as %.17g — enough significant digits that every
   finite IEEE double survives print→parse exactly (float_of_string
   rounds correctly). Non-finite floats use the bare tokens inf /
   -inf / nan, accepted on parse as an extension. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "%s at %d" s pos))) fmt

let float_literal f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.17g" f

(* ------------------------------------------------------------------ *)
(* Parser *)

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> fail st.pos "expected %C, got %C" c got
  | None -> fail st.pos "expected %C, got end of input" c

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st.pos "bad literal (expected %s)" word

let parse_string_body st =
  (* Called past the opening quote. *)
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st.pos "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> begin
      if st.pos >= String.length st.s then fail st.pos "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char b '"'
      | '\\' -> Buffer.add_char b '\\'
      | '/' -> Buffer.add_char b '/'
      | 'b' -> Buffer.add_char b '\b'
      | 'f' -> Buffer.add_char b '\012'
      | 'n' -> Buffer.add_char b '\n'
      | 'r' -> Buffer.add_char b '\r'
      | 't' -> Buffer.add_char b '\t'
      | 'u' ->
        if st.pos + 4 > String.length st.s then fail st.pos "short \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let code =
          match int_of_string_opt ("0x" ^ hex) with
          | Some v -> v
          | None -> fail st.pos "bad \\u escape %S" hex
        in
        (* UTF-8 encode the code point (surrogates passed through as
           3-byte sequences — enough for the ASCII-centric schemas
           here). *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
      | c -> fail st.pos "bad escape \\%C" c);
      go ()
    end
    | c when Char.code c < 0x20 -> fail (st.pos - 1) "raw control char in string"
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some v -> Num v
  | None -> fail start "bad number %S" tok

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        expect st '"';
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((key, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail st.pos "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          Arr (List.rev (v :: acc))
        | _ -> fail st.pos "expected ',' or ']'"
      in
      items []
    end
  | Some '"' ->
    st.pos <- st.pos + 1;
    Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' ->
    (* "null" or the "nan" extension. *)
    if
      st.pos + 4 <= String.length st.s && String.sub st.s st.pos 4 = "null"
    then begin
      st.pos <- st.pos + 4;
      Null
    end
    else literal st "nan" (Num Float.nan)
  | Some 'i' -> literal st "inf" (Num Float.infinity)
  | Some '-'
    when st.pos + 1 < String.length st.s && st.s.[st.pos + 1] = 'i' ->
    st.pos <- st.pos + 1;
    literal st "inf" (Num Float.neg_infinity)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos "unexpected %C" c

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st.pos "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f -> Buffer.add_string b (float_literal f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go x)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
    Some (Float.to_int f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
