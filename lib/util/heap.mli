(** Array-backed binary min-heap.

    Backs the simulator's event queue and priority-based schedulers.
    All operations are the textbook complexities: [push]/[pop] are
    O(log n), [peek] is O(1). *)

type 'a t

(** [create cmp] makes an empty heap ordered by [cmp] (minimum first).

    [capacity] (default 16) sizes the backing array: pushing up to
    [capacity] elements performs exactly one allocation and never
    regrows. The array itself is allocated at the first [push]. *)
val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Current backing-array size (the requested [capacity] before the
    first push). [push] only allocates when [length] reaches this. *)
val capacity : 'a t -> int

val push : 'a t -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> 'a option

val peek_exn : 'a t -> 'a

(** Remove and return the smallest element. The vacated slot in the
    backing array is overwritten with a junk value so the popped
    element is not pinned against the GC (same technique as
    [Deque]'s filler slot). *)
val pop : 'a t -> 'a option

val pop_exn : 'a t -> 'a

(** Empty the heap, releasing every element reference it held. *)
val clear : 'a t -> unit

(** Elements in unspecified (heap) order. *)
val to_list : 'a t -> 'a list

(** Build a heap from a list in O(n) (Floyd's bottom-up heapify),
    with the backing array sized to [max capacity (List.length xs)]
    in a single allocation. *)
val of_list : ?capacity:int -> ('a -> 'a -> int) -> 'a list -> 'a t
