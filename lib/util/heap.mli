(** Array-backed binary min-heap.

    Backs the simulator's event queue and priority-based schedulers.
    All operations are the textbook complexities: [push]/[pop] are
    O(log n), [peek] is O(1). *)

type 'a t

(** [create cmp] makes an empty heap ordered by [cmp] (minimum first). *)
val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> 'a option

val peek_exn : 'a t -> 'a

(** Remove and return the smallest element. *)
val pop : 'a t -> 'a option

val pop_exn : 'a t -> 'a

val clear : 'a t -> unit

(** Elements in unspecified (heap) order. *)
val to_list : 'a t -> 'a list

val of_list : ('a -> 'a -> int) -> 'a list -> 'a t
