(** Array-backed FIFO deque (growable ring buffer).

    Backs the simulator's per-server buffers, so the common operations
    are allocation-free: [push_back]/[pop_front] are amortized O(1),
    [get]/[length] are O(1). Indices are relative to the front
    (0 = oldest element). *)

type 'a t

(** [create ?capacity ()] makes an empty deque. The backing array is
    allocated lazily at the first push (at least [capacity] slots). *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Physical slots currently allocated (introspection for tests). *)
val capacity : 'a t -> int

val push_back : 'a t -> 'a -> unit

(** Remove and return the oldest element. Raises [Invalid_argument]
    when empty. *)
val pop_front : 'a t -> 'a

(** Oldest element without removing it. *)
val peek_front : 'a t -> 'a option

(** [get t i] is the i-th element from the front; O(1). Raises
    [Invalid_argument] out of bounds. *)
val get : 'a t -> int -> 'a

(** [remove t i] removes and returns the i-th element, preserving the
    order of the others; O(min(i, n-i)) moves, no allocation. *)
val remove : 'a t -> int -> 'a

(** Remove every element on which [f] is false, preserving order;
    returns the removed elements front-to-back. O(n). *)
val filter_in_place : 'a t -> f:('a -> bool) -> 'a list

val clear : 'a t -> unit

val iter : 'a t -> f:('a -> unit) -> unit

(** Left fold, front to back. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

(** Elements front-to-back in a fresh array. *)
val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list
