(* Array-backed binary min-heap. The simulator's event queue and several
   schedulers sit on top of this, so it favours low constant factors:
   no option boxing on the hot path, amortized O(1) growth. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  want : int;
  cmp : 'a -> 'a -> int;
  (* Same trick as [Deque.filler]: a junk value of type ['a] (the first
     element ever pushed) used to overwrite vacated slots, so popped
     elements — queries, closures — are not pinned against the GC for
     the heap's lifetime. Length 0 until the first push, 1 after. *)
  mutable filler : 'a array;
}

(* The backing array is allocated lazily at the first push (there is no
   dummy ['a] to fill it with before that), but at the requested
   [capacity], so a correctly sized heap never regrows. *)
let create ?(capacity = 16) cmp =
  { data = [||]; size = 0; want = max capacity 1; cmp; filler = [||] }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = if Array.length t.data = 0 then t.want else Array.length t.data

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then t.want else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if Array.length t.filler = 0 then t.filler <- [| x |];
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let peek_exn t =
  if t.size = 0 then invalid_arg "Heap.peek_exn: empty heap";
  t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Slot [t.size] is vacated either way: it held the element we just
       moved to the root, or (when the heap emptied) the root itself. *)
    t.data.(t.size) <- t.filler.(0);
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  if Array.length t.filler > 0 then
    Array.fill t.data 0 t.size t.filler.(0);
  t.size <- 0

let to_list t =
  let rec loop acc i = if i < 0 then acc else loop (t.data.(i) :: acc) (i - 1) in
  loop [] (t.size - 1)

(* Floyd's bottom-up heapify: O(n) instead of the O(n log n) of n
   pushes, and the backing array is sized to the list (or the larger
   requested [capacity]) in a single allocation. *)
let of_list ?capacity cmp xs =
  match xs with
  | [] -> create ?capacity cmp
  | x :: _ ->
    let n = List.length xs in
    let cap = match capacity with Some c -> max (max c 1) n | None -> n in
    let data = Array.make cap x in
    List.iteri (fun i v -> data.(i) <- v) xs;
    let t = { data; size = n; want = cap; cmp; filler = [| x |] } in
    for i = (n / 2) - 1 downto 0 do
      sift_down t i
    done;
    t
