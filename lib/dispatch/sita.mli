(** Size-Interval Task Assignment (SITA) dispatching — the
    Schroeder & Harchol-Balter baseline cited in paper Sec 2.3.
    Queries are classified by estimated size; each class owns its
    server(s), so short queries never wait behind huge ones. *)

(** SITA-E cutoffs: interior boundaries splitting the sampled total
    work into [classes] equal shares. Ascending, length
    [classes - 1]. *)
val cutoffs_equal_work : sizes:float array -> classes:int -> float array

(** Class index of a size, in [0 .. Array.length cutoffs]. *)
val class_of : cutoffs:float array -> float -> int

(** Dispatcher routing class [c] to servers with
    [sid mod classes = c], least-work-left within the class. *)
val dispatcher : cutoffs:float array -> Dispatchers.t

(** Derive cutoffs by sampling the workload's size distribution. *)
val for_workload :
  ?sample_size:int -> seed:int -> Workloads.kind -> classes:int -> Dispatchers.t
