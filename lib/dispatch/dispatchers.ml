(* Dispatchers: concrete [Sim.dispatch] values (paper Secs 2.3, 6.2).

   Round-Robin and LWL are the profit-unaware baselines; the SLA-tree
   dispatcher asks every server the what-if question "what is your
   profit delta if this query joins your buffer?" and picks the
   argmax. *)

type t = { name : string; make : unit -> Sim.dispatch }

let name t = t.name

(* Decision-latency wrapper, mirroring [Schedulers.timed]: handles
   resolved once per instantiation, raw dispatch returned when the
   sink is disabled. A dispatch that raises (e.g. [no_server] during
   pool churn) still took a decision and still spent the time, so the
   latency observation and the decision count are recorded on both
   exits — otherwise [dispatch.decision_ns] silently under-reports
   exactly the churny intervals it should be illuminating. *)
let timed obs dispatch =
  if not (Obs.enabled obs) then dispatch
  else begin
    let reg = Obs.registry obs in
    let lat = Obs.Registry.histogram reg "dispatch.decision_ns" in
    let n = Obs.Registry.counter reg "dispatch.decisions" in
    let rejected = Obs.Registry.counter reg "dispatch.rejected" in
    let record t0 =
      Obs.Registry.observe lat (Int64.to_float (Int64.sub (Obs.now_ns ()) t0));
      Obs.Registry.incr n
    in
    fun sim q ->
      let t0 = Obs.now_ns () in
      match dispatch sim q with
      | d ->
        record t0;
        if d.Sim.target = None then Obs.Registry.incr rejected;
        d
      | exception e ->
        record t0;
        raise e
  end

(* Each run gets a fresh closure so stateful dispatchers (Round-Robin's
   counter) do not leak state across repeats. *)
let instantiate ?(obs = Obs.noop) t = timed obs (t.make ())

(* Constructor for dispatchers defined outside this module (SITA and
   friends). *)
let v ~name make = { name; make }

(* All dispatchers consider only servers currently accepting work
   (booting and draining servers are skipped — see Sim's pool life
   cycle); on a static pool every server qualifies and behavior is
   unchanged. *)

let no_server () = invalid_arg "Dispatchers: no server accepts work"

(* Uniformly random dispatchable server — the weakest sensible
   baseline. Draw order matches the static-pool stream: index k among
   the dispatchable servers in sid order. *)
let random ~seed =
  {
    name = "Random";
    make =
      (fun () ->
        let rng = Prng.create seed in
        fun sim _q ->
          let m = Sim.n_servers sim in
          let avail = ref 0 in
          for sid = 0 to m - 1 do
            if Sim.dispatchable sim sid then incr avail
          done;
          if !avail = 0 then no_server ();
          let k = ref (Prng.int rng !avail) and chosen = ref (-1) in
          for sid = 0 to m - 1 do
            if Sim.dispatchable sim sid then begin
              if !k = 0 && !chosen < 0 then chosen := sid;
              decr k
            end
          done;
          { Sim.target = Some !chosen; est_delta = None });
  }

let round_robin =
  {
    name = "RR";
    make =
      (fun () ->
        let next = ref 0 in
        fun sim _q ->
          let m = Sim.n_servers sim in
          let rec find tries sid =
            if tries >= m then no_server ()
            else if Sim.dispatchable sim sid then sid
            else find (tries + 1) ((sid + 1) mod m)
          in
          let sid = find 0 (!next mod m) in
          next := (sid + 1) mod m;
          { Sim.target = Some sid; est_delta = None });
  }

(* Least-work-left: the server with the smallest estimated backlog. *)
let lwl =
  {
    name = "LWL";
    make =
      (fun () sim _q ->
        let m = Sim.n_servers sim in
        let best = ref (-1) and best_work = ref infinity in
        for sid = 0 to m - 1 do
          if Sim.dispatchable sim sid then begin
            let w = Sim.est_work_left sim (Sim.server sim sid) in
            if w < !best_work then begin
              best := sid;
              best_work := w
            end
          end
        done;
        if !best < 0 then no_server ();
        { Sim.target = Some !best; est_delta = None });
  }

(* Profit delta of adding [q] to server [sid], whose scheduler plans
   with [planner]: build the SLA-tree over the server's planned buffer
   (anchored at its estimated free time) and evaluate the insertion
   at the rank the planner would give the newcomer (Sec 6.2).

   Heterogeneous farms (the paper's explicit claim: "the potential
   impact ... is computed based on the execution time of q on Si"):
   each server sees execution times scaled by its own speed, so the
   what-if is evaluated on speed-adjusted copies of the queries. *)
let scale_query speed query =
  if speed = 1.0 then query
  else
    Query.make ~id:query.Query.id ~arrival:query.Query.arrival
      ~size:query.Query.size
      ~est_size:(query.Query.est_size /. speed)
      ~sla:query.Query.sla ~retries:query.Query.retries
      ~tenant:query.Query.tenant ()

let insertion_profit ?impl ?arena planner sim sid q =
  let srv = Sim.server sim sid in
  let speed = srv.Sim.speed in
  let free_at = Sim.est_free_at sim srv in
  let buffer = Sim.buffer_array srv in
  let planned =
    Array.map (scale_query speed)
      (Planner.planned_queries planner ~now:(Sim.now sim) buffer)
  in
  let tree =
    Sla_tree.of_entries ?impl ?arena ~now:free_at
      (Schedule.of_queries ~now:free_at planned)
  in
  let q' = scale_query speed q in
  let pos = Planner.insertion_rank planner ~now:(Sim.now sim) planned q' in
  What_if.insertion_delta tree ~query:q' ~pos

(* Memoized what-if probes: one cached SLA-tree per server, rebuilt
   only when the server's event generation or anchor time moved.

   Validity argument. The tree's contents are a pure function of
   (planned buffer, speed, free_at): [Sim.gen] bumps on every event
   that can change the buffer, the running query or the speed, and
   [free_at] covers the one remaining input (an idle or overrun
   server's anchor is [now] itself, which moves between arrivals with
   no event). The planned order is reused too, which is only sound for
   time-invariant planners — the caller gates on
   [Planner.time_invariant]. Each cache entry owns its arena (an arena
   holds one live tree), so steady-state rebuilds allocate nothing.

   An empty buffer short-circuits: inserting into an empty schedule
   postpones nobody, and the tree path reduces to exactly
   [profit_at q' ~completion:(free_at + est)] — same floats, no tree. *)
type probe_cache = {
  mutable gen : int;
  mutable free_at : float;
  mutable planned : Query.t array;
  mutable tree : Sla_tree.t;
  arena : Sla_tree.arena;
}

let cached_insertion_profit ?impl planner =
  let caches : probe_cache option array ref = ref [||] in
  let entry_of sid =
    let n = Array.length !caches in
    if sid >= n then begin
      let grown = Array.make (max (sid + 1) (max 8 (2 * n))) None in
      Array.blit !caches 0 grown 0 n;
      caches := grown
    end;
    match !caches.(sid) with
    | Some e -> e
    | None ->
      let e =
        {
          gen = -1;
          free_at = nan;
          planned = [||];
          tree = Sla_tree.of_entries ?impl ~now:0.0 [||];
          arena = Sla_tree.create_arena ();
        }
      in
      !caches.(sid) <- Some e;
      e
  in
  fun sim sid q ->
    let srv = Sim.server sim sid in
    let speed = srv.Sim.speed in
    let q' = scale_query speed q in
    let free_at = Sim.est_free_at sim srv in
    if Sim.buffer_length srv = 0 then
      Query.profit_at q' ~completion:(free_at +. q'.Query.est_size)
    else begin
      let e = entry_of sid in
      if e.gen <> srv.Sim.gen || e.free_at <> free_at then begin
        let buffer = Sim.buffer_array srv in
        let planned =
          Array.map (scale_query speed)
            (Planner.planned_queries planner ~now:(Sim.now sim) buffer)
        in
        e.planned <- planned;
        e.tree <-
          Sla_tree.of_entries ?impl ~arena:e.arena ~now:free_at
            (Schedule.of_queries ~now:free_at planned);
        e.gen <- srv.Sim.gen;
        e.free_at <- free_at
      end;
      let pos =
        Planner.insertion_rank_sorted planner ~now:(Sim.now sim) e.planned q'
      in
      What_if.insertion_delta e.tree ~query:q' ~pos
    end

(* SLA-tree dispatching. Profit decides; exact profit ties (common
   when every candidate server meets the query's deadline anyway) fall
   back to least work left, so indifference does not pile queries onto
   server 0. With [admission] set, a query whose best profit delta is
   negative is rejected outright. *)
let argmax_profit ~admission profit_of sim q =
  let m = Sim.n_servers sim in
  let best = ref (-1)
  and best_delta = ref neg_infinity
  and best_work = ref infinity in
  for sid = 0 to m - 1 do
    if Sim.dispatchable sim sid then begin
      let d = profit_of sim sid q in
      let w = Sim.est_work_left sim (Sim.server sim sid) in
      if !best < 0 || d > !best_delta || (d = !best_delta && w < !best_work)
      then begin
        best := sid;
        best_delta := d;
        best_work := w
      end
    end
  done;
  if !best < 0 then no_server ();
  if admission && !best_delta < 0.0 then
    { Sim.target = None; est_delta = Some !best_delta }
  else { Sim.target = Some !best; est_delta = Some !best_delta }

let sla_tree_with ~name profit_of ~admission =
  { name; make = (fun () -> argmax_profit ~admission profit_of) }

(* The candidate loop memoizes per-server trees whenever the planner's
   order cannot depend on the decision time; [?memo:false] forces the
   historical rebuild-per-candidate behavior (the test oracle), and
   CBS-style time-dependent planners fall back to it on their own. *)
let sla_tree ?(admission = false) ?(memo = true) ?impl planner =
  let name = if admission then "SLA-tree+AC" else "SLA-tree" in
  if memo && Planner.time_invariant planner then
    {
      name;
      make =
        (fun () ->
          argmax_profit ~admission (cached_insertion_profit ?impl planner));
    }
  else sla_tree_with ~name (insertion_profit ?impl planner) ~admission

(* The incremental FCFS fast path. Under FCFS the newcomer always
   ranks last ([insertion_rank] = N), so [What_if.insertion_delta]
   postpones nobody: the what-if collapses to the newcomer's own
   profit at the end of the server's estimated schedule. That tail is
   exactly [now + est_work_left] — the accumulator the simulator
   already maintains per server — so each server's answer is O(1) and
   the per-arrival, per-server [Sla_tree.build] disappears entirely.
   Same answers as [sla_tree Planner.fcfs], including on heterogeneous
   farms (the schedule tail and the newcomer's execution time are both
   speed-scaled, like [insertion_profit]'s scaled copies). *)
let insertion_profit_fcfs sim sid q =
  let srv = Sim.server sim sid in
  Query.profit_at q
    ~completion:
      (Sim.now sim
      +. Sim.est_work_left sim srv
      +. (q.Query.est_size /. srv.Sim.speed))

let fcfs_sla_tree_incr ?(admission = false) () =
  sla_tree_with
    ~name:(if admission then "SLA-tree+AC(incr)" else "SLA-tree(incr)")
    insertion_profit_fcfs ~admission
