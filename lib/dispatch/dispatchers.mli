(** Dispatchers: named [Sim.dispatch] factories (paper Secs 2.3, 6.2).

    [instantiate] returns a fresh closure per run so stateful policies
    don't leak state across repeats. *)

type t

val name : t -> string

(** When [obs] is an enabled sink, the dispatch is wrapped to record
    per-decision latency ([dispatch.decision_ns] histogram,
    [dispatch.decisions] / [dispatch.rejected] counters); over the
    default {!Obs.noop} the raw closure is returned. *)
val instantiate : ?obs:Obs.t -> t -> Sim.dispatch

(** Constructor for dispatchers defined in other modules. *)
val v : name:string -> (unit -> Sim.dispatch) -> t

(** Uniformly random server. *)
val random : seed:int -> t

(** Cycle through servers. *)
val round_robin : t

(** Least-work-left: smallest estimated backlog wins. *)
val lwl : t

(** Profit delta of inserting [q] into server [sid]'s buffer as planned
    by [planner] (exposed for tests and capacity planning). [?impl]
    picks the tree representation; [?arena] reuses flat-tree storage
    across calls. *)
val insertion_profit :
  ?impl:Sla_tree.impl ->
  ?arena:Sla_tree.arena ->
  Planner.t ->
  Sim.t ->
  int ->
  Query.t ->
  float

(** SLA-tree dispatching: argmax of {!insertion_profit} over servers
    (exact profit ties fall back to least work left); reports the
    chosen delta through [est_delta]. With [admission], queries whose
    best delta is negative are rejected.

    For time-invariant planners the candidate loop memoizes one
    SLA-tree per server, keyed on the server's event generation and
    anchor time, rebuilding only when the server actually changed —
    identical decisions to the rebuild-per-candidate path.
    [?memo:false] disables the cache (the equivalence oracle); [?impl]
    selects the tree representation. *)
val sla_tree : ?admission:bool -> ?memo:bool -> ?impl:Sla_tree.impl -> Planner.t -> t

(** O(1)-per-server profit of appending [q] to server [sid]'s FCFS
    schedule: under FCFS the newcomer ranks last and postpones nobody,
    so the what-if is its own profit at [now + est_work_left +
    est_size/speed] (exposed for tests). *)
val insertion_profit_fcfs : Sim.t -> int -> Query.t -> float

(** [sla_tree Planner.fcfs] without any per-decision tree build:
    {!insertion_profit_fcfs} answers each server's what-if from the
    incrementally maintained backlog accumulator. Identical picks. *)
val fcfs_sla_tree_incr : ?admission:bool -> unit -> t
