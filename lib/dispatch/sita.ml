(* Size-Interval Task Assignment (SITA), the dispatching baseline of
   Schroeder & Harchol-Balter cited in paper Sec 2.3: queries are
   classified by (estimated) execution time and each size class owns a
   dedicated server, so short queries never queue behind monsters.

   The classic SITA-E variant picks the interval cutoffs so that every
   class carries an equal share of the expected work; [cutoffs_equal_work]
   derives them from a sample of the workload. *)

(* Interior cutoffs c_1 < ... < c_{k-1} splitting the sampled total
   work into [classes] equal shares: class i serves sizes in
   (c_i, c_{i+1}]. With heavy tails the top class may hold only a few
   giant queries — that is SITA working as intended. *)
let cutoffs_equal_work ~sizes ~classes =
  if classes < 1 then invalid_arg "Sita.cutoffs_equal_work: classes < 1";
  if Array.length sizes = 0 then
    invalid_arg "Sita.cutoffs_equal_work: empty sample";
  let sorted = Array.copy sizes in
  Array.sort Float.compare sorted;
  let total = Arrayx.sum_float sorted in
  let cutoffs = Array.make (classes - 1) 0.0 in
  let acc = ref 0.0 in
  let next = ref 0 in
  Array.iter
    (fun s ->
      acc := !acc +. s;
      while
        !next < classes - 1
        && !acc >= total *. Float.of_int (!next + 1) /. Float.of_int classes
      do
        cutoffs.(!next) <- s;
        incr next
      done)
    sorted;
  (* Degenerate samples (all equal, or extreme skew) can leave trailing
     cutoffs unset; pin them to the max so the classes stay ordered. *)
  let max_size = sorted.(Array.length sorted - 1) in
  for i = !next to classes - 2 do
    cutoffs.(i) <- max_size
  done;
  cutoffs

(* Class of a query size under the given interior cutoffs: the number
   of cutoffs strictly below it, in [0 .. Array.length cutoffs]. *)
let class_of ~cutoffs size =
  let k = Array.length cutoffs in
  let rec go i = if i >= k || size <= cutoffs.(i) then i else go (i + 1) in
  go 0

(* SITA dispatcher: server [class mod m]. When there are more servers
   than classes the spare servers host the spill of the largest class
   via least-work-left among the class's servers. *)
let dispatcher ~cutoffs =
  Dispatchers.v ~name:"SITA" (fun () sim q ->
      let m = Sim.n_servers sim in
      let classes = Array.length cutoffs + 1 in
      let c = class_of ~cutoffs q.Query.est_size in
      (* Servers assigned to class c: those with sid mod classes = c
         (spares host the spill), least-work-left within the class. *)
      let best = ref (-1) and best_work = ref infinity in
      let consider sid =
        if Sim.dispatchable sim sid then begin
          let w = Sim.est_work_left sim (Sim.server sim sid) in
          if w < !best_work then begin
            best := sid;
            best_work := w
          end
        end
      in
      for sid = 0 to m - 1 do
        if sid mod classes = c mod classes then consider sid
      done;
      (* Elastic pools can leave a class with no accepting server;
         spill to least-work-left over whoever accepts. *)
      if !best < 0 then
        for sid = 0 to m - 1 do
          consider sid
        done;
      if !best < 0 then invalid_arg "Sita: no server accepts work";
      { Sim.target = Some !best; est_delta = None })

(* Build a SITA dispatcher for a workload by sampling it: the paper's
   experimental setting gives the dispatcher distribution knowledge,
   not trace knowledge. *)
let for_workload ?(sample_size = 10_000) ~seed kind ~classes =
  let rng = Prng.create seed in
  let dist = Workloads.dist kind in
  let sizes = Array.init sample_size (fun _ -> Service_dist.sample dist rng) in
  dispatcher ~cutoffs:(cutoffs_equal_work ~sizes ~classes)
