(* Zero-cost observability for the simulator stack.

   One [Obs.t] sink is threaded through a run and carries three
   instruments:

   - [Registry]: named counters, gauges and latency histograms
     (reusing [Util.Histogram]), snapshot as JSON or pretty-printed;
   - [Trace]: a bounded ring buffer of structured begin/end spans and
     instant events on the host's monotonic clock, exported as Chrome
     trace-event JSON (loadable in Perfetto / chrome://tracing) or
     JSONL;
   - [Timeseries] (standalone): a per-tick sampler of pool-level
     state, written as CSV or JSON.

   The cost discipline: every instrumentation site resolves its
   handles once at instantiation and guards the hot path with a single
   [Obs.enabled] branch; the shared [noop] sink is permanently
   disabled, so a run without observability pays one predictable
   branch per event and allocates nothing. *)

let now_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* Shared JSON helpers (the toolchain has no JSON dependency; the
   schemas here are flat enough for a hand-rolled writer). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

(* ------------------------------------------------------------------ *)
(* Registry *)

module Registry = struct
  type counter = { c_name : string; mutable c : int }
  type gauge = { g_name : string; mutable g : float }

  type histogram = {
    h_name : string;
    h : Histogram.t;  (** shared, reset in place *)
  }

  type t = {
    counters : (string, counter) Hashtbl.t;
    gauges : (string, gauge) Hashtbl.t;
    hists : (string, histogram) Hashtbl.t;
    (* Guards name resolution only: handle *resolution* can happen
       concurrently when parallel experiment workers instantiate
       schedulers against the shared [noop] registry, and unguarded
       [Hashtbl.add] from two domains corrupts the table. Handle
       *operations* (incr/set/observe) stay lock-free — enabled sinks
       are only ever used single-domain. *)
    m : Mutex.t;
  }

  let create () =
    {
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      hists = Hashtbl.create 8;
      m = Mutex.create ();
    }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let counter t name =
    locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c = 0 } in
        Hashtbl.add t.counters name c;
        c)

  let gauge t name =
    locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g = 0.0 } in
        Hashtbl.add t.gauges name g;
        g)

  (* Default binning covers 1 ns .. 10 s logarithmically, 10 bins per
     decade — wide enough for any host-side latency this repo times.
     Re-requesting an existing name returns the registered histogram
     and ignores the shape arguments. *)
  let histogram ?(scale = Histogram.Log10) ?(lo = 1.0) ?(hi = 1e10)
      ?(bins = 100) t name =
    locked t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        let h = { h_name = name; h = Histogram.create ~scale ~lo ~hi ~bins } in
        Hashtbl.add t.hists name h;
        h)

  let incr c = c.c <- c.c + 1
  let add c n = c.c <- c.c + n
  let count c = c.c
  let counter_name c = c.c_name
  let set g v = g.g <- v
  let value g = g.g
  let gauge_name g = g.g_name
  let observe h v = Histogram.add h.h v
  let observations h = Histogram.total h.h
  let histogram_percentile h p = Histogram.percentile h.h p
  let histogram_name h = h.h_name

  let reset t =
    Hashtbl.iter (fun _ c -> c.c <- 0) t.counters;
    Hashtbl.iter (fun _ g -> g.g <- 0.0) t.gauges;
    Hashtbl.iter (fun _ h -> Histogram.reset h.h) t.hists

  let sorted_fold tbl f =
    Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_fold t.counters (fun c -> c.c)
  let gauges t = sorted_fold t.gauges (fun g -> g.g)
  let histograms t = sorted_fold t.hists (fun h -> h.h)

  let pp ppf t =
    List.iter (fun (n, v) -> Fmt.pf ppf "%-32s %12d@." n v) (counters t);
    List.iter (fun (n, v) -> Fmt.pf ppf "%-32s %12.4g@." n v) (gauges t);
    List.iter
      (fun (n, h) ->
        Fmt.pf ppf "%-32s n=%d p50=%.4g p90=%.4g p99=%.4g@." n
          (Histogram.total h) (Histogram.percentile h 50.0)
          (Histogram.percentile h 90.0)
          (Histogram.percentile h 99.0))
      (histograms t)

  let to_json t =
    let b = Buffer.create 1024 in
    let add = Buffer.add_string b in
    let entries sep xs render =
      List.iteri
        (fun i (name, v) ->
          add (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name) (render v)
                 (if i = List.length xs - 1 then "" else sep)))
        xs
    in
    add "{\n  \"schema\": \"slatree-obs/1\",\n";
    add "  \"counters\": {\n";
    entries "," (counters t) string_of_int;
    add "  },\n  \"gauges\": {\n";
    entries "," (gauges t) json_float;
    add "  },\n  \"histograms\": {\n";
    entries "," (histograms t) (fun h ->
        Printf.sprintf
          "{\"count\": %d, \"underflow\": %d, \"overflow\": %d, \"p50\": %s, \
           \"p90\": %s, \"p99\": %s}"
          (Histogram.total h) (Histogram.underflow h) (Histogram.overflow h)
          (json_float (Histogram.percentile h 50.0))
          (json_float (Histogram.percentile h 90.0))
          (json_float (Histogram.percentile h 99.0)));
    add "  }\n}\n";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Trace *)

module Trace = struct
  type value = F of float | I of int | S of string

  type phase = Begin | End | Instant

  type event = {
    phase : phase;
    name : string;
    cat : string;
    ts : int64;  (** ns since trace creation *)
    tid : int;
    args : (string * value) list;
  }

  (* Bounded ring: when full, the oldest event is overwritten and
     counted as dropped. The export pass repairs the span nesting a
     partial eviction can break. *)
  type t = {
    buf : event array;
    capacity : int;
    mutable start : int;  (** index of the oldest event *)
    mutable len : int;
    mutable dropped : int;
    t0 : int64;
  }

  let dummy =
    { phase = Instant; name = ""; cat = ""; ts = 0L; tid = 0; args = [] }

  let create ?(capacity = 65536) () =
    if capacity < 0 then invalid_arg "Trace.create: negative capacity";
    {
      buf = Array.make (max 1 capacity) dummy;
      capacity;
      start = 0;
      len = 0;
      dropped = 0;
      t0 = now_ns ();
    }

  let push t ev =
    if t.capacity = 0 then t.dropped <- t.dropped + 1
    else if t.len < t.capacity then begin
      t.buf.((t.start + t.len) mod t.capacity) <- ev;
      t.len <- t.len + 1
    end
    else begin
      t.buf.(t.start) <- ev;
      t.start <- (t.start + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end

  let stamp t = Int64.sub (now_ns ()) t.t0

  let begin_span t ?(tid = 0) ?(cat = "app") ?(args = []) name =
    push t { phase = Begin; name; cat; ts = stamp t; tid; args }

  let end_span t ?(tid = 0) () =
    push t { phase = End; name = ""; cat = ""; ts = stamp t; tid; args = [] }

  let instant t ?(tid = 0) ?(cat = "app") ?(args = []) name =
    push t { phase = Instant; name; cat; ts = stamp t; tid; args }

  let length t = t.len
  let dropped t = t.dropped

  let iter t f =
    for i = 0 to t.len - 1 do
      f t.buf.((t.start + i) mod t.capacity)
    done

  let events t =
    let acc = ref [] in
    iter t (fun e -> acc := e :: !acc);
    List.rev !acc

  (* Export: chronological scan that drops orphan End events (their
     Begin was evicted from the ring) and closes still-open spans at
     the last seen timestamp, so the emitted B/E stream is well nested
     per tid whatever the ring evicted. *)
  let balanced t =
    let depth = Hashtbl.create 4 in
    let get tid = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
    let out = ref [] in
    let last_ts = ref 0L in
    iter t (fun e ->
        if e.ts > !last_ts then last_ts := e.ts;
        match e.phase with
        | Begin ->
          Hashtbl.replace depth e.tid (get e.tid + 1);
          out := e :: !out
        | End ->
          let d = get e.tid in
          if d > 0 then begin
            Hashtbl.replace depth e.tid (d - 1);
            out := e :: !out
          end
        | Instant -> out := e :: !out);
    Hashtbl.iter
      (fun tid d ->
        for _ = 1 to d do
          out :=
            { phase = End; name = ""; cat = ""; ts = !last_ts; tid; args = [] }
            :: !out
        done)
      depth;
    List.rev !out

  let value_json = function
    | F f -> json_float f
    | I i -> string_of_int i
    | S s -> Printf.sprintf "\"%s\"" (json_escape s)

  let args_json args =
    if args = [] then ""
    else
      Printf.sprintf ", \"args\": {%s}"
        (String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\": %s" (json_escape k) (value_json v))
              args))

  let event_json e =
    let ts_us = Int64.to_float e.ts /. 1e3 in
    match e.phase with
    | Begin ->
      Printf.sprintf
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"B\", \"ts\": %.3f, \
         \"pid\": 1, \"tid\": %d%s}"
        (json_escape e.name) (json_escape e.cat) ts_us e.tid (args_json e.args)
    | End ->
      Printf.sprintf "{\"ph\": \"E\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d}"
        ts_us e.tid
    | Instant ->
      Printf.sprintf
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \
         \"ts\": %.3f, \"pid\": 1, \"tid\": %d%s}"
        (json_escape e.name) (json_escape e.cat) ts_us e.tid (args_json e.args)

  let to_chrome_json t =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\": [\n";
    let evs = balanced t in
    List.iteri
      (fun i e ->
        Buffer.add_string b "  ";
        Buffer.add_string b (event_json e);
        Buffer.add_string b (if i = List.length evs - 1 then "\n" else ",\n"))
      evs;
    Buffer.add_string b
      (Printf.sprintf "],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": \
                       {\"dropped_events\": \"%d\"}}\n" t.dropped);
    Buffer.contents b

  let to_jsonl t =
    let b = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string b (event_json e);
        Buffer.add_char b '\n')
      (balanced t);
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Timeseries *)

module Timeseries = struct
  type t = {
    columns : string array;
    mutable times : float array;
    mutable values : float array;  (** row-major, [columns] per row *)
    mutable n : int;
  }

  let create ~columns =
    if Array.length columns = 0 then
      invalid_arg "Timeseries.create: no columns";
    { columns; times = [||]; values = [||]; n = 0 }

  let columns t = Array.copy t.columns
  let length t = t.n

  let ensure_capacity t =
    let cap = Array.length t.times in
    if t.n = cap then begin
      let ncap = max 64 (cap * 2) in
      let times = Array.make ncap 0.0 in
      let values = Array.make (ncap * Array.length t.columns) 0.0 in
      Array.blit t.times 0 times 0 t.n;
      Array.blit t.values 0 values 0 (t.n * Array.length t.columns);
      t.times <- times;
      t.values <- values
    end

  let sample t ~now row =
    let k = Array.length t.columns in
    if Array.length row <> k then
      invalid_arg "Timeseries.sample: row width does not match columns";
    ensure_capacity t;
    t.times.(t.n) <- now;
    Array.blit row 0 t.values (t.n * k) k;
    t.n <- t.n + 1

  let time t i =
    if i < 0 || i >= t.n then invalid_arg "Timeseries.time: index";
    t.times.(i)

  let row t i =
    if i < 0 || i >= t.n then invalid_arg "Timeseries.row: index";
    let k = Array.length t.columns in
    Array.sub t.values (i * k) k

  (* Value of [column] at the last sample taken at or before [now]
     (NaN before the first sample) — the pool-size sparkline in
     examples/autoscale.ml reads the series this way. *)
  let value_at t ~column ~now =
    let k = Array.length t.columns in
    let ci =
      let rec find i =
        if i >= k then invalid_arg "Timeseries.value_at: unknown column"
        else if t.columns.(i) = column then i
        else find (i + 1)
      in
      find 0
    in
    let rec last i acc =
      if i >= t.n || t.times.(i) > now then acc
      else last (i + 1) t.values.((i * k) + ci)
    in
    last 0 Float.nan

  let to_csv t =
    let b = Buffer.create 1024 in
    Buffer.add_string b "t";
    Array.iter
      (fun c ->
        Buffer.add_char b ',';
        Buffer.add_string b c)
      t.columns;
    Buffer.add_char b '\n';
    let k = Array.length t.columns in
    for i = 0 to t.n - 1 do
      Buffer.add_string b (Printf.sprintf "%.6g" t.times.(i));
      for j = 0 to k - 1 do
        Buffer.add_string b
          (Printf.sprintf ",%.6g" t.values.((i * k) + j))
      done;
      Buffer.add_char b '\n'
    done;
    Buffer.contents b

  let to_json t =
    let b = Buffer.create 1024 in
    let add = Buffer.add_string b in
    add "{\n  \"schema\": \"slatree-timeseries/1\",\n  \"columns\": [\"t\"";
    Array.iter (fun c -> add (Printf.sprintf ", \"%s\"" (json_escape c))) t.columns;
    add "],\n  \"rows\": [\n";
    let k = Array.length t.columns in
    for i = 0 to t.n - 1 do
      add (Printf.sprintf "    [%s" (json_float t.times.(i)));
      for j = 0 to k - 1 do
        add (Printf.sprintf ", %s" (json_float t.values.((i * k) + j)))
      done;
      add (if i = t.n - 1 then "]\n" else "],\n")
    done;
    add "  ]\n}\n";
    Buffer.contents b

  let write t ~path =
    write_file ~path
      (if Filename.check_suffix path ".json" then to_json t else to_csv t)
end

(* ------------------------------------------------------------------ *)
(* The sink *)

type t = {
  on : bool;
  reg : Registry.t;
  tr : Trace.t;
  mutable flushers : (unit -> unit) list;  (** registration order *)
  mutable closed : bool;
}

let noop =
  {
    on = false;
    reg = Registry.create ();
    tr = Trace.create ~capacity:0 ();
    flushers = [];
    closed = false;
  }

let create ?trace_capacity () =
  {
    on = true;
    reg = Registry.create ();
    tr = Trace.create ?capacity:trace_capacity ();
    flushers = [];
    closed = false;
  }

let enabled t = t.on
let registry t = t.reg
let trace t = t.tr

let span t ?cat name f =
  if not t.on then f ()
  else begin
    Trace.begin_span t.tr ?cat name;
    Fun.protect ~finally:(fun () -> Trace.end_span t.tr ()) f
  end

let instant t ?cat ?args name =
  if t.on then Trace.instant t.tr ?cat ?args name

let write_metrics t ~path = write_file ~path (Registry.to_json t.reg)

let write_trace t ~path =
  write_file ~path
    (if Filename.check_suffix path ".jsonl" then Trace.to_jsonl t.tr
     else Trace.to_chrome_json t.tr)

(* Teardown: exporters register themselves so a single [close] (or a
   SIGINT handler calling it) flushes every output exactly once,
   whatever the exit path. The noop sink accepts registrations and
   drops them — disabled runs must not grow a flusher list. *)

let on_close t f = if t.on && not t.closed then t.flushers <- f :: t.flushers

let flush t =
  if t.on then begin
    (* Registration order; run them all even if one raises, then
       re-raise the first failure. *)
    let fs = List.rev t.flushers in
    let first_exn = ref None in
    List.iter
      (fun f ->
        try f ()
        with e -> if !first_exn = None then first_exn := Some e)
      fs;
    match !first_exn with Some e -> raise e | None -> ()
  end

let close t =
  if t.on && not t.closed then begin
    (* Mark closed before flushing so a flusher that raises cannot be
       double-run by a second [close] on the error path. *)
    t.closed <- true;
    Fun.protect ~finally:(fun () -> t.flushers <- []) (fun () -> flush t)
  end

let closed t = t.closed
