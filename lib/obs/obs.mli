(** Zero-cost observability: metrics registry, structured event
    tracing, and per-tick time series for the simulator stack.

    One {!t} sink is threaded through a run ([Sim.run ~obs], the
    scheduler/dispatcher [instantiate ~obs] factories, the elastic
    controller). Instrumentation sites resolve their handles once at
    instantiation and guard each hot-path hit with a single
    {!enabled} branch, so a run over the shared {!noop} sink pays one
    predictable branch per event and allocates nothing.

    See docs/OBSERVABILITY.md for the metric catalogue and the trace
    event schema. *)

(** Host monotonic clock, nanoseconds (bechamel's clock_gettime
    stub). All latency histograms and trace timestamps use it. *)
val now_ns : unit -> int64

(** Named counters, gauges and latency histograms. Handles are
    resolved by name once ({!Registry.counter} etc. return the
    existing instrument when the name is already registered, so
    subsystems instantiated repeatedly aggregate into shared series)
    and then hit without any lookup. *)
module Registry : sig
  type t
  type counter
  type gauge
  type histogram

  val create : unit -> t

  val counter : t -> string -> counter
  val gauge : t -> string -> gauge

  (** Default shape: log10 bins over 1 ns .. 10 s, 10 bins per decade.
      Shape arguments are ignored when [name] is already registered. *)
  val histogram :
    ?scale:Histogram.scale ->
    ?lo:float ->
    ?hi:float ->
    ?bins:int ->
    t ->
    string ->
    histogram

  val incr : counter -> unit
  val add : counter -> int -> unit
  val count : counter -> int
  val counter_name : counter -> string
  val set : gauge -> float -> unit
  val value : gauge -> float
  val gauge_name : gauge -> string
  val observe : histogram -> float -> unit
  val observations : histogram -> int
  val histogram_percentile : histogram -> float -> float
  val histogram_name : histogram -> string

  (** Zero every instrument in place (handles stay valid). *)
  val reset : t -> unit

  (** Snapshots, name-sorted. *)
  val counters : t -> (string * int) list

  val gauges : t -> (string * float) list
  val histograms : t -> (string * Histogram.t) list

  val pp : Format.formatter -> t -> unit

  (** [{"schema": "slatree-obs/1", "counters": {..}, "gauges": {..},
      "histograms": {name: {count, underflow, overflow, p50, p90,
      p99}}}] *)
  val to_json : t -> string
end

(** Bounded ring buffer of structured trace events: begin/end spans
    and instant events, timestamped on the host monotonic clock
    relative to trace creation. When the ring is full the oldest
    event is overwritten (and counted in {!Trace.dropped}); the
    export pass repairs any span nesting the eviction broke, so the
    emitted B/E stream is always well nested per tid. *)
module Trace : sig
  type value = F of float | I of int | S of string
  type phase = Begin | End | Instant

  type event = {
    phase : phase;
    name : string;
    cat : string;
    ts : int64;  (** ns since trace creation *)
    tid : int;
    args : (string * value) list;
  }

  type t

  (** Default capacity: 65536 events. Capacity 0 drops everything. *)
  val create : ?capacity:int -> unit -> t

  val begin_span :
    t -> ?tid:int -> ?cat:string -> ?args:(string * value) list -> string -> unit

  val end_span : t -> ?tid:int -> unit -> unit

  val instant :
    t -> ?tid:int -> ?cat:string -> ?args:(string * value) list -> string -> unit

  (** Events currently held (<= capacity). *)
  val length : t -> int

  (** Events lost to ring eviction (or to capacity 0). *)
  val dropped : t -> int

  val iter : t -> (event -> unit) -> unit
  val events : t -> event list

  (** Chrome trace-event JSON ({["traceEvents": [...]]}), loadable in
      Perfetto / chrome://tracing. *)
  val to_chrome_json : t -> string

  (** One trace event object per line. *)
  val to_jsonl : t -> string
end

(** Append-only per-tick sampler: one float row per sample under fixed
    column names, exported as CSV ([t,col1,...]) or JSON. *)
module Timeseries : sig
  type t

  val create : columns:string array -> t
  val columns : t -> string array
  val length : t -> int

  (** [sample t ~now row] appends one row ([row] must match the column
      count). Sample times are expected non-decreasing. *)
  val sample : t -> now:float -> float array -> unit

  val time : t -> int -> float
  val row : t -> int -> float array

  (** Value of [column] at the last sample at or before [now]; NaN
      before the first sample. *)
  val value_at : t -> column:string -> now:float -> float

  val to_csv : t -> string
  val to_json : t -> string

  (** Writes JSON when [path] ends in [.json], CSV otherwise. *)
  val write : t -> path:string -> unit
end

type t

(** The permanently disabled sink — the default everywhere an [?obs]
    is accepted. *)
val noop : t

(** An enabled sink with a fresh registry and trace. *)
val create : ?trace_capacity:int -> unit -> t

val enabled : t -> bool
val registry : t -> Registry.t
val trace : t -> Trace.t

(** [span t name f] runs [f] inside a begin/end span ([f ()] directly
    when disabled; the span is closed even if [f] raises). *)
val span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a

(** Record an instant event (no-op when disabled). *)
val instant :
  t -> ?cat:string -> ?args:(string * Trace.value) list -> string -> unit

(** Write the registry snapshot as JSON. *)
val write_metrics : t -> path:string -> unit

(** Write the trace: JSONL when [path] ends in [.jsonl], Chrome
    trace-event JSON otherwise. *)
val write_trace : t -> path:string -> unit

(** {2 Teardown}

    Exporters register their final write with {!on_close}; one
    {!close} at exit — or from a SIGINT handler's shutdown path —
    flushes every registered output exactly once. This is what lets a
    daemon killed mid-run keep its tail timeseries samples. *)

(** Register a flusher, run by {!flush}/{!close} in registration
    order. Dropped (not stored) on the {!noop} sink and after
    {!close}. *)
val on_close : t -> (unit -> unit) -> unit

(** Run every registered flusher now (all of them, even if some
    raise — the first exception is re-raised afterwards). Flushers
    stay registered; safe to call repeatedly. No-op when disabled. *)
val flush : t -> unit

(** {!flush} once, then drop the flushers. Idempotent: later calls
    (and later {!on_close} registrations) are no-ops. *)
val close : t -> unit

val closed : t -> bool
