(** Per-run metrics (paper Sec 7.1): average profit loss per measured
    query vs the ideal world, plus secondary statistics. Queries with
    [id < warmup_id] warm the system up and are not measured. *)

type t

(** [create ~warmup_id] starts an empty accounting run.

    [response_cap] (default 1M, exposed for tests) bounds the retained
    response-time sample: below it every measured response is kept;
    past it the sample becomes a uniform reservoir (Algorithm R) over
    the whole run, with replacement draws from a PRNG seeded
    deterministically from [warmup_id] — so percentiles of long runs
    reflect the full workload, identical runs stay identical, and runs
    that fit under the cap are byte-for-byte unchanged. *)
val create : ?response_cap:int -> warmup_id:int -> unit -> t

val record : t -> Query.t -> completion:float -> unit

(** Every query presented to the dispatcher, before any admission or
    dispatch decision. *)
val record_offered : t -> unit

(** An offered query that reached a server buffer. The invariant
    [offered = admitted + rejected] holds whenever the simulator is
    quiescent. *)
val record_admitted : t -> unit

(** Rejected queries never enter the system: they earn nothing, pay no
    penalty, and are excluded from the measured averages ([avg_loss],
    [avg_profit], response percentiles). Their turned-away ideal
    profit accumulates in {!rejected_loss} instead. *)
val record_rejected : t -> Query.t -> unit

(** Dropped queries (paper footnote 2: abandoned after their last
    deadline passed) keep their penalty as profit and count as late. *)
val record_dropped : t -> Query.t -> unit

(** Queries lost to a server crash and never re-injected: the provider
    pays the SLA penalty (the query can no longer be served, so its
    last deadline will pass) and the ideal profit plus the penalty
    count as loss — drop accounting on a separate counter. *)
val record_lost : t -> Query.t -> unit

val measured_count : t -> int
val completed_count : t -> int
val offered_count : t -> int
val admitted_count : t -> int
val rejected_count : t -> int

(** Sum of ideal profit of measured rejected queries — what admission
    control turned away, kept out of the served-work averages. *)
val rejected_loss : t -> float
val dropped_count : t -> int

(** Queries lost to crashes (see {!record_lost}). *)
val lost_count : t -> int

(** Measured queries that missed their first deadline. *)
val late_count : t -> int

(** The paper's headline metric. *)
val avg_loss : t -> float

val avg_profit : t -> float
val total_profit : t -> float
val avg_response : t -> float

(** Percentile (0..100) of measured response times; NaN when nothing
    was measured. The sorted sample is memoized until the next recorded
    response, so successive queries cost O(1) after one sort. *)
val response_percentile : t -> float -> float

(** [response_percentiles t ps] maps {!response_percentile} over [ps];
    all answers share one sort of the sample. *)
val response_percentiles : t -> float list -> float list

val late_fraction : t -> float

val pp : Format.formatter -> t -> unit
