(** Event-driven multi-server queueing simulator (paper Fig 4) over a
    dynamic server pool.

    Queries arrive at a central dispatcher; each server has a single
    buffer and a scheduler that picks the next query when the server
    idles. Decision makers see estimated execution times; servers are
    occupied for the actual ones.

    The pool is elastic: {!add_server} grows it mid-run (optionally
    after a boot delay) and {!retire_server} shrinks it through a
    drain protocol. Server ids are never reused; dispatchers must only
    target servers for which {!dispatchable} holds.

    Buffers are array-backed FIFO deques and every server maintains
    its estimated backlog incrementally, so dispatch-time probes
    ([buffer_length], [est_work_left]) are O(1). *)

type running = {
  rquery : Query.t;
  started : float;
  act_finish : float;
  est_finish : float;
}

(** Pool-membership life cycle: [Booting until] servers are pool
    members but accept no work before [until]; [Draining] servers
    accept no new work and become [Retired] once they hold none;
    [Down] servers crashed and hold no work but still occupy a
    machine until {!restore_server} (repair) or {!retire_server}
    (give up). *)
type server_state = Booting of float | Active | Draining | Down | Retired

type server = {
  sid : int;
  mutable speed : float;
      (** current processing rate; execution takes size/speed. Mutated
          only through {!set_speed}/{!degrade_server}/{!restore_server}. *)
  nominal : float;  (** the provisioned rate ({!restore_server} returns to it) *)
  mutable running : running option;
  buffer : Query.t Deque.t;  (** arrival order, oldest first *)
  mutable est_backlog : float;
      (** sum of buffered [est_size] (raw, not speed-scaled) *)
  mutable state : server_state;
  mutable run_token : int;
      (** internal: completion-heap entry validity token *)
  mutable gen : int;
      (** event generation: bumped on every server event (buffer,
          running-query, speed or life-cycle change). Two reads of the
          same [gen] bracket an unchanged server; probe caches key
          per-server SLA-trees on it. *)
}

(** Per-server life-cycle notifications (consumed by incremental
    scheduler state, e.g. one live [Incr_sla_tree] per server).
    Within one completion the order is: [Finished], zero or more
    [Dropped], the [pick_next] call, then [Started] for the chosen
    query. An arrival emits [Enqueued] (busy server) or [Started]
    (idle server, which begins executing immediately). Pool changes
    emit [Scaled_up] when a server joins, [Draining] when retirement
    begins (a redistributed buffer re-enters through the dispatcher,
    emitting fresh [Enqueued]/[Started] on the targets) and [Retired]
    when the server leaves for good. Fault transitions emit [Crashed]
    (any per-server scheduler state is void; orphans leave through
    {!crash_server}'s return value, without [Dropped] events),
    [Degraded] (mid-run service-rate change) and [Restored]. *)
type server_event =
  | Started of Query.t
  | Enqueued of Query.t
  | Finished of { query : Query.t; actual : float }
      (** [actual] is the wall-clock execution duration *)
  | Dropped of Query.t
  | Scaled_up
  | Draining
  | Retired
  | Crashed
  | Degraded of float  (** the new service rate *)
  | Restored

type t

(** [pick_next ~now buffer] is the index, into the arrival-ordered
    buffer, of the query to execute next. *)
type pick_next = now:float -> Query.t array -> int

(** A dispatch decision: [target = None] rejects the query
    (admission control); [est_delta] optionally reports the estimated
    profit delta of the chosen server (consumed by capacity planning
    and the elastic controller). *)
type decision = { target : int option; est_delta : float option }

type dispatch = t -> Query.t -> decision

(** An admission controller's verdict on an arriving query, delivered
    {e before} the dispatcher sees it: wave it through unchanged, swap
    in a down-tiered copy ([Degrade] must keep the query id — all
    completion bookkeeping is keyed on it), or refuse outright.
    Refusals are recorded exactly like dispatcher rejections
    ({!Metrics.record_rejected}), so [offered = admitted + rejected]
    holds either way. *)
type verdict =
  | Admit
  | Degrade of Query.t
  | Reject

type admit = t -> Query.t -> verdict

(** Total servers ever in the pool (retired ones included — ids index
    into this range). *)
val n_servers : t -> int

val server : t -> int -> server
val now : t -> float
val buffer_array : server -> Query.t array
val buffer_length : server -> int

(** Whether server [sid] currently accepts dispatches ([Active], or
    [Booting] whose delay has elapsed — checking promotes it). *)
val dispatchable : t -> int -> bool

val server_state : t -> int -> server_state

(** Pool members: servers not yet retired (booting and draining
    included — they still occupy machines). *)
val live_servers : t -> int

val dispatchable_count : t -> int

(** Grow the pool by one server mid-run; returns its id. With
    [boot_delay], the server joins (and emits [Scaled_up]) now but
    accepts no dispatches before [now + boot_delay]. *)
val add_server : ?speed:float -> ?boot_delay:float -> t -> int

(** Start the drain protocol on server [sid]: it immediately stops
    receiving dispatches; with [redistribute] (default [true]) its
    buffered queries re-enter the dispatcher, otherwise it works its
    own buffer off. Emits [Draining] now and [Retired] once the server
    holds no work (immediately when idle). Idempotent on draining or
    retired servers ([Booting] and [Down] servers hold no work and
    retire immediately). Raises [Invalid_argument] if no other server
    would accept work.

    A redistributed query that the dispatcher then declines
    ([target = None]) is recorded as a {e rejection} — counted in
    [Metrics.rejected_count], reported to [on_dispatch] — exactly as
    if it had just arrived. Redistribution never silently loses
    queries. *)
val retire_server : ?redistribute:bool -> t -> int -> unit

(** {2 Fault transitions}

    Non-graceful counterparts to the drain protocol, driven by
    [Fault] injectors (or tests) from [?timers] callbacks. *)

(** Crash server [sid]: the running query (if any) is killed — its
    completion-heap entry is lazily invalidated — the buffer is
    cleared, [est_backlog] zeroed, and the orphaned queries (running
    first, then buffer in arrival order) are {e returned} to the
    caller, who decides their fate: re-inject via {!reinject} (as
    [Query.retried] copies, keeping the SLA clock) or account them
    with [Metrics.record_lost]. Emits [Crashed]; the server lands in
    [Down] at its nominal speed ([Draining] servers give up and
    retire instead, emitting [Crashed] then [Retired]). Crashing a
    [Down] or [Retired] server is a no-op returning []. The caller is
    responsible for not crashing the last dispatchable server when a
    workload remains (dispatchers raise when no server accepts
    work). *)
val crash_server : t -> int -> Query.t list

(** Change server [sid]'s service rate mid-run (brownout / recovery).
    The running query's remaining work is rescaled so its completion
    time stays consistent with the work already done at the old
    speed; [est_backlog] needs no adjustment (it is raw size, not
    speed-scaled — [est_free_at]/[est_work_left] pick the new speed
    up automatically). Emits [Restored] when [speed] equals the
    server's nominal rate, [Degraded speed] otherwise. No-op on
    [Down]/[Retired] servers or when the speed is unchanged. Raises
    [Invalid_argument] on non-positive [speed]. *)
val set_speed : t -> int -> speed:float -> unit

(** [degrade_server t sid ~factor] is [set_speed] to
    [factor *. nominal]. *)
val degrade_server : t -> int -> factor:float -> unit

(** Repair server [sid]: a [Down] server rejoins the pool [Active] at
    its nominal speed (emitting [Restored]); a degraded
    [Active]/[Draining] server returns to nominal speed (via
    {!set_speed}). No-op otherwise. *)
val restore_server : t -> int -> unit

(** Re-enter a query through the dispatcher mid-run — crash retries
    ride the same path as drain redistribution: the dispatcher
    decides the target, [on_dispatch] observes the decision, and a
    declined query is recorded as a rejection. Only callable while
    {!run} is live (raises [Invalid_argument] otherwise). *)
val reinject : t -> Query.t -> unit

(** Estimated time the server finishes its current query (now if
    idle). *)
val est_free_at : t -> server -> float

(** Estimated remaining work: current query remainder plus buffered
    sizes (LWL's metric). O(1) — maintained incrementally. *)
val est_work_left : t -> server -> float

(** The canonical [drop_policy]: abandon queries whose last deadline
    has already passed (their penalty is sunk — footnote 2). *)
val drop_past_last_deadline : now:float -> Query.t -> bool

(** [run ~queries ~n_servers ~pick_next ~dispatch ~metrics ()] replays
    the arrival-sorted [queries] to completion. [on_dispatch] observes
    every dispatch decision (capacity planning and the elastic
    controller hook in here); [on_complete] observes every completion
    (per-class breakdowns hook in here). [on_server_event] observes the
    per-server buffer life cycle (incremental scheduler state hooks in
    here — see {!Schedulers.instantiate}). [speeds] makes the initial
    farm heterogeneous (Sec 6.2's claim): one positive rate per server,
    execution takes [size/speed]. [drop_policy ~now q = true] abandons
    buffered query [q] at a scheduling point instead of ever executing
    it (paper footnote 2's alternative; the query keeps its penalty).
    [ticker = (interval, f)] invokes [f] at every multiple of
    [interval] that precedes a remaining arrival or completion —
    elastic controllers call {!add_server}/{!retire_server} from
    there. [timers] is a sorted (by time, non-negative) array of
    one-shot callbacks fired exactly at their instants — before any
    tick, arrival or completion at the same time — while workload
    events remain; fault injectors call
    {!crash_server}/{!degrade_server}/{!restore_server} from there.
    [n_servers] is the initial pool size. [admit] is consulted on
    every arrival before the dispatcher (see {!verdict}); absent, every
    query is admitted.

    [obs] (default {!Obs.noop}) collects run-level observability:
    counters [sim.arrivals] / [sim.completions] / [sim.dropped] /
    [sim.rejected], and trace spans [arrive] / [complete] / [tick]
    (category ["sim"], simulated time in the span args). Handles are
    resolved once at run start; with the noop sink every site costs a
    single predictable branch. *)
val run :
  ?obs:Obs.t ->
  ?admit:admit ->
  ?on_dispatch:(now:float -> Query.t -> decision -> unit) ->
  ?on_complete:(Query.t -> completion:float -> unit) ->
  ?on_server_event:(sid:int -> now:float -> server_event -> unit) ->
  ?speeds:float array ->
  ?drop_policy:(now:float -> Query.t -> bool) ->
  ?ticker:float * (t -> unit) ->
  ?timers:(float * (t -> unit)) array ->
  queries:Query.t array ->
  n_servers:int ->
  pick_next:pick_next ->
  dispatch:dispatch ->
  metrics:Metrics.t ->
  unit ->
  unit

(** {2 Live sessions}

    The event loop behind {!run}, exposed as a stepping API so a
    long-running process (the [lib/serve] daemon) can drive the
    identical decision state machine from externally arriving queries.
    {!run} itself is [inject] per query followed by [drain], which is
    what makes served decisions bit-identical to simulated ones by
    construction. *)

type session

(** Same parameters and semantics as {!run}, minus the workload: the
    caller feeds queries with {!inject} instead of handing over an
    array. All observer hooks, the drop policy, the ticker and the
    one-shot timers behave exactly as under {!run}. *)
val session :
  ?obs:Obs.t ->
  ?admit:admit ->
  ?on_dispatch:(now:float -> Query.t -> decision -> unit) ->
  ?on_complete:(Query.t -> completion:float -> unit) ->
  ?on_server_event:(sid:int -> now:float -> server_event -> unit) ->
  ?speeds:float array ->
  ?drop_policy:(now:float -> Query.t -> bool) ->
  ?ticker:float * (t -> unit) ->
  ?timers:(float * (t -> unit)) array ->
  n_servers:int ->
  pick_next:pick_next ->
  dispatch:dispatch ->
  metrics:Metrics.t ->
  unit ->
  session

(** The underlying pool (for probes, {!add_server} etc.). *)
val sim : session -> t

(** Process every timer, tick and completion due at or before [until]
    (in {!run}'s historical precedence: due timers first, then due
    ticks, then the earliest completion), leaving the clock at the
    last processed event. [until] earlier than the current clock is a
    no-op — time is monotone. *)
val advance : session -> until:float -> unit

(** [advance] to the query's arrival, then run the full arrival path
    (dispatch, metrics, observers — exactly {!run}'s). A query whose
    stamped arrival the clock has already passed (a lagging live
    client) arrives at the current clock instead, but keeps its
    stamped arrival as the SLA clock origin. *)
val inject : session -> Query.t -> unit

(** Time of the earliest pending internal event — completion, one-shot
    timer or tick — or [None] when the session holds no work and no
    armed timer ([None] means {!advance} cannot change anything until
    the next {!inject}). A serving loop derives its poll timeout from
    this. *)
val next_event_time : session -> float option

(** Run every remaining completion (timers and ticks that precede them
    included) to quiescence: afterwards no query is running or
    buffered anywhere. *)
val drain : session -> unit
