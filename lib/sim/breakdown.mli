(** Per-class outcome breakdown (buyer vs employee, tenant, ...):
    groups measured queries by a classifier and reports loss, profit,
    response and deadline misses per class. *)

type class_stats = {
  label : string;
  loss : Stats.t;
  profit : Stats.t;
  response : Stats.t;
  mutable late : int;
}

type t

val create : classify:(Query.t -> string) -> warmup_id:int -> t

(** Feed alongside (or instead of) {!Metrics.record}. *)
val record : t -> Query.t -> completion:float -> unit

(** In first-seen order. *)
val classes : t -> class_stats list

val find : t -> string -> class_stats option
val pp : Format.formatter -> t -> unit
