(* Per-run metrics. The paper's headline number is the average profit
   loss per query relative to the ideal world in which every first
   deadline is met (Sec 7.1). The first [warmup_id] queries warm the
   system up and are not measured. *)

(* Per-query response times are retained so percentile statistics can
   be reported; everything else is O(1) state. Beyond the cap the
   retained values form a uniform reservoir sample (Algorithm R) of
   the whole run, seeded deterministically from [warmup_id] — the old
   behaviour of keeping only the *first* cap responses made long-run
   percentiles blind to the entire tail of the workload. *)
let response_sample_cap = 1_000_000

type t = {
  warmup_id : int;
  loss : Stats.t;
  profit : Stats.t;
  response : Stats.t;
  mutable responses : float array;  (* sample of measured responses *)
  mutable n_responses : int;  (* filled slots, <= response_cap *)
  mutable seen_responses : int;  (* all responses ever pushed *)
  response_cap : int;
  rng : Prng.t;  (* reservoir replacement draws; untouched below cap *)
  (* Sorted copy of the first [n_responses] samples, built on the first
     percentile query and reused until the next [push_response]. *)
  mutable sorted_responses : float array option;
  mutable completed_all : int;
  mutable offered : int;  (* every query presented to the dispatcher *)
  mutable admitted : int;  (* offered queries that reached a buffer *)
  mutable rejected : int;
  mutable rejected_loss : float;  (* ideal profit turned away (measured) *)
  mutable dropped : int;
  mutable lost : int;  (* killed by a crash and never re-served *)
  mutable late : int;  (* measured queries that missed their first deadline *)
}

let create ?(response_cap = response_sample_cap) ~warmup_id () =
  if warmup_id < 0 then invalid_arg "Metrics.create: warmup_id < 0";
  if response_cap < 1 then invalid_arg "Metrics.create: response_cap < 1";
  {
    warmup_id;
    loss = Stats.create ();
    profit = Stats.create ();
    response = Stats.create ();
    responses = [||];
    n_responses = 0;
    seen_responses = 0;
    response_cap;
    rng = Prng.create (0x5e5e5e + warmup_id);
    sorted_responses = None;
    completed_all = 0;
    offered = 0;
    admitted = 0;
    rejected = 0;
    rejected_loss = 0.0;
    dropped = 0;
    lost = 0;
    late = 0;
  }

let measured q t = q.Query.id >= t.warmup_id

let push_response t r =
  t.seen_responses <- t.seen_responses + 1;
  if t.n_responses < t.response_cap then begin
    (* Below the cap: plain append, no rng draws — byte-identical to
       the pre-reservoir behaviour for every run that fits. *)
    t.sorted_responses <- None;
    let cap = Array.length t.responses in
    if t.n_responses = cap then begin
      let ncap = min t.response_cap (max 256 (cap * 2)) in
      let a = Array.make ncap 0.0 in
      Array.blit t.responses 0 a 0 t.n_responses;
      t.responses <- a
    end;
    t.responses.(t.n_responses) <- r;
    t.n_responses <- t.n_responses + 1
  end
  else begin
    (* Algorithm R: the k-th response overall replaces a uniformly
       chosen reservoir slot with probability cap/k, keeping every
       response seen so far equally likely to be retained. *)
    let j = Prng.int t.rng t.seen_responses in
    if j < t.response_cap then begin
      t.sorted_responses <- None;
      t.responses.(j) <- r
    end
  end

let record t q ~completion =
  t.completed_all <- t.completed_all + 1;
  if measured q t then begin
    Stats.add t.loss (Query.loss_at q ~completion);
    Stats.add t.profit (Query.profit_at q ~completion);
    let r = completion -. q.Query.arrival in
    Stats.add t.response r;
    push_response t r;
    if completion > Query.first_deadline q then t.late <- t.late + 1
  end

let record_offered t = t.offered <- t.offered + 1
let record_admitted t = t.admitted <- t.admitted + 1

(* A rejected query earns nothing and pays nothing: it never enters
   the system, so it must not dilute the per-query averages the paper
   reports over *served* work. The turned-away ideal profit is kept on
   its own accumulator for the economics reports. *)
let record_rejected t q =
  t.rejected <- t.rejected + 1;
  if measured q t then
    t.rejected_loss <- t.rejected_loss +. Query.ideal_profit q

(* A dropped query (paper footnote 2: its last deadline passed while it
   waited, so the penalty is already incurred): the provider keeps the
   penalty but stops wasting server time on it. *)
let record_dropped t q =
  t.dropped <- t.dropped + 1;
  if measured q t then begin
    let penalty = Sla.penalty q.Query.sla in
    Stats.add t.profit (-.penalty);
    Stats.add t.loss (Query.ideal_profit q +. penalty);
    t.late <- t.late + 1
  end

(* A query lost to a crash (killed mid-run or mid-buffer and never
   re-injected): it will never complete, so its last deadline
   eventually passes and the provider pays the penalty — the same
   account as a drop, kept on a separate counter because the cause is
   an infrastructure fault, not a scheduling decision. *)
let record_lost t q =
  t.lost <- t.lost + 1;
  if measured q t then begin
    let penalty = Sla.penalty q.Query.sla in
    Stats.add t.profit (-.penalty);
    Stats.add t.loss (Query.ideal_profit q +. penalty);
    t.late <- t.late + 1
  end

let measured_count t = Stats.count t.loss
let completed_count t = t.completed_all
let offered_count t = t.offered
let admitted_count t = t.admitted
let rejected_count t = t.rejected
let rejected_loss t = t.rejected_loss
let dropped_count t = t.dropped
let lost_count t = t.lost
let late_count t = t.late
let avg_loss t = Stats.mean t.loss
let avg_profit t = Stats.mean t.profit
let total_profit t = Stats.total t.profit
let avg_response t = Stats.mean t.response

(* Percentile of measured response times (linear interpolation). The
   sorted sample is cached across calls — reporting p50/p95/p99 after a
   run costs one sort, not three. *)
let sorted_responses t =
  match t.sorted_responses with
  | Some a -> a
  | None ->
    let a = Array.sub t.responses 0 t.n_responses in
    Array.sort Float.compare a;
    t.sorted_responses <- Some a;
    a

let response_percentile t p =
  if t.n_responses = 0 then Float.nan
  else Stats.percentile_of_sorted (sorted_responses t) p

let response_percentiles t ps = List.map (response_percentile t) ps

let late_fraction t =
  let n = measured_count t in
  if n = 0 then Float.nan else Float.of_int t.late /. Float.of_int n

let pp ppf t =
  Fmt.pf ppf
    "measured=%d completed=%d rejected=%d dropped=%d lost=%d avg_loss=%.4f \
     avg_profit=%.4f avg_response=%.3f late=%.3f"
    (measured_count t) t.completed_all t.rejected t.dropped t.lost (avg_loss t)
    (avg_profit t) (avg_response t) (late_fraction t)
