(* Per-class outcome breakdown: who pays for a policy's improvement?

   Gupta et al. (cited in paper Sec 2.3) argue enterprise scheduling
   must be measured per customer class, not just in aggregate. This
   collector groups measured queries by a caller-supplied classifier
   (e.g. buyer vs employee under SLA-B) and reports per-class loss,
   profit and deadline misses. *)

type class_stats = {
  label : string;
  loss : Stats.t;
  profit : Stats.t;
  response : Stats.t;
  mutable late : int;
}

type t = {
  classify : Query.t -> string;
  warmup_id : int;
  mutable classes : class_stats list;  (* small; linear lookup *)
}

let create ~classify ~warmup_id =
  if warmup_id < 0 then invalid_arg "Breakdown.create: warmup_id < 0";
  { classify; warmup_id; classes = [] }

let stats_for t label =
  match List.find_opt (fun c -> c.label = label) t.classes with
  | Some c -> c
  | None ->
    let c =
      {
        label;
        loss = Stats.create ();
        profit = Stats.create ();
        response = Stats.create ();
        late = 0;
      }
    in
    t.classes <- t.classes @ [ c ];
    c

let record t q ~completion =
  if q.Query.id >= t.warmup_id then begin
    let c = stats_for t (t.classify q) in
    Stats.add c.loss (Query.loss_at q ~completion);
    Stats.add c.profit (Query.profit_at q ~completion);
    Stats.add c.response (completion -. q.Query.arrival);
    if completion > Query.first_deadline q then c.late <- c.late + 1
  end

let classes t = t.classes

let find t label = List.find_opt (fun c -> c.label = label) t.classes

let pp ppf t =
  List.iter
    (fun c ->
      let n = Stats.count c.loss in
      Fmt.pf ppf "  %-12s n=%-6d avg loss $%.3f  avg profit $%.3f  late %.1f%%@."
        c.label n (Stats.mean c.loss) (Stats.mean c.profit)
        (if n = 0 then Float.nan else 100.0 *. Float.of_int c.late /. Float.of_int n))
    t.classes
