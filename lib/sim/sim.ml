(* Event-driven multi-server queueing simulator (paper Sec 2.2, Fig 4).

   Queries arrive at a central dispatcher, are assigned to one of the
   pool's servers (each with a single buffer), and a per-server
   scheduler picks the next buffered query whenever the server goes
   idle.

   Decision makers (dispatcher, scheduler) see estimated execution
   times; the server is busy for the *actual* execution time.

   The pool is dynamic: servers can be added mid-run ([add_server],
   optionally with a boot delay before they accept work) and retired
   through a drain protocol ([retire_server]: the server stops
   receiving dispatches, its buffer is either redistributed through
   the dispatcher or drained in place, and it leaves the pool once its
   last query completes). Server ids are never reused.

   Hot-path notes: buffers are array-backed FIFO deques (O(1) append,
   O(1) length) and each server carries [est_backlog], the sum of
   buffered estimated sizes, maintained incrementally on
   enqueue/start/drop. [est_work_left] — asked once per server per
   arrival by LWL and the SLA-tree dispatcher — is therefore O(1)
   instead of a fold over the buffer. *)

type running = {
  rquery : Query.t;
  started : float;
  act_finish : float;  (** real completion; drives the event loop *)
  est_finish : float;  (** what decision makers believe *)
}

(* Pool-membership life cycle. [Booting until] servers count as pool
   members (they cost money) but accept no work before [until];
   [Draining] servers accept no new work and leave the pool
   ([Retired]) once their running query and any un-redistributed
   buffer are gone. *)
type server_state = Booting of float | Active | Draining | Retired

type server = {
  sid : int;
  speed : float;  (** processing rate; execution takes size/speed *)
  mutable running : running option;
  buffer : Query.t Deque.t;  (** arrival order, oldest first *)
  mutable est_backlog : float;
      (** sum of [est_size] over the buffer (raw, not speed-scaled) *)
  mutable state : server_state;
}

(* Per-server life-cycle notifications, consumed by incremental
   scheduler state (one live Incr_sla_tree per server). Within one
   completion the order is: Finished, Dropped*, [pick_next], Started;
   an arrival emits Enqueued (busy server) or Started (idle server).
   Pool membership changes emit Scaled_up (server added), Draining
   (retirement initiated; a redistributed buffer re-enters through the
   dispatcher, emitting fresh Enqueued/Started events on the targets)
   and Retired (the server left the pool for good). *)
type server_event =
  | Started of Query.t
  | Enqueued of Query.t
  | Finished of { query : Query.t; actual : float }
  | Dropped of Query.t
  | Scaled_up
  | Draining
  | Retired

type t = {
  mutable servers : server array;
  mutable now : float;
  mutable next_arrival : int;
  queries : Query.t array;
  completions : (float * int) Heap.t;  (** (time, server) *)
  mutable on_event : (sid:int -> now:float -> server_event -> unit) option;
  mutable arrive : (Query.t -> unit) option;
      (** the full arrival path (dispatch + metrics + observers), set
          by [run]; re-entered when a drain redistributes a buffer *)
}

(* [pick_next ~now buffer] returns the index (into the arrival-ordered
   [buffer]) of the query to execute next. *)
type pick_next = now:float -> Query.t array -> int

type decision = { target : int option; est_delta : float option }

type dispatch = t -> Query.t -> decision

let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let now t = t.now

let buffer_array s = Deque.to_array s.buffer

let buffer_length s = Deque.length s.buffer

let emit t s ev =
  match t.on_event with None -> () | Some f -> f ~sid:s.sid ~now:t.now ev

(* Whether the server currently accepts dispatches. Booting servers
   whose boot delay has elapsed are promoted to [Active] lazily. *)
let dispatchable_server t s =
  match s.state with
  | Active -> true
  | Booting ready when ready <= t.now ->
    s.state <- Active;
    true
  | Booting _ | Draining | Retired -> false

let dispatchable t sid = dispatchable_server t t.servers.(sid)

let server_state t sid = t.servers.(sid).state

(* Pool members: everything not yet retired (booting and draining
   servers still occupy — and cost — a machine). *)
let live_servers t =
  Array.fold_left
    (fun n s -> if s.state = Retired then n else n + 1)
    0 t.servers

let dispatchable_count t =
  let n = ref 0 in
  Array.iter (fun s -> if dispatchable_server t s then incr n) t.servers;
  !n

(* Estimated time at which the server finishes its current query (now
   when idle; never in the past, even if the estimate undershot). *)
let est_free_at t s =
  match s.running with
  | None -> t.now
  | Some r -> Float.max t.now r.est_finish

(* Estimated time the server still owes: remaining current query plus
   everything buffered, in wall-clock terms (i.e. divided by the
   server's speed). This is LWL's metric (Sec 2.3), naturally
   speed-aware on heterogeneous farms. O(1) via [est_backlog]. *)
let est_work_left t s =
  let cur = est_free_at t s -. t.now in
  cur +. (s.est_backlog /. s.speed)

let backlog_add s q = s.est_backlog <- s.est_backlog +. q.Query.est_size

let backlog_remove s q =
  s.est_backlog <- s.est_backlog -. q.Query.est_size;
  (* Snap accumulated float residue back to exactly zero whenever the
     buffer drains, so idle servers compare equal under LWL. *)
  if Deque.is_empty s.buffer then s.est_backlog <- 0.0

(* The canonical drop policy (footnote 2): give up on queries whose
   last deadline has already passed — their penalty is sunk and
   executing them only delays everyone else. *)
let drop_past_last_deadline ~now q =
  now > Query.deadline q ~bound:(Sla.last_deadline q.Query.sla)

let start_query t s q =
  assert (s.running = None);
  let r =
    {
      rquery = q;
      started = t.now;
      act_finish = t.now +. (q.Query.size /. s.speed);
      est_finish = t.now +. (q.Query.est_size /. s.speed);
    }
  in
  s.running <- Some r;
  Heap.push t.completions (r.act_finish, s.sid);
  emit t s (Started q)

let dispatch_to t s q =
  if not (dispatchable_server t s) then
    invalid_arg "Sim.dispatch_to: server is not accepting work";
  match s.running with
  | None ->
    assert (Deque.is_empty s.buffer);
    start_query t s q
  | Some _ ->
    Deque.push_back s.buffer q;
    backlog_add s q;
    emit t s (Enqueued q)

let make_server ~sid ~speed ~state =
  {
    sid;
    speed;
    running = None;
    buffer = Deque.create ();
    est_backlog = 0.0;
    state;
  }

(* Grow the pool by one server. With [boot_delay], the newcomer joins
   the pool immediately (Scaled_up) but accepts no dispatches before
   [now + boot_delay]. Rare operation — the O(pool) array copy is
   irrelevant next to the event loop. *)
let add_server ?(speed = 1.0) ?(boot_delay = 0.0) t =
  if speed <= 0.0 then invalid_arg "Sim.add_server: speed must be positive";
  if boot_delay < 0.0 then
    invalid_arg "Sim.add_server: boot_delay must be non-negative";
  let sid = Array.length t.servers in
  let state =
    if boot_delay > 0.0 then Booting (t.now +. boot_delay) else Active
  in
  let s = make_server ~sid ~speed ~state in
  t.servers <- Array.append t.servers [| s |];
  emit t s Scaled_up;
  sid

(* Initiate the drain protocol. The server immediately stops receiving
   dispatches; with [redistribute] (default) its buffered queries
   re-enter the dispatcher and land on the remaining pool, otherwise
   the server works its own buffer off. It becomes [Retired] — and
   emits the event — as soon as it holds no work. Idempotent on
   already-draining/retired servers. *)
let retire_server ?(redistribute = true) t sid =
  if sid < 0 || sid >= Array.length t.servers then
    invalid_arg "Sim.retire_server: no such server";
  let s = t.servers.(sid) in
  match s.state with
  | Retired | Draining -> ()
  | Booting _ ->
    (* Never accepted work; nothing to drain. *)
    s.state <- Retired;
    emit t s Retired
  | Active ->
    let others_accept =
      Array.exists
        (fun o -> o.sid <> sid && dispatchable_server t o)
        t.servers
    in
    if not others_accept then
      invalid_arg "Sim.retire_server: retiring would empty the pool";
    s.state <- Draining;
    emit t s Draining;
    if redistribute && not (Deque.is_empty s.buffer) then begin
      let orphans = Deque.to_array s.buffer in
      Deque.clear s.buffer;
      s.est_backlog <- 0.0;
      match t.arrive with
      | Some arrive -> Array.iter arrive orphans
      | None ->
        invalid_arg "Sim.retire_server: redistribution requires a running loop"
    end;
    if s.running = None && Deque.is_empty s.buffer then begin
      s.state <- Retired;
      emit t s Retired
    end

let create ?speeds ~queries ~n_servers () =
  if n_servers <= 0 then invalid_arg "Sim.create: n_servers must be positive";
  let speed_of =
    match speeds with
    | None -> fun _ -> 1.0
    | Some a ->
      if Array.length a <> n_servers then
        invalid_arg "Sim.create: speeds array must have one entry per server";
      Array.iter
        (fun v -> if v <= 0.0 then invalid_arg "Sim.create: speeds must be positive")
        a;
      fun sid -> a.(sid)
  in
  {
    servers =
      Array.init n_servers (fun sid ->
          make_server ~sid ~speed:(speed_of sid) ~state:Active);
    now = 0.0;
    next_arrival = 0;
    queries;
    completions =
      Heap.create (fun (ta, sa) (tb, sb) ->
          let c = Float.compare ta tb in
          if c <> 0 then c else Int.compare sa sb);
    on_event = None;
    arrive = None;
  }

let run ?(obs = Obs.noop) ?on_dispatch ?on_complete ?on_server_event ?speeds
    ?drop_policy ?ticker ~queries ~n_servers ~pick_next ~dispatch ~metrics () =
  let t = create ?speeds ~queries ~n_servers () in
  t.on_event <- on_server_event;
  let total = Array.length queries in
  (* Observability handles, resolved once per run; every hot-path hit
     below is guarded by the single [obs_on] branch (the unused names
     registered on the shared noop registry stay at zero forever). *)
  let obs_on = Obs.enabled obs in
  let tr = Obs.trace obs in
  let reg = Obs.registry obs in
  let c_arrivals = Obs.Registry.counter reg "sim.arrivals"
  and c_completions = Obs.Registry.counter reg "sim.completions"
  and c_dropped = Obs.Registry.counter reg "sim.dropped"
  and c_rejected = Obs.Registry.counter reg "sim.rejected" in
  (* Footnote-2 alternative: at each scheduling point, abandon buffered
     queries the policy gives up on (typically those past their last
     deadline, whose penalty is already incurred). *)
  let apply_drop_policy s =
    match drop_policy with
    | None -> ()
    | Some keep_or_drop ->
      let dropped =
        Deque.filter_in_place s.buffer ~f:(fun q -> not (keep_or_drop ~now:t.now q))
      in
      List.iter
        (fun q ->
          s.est_backlog <- s.est_backlog -. q.Query.est_size;
          Metrics.record_dropped metrics q;
          if obs_on then Obs.Registry.incr c_dropped;
          emit t s (Dropped q))
        dropped;
      if Deque.is_empty s.buffer then s.est_backlog <- 0.0
  in
  let finish_one s =
    match s.running with
    | None -> assert false
    | Some r ->
      if obs_on then begin
        Obs.Registry.incr c_completions;
        Obs.Trace.begin_span tr ~cat:"sim"
          ~args:[ ("sim_t", Obs.Trace.F t.now); ("sid", Obs.Trace.I s.sid) ]
          "complete"
      end;
      s.running <- None;
      Metrics.record metrics r.rquery ~completion:t.now;
      emit t s (Finished { query = r.rquery; actual = t.now -. r.started });
      (match on_complete with
      | Some f -> f r.rquery ~completion:t.now
      | None -> ());
      apply_drop_policy s;
      let n = Deque.length s.buffer in
      if n > 0 then begin
        (* A draining server without redistribution keeps scheduling
           its own leftover buffer until it is empty. *)
        let arr = Deque.to_array s.buffer in
        let idx = pick_next ~now:t.now arr in
        if idx < 0 || idx >= n then
          invalid_arg "Sim.run: scheduler returned an out-of-bounds index";
        let q = Deque.remove s.buffer idx in
        backlog_remove s q;
        start_query t s q
      end
      else if s.state = Draining then begin
        s.state <- Retired;
        emit t s Retired
      end;
      if obs_on then Obs.Trace.end_span tr ()
  in
  let arrive q =
    if obs_on then begin
      Obs.Registry.incr c_arrivals;
      Obs.Trace.begin_span tr ~cat:"sim"
        ~args:[ ("sim_t", Obs.Trace.F t.now); ("qid", Obs.Trace.I q.Query.id) ]
        "arrive"
    end;
    (let d = dispatch t q in
     (match on_dispatch with Some f -> f ~now:t.now q d | None -> ());
     match d.target with
     | None ->
       if obs_on then Obs.Registry.incr c_rejected;
       Metrics.record_rejected metrics q
     | Some sid ->
       if sid < 0 || sid >= Array.length t.servers then
         invalid_arg "Sim.run: dispatcher returned an invalid server";
       dispatch_to t t.servers.(sid) q);
    if obs_on then Obs.Trace.end_span tr ()
  in
  t.arrive <- Some arrive;
  (* Optional periodic hook (elastic controllers plug in here): fires
     at every multiple of the interval that precedes a remaining
     arrival or completion, so the clock never outlives the workload. *)
  let tick =
    match ticker with
    | None -> None
    | Some (interval, f) ->
      if interval <= 0.0 then
        invalid_arg "Sim.run: ticker interval must be positive";
      Some (ref interval, interval, f)
  in
  let rec loop () =
    let next_completion = Heap.peek t.completions in
    let next_arrival =
      if t.next_arrival < total then Some queries.(t.next_arrival) else None
    in
    let next_event =
      match (next_completion, next_arrival) with
      | None, None -> None
      | Some (tc, _), None -> Some tc
      | None, Some qa -> Some qa.Query.arrival
      | Some (tc, _), Some qa -> Some (Float.min tc qa.Query.arrival)
    in
    match next_event with
    | None -> ()
    | Some te -> begin
      match tick with
      | Some (next_tick, interval, f) when !next_tick <= te ->
        t.now <- !next_tick;
        next_tick := !next_tick +. interval;
        if obs_on then begin
          Obs.Trace.begin_span tr ~cat:"sim"
            ~args:[ ("sim_t", Obs.Trace.F t.now) ]
            "tick";
          f t;
          Obs.Trace.end_span tr ()
        end
        else f t;
        loop ()
      | _ -> begin
        match (next_completion, next_arrival) with
        | Some (tc, _), Some qa when tc <= qa.Query.arrival ->
          let tc, sid = Heap.pop_exn t.completions in
          t.now <- tc;
          finish_one t.servers.(sid);
          loop ()
        | Some _, Some qa | None, Some qa ->
          t.next_arrival <- t.next_arrival + 1;
          t.now <- qa.Query.arrival;
          arrive qa;
          loop ()
        | Some _, None ->
          let tc, sid = Heap.pop_exn t.completions in
          t.now <- tc;
          finish_one t.servers.(sid);
          loop ()
        | None, None -> ()
      end
    end
  in
  loop ()
