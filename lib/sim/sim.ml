(* Event-driven multi-server queueing simulator (paper Sec 2.2, Fig 4).

   Queries arrive at a central dispatcher, are assigned to one of the
   pool's servers (each with a single buffer), and a per-server
   scheduler picks the next buffered query whenever the server goes
   idle.

   Decision makers (dispatcher, scheduler) see estimated execution
   times; the server is busy for the *actual* execution time.

   The pool is dynamic: servers can be added mid-run ([add_server],
   optionally with a boot delay before they accept work) and retired
   through a drain protocol ([retire_server]: the server stops
   receiving dispatches, its buffer is either redistributed through
   the dispatcher or drained in place, and it leaves the pool once its
   last query completes). Server ids are never reused.

   Non-graceful transitions (lib/fault drives these): [crash_server]
   kills the machine outright — the running query and the buffer are
   orphaned and returned to the caller, who decides between
   re-injection ([reinject], the retry path) and loss; [set_speed] /
   [degrade_server] change the service rate mid-run (brownout), with
   the running query's completion rescheduled for the remaining work;
   [restore_server] undoes either. A crash or reschedule invalidates
   the server's pending entry in the completion heap; entries carry a
   per-start token and stale ones are skipped on pop (lazy deletion —
   the heap never needs decrease-key).

   Hot-path notes: buffers are array-backed FIFO deques (O(1) append,
   O(1) length) and each server carries [est_backlog], the sum of
   buffered estimated sizes, maintained incrementally on
   enqueue/start/drop. [est_work_left] — asked once per server per
   arrival by LWL and the SLA-tree dispatcher — is therefore O(1)
   instead of a fold over the buffer. *)

type running = {
  rquery : Query.t;
  started : float;
  act_finish : float;  (** real completion; drives the event loop *)
  est_finish : float;  (** what decision makers believe *)
}

(* Pool-membership life cycle. [Booting until] servers count as pool
   members (they cost money) but accept no work before [until];
   [Draining] servers accept no new work and leave the pool
   ([Retired]) once their running query and any un-redistributed
   buffer are gone. [Down] servers crashed: they hold no work, accept
   none, and still occupy (and cost) a machine until repaired
   ([restore_server]) or given up on ([retire_server]). *)
type server_state = Booting of float | Active | Draining | Down | Retired

type server = {
  sid : int;
  mutable speed : float;
      (** current processing rate; execution takes size/speed *)
  nominal : float;  (** the rate the server was provisioned with *)
  mutable running : running option;
  buffer : Query.t Deque.t;  (** arrival order, oldest first *)
  mutable est_backlog : float;
      (** sum of [est_size] over the buffer (raw, not speed-scaled) *)
  mutable state : server_state;
  mutable run_token : int;
      (** token of the server's live completion-heap entry; entries
          whose token no longer matches are stale and skipped *)
  mutable gen : int;
      (** event generation: bumped on every emitted server event, i.e.
          whenever the buffer, running query, speed or life-cycle state
          changes. Probe caches key on it to reuse per-server SLA-trees
          across arrivals. *)
}

(* Per-server life-cycle notifications, consumed by incremental
   scheduler state (one live Incr_sla_tree per server). Within one
   completion the order is: Finished, Dropped*, [pick_next], Started;
   an arrival emits Enqueued (busy server) or Started (idle server).
   Pool membership changes emit Scaled_up (server added), Draining
   (retirement initiated; a redistributed buffer re-enters through the
   dispatcher, emitting fresh Enqueued/Started events on the targets)
   and Retired (the server left the pool for good). Fault transitions
   emit Crashed (all per-server scheduler state is garbage — the
   orphans leave through [crash_server]'s return value, not through
   Dropped events), Degraded (service rate changed mid-run) and
   Restored (rate back to nominal, or a Down server repaired). *)
type server_event =
  | Started of Query.t
  | Enqueued of Query.t
  | Finished of { query : Query.t; actual : float }
  | Dropped of Query.t
  | Scaled_up
  | Draining
  | Retired
  | Crashed
  | Degraded of float  (** the new service rate *)
  | Restored

type t = {
  mutable servers : server array;
  mutable now : float;
  completions : (float * int * int) Heap.t;  (** (time, server, token) *)
  mutable token_counter : int;  (** completion-entry tokens, unique per start *)
  mutable on_event : (sid:int -> now:float -> server_event -> unit) option;
  mutable arrive : (Query.t -> unit) option;
      (** the full arrival path (dispatch + metrics + observers), set
          by [session]; re-entered when a drain redistributes a buffer
          or a crash handler re-injects a retry *)
}

(* [pick_next ~now buffer] returns the index (into the arrival-ordered
   [buffer]) of the query to execute next. *)
type pick_next = now:float -> Query.t array -> int

type decision = { target : int option; est_delta : float option }

type dispatch = t -> Query.t -> decision

(* An admission controller's verdict on an arriving query, delivered
   before the dispatcher sees it. [Degrade] swaps in a cheaper copy of
   the same query (down-tiered SLA); it must keep the id. *)
type verdict =
  | Admit
  | Degrade of Query.t
  | Reject

type admit = t -> Query.t -> verdict

let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let now t = t.now

let buffer_array s = Deque.to_array s.buffer

let buffer_length s = Deque.length s.buffer

(* Every state change a probe cache could care about funnels through
   here, so the generation bump happens whether or not an observer is
   installed. *)
let emit t s ev =
  s.gen <- s.gen + 1;
  match t.on_event with None -> () | Some f -> f ~sid:s.sid ~now:t.now ev

(* Whether the server currently accepts dispatches. Booting servers
   whose boot delay has elapsed are promoted to [Active] lazily. *)
let dispatchable_server t s =
  match s.state with
  | Active -> true
  | Booting ready when ready <= t.now ->
    s.state <- Active;
    true
  | Booting _ | Draining | Down | Retired -> false

let dispatchable t sid = dispatchable_server t t.servers.(sid)

let server_state t sid = t.servers.(sid).state

(* Pool members: everything not yet retired (booting and draining
   servers still occupy — and cost — a machine). *)
let live_servers t =
  Array.fold_left
    (fun n s -> if s.state = Retired then n else n + 1)
    0 t.servers

let dispatchable_count t =
  let n = ref 0 in
  Array.iter (fun s -> if dispatchable_server t s then incr n) t.servers;
  !n

(* Estimated time at which the server finishes its current query (now
   when idle; never in the past, even if the estimate undershot). *)
let est_free_at t s =
  match s.running with
  | None -> t.now
  | Some r -> Float.max t.now r.est_finish

(* Estimated time the server still owes: remaining current query plus
   everything buffered, in wall-clock terms (i.e. divided by the
   server's speed). This is LWL's metric (Sec 2.3), naturally
   speed-aware on heterogeneous farms. O(1) via [est_backlog]. *)
let est_work_left t s =
  let cur = est_free_at t s -. t.now in
  cur +. (s.est_backlog /. s.speed)

let backlog_add s q = s.est_backlog <- s.est_backlog +. q.Query.est_size

let backlog_remove s q =
  s.est_backlog <- s.est_backlog -. q.Query.est_size;
  (* Snap accumulated float residue back to exactly zero whenever the
     buffer drains, so idle servers compare equal under LWL. *)
  if Deque.is_empty s.buffer then s.est_backlog <- 0.0

(* The canonical drop policy (footnote 2): give up on queries whose
   last deadline has already passed — their penalty is sunk and
   executing them only delays everyone else. *)
let drop_past_last_deadline ~now q =
  now > Query.deadline q ~bound:(Sla.last_deadline q.Query.sla)

(* Register [s]'s pending completion at [act_finish]. The fresh token
   makes any entry the server pushed earlier stale (lazy deletion). *)
let push_completion t s ~act_finish =
  t.token_counter <- t.token_counter + 1;
  s.run_token <- t.token_counter;
  Heap.push t.completions (act_finish, s.sid, s.run_token)

let start_query t s q =
  assert (s.running = None);
  let r =
    {
      rquery = q;
      started = t.now;
      act_finish = t.now +. (q.Query.size /. s.speed);
      est_finish = t.now +. (q.Query.est_size /. s.speed);
    }
  in
  s.running <- Some r;
  push_completion t s ~act_finish:r.act_finish;
  emit t s (Started q)

let dispatch_to t s q =
  if not (dispatchable_server t s) then
    invalid_arg "Sim.dispatch_to: server is not accepting work";
  match s.running with
  | None ->
    assert (Deque.is_empty s.buffer);
    start_query t s q
  | Some _ ->
    Deque.push_back s.buffer q;
    backlog_add s q;
    emit t s (Enqueued q)

let make_server ~sid ~speed ~state =
  {
    sid;
    speed;
    nominal = speed;
    running = None;
    buffer = Deque.create ();
    est_backlog = 0.0;
    state;
    run_token = 0;
    gen = 0;
  }

(* Grow the pool by one server. With [boot_delay], the newcomer joins
   the pool immediately (Scaled_up) but accepts no dispatches before
   [now + boot_delay]. Rare operation — the O(pool) array copy is
   irrelevant next to the event loop. *)
let add_server ?(speed = 1.0) ?(boot_delay = 0.0) t =
  if speed <= 0.0 then invalid_arg "Sim.add_server: speed must be positive";
  if boot_delay < 0.0 then
    invalid_arg "Sim.add_server: boot_delay must be non-negative";
  let sid = Array.length t.servers in
  let state =
    if boot_delay > 0.0 then Booting (t.now +. boot_delay) else Active
  in
  let s = make_server ~sid ~speed ~state in
  t.servers <- Array.append t.servers [| s |];
  emit t s Scaled_up;
  sid

(* Initiate the drain protocol. The server immediately stops receiving
   dispatches; with [redistribute] (default) its buffered queries
   re-enter the dispatcher and land on the remaining pool, otherwise
   the server works its own buffer off. It becomes [Retired] — and
   emits the event — as soon as it holds no work. Idempotent on
   already-draining/retired servers.

   A redistributed query goes through the full arrival path, so a
   dispatcher that answers [target = None] REJECTS it: the query is
   recorded as a rejection (metrics + observers fire exactly as for a
   fresh arrival) — it is never silently lost. Crash re-injection
   ([reinject]) rides the same path and inherits the same guarantee. *)
let retire_server ?(redistribute = true) t sid =
  if sid < 0 || sid >= Array.length t.servers then
    invalid_arg "Sim.retire_server: no such server";
  let s = t.servers.(sid) in
  match s.state with
  | Retired | Draining -> ()
  | Booting _ | Down ->
    (* Never accepted work / crashed empty; nothing to drain. *)
    s.state <- Retired;
    emit t s Retired
  | Active ->
    let others_accept =
      Array.exists
        (fun o -> o.sid <> sid && dispatchable_server t o)
        t.servers
    in
    if not others_accept then
      invalid_arg "Sim.retire_server: retiring would empty the pool";
    s.state <- Draining;
    emit t s Draining;
    if redistribute && not (Deque.is_empty s.buffer) then begin
      let orphans = Deque.to_array s.buffer in
      Deque.clear s.buffer;
      s.est_backlog <- 0.0;
      match t.arrive with
      | Some arrive -> Array.iter arrive orphans
      | None ->
        invalid_arg "Sim.retire_server: redistribution requires a running loop"
    end;
    if s.running = None && Deque.is_empty s.buffer then begin
      s.state <- Retired;
      emit t s Retired
    end

(* ------------------------------------------------------------------ *)
(* Non-graceful transitions (the fault-injection surface). *)

(* Kill server [sid] outright. The running query (first) and the
   buffered queries (arrival order) are returned to the caller — the
   retry policy, not the simulator, decides between [reinject] and
   loss. The server becomes [Down] ([Retired] if it was draining: a
   crashed drain has nothing left to wait for) and its pending
   completion entry is invalidated. No-op on servers already down or
   retired. *)
let crash_server t sid =
  if sid < 0 || sid >= Array.length t.servers then
    invalid_arg "Sim.crash_server: no such server";
  let s = t.servers.(sid) in
  match s.state with
  | Down | Retired -> []
  | Booting _ | Active | Draining ->
    let orphans =
      let buffered = Array.to_list (Deque.to_array s.buffer) in
      match s.running with None -> buffered | Some r -> r.rquery :: buffered
    in
    s.running <- None;
    s.run_token <- 0;
    Deque.clear s.buffer;
    s.est_backlog <- 0.0;
    emit t s Crashed;
    (match s.state with
    | Draining ->
      s.state <- Retired;
      emit t s Retired
    | _ ->
      (* Repair brings the machine back at its provisioned rate. *)
      s.speed <- s.nominal;
      s.state <- Down);
    orphans

(* Change server [sid]'s service rate mid-run (brownout / recovery).
   [est_backlog] holds raw sizes, so only the running query needs
   care: its remaining actual and estimated work are carried over to
   the new rate and the completion is rescheduled (the old heap entry
   goes stale). Emits [Degraded speed], or [Restored] when the rate
   returns to the provisioned nominal. No-op when the speed is
   unchanged or the server is down/retired. *)
let set_speed t sid ~speed =
  if sid < 0 || sid >= Array.length t.servers then
    invalid_arg "Sim.set_speed: no such server";
  if speed <= 0.0 then invalid_arg "Sim.set_speed: speed must be positive";
  let s = t.servers.(sid) in
  match s.state with
  | Down | Retired -> ()
  | Booting _ | Active | Draining ->
    if speed <> s.speed then begin
      (match s.running with
      | None -> ()
      | Some r ->
        let rem_act = Float.max 0.0 (r.act_finish -. t.now) *. s.speed in
        let rem_est = Float.max 0.0 (r.est_finish -. t.now) *. s.speed in
        let r' =
          {
            r with
            act_finish = t.now +. (rem_act /. speed);
            est_finish = t.now +. (rem_est /. speed);
          }
        in
        s.running <- Some r';
        push_completion t s ~act_finish:r'.act_finish);
      s.speed <- speed;
      emit t s (if speed = s.nominal then Restored else Degraded speed)
    end

let degrade_server t sid ~factor =
  if factor <= 0.0 then
    invalid_arg "Sim.degrade_server: factor must be positive";
  if sid < 0 || sid >= Array.length t.servers then
    invalid_arg "Sim.degrade_server: no such server";
  set_speed t sid ~speed:(t.servers.(sid).nominal *. factor)

(* Undo a fault: a [Down] server rejoins the pool idle at its nominal
   rate (repair time is the caller's MTTR model — the server comes
   back the instant this is called); a degraded server returns to
   nominal via [set_speed]. No-op otherwise. *)
let restore_server t sid =
  if sid < 0 || sid >= Array.length t.servers then
    invalid_arg "Sim.restore_server: no such server";
  let s = t.servers.(sid) in
  match s.state with
  | Down ->
    s.speed <- s.nominal;
    s.state <- Active;
    emit t s Restored
  | Active | Draining -> if s.speed <> s.nominal then set_speed t sid ~speed:s.nominal
  | Booting _ | Retired -> ()

(* Re-enter a query through the full arrival path (dispatch, metrics,
   observers) — the crash-retry channel. The query keeps whatever
   [arrival] it carries: the SLA clock keeps running across the crash.
   Only callable while [run] is live. *)
let reinject t q =
  match t.arrive with
  | Some arrive -> arrive q
  | None -> invalid_arg "Sim.reinject: requires a running loop"

let create ?speeds ~n_servers () =
  if n_servers <= 0 then invalid_arg "Sim.create: n_servers must be positive";
  let speed_of =
    match speeds with
    | None -> fun _ -> 1.0
    | Some a ->
      if Array.length a <> n_servers then
        invalid_arg "Sim.create: speeds array must have one entry per server";
      Array.iter
        (fun v -> if v <= 0.0 then invalid_arg "Sim.create: speeds must be positive")
        a;
      fun sid -> a.(sid)
  in
  {
    servers =
      Array.init n_servers (fun sid ->
          make_server ~sid ~speed:(speed_of sid) ~state:Active);
    now = 0.0;
    completions =
      Heap.create (fun (ta, sa, ka) (tb, sb, kb) ->
          let c = Float.compare ta tb in
          if c <> 0 then c
          else
            let c = Int.compare sa sb in
            if c <> 0 then c else Int.compare ka kb);
    token_counter = 0;
    on_event = None;
    arrive = None;
  }

(* ------------------------------------------------------------------ *)
(* Live session: the event loop behind [run], exposed as a stepping
   API so a long-running process (lib/serve's daemon) can drive the
   identical state machine from externally arriving queries. [run] is
   a thin driver over it — advance to each arrival, inject, drain —
   which is what makes served decisions bit-identical to simulated
   ones by construction. *)

type session = {
  st : t;
  s_timers : (float * (t -> unit)) array;
  mutable s_timer_idx : int;
  s_tick : (float ref * float * (t -> unit)) option;
  s_arrive : Query.t -> unit;
  s_pop_completion : unit -> unit;
  s_fire_tick : (t -> unit) -> unit;
}

let session ?(obs = Obs.noop) ?admit ?on_dispatch ?on_complete
    ?on_server_event ?speeds ?drop_policy ?ticker ?timers ~n_servers ~pick_next
    ~dispatch ~metrics () =
  let t = create ?speeds ~n_servers () in
  (* One-shot timed callbacks (fault injection plugs in here), fired at
     exactly their scheduled instants, in array order. Like the ticker,
     a timer only fires while an arrival or completion remains — the
     clock never outlives the workload. The empty/absent case costs
     one integer compare per loop step. *)
  let timers =
    match timers with
    | None -> [||]
    | Some a ->
      let last = ref 0.0 in
      Array.iter
        (fun (at, _) ->
          if at < !last then
            invalid_arg "Sim.run: timers must be sorted by time, non-negative";
          last := at)
        a;
      a
  in
  t.on_event <- on_server_event;
  (* Observability handles, resolved once per run; every hot-path hit
     below is guarded by the single [obs_on] branch (the unused names
     registered on the shared noop registry stay at zero forever). *)
  let obs_on = Obs.enabled obs in
  let tr = Obs.trace obs in
  let reg = Obs.registry obs in
  let c_arrivals = Obs.Registry.counter reg "sim.arrivals"
  and c_completions = Obs.Registry.counter reg "sim.completions"
  and c_dropped = Obs.Registry.counter reg "sim.dropped"
  and c_rejected = Obs.Registry.counter reg "sim.rejected"
  and c_degraded = Obs.Registry.counter reg "sim.degraded" in
  (* Footnote-2 alternative: at each scheduling point, abandon buffered
     queries the policy gives up on (typically those past their last
     deadline, whose penalty is already incurred). *)
  let apply_drop_policy s =
    match drop_policy with
    | None -> ()
    | Some keep_or_drop ->
      let dropped =
        Deque.filter_in_place s.buffer ~f:(fun q -> not (keep_or_drop ~now:t.now q))
      in
      List.iter
        (fun q ->
          s.est_backlog <- s.est_backlog -. q.Query.est_size;
          Metrics.record_dropped metrics q;
          if obs_on then Obs.Registry.incr c_dropped;
          emit t s (Dropped q))
        dropped;
      if Deque.is_empty s.buffer then s.est_backlog <- 0.0
  in
  let finish_one s =
    match s.running with
    | None -> assert false
    | Some r ->
      if obs_on then begin
        Obs.Registry.incr c_completions;
        Obs.Trace.begin_span tr ~cat:"sim"
          ~args:[ ("sim_t", Obs.Trace.F t.now); ("sid", Obs.Trace.I s.sid) ]
          "complete"
      end;
      s.running <- None;
      Metrics.record metrics r.rquery ~completion:t.now;
      emit t s (Finished { query = r.rquery; actual = t.now -. r.started });
      (match on_complete with
      | Some f -> f r.rquery ~completion:t.now
      | None -> ());
      apply_drop_policy s;
      let n = Deque.length s.buffer in
      if n > 0 then begin
        (* A draining server without redistribution keeps scheduling
           its own leftover buffer until it is empty. *)
        let arr = Deque.to_array s.buffer in
        let idx = pick_next ~now:t.now arr in
        if idx < 0 || idx >= n then
          invalid_arg "Sim.run: scheduler returned an out-of-bounds index";
        let q = Deque.remove s.buffer idx in
        backlog_remove s q;
        start_query t s q
      end
      else if s.state = Draining then begin
        s.state <- Retired;
        emit t s Retired
      end;
      if obs_on then Obs.Trace.end_span tr ()
  in
  let arrive q =
    if obs_on then begin
      Obs.Registry.incr c_arrivals;
      Obs.Trace.begin_span tr ~cat:"sim"
        ~args:[ ("sim_t", Obs.Trace.F t.now); ("qid", Obs.Trace.I q.Query.id) ]
        "arrive"
    end;
    Metrics.record_offered metrics;
    (* Refusals — by the admission controller or by an admission-mode
       dispatcher returning no target — share one account, so
       [offered = admitted + rejected] holds however a query is turned
       away. *)
    let refuse q =
      if obs_on then Obs.Registry.incr c_rejected;
      Metrics.record_rejected metrics q
    in
    (* The admission controller sees the query before the dispatcher:
       it can wave it through, swap in a down-tiered copy (same id —
       completion bookkeeping is keyed on it), or refuse outright. *)
    (let verdict = match admit with None -> Admit | Some f -> f t q in
     match verdict with
     | Reject ->
       (match on_dispatch with
       | Some f -> f ~now:t.now q { target = None; est_delta = None }
       | None -> ());
       refuse q
     | Admit | Degrade _ ->
       let q =
         match verdict with
         | Degrade q' ->
           if q'.Query.id <> q.Query.id then
             invalid_arg "Sim.run: Degrade must keep the query id";
           if obs_on then Obs.Registry.incr c_degraded;
           q'
         | _ -> q
       in
       let d = dispatch t q in
       (match on_dispatch with Some f -> f ~now:t.now q d | None -> ());
       (match d.target with
       | None -> refuse q
       | Some sid ->
         if sid < 0 || sid >= Array.length t.servers then
           invalid_arg "Sim.run: dispatcher returned an invalid server";
         Metrics.record_admitted metrics;
         dispatch_to t t.servers.(sid) q));
    if obs_on then Obs.Trace.end_span tr ()
  in
  t.arrive <- Some arrive;
  (* Optional periodic hook (elastic controllers plug in here): fires
     at every multiple of the interval that precedes a remaining
     arrival or completion, so the clock never outlives the workload. *)
  let tick =
    match ticker with
    | None -> None
    | Some (interval, f) ->
      if interval <= 0.0 then
        invalid_arg "Sim.run: ticker interval must be positive";
      Some (ref interval, interval, f)
  in
  (* Pop the next completion entry; stale entries (their server
     started something newer, was crashed, or had its rate changed —
     the token no longer matches) are discarded without advancing the
     clock. *)
  let pop_completion () =
    let tc, sid, token = Heap.pop_exn t.completions in
    let s = t.servers.(sid) in
    if s.run_token = token then begin
      t.now <- tc;
      finish_one s
    end
  in
  let fire_tick f =
    if obs_on then begin
      Obs.Trace.begin_span tr ~cat:"sim"
        ~args:[ ("sim_t", Obs.Trace.F t.now) ]
        "tick";
      f t;
      Obs.Trace.end_span tr ()
    end
    else f t
  in
  {
    st = t;
    s_timers = timers;
    s_timer_idx = 0;
    s_tick = tick;
    s_arrive = arrive;
    s_pop_completion = pop_completion;
    s_fire_tick = fire_tick;
  }

let sim sess = sess.st

(* Process every timer, tick and completion due before the next
   arrival. [limit] is the pending arrival's time ([None] while
   draining: only the completion heap bounds the clock then). The
   precedence is [run]'s historical one: a timed callback preempts
   everything at or after its instant, then a due tick, then the
   earliest completion; stale completion entries are discarded without
   advancing the clock. *)
let rec pump sess ~limit =
  let t = sess.st in
  let next_completion = Heap.peek t.completions in
  let next_event =
    match (next_completion, limit) with
    | None, None -> None
    | Some (tc, _, _), None -> Some tc
    | None, Some l -> Some l
    | Some (tc, _, _), Some l -> Some (Float.min tc l)
  in
  match next_event with
  | None -> ()
  | Some te ->
    let timer_due =
      sess.s_timer_idx < Array.length sess.s_timers
      && fst sess.s_timers.(sess.s_timer_idx) <= te
      &&
      match sess.s_tick with
      | Some (next_tick, _, _) ->
        fst sess.s_timers.(sess.s_timer_idx) <= !next_tick
      | None -> true
    in
    if timer_due then begin
      let at, f = sess.s_timers.(sess.s_timer_idx) in
      sess.s_timer_idx <- sess.s_timer_idx + 1;
      (* A timer scheduled in the past fires now (time is monotone). *)
      t.now <- Float.max t.now at;
      f t;
      pump sess ~limit
    end
    else begin
      match sess.s_tick with
      | Some (next_tick, interval, f) when !next_tick <= te ->
        t.now <- !next_tick;
        next_tick := !next_tick +. interval;
        sess.s_fire_tick f;
        pump sess ~limit
      | _ -> begin
        match (next_completion, limit) with
        | Some (tc, _, _), Some l when tc <= l ->
          sess.s_pop_completion ();
          pump sess ~limit
        | Some _, None ->
          sess.s_pop_completion ();
          pump sess ~limit
        | Some _, Some _ | None, Some _ | None, None -> ()
      end
    end

let advance sess ~until = pump sess ~limit:(Some (Float.max until sess.st.now))

let drain sess = pump sess ~limit:None

let inject sess q =
  pump sess ~limit:(Some (Float.max q.Query.arrival sess.st.now));
  (* A query whose stamped arrival the clock already passed (a lagging
     live client) arrives now; its SLA clock still runs from the
     stamped arrival. *)
  sess.st.now <- Float.max sess.st.now q.Query.arrival;
  sess.s_arrive q

let next_event_time sess =
  let t = sess.st in
  let best = ref infinity in
  (match Heap.peek t.completions with
  | Some (tc, _, _) -> best := tc
  | None -> ());
  if sess.s_timer_idx < Array.length sess.s_timers then
    best := Float.min !best (fst sess.s_timers.(sess.s_timer_idx));
  (match sess.s_tick with
  | Some (next_tick, _, _) -> best := Float.min !best !next_tick
  | None -> ());
  if Float.is_finite !best then Some !best else None

let run ?obs ?admit ?on_dispatch ?on_complete ?on_server_event ?speeds
    ?drop_policy ?ticker ?timers ~queries ~n_servers ~pick_next ~dispatch
    ~metrics () =
  let sess =
    session ?obs ?admit ?on_dispatch ?on_complete ?on_server_event ?speeds
      ?drop_policy ?ticker ?timers ~n_servers ~pick_next ~dispatch ~metrics ()
  in
  Array.iter (fun q -> inject sess q) queries;
  drain sess
