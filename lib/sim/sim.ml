(* Event-driven multi-server queueing simulator (paper Sec 2.2, Fig 4).

   Queries arrive at a central dispatcher, are assigned to one of [m]
   servers (each with a single buffer), and a per-server scheduler
   picks the next buffered query whenever the server goes idle.

   Decision makers (dispatcher, scheduler) see estimated execution
   times; the server is busy for the *actual* execution time. *)

type running = {
  rquery : Query.t;
  started : float;
  act_finish : float;  (** real completion; drives the event loop *)
  est_finish : float;  (** what decision makers believe *)
}

type server = {
  sid : int;
  speed : float;  (** processing rate; execution takes size/speed *)
  mutable running : running option;
  mutable buffer : Query.t list;  (** arrival order, oldest first *)
}

type t = {
  servers : server array;
  mutable now : float;
  mutable next_arrival : int;
  queries : Query.t array;
  completions : (float * int) Heap.t;  (** (time, server) *)
}

(* [pick_next ~now buffer] returns the index (into the arrival-ordered
   [buffer]) of the query to execute next. *)
type pick_next = now:float -> Query.t array -> int

type decision = { target : int option; est_delta : float option }

type dispatch = t -> Query.t -> decision

let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let now t = t.now

let buffer_array s = Array.of_list s.buffer

let buffer_length s = List.length s.buffer

(* Estimated time at which the server finishes its current query (now
   when idle; never in the past, even if the estimate undershot). *)
let est_free_at t s =
  match s.running with
  | None -> t.now
  | Some r -> Float.max t.now r.est_finish

(* Estimated time the server still owes: remaining current query plus
   everything buffered, in wall-clock terms (i.e. divided by the
   server's speed). This is LWL's metric (Sec 2.3), naturally
   speed-aware on heterogeneous farms. *)
let est_work_left t s =
  let cur = est_free_at t s -. t.now in
  List.fold_left (fun acc q -> acc +. (q.Query.est_size /. s.speed)) cur s.buffer

(* The canonical drop policy (footnote 2): give up on queries whose
   last deadline has already passed — their penalty is sunk and
   executing them only delays everyone else. *)
let drop_past_last_deadline ~now q =
  now > Query.deadline q ~bound:(Sla.last_deadline q.Query.sla)

let remove_nth list n =
  let rec go i acc = function
    | [] -> invalid_arg "Sim.remove_nth: index out of bounds"
    | x :: rest ->
      if i = n then (x, List.rev_append acc rest)
      else go (i + 1) (x :: acc) rest
  in
  go 0 [] list

let start_query t s q =
  assert (s.running = None);
  let r =
    {
      rquery = q;
      started = t.now;
      act_finish = t.now +. (q.Query.size /. s.speed);
      est_finish = t.now +. (q.Query.est_size /. s.speed);
    }
  in
  s.running <- Some r;
  Heap.push t.completions (r.act_finish, s.sid)

let dispatch_to t s q =
  match s.running with
  | None ->
    assert (s.buffer = []);
    start_query t s q
  | Some _ -> s.buffer <- s.buffer @ [ q ]

let create ?speeds ~queries ~n_servers () =
  if n_servers <= 0 then invalid_arg "Sim.create: n_servers must be positive";
  let speed_of =
    match speeds with
    | None -> fun _ -> 1.0
    | Some a ->
      if Array.length a <> n_servers then
        invalid_arg "Sim.create: speeds array must have one entry per server";
      Array.iter
        (fun v -> if v <= 0.0 then invalid_arg "Sim.create: speeds must be positive")
        a;
      fun sid -> a.(sid)
  in
  {
    servers =
      Array.init n_servers (fun sid ->
          { sid; speed = speed_of sid; running = None; buffer = [] });
    now = 0.0;
    next_arrival = 0;
    queries;
    completions =
      Heap.create (fun (ta, sa) (tb, sb) ->
          let c = Float.compare ta tb in
          if c <> 0 then c else Int.compare sa sb);
  }

let run ?on_dispatch ?on_complete ?speeds ?drop_policy ~queries ~n_servers
    ~pick_next ~dispatch ~metrics () =
  let t = create ?speeds ~queries ~n_servers () in
  let total = Array.length queries in
  (* Footnote-2 alternative: at each scheduling point, abandon buffered
     queries the policy gives up on (typically those past their last
     deadline, whose penalty is already incurred). *)
  let apply_drop_policy s =
    match drop_policy with
    | None -> ()
    | Some keep_or_drop ->
      let dropped, kept =
        List.partition (fun q -> keep_or_drop ~now:t.now q) s.buffer
      in
      List.iter (Metrics.record_dropped metrics) dropped;
      s.buffer <- kept
  in
  let finish_one s =
    match s.running with
    | None -> assert false
    | Some r ->
      s.running <- None;
      Metrics.record metrics r.rquery ~completion:t.now;
      (match on_complete with
      | Some f -> f r.rquery ~completion:t.now
      | None -> ());
      apply_drop_policy s;
      (match s.buffer with
      | [] -> ()
      | buffer ->
        let arr = Array.of_list buffer in
        let idx = pick_next ~now:t.now arr in
        if idx < 0 || idx >= Array.length arr then
          invalid_arg "Sim.run: scheduler returned an out-of-bounds index";
        let q, rest = remove_nth buffer idx in
        s.buffer <- rest;
        start_query t s q)
  in
  let arrive q =
    let d = dispatch t q in
    (match on_dispatch with Some f -> f ~now:t.now q d | None -> ());
    match d.target with
    | None -> Metrics.record_rejected metrics q
    | Some sid ->
      if sid < 0 || sid >= n_servers then
        invalid_arg "Sim.run: dispatcher returned an invalid server";
      dispatch_to t t.servers.(sid) q
  in
  let rec loop () =
    let next_completion = Heap.peek t.completions in
    let next_arrival =
      if t.next_arrival < total then Some queries.(t.next_arrival) else None
    in
    match (next_completion, next_arrival) with
    | None, None -> ()
    | Some (tc, _), Some qa when tc <= qa.Query.arrival ->
      let tc, sid = Heap.pop_exn t.completions in
      t.now <- tc;
      finish_one t.servers.(sid);
      loop ()
    | Some _, Some qa | None, Some qa ->
      t.next_arrival <- t.next_arrival + 1;
      t.now <- qa.Query.arrival;
      arrive qa;
      loop ()
    | Some (tc, _), None ->
      ignore tc;
      let tc, sid = Heap.pop_exn t.completions in
      t.now <- tc;
      finish_one t.servers.(sid);
      loop ()
  in
  loop ()
