(** Table 3 (Sec 7.3): dispatching comparison at load 0.9 across server
    counts. *)

val default_servers : int list
val load : float
val dispatchers : Exp_common.disp_kind list

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  servers : int;
  disp : Exp_common.disp_kind;
  avg_loss : float;
}

val compute :
  ?profiles:Workloads.sla_profile list ->
  ?kinds:Workloads.kind list ->
  ?servers:int list ->
  Exp_scale.t ->
  cell list

val to_report : ?servers:int list -> cell list -> Report.t
val run : Format.formatter -> Exp_scale.t -> unit
