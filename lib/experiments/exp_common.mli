(** Shared experiment plumbing: the evaluation's policy sets and
    repeat-averaged runs. *)

type sched_kind = Fcfs | Fcfs_tree | Cbs | Cbs_tree

val sched_name : sched_kind -> string

(** 1 / (mean execution time) of the workload. *)
val cbs_rate : Workloads.kind -> float

val scheduler_of : sched_kind -> Workloads.kind -> Schedulers.t

(** The three dispatching rows of Table 3 (scheduler fixed per row). *)
type disp_kind = Lwl_cbs | Lwl_tree_sched | Tree_tree

val disp_name : disp_kind -> string
val dispatch_setup : disp_kind -> Workloads.kind -> Dispatchers.t * Schedulers.t

val run_once :
  trace_cfg:Trace.config ->
  n_servers:int ->
  scheduler:Schedulers.t ->
  dispatcher:Dispatchers.t ->
  warmup_id:int ->
  Metrics.t

val avg_loss_over_repeats :
  Exp_scale.t ->
  make_trace_cfg:(seed:int -> Trace.config) ->
  n_servers:int ->
  scheduler:Schedulers.t ->
  dispatcher:Dispatchers.t ->
  float
