(* Table 6 (Sec 7.5): robustness of dispatching to estimation error —
   the three dispatching rows of Table 3 on 5 servers at load 0.9,
   sigma^2 in {0, 0.2, 1.0}. *)

let default_sigmas = [ 0.0; 0.2; 1.0 ]
let load = 0.9
let servers = 5

let dispatchers =
  [ Exp_common.Lwl_cbs; Exp_common.Lwl_tree_sched; Exp_common.Tree_tree ]

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  sigma2 : float;
  disp : Exp_common.disp_kind;
  avg_loss : float;
}

let compute ?(profiles = Workloads.all_profiles) ?(kinds = Workloads.all_kinds)
    ?(sigmas = default_sigmas) (scale : Exp_scale.t) =
  (* Independent cells fan out across the ambient pool in spec order
     (see Table2.compute). *)
  List.concat_map
    (fun profile ->
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun sigma2 ->
              List.map (fun disp -> (profile, kind, sigma2, disp)) dispatchers)
            sigmas)
        kinds)
    profiles
  |> Parallel.map_list (fun (profile, kind, sigma2, disp) ->
         let dispatcher, scheduler = Exp_common.dispatch_setup disp kind in
         let make_trace_cfg ~seed =
           Trace.config ~error:(Table5.error_of sigma2) ~kind ~profile ~load
             ~servers ~n_queries:scale.n_queries ~seed ()
         in
         let avg_loss =
           Exp_common.avg_loss_over_repeats scale ~make_trace_cfg
             ~n_servers:servers ~scheduler ~dispatcher
         in
         { profile; kind; sigma2; disp; avg_loss })

let to_report ?(sigmas = default_sigmas) cells =
  let col_groups =
    List.concat_map
      (fun profile ->
        List.map
          (fun kind ->
            ( Workloads.profile_name profile ^ " " ^ Workloads.kind_name kind,
              List.map (Printf.sprintf "%.1f") sigmas ))
          Workloads.all_kinds)
      Workloads.all_profiles
  in
  let rows =
    List.map
      (fun disp ->
        let cells_for =
          List.concat_map
            (fun profile ->
              List.concat_map
                (fun kind ->
                  List.map
                    (fun sigma2 ->
                      match
                        List.find_opt
                          (fun c ->
                            c.profile = profile && c.kind = kind
                            && c.sigma2 = sigma2 && c.disp = disp)
                          cells
                      with
                      | Some c -> c.avg_loss
                      | None -> Float.nan)
                    sigmas)
                Workloads.all_kinds)
            Workloads.all_profiles
        in
        (Exp_common.disp_name disp, Array.of_list cells_for))
      dispatchers
  in
  {
    Report.title =
      "Table 6: dispatching robustness vs estimation error (5 servers; columns are sigma^2)";
    col_groups;
    rows;
  }

let run ppf scale =
  let cells = compute scale in
  Report.render ppf (to_report cells)
