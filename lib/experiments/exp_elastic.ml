(* Elasticity experiment (beyond the paper, toward Kllapi et al. /
   WiSeDB): a cyclic workload whose troughs waste a big static farm
   and whose peaks drown a small one, served by (a) static-small,
   (b) static-large, (c) the reactive SLA-tree autoscaler, (d) the
   queue-length threshold baseline, (e) the predictive autoscaler
   (forecast-ahead scaling that hides boot delay), and (f) the offline
   oracle (perfect-foresight pool schedule, best over a utilization
   sweep) — all under the same $/server-interval cost model, reporting
   profit, server time, cost, and net = profit − cost.

   The workload is calibrated around [base_servers]: the duration-
   weighted mean load lands on that pool, the peak overloads it and
   the trough leaves it mostly idle, so neither static extreme can win
   on net. Three arrival shapes share that calibration: the smooth
   diurnal cycle, an on/off square wave (the hardest case for a
   reactive controller: the edge gives no warning), and a steady
   control at the same mean (where prediction can win nothing). *)

type shape = Steady | Diurnal | Square

let shape_name = function
  | Steady -> "steady"
  | Diurnal -> "diurnal"
  | Square -> "square"

let all_shapes = [ Diurnal; Square; Steady ]

let shape_of_string = function
  | "steady" -> Ok Steady
  | "diurnal" -> Ok Diurnal
  | "square" -> Ok Square
  | s -> Error (Printf.sprintf "unknown shape %S (diurnal|square|steady)" s)

type row = {
  label : string;
  initial : int;
  profit : float;  (** total measured profit, $ *)
  server_time : float;  (** ms*servers *)
  cost : float;
  net : float;  (** profit - cost *)
  peak : int;
  low : int;
  ups : int;
  downs : int;
  avg_loss : float;
  late : float;
}

let base_servers = 4
let small_servers = 4
let large_servers = 8
let min_servers = 2
let cycles = 5.0
let rho_low = 0.1
let rho_high = 2.0
let square_duty = 0.4

let shape_phases ~period = function
  | Diurnal -> Bursty.diurnal ~period ~low:rho_low ~high:rho_high ()
  | Square -> Bursty.square ~period ~duty:square_duty ~low:rho_low ~high:rho_high
  | Steady ->
    [| { Bursty.duration = period; rho = (rho_low +. rho_high) /. 2.0 } |]

(* Experiment geometry derived from the scale: the trace spans about
   [cycles] cycles of the shape, and the controller gets 24 decisions
   per cycle (so the predictive policy's seasonal period is 24 ticks
   whatever the scale). *)
let geometry ~kind ~shape ~(scale : Exp_scale.t) =
  let mu = Workloads.nominal_mean_ms kind in
  (* mean_rho is duration-weighted, so any period gives the same mean *)
  let mean_rho = Bursty.mean_rho (shape_phases ~period:1.0 shape) in
  let expected_span =
    Float.of_int scale.Exp_scale.n_queries
    *. mu
    /. (mean_rho *. Float.of_int base_servers)
  in
  let period = expected_span /. cycles in
  let interval = period /. 24.0 in
  (period, interval)

(* Server rent in $/ms. A saturated Exp/SLA-B server earns at most
   ~0.095 $/ms (one ~20 ms query worth <= 2.0 at a time, realistically
   ~1.9 on average); renting at roughly a quarter of that leaves
   well-used capacity clearly profitable and idle capacity clearly
   wasteful, whatever the decision interval works out to. *)
let cost_rate = 0.0225

let elastic_config ~interval =
  Elastic.config ~interval ~cost_per_interval:(cost_rate *. interval)
    ~boot_delay:(interval /. 2.0) ~cooldown:(2.0 *. interval) ~min_servers
    ~max_servers:large_servers ()

let workload ?(shape = Diurnal) ~kind ~(scale : Exp_scale.t) ~seed () =
  let period, interval = geometry ~kind ~shape ~scale in
  let cfg =
    Trace.config ~kind ~profile:Workloads.Sla_b ~load:1.0 ~servers:base_servers
      ~n_queries:scale.Exp_scale.n_queries ~seed ()
  in
  let phases = shape_phases ~period shape in
  (Bursty.generate cfg phases, interval)

(* Profit and cost are both accounted from t = 0 (warmup would skew
   net: the pool costs money during it but its profit would not
   count). *)
let run_one ~queries ~config ~make_policy ~label ~initial =
  let metrics, s =
    Elastic.run ~policy:(make_policy ()) ~config ~queries ~n_servers:initial
      ~warmup_id:0 ()
  in
  let profit = Metrics.total_profit metrics in
  {
    label;
    initial;
    profit;
    server_time = s.Elastic.server_time;
    cost = s.Elastic.cost;
    net = profit -. s.Elastic.cost;
    peak = s.Elastic.peak_pool;
    low = s.Elastic.min_pool;
    ups = s.Elastic.scale_ups;
    downs = s.Elastic.scale_downs;
    avg_loss = Metrics.avg_loss metrics;
    late = Metrics.late_fraction metrics;
  }

let oracle_label = "autoscale/oracle"
let predictive_label = "autoscale/predictive"
let reactive_label = "autoscale/SLA-tree"

(* A perfect-foresight schedule for one target utilization; the oracle
   row is the best net over [Forecast.Oracle.rho_candidates]. *)
let oracle_policy ~queries ~(config : Elastic.config) ~rho () =
  let sched =
    Forecast.Oracle.schedule ~queries ~interval:config.Elastic.interval
      ~lead:config.Elastic.boot_delay ~rho ~min_servers
      ~max_servers:large_servers ()
  in
  Elastic.scheduled ~target:(fun ~now -> Forecast.Oracle.target sched ~now) ()

let rows ?(kind = Workloads.Exp) ?(shape = Diurnal) ~(scale : Exp_scale.t)
    ~seed () =
  let queries, interval = workload ~shape ~kind ~scale ~seed () in
  let config = elastic_config ~interval in
  (* Policies hold run-local state (the predictive forecaster), so
     each run builds its own inside the worker; the runs share only
     the read-only query array and immutable config, so they fan out
     across the ambient pool and [map_list] keeps row order. *)
  let named = Printf.sprintf "%s@rho=%.2f" oracle_label in
  let items =
    [
      ((fun () -> Elastic.static), "static-small", small_servers);
      ((fun () -> Elastic.static), "static-large", large_servers);
      ((fun () -> Elastic.sla_tree_policy), reactive_label, small_servers);
      ((fun () -> Elastic.queue_threshold ()), "autoscale/queue", small_servers);
      ((fun () -> Elastic.predictive ()), predictive_label, small_servers);
    ]
    @ List.map
        (fun rho ->
          ((fun () -> oracle_policy ~queries ~config ~rho ()), named rho,
           small_servers))
        (Array.to_list Forecast.Oracle.rho_candidates)
  in
  let all =
    Parallel.map_list
      (fun (make_policy, label, initial) ->
        run_one ~queries ~config ~make_policy ~label ~initial)
      items
  in
  (* Collapse the oracle sweep into its best candidate (first wins
     ties — deterministic, the sweep order is fixed). *)
  let is_candidate r = String.starts_with ~prefix:(oracle_label ^ "@") r.label in
  let base = List.filter (fun r -> not (is_candidate r)) all in
  let best =
    List.fold_left
      (fun acc r ->
        if not (is_candidate r) then acc
        else
          match acc with
          | Some b when b.net >= r.net -> acc
          | _ -> Some r)
      None all
  in
  match best with
  | Some b -> base @ [ { b with label = oracle_label } ]
  | None -> base

(* ------------------------------------------------------------------ *)
(* Single-policy runs (the CLI's non-compare mode). The policy arrives
   as a spec, not a value: the predictive policy needs the obs sink
   threaded in and the oracle needs the workload itself. *)

type policy_spec =
  | Spec_static
  | Spec_sla_tree
  | Spec_queue
  | Spec_predictive of { forecast : string option; horizon : int option }
  | Spec_oracle of { rho : float option }

let policy_spec_of_string ?forecast ?horizon ?rho = function
  | "static" -> Ok Spec_static
  | "sla-tree" -> Ok Spec_sla_tree
  | "queue" -> Ok Spec_queue
  | "predictive" -> Ok (Spec_predictive { forecast; horizon })
  | "oracle" -> Ok (Spec_oracle { rho })
  | s ->
    Error
      (Printf.sprintf
         "unknown policy %S (sla-tree|queue|static|predictive|oracle)" s)

(* Default oracle utilization for a single run (the comparison table
   sweeps instead). *)
let default_oracle_rho = 0.8

let materialize ?obs spec ~queries ~config =
  match spec with
  | Spec_static -> Ok Elastic.static
  | Spec_sla_tree -> Ok Elastic.sla_tree_policy
  | Spec_queue -> Ok (Elastic.queue_threshold ())
  | Spec_predictive { forecast; horizon } -> (
    let f =
      match forecast with
      | None -> Ok None
      | Some s -> Result.map Option.some (Forecast.of_spec s)
    in
    match f with
    | Error e -> Error e
    | Ok forecast -> Ok (Elastic.predictive ?obs ?forecast ?horizon ()))
  | Spec_oracle { rho } ->
    let rho = Option.value rho ~default:default_oracle_rho in
    if rho <= 0.0 then Error "oracle rho must be positive"
    else Ok (oracle_policy ~queries ~config ~rho ())

(* Run one policy on the experiment's workload, with the scale event
   log. [faults] is a [Fault.plan_of_spec] string realised over the
   trace's arrival span against the initial pool. *)
let run_policy ?obs ?timeseries ?faults ?(shape = Diurnal) ppf ~policy ~initial
    (scale : Exp_scale.t) =
  let seed = scale.Exp_scale.base_seed in
  let queries, interval = workload ~shape ~kind:Workloads.Exp ~scale ~seed () in
  let config = elastic_config ~interval in
  match materialize ?obs policy ~queries ~config with
  | Error e -> invalid_arg e
  | Ok policy ->
    let injector =
      Option.map
        (fun spec ->
          let horizon =
            if Array.length queries = 0 then 0.0
            else queries.(Array.length queries - 1).Query.arrival
          in
          let plan = Fault.plan_of_spec spec ~horizon ~n_servers:initial in
          Fault.create ?obs ~plan ())
        faults
    in
    let metrics, s =
      Elastic.run ?obs ?timeseries
        ?timers:(Option.map Fault.timers injector)
        ?on_server_event:(Option.map Fault.on_server_event injector)
        ~policy ~config ~queries ~n_servers:initial ~warmup_id:0 ()
    in
    Option.iter (fun i -> Fault.finalize i metrics) injector;
    let profit = Metrics.total_profit metrics in
    Fmt.pf ppf
      "policy %s, %s shape, %d queries, initial pool %d, interval %.0f ms@."
      (Elastic.policy_name policy)
      (shape_name shape) scale.Exp_scale.n_queries initial
      config.Elastic.interval;
    Fmt.pf ppf "%a@." Elastic.pp_summary s;
    List.iter
      (fun (t, a) -> Fmt.pf ppf "  t=%10.1f  %a@." t Elastic.pp_action a)
      s.Elastic.events;
    Fmt.pf ppf
      "profit $%.0f, cost $%.0f, net $%.0f (avg loss $%.3f, %.1f%% late)@."
      profit s.Elastic.cost
      (profit -. s.Elastic.cost)
      (Metrics.avg_loss metrics)
      (100.0 *. Metrics.late_fraction metrics);
    Option.iter
      (fun i -> Fmt.pf ppf "faults: %a@." Fault.pp_stats (Fault.stats i))
      injector

let pp_row ppf r =
  Fmt.pf ppf "%-21s %9.0f %12.0f %9.0f %9.0f %5d..%-4d %3d %5d %9.3f %7.1f%%"
    r.label r.profit r.server_time r.cost r.net r.low r.peak r.ups r.downs
    r.avg_loss (100.0 *. r.late)

let find_row rs label = List.find_opt (fun r -> r.label = label) rs

let run_shape ppf ~shape (scale : Exp_scale.t) =
  let seed = scale.Exp_scale.base_seed in
  Fmt.pf ppf "@.--- shape: %s ---@." (shape_name shape);
  Fmt.pf ppf "%-21s %9s %12s %9s %9s %10s %3s %5s %9s %8s@." "policy" "profit"
    "server-time" "cost" "net" "pool" "ups" "downs" "avg-loss" "late";
  let rs = rows ~shape ~scale ~seed () in
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rs;
  (match find_row rs reactive_label with
  | Some auto ->
    let beats =
      List.for_all
        (fun r -> r.net <= auto.net +. 1e-9)
        (List.filter (fun r -> String.starts_with ~prefix:"static" r.label) rs)
    in
    Fmt.pf ppf "SLA-tree autoscaler net %s the best static configuration.@."
      (if beats then "matches or beats" else "TRAILS")
  | None -> ());
  match (find_row rs reactive_label, find_row rs predictive_label,
         find_row rs oracle_label) with
  | Some r, Some p, Some o ->
    Fmt.pf ppf
      "three-way: reactive $%.0f vs predictive $%.0f vs oracle $%.0f — \
       predictive %s reactive by $%.0f; oracle headroom $%.0f.@."
      r.net p.net o.net
      (if p.net >= r.net then "beats" else "TRAILS")
      (p.net -. r.net) (o.net -. p.net)
  | _ -> ()

let run ppf (scale : Exp_scale.t) =
  Fmt.pf ppf
    "@.=== Elasticity: cyclic Exp/SLA-B workloads, %d queries, seed %d ===@."
    scale.Exp_scale.n_queries scale.Exp_scale.base_seed;
  Fmt.pf ppf
    "cost model: $%.3f per server-ms; pool bounds %d..%d; boot delay half an \
     interval; oracle = perfect-foresight schedule, best over rho sweep@."
    cost_rate min_servers large_servers;
  List.iter (fun shape -> run_shape ppf ~shape scale) all_shapes
