(* Elasticity experiment (beyond the paper, toward Kllapi et al. /
   WiSeDB): a diurnal workload whose troughs waste a big static farm
   and whose peaks drown a small one, served by (a) static-small,
   (b) static-large, (c) the SLA-tree autoscaler, (d) the queue-length
   threshold baseline — all under the same $/server-interval cost
   model, reporting profit, server time, cost, and net = profit − cost.

   The workload is calibrated around [base_servers]: the duration-
   weighted mean load is [(low + high) / 2] on that pool, the peak
   overloads it by [high] and the trough leaves it mostly idle, so
   neither static extreme can win on net. *)

type row = {
  label : string;
  initial : int;
  profit : float;  (** total measured profit, $ *)
  server_time : float;  (** ms*servers *)
  cost : float;
  net : float;  (** profit - cost *)
  peak : int;
  low : int;
  ups : int;
  downs : int;
  avg_loss : float;
  late : float;
}

let base_servers = 4
let small_servers = 4
let large_servers = 8
let min_servers = 2
let cycles = 5.0
let rho_low = 0.1
let rho_high = 2.0

(* Experiment geometry derived from the scale: the trace spans about
   [cycles] diurnal periods, and the controller gets 24 decisions per
   period. *)
let geometry ~kind ~(scale : Exp_scale.t) =
  let mu = Workloads.nominal_mean_ms kind in
  let mean_rho = (rho_low +. rho_high) /. 2.0 in
  let expected_span =
    Float.of_int scale.Exp_scale.n_queries
    *. mu
    /. (mean_rho *. Float.of_int base_servers)
  in
  let period = expected_span /. cycles in
  let interval = period /. 24.0 in
  (period, interval)

(* Server rent in $/ms. A saturated Exp/SLA-B server earns at most
   ~0.095 $/ms (one ~20 ms query worth <= 2.0 at a time, realistically
   ~1.9 on average); renting at roughly a quarter of that leaves
   well-used capacity clearly profitable and idle capacity clearly
   wasteful, whatever the decision interval works out to. *)
let cost_rate = 0.0225

let elastic_config ~interval =
  Elastic.config ~interval ~cost_per_interval:(cost_rate *. interval)
    ~boot_delay:(interval /. 2.0) ~cooldown:(2.0 *. interval) ~min_servers
    ~max_servers:large_servers ()

let workload ~kind ~(scale : Exp_scale.t) ~seed =
  let period, interval = geometry ~kind ~scale in
  let cfg =
    Trace.config ~kind ~profile:Workloads.Sla_b ~load:1.0 ~servers:base_servers
      ~n_queries:scale.Exp_scale.n_queries ~seed ()
  in
  let phases = Bursty.diurnal ~period ~low:rho_low ~high:rho_high () in
  (Bursty.generate cfg phases, interval)

(* Profit and cost are both accounted from t = 0 (warmup would skew
   net: the pool costs money during it but its profit would not
   count). *)
let run_one ~queries ~config ~policy ~label ~initial =
  let metrics, s =
    Elastic.run ~policy ~config ~queries ~n_servers:initial ~warmup_id:0 ()
  in
  let profit = Metrics.total_profit metrics in
  {
    label;
    initial;
    profit;
    server_time = s.Elastic.server_time;
    cost = s.Elastic.cost;
    net = profit -. s.Elastic.cost;
    peak = s.Elastic.peak_pool;
    low = s.Elastic.min_pool;
    ups = s.Elastic.scale_ups;
    downs = s.Elastic.scale_downs;
    avg_loss = Metrics.avg_loss metrics;
    late = Metrics.late_fraction metrics;
  }

let rows ?(kind = Workloads.Exp) ~(scale : Exp_scale.t) ~seed () =
  let queries, interval = workload ~kind ~scale ~seed in
  let config = elastic_config ~interval in
  (* The four policy runs share only the (read-only) query array and
     immutable policy/config values, so they fan out across the
     ambient pool; [map_list] keeps row order. *)
  Parallel.map_list
    (fun (policy, label, initial) -> run_one ~queries ~config ~policy ~label ~initial)
    [
      (Elastic.static, "static-small", small_servers);
      (Elastic.static, "static-large", large_servers);
      (Elastic.sla_tree_policy, "autoscale/SLA-tree", small_servers);
      (Elastic.queue_threshold (), "autoscale/queue", small_servers);
    ]

(* Single-policy run on the same workload, with the scale event log —
   the CLI's non-compare mode. [faults] is a [Fault.plan_of_spec]
   string realised over the trace's arrival span against the initial
   pool. *)
let run_policy ?obs ?timeseries ?faults ppf ~policy ~initial
    (scale : Exp_scale.t) =
  let seed = scale.Exp_scale.base_seed in
  let queries, interval = workload ~kind:Workloads.Exp ~scale ~seed in
  let config = elastic_config ~interval in
  let injector =
    Option.map
      (fun spec ->
        let horizon =
          if Array.length queries = 0 then 0.0
          else queries.(Array.length queries - 1).Query.arrival
        in
        let plan = Fault.plan_of_spec spec ~horizon ~n_servers:initial in
        Fault.create ?obs ~plan ())
      faults
  in
  let metrics, s =
    Elastic.run ?obs ?timeseries
      ?timers:(Option.map Fault.timers injector)
      ?on_server_event:(Option.map Fault.on_server_event injector)
      ~policy ~config ~queries ~n_servers:initial ~warmup_id:0 ()
  in
  Option.iter (fun i -> Fault.finalize i metrics) injector;
  let profit = Metrics.total_profit metrics in
  Fmt.pf ppf "policy %s, %d queries, initial pool %d, interval %.0f ms@."
    (Elastic.policy_name policy)
    scale.Exp_scale.n_queries initial config.Elastic.interval;
  Fmt.pf ppf "%a@." Elastic.pp_summary s;
  List.iter
    (fun (t, a) -> Fmt.pf ppf "  t=%10.1f  %a@." t Elastic.pp_action a)
    s.Elastic.events;
  Fmt.pf ppf "profit $%.0f, cost $%.0f, net $%.0f (avg loss $%.3f, %.1f%% late)@."
    profit s.Elastic.cost
    (profit -. s.Elastic.cost)
    (Metrics.avg_loss metrics)
    (100.0 *. Metrics.late_fraction metrics);
  Option.iter
    (fun i -> Fmt.pf ppf "faults: %a@." Fault.pp_stats (Fault.stats i))
    injector

let pp_row ppf r =
  Fmt.pf ppf "%-20s %9.0f %12.0f %9.0f %9.0f %5d..%-4d %3d %5d %9.3f %7.1f%%"
    r.label r.profit r.server_time r.cost r.net r.low r.peak r.ups r.downs
    r.avg_loss (100.0 *. r.late)

let run ppf (scale : Exp_scale.t) =
  let seed = scale.Exp_scale.base_seed in
  Fmt.pf ppf
    "@.=== Elasticity: diurnal Exp/SLA-B workload, %d queries, seed %d ===@."
    scale.Exp_scale.n_queries seed;
  Fmt.pf ppf
    "cost model: $%.3f per server-ms; pool bounds %d..%d; boot delay half an \
     interval@."
    cost_rate min_servers large_servers;
  Fmt.pf ppf "%-20s %9s %12s %9s %9s %10s %3s %5s %9s %8s@." "policy" "profit"
    "server-time" "cost" "net" "pool" "ups" "downs" "avg-loss" "late";
  let rs = rows ~scale ~seed () in
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rs;
  match List.find_opt (fun r -> r.label = "autoscale/SLA-tree") rs with
  | Some auto ->
    let beats =
      List.for_all
        (fun r -> r.net <= auto.net +. 1e-9)
        (List.filter (fun r -> String.starts_with ~prefix:"static" r.label) rs)
    in
    Fmt.pf ppf "SLA-tree autoscaler net %s the best static configuration.@."
      (if beats then "matches or beats" else "TRAILS")
  | None -> ()
