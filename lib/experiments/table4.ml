(* Table 4 (Sec 7.4): capacity planning — the per-query profit margin
   of adding one server: replayed ground truth vs the SLA-tree online
   estimate, for n = 2..10 servers, SLA-A, load 0.9. *)

let default_servers = [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
let load = 0.9

type cell = {
  kind : Workloads.kind;
  servers : int;
  ground_truth : float;
  estimate : float;
}

let compute ?(kinds = Workloads.all_kinds) ?(servers = default_servers)
    (scale : Exp_scale.t) =
  (* Cells fan out across the ambient pool; within a cell the repeats
     fan out too when a pool is free (both levels degrade to serial
     under nesting). Per-repeat (estimate, ground-truth) pairs come
     back in repeat order and are folded serially, so both means stay
     bit-identical to the serial run. *)
  List.concat_map (fun kind -> List.map (fun m -> (kind, m)) servers) kinds
  |> Parallel.map_list (fun (kind, m) ->
         let rate = Exp_common.cbs_rate kind in
         let planner = Planner.cbs ~rate in
         let scheduler = Schedulers.cbs_sla_tree ~rate in
         let pairs =
           Parallel.map_ordered
             (fun repeat ->
               let cfg =
                 Trace.config ~kind ~profile:Workloads.Sla_a ~load ~servers:m
                   ~n_queries:scale.n_queries
                   ~seed:(Exp_scale.seed scale ~repeat)
                   ()
               in
               let queries = Trace.generate cfg in
               let _, e =
                 Capacity.run_with_estimation ~queries ~n_servers:m ~planner
                   ~scheduler ~warmup_id:scale.warmup
               in
               ( e.Capacity.est_margin_per_query,
                 Capacity.ground_truth ~queries ~n_servers:m ~planner
                   ~scheduler ~warmup_id:scale.warmup ))
             (Array.init scale.repeats Fun.id)
         in
         let gt = Stats.create () and est = Stats.create () in
         Array.iter
           (fun (e, g) ->
             Stats.add est e;
             Stats.add gt g)
           pairs;
         { kind; servers = m; ground_truth = Stats.mean gt; estimate = Stats.mean est })

let to_report ?(servers = default_servers) cells =
  let col_groups = [ ("Server #", List.map string_of_int servers) ] in
  let rows =
    List.concat_map
      (fun kind ->
        let pick f =
          Array.of_list
            (List.map
               (fun m ->
                 match
                   List.find_opt (fun c -> c.kind = kind && c.servers = m) cells
                 with
                 | Some c -> f c
                 | None -> Float.nan)
               servers)
        in
        [
          (Workloads.kind_name kind ^ " ground truth", pick (fun c -> c.ground_truth));
          (Workloads.kind_name kind ^ " SLA-tree est.", pick (fun c -> c.estimate));
        ])
      Workloads.all_kinds
    |> List.filter (fun (_, arr) -> Array.exists (fun v -> not (Float.is_nan v)) arr)
  in
  {
    Report.title =
      "Table 4: capacity planning, profit margin of one extra server (SLA-A, load 0.9)";
    col_groups;
    rows;
  }

let run ppf scale =
  let cells = compute scale in
  Report.render ppf (to_report cells)
