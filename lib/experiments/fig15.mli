(** Figure 15 (Sec 7.1): execution-time histograms for the Exp and
    Pareto workloads; also prints the SSBM table (Table 1). *)

val default_samples : int

type result = {
  exp_hist : Histogram.t;
  pareto_hist : Histogram.t;
  exp_mean : float;
  pareto_mean : float;
}

val compute : ?samples:int -> seed:int -> unit -> result

(** Write gnuplot-ready [.dat] files into [dir]; returns the paths. *)
val export : ?samples:int -> dir:string -> seed:int -> unit -> string list

val run : ?samples:int -> Format.formatter -> seed:int -> unit -> unit
