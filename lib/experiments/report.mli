(** Fixed-width table rendering in the paper's layout. *)

type t = {
  title : string;
  col_groups : (string * string list) list;
      (** (group header, sub-column headers) *)
  rows : (string * float array) list;
}

val n_cols : t -> int
val render : Format.formatter -> t -> unit
