(* Table 5 (Sec 7.5): robustness of scheduling to execution-time
   estimation error — CBS vs CBS+SLA-tree at load 0.9, with the real
   execution time equal to the estimate scaled by N(1, sigma^2),
   sigma^2 in {0, 0.2, 1.0}. *)

let default_sigmas = [ 0.0; 0.2; 1.0 ]
let load = 0.9
let schedulers = [ Exp_common.Cbs; Exp_common.Cbs_tree ]

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  sigma2 : float;
  sched : Exp_common.sched_kind;
  avg_loss : float;
}

let error_of sigma2 =
  if sigma2 = 0.0 then Estimate_error.none
  else Estimate_error.gaussian ~sigma2 ()

let compute ?(profiles = Workloads.all_profiles) ?(kinds = Workloads.all_kinds)
    ?(sigmas = default_sigmas) (scale : Exp_scale.t) =
  (* Independent cells fan out across the ambient pool in spec order
     (see Table2.compute). *)
  List.concat_map
    (fun profile ->
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun sigma2 ->
              List.map (fun sched -> (profile, kind, sigma2, sched)) schedulers)
            sigmas)
        kinds)
    profiles
  |> Parallel.map_list (fun (profile, kind, sigma2, sched) ->
         let make_trace_cfg ~seed =
           Trace.config ~error:(error_of sigma2) ~kind ~profile ~load ~servers:1
             ~n_queries:scale.n_queries ~seed ()
         in
         let avg_loss =
           Exp_common.avg_loss_over_repeats scale ~make_trace_cfg ~n_servers:1
             ~scheduler:(Exp_common.scheduler_of sched kind)
             ~dispatcher:Dispatchers.round_robin
         in
         { profile; kind; sigma2; sched; avg_loss })

let to_report ?(sigmas = default_sigmas) cells =
  let col_groups =
    List.concat_map
      (fun profile ->
        List.map
          (fun kind ->
            ( Workloads.profile_name profile ^ " " ^ Workloads.kind_name kind,
              List.map (Printf.sprintf "%.1f") sigmas ))
          Workloads.all_kinds)
      Workloads.all_profiles
  in
  let rows =
    List.map
      (fun sched ->
        let cells_for =
          List.concat_map
            (fun profile ->
              List.concat_map
                (fun kind ->
                  List.map
                    (fun sigma2 ->
                      match
                        List.find_opt
                          (fun c ->
                            c.profile = profile && c.kind = kind
                            && c.sigma2 = sigma2 && c.sched = sched)
                          cells
                      with
                      | Some c -> c.avg_loss
                      | None -> Float.nan)
                    sigmas)
                Workloads.all_kinds)
            Workloads.all_profiles
        in
        (Exp_common.sched_name sched, Array.of_list cells_for))
      schedulers
  in
  {
    Report.title =
      "Table 5: scheduling robustness vs estimation error (load 0.9; columns are sigma^2)";
    col_groups;
    rows;
  }

let run ppf scale =
  let cells = compute scale in
  Report.render ppf (to_report cells)
