(* Substrate validation (not a paper table): the simulator's measured
   SLA-A loss under FCFS on the exponential workload must match the
   closed-form M/M/1 response-time tail, and stay close to the M/M/m
   bound for multi-server runs (per-server buffers without jockeying
   are slightly worse than the single shared M/M/m queue, so the
   analytic value is a lower bound there). *)

type row = {
  servers : int;
  load : float;
  simulated : float;
  analytic : float;
}

let default_loads = [ 0.3; 0.5; 0.7; 0.9 ]
let default_servers = [ 1; 3 ]

let compute ?(loads = default_loads) ?(servers = default_servers)
    (scale : Exp_scale.t) =
  let mu_ms = Workloads.nominal_mean_ms Workloads.Exp in
  let service_rate = 1.0 /. mu_ms in
  let bound = 2.0 *. mu_ms in
  (* Independent (servers, load) cells fan out across the ambient
     pool; repeats within a cell come back in repeat order and are
     folded serially (bit-identical to the serial run). *)
  List.concat_map (fun m -> List.map (fun load -> (m, load)) loads) servers
  |> Parallel.map_list (fun (m, load) ->
         let losses =
           Parallel.map_ordered
             (fun repeat ->
               let cfg =
                 Trace.config ~kind:Workloads.Exp ~profile:Workloads.Sla_a ~load
                   ~servers:m ~n_queries:scale.n_queries
                   ~seed:(Exp_scale.seed scale ~repeat)
                   ()
               in
               let metrics =
                 Exp_common.run_once ~trace_cfg:cfg ~n_servers:m
                   ~scheduler:Schedulers.fcfs ~dispatcher:Dispatchers.lwl
                   ~warmup_id:scale.warmup
               in
               Metrics.avg_loss metrics)
             (Array.init scale.repeats Fun.id)
         in
         let acc = Stats.create () in
         Array.iter (Stats.add acc) losses;
         let arrival_rate = load *. Float.of_int m *. service_rate in
         {
           servers = m;
           load;
           simulated = Stats.mean acc;
           analytic =
             Queueing.mmm_response_tail ~servers:m ~arrival_rate ~service_rate
               ~t:bound;
         })

let run ppf scale =
  let rows = compute scale in
  Fmt.pf ppf
    "@.=== Validation: simulated FCFS SLA-A loss vs analytic M/M/m tail (Exp \
     workload) ===@.";
  Fmt.pf ppf "%8s %6s %12s %12s@." "servers" "load" "simulated" "analytic";
  List.iter
    (fun r ->
      Fmt.pf ppf "%8d %6.1f %12.4f %12.4f%s@." r.servers r.load r.simulated
        r.analytic
        (if r.servers > 1 then "  (lower bound: per-server buffers)" else ""))
    rows
