(* Table 3 (Sec 7.3): dispatching — average profit loss per query for
   LWL/CBS, LWL/CBS+SLA-tree and SLA-tree/CBS+SLA-tree across server
   counts {2, 5, 10}, workloads and SLA profiles. System load is 0.9
   (the paper's dispatching runs inherit the high-load setting). *)

let default_servers = [ 2; 5; 10 ]
let load = 0.9

let dispatchers =
  [ Exp_common.Lwl_cbs; Exp_common.Lwl_tree_sched; Exp_common.Tree_tree ]

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  servers : int;
  disp : Exp_common.disp_kind;
  avg_loss : float;
}

let compute ?(profiles = Workloads.all_profiles) ?(kinds = Workloads.all_kinds)
    ?(servers = default_servers) (scale : Exp_scale.t) =
  (* Independent cells fan out across the ambient pool in spec order
     (see Table2.compute). *)
  List.concat_map
    (fun profile ->
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun m -> List.map (fun disp -> (profile, kind, m, disp)) dispatchers)
            servers)
        kinds)
    profiles
  |> Parallel.map_list (fun (profile, kind, m, disp) ->
         let dispatcher, scheduler = Exp_common.dispatch_setup disp kind in
         let make_trace_cfg ~seed =
           Trace.config ~kind ~profile ~load ~servers:m
             ~n_queries:scale.n_queries ~seed ()
         in
         let avg_loss =
           Exp_common.avg_loss_over_repeats scale ~make_trace_cfg ~n_servers:m
             ~scheduler ~dispatcher
         in
         { profile; kind; servers = m; disp; avg_loss })

let to_report ?(servers = default_servers) cells =
  let col_groups =
    List.concat_map
      (fun profile ->
        List.map
          (fun kind ->
            ( Workloads.profile_name profile ^ " " ^ Workloads.kind_name kind,
              List.map string_of_int servers ))
          Workloads.all_kinds)
      Workloads.all_profiles
  in
  let rows =
    List.map
      (fun disp ->
        let cells_for =
          List.concat_map
            (fun profile ->
              List.concat_map
                (fun kind ->
                  List.map
                    (fun m ->
                      match
                        List.find_opt
                          (fun c ->
                            c.profile = profile && c.kind = kind
                            && c.servers = m && c.disp = disp)
                          cells
                      with
                      | Some c -> c.avg_loss
                      | None -> Float.nan)
                    servers)
                Workloads.all_kinds)
            Workloads.all_profiles
        in
        (Exp_common.disp_name disp, Array.of_list cells_for))
      dispatchers
  in
  {
    Report.title =
      "Table 3: dispatching, average profit loss per query (server # columns)";
    col_groups;
    rows;
  }

let run ppf scale =
  let cells = compute scale in
  Report.render ppf (to_report cells)
