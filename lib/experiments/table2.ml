(* Table 2 (Sec 7.2): scheduling — average profit loss per query for
   FCFS, FCFS+SLA-tree, CBS and CBS+SLA-tree on one server, across
   workloads {Exp, Pareto, SSBM}, loads {0.5, 0.7, 0.9} and SLA
   profiles {SLA-A, SLA-B}. *)

let default_loads = [ 0.5; 0.7; 0.9 ]

let schedulers =
  [ Exp_common.Fcfs; Exp_common.Fcfs_tree; Exp_common.Cbs; Exp_common.Cbs_tree ]

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  load : float;
  sched : Exp_common.sched_kind;
  avg_loss : float;
}

let compute ?(profiles = Workloads.all_profiles) ?(kinds = Workloads.all_kinds)
    ?(loads = default_loads) (scale : Exp_scale.t) =
  (* Cells are independent, so whole cells fan out across the ambient
     pool (repeats inside a cell then run serially on their worker);
     [map_list] returns them in spec order, so the table is identical
     to the serial run. *)
  List.concat_map
    (fun profile ->
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun load -> List.map (fun sched -> (profile, kind, load, sched)) schedulers)
            loads)
        kinds)
    profiles
  |> Parallel.map_list (fun (profile, kind, load, sched) ->
         let make_trace_cfg ~seed =
           Trace.config ~kind ~profile ~load ~servers:1
             ~n_queries:scale.n_queries ~seed ()
         in
         let avg_loss =
           Exp_common.avg_loss_over_repeats scale ~make_trace_cfg ~n_servers:1
             ~scheduler:(Exp_common.scheduler_of sched kind)
             ~dispatcher:Dispatchers.round_robin
         in
         { profile; kind; load; sched; avg_loss })

let to_report ?(loads = default_loads) cells =
  let col_groups =
    List.concat_map
      (fun profile ->
        List.map
          (fun kind ->
            ( Workloads.profile_name profile ^ " " ^ Workloads.kind_name kind,
              List.map (Printf.sprintf "%.1f") loads ))
          Workloads.all_kinds)
      Workloads.all_profiles
  in
  let rows =
    List.map
      (fun sched ->
        let cells_for =
          List.concat_map
            (fun profile ->
              List.concat_map
                (fun kind ->
                  List.map
                    (fun load ->
                      match
                        List.find_opt
                          (fun c ->
                            c.profile = profile && c.kind = kind
                            && c.load = load && c.sched = sched)
                          cells
                      with
                      | Some c -> c.avg_loss
                      | None -> Float.nan)
                    loads)
                Workloads.all_kinds)
            Workloads.all_profiles
        in
        (Exp_common.sched_name sched, Array.of_list cells_for))
      schedulers
  in
  {
    Report.title = "Table 2: scheduling, average profit loss per query";
    col_groups;
    rows;
  }

let run ppf scale =
  let cells = compute scale in
  Report.render ppf (to_report cells)
