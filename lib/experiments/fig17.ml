(* Figure 17 (Sec 7.6): running time of one SLA-tree scheduling
   decision (building the SLA-tree from scratch plus asking one
   postpone question per buffered query) as a function of buffer
   length.

   The paper pushes the system to load 0.99 and sets the SLA-A
   threshold very high so that large slack trees are built; we mimic
   that by giving every buffered query a far-future deadline. *)

let default_buffer_sizes = [ 50; 100; 200; 400; 800; 1200; 1600 ]

type point = {
  buffer_len : int;
  ms_per_decision : float;  (** build + one postpone per query *)
  slack_units : int;
}

(* A buffer of [n] queries mimicking a saturated server: exponential
   sizes, arrivals in the recent past, a 2-level SLA with large bounds
   (so nearly every unit lands in the slack tree, the paper's
   worst case). *)
let make_buffer ~seed n =
  let rng = Prng.create seed in
  let mu = 20.0 in
  Array.init n (fun id ->
      let size = Prng.exponential rng ~mean:mu in
      let arrival = Prng.float rng *. 100.0 in
      let sla =
        Sla.make
          ~levels:
            [
              { bound = 1e7; gain = 2.0 };
              { bound = 2e7; gain = 1.0 };
            ]
          ~penalty:0.0
      in
      Query.make ~id ~arrival ~size ~sla ())

let time_decision ~repeats buffer =
  let now = 200.0 in
  (* Settle the heap so GC debt from whatever ran before this
     measurement is not charged to it, then warm the allocator. *)
  Gc.compact ();
  ignore (What_if.best_rush (Sla_tree.build ~now buffer));
  let t0 = Sys.time () in
  for _ = 1 to repeats do
    let tree = Sla_tree.build ~now buffer in
    ignore (What_if.best_rush tree)
  done;
  let t1 = Sys.time () in
  (t1 -. t0) *. 1000.0 /. Float.of_int repeats

let compute ?(buffer_sizes = default_buffer_sizes) ~seed () =
  (* Buffer construction and the slack-unit count are deterministic and
     independent per point, so they fan out across the ambient pool.
     The timing loop stays serial: [Sys.time] measures process-wide
     CPU, so concurrent timing runs would charge each other's work to
     every measurement. *)
  let prepared =
    Parallel.map_list
      (fun n ->
        let buffer = make_buffer ~seed n in
        let tree = Sla_tree.build ~now:200.0 buffer in
        let slack_units, _ = Sla_tree.unit_counts tree in
        (n, buffer, slack_units))
      buffer_sizes
  in
  List.map
    (fun (n, buffer, slack_units) ->
      let repeats = max 3 (2000 / n) in
      let ms = time_decision ~repeats buffer in
      { buffer_len = n; ms_per_decision = ms; slack_units })
    prepared

let export ?buffer_sizes ~dir ~seed () =
  let points = compute ?buffer_sizes ~seed () in
  let path = Filename.concat dir "fig17.dat" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# buffer_len slack_units ms_per_decision\n";
      List.iter
        (fun p ->
          Printf.fprintf oc "%d %d %.17g\n" p.buffer_len p.slack_units
            p.ms_per_decision)
        points);
  path

let run ppf ~seed () =
  let points = compute ~seed () in
  Fmt.pf ppf
    "@.=== Figure 17: SLA-tree build+query time vs buffer length ===@.";
  Fmt.pf ppf "%8s %12s %16s@." "queries" "slack units" "ms/decision";
  List.iter
    (fun p ->
      Fmt.pf ppf "%8d %12d %16.4f@." p.buffer_len p.slack_units p.ms_per_decision)
    points;
  (* The paper's claim: near-linear growth in the buffer length and
     sub-millisecond decisions for hundreds of queries. *)
  match (points, List.rev points) with
  | p0 :: _, plast :: _ when p0.buffer_len > 0 && p0.ms_per_decision > 0.0 ->
    let time_ratio = plast.ms_per_decision /. p0.ms_per_decision in
    let size_ratio =
      Float.of_int plast.buffer_len /. Float.of_int p0.buffer_len
    in
    Fmt.pf ppf
      "size grew %.0fx, time grew %.1fx (linearithmic growth expected)@."
      size_ratio time_ratio
  | _ -> ()
